// Package sim provides the deterministic simulation substrate used by the
// rest of the repository: a seedable pseudo-random number generator, skewed
// (Zipfian) samplers matching the TPC-H skew generator referenced by the
// paper, and a virtual clock that the execution engine charges simulated
// CPU and I/O time against.
//
// Everything in this package is deterministic given a seed, which makes the
// experiment harness reproducible run-to-run: the paper's figures are
// regenerated bit-identically on every invocation.
package sim

import "math"

// RNG is a small, fast, seedable pseudo-random generator based on
// splitmix64 seeding feeding an xorshift128+ core. It intentionally does not
// use math/rand so that the stream is stable across Go releases.
//
// RNG is not safe for concurrent use; create one per goroutine.
type RNG struct {
	s0, s1 uint64
}

// splitmix64 advances the seed state and returns the next 64-bit value.
// It is used only to initialize the xorshift state from a single seed.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given seed. Two generators
// created with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1 // xorshift state must be nonzero
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.s0
	y := r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	// Use rejection sampling to avoid modulo bias for the rare huge n.
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from this one. The child stream is
// decorrelated from the parent's subsequent output, which lets workload
// generators hand stable sub-seeds to each table/query without consuming
// parent state in an order-dependent way.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}
