package sim

import (
	"math"
	"sort"
)

// Zipf draws values in [1, N] with a Zipfian distribution of parameter
// theta (the paper's skew parameter Z; the TPC-H skew generator it cites
// uses Z=1). Item 1 is the most frequent.
//
// The sampler precomputes the exact cumulative distribution and inverts it
// with binary search. This is exact for every theta (including theta = 1,
// where the classic Gray et al. rejection-inversion constant 1/(1-theta)
// blows up), at the cost of O(N) setup and O(N) memory — acceptable for the
// simulator's domains, which are at most a few million keys. Callers cache
// one sampler per (n, theta) pair.
type Zipf struct {
	rng   *RNG
	n     int64
	theta float64
	cdf   []float64 // cdf[i] = P(value <= i+1)
}

// NewZipf returns a sampler over [1, n] with skew theta. theta = 0 is
// uniform; theta = 1 matches the paper's Z=1 setting. It panics if n < 1 or
// theta < 0.
func NewZipf(rng *RNG, n int64, theta float64) *Zipf {
	if n < 1 {
		panic("sim: Zipf with n < 1")
	}
	if theta < 0 {
		panic("sim: Zipf with negative theta")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	if theta == 0 {
		return z // uniform fast path, no table needed
	}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		z.cdf[i-1] = sum
	}
	inv := 1 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	z.cdf[n-1] = 1 // guard against float rounding
	return z
}

// Next draws the next sample in [1, N].
func (z *Zipf) Next() int64 {
	if z.theta == 0 {
		return 1 + z.rng.Int63n(z.n)
	}
	u := z.rng.Float64()
	// First index whose cumulative probability covers u.
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return int64(i) + 1
}

// N returns the domain size.
func (z *Zipf) N() int64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Prob returns the probability of drawing v, for tests and analytical
// checks. It returns 0 for v outside [1, N].
func (z *Zipf) Prob(v int64) float64 {
	if v < 1 || v > z.n {
		return 0
	}
	if z.theta == 0 {
		return 1 / float64(z.n)
	}
	if v == 1 {
		return z.cdf[0]
	}
	return z.cdf[v-1] - z.cdf[v-2]
}
