package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	cfg := &quick.Config{MaxCount: 200}
	f := func(n uint16) bool {
		m := int(n)%1000 + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(11)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d has %d draws, want about %d", i, c, want)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(5)
	child := a.Fork()
	// Child should not replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork replayed parent stream (%d/100 collisions)", same)
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRNG(17)
	for _, theta := range []float64{0, 0.5, 1, 1.5} {
		z := NewZipf(r, 1000, theta)
		for i := 0; i < 20000; i++ {
			v := z.Next()
			if v < 1 || v > 1000 {
				t.Fatalf("theta=%v: sample %d out of [1,1000]", theta, v)
			}
		}
	}
}

func TestZipfSkewShape(t *testing.T) {
	r := NewRNG(19)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 101)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Item 1 should dominate: with theta=1 over n=100, P(1) ~ 1/H_100 ~ 0.19.
	p1 := float64(counts[1]) / draws
	if p1 < 0.12 || p1 > 0.30 {
		t.Fatalf("P(item 1) = %v, want roughly 0.19", p1)
	}
	// Monotone-ish decay: head must far exceed tail.
	tail := 0
	for i := 90; i <= 100; i++ {
		tail += counts[i]
	}
	if counts[1] < tail {
		t.Fatalf("head count %d not above tail mass %d", counts[1], tail)
	}
}

func TestZipfThetaZeroUniform(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 11)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i := 1; i <= 10; i++ {
		if math.Abs(float64(counts[i])-draws/10) > draws/10/5 {
			t.Fatalf("theta=0 not uniform: item %d count %d", i, counts[i])
		}
	}
}

func TestClockAdvanceAndObserve(t *testing.T) {
	c := NewClock()
	var fired []Duration
	c.Observe(500*time.Millisecond, func(now Duration) { fired = append(fired, now) })
	c.Advance(200 * time.Millisecond) // t=0.2s: no fire
	if len(fired) != 0 {
		t.Fatalf("observer fired early: %v", fired)
	}
	c.Advance(400 * time.Millisecond)  // t=0.6s: fire at 0.5
	c.Advance(1100 * time.Millisecond) // t=1.7s: fire at 1.0, 1.5
	want := []Duration{500 * time.Millisecond, time.Second, 1500 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestClockObserveAfterAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(1300 * time.Millisecond)
	var fired []Duration
	c.Observe(time.Second, func(now Duration) { fired = append(fired, now) })
	c.Advance(time.Second) // now 2.3s; boundary at 2.0s
	if len(fired) != 1 || fired[0] != 2*time.Second {
		t.Fatalf("fired %v, want [2s]", fired)
	}
}

// TestClockMultipleObservers: two observers with different intervals share
// one clock without clobbering each other, and boundaries are delivered in
// virtual-time order (ties by registration order). Regression test for the
// single-observer slot that made a Session.Monitor registration silently
// detach an attached DMV poller sharing the clock.
func TestClockMultipleObservers(t *testing.T) {
	c := NewClock()
	type fire struct {
		who string
		at  Duration
	}
	var fired []fire
	a := c.Observe(time.Second, func(now Duration) { fired = append(fired, fire{"a", now}) })
	b := c.Observe(1500*time.Millisecond, func(now Duration) { fired = append(fired, fire{"b", now}) })
	if a == nil || b == nil {
		t.Fatal("Observe returned nil handle")
	}
	c.Advance(3100 * time.Millisecond)
	want := []fire{
		{"a", time.Second},
		{"b", 1500 * time.Millisecond},
		{"a", 2 * time.Second},
		{"a", 3 * time.Second}, // a's 3s boundary precedes b's 3s boundary: a registered first
		{"b", 3 * time.Second},
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

// TestClockObservationStop: stopping one handle must leave the other
// observers registered and firing.
func TestClockObservationStop(t *testing.T) {
	c := NewClock()
	var aFired, bFired int
	a := c.Observe(time.Second, func(Duration) { aFired++ })
	b := c.Observe(time.Second, func(Duration) { bFired++ })
	c.Advance(time.Second)
	a.Stop()
	a.Stop() // idempotent
	(*Observation)(nil).Stop()
	c.Advance(2 * time.Second)
	if aFired != 1 || bFired != 3 {
		t.Fatalf("aFired=%d bFired=%d after stopping a", aFired, bFired)
	}
	b.Stop()
	c.Advance(time.Second)
	if bFired != 3 {
		t.Fatal("stopped observer fired")
	}
}

// TestClockObserverStopsItselfMidDelivery: a callback may Stop its own
// handle while boundaries are still being delivered.
func TestClockObserverStopsItselfMidDelivery(t *testing.T) {
	c := NewClock()
	var obs *Observation
	fired := 0
	obs = c.Observe(time.Second, func(Duration) {
		fired++
		obs.Stop()
	})
	c.Advance(5 * time.Second)
	if fired != 1 {
		t.Fatalf("self-stopped observer fired %d times", fired)
	}
}

// TestClockObserveOnGridBoundary pins the Observe contract: a clock sitting
// exactly on an interval-grid point fires at the *next* grid point, not the
// current one — boundaries are crossed by charged work, and none has been
// charged yet at registration time. (The doc comment used to promise "at or
// after the current time" while the code implemented strictly-after; the
// strictly-after behavior is what every recorded trace depends on — a fire
// at registration time would snapshot a query before it performed any work —
// so the contract is pinned here and the doc now matches.)
func TestClockObserveOnGridBoundary(t *testing.T) {
	c := NewClock()
	c.Advance(500 * time.Millisecond) // now sits exactly on the 500ms grid
	var fired []Duration
	c.Observe(500*time.Millisecond, func(now Duration) { fired = append(fired, now) })
	c.Advance(1) // crosses no boundary: first fire must be at 1s, not 500ms
	if len(fired) != 0 {
		t.Fatalf("observer fired at registration-time boundary: %v", fired)
	}
	c.Advance(time.Second) // now 1.5s+1ns: boundaries at 1s and 1.5s
	want := []Duration{time.Second, 1500 * time.Millisecond}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired %v, want %v", fired, want)
	}

	// Registration at t=0 (the grid origin) likewise does not fire at 0.
	c2 := NewClock()
	first := Duration(-1)
	c2.Observe(time.Second, func(now Duration) {
		if first < 0 {
			first = now
		}
	})
	c2.Advance(2500 * time.Millisecond)
	if first != time.Second {
		t.Fatalf("first fire at %v, want 1s (never at the t=0 origin)", first)
	}
}

// TestClockObserveNilDetachesAll preserves the legacy detach-all contract.
func TestClockObserveNilDetachesAll(t *testing.T) {
	c := NewClock()
	c.Observe(time.Second, func(Duration) { t.Fatal("observer survived nil detach") })
	c.Observe(2*time.Second, func(Duration) { t.Fatal("observer survived nil detach") })
	if h := c.Observe(time.Second, nil); h != nil {
		t.Fatal("nil-cb Observe returned a handle")
	}
	c.Advance(5 * time.Second)
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Observe(time.Second, func(Duration) { t.Fatal("observer survived reset") })
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v after reset", c.Now())
	}
	c.Advance(5 * time.Second)
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := NewRNG(1)
	z := NewZipf(r, 1_000_000, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := NewRNG(31)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("exponential sample negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestShuffleSwapFunc(t *testing.T) {
	r := NewRNG(33)
	vals := []string{"a", "b", "c", "d", "e", "f"}
	orig := append([]string{}, vals...)
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := map[string]bool{}
	for _, v := range vals {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("shuffle lost element %q", v)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	r := NewRNG(37)
	for _, theta := range []float64{0, 0.5, 1} {
		z := NewZipf(r, 50, theta)
		var sum float64
		for v := int64(0); v <= 51; v++ {
			sum += z.Prob(v) // includes out-of-range v → 0
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("theta=%v: probabilities sum to %v", theta, sum)
		}
		if z.N() != 50 || z.Theta() != theta {
			t.Fatal("accessors wrong")
		}
	}
}

func TestZipfProbMonotoneDecreasing(t *testing.T) {
	r := NewRNG(41)
	z := NewZipf(r, 100, 1.0)
	for v := int64(2); v <= 100; v++ {
		if z.Prob(v) > z.Prob(v-1)+1e-12 {
			t.Fatalf("P(%d)=%v exceeds P(%d)=%v", v, z.Prob(v), v-1, z.Prob(v-1))
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(43)
	for _, f := range []func(){
		func() { NewZipf(r, 0, 1) },
		func() { NewZipf(r, 10, -1) },
		func() { r.Int63n(0) },
		func() { NewClock().Observe(0, func(Duration) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
