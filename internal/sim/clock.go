package sim

import (
	"fmt"
	"time"
)

// Duration is virtual time measured in nanoseconds. It mirrors
// time.Duration so traces format naturally, but all values in this
// repository are simulated: the engine *charges* time for work rather than
// measuring wall-clock time, which makes every experiment deterministic.
type Duration = time.Duration

// Clock is the virtual clock the execution engine charges simulated work
// against. Operators call Advance with the cost of each unit of work (per
// row CPU, per page I/O, ...), and observers register watermarks to be
// notified when the clock crosses sampling boundaries — this is how the DMV
// poller takes its "every 500 ms" snapshots (paper §2.2) without any real
// sleeping.
//
// Multiple observers may watch one clock concurrently (a DMV poller and a
// monitoring session share the executing query's clock); each keeps its own
// interval and fire schedule, and boundaries are delivered in virtual-time
// order, with ties broken by registration order.
//
// Clock is not safe for concurrent use; the engine is a single-threaded
// discrete-event simulation.
type Clock struct {
	now       Duration
	observers []*Observation
}

// Observation is the handle returned by Observe; Stop deregisters the
// observer.
type Observation struct {
	clock    *Clock
	interval Duration
	nextFire Duration
	cb       func(now Duration)
}

// Stop removes the observer from its clock. It is safe to call more than
// once, on a nil handle, and from inside an observer callback.
func (o *Observation) Stop() {
	if o == nil || o.clock == nil {
		return
	}
	c := o.clock
	for i, x := range c.observers {
		if x == o {
			c.observers = append(c.observers[:i], c.observers[i+1:]...)
			break
		}
	}
	o.clock = nil
	o.cb = nil
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// NewClockAt returns a clock pre-advanced to t with no observers: the
// private sub-clock a parallel worker charges its share of the query's
// work against, starting from the virtual instant its exchange zone
// opened. It panics on negative t (simulated time is monotone from zero).
func NewClockAt(t Duration) *Clock {
	if t < 0 {
		panic(fmt.Sprintf("sim: clock cannot start at negative time %v", t))
	}
	return &Clock{now: t}
}

// Now returns the current virtual time.
func (c *Clock) Now() Duration { return c.now }

// Advance moves the clock forward by d, firing every registered observer for
// every sampling boundary crossed, in boundary order (ties by registration
// order). Negative d panics: simulated time is monotone.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock moved backwards by %v", d))
	}
	c.now += d
	for {
		// Earliest due boundary across observers; re-scanned every
		// iteration so callbacks may Stop or Observe mid-delivery.
		var next *Observation
		for _, o := range c.observers {
			if o.cb != nil && o.nextFire <= c.now && (next == nil || o.nextFire < next.nextFire) {
				next = o
			}
		}
		if next == nil {
			return
		}
		at := next.nextFire
		next.nextFire += next.interval
		next.cb(at)
	}
}

// Observe registers cb to fire every interval of virtual time, starting at
// the first interval-grid boundary strictly after the current time (a clock
// sitting exactly on a grid point fires at the *next* point: boundaries are
// crossed by work, and no work has been charged yet at registration).
// It returns a handle whose Stop method deregisters the observer; any
// number of observers may be registered at once. Passing a nil cb removes
// every observer (legacy detach-all) and returns nil.
func (c *Clock) Observe(interval Duration, cb func(now Duration)) *Observation {
	if cb == nil {
		for _, o := range c.observers {
			o.clock = nil
			o.cb = nil
		}
		c.observers = nil
		return nil
	}
	if interval <= 0 {
		panic("sim: non-positive observe interval")
	}
	o := &Observation{
		clock:    c,
		interval: interval,
		cb:       cb,
		// First boundary strictly after now, aligned to the interval grid.
		nextFire: (c.now/interval + 1) * interval,
	}
	c.observers = append(c.observers, o)
	return o
}

// Reset returns the clock to time zero and clears all observers.
func (c *Clock) Reset() {
	c.now = 0
	for _, o := range c.observers {
		o.clock = nil
		o.cb = nil
	}
	c.observers = nil
}
