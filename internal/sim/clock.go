package sim

import (
	"fmt"
	"time"
)

// Duration is virtual time measured in nanoseconds. It mirrors
// time.Duration so traces format naturally, but all values in this
// repository are simulated: the engine *charges* time for work rather than
// measuring wall-clock time, which makes every experiment deterministic.
type Duration = time.Duration

// Clock is the virtual clock the execution engine charges simulated work
// against. Operators call Advance with the cost of each unit of work (per
// row CPU, per page I/O, ...), and observers register watermarks to be
// notified when the clock crosses sampling boundaries — this is how the DMV
// poller takes its "every 500 ms" snapshots (paper §2.2) without any real
// sleeping.
//
// Clock is not safe for concurrent use; the engine is a single-threaded
// discrete-event simulation.
type Clock struct {
	now Duration

	// watermark-based observer: fires cb once for every multiple of
	// interval that Advance crosses. A single observer is sufficient for
	// the engine (the DMV poller); richer fan-out belongs in the poller.
	interval Duration
	nextFire Duration
	cb       func(now Duration)
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Duration { return c.now }

// Advance moves the clock forward by d, firing the registered observer for
// every sampling boundary crossed. Negative d panics: simulated time is
// monotone.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock moved backwards by %v", d))
	}
	c.now += d
	if c.cb == nil {
		return
	}
	for c.now >= c.nextFire {
		at := c.nextFire
		c.nextFire += c.interval
		c.cb(at)
	}
}

// Observe registers cb to fire every interval of virtual time, starting at
// the first multiple of interval at or after the current time. Passing a
// nil cb removes the observer. Only one observer is supported; registering
// a second replaces the first.
func (c *Clock) Observe(interval Duration, cb func(now Duration)) {
	if cb == nil {
		c.cb = nil
		return
	}
	if interval <= 0 {
		panic("sim: non-positive observe interval")
	}
	c.interval = interval
	// First boundary strictly after now, aligned to the interval grid.
	c.nextFire = (c.now/interval + 1) * interval
	c.cb = cb
}

// Reset returns the clock to time zero and clears any observer.
func (c *Clock) Reset() {
	c.now = 0
	c.cb = nil
	c.interval = 0
	c.nextFire = 0
}
