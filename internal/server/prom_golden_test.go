package server

// Golden test for the Prometheus exposition. Everything on /metrics
// derives from virtual time and deterministic workloads, so after the
// server quiesces (all queries terminal, watcher goroutines drained) the
// scrape is byte-for-byte reproducible — the golden file pins it. Run with
// -update to regenerate after an intentional format or counter change.
//
// A hand-rolled validator (no parser dependency) additionally checks the
// text-format grammar: HELP/TYPE precede their family's samples, families
// are contiguous, names and label blocks are well-formed, histogram
// buckets are cumulative and end at +Inf.

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// scrape fetches /metrics once.
func scrape(t *testing.T, ts string) string {
	t.Helper()
	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// scrapeQuiesced waits until the server reports no active queries and two
// consecutive scrapes agree (watcher decrements land asynchronously after
// the terminal poll), then returns the stable exposition.
func scrapeQuiesced(t *testing.T, ts string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	prev := ""
	for time.Now().Before(deadline) {
		cur := scrape(t, ts)
		if strings.Contains(cur, "server_active 0") && cur == prev {
			return cur
		}
		prev = cur
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("metrics never quiesced")
	return ""
}

func TestMetricsGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{
		PollInterval: 5 * time.Millisecond, // virtual: ~8 ticks for Q1, ~4 for Q6
	})
	// Two tenants, two queries, fixed seeds: the whole exposition is a
	// function of the virtual execution, nothing else.
	a := submit(t, ts, QuerySpec{Query: "Q1", Tenant: "acme"})
	b := submit(t, ts, QuerySpec{Query: "Q6", Tenant: "beta"})
	waitTerminal(t, ts, a.ID)
	waitTerminal(t, ts, b.ID)

	got := scrapeQuiesced(t, ts.URL)
	validatePromText(t, got)

	// The issue's acceptance criteria: all three counter classes present,
	// with per-query labels, and degradation surfaced as a label.
	for _, want := range []string{
		`lqs_query_progress{degraded="false",qid="1",query="Q1",tenant="acme",workload="tpch"} 1`,
		`lqs_query_progress{degraded="false",qid="2",query="Q6",tenant="beta",workload="tpch"} 1`,
		`lqs_buffer_manager_page_hits_total{qid="1"`,
		`lqs_access_methods_logical_reads_total{qid="2"`,
		`lqs_query_state{qid="1",query="Q1",state="SUCCEEDED"`,
		`lqs_query_op_progress{node="0"`,
		`server_queries_submitted 2`,
		"# TYPE lqs_query_progress gauge",
		"# TYPE lqs_buffer_manager_page_hits_total counter",
		// PR 9: the retrospective accuracy family — one series per estimator
		// mode per finished query, tenant+mode labeled, golden-pinned.
		`lqs_query_accuracy_mean_abs_error{mode="LQS",qid="1",query="Q1",tenant="acme",workload="tpch"}`,
		`lqs_query_accuracy_mean_abs_error{mode="TGN",qid="1"`,
		`lqs_query_accuracy_mean_abs_error{mode="DNE",qid="2"`,
		`lqs_query_accuracy_terminal_error{mode="LQS",qid="2",query="Q6",tenant="beta",workload="tpch"}`,
		`lqs_query_accuracy_bounds_coverage{mode="LQS",qid="1",query="Q1",tenant="acme",workload="tpch"} 1`,
		`lqs_query_accuracy_monotonicity_violations{mode="LQS",qid="1"`,
		`lqs_query_accuracy_polls{mode="TGN",qid="2"`,
		"# TYPE lqs_query_accuracy_mean_abs_error gauge",
		"# TYPE server_accuracy_mean_abs_err_lqs histogram",
		"server_accuracy_computed 2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("full exposition:\n%s", got)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("metrics exposition diverged from golden (re-run with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// validatePromText checks text-format 0.0.4 structure line by line.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	types := map[string]string{}    // family -> declared type
	seenFamily := map[string]bool{} // family -> samples started
	lastFamily := ""
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case line == "":
			t.Fatalf("line %d: empty line inside exposition", ln+1)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !nameRe.MatchString(name) {
				t.Fatalf("line %d: bad HELP: %q", ln+1, line)
			}
			if seenFamily[name] {
				t.Fatalf("line %d: HELP for %s after its samples", ln+1, name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !nameRe.MatchString(fields[0]) {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, fields[1])
			}
			if _, dup := types[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[0])
			}
			types[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: bad comment: %q", ln+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			name, labels, value := m[1], m[2], m[3]
			if labels != "" {
				for _, pair := range splitLabelPairs(labels[1 : len(labels)-1]) {
					if !labelRe.MatchString(pair) {
						t.Fatalf("line %d: bad label pair %q", ln+1, pair)
					}
				}
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
				t.Fatalf("line %d: bad value %q", ln+1, value)
			}
			fam := familyOf(name, types)
			seenFamily[fam] = true
			if lastFamily != "" && fam != lastFamily && seenFamilyBefore(fam, lastFamily, text, ln) {
				t.Fatalf("line %d: family %s not contiguous", ln+1, fam)
			}
			lastFamily = fam
		}
	}
	if len(types) == 0 {
		t.Fatal("no TYPE lines in exposition")
	}
	checkHistograms(t, text, types)
}

// familyOf maps a sample name to its family (histogram suffixes collapse).
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// seenFamilyBefore reports whether fam had samples before line ln with a
// different family in between (non-contiguous grouping).
func seenFamilyBefore(fam, last string, text string, ln int) bool {
	seen := false
	for i, line := range strings.Split(text, "\n") {
		if i >= ln {
			return seen
		}
		if strings.HasPrefix(line, fam+" ") || strings.HasPrefix(line, fam+"{") {
			seen = true
		}
	}
	return seen
}

// splitLabelPairs splits name="v",name="v" at top-level commas.
func splitLabelPairs(s string) []string {
	var out []string
	depth, start := false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// checkHistograms asserts cumulative buckets ending at +Inf with the
// _count equal to the +Inf bucket.
func checkHistograms(t *testing.T, text string, types map[string]string) {
	t.Helper()
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		var lastCum float64 = -1
		var infSeen bool
		var infVal, countVal float64
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, fam+"_bucket{") {
				_, v, _ := strings.Cut(line, "} ")
				cum, _ := strconv.ParseFloat(v, 64)
				if cum < lastCum {
					t.Fatalf("histogram %s buckets not cumulative: %q", fam, line)
				}
				lastCum = cum
				if strings.Contains(line, `le="+Inf"`) {
					infSeen, infVal = true, cum
				}
			}
			if strings.HasPrefix(line, fam+"_count ") || strings.HasPrefix(line, fam+"_count{") {
				_, v, _ := strings.Cut(line, " ")
				countVal, _ = strconv.ParseFloat(v, 64)
			}
		}
		if !infSeen {
			t.Fatalf("histogram %s has no +Inf bucket", fam)
		}
		if infVal != countVal {
			t.Fatalf("histogram %s: +Inf bucket %v != _count %v", fam, infVal, countVal)
		}
	}
}

// TestMetricsDegradedLabelNeverAGap: the degradation path surfaces as a
// labeled series, not a missing one — while a query runs, its progress
// series is present with degraded="false" (or "true"), never absent.
func TestMetricsDegradedLabelNeverAGap(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pace: 2 * time.Millisecond, // Q1 ~80ms wall: scrape mid-flight
	})
	sub := submit(t, ts, QuerySpec{Query: "Q1", Tenant: "live"})
	series := `lqs_query_progress{degraded="`
	found := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got := scrape(t, ts.URL)
		if strings.Contains(got, series) && strings.Contains(got, `tenant="live"`) {
			found = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !found {
		t.Fatal("progress series with degraded label never appeared mid-flight")
	}
	waitTerminal(t, ts, sub.ID)
}
