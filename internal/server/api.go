package server

// Wire types of the JSON API. Every duration on the wire is virtual time
// in microseconds (the engine simulates time; nothing here is wall clock),
// so responses are deterministic for a deterministic workload.

import (
	"encoding/json"
	"net/http"

	"lqs/internal/lqs"
	"lqs/internal/progress"
	"lqs/internal/sim"
)

// QuerySpec is the POST /queries request body: which workload query to
// host and how to run it.
type QuerySpec struct {
	// Workload names the generator: tpch, tpch-cs, tpcds, real1, real2,
	// real3. Default tpch.
	Workload string `json:"workload,omitempty"`
	// Query is the query name within the workload (Q1, Q6, ...). Required.
	Query string `json:"query"`
	// Seed is the workload generator seed. Default 42.
	Seed uint64 `json:"seed,omitempty"`
	// DOP is the degree of parallelism for parallel zones. Default 1.
	DOP int `json:"dop,omitempty"`
	// Tenant labels the query's metric series and registry listing.
	// Default "default".
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMS aborts the query at this much virtual time, like
	// lqsmon -deadline. 0 means none.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Mode selects the estimator configuration monitoring this query:
	// tgn, dne, lqs, or ens/ensemble. Default lqs. Normalized to the
	// canonical mode label (TGN/DNE/LQS/ENS) in every response.
	Mode string `json:"mode,omitempty"`
}

// SubmitResponse is the POST /queries reply.
type SubmitResponse struct {
	ID       int64  `json:"id"`
	Name     string `json:"name"`
	Location string `json:"location"`
}

// OpJSON is one operator's live display state within a status or frame.
type OpJSON struct {
	Node     int     `json:"node"`
	Op       string  `json:"op"`
	Progress float64 `json:"progress"`
	Rows     int64   `json:"rows"`
	EstRows  float64 `json:"est_rows"`
	Active   bool    `json:"active,omitempty"`
	Done     bool    `json:"done,omitempty"`
}

// TermJSON is one operator's term in the estimator decomposition
// (progress.Term over the wire).
type TermJSON struct {
	Node         int     `json:"node"`
	Op           string  `json:"op"`
	K            int64   `json:"k"`
	N            float64 `json:"n"`
	EstRows      float64 `json:"est_rows"`
	Source       string  `json:"source"`
	Alpha        float64 `json:"alpha,omitempty"`
	Pipeline     int     `json:"pipeline"`
	Driver       bool    `json:"driver,omitempty"`
	InnerDriver  bool    `json:"inner_driver,omitempty"`
	Contribution float64 `json:"contribution"`
}

// CandidateJSON is one ensemble candidate's selector row: its blend
// weight, self-consistency penalty, and displayed/raw progress this poll.
type CandidateJSON struct {
	Name     string  `json:"name"`
	Weight   float64 `json:"weight"`
	Penalty  float64 `json:"penalty"`
	Query    float64 `json:"query"`
	RawQuery float64 `json:"raw_query"`
	Selected bool    `json:"selected,omitempty"`
}

// ExplainJSON is the estimator decomposition of one poll: terms whose
// contributions sum exactly to RawQuery, for every estimator mode —
// the invariant the e2e battery re-proves over the wire. In ensemble mode
// Candidates carries the selector state (weights sum to 1).
type ExplainJSON struct {
	AtUS       int64           `json:"at_us"`
	Mode       string          `json:"mode"`
	RawQuery   float64         `json:"raw_query"`
	Query      float64         `json:"query"`
	Degraded   bool            `json:"degraded,omitempty"`
	Terms      []TermJSON      `json:"terms"`
	Candidates []CandidateJSON `json:"candidates,omitempty"`
}

// StatusJSON is the GET /queries/{id} reply: one poll's display state.
type StatusJSON struct {
	ID            int64        `json:"id"`
	Name          string       `json:"name"`
	Workload      string       `json:"workload"`
	Query         string       `json:"query"`
	Tenant        string       `json:"tenant"`
	DOP           int          `json:"dop"`
	Mode          string       `json:"mode"`
	State         string       `json:"state"`
	Terminal      bool         `json:"terminal"`
	Progress      float64      `json:"progress"`
	Rows          int64        `json:"rows"`
	VirtualUS     int64        `json:"virtual_us"`
	Degraded      bool         `json:"degraded,omitempty"`
	DegradeReason string       `json:"degrade_reason,omitempty"`
	Error         string       `json:"error,omitempty"`
	Ops           []OpJSON     `json:"ops,omitempty"`
	Explain       *ExplainJSON `json:"explain,omitempty"`
}

// ListResponse is the GET /queries reply.
type ListResponse struct {
	Queries []StatusJSON `json:"queries"`
}

// FrameJSON is one SSE progress frame (GET /queries/{id}/stream).
type FrameJSON struct {
	AtUS          int64    `json:"at_us"`
	Progress      float64  `json:"progress"`
	State         string   `json:"state"`
	Terminal      bool     `json:"terminal"`
	Rows          int64    `json:"rows"`
	Degraded      bool     `json:"degraded,omitempty"`
	DegradeReason string   `json:"degrade_reason,omitempty"`
	Error         string   `json:"error,omitempty"`
	Ops           []OpJSON `json:"ops"`
}

// HistNodeJSON is one node's raw DMV counters in a history frame.
type HistNodeJSON struct {
	Node   int    `json:"node"`
	Op     string `json:"op"`
	Rows   int64  `json:"rows"`
	CPUUS  int64  `json:"cpu_us"`
	IOUS   int64  `json:"io_us"`
	Opened bool   `json:"opened,omitempty"`
	Closed bool   `json:"closed,omitempty"`
}

// HistFrameJSON is one flight-recorder snapshot (GET /queries/{id}/history).
type HistFrameJSON struct {
	AtUS          int64          `json:"at_us"`
	Degraded      bool           `json:"degraded,omitempty"`
	DegradeReason string         `json:"degrade_reason,omitempty"`
	Nodes         []HistNodeJSON `json:"nodes"`
}

// HistoryResponse is the GET /queries/{id}/history reply: the dmv.Poller
// flight recorder over the wire.
type HistoryResponse struct {
	Frames  []HistFrameJSON `json:"frames"`
	Dropped int64           `json:"dropped"`
}

// Error codes of the typed JSON error body.
const (
	CodeBadRequest        = "BAD_REQUEST"
	CodeUnknownQuery      = "UNKNOWN_QUERY"
	CodeNotFound          = "NOT_FOUND"
	CodeAdmissionRejected = "ADMISSION_REJECTED"
	CodeDraining          = "DRAINING"
	CodeNotTerminal       = "NOT_TERMINAL"
)

// APIError is the typed error body: {"error": {...}}.
type APIError struct {
	Code          string `json:"code"`
	Message       string `json:"message"`
	MaxConcurrent int    `json:"max_concurrent,omitempty"`
}

type errorBody struct {
	Err APIError `json:"error"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErr writes a typed JSON error body.
func writeErr(w http.ResponseWriter, status int, e APIError) {
	writeJSON(w, status, errorBody{Err: e})
}

// us converts virtual time to wire microseconds.
func us(d sim.Duration) int64 { return int64(d / 1000) }

// opsJSON converts a session snapshot's operator rows.
func opsJSON(ops []lqs.OpStatus) []OpJSON {
	out := make([]OpJSON, len(ops))
	for i, op := range ops {
		out[i] = OpJSON{
			Node:     op.NodeID,
			Op:       op.Name,
			Progress: op.Progress,
			Rows:     op.RowsSoFar,
			EstRows:  op.EstRows,
			Active:   op.Active,
			Done:     op.Done,
		}
	}
	return out
}

// explainJSON converts an estimator decomposition.
func explainJSON(x *progress.Explanation) *ExplainJSON {
	out := &ExplainJSON{
		AtUS:     us(x.At),
		Mode:     x.Mode,
		RawQuery: x.RawQuery,
		Query:    x.Query,
		Degraded: x.Degraded,
		Terms:    make([]TermJSON, len(x.Terms)),
	}
	for i, t := range x.Terms {
		out.Terms[i] = TermJSON{
			Node:         t.NodeID,
			Op:           t.Physical.String(),
			K:            t.K,
			N:            t.N,
			EstRows:      t.EstRows,
			Source:       t.Source.String(),
			Alpha:        t.Alpha,
			Pipeline:     t.Pipeline,
			Driver:       t.Driver,
			InnerDriver:  t.InnerDriver,
			Contribution: t.Contribution,
		}
	}
	for _, c := range x.Candidates {
		out.Candidates = append(out.Candidates, CandidateJSON{
			Name:     c.Name,
			Weight:   c.Weight,
			Penalty:  c.Penalty,
			Query:    c.Query,
			RawQuery: c.RawQuery,
			Selected: c.Selected,
		})
	}
	return out
}
