package server

// End-to-end integration battery: real TPC-H queries run under virtual
// time behind the HTTP API, and the estimator's invariants are re-proved
// from what a remote client actually receives over the wire —
//
//   - query progress in [0,1] and monotone non-decreasing across polls;
//   - virtual time and result rows monotone non-decreasing;
//   - per-operator progress bounded;
//   - Explain term contributions summing to the raw query estimate;
//   - the terminal poll reporting SUCCEEDED at progress ~1 with every
//     operator done.
//
// Queries are paced (wall-clock sleep per interval of virtual time) so the
// polling client observes genuinely mid-flight snapshots, not a terminal
// flash: TPC-H Q1 runs ~40ms of virtual time, Q6 ~25ms.

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

const floatEps = 1e-9

// pacedConfig runs queries slowly enough for a poller to watch them.
func pacedConfig() Config {
	return Config{
		Pace:         500 * time.Microsecond, // per 1ms virtual => Q1 ~20ms wall
		StreamTick:   2 * time.Millisecond,
		PollInterval: 2 * time.Millisecond, // virtual flight-recorder cadence
	}
}

// pollTrace polls status?explain=1 until terminal, checking cross-poll
// monotonicity as it goes, and returns every observed status.
func pollTrace(t *testing.T, ts *httptest.Server, id int64) []StatusJSON {
	t.Helper()
	var trace []StatusJSON
	url := fmt.Sprintf("%s/queries/%d?explain=1", ts.URL, id)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var st StatusJSON
		if code := getJSON(t, url, &st); code != http.StatusOK {
			t.Fatalf("status code %d polling query %d", code, id)
		}
		trace = append(trace, st)
		if st.Terminal {
			return trace
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("query %d never terminal (last: %+v)", id, trace[len(trace)-1])
	return nil
}

// checkStatusInvariants asserts the single-poll invariants on st and the
// cross-poll ones against prev (nil for the first poll).
func checkStatusInvariants(t *testing.T, st StatusJSON, prev *StatusJSON) {
	t.Helper()
	if st.Progress < -floatEps || st.Progress > 1+floatEps {
		t.Fatalf("progress out of bounds: %v", st.Progress)
	}
	if st.VirtualUS < 0 || st.Rows < 0 {
		t.Fatalf("negative time/rows: %+v", st)
	}
	for _, op := range st.Ops {
		if op.Progress < -floatEps || op.Progress > 1+floatEps {
			t.Fatalf("op %d (%s) progress out of bounds: %v", op.Node, op.Op, op.Progress)
		}
		if op.Rows < 0 {
			t.Fatalf("op %d rows negative: %+v", op.Node, op)
		}
	}
	if x := st.Explain; x != nil {
		var sum float64
		for _, term := range x.Terms {
			if term.K < 0 || term.N < 0 {
				t.Fatalf("term with negative k/N: %+v", term)
			}
			sum += term.Contribution
		}
		if math.Abs(sum-x.RawQuery) > 1e-6 {
			t.Fatalf("explain contributions sum %v != raw_query %v (mode %s)", sum, x.RawQuery, x.Mode)
		}
		if x.Query < -floatEps || x.Query > 1+floatEps {
			t.Fatalf("explain display progress out of bounds: %v", x.Query)
		}
	}
	if prev != nil {
		if st.Progress < prev.Progress-floatEps {
			t.Fatalf("progress regressed: %v -> %v", prev.Progress, st.Progress)
		}
		if st.VirtualUS < prev.VirtualUS {
			t.Fatalf("virtual time regressed: %d -> %d", prev.VirtualUS, st.VirtualUS)
		}
		if st.Rows < prev.Rows {
			t.Fatalf("rows regressed: %d -> %d", prev.Rows, st.Rows)
		}
	}
}

// checkTerminal asserts the end state of a successful run.
func checkTerminal(t *testing.T, st StatusJSON, wantRows int64) {
	t.Helper()
	if st.State != "SUCCEEDED" || !st.Terminal {
		t.Fatalf("terminal state: %+v", st)
	}
	if st.Progress < 1-1e-6 || st.Progress > 1+floatEps {
		t.Fatalf("terminal progress %v, want ~1", st.Progress)
	}
	if wantRows > 0 && st.Rows != wantRows {
		t.Fatalf("rows %d, want %d", st.Rows, wantRows)
	}
	for _, op := range st.Ops {
		if !op.Done {
			t.Fatalf("terminal poll with unfinished operator: %+v", op)
		}
	}
}

func TestE2EInvariantsOverTheWire(t *testing.T) {
	for _, tc := range []struct {
		query string
		rows  int64
	}{
		{"Q1", 6}, // grouped aggregate: 6 result rows over ~40ms virtual
		{"Q6", 1}, // scalar aggregate: 1 result row over ~25ms virtual
	} {
		t.Run(tc.query, func(t *testing.T) {
			_, ts := newTestServer(t, pacedConfig())
			sub := submit(t, ts, QuerySpec{Query: tc.query})
			trace := pollTrace(t, ts, sub.ID)
			var prev *StatusJSON
			for i := range trace {
				checkStatusInvariants(t, trace[i], prev)
				prev = &trace[i]
			}
			checkTerminal(t, trace[len(trace)-1], tc.rows)
			if len(trace) < 3 {
				t.Fatalf("pacing failed: only %d polls observed the query", len(trace))
			}
			// At least one genuinely mid-flight poll.
			mid := false
			for _, st := range trace {
				if !st.Terminal && st.Progress > 0 && st.Progress < 1 {
					mid = true
					break
				}
			}
			if !mid {
				t.Fatalf("no mid-flight snapshot in %d polls", len(trace))
			}
		})
	}
}

// TestE2EConcurrentQueriesIndependent: two queries hosted at once keep
// independent, individually-consistent progress (private engines; no
// cross-talk), with invariants holding for both interleaved poll streams.
func TestE2EConcurrentQueriesIndependent(t *testing.T) {
	_, ts := newTestServer(t, pacedConfig())
	a := submit(t, ts, QuerySpec{Query: "Q1", Tenant: "a"})
	b := submit(t, ts, QuerySpec{Query: "Q6", Tenant: "b"})

	var prevA, prevB *StatusJSON
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var stA, stB StatusJSON
		getJSON(t, fmt.Sprintf("%s/queries/%d?explain=1", ts.URL, a.ID), &stA)
		getJSON(t, fmt.Sprintf("%s/queries/%d?explain=1", ts.URL, b.ID), &stB)
		checkStatusInvariants(t, stA, prevA)
		checkStatusInvariants(t, stB, prevB)
		stACopy, stBCopy := stA, stB
		prevA, prevB = &stACopy, &stBCopy
		if stA.Terminal && stB.Terminal {
			checkTerminal(t, stA, 6)
			checkTerminal(t, stB, 1)
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("queries never both terminal")
}

// TestE2EStreamFrames: the SSE stream delivers monotone bounded frames and
// always ends with a terminal frame whose state matches a direct poll.
func TestE2EStreamFrames(t *testing.T) {
	_, ts := newTestServer(t, pacedConfig())
	sub := submit(t, ts, QuerySpec{Query: "Q1"})

	resp, err := http.Get(fmt.Sprintf("%s/queries/%d/stream?interval_ms=2", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	frames := readSSE(t, resp.Body)
	if len(frames) < 3 {
		t.Fatalf("only %d SSE frames for a ~20ms paced query", len(frames))
	}
	last := frames[len(frames)-1]
	if last.Event != "terminal" || !last.Frame.Terminal || last.Frame.State != "SUCCEEDED" {
		t.Fatalf("stream did not end with a successful terminal frame: %+v", last)
	}
	if last.Frame.Rows != 6 || last.Frame.Progress < 1-1e-6 {
		t.Fatalf("terminal frame contents: %+v", last.Frame)
	}
	var prev FrameJSON
	for i, fr := range frames {
		f := fr.Frame
		if f.Progress < -floatEps || f.Progress > 1+floatEps {
			t.Fatalf("frame %d progress out of bounds: %v", i, f.Progress)
		}
		if len(f.Ops) == 0 {
			t.Fatalf("frame %d has no per-operator rows", i)
		}
		if i > 0 {
			if f.Progress < prev.Progress-floatEps || f.AtUS < prev.AtUS || f.Rows < prev.Rows {
				t.Fatalf("frame %d regressed vs %d: %+v then %+v", i, i-1, prev, f)
			}
		}
		prev = f
	}

	// The direct poll agrees with the stream's terminal frame.
	st := waitTerminal(t, ts, sub.ID)
	if st.Progress != last.Frame.Progress || st.Rows != last.Frame.Rows {
		t.Fatalf("poll %+v disagrees with terminal frame %+v", st, last.Frame)
	}
}

// TestE2EDeadlineAbort: a virtual-time deadline set in the spec aborts the
// query server-side, and the failure is visible over the wire as a
// terminal FAILED status carrying the error.
func TestE2EDeadlineAbort(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub := submit(t, ts, QuerySpec{Query: "Q1", DeadlineMS: 10}) // Q1 needs ~40ms virtual
	st := waitTerminal(t, ts, sub.ID)
	if st.State == "SUCCEEDED" || st.Error == "" {
		t.Fatalf("deadline did not abort: %+v", st)
	}
	if st.Progress < -floatEps || st.Progress > 1+floatEps {
		t.Fatalf("aborted progress out of bounds: %v", st.Progress)
	}
}

// TestE2EEnsembleMode: a query submitted with mode=ensemble is monitored
// by the §4j ensemble estimator end to end — the status echoes the
// canonical mode label, every explained poll carries the candidate panel
// (weights normalized, exactly one selected, blend inside the candidates'
// envelope), and the standard wire invariants keep holding. Unknown modes
// are rejected with a typed 400 before any workload is built.
func TestE2EEnsembleMode(t *testing.T) {
	_, ts := newTestServer(t, pacedConfig())

	var errBody errorBody
	if code := postJSON(t, ts.URL+"/queries", QuerySpec{Query: "Q1", Mode: "könig"}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("unknown mode accepted: status %d", code)
	}
	if errBody.Err.Code != CodeBadRequest {
		t.Fatalf("unknown mode error code %q, want %s", errBody.Err.Code, CodeBadRequest)
	}

	sub := submit(t, ts, QuerySpec{Query: "Q1", Mode: "Ensemble"}) // case-insensitive alias
	trace := pollTrace(t, ts, sub.ID)
	var prev *StatusJSON
	sawCandidates := false
	for i := range trace {
		st := trace[i]
		checkStatusInvariants(t, st, prev)
		if st.Mode != "ENS" {
			t.Fatalf("poll %d: mode echoed as %q, want ENS", i, st.Mode)
		}
		if x := st.Explain; x != nil {
			if x.Mode != "ensemble" {
				t.Fatalf("poll %d: explain mode %q, want ensemble", i, x.Mode)
			}
			if len(x.Candidates) == 0 {
				t.Fatalf("poll %d: ensemble explain without candidate panel", i)
			}
			sawCandidates = true
			var wsum float64
			selected := 0
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, c := range x.Candidates {
				if c.Weight < -floatEps || c.Weight > 1+floatEps {
					t.Fatalf("poll %d: candidate %s weight %v", i, c.Name, c.Weight)
				}
				wsum += c.Weight
				if c.Selected {
					selected++
				}
				lo = math.Min(lo, c.RawQuery)
				hi = math.Max(hi, c.RawQuery)
			}
			if math.Abs(wsum-1) > floatEps {
				t.Fatalf("poll %d: candidate weights sum %v, want 1", i, wsum)
			}
			if selected != 1 {
				t.Fatalf("poll %d: %d candidates selected, want exactly 1", i, selected)
			}
			if x.RawQuery < lo-floatEps || x.RawQuery > hi+floatEps {
				t.Fatalf("poll %d: blended raw %v outside candidate envelope [%v, %v]", i, x.RawQuery, lo, hi)
			}
		}
		prev = &trace[i]
	}
	if !sawCandidates {
		t.Fatal("no poll carried the ensemble candidate panel")
	}
	checkTerminal(t, trace[len(trace)-1], 6)

	// The default mode stays LQS and is echoed canonically.
	def := submit(t, ts, QuerySpec{Query: "Q6"})
	if st := waitTerminal(t, ts, def.ID); st.Mode != "LQS" {
		t.Fatalf("default mode echoed as %q, want LQS", st.Mode)
	}
}
