package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lqs/internal/accuracy"
	"lqs/internal/chaos"
	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/storage"
	"lqs/internal/lqs"
	"lqs/internal/obs"
	"lqs/internal/progress"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// hostedQuery is one monitored query the server hosts: the session and its
// private database, the virtual-time DMV poller (flight recorder), and the
// SSE fan-out. The registry's runner goroutine steps the query; a watcher
// goroutine closes terminal when it finishes; the fanout goroutine owns
// the shared poll cadence for every streaming client.
type hostedQuery struct {
	id   lqs.QueryID
	name string
	spec QuerySpec
	srv  *Server

	sess   *lqs.Session
	poller *dmv.Poller
	db     *storage.Database

	fan *fanout
	// terminal closes once the runner goroutine has finished (the query is
	// in a terminal state and its result is recorded in the registry).
	terminal chan struct{}

	// pollVer counts flight-recorder poll ticks; a clock observer bumps it
	// on the executor goroutine, and the scrape cache below keys on it so
	// cached /metrics points invalidate exactly when a new poll could have
	// changed them.
	pollVer atomic.Int64
	// Scrape cache: /metrics output for this query, recomputed only when
	// the cache key (poll version, lifecycle state, accuracy readiness)
	// moves. A server hosting hundreds of queries stops re-snapshotting
	// every one of them on every scrape.
	cacheMu  sync.Mutex
	cacheKey pointsKey
	cachePts []obs.Point
	cacheOK  bool

	// Retrospective accuracy report, memoized at terminal state by the
	// watcher goroutine (accOnce guards the replay).
	accOnce    sync.Once
	acc        []accuracy.QueryAccuracy
	accDropped int64
}

// pointsKey is the scrape-cache invalidation key: any observable change to
// a query's /metrics points moves at least one field — a new flight-
// recorder poll, a lifecycle transition, or the terminal accuracy report
// becoming available.
type pointsKey struct {
	ver   int64
	state exec.QueryState
	acc   bool
}

// done reports whether the query has fully finished (runner exited).
func (h *hostedQuery) done() bool {
	select {
	case <-h.terminal:
		return true
	default:
		return false
	}
}

// buildWorkload regenerates a workload from its name and seed. Each hosted
// query gets a private database (its own buffer pool and virtual clock),
// so concurrent queries never contend on engine state and every query's
// counters stay deterministic.
func buildWorkload(name string, seed uint64) (*workload.Workload, error) {
	switch strings.ToLower(name) {
	case "", "tpch":
		return workload.TPCH(seed, workload.TPCHRowstore), nil
	case "tpch-cs":
		return workload.TPCH(seed, workload.TPCHColumnstore), nil
	case "tpcds":
		return workload.TPCDS(seed), nil
	case "real1":
		return workload.REAL1(seed), nil
	case "real2":
		return workload.REAL2(seed), nil
	case "real3":
		return workload.REAL3(seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// modeOptions resolves a QuerySpec estimator mode to its canonical label
// and estimator options. Empty means lqs, the shipping default.
func modeOptions(mode string) (string, progress.Options, error) {
	switch strings.ToLower(mode) {
	case "", "lqs":
		return "LQS", progress.LQSOptions(), nil
	case "tgn":
		return "TGN", progress.TGNOptions(), nil
	case "dne":
		return "DNE", progress.DNEOptions(), nil
	case "ens", "ensemble":
		return progress.ModeEnsemble, progress.EnsembleOptions(), nil
	}
	return "", progress.Options{}, fmt.Errorf("unknown estimator mode %q (want tgn, dne, lqs, or ens)", mode)
}

// newHosted builds the session, poller, and pacing for a validated spec.
// It does not launch; the server launches under its admission lock.
func newHosted(srv *Server, spec QuerySpec) (*hostedQuery, error) {
	w, err := buildWorkload(spec.Workload, spec.Seed)
	if err != nil {
		return nil, err
	}
	var query *workload.Query
	for i := range w.Queries {
		if strings.EqualFold(w.Queries[i].Name, spec.Query) {
			query = &w.Queries[i]
			break
		}
	}
	if query == nil {
		return nil, fmt.Errorf("no query %q in workload %s", spec.Query, w.Name)
	}
	mode, opts, err := modeOptions(spec.Mode)
	if err != nil {
		return nil, err
	}
	spec.Mode = mode

	sess := lqs.StartDOP(w.DB, query.Build(w.Builder()), spec.DOP, opts)
	if spec.DeadlineMS > 0 {
		sess.Query.Ctx.Deadline = time.Duration(spec.DeadlineMS) * time.Millisecond
	}

	// Fault drills against the live endpoint: install the chaos injectors
	// on this query's private stack, with a per-query seed derived from the
	// server ordinal so concurrent queries draw independent fault streams.
	var chaosPlan *chaos.Plan
	if srv.cfg.Chaos != nil {
		ccfg := *srv.cfg.Chaos
		ccfg.Seed = perQueryChaosSeed(ccfg.Seed, srv.chaosOrdinal.Add(1))
		chaosPlan = chaos.NewPlan(ccfg)
		w.DB.Pool.SetFaultInjector(chaosPlan.StorageInjector())
		sess.Query.Ctx.Chaos = chaosPlan.ExecInjector()
		sess.SetSnapshotFault(chaosPlan.PollFault())
	}

	h := &hostedQuery{
		name:     w.Name + "/" + query.Name,
		spec:     spec,
		srv:      srv,
		sess:     sess,
		db:       w.DB,
		fan:      newFanout(),
		terminal: make(chan struct{}),
	}

	// Flight recorder: a DMV poller on the query's own virtual clock. Its
	// observer fires inside Advance on the executor goroutine (which holds
	// the counter lock), so readers synchronize via LockCounters.
	h.poller = dmv.NewPoller(sess.Query.Ctx.Clock, srv.cfg.PollInterval)
	h.poller.SetHistoryCap(srv.cfg.HistoryCap)
	h.poller.SetMetrics(srv.obs)
	if chaosPlan != nil {
		// A fresh PollFault instance: the hooks are stateful and single-use,
		// so the flight recorder and the session monitor each get their own.
		h.poller.SetFault(chaosPlan.PollFault())
	}
	h.poller.Register(sess.Query)

	// Scrape-cache invalidation: bump the poll version at every flight-
	// recorder tick (same cadence, its own observer — fires on the executor
	// goroutine; the bump is atomic).
	sess.Query.Ctx.Clock.Observe(srv.cfg.PollInterval, func(sim.Duration) {
		h.pollVer.Add(1)
	})

	// Pacing: convert virtual progress into wall time so remote observers
	// see a query *run* rather than a terminal flash. The observer sleeps
	// on the executor goroutine at every PaceInterval of virtual time.
	if srv.cfg.Pace > 0 {
		pace := srv.cfg.Pace
		sess.Query.Ctx.Clock.Observe(srv.cfg.PaceInterval, func(sim.Duration) {
			time.Sleep(pace)
		})
	}
	return h, nil
}

// status builds one poll's wire status. Snapshot and Explain are separate
// polls of the shared session (each internally consistent; both safe from
// any goroutine).
func (h *hostedQuery) status(withOps, withExplain bool) StatusJSON {
	snap := h.sess.Snapshot()
	st := StatusJSON{
		ID:            int64(h.id),
		Name:          h.name,
		Workload:      h.spec.Workload,
		Query:         h.spec.Query,
		Tenant:        h.spec.Tenant,
		DOP:           h.spec.DOP,
		Mode:          h.spec.Mode,
		State:         snap.State.String(),
		Terminal:      snap.State.Terminal(),
		Progress:      snap.Progress,
		Rows:          h.sess.Query.RowsReturned(),
		VirtualUS:     us(snap.At),
		Degraded:      snap.Degraded,
		DegradeReason: snap.DegradeReason,
	}
	if snap.Err != nil {
		st.Error = snap.Err.Error()
	}
	if withOps {
		st.Ops = opsJSON(snap.Ops)
	}
	if withExplain {
		st.Explain = explainJSON(h.sess.Explain())
	}
	return st
}

// frame builds one SSE frame from a fresh poll.
func (h *hostedQuery) frame() FrameJSON {
	snap := h.sess.Snapshot()
	f := FrameJSON{
		AtUS:          us(snap.At),
		Progress:      snap.Progress,
		State:         snap.State.String(),
		Terminal:      snap.State.Terminal(),
		Rows:          h.sess.Query.RowsReturned(),
		Degraded:      snap.Degraded,
		DegradeReason: snap.DegradeReason,
		Ops:           opsJSON(snap.Ops),
	}
	if snap.Err != nil {
		f.Error = snap.Err.Error()
	}
	return f
}

// history drains the poller flight recorder into wire frames. It holds the
// query counter lock to synchronize with the executor-side poller observer.
func (h *hostedQuery) history() HistoryResponse {
	q := h.sess.Query
	q.LockCounters()
	defer q.UnlockCounters()
	snaps, dropped := h.poller.History(q)
	out := HistoryResponse{Frames: make([]HistFrameJSON, 0, len(snaps)), Dropped: dropped}
	for _, snap := range snaps {
		snap.Aggregate()
		hf := HistFrameJSON{
			AtUS:          us(snap.At),
			Degraded:      snap.Degraded,
			DegradeReason: snap.DegradeReason,
			Nodes:         make([]HistNodeJSON, 0, len(snap.Ops)),
		}
		for i := range snap.Ops {
			op := &snap.Ops[i]
			hf.Nodes = append(hf.Nodes, HistNodeJSON{
				Node:   op.NodeID,
				Op:     op.Physical.String(),
				Rows:   op.ActualRows,
				CPUUS:  us(op.CPUTime),
				IOUS:   us(op.IOTime),
				Opened: op.Opened,
				Closed: op.Closed,
			})
		}
		out.Frames = append(out.Frames, hf)
	}
	return out
}

// perQueryChaosSeed folds a query's submission ordinal into the server's
// master chaos seed (splitmix64 finalization), so every hosted query draws
// an independent, reproducible fault stream.
func perQueryChaosSeed(seed, ordinal uint64) uint64 {
	x := seed ^ (ordinal * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fanoutLoop owns the query's single shared poll cadence: one snapshot per
// tick, fanned out to every streaming client (their chosen intervals gate
// delivery per client). On terminal it broadcasts a final frame to every
// client and closes the fan-out.
func (h *hostedQuery) fanoutLoop() {
	tick := time.NewTicker(h.srv.cfg.StreamTick)
	defer tick.Stop()
	for {
		select {
		case <-h.terminal:
			h.fan.close(h.frame())
			return
		case <-tick.C:
			if h.fan.empty() {
				continue
			}
			h.fan.broadcast(h.frame(), time.Now())
		}
	}
}
