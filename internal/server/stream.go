package server

// SSE fan-out with per-query coalescing: no matter how many clients
// stream one query, the hosted query's fanout goroutine takes exactly one
// snapshot per StreamTick and pushes it to every subscriber whose chosen
// interval has elapsed. Slow readers never stall the poll cadence — each
// subscriber channel is latest-wins, so a stalled client simply skips
// intermediate frames. The terminal frame is always delivered.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// subscriber is one streaming client's mailbox.
type subscriber struct {
	ch       chan sseEvent
	interval time.Duration
	last     time.Time // last delivery instant (zero: deliver immediately)
}

// sseEvent is one server-sent event ready for the wire.
type sseEvent struct {
	event string // "progress" or "terminal"
	data  []byte
}

// fanout is the subscriber set of one hosted query.
type fanout struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

func newFanout() *fanout { return &fanout{subs: make(map[*subscriber]struct{})} }

// empty reports whether any client is streaming (checked each tick so an
// unobserved query costs no snapshots).
func (f *fanout) empty() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs) == 0
}

// subscribe registers a client at its chosen interval. ok is false once
// the fan-out closed (query terminal): the caller renders the terminal
// frame itself instead of waiting on a dead channel.
func (f *fanout) subscribe(interval time.Duration) (s *subscriber, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, false
	}
	// Capacity 2: one progress frame in flight plus room for the terminal
	// frame; latest-wins replacement keeps the mailbox fresh.
	s = &subscriber{ch: make(chan sseEvent, 2), interval: interval}
	f.subs[s] = struct{}{}
	return s, true
}

// unsubscribe detaches a client; idempotent (close may already have
// removed it).
func (f *fanout) unsubscribe(s *subscriber) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.subs, s)
}

// broadcast pushes one frame to every subscriber whose interval elapsed,
// latest-wins per mailbox.
func (f *fanout) broadcast(frame FrameJSON, now time.Time) {
	data, err := json.Marshal(frame)
	if err != nil {
		return
	}
	ev := sseEvent{event: "progress", data: data}
	f.mu.Lock()
	defer f.mu.Unlock()
	for s := range f.subs {
		if !s.last.IsZero() && now.Sub(s.last) < s.interval {
			continue
		}
		s.last = now
		push(s.ch, ev)
	}
}

// close broadcasts the terminal frame to every subscriber — interval
// gating does not apply; cancellation and completion always reach the
// client — then closes every mailbox and refuses new subscribers.
func (f *fanout) close(frame FrameJSON) {
	data, err := json.Marshal(frame)
	if err != nil {
		data = []byte(`{"terminal":true}`)
	}
	ev := sseEvent{event: "terminal", data: data}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for s := range f.subs {
		push(s.ch, ev)
		close(s.ch)
		delete(f.subs, s)
	}
}

// push is a latest-wins, never-blocking send: if the mailbox is full, the
// oldest pending frame is dropped to make room.
func push(ch chan sseEvent, ev sseEvent) {
	for {
		select {
		case ch <- ev:
			return
		default:
			select {
			case <-ch:
			default:
			}
		}
	}
}

// writeEvent writes one SSE event and flushes it.
func writeEvent(w http.ResponseWriter, fl http.Flusher, ev sseEvent) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.event, ev.data)
	fl.Flush()
}

// handleStream is GET /queries/{id}/stream: per-operator progress frames
// as server-sent events at the client's chosen ?interval_ms= cadence
// (floored at the server's shared tick — clients cannot drive polls faster
// than the coalesced cadence).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(w, r)
	if h == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, APIError{Code: CodeBadRequest, Message: "streaming unsupported by this connection"})
		return
	}
	interval := s.cfg.StreamTick
	if v := r.URL.Query().Get("interval_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Message: "interval_ms must be a non-negative integer"})
			return
		}
		if d := time.Duration(ms) * time.Millisecond; d > interval {
			interval = d
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sub, live := h.fan.subscribe(interval)
	if !live {
		// Already terminal: deliver the one frame a late client needs.
		f := h.frame()
		f.Terminal = true
		data, _ := json.Marshal(f)
		writeEvent(w, fl, sseEvent{event: "terminal", data: data})
		return
	}
	s.obs.Gauge("server/sse_clients").Add(1)
	defer s.obs.Gauge("server/sse_clients").Add(-1)
	defer h.fan.unsubscribe(sub)

	// Immediate first frame so clients render without waiting a tick.
	first, _ := json.Marshal(h.frame())
	writeEvent(w, fl, sseEvent{event: "progress", data: first})

	for {
		select {
		case <-r.Context().Done():
			// Client went away: detach without disturbing the shared poll
			// cadence the remaining clients ride on.
			return
		case ev, open := <-sub.ch:
			if !open {
				return
			}
			writeEvent(w, fl, ev)
			if ev.event == "terminal" {
				return
			}
		}
	}
}
