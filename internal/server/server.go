// Package server turns the in-process Live Query Statistics stack into a
// long-running monitoring service: many concurrent queries hosted behind a
// JSON API (submit, poll, stream, cancel, list), with a Prometheus
// /metrics endpoint exposing the obs registry and per-query DMV counter
// classes. It is the network surface the paper assumes — a server whose
// progress estimates are consumed remotely by many observers — built from
// the existing blocks: lqs.QueryRegistry for lifecycle, dmv.Poller flight
// recorders for snapshot history, Estimator.Explain for per-node terms,
// and the chaos-harness degradation path (a degraded snapshot renders as a
// degraded="true" label, never a gap).
//
// Routes:
//
//	POST   /queries              submit a QuerySpec; 201 with the query ID
//	GET    /queries              registry listing (?tenant= filters)
//	GET    /queries/{id}         progress snapshot (?explain=1 adds terms)
//	GET    /queries/{id}/stream  SSE progress frames (?interval_ms=)
//	GET    /queries/{id}/history DMV flight-recorder snapshots
//	DELETE /queries/{id}         cancel (running) / remove (finished)
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness (503 while draining)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lqs/internal/chaos"
	"lqs/internal/engine/dmv"
	"lqs/internal/lqs"
	"lqs/internal/obs"
	"lqs/internal/sim"
)

// Config tunes the server. The zero value is usable: Default fills every
// unset field.
type Config struct {
	// MaxConcurrent caps queries running at once; submissions beyond it
	// are rejected with a typed 429. Default 8.
	MaxConcurrent int
	// MaxFinished caps terminal queries retained for status reads; the
	// oldest beyond the cap are reaped at the next submit. Default 64.
	MaxFinished int
	// PollInterval is the virtual-time DMV flight-recorder cadence.
	// Default dmv.PollInterval (the paper's 500 ms).
	PollInterval sim.Duration
	// HistoryCap bounds each flight recorder. Default 256 snapshots.
	HistoryCap int
	// StreamTick is the shared wall-clock poll cadence behind SSE fan-out;
	// N streaming clients of one query cost one snapshot per tick total.
	// Default 25ms.
	StreamTick time.Duration
	// Pace, when positive, sleeps this long per PaceInterval of virtual
	// time on each query's executor, so remote observers watch queries run
	// in wall time. Default 0 (run at full speed).
	Pace time.Duration
	// PaceInterval is the virtual interval between pacing sleeps.
	// Default 1ms of virtual time.
	PaceInterval sim.Duration
	// MaxDOP bounds the per-query degree of parallelism. Default 8.
	MaxDOP int
	// Metrics receives every server, registry, poller, and per-query
	// counter. Default: a fresh private registry.
	Metrics *obs.Registry
	// Chaos, when non-nil, installs the cross-layer fault injectors on
	// every hosted query (per-query derived seeds), for fault drills
	// against a live endpoint. Default nil (no faults).
	Chaos *chaos.Config
}

// Default returns cfg with unset fields filled.
func (cfg Config) Default() Config {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
	}
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = 64
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = dmv.PollInterval
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 256
	}
	if cfg.StreamTick <= 0 {
		cfg.StreamTick = 25 * time.Millisecond
	}
	if cfg.PaceInterval <= 0 {
		cfg.PaceInterval = sim.Duration(time.Millisecond)
	}
	if cfg.MaxDOP <= 0 {
		cfg.MaxDOP = 8
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	return cfg
}

// Server hosts monitored queries behind HTTP. Create with New; it is an
// http.Handler.
type Server struct {
	cfg Config
	obs *obs.Registry
	reg *lqs.QueryRegistry
	mux *http.ServeMux

	mu       sync.Mutex
	queries  map[lqs.QueryID]*hostedQuery
	order    []lqs.QueryID
	active   int // queries not yet terminal (admission accounting)
	draining bool

	// wg tracks watcher and fanout goroutines; Shutdown drains it.
	wg sync.WaitGroup

	// chaosOrdinal numbers submissions for per-query chaos seed derivation.
	chaosOrdinal atomic.Uint64
	// Scrape-cache effectiveness counters. Plain atomics rather than obs
	// counters: they move on every scrape, and a scrape must not change
	// the exposition it returns (the golden test pins scrape idempotence).
	scrapeCacheHits   atomic.Int64
	scrapeCacheMisses atomic.Int64
}

// ScrapeCacheStats reports /metrics per-query cache hits and misses
// (tests and benchmarks).
func (s *Server) ScrapeCacheStats() (hits, misses int64) {
	return s.scrapeCacheHits.Load(), s.scrapeCacheMisses.Load()
}

// New builds a server from cfg (zero value fine).
func New(cfg Config) *Server {
	cfg = cfg.Default()
	s := &Server{
		cfg:     cfg,
		obs:     cfg.Metrics,
		reg:     lqs.NewQueryRegistry(),
		queries: make(map[lqs.QueryID]*hostedQuery),
	}
	s.reg.SetMetrics(s.obs)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleSubmit)
	mux.HandleFunc("GET /queries", s.handleList)
	mux.HandleFunc("GET /queries/{id}", s.handleStatus)
	mux.HandleFunc("GET /queries/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /queries/{id}/history", s.handleHistory)
	mux.HandleFunc("GET /queries/{id}/accuracy", s.handleAccuracy)
	mux.HandleFunc("DELETE /queries/{id}", s.handleDelete)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry exposes the underlying query registry (tests and tools).
func (s *Server) Registry() *lqs.QueryRegistry { return s.reg }

// handleSubmit is POST /queries: validate, admit, launch.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec QuerySpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Message: "bad request body: " + err.Error()})
		return
	}
	if spec.Query == "" {
		writeErr(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Message: "query is required"})
		return
	}
	if spec.Seed == 0 {
		spec.Seed = 42
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if spec.Workload == "" {
		spec.Workload = "tpch"
	}
	if spec.DOP == 0 {
		spec.DOP = 1
	}
	if spec.DOP < 1 || spec.DOP > s.cfg.MaxDOP {
		writeErr(w, http.StatusBadRequest, APIError{
			Code: CodeBadRequest, Message: fmt.Sprintf("dop must be in [1, %d]", s.cfg.MaxDOP)})
		return
	}
	if spec.DeadlineMS < 0 {
		writeErr(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Message: "deadline_ms must be non-negative"})
		return
	}
	if _, _, err := modeOptions(spec.Mode); err != nil {
		writeErr(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Message: err.Error()})
		return
	}

	// Cheap pre-checks before paying for workload generation; both are
	// re-checked authoritatively under the lock below.
	if err := s.admissible(); err != nil {
		s.rejectSubmit(w, err)
		return
	}
	h, err := newHosted(s, spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, APIError{Code: CodeUnknownQuery, Message: err.Error()})
		return
	}

	s.mu.Lock()
	if err := s.admissibleLocked(); err != nil {
		s.mu.Unlock()
		s.rejectSubmit(w, err)
		return
	}
	s.reapFinishedLocked()
	h.id = s.reg.Launch(h.name, h.sess)
	s.queries[h.id] = h
	s.order = append(s.order, h.id)
	s.active++
	s.obs.Gauge("server/active").Set(int64(s.active))
	s.mu.Unlock()

	s.obs.Counter("server/queries_submitted").Inc()
	s.wg.Add(2)
	go func() { // watcher: mark terminal, score accuracy, release admission slot
		defer s.wg.Done()
		_, _ = s.reg.Wait(h.id)
		close(h.terminal)
		// Retrospective accuracy replay before the slot releases: scrapes
		// observe the active-gauge decrement only after the accuracy family
		// and histograms are in place, keeping quiesced scrapes stable.
		h.computeAccuracy()
		s.mu.Lock()
		s.active--
		s.obs.Gauge("server/active").Set(int64(s.active))
		s.mu.Unlock()
	}()
	go func() { // shared SSE poll cadence
		defer s.wg.Done()
		h.fanoutLoop()
	}()

	w.Header().Set("Location", fmt.Sprintf("/queries/%d", h.id))
	writeJSON(w, http.StatusCreated, SubmitResponse{
		ID: int64(h.id), Name: h.name, Location: fmt.Sprintf("/queries/%d", h.id),
	})
}

// errDraining and errAdmission are the typed submit rejections.
var (
	errDraining  = errors.New("server is draining; not accepting queries")
	errAdmission = errors.New("admission control: concurrent query limit reached")
)

func (s *Server) admissible() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admissibleLocked()
}

func (s *Server) admissibleLocked() error {
	if s.draining {
		return errDraining
	}
	if s.active >= s.cfg.MaxConcurrent {
		return errAdmission
	}
	return nil
}

// rejectSubmit renders a typed rejection: 503 while draining, 429 at the
// admission limit.
func (s *Server) rejectSubmit(w http.ResponseWriter, err error) {
	if errors.Is(err, errDraining) {
		writeErr(w, http.StatusServiceUnavailable, APIError{Code: CodeDraining, Message: err.Error()})
		return
	}
	s.obs.Counter("server/admission_rejected").Inc()
	writeErr(w, http.StatusTooManyRequests, APIError{
		Code: CodeAdmissionRejected, Message: err.Error(), MaxConcurrent: s.cfg.MaxConcurrent})
}

// reapFinishedLocked removes the oldest finished queries beyond the
// MaxFinished retention cap; with the registry Remove fix this pins server
// memory under submit/complete churn.
func (s *Server) reapFinishedLocked() {
	finished := 0
	for _, id := range s.order {
		if s.queries[id].done() {
			finished++
		}
	}
	for _, id := range append([]lqs.QueryID(nil), s.order...) {
		if finished <= s.cfg.MaxFinished {
			break
		}
		h := s.queries[id]
		if !h.done() {
			continue
		}
		if err := s.reg.Remove(id); err != nil {
			continue
		}
		s.dropLocked(id)
		finished--
		s.obs.Counter("server/queries_reaped").Inc()
	}
}

// dropLocked removes a hosted query from the server's own maps.
func (s *Server) dropLocked(id lqs.QueryID) {
	delete(s.queries, id)
	for i, x := range s.order {
		if x == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// lookup resolves {id} or writes a typed 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *hostedQuery {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Message: "query id must be an integer"})
		return nil
	}
	s.mu.Lock()
	h := s.queries[lqs.QueryID(id)]
	s.mu.Unlock()
	if h == nil {
		writeErr(w, http.StatusNotFound, APIError{Code: CodeNotFound, Message: fmt.Sprintf("no query with id %d", id)})
		return nil
	}
	return h
}

// handleStatus is GET /queries/{id}: one progress snapshot with per-node
// display state; ?explain=1 adds the estimator decomposition.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(w, r)
	if h == nil {
		return
	}
	withExplain := r.URL.Query().Get("explain") == "1"
	writeJSON(w, http.StatusOK, h.status(true, withExplain))
}

// handleHistory is GET /queries/{id}/history: the DMV flight recorder.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(w, r)
	if h == nil {
		return
	}
	writeJSON(w, http.StatusOK, h.history())
}

// handleList is GET /queries: every hosted query in launch order
// (?tenant= filters).
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	s.mu.Lock()
	hs := make([]*hostedQuery, 0, len(s.order))
	for _, id := range s.order {
		hs = append(hs, s.queries[id])
	}
	s.mu.Unlock()
	out := ListResponse{Queries: make([]StatusJSON, 0, len(hs))}
	for _, h := range hs {
		if tenant != "" && h.spec.Tenant != tenant {
			continue
		}
		out.Queries = append(out.Queries, h.status(false, false))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDelete is DELETE /queries/{id}: cooperative cancel while running
// (202; the SSE terminal frame follows), removal once finished (204).
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(w, r)
	if h == nil {
		return
	}
	if !h.done() {
		_ = s.reg.Cancel(h.id, "cancelled via DELETE")
		writeJSON(w, http.StatusAccepted, map[string]string{"state": "cancelling"})
		return
	}
	s.mu.Lock()
	err := s.reg.Remove(h.id)
	if err == nil {
		s.dropLocked(h.id)
	}
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusConflict, APIError{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, APIError{Code: CodeDraining, Message: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Shutdown gracefully drains the server: new submissions get typed 503s,
// running queries finish (or are cooperatively cancelled once ctx
// expires), and every watcher/fan-out goroutine exits before it returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.obs.Gauge("server/draining").Set(1)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: cancel whatever still runs and wait for the
	// cooperative aborts to land (bounded — cancellation fires at the next
	// operator charge boundary).
	s.mu.Lock()
	for _, h := range s.queries {
		if !h.done() {
			h.sess.Cancel("server draining")
		}
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}
