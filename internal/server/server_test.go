package server

// API surface tests: submit/status/list/delete round trips, typed errors,
// flight-recorder history, and server-side retention (auto-reap) under
// churn. The e2e estimator-invariant battery lives in e2e_test.go; failure
// modes in failure_test.go; the -race hammer in race_test.go.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// canceledCtx returns an already-expired context (forces Shutdown onto its
// cancel-everything path without waiting).
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// newTestServer starts a server over a loopback listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON posts v and decodes the response body into out (if non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url and decodes into out, returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// submit posts a spec and requires a 201.
func submit(t *testing.T, ts *httptest.Server, spec QuerySpec) SubmitResponse {
	t.Helper()
	var out SubmitResponse
	if code := postJSON(t, ts.URL+"/queries", spec, &out); code != http.StatusCreated {
		t.Fatalf("submit %+v: status %d", spec, code)
	}
	return out
}

// waitTerminal polls status until the query reports terminal.
func waitTerminal(t *testing.T, ts *httptest.Server, id int64) StatusJSON {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var st StatusJSON
		if code := getJSON(t, fmt.Sprintf("%s/queries/%d", ts.URL, id), &st); code != http.StatusOK {
			t.Fatalf("status %d polling query %d", code, id)
		}
		if st.Terminal {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("query %d never reached a terminal state", id)
	return StatusJSON{}
}

// sseFrameRec is one decoded SSE event from a stream.
type sseFrameRec struct {
	Event string
	Frame FrameJSON
}

// readSSE consumes a /stream response body until the terminal event (or
// EOF), decoding every frame.
func readSSE(t *testing.T, body io.Reader) []sseFrameRec {
	t.Helper()
	var out []sseFrameRec
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var f FrameJSON
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
				t.Fatalf("bad SSE frame %q: %v", line, err)
			}
			out = append(out, sseFrameRec{Event: event, Frame: f})
			if event == "terminal" {
				return out
			}
		}
	}
	return out
}

func TestSubmitStatusDeleteRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub := submit(t, ts, QuerySpec{Workload: "tpch", Query: "Q6", Tenant: "acme"})
	if sub.ID <= 0 || sub.Location != fmt.Sprintf("/queries/%d", sub.ID) {
		t.Fatalf("bad submit response: %+v", sub)
	}
	st := waitTerminal(t, ts, sub.ID)
	if st.State != "SUCCEEDED" {
		t.Fatalf("terminal state %q: %+v", st.State, st)
	}
	if st.Rows <= 0 || st.Progress < 0.999 || st.Progress > 1.0000001 {
		t.Fatalf("terminal rows/progress: %+v", st)
	}
	if st.Tenant != "acme" || st.Workload != "tpch" || st.Query != "Q6" {
		t.Fatalf("spec fields lost: %+v", st)
	}
	if len(st.Ops) == 0 {
		t.Fatalf("no per-operator state: %+v", st)
	}
	for _, op := range st.Ops {
		if !op.Done || op.Progress < 0.999 {
			t.Fatalf("operator not finished at terminal: %+v", op)
		}
	}

	// Listing renders it; tenant filter works.
	var list ListResponse
	getJSON(t, ts.URL+"/queries", &list)
	if len(list.Queries) != 1 || list.Queries[0].ID != sub.ID {
		t.Fatalf("list: %+v", list)
	}
	getJSON(t, ts.URL+"/queries?tenant=nobody", &list)
	if len(list.Queries) != 0 {
		t.Fatalf("tenant filter leaked: %+v", list)
	}

	// DELETE on a finished query removes it.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/queries/%d", ts.URL, sub.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete finished query: status %d", resp.StatusCode)
	}
	if code := getJSON(t, fmt.Sprintf("%s/queries/%d", ts.URL, sub.ID), nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: %d", code)
	}
}

func TestTypedErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var e errorBody
	if code := postJSON(t, ts.URL+"/queries", QuerySpec{Workload: "tpch", Query: "NOPE"}, &e); code != http.StatusBadRequest || e.Err.Code != CodeUnknownQuery {
		t.Fatalf("unknown query: %d %+v", code, e)
	}
	if code := postJSON(t, ts.URL+"/queries", QuerySpec{Workload: "martian", Query: "Q1"}, &e); code != http.StatusBadRequest || e.Err.Code != CodeUnknownQuery {
		t.Fatalf("unknown workload: %d %+v", code, e)
	}
	if code := postJSON(t, ts.URL+"/queries", QuerySpec{}, &e); code != http.StatusBadRequest || e.Err.Code != CodeBadRequest {
		t.Fatalf("missing query: %d %+v", code, e)
	}
	if code := postJSON(t, ts.URL+"/queries", QuerySpec{Query: "Q1", DOP: 99}, &e); code != http.StatusBadRequest || e.Err.Code != CodeBadRequest {
		t.Fatalf("dop out of range: %d %+v", code, e)
	}
	if code := getJSON(t, ts.URL+"/queries/12345", &e); code != http.StatusNotFound || e.Err.Code != CodeNotFound {
		t.Fatalf("not found: %d %+v", code, e)
	}
	if code := getJSON(t, ts.URL+"/queries/xyz", &e); code != http.StatusBadRequest {
		t.Fatalf("non-integer id: %d", code)
	}
}

// TestHistoryFlightRecorder: the dmv.Poller history is served over the
// wire, capped by HistoryCap with the overflow counted in dropped, times
// monotone.
func TestHistoryFlightRecorder(t *testing.T) {
	_, ts := newTestServer(t, Config{
		PollInterval: 2 * time.Millisecond, // virtual; Q1 runs ~40ms virtual
		HistoryCap:   8,
	})
	sub := submit(t, ts, QuerySpec{Query: "Q1"})
	waitTerminal(t, ts, sub.ID)

	var hist HistoryResponse
	if code := getJSON(t, fmt.Sprintf("%s/queries/%d/history", ts.URL, sub.ID), &hist); code != http.StatusOK {
		t.Fatalf("history status %d", code)
	}
	if len(hist.Frames) == 0 || len(hist.Frames) > 8 {
		t.Fatalf("history frames %d, want 1..8", len(hist.Frames))
	}
	if hist.Dropped <= 0 {
		t.Fatalf("flight recorder never dropped with cap 8 over a ~20-tick query: %+v", hist.Dropped)
	}
	last := int64(-1)
	for _, f := range hist.Frames {
		if f.AtUS <= last {
			t.Fatalf("history times not increasing: %d after %d", f.AtUS, last)
		}
		last = f.AtUS
		if len(f.Nodes) == 0 {
			t.Fatalf("history frame without nodes: %+v", f)
		}
	}
}

// TestServerRetentionUnderChurn: finished queries beyond MaxFinished are
// reaped (server map and lqs registry both bounded) — the server-side face
// of the registry Remove/Reap fix.
func TestServerRetentionUnderChurn(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxFinished: 3, MaxConcurrent: 2})
	for i := 0; i < 10; i++ {
		sub := submit(t, ts, QuerySpec{Query: "Q6"})
		waitTerminal(t, ts, sub.ID)
	}
	// One more submit triggers the reap of everything beyond the cap.
	sub := submit(t, ts, QuerySpec{Query: "Q6"})
	waitTerminal(t, ts, sub.ID)

	srv.mu.Lock()
	hosted := len(srv.queries)
	srv.mu.Unlock()
	// Cap + the query that rode in past the reap.
	if hosted > 3+1 {
		t.Fatalf("server retains %d queries, cap 3", hosted)
	}
	if n := srv.reg.Len(); n > 3+1 {
		t.Fatalf("registry retains %d entries, cap 3", n)
	}
	var list ListResponse
	getJSON(t, ts.URL+"/queries", &list)
	if len(list.Queries) != hosted {
		t.Fatalf("list renders %d, server holds %d", len(list.Queries), hosted)
	}
}

func TestHealthz(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
	if err := srv.Shutdown(canceledCtx()); err == nil {
		// force-drain path returns ctx.Err; with nothing running either is fine
		_ = err
	}
	var e errorBody
	if code := getJSON(t, ts.URL+"/healthz", &e); code != http.StatusServiceUnavailable || e.Err.Code != CodeDraining {
		t.Fatalf("healthz while draining: %d %+v", code, e)
	}
	if code := postJSON(t, ts.URL+"/queries", QuerySpec{Query: "Q6"}, &e); code != http.StatusServiceUnavailable || e.Err.Code != CodeDraining {
		t.Fatalf("submit while draining: %d %+v", code, e)
	}
}
