package server

// Failure-mode battery: admission rejection, client disconnect mid-SSE,
// and cancellation racing an open stream. These are the paths a monitoring
// service actually exercises in production — a dashboard tab closed
// mid-stream must not stall the shared poll cadence, and an operator
// killing a query must still see its terminal frame arrive.

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestAdmissionControl: with MaxConcurrent=1 a second submission gets a
// typed 429 carrying the limit; cancelling the first frees the slot.
func TestAdmissionControl(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		Pace:          2 * time.Millisecond, // Q1 ~80ms wall: stays running
	})
	first := submit(t, ts, QuerySpec{Query: "Q1"})

	var e errorBody
	code := postJSON(t, ts.URL+"/queries", QuerySpec{Query: "Q6"}, &e)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", code)
	}
	if e.Err.Code != CodeAdmissionRejected || e.Err.MaxConcurrent != 1 {
		t.Fatalf("rejection body: %+v", e)
	}
	if n := srv.obs.Counter("server/admission_rejected").Value(); n != 1 {
		t.Fatalf("admission_rejected counter %d, want 1", n)
	}

	// Cancel the running query; once its slot frees, admission reopens.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/queries/%d", ts.URL, first.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d, want 202", resp.StatusCode)
	}
	st := waitTerminal(t, ts, first.ID)
	if st.State != "CANCELLED" || st.Error == "" {
		t.Fatalf("cancelled query state: %+v", st)
	}

	// The watcher releases the slot asynchronously after the runner exits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var sub SubmitResponse
		if code := postJSON(t, ts.URL+"/queries", QuerySpec{Query: "Q6"}, &sub); code == http.StatusCreated {
			waitTerminal(t, ts, sub.ID)
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never freed after cancel")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// openStream starts an SSE request with its own cancelable context and
// returns the response plus a line scanner.
func openStream(t *testing.T, url string) (*http.Response, *bufio.Scanner, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	return resp, sc, cancel
}

// waitFirstFrame reads lines until one data: frame arrived.
func waitFirstFrame(t *testing.T, sc *bufio.Scanner) {
	t.Helper()
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			return
		}
	}
	t.Fatal("stream closed before the first frame")
}

// TestClientDisconnectDetaches: a client dropping its SSE connection
// detaches from the fan-out without disturbing the other subscriber, which
// still receives progress and the terminal frame; the sse_clients gauge
// returns to zero.
func TestClientDisconnectDetaches(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Pace:       time.Millisecond, // Q1 ~40ms wall
		StreamTick: 2 * time.Millisecond,
	})
	sub := submit(t, ts, QuerySpec{Query: "Q1"})
	url := fmt.Sprintf("%s/queries/%d/stream", ts.URL, sub.ID)

	respA, scA, cancelA := openStream(t, url)
	defer respA.Body.Close()
	respB, scB, cancelB := openStream(t, url)
	defer respB.Body.Close()
	defer cancelB()
	waitFirstFrame(t, scA)
	waitFirstFrame(t, scB)

	// Drop client A mid-stream.
	cancelA()

	// Client B keeps riding the shared cadence through to the terminal
	// frame (readSSE on the remaining body).
	frames := readSSE(t, streamReader{scB})
	if len(frames) == 0 {
		t.Fatal("surviving client got no frames after the other disconnected")
	}
	last := frames[len(frames)-1]
	if last.Event != "terminal" || last.Frame.State != "SUCCEEDED" {
		t.Fatalf("surviving client's final frame: %+v", last)
	}

	// Both handlers exit; the gauge drains to zero.
	deadline := time.Now().Add(5 * time.Second)
	for srv.obs.Gauge("server/sse_clients").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sse_clients gauge stuck at %d", srv.obs.Gauge("server/sse_clients").Value())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// streamReader adapts a half-consumed scanner back into an io.Reader for
// readSSE (lines already consumed by waitFirstFrame stay consumed).
type streamReader struct{ sc *bufio.Scanner }

func (r streamReader) Read(p []byte) (int, error) {
	if !r.sc.Scan() {
		return 0, fmt.Errorf("EOF")
	}
	line := r.sc.Text() + "\n"
	return copy(p, line), nil
}

// TestCancelDuringStreamDeliversTerminalFrame: DELETE on a query being
// streamed pushes a CANCELLED terminal frame to the open stream — interval
// gating never withholds the ending.
func TestCancelDuringStreamDeliversTerminalFrame(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pace:       2 * time.Millisecond, // Q1 ~80ms wall
		StreamTick: 2 * time.Millisecond,
	})
	sub := submit(t, ts, QuerySpec{Query: "Q1"})

	// A large client interval would gate progress frames for seconds —
	// the terminal frame must arrive regardless.
	url := fmt.Sprintf("%s/queries/%d/stream?interval_ms=60000", ts.URL, sub.ID)
	resp, sc, cancel := openStream(t, url)
	defer resp.Body.Close()
	defer cancel()
	waitFirstFrame(t, sc)

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/queries/%d", ts.URL, sub.ID), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}

	frames := readSSE(t, streamReader{sc})
	if len(frames) == 0 {
		t.Fatal("no frames after cancel")
	}
	last := frames[len(frames)-1]
	if last.Event != "terminal" || last.Frame.State != "CANCELLED" || last.Frame.Error == "" {
		t.Fatalf("cancel terminal frame: %+v", last)
	}

	// A late subscriber to the now-terminal query gets the one-shot
	// terminal frame immediately.
	lateResp, err := http.Get(fmt.Sprintf("%s/queries/%d/stream", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer lateResp.Body.Close()
	late := readSSE(t, lateResp.Body)
	if len(late) != 1 || late[0].Event != "terminal" || late[0].Frame.State != "CANCELLED" {
		t.Fatalf("late subscriber frames: %+v", late)
	}
}
