package server

// Benchmark for the /metrics scrape cache: a quiesced server hosting N
// finished queries, scraped repeatedly. The cached path serves each
// query's family from the memoized slice; the uncached path is the
// pre-PR-9 behavior — a full rebuild (session snapshot, synchronized DMV
// capture, pool stats, point assembly) per query per scrape.
//
//	go test ./internal/server -bench Scrape -benchmem

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lqs/internal/obs"
)

// benchServer hosts n finished queries and returns the quiesced server.
func benchServer(b *testing.B, n int) *Server {
	b.Helper()
	srv := New(Config{PollInterval: 5 * time.Millisecond, MaxConcurrent: n})
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	names := []string{"Q1", "Q6", "Q3", "Q12"}
	for i := 0; i < n; i++ {
		spec := QuerySpec{Query: names[i%len(names)], Workload: "tpch", Tenant: "bench", Seed: 42}
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/queries", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("submit %s: status %d", spec.Query, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		srv.mu.Lock()
		active := srv.active
		srv.mu.Unlock()
		if active == 0 {
			return srv
		}
		if time.Now().After(deadline) {
			b.Fatal("bench queries never quiesced")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func benchScrape(b *testing.B, n int, cached bool) {
	srv := benchServer(b, n)
	srv.collectPoints() // warm: terminal accuracy families built once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cached {
			srv.collectPoints()
			continue
		}
		// The pre-cache scrape path: rebuild every hosted query's points.
		srv.mu.Lock()
		hs := make([]*hostedQuery, 0, len(srv.order))
		for _, id := range srv.order {
			hs = append(hs, srv.queries[id])
		}
		srv.mu.Unlock()
		pts := srv.obs.Points()
		for _, h := range hs {
			pts = append(pts, h.buildPoints()...)
		}
		obs.SortPoints(pts)
	}
}

func BenchmarkScrapeCached8(b *testing.B)    { benchScrape(b, 8, true) }
func BenchmarkScrapeUncached8(b *testing.B)  { benchScrape(b, 8, false) }
func BenchmarkScrapeCached32(b *testing.B)   { benchScrape(b, 32, true) }
func BenchmarkScrapeUncached32(b *testing.B) { benchScrape(b, 32, false) }
