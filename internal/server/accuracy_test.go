package server

// PR 9 server surface: the retrospective accuracy endpoint and metric
// family, the per-query scrape cache, and chaos-degraded accuracy
// accounting over the wire.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"lqs/internal/chaos"
)

// getError fetches url expecting a typed error body.
func getError(t *testing.T, url string) (int, APIError) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return resp.StatusCode, body.Err
}

// TestAccuracyEndpoint: 409 NOT_TERMINAL while the query runs, then a
// per-mode error report once it finishes — all four estimator modes,
// error stats in range, and the LQS/ENS contract (bounds cover the truth,
// zero monotonicity violations) holding over the wire.
func TestAccuracyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{
		PollInterval: 2 * time.Millisecond, // virtual: ~20 flight-recorder polls for Q1
		Pace:         2 * time.Millisecond, // Q1 ~80ms wall: time to observe mid-flight
	})
	sub := submit(t, ts, QuerySpec{Query: "Q1", Tenant: "acme"})
	url := fmt.Sprintf("%s/queries/%d/accuracy", ts.URL, sub.ID)

	if code, apiErr := getError(t, url); code != http.StatusConflict || apiErr.Code != CodeNotTerminal {
		t.Fatalf("mid-flight accuracy: got %d %q, want 409 %s", code, apiErr.Code, CodeNotTerminal)
	}

	waitTerminal(t, ts, sub.ID)
	var rep AccuracyResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, url, &rep); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("accuracy report never became available after terminal")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if rep.Query != "Q1" || rep.Tenant != "acme" {
		t.Fatalf("report identity = %q/%q, want Q1/acme", rep.Query, rep.Tenant)
	}
	want := map[string]bool{"TGN": false, "DNE": false, "LQS": false, "ENS": false}
	for _, m := range rep.Modes {
		if _, ok := want[m.Mode]; !ok {
			t.Fatalf("unexpected mode %q", m.Mode)
		}
		want[m.Mode] = true
		if m.Polls <= 0 {
			t.Errorf("%s: polls = %d, want > 0", m.Mode, m.Polls)
		}
		if m.MeanAbsErr < 0 || m.MeanAbsErr > 1 || m.MaxAbsErr < m.MeanAbsErr {
			t.Errorf("%s: implausible error stats mean=%v max=%v", m.Mode, m.MeanAbsErr, m.MaxAbsErr)
		}
		if m.Mode == "LQS" || m.Mode == "ENS" {
			if m.BoundsObs == 0 || m.BoundsCoverage != 1 {
				t.Errorf("%s bounds coverage = %v over %d obs, want 1 over >0", m.Mode, m.BoundsCoverage, m.BoundsObs)
			}
			if m.MonotonicityViolations != 0 {
				t.Errorf("%s monotonicity violations = %d, want 0", m.Mode, m.MonotonicityViolations)
			}
		}
	}
	for mode, seen := range want {
		if !seen {
			t.Errorf("mode %s missing from report", mode)
		}
	}
}

// TestScrapeCacheHits: repeated scrapes of a quiesced server serve every
// per-query family from the cache — misses stop growing, hits keep
// climbing, and the exposition stays byte-identical.
func TestScrapeCacheHits(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	a := submit(t, ts, QuerySpec{Query: "Q1", Tenant: "acme"})
	b := submit(t, ts, QuerySpec{Query: "Q6", Tenant: "beta"})
	waitTerminal(t, ts, a.ID)
	waitTerminal(t, ts, b.ID)

	base := scrapeQuiesced(t, ts.URL)
	hits0, misses0 := srv.ScrapeCacheStats()
	const extra = 5
	for i := 0; i < extra; i++ {
		if got := scrape(t, ts.URL); got != base {
			t.Fatalf("scrape %d diverged from quiesced exposition", i)
		}
	}
	hits1, misses1 := srv.ScrapeCacheStats()
	if misses1 != misses0 {
		t.Errorf("quiesced scrapes still rebuilding: misses %d -> %d", misses0, misses1)
	}
	if wantHits := hits0 + extra*2; hits1 != wantHits { // 2 hosted queries per scrape
		t.Errorf("cache hits %d -> %d, want %d", hits0, hits1, wantHits)
	}
}

// TestScrapeCacheInvalidation: the cache key moves with execution — a
// scrape taken mid-flight and one taken at terminal state cannot both be
// served from one cached build, and the terminal scrape must carry the
// accuracy family (the accuracy-readiness bit invalidates the key even if
// no further poll tick lands).
func TestScrapeCacheInvalidation(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Pace: 2 * time.Millisecond,
	})
	sub := submit(t, ts, QuerySpec{Query: "Q1", Tenant: "acme"})
	mid := scrape(t, ts.URL)
	if strings.Contains(mid, "lqs_query_accuracy_mean_abs_error") {
		t.Fatal("accuracy family present before terminal state")
	}
	waitTerminal(t, ts, sub.ID)
	fin := scrapeQuiesced(t, ts.URL)
	if !strings.Contains(fin, `lqs_query_accuracy_mean_abs_error{mode="LQS",qid="1"`) {
		t.Fatal("terminal scrape missing the accuracy family")
	}
	if _, misses := srv.ScrapeCacheStats(); misses < 2 {
		t.Errorf("misses = %d, want >= 2 (mid-flight and terminal rebuilds)", misses)
	}
}

// TestChaosDegradedAccuracy: with DMV-layer faults injected via the server
// Chaos config, the flight recorder synthesizes degraded polls; the
// accuracy report counts them, excludes them from the error stats
// (err_polls + degraded_polls == polls), and the metric family labels them.
func TestChaosDegradedAccuracy(t *testing.T) {
	_, ts := newTestServer(t, Config{
		PollInterval: 2 * time.Millisecond, // virtual: ~20 polls for Q1
		Chaos: &chaos.Config{
			Seed: 1,
			// DMV-only faults: poll stalls degrade snapshots without ever
			// perturbing execution, so the query still succeeds.
			DMV: chaos.DMVFaults{StallProb: 0.5},
		},
	})
	sub := submit(t, ts, QuerySpec{Query: "Q1", Tenant: "acme"})
	if st := waitTerminal(t, ts, sub.ID); st.State != "SUCCEEDED" {
		t.Fatalf("query state %s, want SUCCEEDED (DMV faults must not fail execution)", st.State)
	}

	var rep AccuracyResponse
	url := fmt.Sprintf("%s/queries/%d/accuracy", ts.URL, sub.ID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, url, &rep); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("accuracy report never became available")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sawDegraded := false
	for _, m := range rep.Modes {
		if m.DegradedPolls > 0 {
			sawDegraded = true
		}
		if m.ErrPolls+m.DegradedPolls != m.Polls {
			t.Errorf("%s: err %d + degraded %d != polls %d (degraded polls must be excluded, not dropped)",
				m.Mode, m.ErrPolls, m.DegradedPolls, m.Polls)
		}
	}
	if !sawDegraded {
		t.Fatal("no degraded polls recorded under DMV StallProb 0.5")
	}

	got := scrapeQuiesced(t, ts.URL)
	if !strings.Contains(got, `lqs_query_accuracy_degraded_polls{mode="LQS",qid="1"`) {
		t.Fatal("metrics missing the degraded-polls accuracy series")
	}
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "lqs_query_accuracy_degraded_polls{") && strings.HasSuffix(line, " 0") {
			t.Errorf("degraded polls not labeled in metrics: %s", line)
		}
	}
}
