package server

// Concurrency battery, meant to run under -race: many clients hammer one
// server with interleaved submit/poll/stream/cancel while queries complete
// underneath them, then the server drains and the goroutine count returns
// to baseline (the chaos-harness leak check, applied to the HTTP layer).

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestConcurrentHammer(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 32,
		MaxFinished:   8,
		Pace:          100 * time.Microsecond, // Q6 ~2.5ms wall: real overlap
		StreamTick:    time.Millisecond,
	})

	// Sized so the battery stays tractable under -race on a small box:
	// every query is a full engine execution, not a stub.
	const workers = 4
	const perWorker = 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var sub SubmitResponse
				code := postJSON(t, ts.URL+"/queries", QuerySpec{
					Query:  "Q6",
					Tenant: fmt.Sprintf("w%d", w),
				}, &sub)
				if code == http.StatusTooManyRequests {
					continue // admission is allowed to push back under load
				}
				if code != http.StatusCreated {
					t.Errorf("worker %d submit: status %d", w, code)
					return
				}
				switch i % 3 {
				case 0: // poll to terminal
					st := waitTerminal(t, ts, sub.ID)
					if st.State != "SUCCEEDED" {
						t.Errorf("worker %d query %d: %+v", w, sub.ID, st)
					}
				case 1: // stream to terminal
					resp, err := http.Get(fmt.Sprintf("%s/queries/%d/stream", ts.URL, sub.ID))
					if err != nil {
						t.Errorf("worker %d stream: %v", w, err)
						return
					}
					frames := readSSE(t, resp.Body)
					resp.Body.Close()
					if len(frames) == 0 || frames[len(frames)-1].Event != "terminal" {
						t.Errorf("worker %d stream frames: %d", w, len(frames))
					}
				case 2: // cancel racing completion; either outcome is legal
					req, _ := http.NewRequest(http.MethodDelete,
						fmt.Sprintf("%s/queries/%d", ts.URL, sub.ID), nil)
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						resp.Body.Close()
					}
				}
				// Interleave listing with the churn; one /metrics scrape per
				// worker (a scrape touches every hosted query's counters).
				var list ListResponse
				getJSON(t, ts.URL+"/queries?tenant="+fmt.Sprintf("w%d", w), &list)
				if i == 0 {
					mresp, err := http.Get(ts.URL + "/metrics")
					if err == nil {
						mresp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain: every watcher/fan-out goroutine must exit. Cancel-raced
	// queries may still be finishing; give them the graceful window.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	ts.Close() // also closes idle client connections

	// Leak check: goroutines return to (near) baseline once HTTP keepalive
	// and test plumbing wind down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentStreamersShareOnePoller: many clients streaming one query
// all complete, and the coalesced fan-out (not N independent pollers)
// serves them — pinned by all of them observing the same terminal frame.
func TestConcurrentStreamersShareOnePoller(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pace:       500 * time.Microsecond, // Q1 ~20ms wall
		StreamTick: 2 * time.Millisecond,
	})
	sub := submit(t, ts, QuerySpec{Query: "Q1"})

	const clients = 6
	terminals := make([]FrameJSON, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/queries/%d/stream?interval_ms=%d", ts.URL, sub.ID, c))
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			defer resp.Body.Close()
			frames := readSSE(t, resp.Body)
			if len(frames) == 0 {
				t.Errorf("client %d got no frames", c)
				return
			}
			terminals[c] = frames[len(frames)-1].Frame
		}(c)
	}
	wg.Wait()
	for c, f := range terminals {
		if !f.Terminal || f.State != "SUCCEEDED" || f.Rows != 6 {
			t.Fatalf("client %d terminal frame: %+v", c, f)
		}
	}
}
