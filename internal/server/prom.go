package server

// GET /metrics: the Prometheus text exposition, modeled on wmi_exporter's
// mssql collector — per-counter-class metric families with one series per
// hosted query. Three classes cover the DMV surface:
//
//   - buffer manager   (lqs_buffer_manager_*): the query's private buffer
//     pool, the analog of SQLServerBufferManager;
//   - access methods   (lqs_access_methods_*): logical/physical reads,
//     rows and rebinds summed over the plan, the analog of
//     SQLServerAccessMethods;
//   - query progress   (lqs_query_*): the estimator surface itself —
//     overall and per-operator progress, rows returned, virtual time,
//     lifecycle state.
//
// Every series carries qid/query/workload/tenant labels; the progress
// series adds degraded="true|false" so a chaos-degraded estimate shows up
// as a labeled sample, never as a gap in the scrape. The obs registry
// (server/, lqs/, dmv/ namespaces) is appended as unlabeled families. The
// whole exposition is sorted, so identical states render byte-identically
// — the property the golden test pins.

import (
	"net/http"
	"strconv"

	"lqs/internal/engine/dmv"
	"lqs/internal/obs"
)

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteProm(w, s.collectPoints())
}

// collectPoints assembles the full exposition: per-query families for
// every hosted query (in a deterministic label order) plus the obs
// registry, sorted into family groups.
func (s *Server) collectPoints() []obs.Point {
	s.mu.Lock()
	hs := make([]*hostedQuery, 0, len(s.order))
	for _, id := range s.order {
		hs = append(hs, s.queries[id])
	}
	s.mu.Unlock()

	pts := s.obs.Points()
	for _, h := range hs {
		pts = append(pts, h.points()...)
	}
	obs.SortPoints(pts)
	return pts
}

// qidLabel renders the query's ID label value.
func (h *hostedQuery) qidLabel() string { return strconv.FormatInt(int64(h.id), 10) }

// points returns the query's exposition points through the scrape cache:
// the expensive rebuild (session snapshot, synchronized DMV capture, pool
// stats) runs only when the cache key moved — a new flight-recorder poll,
// a lifecycle transition, or the terminal accuracy report landing. In
// between, scrapes are served the memoized slice, so a server hosting
// hundreds of queries no longer re-snapshots each one per scrape; a cached
// scrape is at most one poll interval stale, the same staleness contract
// the flight recorder itself has.
func (h *hostedQuery) points() []obs.Point {
	key := pointsKey{ver: h.pollVer.Load(), state: h.sess.Query.State()}
	_, _, key.acc = h.accuracyReport()
	h.cacheMu.Lock()
	defer h.cacheMu.Unlock()
	if h.cacheOK && h.cacheKey == key {
		h.srv.scrapeCacheHits.Add(1)
		return h.cachePts
	}
	h.srv.scrapeCacheMisses.Add(1)
	h.cachePts = h.buildPoints()
	h.cacheKey, h.cacheOK = key, true
	return h.cachePts
}

// buildPoints renders one hosted query's counter classes from live state.
func (h *hostedQuery) buildPoints() []obs.Point {
	qs := h.sess.Snapshot()               // estimator surface (shared-session safe)
	snap := dmv.CaptureSync(h.sess.Query) // raw DMV counters at a quiescent boundary
	pool := h.db.Pool.StatsSnapshot()     // the query's private buffer pool

	lbl := obs.Labeled("",
		"qid", h.qidLabel(),
		"query", h.spec.Query,
		"workload", h.spec.Workload,
		"tenant", h.spec.Tenant,
	)
	progLbl := obs.Labeled("",
		"qid", h.qidLabel(),
		"query", h.spec.Query,
		"workload", h.spec.Workload,
		"tenant", h.spec.Tenant,
		"degraded", strconv.FormatBool(qs.Degraded),
	)
	stateLbl := obs.Labeled("",
		"qid", h.qidLabel(),
		"query", h.spec.Query,
		"workload", h.spec.Workload,
		"tenant", h.spec.Tenant,
		"state", qs.State.String(),
	)

	gauge := func(name, help string, labels string, v float64) obs.Point {
		return obs.Point{Name: name, Labels: labels, Kind: obs.KindGauge, Help: help, Value: v}
	}
	counter := func(name, help string, labels string, v float64) obs.Point {
		return obs.Point{Name: name, Labels: labels, Kind: obs.KindCounter, Help: help, Value: v}
	}

	// Access methods: work counters summed over the plan's nodes.
	var logical, physical, rows, rebinds, segs, retries int64
	for _, id := range nodeIDs(snap) {
		op := snap.Op(id)
		logical += op.LogicalReads
		physical += op.PhysicalReads
		rows += op.ActualRows
		rebinds += op.Rebinds
		segs += op.SegmentsProcessed
		retries += op.IORetries
	}

	pts := []obs.Point{
		// Query-progress class.
		gauge("lqs_query_progress", "Overall query progress estimate in [0,1].", progLbl, qs.Progress),
		counter("lqs_query_rows_returned_total", "Result rows returned by the query.", lbl, float64(h.sess.Query.RowsReturned())),
		gauge("lqs_query_virtual_seconds", "Virtual execution time charged so far.", lbl, qs.At.Seconds()),
		gauge("lqs_query_state", "Query lifecycle state (1 for the current state).", stateLbl, 1),

		// Access-methods class.
		counter("lqs_access_methods_logical_reads_total", "Buffer-pool page requests across all operators.", lbl, float64(logical)),
		counter("lqs_access_methods_physical_reads_total", "Page requests that went to storage.", lbl, float64(physical)),
		counter("lqs_access_methods_rows_read_total", "Rows produced across all operators (sum of k_i).", lbl, float64(rows)),
		counter("lqs_access_methods_rebinds_total", "Inner-side rebinds across all operators.", lbl, float64(rebinds)),
		counter("lqs_access_methods_segments_processed_total", "Columnstore segments processed.", lbl, float64(segs)),
		counter("lqs_access_methods_io_retries_total", "Transient page-read faults retried.", lbl, float64(retries)),

		// Buffer-manager class.
		counter("lqs_buffer_manager_page_hits_total", "Logical reads served from cache.", lbl, float64(pool.Hits)),
		counter("lqs_buffer_manager_page_misses_total", "Logical reads that went physical.", lbl, float64(pool.Misses)),
		counter("lqs_buffer_manager_evictions_total", "Pages evicted under capacity pressure.", lbl, float64(pool.Evictions)),
		counter("lqs_buffer_manager_fault_retries_total", "Transient-fault retries absorbed by the pool.", lbl, float64(pool.Retries)),
		counter("lqs_buffer_manager_faults_total", "Permanent page-read failures surfaced.", lbl, float64(pool.Faults)),
		gauge("lqs_buffer_manager_resident_pages", "Pages currently cached.", lbl, float64(pool.Resident)),
		gauge("lqs_buffer_manager_capacity_pages", "Configured cache capacity.", lbl, float64(pool.Capacity)),
	}

	// Per-operator progress, the sys.dm_exec_query_profiles drill-down.
	for _, op := range qs.Ops {
		opLbl := obs.Labeled("",
			"qid", h.qidLabel(),
			"query", h.spec.Query,
			"workload", h.spec.Workload,
			"tenant", h.spec.Tenant,
			"node", strconv.Itoa(op.NodeID),
			"op", op.Name,
		)
		pts = append(pts,
			gauge("lqs_query_op_progress", "Per-operator progress estimate in [0,1].", opLbl, op.Progress),
			counter("lqs_query_op_rows_total", "Rows produced by the operator (k_i).", opLbl, float64(op.RowsSoFar)),
		)
	}

	// Retrospective accuracy class, present once the query is terminal.
	pts = append(pts, h.accuracyPoints()...)
	return pts
}

// nodeIDs lists a snapshot's aggregated node IDs.
func nodeIDs(snap *dmv.Snapshot) []int {
	snap.Aggregate()
	ids := make([]int, len(snap.Ops))
	for i := range snap.Ops {
		ids[i] = i
	}
	return ids
}
