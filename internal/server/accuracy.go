package server

// Retrospective estimator-accuracy surface: once a hosted query reaches a
// terminal state, its DMV flight-recorder trace is replayed through every
// estimator mode (TGN/DNE/LQS/ENS) and scored against the ground-truth oracle
// — the internal/accuracy subsystem run per query, served two ways:
//
//   - GET /queries/{id}/accuracy returns the per-mode error report (409
//     with code NOT_TERMINAL while the query still runs);
//   - /metrics grows an lqs_query_accuracy_* family (qid/query/workload/
//     tenant/mode labels, gauges computed once at terminal state) plus
//     per-mode server/accuracy_mean_abs_err_* histograms aggregating over
//     every query the server has finished.
//
// The computation happens once, on the watcher goroutine right after the
// terminal state lands, so scrapes and endpoint reads only ever see the
// memoized result.

import (
	"net/http"
	"strings"

	"lqs/internal/accuracy"
	"lqs/internal/obs"
)

// ModeAccuracyJSON is one estimator mode's error report for a finished
// query (accuracy.QueryAccuracy over the wire).
type ModeAccuracyJSON struct {
	Mode                   string  `json:"mode"`
	Polls                  int     `json:"polls"`
	DegradedPolls          int     `json:"degraded_polls,omitempty"`
	ErrPolls               int     `json:"err_polls"`
	MaxAbsErr              float64 `json:"max_abs_err"`
	MeanAbsErr             float64 `json:"mean_abs_err"`
	TerminalErr            float64 `json:"terminal_err"`
	BoundsObs              int     `json:"bounds_obs,omitempty"`
	BoundsCoverage         float64 `json:"bounds_coverage"`
	MonotonicityViolations int     `json:"monotonicity_violations"`
}

// AccuracyResponse is the GET /queries/{id}/accuracy reply.
type AccuracyResponse struct {
	ID       int64  `json:"id"`
	Name     string `json:"name"`
	Workload string `json:"workload"`
	Query    string `json:"query"`
	Tenant   string `json:"tenant"`
	// DroppedPolls counts flight-recorder snapshots lost to the history
	// cap: the replay scored only the retained polls.
	DroppedPolls int64              `json:"dropped_polls,omitempty"`
	Modes        []ModeAccuracyJSON `json:"modes"`
}

// accErrBuckets grades absolute progress errors (a [0,1] quantity) for the
// per-mode server histograms.
var accErrBuckets = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5}

// computeAccuracy replays the finished query's trace through every
// estimator mode and memoizes the per-mode report. Idempotent (sync.Once);
// must only be called after the terminal state landed. The first caller —
// the watcher goroutine — also feeds the aggregate server histograms, so
// each query is observed exactly once.
func (h *hostedQuery) computeAccuracy() {
	h.accOnce.Do(func() {
		q := h.sess.Query
		tr := h.poller.Finish(q)
		for _, m := range accuracy.Modes() {
			traj := accuracy.Record(q.Plan, h.db.Catalog, tr, m)
			qa := accuracy.Measure(h.spec.Workload, h.spec.Query, traj)
			h.acc = append(h.acc, qa)
			mode := strings.ToLower(m.Name)
			h.srv.obs.Histogram("server/accuracy_mean_abs_err_"+mode, accErrBuckets).Observe(qa.MeanAbsErr)
			h.srv.obs.Histogram("server/accuracy_terminal_err_"+mode, accErrBuckets).Observe(qa.TerminalErr)
		}
		h.accDropped = tr.DroppedSnapshots
		h.srv.obs.Counter("server/accuracy_computed").Inc()
	})
}

// accuracyReport returns the memoized per-mode report, computing it on
// first use; ok is false while the query still runs.
func (h *hostedQuery) accuracyReport() (acc []accuracy.QueryAccuracy, dropped int64, ok bool) {
	if !h.done() {
		return nil, 0, false
	}
	h.computeAccuracy()
	return h.acc, h.accDropped, true
}

// handleAccuracy is GET /queries/{id}/accuracy.
func (s *Server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(w, r)
	if h == nil {
		return
	}
	acc, dropped, ok := h.accuracyReport()
	if !ok {
		writeErr(w, http.StatusConflict, APIError{
			Code:    CodeNotTerminal,
			Message: "accuracy is computed retrospectively; the query is still running",
		})
		return
	}
	out := AccuracyResponse{
		ID:           int64(h.id),
		Name:         h.name,
		Workload:     h.spec.Workload,
		Query:        h.spec.Query,
		Tenant:       h.spec.Tenant,
		DroppedPolls: dropped,
		Modes:        make([]ModeAccuracyJSON, 0, len(acc)),
	}
	for _, qa := range acc {
		out.Modes = append(out.Modes, ModeAccuracyJSON{
			Mode:                   qa.Mode,
			Polls:                  qa.Polls,
			DegradedPolls:          qa.DegradedPolls,
			ErrPolls:               qa.ErrPolls,
			MaxAbsErr:              qa.MaxAbsErr,
			MeanAbsErr:             qa.MeanAbsErr,
			TerminalErr:            qa.TerminalErr,
			BoundsObs:              qa.BoundsObs,
			BoundsCoverage:         qa.BoundsCoverage,
			MonotonicityViolations: qa.MonotonicityViolations,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// accuracyPoints renders the lqs_query_accuracy_* family for a finished
// query (nil while running): one series per mode, tenant+mode labeled,
// values fixed once computed.
func (h *hostedQuery) accuracyPoints() []obs.Point {
	acc, _, ok := h.accuracyReport()
	if !ok {
		return nil
	}
	gauge := func(name, help string, labels string, v float64) obs.Point {
		return obs.Point{Name: name, Labels: labels, Kind: obs.KindGauge, Help: help, Value: v}
	}
	pts := make([]obs.Point, 0, 7*len(acc))
	for _, qa := range acc {
		lbl := obs.Labeled("",
			"qid", h.qidLabel(),
			"query", h.spec.Query,
			"workload", h.spec.Workload,
			"tenant", h.spec.Tenant,
			"mode", qa.Mode,
		)
		pts = append(pts,
			gauge("lqs_query_accuracy_mean_abs_error", "Mean absolute progress-estimate error over non-degraded polls, per estimator mode.", lbl, qa.MeanAbsErr),
			gauge("lqs_query_accuracy_max_abs_error", "Maximum absolute progress-estimate error over non-degraded polls.", lbl, qa.MaxAbsErr),
			gauge("lqs_query_accuracy_terminal_error", "Distance from 1 of the estimate at query completion.", lbl, qa.TerminalErr),
			gauge("lqs_query_accuracy_bounds_coverage", "Fraction of cardinality-bound checks containing the true cardinality (1 when the mode computes no bounds).", lbl, qa.BoundsCoverage),
			gauge("lqs_query_accuracy_monotonicity_violations", "Polls whose estimate regressed below the previous poll.", lbl, float64(qa.MonotonicityViolations)),
			gauge("lqs_query_accuracy_polls", "Polls replayed from the flight recorder.", lbl, float64(qa.Polls)),
			gauge("lqs_query_accuracy_degraded_polls", "Replayed polls that were synthesized or repaired; excluded from the error stats.", lbl, float64(qa.DegradedPolls)),
		)
	}
	return pts
}
