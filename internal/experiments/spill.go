package experiments

import (
	"fmt"

	"lqs/internal/engine/exec"
	"lqs/internal/engine/expr"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
)

// FWSpill evaluates the paper's first §7 future-work item: "more
// fine-grained information on the internal state of blocking operators
// such as Hash and Sort." The engine implements external sort spilling and
// exposes the merge progress through extended DMV counters
// (InternalDone/InternalTotal); the experiment runs a spilling sort and
// compares the sort's progress under three models:
//
//	output-only  — the unmodified GetNext model (§3.1.2),
//	two-phase    — the paper's shipping §4.5 input/output model,
//	+internal    — the §7 extension consuming the internal-state counters.
//
// The two-phase model stalls while the merge passes run (the paper's Fig.
// 17 commentary: "even more intricate models may be needed" for "large
// sorts with multiple merge steps"); the internal counters close the gap.
func (s *Suite) FWSpill() *Result {
	w := s.Workload("TPC-H")
	b := w.Builder()
	// A 30000-row sort with a 2048-row memory budget → 2 merge passes.
	scan := b.TableScan("lineitem", nil, nil)
	comp := b.ComputeScalar(scan,
		expr.Times(row2(b, "lineitem", "l_extendedprice"),
			expr.Minus(expr.KInt(1), row2(b, "lineitem", "l_discount"))))
	srt := b.Sort(comp, []int{comp.Width - 1}, []bool{true})

	p := plan.Finalize(srt)
	cm := opt.DefaultCostModel()
	cm.SortMemoryRows = 2048
	est := opt.NewEstimator(w.DB.Catalog)
	est.CM = cm
	est.Estimate(p)
	clock := sim.NewClock()
	poller := dmvNewPoller(clock)
	w.DB.ColdStart()
	query := exec.NewQuery(p, w.DB, cm, clock)
	poller.Register(query)
	query.Run()
	tr := poller.Finish(query)

	outOnly := progress.LQSOptions()
	outOnly.TwoPhaseBlocking = false
	twoPhase := progress.LQSOptions()
	internal := progress.LQSOptions()
	internal.InternalCounters = true
	eO := progress.NewEstimator(p, w.DB.Catalog, outOnly)
	eT := progress.NewEstimator(p, w.DB.Catalog, twoPhase)
	eI := progress.NewEstimator(p, w.DB.Catalog, internal)

	opened := tr.Final.Op(srt.ID).OpenedAt
	if f := tr.Final.Op(srt.ID); f.FirstActive && f.FirstActiveAt > opened {
		opened = f.FirstActiveAt
	}
	closed := tr.Final.Op(srt.ID).ClosedAt

	res := &Result{
		ID:     "FW-Spill",
		Title:  "Spilled-sort progress: GetNext vs two-phase vs §7 internal-state counters",
		Header: []string{"t", "output-only", "two-phase", "+internal", "true"},
		Notes: []string{
			fmt.Sprintf("30000-row sort, %d-row memory budget → %d external merge passes",
				cm.SortMemoryRows, cm.SortMergePasses(30000)),
		},
	}
	var errO, errT, errI float64
	n := 0
	var rows [][]string
	for _, snap := range tr.Snapshots {
		if snap.At < opened || snap.At > closed {
			continue
		}
		truth := float64(snap.At-opened) / float64(closed-opened)
		po := eO.Estimate(snap).Op[srt.ID]
		pt := eT.Estimate(snap).Op[srt.ID]
		pi := eI.Estimate(snap).Op[srt.ID]
		errO += mathAbs(po - truth)
		errT += mathAbs(pt - truth)
		errI += mathAbs(pi - truth)
		n++
		rows = append(rows, []string{snap.At.String(), f3(po), f3(pt), f3(pi), f3(truth)})
	}
	for _, i := range sampleIndices(len(rows), 16) {
		res.Rows = append(res.Rows, rows[i])
	}
	if n > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"sort Errortime: output-only %.3f, two-phase %.3f, +internal %.3f over %d samples",
			errO/float64(n), errT/float64(n), errI/float64(n), n))
	}
	return res
}
