package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickSuite() *Suite { return NewSuite(Config{Seed: 42, Quick: true}) }

func cell(r *Result, row, col int) float64 {
	v, err := strconv.ParseFloat(strings.TrimSpace(r.Rows[row][col]), 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestRegistryAndUnknownID(t *testing.T) {
	s := quickSuite()
	if len(IDs()) != 17 {
		t.Fatalf("%d experiments registered", len(IDs()))
	}
	if _, err := s.Run("FigNope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig8ShowsExchangeLag(t *testing.T) {
	s := quickSuite()
	r := s.Fig8()
	if len(r.Rows) < 10 {
		t.Fatalf("only %d rows", len(r.Rows))
	}
	// The note carries the headline ratios; the max must be large.
	if !strings.Contains(r.Notes[0], "max K-ratio") {
		t.Fatal("ratio note missing")
	}
	// Mid-execution the nested loop's K leads the exchange's.
	mid := r.Rows[len(r.Rows)/2]
	kn, _ := strconv.ParseInt(mid[1], 10, 64)
	ke, _ := strconv.ParseInt(mid[2], 10, 64)
	if kn <= ke {
		t.Fatalf("no lag mid-execution: NL=%d exch=%d", kn, ke)
	}
}

func TestFig11TwoPhaseBeatsOutputOnly(t *testing.T) {
	s := quickSuite()
	r := s.Fig11()
	// Parse "avg |err|: output-only X vs two-phase Y" from the note.
	var out, two float64
	if _, err := sscanNote(r.Notes[0], "avg |err|: output-only %f vs two-phase %f", &out, &two); err != nil {
		t.Fatalf("note format changed: %s", r.Notes[0])
	}
	if two >= out {
		t.Fatalf("two-phase (%v) did not beat output-only (%v)", two, out)
	}
	if out < 0.3 {
		t.Fatalf("output-only error %v suspiciously low; the paper's sits near 0 progress all along", out)
	}
}

func TestFig12WeightsNote(t *testing.T) {
	s := quickSuite()
	r := s.Fig12()
	if len(r.Rows) < 10 {
		t.Fatal("series too short")
	}
}

func TestFig13LargeGap(t *testing.T) {
	s := quickSuite()
	r := s.Fig13()
	var e1, e2 float64
	if _, err := sscanNote(r.Notes[0], "avg errors: %f vs %f", &e1, &e2); err != nil {
		t.Fatalf("note format changed: %s", r.Notes[0])
	}
	if e1-e2 < 0.1 {
		t.Fatalf("estimator gap %v below the paper's illustrative 0.1", e1-e2)
	}
}

func TestFig18ColumnstoreWins(t *testing.T) {
	s := quickSuite()
	r := s.Fig18()
	if len(r.Rows) != 2 {
		t.Fatalf("rows: %v", r.Rows)
	}
	row0, cs := cell(r, 0, 1), cell(r, 1, 1)
	if cs >= row0 {
		t.Fatalf("columnstore Errortime %v not below rowstore %v (paper Fig. 18)", cs, row0)
	}
}

func TestFig19OperatorMixShift(t *testing.T) {
	s := quickSuite()
	r := s.Fig19()
	byOp := map[string][2]float64{}
	for i, row := range r.Rows {
		byOp[row[0]] = [2]float64{cell(r, i, 1), cell(r, i, 2)}
	}
	if byOp["Nested Loops"][0] != 0 || byOp["Nested Loops"][1] == 0 {
		t.Fatal("columnstore design should eliminate nested loops")
	}
	if byOp["Columnstore Index Scan"][0] == 0 {
		t.Fatal("columnstore design must use batch scans")
	}
	if byOp["Table Scan"][0] != 0 {
		t.Fatal("columnstore design should not heap-scan")
	}
}

func TestTableA1BoundsContainTruth(t *testing.T) {
	s := quickSuite()
	r := s.TableA1()
	for _, row := range r.Rows {
		lb, _ := strconv.ParseFloat(row[3], 64)
		ub := 1e18
		if row[4] != "inf" {
			ub, _ = strconv.ParseFloat(row[4], 64)
		}
		truth, _ := strconv.ParseFloat(row[7], 64)
		if truth < lb-0.5 || truth > ub+0.5 {
			t.Fatalf("true N %v outside [%v, %v] for %v", truth, lb, ub, row[1])
		}
	}
}

func TestCrossWorkloadFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("all-workload experiments are slow")
	}
	s := quickSuite()

	// Fig14: bounding+refinement beats no-refinement on at least 4 of 5.
	r14 := s.Fig14()
	wins := 0
	for i := range r14.Rows {
		if cell(r14, i, 3) < cell(r14, i, 1) {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("Fig14: refinement won on only %d/%d workloads:\n%s", wins, len(r14.Rows), r14.Render())
	}

	// Fig16: weights beat no-weights on every workload.
	r16 := s.Fig16()
	for i := range r16.Rows {
		if cell(r16, i, 1) >= cell(r16, i, 2) {
			t.Errorf("Fig16: weights lost on %s:\n%s", r16.Rows[i][0], r16.Render())
		}
	}

	// Fig17: two-phase beats output-only for Hash Aggregate and Sort.
	r17 := s.Fig17()
	for i := range r17.Rows {
		if cell(r17, i, 2) >= cell(r17, i, 1) {
			t.Errorf("Fig17: two-phase lost on %s", r17.Rows[i][0])
		}
	}

	// Fig15: the semi-blocking column improves (or ties) the plain
	// refinement column for a clear majority of operator types.
	r15 := s.Fig15()
	better, worse := 0, 0
	for i := range r15.Rows {
		a, b := cell(r15, i, 2), cell(r15, i, 3)
		switch {
		case b <= a+1e-9:
			better++
		default:
			worse++
		}
	}
	if worse > better/3 {
		t.Errorf("Fig15: semi-blocking regressed on %d op types vs %d improved/tied:\n%s", worse, better, r15.Render())
	}
}

// TestSuiteParallelRendersIdentically pins the tentpole guarantee at the
// experiment layer: a suite configured with parallel tracing renders the
// same bytes as a serial one. Fig18 traces two full TPC-H designs through
// the runner, so the worker pool genuinely reorders trace completion.
func TestSuiteParallelRendersIdentically(t *testing.T) {
	serial := NewSuite(Config{Seed: 42, Quick: true, Parallel: 1})
	par := NewSuite(Config{Seed: 42, Quick: true, Parallel: 4})
	want := serial.Fig18().Render()
	got := par.Fig18().Render()
	if got != want {
		t.Fatalf("parallel Fig18 diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

func TestRenderTable(t *testing.T) {
	r := &Result{ID: "X", Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	out := r.Render()
	for _, want := range []string{"=== X: T ===", "# n", "a", "bb", "--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// sscanNote extracts floats from a note with a simple %f pattern.
func sscanNote(note, pattern string, out ...*float64) (int, error) {
	fields := strings.Fields(note)
	pats := strings.Fields(pattern)
	n := 0
	for i, p := range pats {
		if p == "%f" && i < len(fields) {
			v, err := strconv.ParseFloat(strings.TrimRight(fields[i], ","), 64)
			if err != nil {
				return n, err
			}
			*out[n] = v
			n++
		}
	}
	return n, nil
}

// TestSuiteRunRepeatable pins the contract the figure benchmarks rely on:
// Suite.Run must not mutate its cached workloads (each trace cold-starts
// the buffer pool and builds a fresh plan, so the cache is read-only), and
// therefore re-running any figure against one shared suite — exactly what
// bench_test.go does for b.N iterations — renders byte-identical artifacts.
func TestSuiteRunRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("running every figure twice is slow")
	}
	s := quickSuite()
	figures := []string{
		"Fig8", "Fig11", "Fig12", "Fig13", "Fig14", "Fig15", "Fig16",
		"Fig17", "Fig18", "Fig19", "Fig20", "TableA1",
	}
	for _, id := range figures {
		r1, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: first run: %v", id, err)
		}
		r2, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: second run: %v", id, err)
		}
		if a, b := r1.Render(), r2.Render(); a != b {
			t.Errorf("%s: repeated run rendered different artifact:\n--- first ---\n%s--- second ---\n%s", id, a, b)
		}
	}
}
