package experiments

import (
	"fmt"
	"math"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/expr"
	"lqs/internal/metrics"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/workload"
)

// findQuery locates a named query in a workload.
func findQuery(w *workload.Workload, name string) workload.Query {
	for _, q := range w.Queries {
		if q.Name == name {
			return q
		}
	}
	panic("experiments: no query " + name + " in " + w.Name)
}

// sampleIndices picks up to n evenly spaced indices from [0, total).
func sampleIndices(total, n int) []int {
	if total <= n {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = i * (total - 1) / (n - 1)
	}
	return out
}

// Fig8 reproduces Figures 7/8: the Parallelism (exchange) operator lags
// its nested-loop child because producers run ahead into the exchange
// buffer; the K_i ratio between the two is large early and shrinks over
// time (the paper measures 88x and 12x at two points).
func (s *Suite) Fig8() *Result {
	w := s.Workload("TPC-DS")
	b := w.Builder()
	cust := b.TableScan("customer", nil, nil)
	inner := b.SeekEq("store_sales", "ix_cust",
		[]expr.Expr{expr.C(0, "c_custkey")}, nil)
	nl := b.NestedLoopsNode(plan.LogicalInnerJoin, cust, inner, nil)
	ex := b.ExchangeNode(nl, plan.GatherStreams)
	ex.ExchangeStartup = 4096
	ex.ExchangeAhead = 2
	q := workload.Query{Name: "Fig8", Build: func(*plan.Builder) *plan.Node { return ex }}
	_, tr := metrics.TraceQuery(w, q, metrics.DefaultInterval)

	res := &Result{
		ID:     "Fig8",
		Title:  "GetNext counts: Nested Loop vs Parallelism over time",
		Header: []string{"t", "K(NestedLoop)", "K(Parallelism)", "ratio"},
	}
	// Ratio statistics over every snapshot (the extreme ratios occur just
	// after the consumer's first row, between display samples).
	maxRatio, lastRatio := 0.0, 0.0
	for _, snap := range tr.Snapshots {
		kn, ke := snap.Op(nl.ID).ActualRows, snap.Op(ex.ID).ActualRows
		if ke > 0 {
			r := float64(kn) / float64(ke)
			if r > maxRatio {
				maxRatio = r
			}
			lastRatio = r
		}
	}
	for _, i := range sampleIndices(len(tr.Snapshots), 18) {
		snap := tr.Snapshots[i]
		kn := snap.Op(nl.ID).ActualRows
		ke := snap.Op(ex.ID).ActualRows
		ratio := math.Inf(1)
		if ke > 0 {
			ratio = float64(kn) / float64(ke)
		}
		res.Rows = append(res.Rows, []string{
			snap.At.String(), fmt.Sprint(kn), fmt.Sprint(ke), f2(ratio),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("max K-ratio %.0fx, final K-ratio %.1fx (paper: 88x early, 12x later)", maxRatio, lastRatio),
		"the child's GetNext count leads the exchange's by the buffer occupancy (§4.4)")
	return res
}

// Fig11 reproduces Figure 11: Hash Aggregate progress under the
// output-only GetNext model versus the two-phase input+output model of
// §4.5, against true progress (fraction of the operator's active window).
func (s *Suite) Fig11() *Result {
	w := s.Workload("TPC-DS")
	p, tr := metrics.TraceQuery(w, findQuery(w, "Q13"), metrics.DefaultInterval)
	// Q13's root is the hash aggregate.
	aggID := p.Root.ID

	outOnly := progress.LQSOptions()
	outOnly.TwoPhaseBlocking = false
	eOut := progress.NewEstimator(p, w.DB.Catalog, outOnly)
	eTwo := progress.NewEstimator(p, w.DB.Catalog, progress.LQSOptions())

	opened := tr.Final.Op(aggID).OpenedAt
	if f := tr.Final.Op(aggID); f.FirstActive && f.FirstActiveAt > opened {
		opened = f.FirstActiveAt
	}
	closed := tr.Final.Op(aggID).ClosedAt

	res := &Result{
		ID:     "Fig11",
		Title:  "Hash Aggregate progress: output-only vs two-phase model (TPC-DS Q13)",
		Header: []string{"t", "output-only", "input+output", "true"},
	}
	var errOut, errTwo float64
	n := 0
	var rows [][]string
	for _, snap := range tr.Snapshots {
		if snap.At < opened || snap.At > closed {
			continue
		}
		truth := float64(snap.At-opened) / float64(closed-opened)
		po := eOut.Estimate(snap).Op[aggID]
		pt := eTwo.Estimate(snap).Op[aggID]
		errOut += math.Abs(po - truth)
		errTwo += math.Abs(pt - truth)
		n++
		rows = append(rows, []string{snap.At.String(), f3(po), f3(pt), f3(truth)})
	}
	for _, i := range sampleIndices(len(rows), 18) {
		res.Rows = append(res.Rows, rows[i])
	}
	if n > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"avg |err|: output-only %.3f vs two-phase %.3f over %d samples (paper: output-only sits at 0%% for nearly the whole operator)",
			errOut/float64(n), errTwo/float64(n), n))
	}
	return res
}

// Fig12 reproduces Figure 12: weighted vs unweighted query progress over
// time for the TPC-DS Q21 analog.
func (s *Suite) Fig12() *Result {
	w := s.Workload("TPC-DS")
	p, tr := metrics.TraceQuery(w, findQuery(w, "Q21"), metrics.DefaultInterval)
	unw := progress.LQSOptions()
	unw.Weighted = false
	eU := progress.NewEstimator(p, w.DB.Catalog, unw)
	eW := progress.NewEstimator(p, w.DB.Catalog, progress.LQSOptions())

	res := &Result{
		ID:     "Fig12",
		Title:  "Query progress with and without operator weights (TPC-DS Q21)",
		Header: []string{"t", "unweighted", "weighted", "true"},
	}
	var errU, errW float64
	for _, snap := range tr.Snapshots {
		truth := float64(snap.At-tr.StartedAt) / float64(tr.EndedAt-tr.StartedAt)
		errU += math.Abs(eU.Estimate(snap).Query - truth)
		errW += math.Abs(eW.Estimate(snap).Query - truth)
	}
	for _, i := range sampleIndices(len(tr.Snapshots), 18) {
		snap := tr.Snapshots[i]
		truth := float64(snap.At-tr.StartedAt) / float64(tr.EndedAt-tr.StartedAt)
		res.Rows = append(res.Rows, []string{
			snap.At.String(),
			f3(eU.Estimate(snap).Query),
			f3(eW.Estimate(snap).Query),
			f3(truth),
		})
	}
	n := float64(len(tr.Snapshots))
	res.Notes = append(res.Notes,
		fmt.Sprintf("Errortime: unweighted %.3f vs weighted %.3f", errU/n, errW/n),
		"both estimators underestimate early while the random-I/O pipeline runs; the weighted one",
		"over-credits that pipeline afterwards because per-seek cost estimates ignore caching (a",
		"limitation the paper states in §4.6). Fig16 shows weights winning on every full workload.")
	return res
}

// Fig13 reproduces Figure 13: two estimators roughly 0.1 apart in error on
// TPC-DS Q36. The paper's figure illustrates how large such a gap looks;
// we recreate the situation that produces it — a gross optimizer
// cardinality misestimate that the bare TGN estimator swallows whole while
// the full LQS estimator refines it away at runtime.
func (s *Suite) Fig13() *Result {
	w := s.Workload("TPC-DS")
	p, tr := metrics.TraceQuery(w, findQuery(w, "Q36"), metrics.DefaultInterval)
	// Inject a 12x overestimate on the join pyramid (as a bad selectivity
	// guess would), after execution so the trace itself is unaffected.
	for _, n := range p.Nodes {
		if n.Physical == plan.HashJoin || n.Physical == plan.ComputeScalar {
			n.EstRows *= 12
		}
	}
	e1 := progress.NewEstimator(p, w.DB.Catalog, progress.TGNOptions())
	e2 := progress.NewEstimator(p, w.DB.Catalog, progress.LQSOptions())
	res := &Result{
		ID:     "Fig13",
		Title:  "Two progress estimators on TPC-DS Q36",
		Header: []string{"t", "estimator1(TGN)", "estimator2(LQS)", "true"},
	}
	var err1, err2 float64
	for _, snap := range tr.Snapshots {
		truth := float64(snap.At-tr.StartedAt) / float64(tr.EndedAt-tr.StartedAt)
		err1 += math.Abs(e1.Estimate(snap).Query - truth)
		err2 += math.Abs(e2.Estimate(snap).Query - truth)
	}
	for _, i := range sampleIndices(len(tr.Snapshots), 18) {
		snap := tr.Snapshots[i]
		truth := float64(snap.At-tr.StartedAt) / float64(tr.EndedAt-tr.StartedAt)
		res.Rows = append(res.Rows, []string{
			snap.At.String(),
			f3(e1.Estimate(snap).Query),
			f3(e2.Estimate(snap).Query),
			f3(truth),
		})
	}
	n := float64(len(tr.Snapshots))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"avg errors: %.3f vs %.3f (difference %.3f; the paper illustrates that ~0.1 is a big visual gap)",
		err1/n, err2/n, math.Abs(err1-err2)/n))
	return res
}

// fig14Configs are the three estimator configurations of Figure 14. The
// experiment isolates the accuracy of the N_i terms (the paper compares
// against progress computed with exact N_i), so the progress model is held
// fixed at the oracle's own TGN shape and only the N̂ derivation varies.
// (The paper's third configuration also switches to driver-node query
// progress; with this engine's accurate synthetic base estimates that
// model change dominates the N_i effect being measured, so we keep the
// cleaner ablation — see EXPERIMENTS.md.)
func fig14Configs() (none, boundOnly, full progress.Options) {
	none = progress.TGNOptions()
	boundOnly = progress.Options{Bound: true}
	full = progress.Options{
		Refine: true, Bound: true, SemiBlocking: true,
		StoragePredIO: true, BatchMode: true,
	}
	return
}

// Fig14 reproduces Figure 14: average Errorcount per workload under (a)
// no refinement, (b) bounding only, (c) bounding + refinement.
func (s *Suite) Fig14() *Result {
	none, boundOnly, full := fig14Configs()
	res := &Result{
		ID:     "Fig14",
		Title:  "Avg Errorcount per query",
		Header: []string{"workload", "NoRefinement", "BoundingOnly", "Bounding+Refinement", "queries"},
	}
	for _, name := range workloadNames {
		w := s.Workload(name)
		var sums [3]float64
		n := 0
		s.runner(name).ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			a, ok1 := metrics.ErrorCount(p, tr, w, none)
			b, ok2 := metrics.ErrorCount(p, tr, w, boundOnly)
			c, ok3 := metrics.ErrorCount(p, tr, w, full)
			if ok1 && ok2 && ok3 {
				sums[0] += a
				sums[1] += b
				sums[2] += c
				n++
			}
		})
		if n == 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{
			name, f3(sums[0] / float64(n)), f3(sums[1] / float64(n)), f3(sums[2] / float64(n)), fmt.Sprint(n),
		})
	}
	res.Notes = append(res.Notes, "expected shape: each column improves on the previous (paper Fig. 14)")
	return res
}

// Fig15 reproduces Figure 15: per-operator Errorcount under (a) no
// refinement, (b) §4.1 refinement, (c) refinement + §4.4 semi-blocking
// adjustments, aggregated across all five workloads.
func (s *Suite) Fig15() *Result {
	configs := []progress.Options{
		{},
		{Refine: true},
		{Refine: true, SemiBlocking: true},
	}
	accs := []metrics.OpErrors{{}, {}, {}}
	for _, name := range workloadNames {
		w := s.Workload(name)
		s.runner(name).ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			for i, o := range configs {
				metrics.AccumOpErrorCount(p, tr, w, o, accs[i])
			}
		})
	}
	res := &Result{
		ID:     "Fig15",
		Title:  "Per-operator Errorcount: refinement and semi-blocking adjustments",
		Header: []string{"operator", "NoRefinement", "Refinement", "Refinement+SemiBlocking", "samples"},
	}
	present := map[plan.PhysicalOp]bool{}
	for op := range accs[0] {
		present[op] = true
	}
	for _, op := range sortedOps(present) {
		res.Rows = append(res.Rows, []string{
			op.String(),
			f3(accs[0][op].Avg()),
			f3(avgOr(accs[1], op)),
			f3(avgOr(accs[2], op)),
			fmt.Sprint(accs[0][op].N),
		})
	}
	res.Notes = append(res.Notes, "expected shape: semi-blocking adjustments help nearly every operator type (paper Fig. 15)")
	return res
}

func avgOr(oe metrics.OpErrors, op plan.PhysicalOp) float64 {
	if a, ok := oe[op]; ok {
		return a.Avg()
	}
	return 0
}

// Fig16 reproduces Figure 16: average Errortime per workload with and
// without the §4.6 operator weights.
func (s *Suite) Fig16() *Result {
	weighted := progress.LQSOptions()
	unweighted := progress.LQSOptions()
	unweighted.Weighted = false
	res := &Result{
		ID:     "Fig16",
		Title:  "Avg Errortime per query: weighted vs unweighted",
		Header: []string{"workload", "WithWeight", "WithoutWeight", "queries"},
	}
	for _, name := range workloadNames {
		w := s.Workload(name)
		var sw, su float64
		n := 0
		s.runner(name).ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			a, ok1 := metrics.ErrorTime(p, tr, w, weighted)
			b, ok2 := metrics.ErrorTime(p, tr, w, unweighted)
			if ok1 && ok2 {
				sw += a
				su += b
				n++
			}
		})
		if n == 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{name, f3(sw / float64(n)), f3(su / float64(n)), fmt.Sprint(n)})
	}
	res.Notes = append(res.Notes, "expected shape: weights improve time correlation on every workload (paper Fig. 16)")
	return res
}

// Fig17 reproduces Figure 17: Errortime for blocking operators (Hash
// Aggregate / Sort) under the output-only model vs the two-phase model.
func (s *Suite) Fig17() *Result {
	outOnly := progress.LQSOptions()
	outOnly.TwoPhaseBlocking = false
	two := progress.LQSOptions()
	accOut, accTwo := metrics.OpErrors{}, metrics.OpErrors{}
	for _, name := range workloadNames {
		w := s.Workload(name)
		s.runner(name).ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			metrics.AccumOpErrorTime(p, tr, w, outOnly, accOut)
			metrics.AccumOpErrorTime(p, tr, w, two, accTwo)
		})
	}
	res := &Result{
		ID:     "Fig17",
		Title:  "Errortime for blocking operators: output-only vs input+output model",
		Header: []string{"operator", "OutputNiOnly", "Input+OutputNi", "samples"},
	}
	for _, op := range []plan.PhysicalOp{plan.HashAggregate, plan.Sort, plan.TopNSort, plan.DistinctSort} {
		if accOut[op] == nil {
			continue
		}
		res.Rows = append(res.Rows, []string{
			op.String(), f3(accOut[op].Avg()), f3(avgOr(accTwo, op)), fmt.Sprint(accOut[op].N),
		})
	}
	res.Notes = append(res.Notes, "expected shape: the two-phase model reduces error for Hash and Sort (paper Fig. 17)")
	return res
}

// Fig18 reproduces Figure 18: average Errortime on TPC-H under the
// row-store design vs the columnstore design.
func (s *Suite) Fig18() *Result {
	res := &Result{
		ID:     "Fig18",
		Title:  "Avg Errortime: TPC-H vs TPC-H ColumnStore",
		Header: []string{"design", "Errortime", "queries"},
	}
	for _, name := range []string{"TPC-H", "TPC-H ColumnStore"} {
		w := s.Workload(name)
		var sum float64
		n := 0
		s.runner(name).ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			if v, ok := metrics.ErrorTime(p, tr, w, progress.LQSOptions()); ok {
				sum += v
				n++
			}
		})
		res.Rows = append(res.Rows, []string{name, f3(sum / float64(max1(n))), fmt.Sprint(n)})
	}
	res.Notes = append(res.Notes, "expected shape: the columnstore design reduces average error significantly (paper Fig. 18)")
	return res
}

// Fig19 reproduces Figure 19: operator frequency across the TPC-H suite
// under the two physical designs.
func (s *Suite) Fig19() *Result {
	rfreq := metrics.OperatorFrequency(s.Workload("TPC-H"))
	cfreq := metrics.OperatorFrequency(s.Workload("TPC-H ColumnStore"))
	present := map[plan.PhysicalOp]bool{}
	for op := range rfreq {
		present[op] = true
	}
	for op := range cfreq {
		present[op] = true
	}
	res := &Result{
		ID:     "Fig19",
		Title:  "Operator frequency by physical design",
		Header: []string{"operator", "TPC-H ColumnStore", "TPC-H"},
	}
	for _, op := range sortedOps(present) {
		res.Rows = append(res.Rows, []string{op.String(), fmt.Sprint(cfreq[op]), fmt.Sprint(rfreq[op])})
	}
	res.Notes = append(res.Notes,
		"expected shape: the columnstore design collapses the plan space onto scans + hash operators (paper Fig. 19)")
	return res
}

// Fig20 reproduces Figure 20: per-operator Errortime under the two TPC-H
// physical designs.
func (s *Suite) Fig20() *Result {
	accR, accC := metrics.OpErrors{}, metrics.OpErrors{}
	for name, acc := range map[string]metrics.OpErrors{"TPC-H": accR, "TPC-H ColumnStore": accC} {
		w := s.Workload(name)
		s.runner(name).ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			metrics.AccumOpErrorTime(p, tr, w, progress.LQSOptions(), acc)
		})
	}
	present := map[plan.PhysicalOp]bool{}
	for op := range accR {
		present[op] = true
	}
	for op := range accC {
		present[op] = true
	}
	res := &Result{
		ID:     "Fig20",
		Title:  "Per-operator Errortime by physical design",
		Header: []string{"operator", "TPC-H ColumnStore", "TPC-H"},
	}
	for _, op := range sortedOps(present) {
		cVal, rVal := "-", "-"
		if accC[op] != nil {
			cVal = f3(accC[op].Avg())
		}
		if accR[op] != nil {
			rVal = f3(accR[op].Avg())
		}
		res.Rows = append(res.Rows, []string{op.String(), cVal, rVal})
	}
	res.Notes = append(res.Notes, "expected shape: per-operator error drops for operators in the columnstore design (paper Fig. 20)")
	return res
}

// TableA1 demonstrates the Appendix A bounding rules live: the bounds at
// mid-execution of a TPC-H query, against the optimizer estimate and true
// cardinality. (The rules themselves are unit-tested per operator in
// internal/progress/bounds_test.go.)
func (s *Suite) TableA1() *Result {
	w := s.Workload("TPC-H")
	p, tr := metrics.TraceQuery(w, findQuery(w, "Q3"), metrics.DefaultInterval)
	est := progress.NewEstimator(p, w.DB.Catalog, progress.Options{Bound: true, Refine: true, SemiBlocking: true})
	snap := tr.Snapshots[len(tr.Snapshots)/2]
	e := est.Estimate(snap)
	res := &Result{
		ID:     "TableA1",
		Title:  "Cardinality bounds mid-execution (TPC-H Q3, halfway point)",
		Header: []string{"node", "operator", "K_i", "LB", "UB", "optimizer", "refined", "true N_i"},
	}
	for _, n := range p.Nodes {
		ub := "inf"
		if !math.IsInf(e.Bounds[n.ID].UB, 1) {
			ub = f2(e.Bounds[n.ID].UB)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n.ID), n.Logical.String(),
			fmt.Sprint(snap.Op(n.ID).ActualRows),
			f2(e.Bounds[n.ID].LB), ub,
			f2(n.EstRows), f2(e.N[n.ID]),
			fmt.Sprint(tr.TrueRows[n.ID]),
		})
	}
	res.Notes = append(res.Notes, "every true N_i must lie within [LB, UB]")
	return res
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
