// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) against the simulated engine. Each experiment is
// a method on Suite producing a Result — the same rows/series the paper
// reports — which cmd/lqsbench renders as text.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not the authors' 100 GB testbed); the reproduction target is the shape:
// which technique wins, roughly by how much, and where.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lqs/internal/metrics"
	"lqs/internal/plan"
	"lqs/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all data and workload generation.
	Seed uint64
	// Quick subsamples the large REAL workloads (stride) so the full
	// suite completes in tens of seconds; the default full mode traces
	// every query, as the paper does.
	Quick bool
	// Parallel is the tracing worker count handed to every runner
	// (metrics.Runner semantics: 1 = serial, 0 = GOMAXPROCS). Results are
	// byte-identical at any setting.
	Parallel int
}

// Suite lazily builds and caches the five workloads (plus the columnstore
// TPC-H design) so experiments sharing a workload pay generation once.
type Suite struct {
	Cfg   Config
	cache map[string]*workload.Workload
}

// NewSuite returns a Suite for the config.
func NewSuite(cfg Config) *Suite {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return &Suite{Cfg: cfg, cache: make(map[string]*workload.Workload)}
}

// workloadNames is the paper's presentation order (Fig. 14/16).
var workloadNames = []string{"REAL-3", "REAL-2", "REAL-1", "TPC-DS", "TPC-H"}

// Workload returns a cached workload by name ("TPC-H", "TPC-H ColumnStore",
// "TPC-DS", "REAL-1", "REAL-2", "REAL-3").
func (s *Suite) Workload(name string) *workload.Workload {
	if w, ok := s.cache[name]; ok {
		return w
	}
	var w *workload.Workload
	switch name {
	case "TPC-H":
		w = workload.TPCH(s.Cfg.Seed, workload.TPCHRowstore)
	case "TPC-H ColumnStore":
		w = workload.TPCH(s.Cfg.Seed, workload.TPCHColumnstore)
	case "TPC-DS":
		w = workload.TPCDS(s.Cfg.Seed)
	case "REAL-1":
		w = workload.REAL1(s.Cfg.Seed)
	case "REAL-2":
		w = workload.REAL2(s.Cfg.Seed)
	case "REAL-3":
		w = workload.REAL3(s.Cfg.Seed)
	default:
		panic("experiments: unknown workload " + name)
	}
	s.cache[name] = w
	return w
}

// runner returns the per-workload tracing runner; Quick mode strides the
// big REAL workloads down to ~60 queries.
func (s *Suite) runner(name string) metrics.Runner {
	r := metrics.Runner{Parallel: s.Cfg.Parallel}
	if s.Cfg.Quick {
		switch name {
		case "REAL-1":
			r.Stride = 8
		case "REAL-2":
			r.Stride = 11
		}
	}
	return r
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Notes []string
	// Tabular payload.
	Header []string
	Rows   [][]string
}

// Render formats the result as a text table.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	return sb.String()
}

// Registry maps experiment IDs to their drivers, in paper order.
type entry struct {
	id    string
	title string
	run   func(s *Suite) *Result
}

func registry() []entry {
	return []entry{
		{"Fig8", "GetNext lag between a Nested Loop and its Parallelism parent", (*Suite).Fig8},
		{"Fig11", "Two-phase model for Hash Aggregate (TPC-DS Q13)", (*Suite).Fig11},
		{"Fig12", "Weighted vs unweighted query progress (TPC-DS Q21)", (*Suite).Fig12},
		{"Fig13", "Two estimators on TPC-DS Q36", (*Suite).Fig13},
		{"Fig14", "Errorcount: refinement and bounding across workloads", (*Suite).Fig14},
		{"Fig15", "Per-operator Errorcount: refinement and semi-blocking adjustments", (*Suite).Fig15},
		{"Fig16", "Errortime: weighted vs unweighted across workloads", (*Suite).Fig16},
		{"Fig17", "Errortime for blocking operators: output-only vs two-phase", (*Suite).Fig17},
		{"Fig18", "Errortime: TPC-H rowstore vs columnstore design", (*Suite).Fig18},
		{"Fig19", "Operator frequency by physical design", (*Suite).Fig19},
		{"Fig20", "Per-operator Errortime by physical design", (*Suite).Fig20},
		{"TableA1", "Cardinality bounds in action (Appendix A)", (*Suite).TableA1},
		{"AblationPath", "All-pipelines vs longest-path weighting", (*Suite).AblationPath},
		{"AblationInterp", "Direct scale-up vs interpolation refinement", (*Suite).AblationInterp},
		{"FW-Propagate", "§7(a): refined-cardinality propagation", (*Suite).FWPropagate},
		{"FW-Weights", "§7(b): weight calibration from prior runs", (*Suite).FWWeights},
		{"FW-Spill", "§7: internal-state counters for spilled sorts", (*Suite).FWSpill},
	}
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	var out []string
	for _, e := range registry() {
		out = append(out, e.id)
	}
	return out
}

// Run executes one experiment by ID.
func (s *Suite) Run(id string) (*Result, error) {
	for _, e := range registry() {
		if strings.EqualFold(e.id, id) {
			return e.run(s), nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// sortedOps returns operator types sorted by display name for stable rows.
func sortedOps(set map[plan.PhysicalOp]bool) []plan.PhysicalOp {
	var ops []plan.PhysicalOp
	for op := range set {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })
	return ops
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
