package experiments

import (
	"fmt"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/expr"
	"lqs/internal/metrics"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// The ablation and future-work experiments below go beyond the paper's
// figures: they quantify the design choices DESIGN.md §4 calls out and the
// §7 future-work items implemented in internal/progress.

// ablationWorkloads keeps the ablations fast: the two benchmark suites.
var ablationWorkloads = []string{"TPC-DS", "TPC-H"}

// compare runs two estimator configurations over workloads with the given
// per-query metric and renders a two-column table.
func (s *Suite) compare(id, title, colA, colB string,
	optA, optB progress.Options,
	metric func(p *plan.Plan, tr *dmv.Trace, w *workload.Workload, o progress.Options) (float64, bool),
	notes ...string) *Result {
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"workload", colA, colB, "queries"},
		Notes:  notes,
	}
	for _, name := range ablationWorkloads {
		w := s.Workload(name)
		var sa, sb float64
		n := 0
		s.runner(name).ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			a, ok1 := metric(p, tr, w, optA)
			bv, ok2 := metric(p, tr, w, optB)
			if ok1 && ok2 {
				sa += a
				sb += bv
				n++
			}
		})
		if n == 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{name, f3(sa / float64(n)), f3(sb / float64(n)), fmt.Sprint(n)})
	}
	return res
}

// AblationPath compares summing weighted progress over all pipelines (this
// engine's serial-execution default) against the paper's longest-path rule.
func (s *Suite) AblationPath() *Result {
	all := progress.LQSOptions()
	path := progress.LQSOptions()
	path.LongestPathOnly = true
	return s.compare("AblationPath",
		"Errortime: all-pipelines vs longest-path weighting",
		"AllPipelines", "LongestPath", all, path, metrics.ErrorTime,
		"the paper's longest-path rule models overlapped pipelines; this engine runs them serially (DESIGN.md §4b)")
}

// AblationInterp compares §4.1's direct scale-up against the prior-work
// linear interpolation [22] the paper rejects for slow convergence.
func (s *Suite) AblationInterp() *Result {
	direct := progress.LQSOptions()
	interp := progress.LQSOptions()
	interp.InterpRefine = true
	return s.compare("AblationInterp",
		"Errorcount: direct scale-up vs linear-interpolation refinement [22]",
		"DirectScaleUp", "Interpolation", direct, interp, metrics.ErrorCount,
		"§4.1: interpolation 'converges very slowly for highly erroneous initial estimates'")
}

// FWPropagate evaluates §7 future-work item (a): propagating refined
// cardinalities (not just bounds) across pipeline boundaries.
func (s *Suite) FWPropagate() *Result {
	// Propagation only matters when (1) a pipeline's cardinality is badly
	// misestimated, (2) its refinement has happened, and (3) a consumer
	// *beyond a blocking boundary* depends on it — a conjunction rare
	// enough in the benchmark suites that the paper left this as future
	// work. The experiment therefore uses the targeted scenario: a
	// misestimated filtered scan feeding a key-grouped aggregate (whose
	// optimizer estimate is capped by the wrong input) whose output
	// drives an expensive downstream nested-loop pipeline. The metric is
	// Errortime; bounds stay off to isolate propagation from clamping.
	w := s.Workload("TPC-H")
	b := w.Builder()
	li := b.TableScan("lineitem",
		nil, expr.Gt(row2(b, "lineitem", "l_quantity"), expr.KInt(10)))
	agg := b.HashAgg(li,
		[]int{w.DB.Catalog.MustTable("lineitem").MustCol("l_orderkey")},
		[]expr.AggSpec{{Kind: expr.Sum, Arg: row2(b, "lineitem", "l_extendedprice")}})
	inner := b.SeekEq("orders", "pk", []expr.Expr{expr.C(0, "l_orderkey")}, nil)
	nl := b.NestedLoopsNode(plan.LogicalInnerJoin, agg, inner, nil)
	root := b.Sort(nl, []int{1}, []bool{true})

	p := plan.Finalize(root)
	est := opt.NewEstimator(w.DB.Catalog)
	est.NodeMultiplier = func(n *plan.Node) float64 {
		if n == li {
			return 0.05 // stale statistics: 20x under-estimate
		}
		return 1
	}
	est.Estimate(p)
	clock := simNewClock()
	poller := dmv.NewPoller(clock, metrics.DefaultInterval)
	w.DB.ColdStart()
	query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), clock)
	poller.Register(query)
	query.Run()
	tr := poller.Finish(query)

	base := progress.LQSOptions()
	base.Bound = false
	prop := base
	prop.PropagateRefined = true
	eB := progress.NewEstimator(p, w.DB.Catalog, base)
	eP := progress.NewEstimator(p, w.DB.Catalog, prop)
	res := &Result{
		ID:     "FW-Propagate",
		Title:  "Query progress under stale statistics: refined-cardinality propagation (§7a)",
		Header: []string{"t", "NoPropagation", "RefinedPropagation", "true"},
		Notes: []string{
			"targeted scenario: 20x-underestimated scan → key-grouped aggregate → nested-loop",
			"pipeline whose estimated duration depends on the aggregate's cardinality; bounds",
			"off to isolate propagation from the Appendix A clamps",
		},
	}
	var errB, errP float64
	for _, snap := range tr.Snapshots {
		truth := float64(snap.At-tr.StartedAt) / float64(tr.EndedAt-tr.StartedAt)
		errB += mathAbs(eB.Estimate(snap).Query - truth)
		errP += mathAbs(eP.Estimate(snap).Query - truth)
	}
	for _, i := range sampleIndices(len(tr.Snapshots), 14) {
		snap := tr.Snapshots[i]
		truth := float64(snap.At-tr.StartedAt) / float64(tr.EndedAt-tr.StartedAt)
		res.Rows = append(res.Rows, []string{
			snap.At.String(), f3(eB.Estimate(snap).Query), f3(eP.Estimate(snap).Query), f3(truth),
		})
	}
	n := float64(len(tr.Snapshots))
	res.Notes = append(res.Notes, fmt.Sprintf("Errortime: %.3f without propagation vs %.3f with", errB/n, errP/n))
	return res
}

// row2 resolves a single-table column reference (local helper mirroring the
// workload package's rowOf for one table).
func row2(b *plan.Builder, table, column string) *expr.Col {
	return expr.C(b.Cat.MustTable(table).MustCol(column), table+"."+column)
}

func mathAbs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func simNewClock() *sim.Clock { return sim.NewClock() }

// dmvNewPoller attaches a default-interval poller to a clock.
func dmvNewPoller(clock *sim.Clock) *dmv.Poller {
	return dmv.NewPoller(clock, metrics.DefaultInterval)
}

// FWWeights evaluates §7 future-work item (b): calibrating operator
// weights from a prior execution of the workload.
func (s *Suite) FWWeights() *Result {
	res := &Result{
		ID:     "FW-Weights",
		Title:  "Errortime: cost-model weights vs weights calibrated from a prior run (§7b)",
		Header: []string{"workload", "CostModelWeights", "CalibratedWeights", "queries"},
		Notes: []string{
			"pass 1 runs the workload and records observed per-row operator costs;",
			"pass 2 re-estimates the same traces with the calibrated weights.",
			"filtered leaf scans keep cost-model weights (their per-output cost is",
			"per-query selectivity, not an operator-class property)",
		},
	}
	for _, name := range ablationWorkloads {
		w := s.Workload(name)
		// Pass 1: trace everything once, collecting traces + feedback.
		fb := progress.NewFeedback()
		type rec struct {
			p  *plan.Plan
			tr *dmv.Trace
		}
		var recs []rec
		s.runner(name).ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			fb.Observe(p, tr)
			recs = append(recs, rec{p, tr})
		})
		// Pass 2: evaluate both weight sources over the recorded traces.
		base := progress.LQSOptions()
		cal := progress.LQSOptions()
		cal.WeightFeedback = fb
		var sb, sc float64
		n := 0
		for _, r := range recs {
			a, ok1 := metrics.ErrorTime(r.p, r.tr, w, base)
			b, ok2 := metrics.ErrorTime(r.p, r.tr, w, cal)
			if ok1 && ok2 {
				sb += a
				sc += b
				n++
			}
		}
		if n == 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{name, f3(sb / float64(n)), f3(sc / float64(n)), fmt.Sprint(n)})
	}
	return res
}
