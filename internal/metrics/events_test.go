package metrics

import (
	"strings"
	"testing"

	"lqs/internal/trace"
	"lqs/internal/workload"
)

// chromeDigest traces every selected query with event recording on and
// concatenates each query's Chrome trace-event JSON. Byte-equal digests
// mean the emitted trace files are byte-identical.
func chromeDigest(t testing.TB, w *workload.Workload, r Runner) string {
	t.Helper()
	r.EventCap = -1
	var sb strings.Builder
	pid := 0
	r.ForEachArtifacts(w, func(a TraceArtifacts) {
		if a.Events == nil {
			t.Fatalf("%s: EventCap set but no recorder returned", a.Query.Name)
		}
		data, err := trace.Chrome(a.Events, a.Query.Name, pid)
		if err != nil {
			t.Fatalf("%s: chrome export: %v", a.Query.Name, err)
		}
		if err := trace.ValidateChrome(data); err != nil {
			t.Fatalf("%s: invalid chrome trace: %v", a.Query.Name, err)
		}
		pid++
		sb.Write(data)
		sb.WriteByte('\n')
	})
	return sb.String()
}

// TestEventTraceDeterminism is the observability determinism guarantee:
// two serial runs and a 4-worker parallel run over the same workload emit
// byte-identical trace-event JSON for every query. Event timestamps are
// virtual and every trace starts from a cold pool on a fresh clock, so
// scheduling noise cannot leak into the artifacts.
func TestEventTraceDeterminism(t *testing.T) {
	w := parallelTestWorkload(t)
	r := Runner{Limit: 8}

	serial1 := chromeDigest(t, w, Runner{Parallel: 1, Limit: r.Limit})
	if len(serial1) == 0 || !strings.Contains(serial1, "traceEvents") {
		t.Fatalf("serial digest implausible (%d bytes)", len(serial1))
	}
	serial2 := chromeDigest(t, w, Runner{Parallel: 1, Limit: r.Limit})
	if serial2 != serial1 {
		t.Fatal("two serial runs emitted different trace JSON")
	}
	par := chromeDigest(t, w, Runner{Parallel: 4, Limit: r.Limit})
	if par != serial1 {
		t.Fatal("Parallel=4 run emitted different trace JSON than serial")
	}
}

// TestEventTraceDeterminismDOP covers the per-thread track layer: a DOP-4
// run's Chrome export validates, shows worker tracks, and is byte-identical
// across repeated runs — worker trace recorders merge deterministically.
func TestEventTraceDeterminismDOP(t *testing.T) {
	w := parallelTestWorkload(t)
	r1 := chromeDigest(t, w, Runner{Parallel: 1, Limit: 6, DOP: 4})
	r2 := chromeDigest(t, w, Runner{Parallel: 1, Limit: 6, DOP: 4})
	if r1 != r2 {
		t.Fatal("two DOP-4 runs emitted different trace JSON")
	}
	if !strings.Contains(r1, "(worker ") {
		t.Fatal("DOP-4 export has no worker tracks")
	}
	serial := chromeDigest(t, w, Runner{Parallel: 1, Limit: 6})
	if serial == r1 {
		t.Fatal("DOP-4 export identical to serial — parallel zones not traced")
	}
}

// TestTraceQueryEventsCapSemantics pins the EventCap contract: 0 disables
// recording, negative selects the default capacity, and a small positive
// cap bounds the ring while counting what it dropped.
func TestTraceQueryEventsCapSemantics(t *testing.T) {
	w := parallelTestWorkload(t)
	q := w.Queries[0]

	if _, _, rec := TraceQueryEvents(w, q, DefaultInterval, 0); rec != nil {
		t.Fatal("EventCap=0 attached a recorder")
	}
	_, _, rec := TraceQueryEvents(w, q, DefaultInterval, -1)
	if rec == nil || rec.Len() == 0 {
		t.Fatal("default-capacity run recorded no events")
	}
	full := rec.Len()
	_, _, small := TraceQueryEvents(w, q, DefaultInterval, 8)
	if small.Len() != 8 {
		t.Fatalf("cap-8 ring holds %d events", small.Len())
	}
	if small.Dropped() == 0 {
		t.Fatalf("cap-8 ring dropped nothing for a %d-event query", full)
	}
	// ForEach (no EventCap) keeps event tracing off.
	done := false
	Runner{Parallel: 1, Limit: 1}.ForEachArtifacts(w, func(a TraceArtifacts) {
		if a.Events != nil {
			t.Fatal("zero-value Runner attached a recorder")
		}
		done = true
	})
	if !done {
		t.Fatal("runner traced no queries")
	}
}
