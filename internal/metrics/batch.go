package metrics

import (
	"runtime"
	"time"

	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// BatchSpeedup compares one query's real (wall-clock) execution time in row
// mode and in vectorized batch mode. Unlike DOPSpeedup — where the
// simulated elapsed time is the quantity of interest — batch execution
// changes no simulated time at DOP 1 and charges identical counters; what
// vectorization buys is host CPU, so the measurement here is wall-clock.
type BatchSpeedup struct {
	Query string `json:"query"`
	// RowNS / BatchNS are real execution times in nanoseconds, best of
	// three runs each (wall-clock is noisy; the minimum is the stable
	// estimator of the work actually required).
	RowNS   int64 `json:"row_ns"`
	BatchNS int64 `json:"batch_ns"`
	// Speedup is RowNS/BatchNS; > 1 means batch mode is faster.
	Speedup float64 `json:"speedup"`
}

// measureWall executes one query once at the given batch size (0 = row
// mode) and returns the real time spent executing — plan build, cost
// estimation, and pool cold-start excluded.
func measureWall(w *workload.Workload, q workload.Query, batch int) time.Duration {
	p := plan.Finalize(q.Build(w.Builder()))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	w.DB.ColdStart()
	// Clear sweep debt left by the previous measurement so neither mode
	// pays for the other's garbage.
	runtime.GC()
	start := time.Now()
	exec.NewQueryBatch(p, w.DB, opt.DefaultCostModel(), sim.NewClock(), 1, batch).Run()
	return time.Since(start)
}

// MeasureBatchSpeedups executes each workload query in row mode and at the
// given batch size and reports the wall-clock speedups (best of three runs
// per mode). limit caps the number of queries (0 = all).
func MeasureBatchSpeedups(w *workload.Workload, batch, limit int) []BatchSpeedup {
	var out []BatchSpeedup
	for i, q := range w.Queries {
		if limit > 0 && i >= limit {
			break
		}
		// Interleave the trials (row, batch, row, batch, ...) so heap
		// growth and GC pacing drift penalize both modes equally rather
		// than whichever mode is measured last.
		var row, vec time.Duration
		for trial := 0; trial < 3; trial++ {
			if d := measureWall(w, q, 0); trial == 0 || d < row {
				row = d
			}
			if d := measureWall(w, q, batch); trial == 0 || d < vec {
				vec = d
			}
		}
		sp := 0.0
		if vec > 0 {
			sp = float64(row) / float64(vec)
		}
		out = append(out, BatchSpeedup{Query: q.Name, RowNS: int64(row), BatchNS: int64(vec), Speedup: sp})
	}
	return out
}
