package metrics

import (
	"fmt"
	"strings"
	"testing"

	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/workload"
)

// parallelTestWorkload is small enough to trace quickly but large enough
// that a 4-worker pool genuinely interleaves completions out of order.
func parallelTestWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	return workload.Synth(workload.SynthConfig{
		Name: "par-test", Seed: 7,
		NumTables: 6, MinRows: 200, MaxRows: 1500,
		NumQueries: 24, MinJoins: 2, MaxJoins: 4,
		GroupByFrac: 0.5,
	})
}

// collectDigest runs the runner and renders everything an experiment could
// aggregate — per-query error metrics at full float precision, snapshot
// counts, trace timestamps, and the per-operator accumulators — into one
// string. Byte-equal digests mean byte-equal experiment output.
func collectDigest(t testing.TB, w *workload.Workload, r Runner) string {
	t.Helper()
	var sb strings.Builder
	accCount := OpErrors{}
	accTime := OpErrors{}
	r.ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
		ec, ok1 := ErrorCount(p, tr, w, progress.LQSOptions())
		et, ok2 := ErrorTime(p, tr, w, progress.TGNOptions())
		fmt.Fprintf(&sb, "%s nodes=%d snaps=%d t=[%d,%d] ec=%.17g/%v et=%.17g/%v\n",
			q.Name, len(p.Nodes), len(tr.Snapshots), tr.StartedAt, tr.EndedAt, ec, ok1, et, ok2)
		AccumOpErrorCount(p, tr, w, progress.LQSOptions(), accCount)
		AccumOpErrorTime(p, tr, w, progress.LQSOptions(), accTime)
	})
	for op := plan.PhysicalOp(0); op < 64; op++ {
		if a, ok := accCount[op]; ok {
			fmt.Fprintf(&sb, "opcount %v sum=%.17g n=%d\n", op, a.Sum, a.N)
		}
		if a, ok := accTime[op]; ok {
			fmt.Fprintf(&sb, "optime %v sum=%.17g n=%d\n", op, a.Sum, a.N)
		}
	}
	return sb.String()
}

// TestParallelMatchesSerial is the tentpole guarantee: any worker count
// yields byte-identical aggregates to the serial run.
func TestParallelMatchesSerial(t *testing.T) {
	w := parallelTestWorkload(t)
	serial := collectDigest(t, w, Runner{Parallel: 1})
	if !strings.Contains(serial, "par-test-Q000") {
		t.Fatalf("serial digest implausible:\n%s", serial)
	}
	for _, workers := range []int{2, 4, 7} {
		if got := collectDigest(t, w, Runner{Parallel: workers}); got != serial {
			t.Fatalf("Parallel=%d digest diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, got)
		}
	}
	// Parallel=0 (GOMAXPROCS default) must also match.
	if got := collectDigest(t, w, Runner{}); got != serial {
		t.Fatalf("Parallel=0 digest diverged from serial")
	}
}

// Limit and Stride must compose with Parallel exactly as they do serially:
// Limit counts usable traces in query order, Stride picks the same subset.
func TestParallelRespectsLimitAndStride(t *testing.T) {
	w := parallelTestWorkload(t)
	for _, r := range []Runner{
		{Limit: 5},
		{Stride: 3},
		{Limit: 4, Stride: 2},
	} {
		serialR, parR := r, r
		serialR.Parallel = 1
		parR.Parallel = 4
		serial := collectDigest(t, w, serialR)
		if got := collectDigest(t, w, parR); got != serial {
			t.Fatalf("%+v: parallel digest diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				r, serial, got)
		}
	}
}

// A workload with no Gen hook cannot be sharded; the runner must fall back
// to the serial path rather than share the single database across workers.
func TestParallelFallsBackWithoutGen(t *testing.T) {
	w := parallelTestWorkload(t)
	serial := collectDigest(t, w, Runner{Parallel: 1, Limit: 3})
	w.Gen = nil
	if got := collectDigest(t, w, Runner{Parallel: 4, Limit: 3}); got != serial {
		t.Fatalf("Gen-less fallback diverged from serial")
	}
}

// Workers regenerate the workload from its seed; the copies must be
// independent objects with identical content.
func TestWorkloadGenRegeneratesIdentically(t *testing.T) {
	for _, w := range []*workload.Workload{
		workload.TPCH(3, workload.TPCHRowstore),
		workload.TPCDS(3),
		parallelTestWorkload(t),
	} {
		if w.Gen == nil {
			t.Fatalf("%s: missing Gen hook", w.Name)
		}
		c := w.Gen()
		if c == w || c.DB == w.DB {
			t.Fatalf("%s: Gen returned a shared object", w.Name)
		}
		if c.Name != w.Name || len(c.Queries) != len(w.Queries) {
			t.Fatalf("%s: copy shape mismatch", w.Name)
		}
		// The first query's trace — plan, snapshots, true cardinalities —
		// must be byte-identical across copies.
		p1, tr1 := TraceQuery(w, w.Queries[0], DefaultInterval)
		p2, tr2 := TraceQuery(c, c.Queries[0], DefaultInterval)
		if p1.String() != p2.String() {
			t.Fatalf("%s: copy built a different plan", w.Name)
		}
		if len(tr1.Snapshots) != len(tr2.Snapshots) ||
			tr1.StartedAt != tr2.StartedAt || tr1.EndedAt != tr2.EndedAt {
			t.Fatalf("%s: copy traced differently (%d/%d snapshots)",
				w.Name, len(tr1.Snapshots), len(tr2.Snapshots))
		}
		for id, n := range tr1.TrueRows {
			if tr2.TrueRows[id] != n {
				t.Fatalf("%s: node %d true rows %d vs %d", w.Name, id, n, tr2.TrueRows[id])
			}
		}
	}
}

func TestTracedQueriesCounter(t *testing.T) {
	w := parallelTestWorkload(t)
	ResetTracedQueries()
	Runner{Parallel: 1, Limit: 3}.ForEach(w, func(workload.Query, *plan.Plan, *dmv.Trace) {})
	if n := TracedQueries(); n < 3 {
		t.Fatalf("counter %d after tracing at least 3 queries", n)
	}
	ResetTracedQueries()
	if n := TracedQueries(); n != 0 {
		t.Fatalf("counter %d after reset", n)
	}
}
