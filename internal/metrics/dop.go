package metrics

import "lqs/internal/workload"

// DOPSpeedup compares one query's simulated elapsed time serially and at a
// higher degree of parallelism. Because results and final aggregated
// counters are identical at any DOP, the elapsed-time ratio isolates the
// scheduling effect of parallel zones — the quantity lqsbench reports.
type DOPSpeedup struct {
	Query string `json:"query"`
	// SerialNS / ParallelNS are virtual elapsed times in nanoseconds.
	SerialNS   int64 `json:"serial_ns"`
	ParallelNS int64 `json:"parallel_ns"`
	// Speedup is SerialNS/ParallelNS; 1.0 means the plan had no parallel
	// zone (or none that mattered).
	Speedup float64 `json:"speedup"`
}

// MeasureDOPSpeedups executes each workload query twice — serial and at
// dop — and reports the virtual-time speedups. limit caps the number of
// queries (0 = all). Runs are sequential and each cold-starts the pool, so
// the measurements are deterministic.
func MeasureDOPSpeedups(w *workload.Workload, dop, limit int) []DOPSpeedup {
	var out []DOPSpeedup
	for i, q := range w.Queries {
		if limit > 0 && i >= limit {
			break
		}
		_, trS, _ := TraceQueryEventsDOP(w, q, DefaultInterval, 0, 1)
		_, trP, _ := TraceQueryEventsDOP(w, q, DefaultInterval, 0, dop)
		s := int64(trS.EndedAt - trS.StartedAt)
		p := int64(trP.EndedAt - trP.StartedAt)
		sp := 0.0
		if p > 0 {
			sp = float64(s) / float64(p)
		}
		out = append(out, DOPSpeedup{Query: q.Name, SerialNS: s, ParallelNS: p, Speedup: sp})
	}
	return out
}
