// Package metrics implements the paper's Section 5 evaluation machinery:
// traced query execution (run once, evaluate many estimator configurations
// over the recorded DMV snapshots) and the two error measures —
//
//	Errorcount: mean |Prog(Q,t) − Σk_i(t)/ΣN_i^true| over observations,
//	            the accuracy of the N_i estimates themselves;
//	Errortime:  mean |Prog(Q,t) − elapsed-time fraction|, how well the
//	            estimate correlates with wall-clock (virtual) time.
//
// Per-operator variants restrict either measure to the operators of one
// physical type, as Figures 15, 17, and 20 do.
package metrics

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
	"lqs/internal/trace"
	"lqs/internal/workload"
)

// DefaultInterval is the virtual-time sampling interval used by the
// experiment harness. The paper samples every second of a multi-minute
// query; scaled to the simulator's millisecond-scale queries this yields a
// comparable number of observations per query.
const DefaultInterval = 100 * sim.Duration(1000) // 100µs

// MinSnapshots is the minimum number of observations for a query to count
// toward an average (ultra-short queries carry no progress signal).
const MinSnapshots = 3

// tracedQueries counts TraceQuery calls process-wide, for the benchmark
// harness's throughput reporting.
var tracedQueries atomic.Int64

// TracedQueries returns the number of queries traced since the last reset.
func TracedQueries() int64 { return tracedQueries.Load() }

// ResetTracedQueries zeroes the traced-query counter.
func ResetTracedQueries() { tracedQueries.Store(0) }

// TraceQuery executes one workload query under the DMV poller and returns
// its finalized plan and trace.
func TraceQuery(w *workload.Workload, q workload.Query, interval sim.Duration) (*plan.Plan, *dmv.Trace) {
	p, tr, _ := TraceQueryEvents(w, q, interval, 0)
	return p, tr
}

// TraceQueryEvents is TraceQuery with the operator event recorder attached:
// eventCap bounds the per-query event ring (trace.DefaultCapacity when
// negative; 0 disables event tracing entirely and returns a nil recorder).
// Each call cold-starts the pool and runs on a fresh virtual clock, so for
// a given workload the returned events are a pure function of the query —
// the parallel harness's byte-identical-trace guarantee extends to them.
func TraceQueryEvents(w *workload.Workload, q workload.Query, interval sim.Duration, eventCap int) (*plan.Plan, *dmv.Trace, *trace.Recorder) {
	return TraceQueryEventsDOP(w, q, interval, eventCap, 1)
}

// TraceQueryEventsDOP is TraceQueryEvents at an explicit degree of
// parallelism: the plan is rewritten with plan.Parallelize before
// finalization and executed with dop workers per gather. Result rows and
// final aggregated counters are byte-identical to the serial run; only the
// simulated elapsed time (and the per-thread DMV rows) differ.
func TraceQueryEventsDOP(w *workload.Workload, q workload.Query, interval sim.Duration, eventCap, dop int) (*plan.Plan, *dmv.Trace, *trace.Recorder) {
	return TraceQueryEventsBatch(w, q, interval, eventCap, dop, 0)
}

// TraceQueryEventsBatch is TraceQueryEventsDOP with vectorized batch
// execution: batch > 0 runs batch-native subtrees through the columnar
// executor at that batch size (0 is classic row mode). Result rows and
// final counters are byte-identical to row mode at any batch size; mid-run
// snapshots are exact at batch size 1 and boundedly skewed above it (see
// the exec batch differential battery).
func TraceQueryEventsBatch(w *workload.Workload, q workload.Query, interval sim.Duration, eventCap, dop, batch int) (*plan.Plan, *dmv.Trace, *trace.Recorder) {
	tracedQueries.Add(1)
	root := q.Build(w.Builder())
	root = plan.Parallelize(root, dop)
	p := plan.Finalize(root)
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, interval)
	w.DB.ColdStart()
	query := exec.NewQueryBatch(p, w.DB, opt.DefaultCostModel(), clock, dop, batch)
	var rec *trace.Recorder
	if eventCap != 0 {
		if eventCap < 0 {
			eventCap = trace.DefaultCapacity
		}
		rec = trace.NewRecorder(clock, eventCap)
		query.Ctx.Trace = rec
	}
	poller.Register(query)
	query.Run()
	return p, poller.Finish(query), rec
}

// Runner iterates a workload's queries, tracing each once.
type Runner struct {
	// Interval is the poll interval (DefaultInterval when zero).
	Interval sim.Duration
	// Limit caps the number of queries traced (0 = all); the first Limit
	// queries are used, keeping runs deterministic.
	Limit int
	// Stride samples every Stride-th query (0/1 = every query), for quick
	// passes over the large REAL workloads.
	Stride int
	// Parallel is the number of tracing workers: 1 runs strictly serial,
	// 0 defaults to GOMAXPROCS. Any value produces output byte-identical
	// to the serial run — each worker traces against its own regenerated
	// Workload (never the shared one), and fn is invoked serially in
	// query order. Workloads without a Gen hook fall back to serial.
	Parallel int
	// EventCap enables operator event tracing on every query: the ring
	// capacity passed to TraceQueryEvents (negative for the default;
	// 0 leaves event tracing off).
	EventCap int
	// DOP is each traced query's degree of parallelism (0/1 = serial):
	// plans are rewritten with plan.Parallelize and executed with DOP
	// workers per gather. Orthogonal to Parallel, which fans queries out
	// across harness workers.
	DOP int
}

// TraceArtifacts bundles everything one traced query produced: the query,
// its finalized plan, the DMV snapshot trace, and — when Runner.EventCap
// is set — the operator event recorder.
type TraceArtifacts struct {
	Query  workload.Query
	Plan   *plan.Plan
	Trace  *dmv.Trace
	Events *trace.Recorder
}

// dop normalizes the Runner's DOP field (0 means serial).
func (r Runner) dop() int {
	if r.DOP < 1 {
		return 1
	}
	return r.DOP
}

// positions lists the query indices the runner will visit, in order.
func (r Runner) positions(w *workload.Workload) []int {
	stride := r.Stride
	if stride < 1 {
		stride = 1
	}
	var idx []int
	for i := 0; i < len(w.Queries); i += stride {
		idx = append(idx, i)
	}
	return idx
}

// ForEach traces queries and invokes fn on each usable trace. fn runs on
// the calling goroutine in workload order regardless of Parallel, so it
// needs no locking and aggregates it builds (error means, per-operator
// accumulators, figure tables) match the serial run exactly. Limit counts
// usable traces and is applied at consumption, also in order.
func (r Runner) ForEach(w *workload.Workload, fn func(q workload.Query, p *plan.Plan, tr *dmv.Trace)) {
	r.ForEachArtifacts(w, func(a TraceArtifacts) {
		fn(a.Query, a.Plan, a.Trace)
	})
}

// ForEachArtifacts is ForEach surfacing the full TraceArtifacts (including
// the event recorder when EventCap is set). fn runs on the calling
// goroutine in workload order, exactly as ForEach.
func (r Runner) ForEachArtifacts(w *workload.Workload, fn func(a TraceArtifacts)) {
	interval := r.Interval
	if interval == 0 {
		interval = DefaultInterval
	}
	idx := r.positions(w)
	workers := r.Parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 || w.Gen == nil {
		count := 0
		for _, i := range idx {
			if r.Limit > 0 && count >= r.Limit {
				break
			}
			q := w.Queries[i]
			p, tr, rec := TraceQueryEventsDOP(w, q, interval, r.EventCap, r.dop())
			if len(tr.Snapshots) < MinSnapshots {
				continue
			}
			count++
			fn(TraceArtifacts{Query: q, Plan: p, Trace: tr, Events: rec})
		}
		return
	}

	// Parallel path: workers trace ahead out of order; the consumer below
	// drains results strictly in position order. Each position's channel
	// is buffered, so a worker never blocks on a result the consumer has
	// abandoned after hitting Limit.
	type result struct {
		p   *plan.Plan
		tr  *dmv.Trace
		rec *trace.Recorder
	}
	results := make([]chan result, len(idx))
	for pos := range results {
		results[pos] = make(chan result, 1)
	}
	jobs := make(chan int)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Regenerate lazily: a worker that never receives a job (every
			// query consumed before it starts) skips the database build.
			var local *workload.Workload
			for pos := range jobs {
				if local == nil {
					local = w.Gen()
				}
				p, tr, rec := TraceQueryEventsDOP(local, local.Queries[idx[pos]], interval, r.EventCap, r.dop())
				results[pos] <- result{p, tr, rec}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for pos := range idx {
			select {
			case jobs <- pos:
			case <-done:
				return
			}
		}
	}()

	count := 0
	for pos := range idx {
		if r.Limit > 0 && count >= r.Limit {
			break
		}
		res := <-results[pos]
		if len(res.tr.Snapshots) < MinSnapshots {
			continue
		}
		count++
		fn(TraceArtifacts{Query: w.Queries[idx[pos]], Plan: res.p, Trace: res.tr, Events: res.rec})
	}
	close(done)
	wg.Wait()
}

// oracleProgress is the Errorcount reference: Equation 2 with unit weights
// and the exact N_i known after completion.
func oracleProgress(tr *dmv.Trace, s *dmv.Snapshot) float64 {
	var num, den float64
	for id, n := range tr.TrueRows {
		num += float64(s.Op(id).ActualRows)
		den += float64(n)
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// timeFraction is the Errortime reference.
func timeFraction(tr *dmv.Trace, s *dmv.Snapshot) float64 {
	total := tr.EndedAt - tr.StartedAt
	if total <= 0 {
		return 1
	}
	return float64(s.At-tr.StartedAt) / float64(total)
}

// ErrorCount computes a query's Errorcount for an estimator configuration.
func ErrorCount(p *plan.Plan, tr *dmv.Trace, w *workload.Workload, o progress.Options) (float64, bool) {
	return queryError(p, tr, w, o, oracleProgress)
}

// ErrorTime computes a query's Errortime for an estimator configuration.
func ErrorTime(p *plan.Plan, tr *dmv.Trace, w *workload.Workload, o progress.Options) (float64, bool) {
	return queryError(p, tr, w, o, timeFraction)
}

func queryError(p *plan.Plan, tr *dmv.Trace, w *workload.Workload, o progress.Options, ref func(*dmv.Trace, *dmv.Snapshot) float64) (float64, bool) {
	if len(tr.Snapshots) < MinSnapshots {
		return 0, false
	}
	est := progress.NewEstimator(p, w.DB.Catalog, o)
	var sum float64
	for _, s := range tr.Snapshots {
		e := est.Estimate(s)
		sum += math.Abs(e.Query - ref(tr, s))
	}
	return sum / float64(len(tr.Snapshots)), true
}

// OpAccum accumulates per-operator-type error.
type OpAccum struct {
	Sum float64
	N   int
}

// Avg returns the mean accumulated error.
func (a OpAccum) Avg() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// OpErrors is per-physical-operator error accumulation.
type OpErrors map[plan.PhysicalOp]*OpAccum

// Add merges one observation.
func (oe OpErrors) Add(op plan.PhysicalOp, err float64) {
	a := oe[op]
	if a == nil {
		a = &OpAccum{}
		oe[op] = a
	}
	a.Sum += err
	a.N++
}

// Merge folds other into oe.
func (oe OpErrors) Merge(other OpErrors) {
	for op, a := range other {
		t := oe[op]
		if t == nil {
			t = &OpAccum{}
			oe[op] = t
		}
		t.Sum += a.Sum
		t.N += a.N
	}
}

// AccumOpErrorCount accumulates per-operator Errorcount: the gap between
// estimated operator progress (k/N̂ under the configuration) and true
// operator progress (k/N_true), over observations where the operator is
// actively executing.
func AccumOpErrorCount(p *plan.Plan, tr *dmv.Trace, w *workload.Workload, o progress.Options, acc OpErrors) {
	est := progress.NewEstimator(p, w.DB.Catalog, o)
	for _, s := range tr.Snapshots {
		e := est.Estimate(s)
		for _, n := range p.Nodes {
			op := s.Op(n.ID)
			if !op.Opened || op.Closed {
				continue
			}
			trueN := float64(tr.TrueRows[n.ID])
			var truth float64
			if trueN > 0 {
				truth = math.Min(float64(op.ActualRows)/trueN, 1)
			} else {
				truth = 1
			}
			acc.Add(n.Physical, math.Abs(e.Op[n.ID]-truth))
		}
	}
}

// AccumOpErrorTime accumulates per-operator Errortime: the gap between
// estimated operator progress and the fraction of the operator's active
// window elapsed at the observation.
func AccumOpErrorTime(p *plan.Plan, tr *dmv.Trace, w *workload.Workload, o progress.Options, acc OpErrors) {
	est := progress.NewEstimator(p, w.DB.Catalog, o)
	final := tr.Final
	for _, s := range tr.Snapshots {
		e := est.Estimate(s)
		for _, n := range p.Nodes {
			op := s.Op(n.ID)
			if !op.Opened || op.Closed {
				continue
			}
			// The active window starts when the operator first performed
			// work, not when its Open recursively opened a deep subtree.
			fop := final.Op(n.ID)
			opened := fop.OpenedAt
			if fop.FirstActive && fop.FirstActiveAt > opened {
				opened = fop.FirstActiveAt
			}
			closed := fop.ClosedAt
			if closed <= opened {
				continue
			}
			if s.At < opened {
				continue
			}
			frac := float64(s.At-opened) / float64(closed-opened)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			acc.Add(n.Physical, math.Abs(e.Op[n.ID]-frac))
		}
	}
}

// OperatorFrequency counts physical operators across a workload's plans
// (the paper's Fig. 19).
func OperatorFrequency(w *workload.Workload) map[plan.PhysicalOp]int {
	counts := make(map[plan.PhysicalOp]int)
	for _, q := range w.Queries {
		p := plan.Finalize(q.Build(w.Builder()))
		p.Walk(func(n *plan.Node) { counts[n.Physical]++ })
	}
	return counts
}
