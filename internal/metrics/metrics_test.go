package metrics

import (
	"testing"

	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/workload"
)

func tpchSmall(t testing.TB) *workload.Workload {
	t.Helper()
	return workload.TPCH(3, workload.TPCHRowstore)
}

func TestTraceQueryProducesUsableTrace(t *testing.T) {
	w := tpchSmall(t)
	p, tr := TraceQuery(w, w.Queries[0], DefaultInterval)
	if len(tr.Snapshots) < MinSnapshots {
		t.Fatalf("only %d snapshots", len(tr.Snapshots))
	}
	if len(tr.TrueRows) != len(p.Nodes) {
		t.Fatal("true cardinalities incomplete")
	}
	if tr.EndedAt <= tr.StartedAt {
		t.Fatal("trace times wrong")
	}
}

func TestErrorMetricsBasicProperties(t *testing.T) {
	w := tpchSmall(t)
	p, tr := TraceQuery(w, w.Queries[0], DefaultInterval)
	for _, o := range []progress.Options{progress.TGNOptions(), progress.LQSOptions()} {
		ec, ok := ErrorCount(p, tr, w, o)
		if !ok || ec < 0 || ec > 1 {
			t.Fatalf("ErrorCount = %v ok=%v", ec, ok)
		}
		et, ok := ErrorTime(p, tr, w, o)
		if !ok || et < 0 || et > 1 {
			t.Fatalf("ErrorTime = %v ok=%v", et, ok)
		}
	}
}

func TestRunnerLimitAndStride(t *testing.T) {
	w := tpchSmall(t)
	count := 0
	Runner{Limit: 3}.ForEach(w, func(workload.Query, *plan.Plan, *dmv.Trace) { count++ })
	if count != 3 {
		t.Fatalf("Limit=3 traced %d queries", count)
	}
	count = 0
	Runner{Stride: 5}.ForEach(w, func(workload.Query, *plan.Plan, *dmv.Trace) { count++ })
	if count == 0 || count > len(w.Queries)/5+1 {
		t.Fatalf("Stride=5 traced %d queries", count)
	}
}

func TestOpErrorsAccumulation(t *testing.T) {
	w := tpchSmall(t)
	acc := OpErrors{}
	Runner{Limit: 4}.ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
		AccumOpErrorCount(p, tr, w, progress.TGNOptions(), acc)
	})
	if len(acc) == 0 {
		t.Fatal("no per-operator errors accumulated")
	}
	for op, a := range acc {
		if a.N == 0 || a.Avg() < 0 || a.Avg() > 1 {
			t.Fatalf("%v accum bad: %+v", op, a)
		}
	}
}

func TestOpErrorTimeAccumulation(t *testing.T) {
	w := tpchSmall(t)
	acc := OpErrors{}
	Runner{Limit: 4}.ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
		AccumOpErrorTime(p, tr, w, progress.LQSOptions(), acc)
	})
	if len(acc) == 0 {
		t.Fatal("no per-operator time errors accumulated")
	}
}

func TestOpErrorsMerge(t *testing.T) {
	a := OpErrors{plan.Sort: &OpAccum{Sum: 1, N: 2}}
	b := OpErrors{plan.Sort: &OpAccum{Sum: 3, N: 2}, plan.Filter: &OpAccum{Sum: 0.5, N: 1}}
	a.Merge(b)
	if a[plan.Sort].Avg() != 1 || a[plan.Filter].N != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestOperatorFrequency(t *testing.T) {
	w := tpchSmall(t)
	freq := OperatorFrequency(w)
	if freq[plan.HashJoin] == 0 || freq[plan.TableScan] == 0 {
		t.Fatalf("frequency table implausible: %v", freq)
	}
	cw := workload.TPCH(3, workload.TPCHColumnstore)
	cfreq := OperatorFrequency(cw)
	if cfreq[plan.ColumnstoreIndexScan] == 0 {
		t.Fatal("columnstore design frequency missing batch scans")
	}
	if cfreq[plan.NestedLoops] >= freq[plan.NestedLoops] {
		t.Fatal("columnstore design should have fewer nested loops (Fig. 19)")
	}
}

func TestRefinementImprovesWorkloadErrorCount(t *testing.T) {
	// The Fig. 14 direction on a slice of TPC-H: bounding+refinement must
	// beat no-refinement on average.
	w := tpchSmall(t)
	var base, full float64
	n := 0
	Runner{Limit: 8}.ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
		b, ok1 := ErrorCount(p, tr, w, progress.TGNOptions())
		f, ok2 := ErrorCount(p, tr, w, progress.Options{
			Refine: true, Bound: true, SemiBlocking: true, StoragePredIO: true, DriverNodeQuery: true,
		})
		if ok1 && ok2 {
			base += b
			full += f
			n++
		}
	})
	if n == 0 {
		t.Fatal("no queries evaluated")
	}
	if full >= base {
		t.Fatalf("refinement+bounding (%v) did not beat baseline (%v) over %d queries", full/float64(n), base/float64(n), n)
	}
}
