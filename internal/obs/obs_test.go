package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/hits")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("a/hits") != c {
		t.Fatal("Counter not idempotent per name")
	}

	g := r.Gauge("a/occupancy")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("a/err", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 2, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 3.05 {
		t.Fatalf("histogram sum = %g, want 3.05", got)
	}
}

func TestDumpSortedAndDeterministic(t *testing.T) {
	mk := func(order []string) string {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Gauge("g/x").Set(1)
		r.Histogram("h/x", []float64{1}).Observe(0.5)
		return r.Dump()
	}
	a := mk([]string{"z", "a", "m"})
	b := mk([]string{"m", "z", "a"})
	if a != b {
		t.Fatalf("dump depends on registration order:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("dump not sorted: %q > %q", lines[i-1], lines[i])
		}
	}
	if !strings.Contains(a, "h/x histogram count=1 sum=0.5 le1:1 inf:0") {
		t.Fatalf("unexpected histogram line in dump:\n%s", a)
	}
}

func TestNilRegistryAndMetricsTolerated(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	if r.Dump() != "" {
		t.Fatal("nil registry dump should be empty")
	}
	var c *Counter
	c.Inc()
	var g *Gauge
	g.Add(1)
	var h *Histogram
	h.Observe(1)
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
