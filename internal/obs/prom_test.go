package obs

import (
	"strings"
	"testing"
)

func TestLabeledDeterministic(t *testing.T) {
	a := Labeled("lqs/progress", "query", "Q1", "qid", "3")
	b := Labeled("lqs/progress", "qid", "3", "query", "Q1")
	if a != b {
		t.Fatalf("label order leaked into key: %q vs %q", a, b)
	}
	want := `lqs/progress{qid="3",query="Q1"}`
	if a != want {
		t.Fatalf("Labeled = %q, want %q", a, want)
	}
	if got := Labeled("plain"); got != "plain" {
		t.Fatalf("no-pair Labeled = %q", got)
	}
	esc := Labeled("m", "k", "a\"b\\c\nd")
	if esc != `m{k="a\"b\\c\nd"}` {
		t.Fatalf("escaping wrong: %q", esc)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"dmv/poll_ticks":       "dmv_poll_ticks",
		"lqs/registry_active":  "lqs_registry_active",
		"9lives":               "_9lives",
		"a.b-c":                "a_b_c",
		"already_legal:metric": "already_legal:metric",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromTextFamiliesAndSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("srv/rows_total", "qid", "2")).Add(7)
	r.Counter(Labeled("srv/rows_total", "qid", "1")).Add(5)
	r.Gauge("srv/active").Set(3)
	r.Histogram("srv/err", []float64{0.1, 1}).Observe(0.05)
	r.Histogram("srv/err", []float64{0.1, 1}).Observe(0.5)
	r.Histogram("srv/err", []float64{0.1, 1}).Observe(5)

	text := r.PromText()
	want := strings.Join([]string{
		"# TYPE srv_active gauge",
		"srv_active 3",
		"# TYPE srv_err histogram",
		`srv_err_bucket{le="0.1"} 1`,
		`srv_err_bucket{le="1"} 2`,
		`srv_err_bucket{le="+Inf"} 3`,
		"srv_err_sum 5.55",
		"srv_err_count 3",
		"# TYPE srv_rows_total counter",
		`srv_rows_total{qid="1"} 5`,
		`srv_rows_total{qid="2"} 7`,
		"",
	}, "\n")
	if text != want {
		t.Fatalf("PromText mismatch:\n--- got\n%s--- want\n%s", text, want)
	}
	// Rendering twice is byte-identical (map iteration never leaks through).
	if again := r.PromText(); again != text {
		t.Fatalf("second render differs:\n%s\nvs\n%s", again, text)
	}
}

func TestWritePromMergesHandBuiltPoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("a/z").Inc()
	pts := append(r.Points(), Point{
		Name: "a/b", Labels: Labeled("", "q", "Q6"), Kind: KindGauge, Value: 0.5,
		Help: "hand built",
	})
	SortPoints(pts)
	var sb strings.Builder
	if err := WriteProm(&sb, pts); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP a_b hand built",
		"# TYPE a_b gauge",
		`a_b{q="Q6"} 0.5`,
		"# TYPE a_z counter",
		"a_z 1",
		"",
	}, "\n")
	if sb.String() != want {
		t.Fatalf("merged render mismatch:\n--- got\n%s--- want\n%s", sb.String(), want)
	}
}
