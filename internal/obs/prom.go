package obs

// Prometheus text-format exposition for the registry, plus label support.
//
// The registry itself stays a flat string-keyed map: a labeled series is
// just a metric whose name carries a deterministic `{k="v",...}` suffix
// built by Labeled. Points() splits the suffix back out, so the exposition
// layer can group series into metric families exactly as the Prometheus
// text format requires (one # TYPE header, then every series of the
// family). This mirrors how wmi_exporter's mssql collector turns each
// performance-counter class into one family with per-instance labels.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies a metric point for exposition.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Point is one exported series: a family name, an optional label block
// (the `{k="v",...}` form Labeled builds), and the value. Histograms carry
// their bucket bounds and cumulative state instead of Value.
type Point struct {
	Name   string // family name, no label block
	Labels string // "" or `{k="v",...}`
	Kind   Kind
	Help   string // optional; first non-empty Help in a family wins

	Value float64 // counter / gauge

	Bounds []float64 // histogram bucket upper bounds
	Counts []int64   // per-bucket (non-cumulative) counts; len(Bounds)+1
	Sum    float64
	Count  int64
}

// Labeled appends a deterministic label block to a metric name:
// Labeled("lqs/query_progress", "qid", "3", "query", "Q1") →
// `lqs/query_progress{qid="3",query="Q1"}`. Keys are sorted so the same
// label set always produces the same registry key; values are escaped per
// the Prometheus text format. It panics on an odd pair count — a
// programming error, not data.
func Labeled(name string, pairs ...string) string {
	if len(pairs) == 0 {
		return name
	}
	if len(pairs)%2 != 0 {
		panic("obs: Labeled requires key/value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// splitLabels splits a registry key into family name and label block.
func splitLabels(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i:]
	}
	return key, ""
}

// PromName sanitizes a registry name into a legal Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_' (so "dmv/poll_ticks" →
// "dmv_poll_ticks"), and a leading digit gains a '_' prefix. Names already
// legal (the common case: per-query families are emitted pre-sanitized)
// return unchanged without allocating.
func PromName(name string) string {
	clean := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0) {
			continue
		}
		clean = false
		break
	}
	if clean {
		return name
	}
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			sb.WriteByte('_')
			sb.WriteRune(r)
			continue
		}
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// snapshot returns a copy of the histogram's state.
func (h *Histogram) snapshot() (bounds []float64, counts []int64, sum float64, n int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...), h.sum, h.n
}

// Points snapshots every metric in the registry as exposition points,
// sorted by (family, labels) — the deterministic order WriteProm needs.
// Registry keys built with Labeled come back with Name and Labels split.
func (r *Registry) Points() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	pts := make([]Point, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for key, c := range r.counters {
		name, labels := splitLabels(key)
		pts = append(pts, Point{Name: name, Labels: labels, Kind: KindCounter, Value: float64(c.Value())})
	}
	for key, g := range r.gauges {
		name, labels := splitLabels(key)
		pts = append(pts, Point{Name: name, Labels: labels, Kind: KindGauge, Value: float64(g.Value())})
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for key, h := range r.histograms {
		hists[key] = h
	}
	r.mu.Unlock()
	for key, h := range hists {
		name, labels := splitLabels(key)
		bounds, counts, sum, n := h.snapshot()
		pts = append(pts, Point{
			Name: name, Labels: labels, Kind: KindHistogram,
			Bounds: bounds, Counts: counts, Sum: sum, Count: n,
		})
	}
	SortPoints(pts)
	return pts
}

// SortPoints orders points by (sanitized family name, label block) — the
// grouping WriteProm renders. Callers merging registry points with
// hand-built ones sort the combined slice once before writing.
func SortPoints(pts []Point) {
	// Sanitized names are precomputed once per point: PromName in the
	// comparator would run (and, for unsanitized names, allocate) on every
	// one of the O(n log n) comparisons, which dominated scrape cost on
	// servers hosting many queries.
	keys := make([]string, len(pts))
	for i := range pts {
		keys[i] = PromName(pts[i].Name)
	}
	sort.Sort(&pointSorter{pts: pts, keys: keys})
}

// pointSorter orders points by sanitized family name, then label block.
type pointSorter struct {
	pts  []Point
	keys []string
}

func (s *pointSorter) Len() int { return len(s.pts) }
func (s *pointSorter) Less(i, j int) bool {
	if s.keys[i] != s.keys[j] {
		return s.keys[i] < s.keys[j]
	}
	return s.pts[i].Labels < s.pts[j].Labels
}
func (s *pointSorter) Swap(i, j int) {
	s.pts[i], s.pts[j] = s.pts[j], s.pts[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trippable decimal.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel merges one more label into an existing label block (used to
// splice le="..." into histogram bucket series).
func withLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// WriteProm renders points in the Prometheus text exposition format:
// families sorted by name, one optional # HELP and one # TYPE header per
// family, then every series. Points must be sorted (SortPoints); Points()
// already is. Identical point sets always render byte-identically.
func WriteProm(w io.Writer, pts []Point) error {
	var lastFamily string
	for i := range pts {
		p := &pts[i]
		fam := PromName(p.Name)
		if fam != lastFamily {
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, p.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, p.Kind); err != nil {
				return err
			}
			lastFamily = fam
		}
		switch p.Kind {
		case KindHistogram:
			if err := writeHistogram(w, fam, p); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam, p.Labels, formatValue(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram expands one histogram point into cumulative _bucket
// series plus _sum and _count.
func writeHistogram(w io.Writer, fam string, p *Point) error {
	var cum int64
	for i, b := range p.Bounds {
		if i < len(p.Counts) {
			cum += p.Counts[i]
		}
		le := strconv.FormatFloat(b, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, withLabel(p.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, withLabel(p.Labels, "le", "+Inf"), p.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, p.Labels, formatValue(p.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, p.Labels, p.Count)
	return err
}

// PromText renders the whole registry in the Prometheus text format.
func (r *Registry) PromText() string {
	var sb strings.Builder
	_ = WriteProm(&sb, r.Points())
	return sb.String()
}
