// Package obs is a small counter/gauge/histogram registry — the engine's
// metrics surface, the analog of SQL Server's performance counters sitting
// next to the DMV views. Components feed it live (buffer-pool traffic,
// poller sampling, registry occupancy, estimator-error distributions) and
// tools dump it as sorted expvar-style text.
//
// Counters and gauges are lock-free atomics so hot paths pay one atomic
// add; the registry lock is taken only on metric creation and dump. The
// text dump is sorted by name, so identical metric values always render
// byte-identically regardless of registration order.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value (occupancy, resident pages).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (positive or negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default histogram bucket upper bounds: a decade-spread
// ladder that covers both estimator errors (fractions in [0,1]) and
// nanosecond latencies once scaled.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram accumulates observations into fixed buckets. Observe is
// mutex-guarded — histograms sit off the hot path (per poll / per query,
// never per row).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf overflow
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

func (h *Histogram) dump(sb *strings.Builder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(sb, "count=%d sum=%g", h.n, h.sum)
	for i, b := range h.bounds {
		fmt.Fprintf(sb, " le%g:%d", b, h.counts[i])
	}
	fmt.Fprintf(sb, " inf:%d", h.counts[len(h.bounds)])
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry, analogous to expvar's.
var defaultRegistry = NewRegistry()

// Default returns the process-wide default registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Safe to call
// on a nil registry (returns nil; all Counter methods tolerate nil), so
// components can hold an optional registry without branching.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-registry
// tolerant, like Counter.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (DefBuckets when nil) on first use. Nil-registry tolerant.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Dump renders every metric as one line of expvar-style text, sorted by
// name: identical metric values produce byte-identical dumps.
func (r *Registry) Dump() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s counter %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s gauge %d", name, g.Value()))
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, h := range hists {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s histogram ", name)
		h.dump(&sb)
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// Reset drops every metric — tests and benchmark harnesses use it to start
// each pass from a clean registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}
