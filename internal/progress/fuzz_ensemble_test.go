package progress

// Native fuzz target for the §4j ensemble selector: arbitrary byte streams
// decode into DMV poll sequences — including stale timestamps, duplicated
// and out-of-range thread rows, and degraded-flagged snapshots — and feed
// an ensemble-mode estimator. Whatever the trajectory, the selector must
// neither panic nor break its published contract: weights normalized, the
// raw blend inside the candidates' min/max envelope, bounds non-crossing
// with the blended N̂ inside them, and a valid selection index. The seed
// corpus includes real captures (healthy and chaos-degraded shapes) so
// mutation starts from realistic poll streams.

import (
	"math"
	"testing"
	"time"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

func FuzzEnsembleSelect(f *testing.F) {
	cfg := workload.SynthConfig{
		Name: "ENSCORP", Seed: 77, NumTables: 5, MinRows: 200, MaxRows: 1500,
		NumQueries: 2, MinJoins: 2, MaxJoins: 3, GroupByFrac: 1,
	}
	w := workload.Synth(cfg)
	root := plan.Parallelize(w.Queries[0].Build(w.Builder()), 4)
	p := plan.Finalize(root)
	opt.NewEstimator(w.DB.Catalog).Estimate(p)

	// Corpus: real per-thread captures from running the plan, sampled to
	// stay mutation-friendly, plus a degraded-marked replay of the same
	// stream and adversarial hand-built shapes.
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 150*time.Microsecond)
	w.DB.ColdStart()
	query := exec.NewQueryDOP(p, w.DB, opt.DefaultCostModel(), clock, 4)
	poller.Register(query)
	if _, err := query.Run(); err != nil {
		f.Fatalf("corpus query failed: %v", err)
	}
	tr := poller.Finish(query)
	corpus := tr.Snapshots
	if len(corpus) > 12 {
		stride := len(corpus) / 12
		var sampled []*dmv.Snapshot
		for i := 0; i < len(corpus); i += stride {
			sampled = append(sampled, corpus[i])
		}
		corpus = sampled
	}
	f.Add(encodeSnapshots(corpus))
	// A degraded burst mid-stream: healthy ramp, then the same counters
	// re-delivered behind an open breaker.
	if len(corpus) >= 4 {
		burst := append([]*dmv.Snapshot(nil), corpus[:len(corpus)/2]...)
		for _, s := range corpus[len(corpus)/2:] {
			d := s.Clone()
			d.Degraded = true
			burst = append(burst, d)
		}
		f.Add(encodeSnapshots(burst))
	}
	// Out-of-order replay: terminal state first, then a stale early poll.
	f.Add(encodeSnapshots([]*dmv.Snapshot{tr.Final, tr.Snapshots[0]}))
	f.Add([]byte{})
	f.Add(make([]byte, 4*fuzzRecordLen))
	// A duplicated thread row with k far beyond any estimate, then a
	// degraded row for the same key.
	f.Add([]byte{
		1, 3, fuzzFlagOpened | fuzzFlagFirstActive, 200,
		0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 1, 0, 0, 0,
		1, 3, fuzzFlagOpened | fuzzFlagDegraded | fuzzFlagFlush, 210,
		0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 1, 0, 0, 0,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		snaps := decodeSnapshots(data, len(p.Nodes))
		if len(snaps) > 16 {
			snaps = snaps[:16] // bound per-input work, not coverage
		}
		est := NewEstimator(p, w.DB.Catalog, EnsembleOptions())
		for si, s := range snaps {
			e := est.Estimate(s)
			if math.IsNaN(e.Query) || e.Query < 0 || e.Query > 1 {
				t.Fatalf("snap %d: query progress %v", si, e.Query)
			}
			info := e.Ensemble
			if info == nil {
				t.Fatalf("snap %d: ensemble info missing", si)
			}
			var wsum float64
			lo, hi := math.Inf(1), math.Inf(-1)
			for i, wt := range info.Weights {
				if math.IsNaN(wt) || wt < -1e-12 || wt > 1+1e-12 {
					t.Fatalf("snap %d: candidate %d weight %v", si, i, wt)
				}
				wsum += wt
				if info.Query[i] < lo {
					lo = info.Query[i]
				}
				if info.Query[i] > hi {
					hi = info.Query[i]
				}
			}
			if math.Abs(wsum-1) > 1e-9 {
				t.Fatalf("snap %d: weights sum %v", si, wsum)
			}
			if info.Blend < lo-1e-9 || info.Blend > hi+1e-9 {
				t.Fatalf("snap %d: blend %v outside envelope [%v, %v]", si, info.Blend, lo, hi)
			}
			if info.Selected < 0 || info.Selected >= len(info.Names) {
				t.Fatalf("snap %d: selected %d out of range", si, info.Selected)
			}
			for id, b := range e.Bounds {
				if math.IsNaN(b.LB) || b.LB > b.UB {
					t.Fatalf("snap %d node %d: crossing bounds [%v, %v]", si, id, b.LB, b.UB)
				}
				if n := e.N[id]; math.IsNaN(n) || n < b.LB-1e-6 || n > b.UB+1e-6 {
					t.Fatalf("snap %d node %d: blended N %v outside bounds [%v, %v]", si, id, n, b.LB, b.UB)
				}
			}
			for id, opProg := range e.Op {
				if math.IsNaN(opProg) || opProg < 0 || opProg > 1 {
					t.Fatalf("snap %d node %d: op progress %v", si, id, opProg)
				}
			}
		}
	})
}
