package progress

// Native fuzz target for the degraded-mode repair path: fuzz bytes encode
// both a poll sequence (the shared snapshot codec from fuzz_test.go) and a
// seed for chaos-style per-row perturbations — duplicated keys, dropped
// rows, stale re-deliveries of earlier polls, Degraded flags. Whatever mix
// of faulty rows arrives, the repair pass must neither panic nor mutate the
// caller's snapshot, and the estimator must hold the display contract:
// progress in [0, 1] at every poll, and — with LQS options, where Degrade
// and Monotone are on — never regressing.

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// perturbSnapshots applies seeded chaos-style row faults to a poll
// sequence: per row, drop it, duplicate it, or swap in the same key's row
// from an earlier poll. It builds new snapshots (never mutating the
// inputs), matching the injector's contract.
func perturbSnapshots(snaps []*dmv.Snapshot, seed uint64) []*dmv.Snapshot {
	rng := sim.NewRNG(seed)
	type key struct{ node, thread int }
	prev := make(map[key]dmv.OpProfile)
	out := make([]*dmv.Snapshot, 0, len(snaps))
	for _, s := range snaps {
		rows := make([]dmv.OpProfile, 0, len(s.Threads))
		for _, row := range s.Threads {
			switch rng.Intn(8) {
			case 0: // drop
			case 1: // duplicate
				rows = append(rows, row, row)
			case 2: // stale re-delivery
				if old, ok := prev[key{row.NodeID, row.ThreadID}]; ok {
					rows = append(rows, old)
				} else {
					rows = append(rows, row)
				}
			default:
				rows = append(rows, row)
			}
			prev[key{row.NodeID, row.ThreadID}] = row
		}
		ns := &dmv.Snapshot{At: s.At, NumNodes: s.NumNodes, Threads: rows}
		if rng.Intn(4) == 0 {
			ns.Degraded = true
			ns.DegradeReason = "poll stalled past interval"
		}
		out = append(out, ns)
	}
	return out
}

func FuzzDegradedSnapshot(f *testing.F) {
	cfg := workload.SynthConfig{
		Name: "FZDEG", Seed: 17, NumTables: 4, MinRows: 200, MaxRows: 1200,
		NumQueries: 2, MinJoins: 2, MaxJoins: 3, GroupByFrac: 1,
	}
	w := workload.Synth(cfg)
	root := plan.Parallelize(w.Queries[0].Build(w.Builder()), 4)
	p := plan.Finalize(root)
	opt.NewEstimator(w.DB.Catalog).Estimate(p)

	// Corpus: real per-thread captures, plus pre-perturbed replays so
	// mutation starts from inputs that already exercise the repair pass.
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 150*time.Microsecond)
	w.DB.ColdStart()
	query := exec.NewQueryDOP(p, w.DB, opt.DefaultCostModel(), clock, 4)
	poller.Register(query)
	if _, err := query.Run(); err != nil {
		f.Fatalf("corpus query failed: %v", err)
	}
	tr := poller.Finish(query)
	seedInput := func(seed uint64, snaps []*dmv.Snapshot) []byte {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, seed)
		return append(buf, encodeSnapshots(snaps)...)
	}
	corpus := tr.Snapshots
	if len(corpus) > 10 {
		stride := len(corpus) / 10
		var sampled []*dmv.Snapshot
		for i := 0; i < len(corpus); i += stride {
			sampled = append(sampled, corpus[i])
		}
		corpus = sampled
	}
	f.Add(seedInput(1, corpus))
	f.Add(seedInput(42, perturbSnapshots(corpus, 42)))
	if tr.Final != nil {
		f.Add(seedInput(7, []*dmv.Snapshot{tr.Final, corpus[0]}))
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var seed uint64
		if len(data) >= 8 {
			seed = binary.LittleEndian.Uint64(data)
			data = data[8:]
		}
		snaps := decodeSnapshots(data, len(p.Nodes))
		if len(snaps) > 12 {
			snaps = snaps[:12]
		}
		snaps = perturbSnapshots(snaps, seed)

		// Degrade+Bound without Monotone: repair alone must keep the display
		// contract on degraded polls (forced clamp) while healthy polls may
		// legitimately move either way.
		bounded := NewEstimator(p, w.DB.Catalog, Options{Refine: true, Bound: true, Degrade: true})
		for si, s := range snaps {
			e := bounded.Estimate(s)
			if math.IsNaN(e.Query) || e.Query < 0 || e.Query > 1 {
				t.Fatalf("degrade-only snap %d: query progress %v", si, e.Query)
			}
			for id, b := range e.Bounds {
				if math.IsNaN(b.LB) || math.IsNaN(b.UB) || b.LB > b.UB+1e-9 {
					t.Fatalf("degrade-only snap %d node %d: bounds [%v, %v]", si, id, b.LB, b.UB)
				}
			}
		}

		// Full LQS mode: monotone must hold across the faulty sequence, and
		// Explain's contributions must reproduce the raw progress.
		est := NewEstimator(p, w.DB.Catalog, LQSOptions())
		prevQ := math.Inf(-1)
		prevOp := make([]float64, len(p.Nodes))
		for i := range prevOp {
			prevOp[i] = math.Inf(-1)
		}
		for si, s := range snaps {
			before := len(s.Threads)
			x, e := est.Explain(s)
			if len(s.Threads) != before {
				t.Fatalf("snap %d: repair mutated the caller's snapshot", si)
			}
			if math.IsNaN(e.Query) || e.Query < 0 || e.Query > 1 {
				t.Fatalf("lqs snap %d: query progress %v", si, e.Query)
			}
			if e.Query < prevQ-1e-12 {
				t.Fatalf("lqs snap %d: query progress regressed %v -> %v", si, prevQ, e.Query)
			}
			prevQ = math.Max(prevQ, e.Query)
			for id, v := range e.Op {
				if math.IsNaN(v) || v < 0 || v > 1 {
					t.Fatalf("lqs snap %d node %d: op progress %v", si, id, v)
				}
				if v < prevOp[id]-1e-12 {
					t.Fatalf("lqs snap %d node %d: op progress regressed %v -> %v", si, id, prevOp[id], v)
				}
				prevOp[id] = math.Max(prevOp[id], v)
			}
			var sum float64
			for _, term := range x.Terms {
				sum += term.Contribution
			}
			if math.IsNaN(x.RawQuery) || math.Abs(sum-x.RawQuery) > 1e-6 {
				t.Fatalf("lqs snap %d: contributions sum %v != raw %v", si, sum, x.RawQuery)
			}
		}
	})
}
