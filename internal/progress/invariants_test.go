package progress

import (
	"math"
	"testing"
	"time"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// TestRandomPlanInvariants is a fuzz-style sweep: random decision-support
// plans over random schemas, traced and then estimated under every
// estimator configuration, asserting the invariants that must hold no
// matter how wrong the cardinality estimates are:
//
//   - query and operator progress stay in [0, 1];
//   - closed operators report exactly 1, unopened ones 0;
//   - the Appendix A bounds always contain the true cardinality;
//   - refined estimates stay within the bounds when bounding is on;
//   - the final estimate reports (near-)completion.
func TestRandomPlanInvariants(t *testing.T) {
	cfg := workload.SynthConfig{
		Name: "FUZZ", Seed: 20260705,
		NumTables: 8, MinRows: 200, MaxRows: 3000,
		NumQueries: 40, MinJoins: 2, MaxJoins: 7,
		GroupByFrac: 0.5,
	}
	w := workload.Synth(cfg)
	configs := map[string]Options{
		"TGN":       TGNOptions(),
		"DNE":       DNEOptions(),
		"LQS":       LQSOptions(),
		"ENS":       EnsembleOptions(),
		"BoundOnly": {Bound: true},
		"Interp":    {Refine: true, InterpRefine: true, Bound: true},
		"Path":      func() Options { o := LQSOptions(); o.LongestPathOnly = true; return o }(),
	}
	queries := w.Queries
	if testing.Short() {
		queries = queries[:8]
	}
	for _, q := range queries {
		p := plan.Finalize(q.Build(w.Builder()))
		opt.NewEstimator(w.DB.Catalog).Estimate(p)
		clock := sim.NewClock()
		poller := dmv.NewPoller(clock, 150*time.Microsecond)
		w.DB.ColdStart()
		query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), clock)
		poller.Register(query)
		query.Run()
		tr := poller.Finish(query)
		if len(tr.Snapshots) < 2 {
			continue
		}
		for name, o := range configs {
			est := NewEstimator(p, w.DB.Catalog, o)
			snaps := append(append([]*dmv.Snapshot{}, tr.Snapshots...), tr.Final)
			for si, s := range snaps {
				e := est.Estimate(s)
				if e.Query < 0 || e.Query > 1 || math.IsNaN(e.Query) {
					t.Fatalf("%s/%s snap %d: query progress %v", q.Name, name, si, e.Query)
				}
				if e.Ensemble != nil {
					checkEnsembleInvariants(t, q.Name+"/"+name, si, e)
				}
				for id, opProg := range e.Op {
					if opProg < 0 || opProg > 1 || math.IsNaN(opProg) {
						t.Fatalf("%s/%s snap %d node %d: op progress %v", q.Name, name, si, id, opProg)
					}
					prof := s.Op(id)
					if prof.Closed && opProg != 1 {
						t.Fatalf("%s/%s node %d: closed but progress %v", q.Name, name, id, opProg)
					}
					if !prof.Opened && !prof.Closed && opProg != 0 {
						t.Fatalf("%s/%s node %d: unopened but progress %v", q.Name, name, id, opProg)
					}
					if math.IsNaN(e.N[id]) || e.N[id] < 0 {
						t.Fatalf("%s/%s node %d: bad refined N %v", q.Name, name, id, e.N[id])
					}
				}
				if o.Bound {
					for id, b := range e.Bounds {
						truth := float64(tr.TrueRows[id])
						if truth < b.LB-1e-6 || truth > b.UB+1e-6 {
							t.Fatalf("%s/%s snap %d node %d (%v): true N %v outside bounds [%v, %v]",
								q.Name, name, si, id, p.Node(id).Logical, truth, b.LB, b.UB)
						}
						if e.N[id] < b.LB-1e-6 || e.N[id] > b.UB+1e-6 {
							t.Fatalf("%s/%s node %d: refined N %v escaped bounds [%v, %v]",
								q.Name, name, id, e.N[id], b.LB, b.UB)
						}
					}
				}
			}
			final := est.Estimate(tr.Final)
			// Refinement (closed ⇒ N̂=k) guarantees completion reads 100%.
			// The non-refining configurations may end short when estimates
			// are off (bounds on inner-side operators stay loose even at
			// completion) — the paper's baselines share this — but must
			// still be near completion.
			minFinal := 0.99
			if !o.Refine {
				minFinal = 0.6
			}
			if final.Query < minFinal {
				t.Fatalf("%s/%s: final query progress %v", q.Name, name, final.Query)
			}
		}
	}
}

// TestParallelPlanInvariants is the DOP sweep of the property battery:
// random plans run serially and with parallel zones at DOP 2 and 4, their
// poll traces estimated under the three query-progress modes (TGN, driver-
// node, weighted/LQS) with the display monotone clamp on. Per-thread DMV
// rows must be invisible to the estimator: progress stays in [0, 1], never
// regresses across polls, reaches (near-)completion at the end, and the
// Explain decomposition's per-operator contributions sum to the raw query
// progress at every poll — the estimator remains a client of aggregated
// counters exactly as LQS is a client of the real DMV.
func TestParallelPlanInvariants(t *testing.T) {
	cfg := workload.SynthConfig{
		Name: "PFUZZ", Seed: 20260806,
		NumTables: 6, MinRows: 300, MaxRows: 4000,
		NumQueries: 12, MinJoins: 1, MaxJoins: 4,
		GroupByFrac: 0.5,
	}
	w := workload.Synth(cfg)
	modes := map[string]Options{
		"TGN": TGNOptions(),
		"DNE": DNEOptions(),
		"LQS": LQSOptions(),
		"ENS": EnsembleOptions(),
	}
	queries := w.Queries
	if testing.Short() {
		queries = queries[:4]
	}
	for _, q := range queries {
		for _, dop := range []int{1, 2, 4} {
			root := plan.Parallelize(q.Build(w.Builder()), dop)
			p := plan.Finalize(root)
			opt.NewEstimator(w.DB.Catalog).Estimate(p)
			clock := sim.NewClock()
			poller := dmv.NewPoller(clock, 150*time.Microsecond)
			w.DB.ColdStart()
			query := exec.NewQueryDOP(p, w.DB, opt.DefaultCostModel(), clock, dop)
			poller.Register(query)
			if _, err := query.Run(); err != nil {
				t.Fatalf("%s dop=%d: %v", q.Name, dop, err)
			}
			tr := poller.Finish(query)
			snaps := append(append([]*dmv.Snapshot{}, tr.Snapshots...), tr.Final)
			for name, o := range modes {
				o.Monotone = true
				est := NewEstimator(p, w.DB.Catalog, o)
				last := 0.0
				for si, s := range snaps {
					x, e := est.Explain(s)
					if e.Query < 0 || e.Query > 1 || math.IsNaN(e.Query) {
						t.Fatalf("%s/%s dop=%d snap %d: query progress %v", q.Name, name, dop, si, e.Query)
					}
					if e.Query < last {
						t.Fatalf("%s/%s dop=%d snap %d: progress regressed %v -> %v under Monotone",
							q.Name, name, dop, si, last, e.Query)
					}
					last = e.Query
					var sum float64
					for _, term := range x.Terms {
						sum += term.Contribution
					}
					if math.IsNaN(x.RawQuery) || math.Abs(sum-x.RawQuery) > 1e-6 {
						t.Fatalf("%s/%s dop=%d snap %d: contributions sum %v != raw progress %v",
							q.Name, name, dop, si, sum, x.RawQuery)
					}
					if e.Ensemble != nil {
						checkEnsembleInvariants(t, q.Name+"/"+name, si, e)
						var cwsum float64
						for _, c := range x.Candidates {
							cwsum += c.Weight
						}
						if math.Abs(cwsum-1) > 1e-9 {
							t.Fatalf("%s/%s dop=%d snap %d: explain candidate weights sum to %v",
								q.Name, name, dop, si, cwsum)
						}
					}
					for id, opProg := range e.Op {
						if opProg < 0 || opProg > 1 || math.IsNaN(opProg) {
							t.Fatalf("%s/%s dop=%d snap %d node %d: op progress %v",
								q.Name, name, dop, si, id, opProg)
						}
					}
				}
				// Completion: refinement guarantees 100%; the baselines may
				// end short when estimates are off but must be near done.
				minFinal := 0.99
				if !o.Refine {
					minFinal = 0.6
				}
				if last < minFinal {
					t.Fatalf("%s/%s dop=%d: final query progress %v", q.Name, name, dop, last)
				}
			}
		}
	}
}

// checkEnsembleInvariants asserts the §4j selector contract on one
// estimate: per-candidate weights normalized (sum to 1, each in [0, 1]),
// the raw blend inside the candidates' min/max progress envelope, and a
// valid selection index.
func checkEnsembleInvariants(t *testing.T, tag string, si int, e *Estimate) {
	t.Helper()
	info := e.Ensemble
	if len(info.Weights) != len(info.Query) || len(info.Names) != len(info.Query) {
		t.Fatalf("%s snap %d: ragged ensemble info %+v", tag, si, info)
	}
	var wsum float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, w := range info.Weights {
		if math.IsNaN(w) || w < -1e-12 || w > 1+1e-12 {
			t.Fatalf("%s snap %d: candidate %s weight %v", tag, si, info.Names[i], w)
		}
		wsum += w
		if info.Query[i] < lo {
			lo = info.Query[i]
		}
		if info.Query[i] > hi {
			hi = info.Query[i]
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("%s snap %d: ensemble weights sum to %v", tag, si, wsum)
	}
	if info.Blend < lo-1e-9 || info.Blend > hi+1e-9 {
		t.Fatalf("%s snap %d: blend %v outside candidate envelope [%v, %v]", tag, si, info.Blend, lo, hi)
	}
	if info.Selected < 0 || info.Selected >= len(info.Names) {
		t.Fatalf("%s snap %d: selected index %d out of range", tag, si, info.Selected)
	}
}

// TestEstimatePureFunction: estimating the same snapshot twice yields
// identical results (the estimator holds no hidden mutable state between
// polls, so a client can re-evaluate history freely).
func TestEstimatePureFunction(t *testing.T) {
	cfg := workload.SynthConfig{
		Name: "PURE", Seed: 7, NumTables: 6, MinRows: 200, MaxRows: 1500,
		NumQueries: 3, MinJoins: 2, MaxJoins: 4, GroupByFrac: 1,
	}
	w := workload.Synth(cfg)
	p := plan.Finalize(w.Queries[0].Build(w.Builder()))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 200*time.Microsecond)
	query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), clock)
	poller.Register(query)
	query.Run()
	tr := poller.Finish(query)
	est := NewEstimator(p, w.DB.Catalog, LQSOptions())
	for _, s := range tr.Snapshots {
		a := est.Estimate(s)
		b := est.Estimate(s)
		if a.Query != b.Query {
			t.Fatalf("estimate not deterministic: %v vs %v", a.Query, b.Query)
		}
		for id := range a.N {
			if a.N[id] != b.N[id] {
				t.Fatalf("node %d refined N differs across calls", id)
			}
		}
	}
}
