package progress

import (
	"math"
	"testing"
	"time"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// TestRandomPlanInvariants is a fuzz-style sweep: random decision-support
// plans over random schemas, traced and then estimated under every
// estimator configuration, asserting the invariants that must hold no
// matter how wrong the cardinality estimates are:
//
//   - query and operator progress stay in [0, 1];
//   - closed operators report exactly 1, unopened ones 0;
//   - the Appendix A bounds always contain the true cardinality;
//   - refined estimates stay within the bounds when bounding is on;
//   - the final estimate reports (near-)completion.
func TestRandomPlanInvariants(t *testing.T) {
	cfg := workload.SynthConfig{
		Name: "FUZZ", Seed: 20260705,
		NumTables: 8, MinRows: 200, MaxRows: 3000,
		NumQueries: 40, MinJoins: 2, MaxJoins: 7,
		GroupByFrac: 0.5,
	}
	w := workload.Synth(cfg)
	configs := map[string]Options{
		"TGN":       TGNOptions(),
		"DNE":       DNEOptions(),
		"LQS":       LQSOptions(),
		"BoundOnly": {Bound: true},
		"Interp":    {Refine: true, InterpRefine: true, Bound: true},
		"Path":      func() Options { o := LQSOptions(); o.LongestPathOnly = true; return o }(),
	}
	queries := w.Queries
	if testing.Short() {
		queries = queries[:8]
	}
	for _, q := range queries {
		p := plan.Finalize(q.Build(w.Builder()))
		opt.NewEstimator(w.DB.Catalog).Estimate(p)
		clock := sim.NewClock()
		poller := dmv.NewPoller(clock, 150*time.Microsecond)
		w.DB.ColdStart()
		query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), clock)
		poller.Register(query)
		query.Run()
		tr := poller.Finish(query)
		if len(tr.Snapshots) < 2 {
			continue
		}
		for name, o := range configs {
			est := NewEstimator(p, w.DB.Catalog, o)
			snaps := append(append([]*dmv.Snapshot{}, tr.Snapshots...), tr.Final)
			for si, s := range snaps {
				e := est.Estimate(s)
				if e.Query < 0 || e.Query > 1 || math.IsNaN(e.Query) {
					t.Fatalf("%s/%s snap %d: query progress %v", q.Name, name, si, e.Query)
				}
				for id, opProg := range e.Op {
					if opProg < 0 || opProg > 1 || math.IsNaN(opProg) {
						t.Fatalf("%s/%s snap %d node %d: op progress %v", q.Name, name, si, id, opProg)
					}
					prof := s.Op(id)
					if prof.Closed && opProg != 1 {
						t.Fatalf("%s/%s node %d: closed but progress %v", q.Name, name, id, opProg)
					}
					if !prof.Opened && !prof.Closed && opProg != 0 {
						t.Fatalf("%s/%s node %d: unopened but progress %v", q.Name, name, id, opProg)
					}
					if math.IsNaN(e.N[id]) || e.N[id] < 0 {
						t.Fatalf("%s/%s node %d: bad refined N %v", q.Name, name, id, e.N[id])
					}
				}
				if o.Bound {
					for id, b := range e.Bounds {
						truth := float64(tr.TrueRows[id])
						if truth < b.LB-1e-6 || truth > b.UB+1e-6 {
							t.Fatalf("%s/%s snap %d node %d (%v): true N %v outside bounds [%v, %v]",
								q.Name, name, si, id, p.Node(id).Logical, truth, b.LB, b.UB)
						}
						if e.N[id] < b.LB-1e-6 || e.N[id] > b.UB+1e-6 {
							t.Fatalf("%s/%s node %d: refined N %v escaped bounds [%v, %v]",
								q.Name, name, id, e.N[id], b.LB, b.UB)
						}
					}
				}
			}
			final := est.Estimate(tr.Final)
			// Refinement (closed ⇒ N̂=k) guarantees completion reads 100%.
			// The non-refining configurations may end short when estimates
			// are off (bounds on inner-side operators stay loose even at
			// completion) — the paper's baselines share this — but must
			// still be near completion.
			minFinal := 0.99
			if !o.Refine {
				minFinal = 0.6
			}
			if final.Query < minFinal {
				t.Fatalf("%s/%s: final query progress %v", q.Name, name, final.Query)
			}
		}
	}
}

// TestEstimatePureFunction: estimating the same snapshot twice yields
// identical results (the estimator holds no hidden mutable state between
// polls, so a client can re-evaluate history freely).
func TestEstimatePureFunction(t *testing.T) {
	cfg := workload.SynthConfig{
		Name: "PURE", Seed: 7, NumTables: 6, MinRows: 200, MaxRows: 1500,
		NumQueries: 3, MinJoins: 2, MaxJoins: 4, GroupByFrac: 1,
	}
	w := workload.Synth(cfg)
	p := plan.Finalize(w.Queries[0].Build(w.Builder()))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 200*time.Microsecond)
	query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), clock)
	poller.Register(query)
	query.Run()
	tr := poller.Finish(query)
	est := NewEstimator(p, w.DB.Catalog, LQSOptions())
	for _, s := range tr.Snapshots {
		a := est.Estimate(s)
		b := est.Estimate(s)
		if a.Query != b.Query {
			t.Fatalf("estimate not deterministic: %v vs %v", a.Query, b.Query)
		}
		for id := range a.N {
			if a.N[id] != b.N[id] {
				t.Fatalf("node %d refined N differs across calls", id)
			}
		}
	}
}
