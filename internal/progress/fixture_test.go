package progress

import (
	"testing"
	"time"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// fixture builds the shared test database:
//
//	fact(id, dim_id skewed, cat 0..19, val) 20000 rows — pk, ix_dim, columnstore
//	dim(id, attr 0..49, weight)               500 rows — pk
type fixture struct {
	cat *catalog.Catalog
	db  *storage.Database
	b   *plan.Builder
}

func newFixture(tb testing.TB) *fixture {
	tb.Helper()
	cat := catalog.NewCatalog()
	fact := catalog.NewTable("fact",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "dim_id", Kind: types.KindInt},
		catalog.Column{Name: "cat", Kind: types.KindInt},
		catalog.Column{Name: "val", Kind: types.KindFloat},
	)
	fact.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	fact.AddIndex(&catalog.Index{Name: "ix_dim", KeyCols: []int{1}})
	fact.AddIndex(&catalog.Index{Name: "cs", Kind: catalog.ColumnStore})
	cat.Add(fact)
	dim := catalog.NewTable("dim",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "attr", Kind: types.KindInt},
		catalog.Column{Name: "weight", Kind: types.KindFloat},
	)
	dim.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	cat.Add(dim)

	db := storage.NewDatabase(cat, 1<<20)
	rng := sim.NewRNG(99)
	z := sim.NewZipf(rng, 500, 1.0)
	fRows := make([]types.Row, 20000)
	for i := range fRows {
		fRows[i] = types.Row{
			types.Int(int64(i)),
			types.Int(z.Next() - 1),
			types.Int(rng.Int63n(20)),
			types.Float(rng.Float64() * 100),
		}
	}
	db.Load("fact", fRows)
	dRows := make([]types.Row, 500)
	for i := range dRows {
		dRows[i] = types.Row{types.Int(int64(i)), types.Int(rng.Int63n(50)), types.Float(rng.Float64())}
	}
	db.Load("dim", dRows)
	db.BuildAllStats(32)
	return &fixture{cat: cat, db: db, b: plan.NewBuilder(cat)}
}

// trace estimates, executes, and polls a plan, returning the trace.
func (f *fixture) trace(tb testing.TB, root *plan.Node, estErr func(n *plan.Node) float64) (*plan.Plan, *dmv.Trace) {
	tb.Helper()
	p := plan.Finalize(root)
	e := opt.NewEstimator(f.cat)
	e.NodeMultiplier = estErr
	e.Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 200*time.Microsecond)
	f.db.ColdStart()
	q := exec.NewQuery(p, f.db, opt.DefaultCostModel(), clock)
	poller.Register(q)
	q.Run()
	return p, poller.Finish(q)
}

// estimateAll runs an estimator over every snapshot of a trace.
func estimateAll(p *plan.Plan, cat *catalog.Catalog, tr *dmv.Trace, o Options) []*Estimate {
	est := NewEstimator(p, cat, o)
	out := make([]*Estimate, 0, len(tr.Snapshots)+1)
	for _, s := range tr.Snapshots {
		out = append(out, est.Estimate(s))
	}
	out = append(out, est.Estimate(tr.Final))
	return out
}

// trueQueryProgress computes the oracle unweighted GetNext progress at a
// snapshot: Σk_i(t) / ΣN_i^true (the comparison target of Errorcount).
func trueQueryProgress(tr *dmv.Trace, s *dmv.Snapshot) float64 {
	var num, den float64
	for id, n := range tr.TrueRows {
		num += float64(s.Op(id).ActualRows)
		den += float64(n)
	}
	if den == 0 {
		return 1
	}
	return num / den
}
