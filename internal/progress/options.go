package progress

// Options toggles each technique of Section 4 independently. The zero
// value is the bare "Total GetNext" (TGN) estimator of [7] with unit
// weights — the baseline every experiment compares against.
type Options struct {
	// Refine enables online cardinality refinement (§4.1): scale each
	// node's observed k_i by the inverse driver-node progress.
	Refine bool
	// Bound enables worst-case cardinality bounds (§4.2, Appendix A).
	Bound bool
	// StoragePredIO bases scan progress on the fraction of logical I/O
	// issued when predicates are evaluated in the storage engine (§4.3).
	StoragePredIO bool
	// SemiBlocking enables the §4.4 adjustments: inner side of nested
	// loops as driver nodes, child-progress scale-up below buffering
	// operators, and rebind-based scale-up on NL inner sides.
	SemiBlocking bool
	// TwoPhaseBlocking models blocking operators as separate input and
	// output phases (§4.5).
	TwoPhaseBlocking bool
	// Weighted weights pipelines by optimizer cost — max(CPU, IO) — and
	// computes query progress over the longest path of speed-independent
	// pipelines (§4.6).
	Weighted bool
	// BatchMode bases batch-operator progress on the fraction of
	// columnstore segments processed (§4.7).
	BatchMode bool

	// DriverNodeQuery computes overall query progress from driver nodes
	// only (the DNE estimator of [7]) instead of summing over all nodes.
	// Ignored when Weighted is set.
	DriverNodeQuery bool

	// LongestPathOnly restricts the weighted query progress to the
	// longest path of speed-independent pipelines, the paper's rule for
	// an engine that overlaps independent pipelines across threads. This
	// engine executes pipelines serially, so the default sums over all
	// pipelines; enable this for the paper-literal ablation.
	LongestPathOnly bool

	// InterpRefine replaces §4.1's direct scale-up with the prior-work
	// linear interpolation between the optimizer estimate and the
	// scaled-up estimate [22]; the paper rejects it for slow convergence.
	InterpRefine bool

	// MinRefineRows is the §4.1 guard condition: refinement fires only
	// after this many tuples were observed on every input of a node.
	MinRefineRows int64

	// PropagateRefined implements the paper's §7 future-work item (a):
	// propagate refined cardinality estimates (not just worst-case
	// bounds) across pipeline boundaries — aggregate outputs and nodes in
	// not-yet-started pipelines scale their optimizer estimates by the
	// observed refinement ratio of their inputs.
	PropagateRefined bool

	// WeightFeedback implements §7 future-work item (b): when non-nil,
	// per-row operator weights come from this calibration of observed
	// costs in prior executions instead of the optimizer cost model.
	WeightFeedback *Feedback

	// Monotone enforces per-node and per-query monotonicity across polls:
	// displayed progress never regresses, even when refinement revises a
	// cardinality estimate upward or a stale snapshot arrives out of order.
	// This is a display-layer invariant (a progress bar that moves backwards
	// destroys user trust — the phenomenon Fig. 4 discusses); the underlying
	// estimates stay unconstrained so ablation experiments can study raw
	// estimator behavior with it off.
	Monotone bool

	// Degrade enables the estimator's graceful-degradation mode for faulty
	// counter streams: partial, stale, or duplicated per-thread snapshot
	// rows are repaired against a per-(node, thread) high-water mark before
	// estimation, Appendix A bounds are widened on degraded polls, and
	// degraded polls are forced monotone (hold last-good progress) even
	// when Monotone is off. A clean snapshot stream behaves identically
	// with it on or off.
	Degrade bool

	// InternalCounters implements the paper's first §7 future-work item:
	// consume the extended DMV counters exposing blocking operators'
	// internal work (a spilled sort's external merge progress), closing
	// the gap the GetNext model cannot see. Off in the shipping LQS
	// configuration because the real DMV does not expose these counters.
	InternalCounters bool

	// Ensemble runs the TGN/DNE/LQS estimators side-by-side over the same
	// aggregated DMV rows and selects/weights among them online per poll,
	// after König et al.'s robust-estimation predecessor work (DESIGN §4j):
	// per-candidate self-consistency penalties drive the blend weights, a
	// hysteresis rule gates which candidate's cardinality attribution the
	// estimate carries, and bounds are the intersection-safe envelope of
	// the candidates' Appendix A bounds. See EnsembleOptions.
	Ensemble bool

	// NHints is the shared mid-flight refined-N̂ store of the ensemble mode
	// (§4j): NewEstimator wires one store into every candidate, so each
	// candidate that would otherwise fall back to a raw optimizer estimate
	// reads the same observed-selectivity refinement instead. Wired by the
	// ensemble constructor; not set directly.
	NHints *NHints
}

// DefaultMinRefineRows is the guard threshold used when MinRefineRows is 0.
const DefaultMinRefineRows = 32

// LQSOptions is the shipping Live Query Statistics configuration: every
// technique of Section 4 enabled.
func LQSOptions() Options {
	return Options{
		Refine:           true,
		Bound:            true,
		StoragePredIO:    true,
		SemiBlocking:     true,
		TwoPhaseBlocking: true,
		Weighted:         true,
		BatchMode:        true,
		Monotone:         true,
		Degrade:          true,
		MinRefineRows:    DefaultMinRefineRows,
	}
}

// EnsembleOptions is the §4j ensemble configuration: the full LQS display
// contract (monotone, degradation-tolerant, bounded) with the TGN/DNE/LQS
// candidates run side-by-side and selected/weighted online per poll.
func EnsembleOptions() Options {
	o := LQSOptions()
	o.Ensemble = true
	return o
}

// TGNOptions is the Total GetNext baseline: Equation 2 with unit weights
// and raw optimizer estimates.
func TGNOptions() Options { return Options{} }

// DNEOptions is the driver-node estimator baseline of [7].
func DNEOptions() Options {
	return Options{DriverNodeQuery: true}
}

func (o Options) minRefine() int64 {
	if o.MinRefineRows > 0 {
		return o.MinRefineRows
	}
	return DefaultMinRefineRows
}
