package progress

import (
	"testing"

	"lqs/internal/engine/expr"
	"lqs/internal/plan"
	"lqs/internal/workload"
)

// fig5Plan reproduces the paper's Figure 5: merge join over a scan and a
// sorted scan, with a filter and hash group-by above.
func fig5Plan(f *fixture) (*plan.Plan, map[string]*plan.Node) {
	b := f.b
	scanA := b.IndexScan("fact", "pk", nil, nil)
	scanB := b.TableScan("dim", nil, nil)
	sorted := b.Sort(scanB, []int{0}, nil)
	mj := b.MergeJoinNode(plan.LogicalInnerJoin, scanA, sorted, []int{1}, []int{0}, nil)
	fl := b.Filter(mj, expr.Lt(expr.C(2, "cat"), expr.KInt(10)))
	gb := b.HashAgg(fl, []int{5}, []expr.AggSpec{{Kind: expr.CountStar}})
	nodes := map[string]*plan.Node{
		"scanA": scanA, "scanB": scanB, "sort": sorted, "mj": mj, "filter": fl, "gb": gb,
	}
	return plan.Finalize(gb), nodes
}

func pipeOf(d *Decomposition, id int) *Pipeline { return d.Pipelines[d.PipeOf[id]] }

func TestDecomposeFig5(t *testing.T) {
	f := newFixture(t)
	p, nodes := fig5Plan(f)
	d := Decompose(p)
	if len(d.Pipelines) != 3 {
		t.Fatalf("Fig.5 plan should decompose into 3 pipelines, got %d:\n%s", len(d.Pipelines), d)
	}
	// Pipeline of scan B ends at the Sort input.
	pB := pipeOf(d, nodes["scanB"].ID)
	if d.PipeOf[nodes["sort"].ID] != pB.ID {
		t.Error("sort input phase must share scan B's pipeline")
	}
	// Scan A, merge join, filter, and hash agg input share a pipeline.
	pA := pipeOf(d, nodes["scanA"].ID)
	for _, name := range []string{"mj", "filter", "gb"} {
		if d.PipeOf[nodes[name].ID] != pA.ID {
			t.Errorf("%s not in scan A's pipeline", name)
		}
	}
	// The hash agg output sources the root pipeline.
	root := d.Root
	if d.OutPipeOf[nodes["gb"].ID] != root.ID {
		t.Error("group-by output must source the root pipeline")
	}
	// Drivers: scan B drives its pipeline; scan A and the sort output
	// drive the middle pipeline; the agg output drives the root.
	if len(pB.Drivers) != 1 || pB.Drivers[0] != nodes["scanB"].ID {
		t.Errorf("pipeline B drivers = %v", pB.Drivers)
	}
	wantDrivers := map[int]bool{nodes["scanA"].ID: true, nodes["sort"].ID: true}
	if len(pA.Drivers) != 2 || !wantDrivers[pA.Drivers[0]] || !wantDrivers[pA.Drivers[1]] {
		t.Errorf("middle pipeline drivers = %v, want scanA + sort output", pA.Drivers)
	}
	if len(root.Drivers) != 1 || root.Drivers[0] != nodes["gb"].ID {
		t.Errorf("root drivers = %v", root.Drivers)
	}
}

func TestDecomposeHashJoinBuildSide(t *testing.T) {
	f := newFixture(t)
	b := f.b
	probe := b.TableScan("fact", nil, nil)
	build := b.TableScan("dim", nil, nil)
	hj := b.HashJoinNode(plan.LogicalInnerJoin, probe, build, []int{1}, []int{0}, nil)
	p := plan.Finalize(hj)
	d := Decompose(p)
	if len(d.Pipelines) != 2 {
		t.Fatalf("hash join should have 2 pipelines, got %d", len(d.Pipelines))
	}
	if d.PipeOf[probe.ID] != d.PipeOf[hj.ID] {
		t.Error("probe must share the join's pipeline")
	}
	if d.PipeOf[build.ID] == d.PipeOf[hj.ID] {
		t.Error("build side must be its own pipeline")
	}
	// The build pipeline is a child of the probe pipeline.
	probePipe := pipeOf(d, hj.ID)
	if len(probePipe.Children) != 1 || probePipe.Children[0].ID != d.PipeOf[build.ID] {
		t.Error("build pipeline must be a child of the probe pipeline")
	}
}

func TestDecomposeNestedLoopsInnerSide(t *testing.T) {
	f := newFixture(t)
	b := f.b
	outer := b.TableScan("dim", nil, nil)
	inner := b.SeekEq("fact", "ix_dim", []expr.Expr{expr.C(0, "dim.id")}, nil)
	nl := b.NestedLoopsNode(plan.LogicalInnerJoin, outer, inner, nil)
	p := plan.Finalize(nl)
	d := Decompose(p)
	if len(d.Pipelines) != 1 {
		t.Fatalf("NL join is one pipeline, got %d", len(d.Pipelines))
	}
	if !d.InnerSide[inner.ID] || d.InnerSide[outer.ID] || d.InnerSide[nl.ID] {
		t.Error("inner-side marking wrong")
	}
	if d.OuterOf[inner.ID] != outer.ID {
		t.Errorf("OuterOf[inner] = %d, want %d", d.OuterOf[inner.ID], outer.ID)
	}
	pl := d.Pipelines[0]
	if len(pl.Drivers) != 1 || pl.Drivers[0] != outer.ID {
		t.Errorf("drivers = %v, want just the outer scan", pl.Drivers)
	}
	if len(pl.InnerDrivers) != 1 || pl.InnerDrivers[0] != inner.ID {
		t.Errorf("inner drivers = %v, want the seek", pl.InnerDrivers)
	}
}

func TestHasSemiBelow(t *testing.T) {
	f := newFixture(t)
	b := f.b
	scan := b.TableScan("fact", nil, nil)
	ex := b.ExchangeNode(scan, plan.GatherStreams)
	fl := b.Filter(ex, expr.Lt(expr.C(0, "id"), expr.KInt(100)))
	agg := b.HashAgg(fl, []int{2}, []expr.AggSpec{{Kind: expr.CountStar}})
	p := plan.Finalize(agg)
	e := NewEstimator(p, f.cat, LQSOptions())
	if e.hasSemiBelow[scan.ID] || e.hasSemiBelow[ex.ID] {
		t.Error("nodes at/below the exchange must not report semi-below")
	}
	if !e.hasSemiBelow[fl.ID] || !e.hasSemiBelow[agg.ID] {
		t.Error("nodes above the exchange must report semi-below")
	}
}

// TestDriverSetsDisjointInvariant proves the decomposition invariant that
// pipelineAlpha and driverQueryProgress rely on when they concatenate
// Drivers and InnerDrivers without dedup: no node ID ever appears in both
// lists, nor twice across pipelines.
//
// Why it cannot happen, from the Decompose construction:
//   - every node joins exactly one pipeline's Members and at most one
//     pipeline's Sources (the walk visits each node once; only blocking
//     nodes become Sources, of the single pipeline consuming their output);
//   - only leaf Members and Sources are promoted to driver lists, and
//     blocking operators always have children, so no node can be promoted
//     both as a leaf-member and as a source;
//   - the promotion routes each node by its single InnerSide[id] bit, so
//     one node can never land in a Drivers list and an InnerDrivers list.
//
// The test verifies the conclusion over every crafted plan shape above plus
// every TPC-H and TPC-DS workload plan (NL-inside-NL, blocking-on-inner,
// spools, exchanges, bitmap plans, ...), so any future decomposition change
// that breaks the assumption — and would silently double-count α terms —
// fails here.
func TestDriverSetsDisjointInvariant(t *testing.T) {
	f := newFixture(t)
	var plans []*plan.Plan

	// Crafted shapes, including the trickiest combinations: a blocking
	// operator on the inner side of a nested loop (its output phase becomes
	// an InnerDriver via Sources) and nested loops inside nested loops.
	p5, _ := fig5Plan(f)
	plans = append(plans, p5)
	{
		b := f.b
		outer := b.TableScan("dim", nil, nil)
		innerSorted := b.Sort(b.SeekEq("fact", "ix_dim", []expr.Expr{expr.C(0, "dim.id")}, nil), []int{0}, nil)
		nl := b.NestedLoopsNode(plan.LogicalInnerJoin, outer, innerSorted, nil)
		plans = append(plans, plan.Finalize(b.HashAgg(nl, []int{0}, []expr.AggSpec{{Kind: expr.CountStar}})))
	}
	{
		b := f.b
		o1 := b.TableScan("dim", nil, nil)
		i1 := b.SeekEq("fact", "ix_dim", []expr.Expr{expr.C(0, "dim.id")}, nil)
		nlInner := b.NestedLoopsNode(plan.LogicalInnerJoin, o1, i1, nil)
		o2 := b.TableScan("dim", nil, nil)
		nl := b.NestedLoopsNode(plan.LogicalInnerJoin, o2, nlInner, nil)
		plans = append(plans, plan.Finalize(b.ExchangeNode(nl, plan.GatherStreams)))
	}
	{
		b := f.b
		spooled := b.Spool(b.TableScan("dim", nil, nil), true)
		nl := b.NestedLoopsNode(plan.LogicalInnerJoin, b.TableScan("fact", nil, nil), spooled, nil)
		plans = append(plans, plan.Finalize(b.Sort(nl, []int{0}, nil)))
	}

	// Every plan of the benchmark workloads.
	for _, w := range []*workload.Workload{
		workload.TPCH(3, workload.TPCHRowstore),
		workload.TPCH(3, workload.TPCHColumnstore),
		workload.TPCDS(3),
	} {
		for _, q := range w.Queries {
			plans = append(plans, plan.Finalize(q.Build(w.Builder())))
		}
	}

	for pi, p := range plans {
		d := Decompose(p)
		seen := make(map[int]string) // node ID -> which list claimed it
		claim := func(id int, list string) {
			if prev, dup := seen[id]; dup {
				t.Fatalf("plan %d: node %d in both %s and %s — driver sets double-count:\n%s\n%s",
					pi, id, prev, list, d, p)
			}
			seen[id] = list
		}
		for _, pl := range d.Pipelines {
			for _, id := range pl.Drivers {
				claim(id, "Drivers")
				if d.InnerSide[id] {
					t.Fatalf("plan %d: inner-side node %d listed as a plain driver", pi, id)
				}
			}
			for _, id := range pl.InnerDrivers {
				claim(id, "InnerDrivers")
				if !d.InnerSide[id] {
					t.Fatalf("plan %d: outer-side node %d listed as an inner driver", pi, id)
				}
			}
		}
	}
}

func TestDecomposeDeepBlockingChain(t *testing.T) {
	f := newFixture(t)
	b := f.b
	scan := b.TableScan("fact", nil, nil)
	s1 := b.Sort(scan, []int{0}, nil)
	agg := b.HashAgg(s1, []int{2}, []expr.AggSpec{{Kind: expr.CountStar}})
	s2 := b.Sort(agg, []int{1}, nil)
	p := plan.Finalize(s2)
	d := Decompose(p)
	// scan+s1_in | s1_out..agg_in | agg_out..s2_in | s2_out(root)
	if len(d.Pipelines) != 4 {
		t.Fatalf("blocking chain should give 4 pipelines, got %d:\n%s", len(d.Pipelines), d)
	}
}
