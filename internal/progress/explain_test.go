package progress

import (
	"math"
	"strings"
	"testing"

	"lqs/internal/engine/expr"
	"lqs/internal/plan"
)

// joinPlan builds a hash-join plan with pipelines, a blocking sort, and an
// aggregate — exercising every contribution path.
func joinPlan(f *fixture) *plan.Node {
	scanF := f.b.TableScan("fact", nil, nil)
	scanD := f.b.TableScan("dim", nil, nil)
	j := f.b.HashJoinNode(plan.LogicalInnerJoin, scanF, scanD, []int{1}, []int{0}, nil)
	agg := f.b.HashAgg(j, []int{2}, []expr.AggSpec{{Kind: expr.CountStar}})
	return f.b.Sort(agg, []int{0}, nil)
}

// explainModes are the three query-progress aggregations.
var explainModes = []struct {
	name string
	opts Options
}{
	{"tgn", Options{Refine: true, Bound: true, TwoPhaseBlocking: true}},
	{"driver", Options{Refine: true, Bound: true, DriverNodeQuery: true, SemiBlocking: true}},
	{"weighted", LQSOptions()},
}

func TestExplainContributionsSumToQueryProgress(t *testing.T) {
	f := newFixture(t)
	for _, m := range explainModes {
		t.Run(m.name, func(t *testing.T) {
			p, tr := f.trace(t, joinPlan(f), nil)
			est := NewEstimator(p, f.cat, m.opts)
			for _, s := range append(tr.Snapshots, tr.Final) {
				x, e := est.Explain(s)
				if x.Mode != m.name {
					t.Fatalf("mode = %q, want %q", x.Mode, m.name)
				}
				var sum float64
				for _, term := range x.Terms {
					sum += term.Contribution
				}
				if math.Abs(sum-x.RawQuery) > 1e-9 {
					t.Fatalf("at %v: Σ contributions %v != raw query %v", s.At, sum, x.RawQuery)
				}
				// The displayed value is the raw value run through the display
				// clamps, so absent clamping they agree.
				if !x.QueryMonotoneClamped && math.Abs(clamp01(x.RawQuery)-e.Query) > 1e-9 {
					t.Fatalf("at %v: displayed %v != clamped raw %v", s.At, e.Query, x.RawQuery)
				}
				if x.Query != e.Query {
					t.Fatalf("explanation query %v != estimate query %v", x.Query, e.Query)
				}
			}
		})
	}
}

func TestExplainRecordsSourcesAndMembership(t *testing.T) {
	f := newFixture(t)
	p, tr := f.trace(t, joinPlan(f), nil)
	est := NewEstimator(p, f.cat, LQSOptions())
	mid := tr.Snapshots[len(tr.Snapshots)/2]
	x, e := est.Explain(mid)

	srcSeen := map[NSource]bool{}
	for _, term := range x.Terms {
		srcSeen[term.Source] = true
		if term.N != e.N[term.NodeID] {
			t.Fatalf("node %d: term N %v != estimate N %v", term.NodeID, term.N, e.N[term.NodeID])
		}
		if term.K != mid.Op(term.NodeID).ActualRows {
			t.Fatalf("node %d: term K %v != snapshot k %v", term.NodeID, term.K, mid.Op(term.NodeID).ActualRows)
		}
		if term.Op != e.Op[term.NodeID] {
			t.Fatalf("node %d: term Op %v != estimate %v", term.NodeID, term.Op, e.Op[term.NodeID])
		}
		if term.Bounds.UB <= 0 {
			t.Fatalf("node %d: no bound recorded under Options.Bound", term.NodeID)
		}
	}
	// Whole-object scans are catalog-exact or closed by mid-query.
	if !srcSeen[SrcCatalogExact] && !srcSeen[SrcClosedExact] {
		t.Fatalf("no exact source recorded: %v", srcSeen)
	}
	// Each pipeline's driver set is reflected on the terms.
	drivers := 0
	for _, term := range x.Terms {
		if term.Driver {
			drivers++
		}
	}
	if drivers == 0 {
		t.Fatal("no driver membership recorded")
	}
}

func TestExplainMatchesPlainEstimate(t *testing.T) {
	// Explain must not perturb the estimate: a fresh estimator explaining
	// every snapshot yields the same Query series as one that estimates.
	f := newFixture(t)
	p, tr := f.trace(t, joinPlan(f), nil)
	plain := NewEstimator(p, f.cat, LQSOptions())
	explained := NewEstimator(p, f.cat, LQSOptions())
	for _, s := range append(tr.Snapshots, tr.Final) {
		want := plain.Estimate(s)
		x, got := explained.Explain(s)
		if got.Query != want.Query {
			t.Fatalf("at %v: explained query %v != plain %v", s.At, got.Query, want.Query)
		}
		for i := range want.N {
			if got.N[i] != want.N[i] {
				t.Fatalf("at %v node %d: explained N %v != plain %v", s.At, i, got.N[i], want.N[i])
			}
		}
		_ = x
	}
}

func TestExplainMonotoneClampRecorded(t *testing.T) {
	f := newFixture(t)
	p, tr := f.trace(t, joinPlan(f), nil)
	if len(tr.Snapshots) < 4 {
		t.Skip("trace too short to replay out of order")
	}
	est := NewEstimator(p, f.cat, LQSOptions())
	late := tr.Snapshots[len(tr.Snapshots)-1]
	early := tr.Snapshots[0]
	if _, e := est.Explain(late); e.Query == 0 {
		t.Fatal("late snapshot shows zero progress")
	}
	// Replaying an early (stale) snapshot must clamp and say so.
	x, e := est.Explain(early)
	if !x.QueryMonotoneClamped {
		t.Fatal("stale replay did not record a monotone clamp")
	}
	if e.Query < x.RawQuery {
		t.Fatal("clamped query below raw value")
	}
}

func TestExplainRender(t *testing.T) {
	f := newFixture(t)
	p, tr := f.trace(t, joinPlan(f), nil)
	est := NewEstimator(p, f.cat, LQSOptions())
	x, _ := est.Explain(tr.Snapshots[len(tr.Snapshots)/2])
	out := x.Render()
	for _, want := range []string{"progress explain @", "mode=weighted", "query=", "src=", "contrib=", "drv"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// One line per operator plus the header.
	if got := strings.Count(out, "\n"); got != len(p.Nodes)+1 {
		t.Fatalf("render has %d lines, want %d", got, len(p.Nodes)+1)
	}
}
