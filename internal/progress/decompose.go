// Package progress is the paper's primary contribution: the client-side
// query and operator progress estimator of Live Query Statistics. It
// consumes only what the real LQS client can see — the plan with optimizer
// estimates, DMV counter snapshots, and catalog metadata — and produces
// per-operator and overall-query progress estimates implementing:
//
//   - the GetNext model of work (§3.1.2),
//   - pipeline decomposition with driver nodes (§3.1.1),
//   - online cardinality refinement (§4.1),
//   - worst-case cardinality bounding (§4.2, Appendix A),
//   - I/O-fraction progress for storage-engine predicates (§4.3),
//   - semi-blocking operator adjustments (§4.4),
//   - the two-phase model for blocking operators (§4.5),
//   - cost-based operator weights with longest-path selection (§4.6),
//   - segment-fraction progress for batch-mode operators (§4.7).
//
// Every technique can be toggled independently through Options, which is
// how the experiment harness reproduces the paper's ablations.
package progress

import (
	"fmt"
	"strings"

	"lqs/internal/plan"
)

// Pipeline is a maximal set of concurrently executing operators (§3.1.1).
// Blocking operators are split into two phases: the input phase tops the
// pipeline that feeds it; the output phase acts as a source of the
// consuming pipeline (this split is also the §4.5 two-phase model).
type Pipeline struct {
	ID int

	// Members are the plan node IDs whose streaming work happens in this
	// pipeline, including the input phases of the blocking operators that
	// top it. It excludes the output phases listed in Sources.
	Members []int

	// InputOf lists blocking node IDs whose input phase tops this
	// pipeline (usually at most one, but sibling build pipelines exist).
	InputOf []int

	// Sources lists blocking node IDs whose *output phase* feeds this
	// pipeline from below; their cardinality becomes exactly known when
	// their input pipeline completes, making them good driver nodes.
	Sources []int

	// Drivers are the driver nodes (§3.1.1): the pipeline's tuple sources
	// — storage leaves and blocking-output sources — excluding leaves on
	// the inner side of nested-loops joins.
	Drivers []int

	// InnerDrivers are the inner-side nested-loops nodes that §4.4's
	// first modification adds to the driver set.
	InnerDrivers []int

	// Children are the pipelines that must complete before (or while)
	// this one runs: build-side and blocking-input pipelines feeding it.
	Children []*Pipeline
}

// Decomposition is the pipeline structure of a plan plus node→pipeline
// lookup tables.
type Decomposition struct {
	Pipelines []*Pipeline
	Root      *Pipeline
	// PipeOf maps a node ID to the pipeline its streaming work runs in
	// (for blocking nodes: the pipeline of the *input* phase).
	PipeOf []int
	// OutPipeOf maps a blocking node ID to the pipeline its output phase
	// feeds (-1 for non-blocking nodes).
	OutPipeOf []int
	// InnerSide[id] is true when the node sits on the inner side of some
	// nested-loops join; OuterOf[id] gives that join's outer child node ID
	// (the immediately enclosing NL).
	InnerSide []bool
	OuterOf   []int
}

// Decompose computes the pipeline structure of a plan.
func Decompose(p *plan.Plan) *Decomposition {
	d := &Decomposition{
		PipeOf:    make([]int, len(p.Nodes)),
		OutPipeOf: make([]int, len(p.Nodes)),
		InnerSide: make([]bool, len(p.Nodes)),
		OuterOf:   make([]int, len(p.Nodes)),
	}
	for i := range d.OutPipeOf {
		d.OutPipeOf[i] = -1
		d.OuterOf[i] = -1
	}
	newPipe := func() *Pipeline {
		pl := &Pipeline{ID: len(d.Pipelines)}
		d.Pipelines = append(d.Pipelines, pl)
		return pl
	}

	var walk func(n *plan.Node, cur *Pipeline, inner bool, outerID int)
	walk = func(n *plan.Node, cur *Pipeline, inner bool, outerID int) {
		d.InnerSide[n.ID] = inner
		d.OuterOf[n.ID] = outerID
		if n.IsBlocking() {
			// Output phase sources `cur`; input phase tops a new pipeline.
			cur.Sources = append(cur.Sources, n.ID)
			d.OutPipeOf[n.ID] = cur.ID
			in := newPipe()
			in.InputOf = append(in.InputOf, n.ID)
			in.Members = append(in.Members, n.ID)
			d.PipeOf[n.ID] = in.ID
			cur.Children = append(cur.Children, in)
			for _, c := range n.Children {
				walk(c, in, inner, outerID)
			}
			return
		}
		cur.Members = append(cur.Members, n.ID)
		d.PipeOf[n.ID] = cur.ID
		switch n.Physical {
		case plan.HashJoin:
			// Probe side streams in this pipeline; the build side is its
			// own pipeline that completes when the join opens.
			build := newPipe()
			cur.Children = append(cur.Children, build)
			walk(n.Children[0], cur, inner, outerID)
			walk(n.Children[1], build, inner, outerID)
		case plan.NestedLoops:
			// Both sides execute concurrently with the join; the inner
			// subtree is excluded from driver-node status (§3.1.1) and
			// marked for the §4.4 adjustments.
			walk(n.Children[0], cur, inner, outerID)
			walk(n.Children[1], cur, true, n.Children[0].ID)
		default:
			for _, c := range n.Children {
				walk(c, cur, inner, outerID)
			}
		}
	}
	d.Root = newPipe()
	walk(p.Root, d.Root, false, -1)

	// Driver nodes: storage/constant leaves outside NL-inner subtrees,
	// plus blocking-output sources. Inner-side leaf-most nodes become
	// InnerDrivers (§4.4 modification 1: "treat the inner side of the
	// join as a driver node as well").
	for _, pl := range d.Pipelines {
		for _, id := range pl.Members {
			n := p.Node(id)
			if !n.IsLeaf() {
				continue
			}
			if d.InnerSide[id] {
				pl.InnerDrivers = append(pl.InnerDrivers, id)
			} else {
				pl.Drivers = append(pl.Drivers, id)
			}
		}
		for _, id := range pl.Sources {
			if d.InnerSide[id] {
				pl.InnerDrivers = append(pl.InnerDrivers, id)
			} else {
				pl.Drivers = append(pl.Drivers, id)
			}
		}
	}
	return d
}

// DriverNodes returns all driver node IDs across pipelines (the
// DriverNodes(Q) of §3.1.1), excluding §4.4 inner drivers.
func (d *Decomposition) DriverNodes() []int {
	var out []int
	for _, pl := range d.Pipelines {
		out = append(out, pl.Drivers...)
	}
	return out
}

// String renders the decomposition for debugging.
func (d *Decomposition) String() string {
	var sb strings.Builder
	for _, pl := range d.Pipelines {
		fmt.Fprintf(&sb, "pipeline %d: members=%v drivers=%v innerDrivers=%v sources=%v inputOf=%v\n",
			pl.ID, pl.Members, pl.Drivers, pl.InnerDrivers, pl.Sources, pl.InputOf)
	}
	return sb.String()
}
