package progress

import (
	"math"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// Estimator computes progress estimates for one query from DMV snapshots.
// It is a pure client-side component: construct it from the plan (with
// optimizer estimates), the catalog (metadata such as table page counts),
// and Options selecting the §4 techniques; then call Estimate on each
// snapshot the poller delivers.
type Estimator struct {
	Plan   *plan.Plan
	Cat    *catalog.Catalog
	Opt    Options
	Decomp *Decomposition

	// hasSemiBelow[id]: a semi-blocking operator (exchange, nested loops)
	// sits between this node and the leaves of its pipeline (§4.4).
	hasSemiBelow []bool

	// prevOp/prevQuery hold the high-water marks enforced when
	// Options.Monotone is set. They are per-estimator state: one estimator
	// monitors one query, matching how the SSMS client holds its own
	// display state per session.
	prevOp    []float64
	prevQuery float64

	// lastRows is the per-(node, thread) counter high-water mark maintained
	// when Options.Degrade is set: the repair pass (degraded.go) fills
	// dropped rows, merges duplicated ones, and lifts stale ones from it.
	lastRows map[threadKey]dmv.OpProfile

	// rec, when non-nil, receives the introspection record of the current
	// Estimate pass (set by Explain); the hot path pays one nil check per
	// recording point.
	rec *Explanation

	// ens holds the §4j ensemble machinery when Options.Ensemble is set:
	// the candidate estimators (sharing one NHints store) and the online
	// selector state. Nil in every other mode.
	ens *ensemble
}

// Estimate is the result of one estimation pass: what LQS displays.
type Estimate struct {
	At sim.Duration
	// Query is overall query progress in [0, 1].
	Query float64
	// Op is per-operator progress in [0, 1], indexed by node ID.
	Op []float64
	// N is the refined (and bounded) cardinality estimate N̂_i per node.
	N []float64
	// Bounds are the Appendix A bounds when Options.Bound is set.
	Bounds []Bounds
	// PipelineProg is per-pipeline progress, indexed by pipeline ID.
	PipelineProg []float64
	// Degraded marks an estimate computed from a degraded snapshot: the
	// poller synthesized it while its breaker was open, or the repair pass
	// had to fix partial/stale/duplicated thread rows. Bounds are widened
	// and progress held monotone on such polls (Options.Degrade).
	Degraded bool
	// DegradeReason says why, for display.
	DegradeReason string
	// Ensemble carries the per-candidate introspection in ensemble mode
	// (Options.Ensemble): candidate progress values, blend weights, the raw
	// blend, and the hysteresis-selected candidate. Nil in other modes.
	Ensemble *EnsembleInfo
}

// NewEstimator builds an estimator for a finalized, cost-estimated plan.
func NewEstimator(p *plan.Plan, cat *catalog.Catalog, opt Options) *Estimator {
	e := &Estimator{Plan: p, Cat: cat, Opt: opt, Decomp: Decompose(p)}
	e.hasSemiBelow = make([]bool, len(p.Nodes))
	var rec func(n *plan.Node) bool // returns whether subtree-in-pipeline has semi-blocking
	rec = func(n *plan.Node) bool {
		has := false
		for i, c := range n.Children {
			// Stop at pipeline boundaries: blocking children and hash-join
			// build sides run in other pipelines.
			if c.IsBlocking() {
				rec(c)
				continue
			}
			if n.Physical == plan.HashJoin && i == 1 {
				rec(c)
				continue
			}
			sub := rec(c)
			if sub || c.IsSemiBlocking() {
				has = true
			}
		}
		e.hasSemiBelow[n.ID] = has
		return has
	}
	rec(p.Root)
	if opt.Ensemble {
		e.ens = newEnsemble(p, cat, opt)
	}
	return e
}

// Estimate computes progress from one DMV snapshot. Per-thread snapshots
// of parallel queries are aggregated to one profile per node first; the
// estimator itself is DOP-oblivious, exactly like the paper's client.
func (e *Estimator) Estimate(snap *dmv.Snapshot) *Estimate {
	prepared, degraded, reason := e.prepare(snap)
	return e.estimateFrom(prepared, degraded, reason)
}

// estimateFrom is the estimation pass proper, running over a snapshot the
// repair pass (prepare) has already vetted. Estimate and Explain both
// funnel through it so the repaired snapshot is the one every intermediate
// reads.
func (e *Estimator) estimateFrom(snap *dmv.Snapshot, degraded bool, reason string) *Estimate {
	if e.ens != nil {
		return e.estimateEnsemble(snap, degraded, reason)
	}
	snap.Aggregate()
	est := &Estimate{
		At:            snap.At,
		Op:            make([]float64, len(e.Plan.Nodes)),
		N:             make([]float64, len(e.Plan.Nodes)),
		Degraded:      degraded,
		DegradeReason: reason,
	}
	if e.Opt.Bound {
		est.Bounds = e.ComputeBounds(snap)
		if degraded {
			// A degraded snapshot's counters are a reconstruction, not an
			// observation; widen the Appendix A bounds so the clamp cannot
			// manufacture false precision from repaired rows.
			widenBounds(est.Bounds)
		}
	}
	e.deriveN(snap, est)
	for _, n := range e.Plan.Nodes {
		est.Op[n.ID] = e.opProgress(snap, est, n)
	}
	est.PipelineProg = make([]float64, len(e.Decomp.Pipelines))
	for _, pl := range e.Decomp.Pipelines {
		est.PipelineProg[pl.ID] = e.pipelineProgress(snap, est, pl)
	}
	switch {
	case e.Opt.Weighted:
		est.Query = e.weightedQueryProgress(snap, est)
	case e.Opt.DriverNodeQuery:
		est.Query = e.driverQueryProgress(snap, est)
	default:
		est.Query = e.tgnQueryProgress(snap, est)
	}
	est.Query = clamp01(est.Query)
	switch {
	case e.Opt.Monotone, e.Opt.Degrade && degraded:
		// Degraded polls are forced monotone even in ablation modes that
		// leave Monotone off: holding last-good progress is the degradation
		// contract, not a display preference.
		e.enforceMonotone(est, true)
	case e.Opt.Degrade:
		// Track the high-water marks without clamping, so a later degraded
		// poll holds against the true history.
		e.enforceMonotone(est, false)
	}
	return est
}

// enforceMonotone clamps each operator's and the query's displayed progress
// to its high-water mark across polls. Refinement legitimately revises
// cardinalities upward mid-flight (shrinking k/N̂), and stale snapshots can
// be replayed out of order; neither may move a progress bar backwards. With
// clamp false only the high-water marks are updated (degraded-mode
// bookkeeping on healthy polls when Monotone is off).
func (e *Estimator) enforceMonotone(est *Estimate, clamp bool) {
	if e.prevOp == nil {
		e.prevOp = make([]float64, len(e.Plan.Nodes))
	}
	for i := range est.Op {
		est.Op[i] = clamp01(est.Op[i])
		if i >= len(e.prevOp) {
			continue
		}
		if clamp && est.Op[i] < e.prevOp[i] {
			est.Op[i] = e.prevOp[i]
			if e.rec != nil && i < len(e.rec.Terms) {
				e.rec.Terms[i].MonotoneClamped = true
			}
		}
		if est.Op[i] > e.prevOp[i] {
			e.prevOp[i] = est.Op[i]
		}
	}
	if clamp && est.Query < e.prevQuery {
		est.Query = e.prevQuery
		if e.rec != nil {
			e.rec.QueryMonotoneClamped = true
		}
	}
	if est.Query > e.prevQuery {
		e.prevQuery = est.Query
	}
}

// deriveN fills est.N: the N̂_i of Equation 2, refined (§4.1, §4.4) and
// bounded (§4.2) according to Options. The tree is processed postorder
// with the outer child first, so child and outer-side estimates are
// available when a node needs them.
func (e *Estimator) deriveN(snap *dmv.Snapshot, est *Estimate) {
	alphaMemo := make(map[int]float64)
	var process func(n *plan.Node)
	process = func(n *plan.Node) {
		for _, c := range n.Children {
			process(c)
		}
		est.N[n.ID] = e.nodeN(snap, est, n, alphaMemo)
		if e.Opt.Bound {
			before := est.N[n.ID]
			est.N[n.ID] = est.Bounds[n.ID].Clamp(before)
			e.noteBound(n.ID, est.Bounds[n.ID], before, est.N[n.ID])
		}
		// A degenerate optimizer estimate (NaN/Inf from a pathological
		// selectivity product, or negative from bad stats) would poison
		// every downstream division; pin it to a sane floor instead.
		if v := est.N[n.ID]; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			if fb := n.EstRows; fb > 0 && !math.IsNaN(fb) && !math.IsInf(fb, 0) {
				est.N[n.ID] = fb
			} else {
				est.N[n.ID] = 0
			}
		}
	}
	process(e.Plan.Root)
}

// tableRowCount is the tolerant catalog lookup used throughout the monitor
// path. A client may hold a catalog that predates or postdates the plan it
// is watching (the table dropped, renamed, or simply absent from a stale
// metadata cache); per the hardening contract the estimator must degrade —
// fall back to optimizer estimates — never crash the monitor.
func (e *Estimator) tableRowCount(name string) (float64, bool) {
	if e.Cat == nil {
		return 0, false
	}
	t := e.Cat.Table(name)
	if t == nil {
		return 0, false
	}
	return float64(t.RowCount), true
}

// knownLeafTotal returns the exactly-known total output of a leaf, or
// (0, false) when the leaf's total is only an estimate. Plain scans of a
// whole object are the canonical case (§3.1.1: "cardinalities of driver
// nodes are typically known exactly").
func (e *Estimator) knownLeafTotal(n *plan.Node) (float64, bool) {
	switch n.Physical {
	case plan.ConstantScan:
		return float64(len(n.ConstRows)), true
	case plan.TableScan, plan.ClusteredIndexScan, plan.IndexScan, plan.ColumnstoreIndexScan:
		if n.Pred == nil && !n.HasStoragePred() {
			if size, ok := e.tableRowCount(n.Table); ok {
				return size, true
			}
		}
	}
	return 0, false
}

// nodeN computes one node's N̂.
func (e *Estimator) nodeN(snap *dmv.Snapshot, est *Estimate, n *plan.Node, alphaMemo map[int]float64) float64 {
	op := snap.Op(n.ID)
	k := float64(op.ActualRows)

	if e.Opt.Refine && op.Closed {
		// Completed operators have exactly-known cardinality.
		e.note(n.ID, SrcClosedExact, 0)
		return k
	}

	// Exactly-known leaf totals are available to the client from catalog
	// metadata whether or not refinement is on (and match the optimizer
	// estimate in any case); inner-side leaves rebind, so only their
	// per-execution count is known and the total stays an estimate.
	if total, ok := e.knownLeafTotal(n); ok && !e.Decomp.InnerSide[n.ID] {
		e.note(n.ID, SrcCatalogExact, 0)
		return total
	}

	if !e.Opt.Refine {
		return e.fallbackN(n)
	}

	// Algebraic identities: pass-through operators output exactly their
	// input, so a refined child propagates upward for free.
	switch n.Physical {
	case plan.ComputeScalar, plan.SegmentOp, plan.BitmapCreate, plan.Exchange:
		e.note(n.ID, SrcChild, 0)
		return est.N[n.Children[0].ID]
	case plan.Sort:
		e.note(n.ID, SrcChild, 0)
		return est.N[n.Children[0].ID]
	case plan.TopNSort:
		e.note(n.ID, SrcChild, 0)
		return math.Min(float64(n.TopN), est.N[n.Children[0].ID])
	case plan.TableSpool:
		if !e.Decomp.InnerSide[n.ID] {
			e.note(n.ID, SrcChild, 0)
			return est.N[n.Children[0].ID]
		}
	case plan.Concatenation:
		sum := 0.0
		for _, c := range n.Children {
			sum += est.N[c.ID]
		}
		e.note(n.ID, SrcChild, 0)
		return sum
	case plan.RIDLookup:
		if n.Pred == nil {
			e.note(n.ID, SrcChild, 0)
			return est.N[n.Children[0].ID]
		}
	case plan.HashAggregate, plan.StreamAggregate, plan.DistinctSort:
		// Aggregate outputs are unobservable until the input is done;
		// keep the optimizer estimate (bounds clamp it) — unless §7(a)
		// propagation is on, which rescales the group estimate by the
		// observed refinement of the input.
		if e.Opt.PropagateRefined {
			e.note(n.ID, SrcPropagated, 0)
			return e.propagatedEstimate(est, n)
		}
		return e.fallbackN(n)
	}

	pl := e.Decomp.Pipelines[e.Decomp.PipeOf[n.ID]]
	if !e.pipelineStarted(snap, pl) {
		// Nodes in not-yet-started pipelines have no observations of
		// their own; §7(a) propagation carries their inputs' refinements
		// across the pipeline boundary.
		if e.Opt.PropagateRefined {
			e.note(n.ID, SrcPropagated, 0)
			return e.propagatedEstimate(est, n)
		}
		return e.fallbackN(n)
	}
	if !e.refineGuardsOK(snap, n) {
		return e.fallbackN(n)
	}

	// Leaf scans with filters refine from their own I/O or segment
	// fraction (the observable that tracks how much of the object has
	// been read) — never from pipeline α, which for a driver node would
	// be its own progress and collapse N̂ to k.
	if n.IsLeaf() && !e.Decomp.InnerSide[n.ID] {
		var frac float64
		switch {
		case n.BatchMode && op.SegmentsTotal > 0:
			frac = float64(op.SegmentsProcessed) / float64(op.SegmentsTotal)
		case op.PagesTotal > 0:
			frac = float64(op.LogicalReads) / float64(op.PagesTotal)
		}
		if frac > 1e-9 {
			e.note(n.ID, SrcIOFraction, math.Min(frac, 1))
			return k / math.Min(frac, 1)
		}
		return e.fallbackN(n)
	}

	// §4.4(3): inner-side nodes scale their average rows per execution by
	// the outer side's total cardinality.
	if e.Decomp.InnerSide[n.ID] && e.Opt.SemiBlocking {
		outerID := e.Decomp.OuterOf[n.ID]
		rebinds := math.Max(float64(op.Rebinds), 1)
		// The effective scale-up is the outer side's progress in rebinds.
		e.note(n.ID, SrcRebindScaled, clamp01(rebinds/math.Max(est.N[outerID], 1)))
		return (k / rebinds) * math.Max(est.N[outerID], 1)
	}

	// Choose the scale-up factor α (Fig. 9): driver progress by default;
	// the immediate children's progress when a semi-blocking operator
	// separates this node from the pipeline's leaves (§4.4(2)).
	var alpha float64
	src := SrcPipelineAlpha
	if e.Opt.SemiBlocking && (e.hasSemiBelow[n.ID] || n.IsSemiBlocking()) && len(n.Children) > 0 {
		alpha = e.childProgress(snap, est, n)
		src = SrcChildAlpha
	} else {
		alpha = e.pipelineAlpha(snap, est, pl, alphaMemo)
	}
	if alpha <= 1e-9 {
		return e.fallbackN(n)
	}
	if alpha > 1 {
		alpha = 1
	}
	if e.Opt.InterpRefine {
		// Prior-work linear interpolation [22]: converges slowly when the
		// initial estimate is grossly wrong (§4.1's critique).
		e.note(n.ID, SrcInterpolated, alpha)
		return k + (1-alpha)*n.EstRows
	}
	e.note(n.ID, src, alpha)
	return k / alpha
}

// fallbackN is nodeN's optimizer-estimate fallback, upgraded to the
// ensemble's shared refined-N̂ hint when one exists (§4j): every candidate
// that would otherwise return the raw estimate reads the same mid-flight
// refinement, so observed-selectivity corrections reach candidates (TGN,
// DNE) whose own rule set never refines — and reach the LQS candidate at
// the points its rules leave unrefined (aggregates, unstarted pipelines).
// Outside ensemble mode NHints is nil and this is exactly the old fallback.
func (e *Estimator) fallbackN(n *plan.Node) float64 {
	if v, ok := e.Opt.NHints.For(n.ID); ok {
		e.note(n.ID, SrcSharedHint, 0)
		return v
	}
	e.note(n.ID, SrcOptimizer, 0)
	return n.EstRows
}

// propagatedEstimate implements §7 future-work item (a): scale a node's
// optimizer estimate by the observed refinement ratio of its inputs, so
// runtime corrections cross pipeline boundaries instead of stopping at
// blocking operators. The ratio is clamped to two orders of magnitude —
// far-field propagation compounds uncertainty.
func (e *Estimator) propagatedEstimate(est *Estimate, n *plan.Node) float64 {
	if len(n.Children) == 0 {
		return n.EstRows
	}
	var nhat, nopt float64
	for _, c := range n.Children {
		nhat += math.Max(est.N[c.ID], 1)
		nopt += math.Max(c.EstRows, 1)
	}
	// Aggregates don't scale linearly with input: group counts are the
	// distinct-value estimate re-capped by the refined input (the
	// optimizer capped it by the *wrong* input).
	switch n.Physical {
	case plan.HashAggregate, plan.StreamAggregate, plan.DistinctSort:
		dv := n.EstDistinct
		if dv <= 0 {
			dv = n.EstRows
		}
		return math.Max(math.Min(dv, nhat), 1)
	}
	ratio := nhat / math.Max(nopt, 1)
	if ratio < 0.01 {
		ratio = 0.01
	}
	if ratio > 100 {
		ratio = 100
	}
	return n.EstRows * ratio
}

// childProgress is the Fig. 9 right-hand scheme: α from the immediate
// children. For nested loops, the outer child's consumed count is its
// rebind-adjusted value — buffered-but-unprocessed outer rows don't count
// (§4.4(3)).
func (e *Estimator) childProgress(snap *dmv.Snapshot, est *Estimate, n *plan.Node) float64 {
	children := n.Children
	if n.Physical == plan.HashJoin {
		// The build child completed before probing began (it is another
		// pipeline); only the probe child's progress tracks the join's
		// streaming output.
		children = n.Children[:1]
	}
	var kSum, nSum float64
	for i, c := range children {
		k := float64(snap.Op(c.ID).ActualRows)
		if n.Physical == plan.NestedLoops && i == 0 {
			// Rows actually consumed from the outer buffer = inner rebinds.
			k = float64(snap.Op(n.Children[1].ID).Rebinds)
		}
		kSum += k
		nSum += math.Max(est.N[c.ID], 1)
	}
	if nSum <= 0 {
		return 0
	}
	return kSum / nSum
}

// pipelineAlpha is Equation 3: Σ k_d / Σ N_d over the pipeline's driver
// nodes, with per-driver progress generalized for storage-predicate scans
// (I/O fraction, §4.3) and batch-mode scans (segment fraction, §4.7).
// §4.4(1) adds inner-side drivers when SemiBlocking is on.
func (e *Estimator) pipelineAlpha(snap *dmv.Snapshot, est *Estimate, pl *Pipeline, memo map[int]float64) float64 {
	if a, ok := memo[pl.ID]; ok {
		return a
	}
	drivers := pl.Drivers
	if e.Opt.SemiBlocking {
		// Drivers and InnerDrivers are disjoint by construction — no α term
		// is double-counted (pinned by TestDriverSetsDisjointInvariant).
		drivers = append(append([]int{}, drivers...), pl.InnerDrivers...)
	}
	var num, den float64
	for _, id := range drivers {
		n := e.Plan.Node(id)
		total := math.Max(est.N[id], 1)
		prog := e.driverProgress(snap, est, n)
		num += prog * total
		den += total
	}
	a := 0.0
	if den > 0 {
		a = num / den
	}
	memo[pl.ID] = a
	return a
}

// driverProgress estimates one driver node's own progress fraction.
func (e *Estimator) driverProgress(snap *dmv.Snapshot, est *Estimate, n *plan.Node) float64 {
	op := snap.Op(n.ID)
	if op.Closed {
		return 1
	}
	if e.Opt.BatchMode && n.BatchMode && op.SegmentsTotal > 0 {
		return clamp01(float64(op.SegmentsProcessed) / float64(op.SegmentsTotal))
	}
	if e.Opt.StoragePredIO && n.HasStoragePred() && op.PagesTotal > 0 {
		return clamp01(float64(op.LogicalReads) / float64(op.PagesTotal))
	}
	total := math.Max(est.N[n.ID], 1)
	return clamp01(float64(op.ActualRows) / total)
}

// pipelineStarted reports whether any member of the pipeline has opened,
// or a blocking-output source feeding it has begun emitting.
func (e *Estimator) pipelineStarted(snap *dmv.Snapshot, pl *Pipeline) bool {
	for _, id := range pl.Members {
		if snap.Op(id).Opened {
			return true
		}
	}
	for _, id := range pl.Sources {
		op := snap.Op(id)
		if op.ActualRows > 0 || op.Closed {
			return true
		}
	}
	return false
}

// pipelineDone reports whether every member of the pipeline has closed or
// finished its streaming role. Blocking tops count as done once their
// input is consumed (their output phase belongs to the parent pipeline).
func (e *Estimator) pipelineDone(snap *dmv.Snapshot, pl *Pipeline) bool {
	for _, id := range pl.Members {
		op := snap.Op(id)
		n := e.Plan.Node(id)
		if n.IsBlocking() {
			// The input phase is done when all children closed — plus, with
			// the §7 counters, any internal phase must have finished too.
			for _, c := range n.Children {
				if !snap.Op(c.ID).Closed {
					return false
				}
			}
			if e.Opt.InternalCounters && op.InternalDone < op.InternalTotal {
				return false
			}
			continue
		}
		if !op.Closed {
			return false
		}
	}
	for _, id := range pl.Sources {
		if !snap.Op(id).Closed {
			return false
		}
	}
	return e.pipelineStarted(snap, pl)
}

// refineGuardsOK implements the §4.1 guard conditions: a minimum number of
// observed tuples on every input, and — for filters and joins — having
// observed both qualifying and non-qualifying tuples (approximated from
// the counters the DMV exposes).
func (e *Estimator) refineGuardsOK(snap *dmv.Snapshot, n *plan.Node) bool {
	min := e.Opt.minRefine()
	op := snap.Op(n.ID)
	var inputK int64
	for _, c := range n.Children {
		ck := snap.Op(c.ID).ActualRows
		if ck < min {
			return false
		}
		inputK += ck
	}
	if len(n.Children) == 0 {
		if op.ActualRows < min {
			return false
		}
		return true
	}
	switch n.Physical {
	case plan.Filter:
		// Must have seen rows pass and rows fail.
		return op.ActualRows >= 1 && op.ActualRows < inputK
	case plan.HashJoin, plan.MergeJoin, plan.NestedLoops:
		return op.ActualRows >= 1
	}
	return true
}

// opProgress is the per-operator progress LQS displays under each node
// (§3.2): Prog(o) = k/N̂ in the base GetNext model, with the §4.3, §4.5,
// and §4.7 models substituted where they apply. Estimates are capped at
// 99% until the operator actually closes — matching the paper's
// observation (Fig. 4) that a wrong estimate parks at 99% rather than
// falsely reporting completion.
func (e *Estimator) opProgress(snap *dmv.Snapshot, est *Estimate, n *plan.Node) float64 {
	op := snap.Op(n.ID)
	if op.Closed {
		return 1
	}
	if !op.Opened {
		return 0
	}
	if e.Opt.BatchMode && n.BatchMode && op.SegmentsTotal > 0 {
		return capRunning(float64(op.SegmentsProcessed) / float64(op.SegmentsTotal))
	}
	if e.Opt.StoragePredIO && n.HasStoragePred() && op.PagesTotal > 0 {
		return capRunning(float64(op.LogicalReads) / float64(op.PagesTotal))
	}
	k := float64(op.ActualRows)
	total := math.Max(est.N[n.ID], 1)
	if e.Opt.TwoPhaseBlocking && n.IsBlocking() && len(n.Children) > 0 {
		// Fig. 10's two-phase model: (K_in + K_out) / (N_in + N_out).
		var kin, nin float64
		for _, c := range n.Children {
			kin += float64(snap.Op(c.ID).ActualRows)
			nin += math.Max(est.N[c.ID], 1)
		}
		// §7 extension: the engine's internal-state counters add a third,
		// cost-weighted phase between input and output (a spilled sort's
		// merge passes). Internal work is expressed in input-row cost
		// equivalents (predicted by the cost model, advanced by the
		// engine's counters) and output rows are weighted by their
		// relative cost, so phase progress stays proportional to time —
		// the "more intricate model" the paper's §7 calls for.
		if e.Opt.InternalCounters {
			wout := n.EstOutWeight
			if wout <= 0 {
				wout = 1
			}
			itotalEq := math.Max(n.EstInternalRows, 0)
			var idoneEq float64
			if op.InternalTotal > 0 {
				idoneEq = itotalEq * float64(op.InternalDone) / float64(op.InternalTotal)
			}
			return capRunning((kin + idoneEq + k*wout) / (nin + itotalEq + total*wout))
		}
		return capRunning((kin + k) / (nin + total))
	}
	return capRunning(k / total)
}

// pipelineProgress estimates a pipeline's progress: the weighted GetNext
// sum over its members when estimates exist, 1 when complete, 0 before it
// starts.
func (e *Estimator) pipelineProgress(snap *dmv.Snapshot, est *Estimate, pl *Pipeline) float64 {
	if e.pipelineDone(snap, pl) {
		return 1
	}
	if !e.pipelineStarted(snap, pl) {
		return 0
	}
	var num, den float64
	for _, id := range pl.Members {
		n := e.Plan.Node(id)
		k, total := e.termFor(snap, est, n)
		if total <= 0 {
			continue
		}
		w := 1.0
		if e.Opt.Weighted {
			// Per-row cost estimates are per OUTPUT row while the term
			// counts work-driving (input-side) rows; rescale so the
			// term's total weight (w·total) equals the node's duration
			// contribution (nodeWeight · N̂), keeping pipeline progress
			// consistent with pipeline duration.
			w = e.nodeWeight(n) * math.Max(est.N[n.ID], 1) / total
		}
		num += w * k
		den += w * total
	}
	// Blocking-output sources emitting into this pipeline.
	for _, id := range pl.Sources {
		n := e.Plan.Node(id)
		w := 1.0
		if e.Opt.Weighted {
			w = outWeight(n)
		}
		num += w * float64(snap.Op(id).ActualRows)
		den += w * math.Max(est.N[id], 1)
	}
	if den <= 0 {
		return 0
	}
	return capRunning(num / den)
}

// termFor returns the (k, N) pair tracking a node's *work* within its
// pipeline. An operator's work is driven by the rows it consumes, not the
// rows it outputs — a selective join or filter does almost all of its work
// before output appears — so interior nodes contribute input-side counts
// (for blocking operators this is exactly the §4.5 input phase). Leaves
// contribute their output count, or their I/O / segment fraction when
// §4.3/§4.7 apply. For nested loops the outer child's consumed count is
// its rebind-adjusted value: buffered-but-unprobed rows are not yet work.
func (e *Estimator) termFor(snap *dmv.Snapshot, est *Estimate, n *plan.Node) (float64, float64) {
	op := snap.Op(n.ID)
	if len(n.Children) > 0 {
		var kin, nin float64
		for i, c := range n.Children {
			ck := float64(snap.Op(c.ID).ActualRows)
			if n.Physical == plan.NestedLoops && i == 0 && e.Opt.SemiBlocking {
				ck = float64(snap.Op(n.Children[1].ID).Rebinds)
			}
			kin += ck
			nin += math.Max(est.N[c.ID], 1)
		}
		if e.Opt.InternalCounters && n.IsBlocking() && n.EstInternalRows > 0 {
			// §7 counters: a spilled sort's merge work (in input-row cost
			// equivalents, advanced by the engine's counters) is part of
			// this operator's input-pipeline contribution.
			if op.InternalTotal > 0 {
				kin += n.EstInternalRows * float64(op.InternalDone) / float64(op.InternalTotal)
			}
			nin += n.EstInternalRows
		}
		return kin, nin
	}
	// §4.3/§4.7 leaves: convert their native progress into k/N form.
	if (e.Opt.BatchMode && n.BatchMode && op.SegmentsTotal > 0) ||
		(e.Opt.StoragePredIO && n.HasStoragePred() && op.PagesTotal > 0) {
		total := math.Max(est.N[n.ID], 1)
		return e.driverProgress(snap, est, n) * total, total
	}
	return float64(op.ActualRows), math.Max(est.N[n.ID], 1)
}

func clamp01(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// capRunning caps a still-running operator's progress at 99%.
func capRunning(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > 0.99 {
		return 0.99
	}
	return f
}
