package progress

import (
	"math"
	"testing"
	"time"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/expr"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

func TestFeedbackObserveAndWeight(t *testing.T) {
	f := newFixture(t)
	root, _ := misestimatedFilterPlan(f)
	p, tr := f.trace(t, root, nil)
	fb := NewFeedback()
	if fb.Observations() != 0 {
		t.Fatal("fresh feedback not empty")
	}
	fb.Observe(p, tr)
	if fb.Observations() == 0 {
		t.Fatal("observe recorded nothing")
	}
	// A scan's observed weight should be in the ballpark of its actual
	// per-row cost: total op time / rows.
	scan := p.Nodes[2] // sort(0) <- filter(1) <- scan(2)
	if scan.Physical != plan.TableScan {
		t.Fatalf("fixture shape changed: node 2 is %v", scan.Physical)
	}
	w, ok := fb.Weight(scan)
	if !ok || w <= 0 {
		t.Fatalf("no weight for scan: %v %v", w, ok)
	}
	actual := float64(tr.Final.Op(scan.ID).CPUTime+tr.Final.Op(scan.ID).IOTime) /
		float64(tr.Final.Op(scan.ID).ActualRows)
	if math.Abs(w-actual)/actual > 1e-9 {
		t.Fatalf("weight %v != observed %v", w, actual)
	}
	// Unknown operator types report no observation.
	other := f.b.ExchangeNode(f.b.TableScan("dim", nil, nil), plan.GatherStreams)
	if _, ok := fb.Weight(other); ok {
		t.Fatal("weight reported for unobserved operator class")
	}
}

func TestWeightFeedbackImprovesErrortime(t *testing.T) {
	// §7(b): calibrate weights on one execution, estimate a second
	// identical execution — time correlation must improve on a plan whose
	// cost-model weights are systematically wrong (cached seeks).
	f := newFixture(t)
	mk := func() *plan.Node {
		outer := f.b.TableScan("dim", nil, nil)
		inner := f.b.SeekEq("fact", "ix_dim", []expr.Expr{expr.C(0, "dim.id")}, nil)
		nl := f.b.NestedLoopsNode(plan.LogicalInnerJoin, outer, inner, nil)
		return f.b.HashAgg(nl, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	}
	// Pass 1: collect feedback.
	p1, tr1 := f.trace(t, mk(), nil)
	fb := NewFeedback()
	fb.Observe(p1, tr1)
	// Pass 2: same query, warm pool (trace uses ColdStart, so identical).
	p2, tr2 := f.trace(t, mk(), nil)
	base := LQSOptions()
	calibrated := LQSOptions()
	calibrated.WeightFeedback = fb
	timeErr := func(o Options) float64 {
		est := NewEstimator(p2, f.cat, o)
		var sum float64
		for _, s := range tr2.Snapshots {
			frac := float64(s.At-tr2.StartedAt) / float64(tr2.EndedAt-tr2.StartedAt)
			sum += math.Abs(est.Estimate(s).Query - frac)
		}
		return sum / float64(len(tr2.Snapshots))
	}
	eBase, eCal := timeErr(base), timeErr(calibrated)
	if eCal >= eBase {
		t.Fatalf("feedback did not improve time correlation: %v vs %v", eCal, eBase)
	}
}

func TestPropagateRefinedCrossesPipelineBoundary(t *testing.T) {
	f := newFixture(t)
	// scan -> filter (underestimated 50x) -> hashagg -> NL(aggout, seek):
	// the post-aggregate pipeline's estimates depend on the filter's.
	fl := f.b.Filter(f.b.TableScan("fact", nil, nil), expr.Lt(expr.C(2, "cat"), expr.KInt(10)))
	agg := f.b.HashAgg(fl, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	root := f.b.Sort(agg, []int{1}, []bool{true})
	inject := func(n *plan.Node) float64 {
		if n == fl {
			return 0.02
		}
		return 1
	}
	p, tr := f.trace(t, root, inject)
	// Mid-execution of the first pipeline: the filter's N̂ has refined,
	// but the aggregate's output estimate hasn't been observed yet.
	var mid int
	for i, s := range tr.Snapshots {
		if s.Op(fl.ID).ActualRows > 500 && !s.Op(fl.ID).Closed {
			mid = i
			break
		}
	}
	if mid == 0 {
		t.Skip("no usable mid-pipeline snapshot")
	}
	s := tr.Snapshots[mid]
	plain := NewEstimator(p, f.cat, Options{Refine: true, MinRefineRows: 16}).Estimate(s)
	prop := NewEstimator(p, f.cat, func() Options {
		o := Options{Refine: true, MinRefineRows: 16, PropagateRefined: true}
		return o
	}()).Estimate(s)
	trueAgg := float64(tr.TrueRows[agg.ID])
	if math.Abs(prop.N[agg.ID]-trueAgg) >= math.Abs(plain.N[agg.ID]-trueAgg) {
		t.Fatalf("propagation did not improve the aggregate estimate: plain %v prop %v true %v",
			plain.N[agg.ID], prop.N[agg.ID], trueAgg)
	}
	// The sort above the aggregate (next pipeline) inherits the improvement.
	if math.Abs(prop.N[root.ID]-float64(tr.TrueRows[root.ID])) >
		math.Abs(plain.N[root.ID]-float64(tr.TrueRows[root.ID])) {
		t.Fatal("propagation regressed the downstream sort estimate")
	}
}

func TestInternalCountersImproveSpilledSortProgress(t *testing.T) {
	// §7 item 1: a spilled sort's merge phase is invisible to the GetNext
	// model; the extended internal-state counters (with cost-weighted
	// phases) restore time-proportional progress.
	f := newFixture(t)
	srt := f.b.Sort(f.b.TableScan("fact", nil, nil), []int{3}, []bool{true})
	p := plan.Finalize(srt)
	cm := opt.DefaultCostModel()
	cm.SortMemoryRows = 1024 // 20000 rows → spill with multiple passes
	oe := opt.NewEstimator(f.cat)
	oe.CM = cm
	oe.Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 200*time.Microsecond)
	f.db.ColdStart()
	q := exec.NewQuery(p, f.db, cm, clock)
	poller.Register(q)
	q.Run()
	tr := poller.Finish(q)
	if tr.Final.Op(srt.ID).InternalTotal == 0 {
		t.Fatal("sort did not spill; fixture too small")
	}

	twoPhase := LQSOptions()
	withInternal := LQSOptions()
	withInternal.InternalCounters = true
	opErr := func(o Options) float64 {
		est := NewEstimator(p, f.cat, o)
		fop := tr.Final.Op(srt.ID)
		opened := fop.OpenedAt
		if fop.FirstActive && fop.FirstActiveAt > opened {
			opened = fop.FirstActiveAt
		}
		var sum float64
		n := 0
		for _, s := range tr.Snapshots {
			if s.At < opened || s.At > fop.ClosedAt {
				continue
			}
			truth := float64(s.At-opened) / float64(fop.ClosedAt-opened)
			sum += math.Abs(est.Estimate(s).Op[srt.ID] - truth)
			n++
		}
		if n == 0 {
			t.Fatal("no in-window samples")
		}
		return sum / float64(n)
	}
	base, internal := opErr(twoPhase), opErr(withInternal)
	if internal >= base {
		t.Fatalf("internal counters did not improve sort progress: %v vs %v", internal, base)
	}
}
