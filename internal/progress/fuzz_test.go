package progress

// Native fuzz target for the estimator: arbitrary byte streams are decoded
// into sequences of DMV snapshots — stale timestamps, zeroed counters,
// out-of-order polls, per-thread skew, lifecycle flags that contradict the
// counters, observed rows far beyond any estimate — and fed through every
// query-progress mode. The estimator is a display client: whatever the
// server reports, it must neither panic nor emit anything outside [0, 1].
// The seed corpus includes encodings of real captures from a parallel run,
// so mutation starts from the shapes a healthy server actually produces.

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// fuzzRecordLen is the decoded size of one per-thread profile row:
// node(1) thread(1) flags(1) at(1) rows(4) cpu(4) reads(4).
const fuzzRecordLen = 16

const (
	fuzzFlagOpened      = 1 << 0
	fuzzFlagClosed      = 1 << 1
	fuzzFlagFirstActive = 1 << 2
	// fuzzFlagDegraded marks the snapshot under construction as degraded —
	// a poller-synthesized or repaired capture — so fuzz trajectories
	// exercise the degradation paths (frozen ensemble selector, widened
	// bounds, forced monotone holds).
	fuzzFlagDegraded = 1 << 3
	// fuzzFlagFlush ends the snapshot under construction, so one input can
	// encode a whole poll sequence (including out-of-order ones).
	fuzzFlagFlush = 1 << 6
)

// decodeSnapshots turns fuzz bytes into a poll sequence. Counters are
// clamped non-negative — the DMV never reports negative work — but
// everything else (ordering, skew, magnitude, lifecycle consistency) is
// attacker-controlled.
func decodeSnapshots(data []byte, numNodes int) []*dmv.Snapshot {
	var out []*dmv.Snapshot
	cur := &dmv.Snapshot{NumNodes: numNodes}
	for len(data) >= fuzzRecordLen {
		rec := data[:fuzzRecordLen]
		data = data[fuzzRecordLen:]
		flags := rec[2]
		cur.Threads = append(cur.Threads, dmv.OpProfile{
			NodeID:       int(rec[0]) % (numNodes + 2), // occasionally out of range
			ThreadID:     int(rec[1] % 8),
			Opened:       flags&fuzzFlagOpened != 0,
			Closed:       flags&fuzzFlagClosed != 0,
			FirstActive:  flags&fuzzFlagFirstActive != 0,
			ActualRows:   int64(binary.LittleEndian.Uint32(rec[4:])),
			CPUTime:      sim.Duration(binary.LittleEndian.Uint32(rec[8:])),
			LogicalReads: int64(binary.LittleEndian.Uint32(rec[12:])),
			OpenedAt:     sim.Duration(rec[3]),
			LastActive:   sim.Duration(rec[3]) + sim.Duration(rec[1]),
		})
		cur.At = sim.Duration(rec[3]) * sim.Duration(time.Millisecond)
		if flags&fuzzFlagDegraded != 0 {
			cur.Degraded = true
			cur.DegradeReason = "fuzz"
		}
		if flags&fuzzFlagFlush != 0 {
			out = append(out, cur)
			cur = &dmv.Snapshot{NumNodes: numNodes}
		}
	}
	if len(cur.Threads) > 0 {
		out = append(out, cur)
	}
	return out
}

// encodeSnapshots is decodeSnapshots' inverse for corpus seeding: real
// captures round-trip into the fuzz byte format.
func encodeSnapshots(snaps []*dmv.Snapshot) []byte {
	var out []byte
	for _, s := range snaps {
		for i, tr := range s.Threads {
			rec := make([]byte, fuzzRecordLen)
			rec[0] = byte(tr.NodeID)
			rec[1] = byte(tr.ThreadID)
			var flags byte
			if tr.Opened {
				flags |= fuzzFlagOpened
			}
			if tr.Closed {
				flags |= fuzzFlagClosed
			}
			if tr.FirstActive {
				flags |= fuzzFlagFirstActive
			}
			if s.Degraded {
				flags |= fuzzFlagDegraded
			}
			if i == len(s.Threads)-1 {
				flags |= fuzzFlagFlush
			}
			rec[2] = flags
			rec[3] = byte(s.At / sim.Duration(time.Millisecond))
			binary.LittleEndian.PutUint32(rec[4:], uint32(tr.ActualRows))
			binary.LittleEndian.PutUint32(rec[8:], uint32(tr.CPUTime))
			binary.LittleEndian.PutUint32(rec[12:], uint32(tr.LogicalReads))
			out = append(out, rec...)
		}
	}
	return out
}

func FuzzEstimator(f *testing.F) {
	// A fixed parallel plan: the fuzz inputs are interpreted as DMV polls of
	// this plan, the way LQS interprets whatever the server sends for the
	// plan handle it monitors.
	cfg := workload.SynthConfig{
		Name: "FZCORP", Seed: 99, NumTables: 5, MinRows: 200, MaxRows: 1500,
		NumQueries: 2, MinJoins: 2, MaxJoins: 3, GroupByFrac: 1,
	}
	w := workload.Synth(cfg)
	root := plan.Parallelize(w.Queries[0].Build(w.Builder()), 4)
	p := plan.Finalize(root)
	opt.NewEstimator(w.DB.Catalog).Estimate(p)

	// Corpus: real per-thread captures from actually running the plan.
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 150*time.Microsecond)
	w.DB.ColdStart()
	query := exec.NewQueryDOP(p, w.DB, opt.DefaultCostModel(), clock, 4)
	poller.Register(query)
	if _, err := query.Run(); err != nil {
		f.Fatalf("corpus query failed: %v", err)
	}
	tr := poller.Finish(query)
	corpus := tr.Snapshots
	if len(corpus) > 12 {
		// Sample the poll history: seed inputs stay small enough to mutate
		// productively while still spanning start, mid-flight, and end.
		stride := len(corpus) / 12
		var sampled []*dmv.Snapshot
		for i := 0; i < len(corpus); i += stride {
			sampled = append(sampled, corpus[i])
		}
		corpus = sampled
	}
	f.Add(encodeSnapshots(corpus))
	f.Add(encodeSnapshots([]*dmv.Snapshot{tr.Final}))
	if len(tr.Snapshots) > 1 {
		// An out-of-order replay: final state first, then a stale mid-flight
		// poll — the estimator must tolerate time going backwards.
		f.Add(encodeSnapshots([]*dmv.Snapshot{tr.Final, tr.Snapshots[0]}))
	}
	f.Add([]byte{})
	// All-zero counters on every node, then a thread-skewed row with
	// k far beyond any estimate.
	f.Add(make([]byte, 4*fuzzRecordLen))
	f.Add([]byte{
		1, 3, fuzzFlagOpened | fuzzFlagFirstActive, 200,
		0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 1, 0, 0, 0,
	})

	modes := []Options{
		TGNOptions(), DNEOptions(), LQSOptions(),
		{Refine: true, Bound: true, Monotone: true},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snaps := decodeSnapshots(data, len(p.Nodes))
		if len(snaps) > 16 {
			snaps = snaps[:16] // bound per-input work, not coverage
		}
		for mi, o := range modes {
			est := NewEstimator(p, w.DB.Catalog, o)
			for si, s := range snaps {
				e := est.Estimate(s)
				if math.IsNaN(e.Query) || e.Query < 0 || e.Query > 1 {
					t.Fatalf("mode %d snap %d: query progress %v", mi, si, e.Query)
				}
				for id, opProg := range e.Op {
					if math.IsNaN(opProg) || opProg < 0 || opProg > 1 {
						t.Fatalf("mode %d snap %d node %d: op progress %v", mi, si, id, opProg)
					}
					if math.IsNaN(e.N[id]) || math.IsInf(e.N[id], 0) || e.N[id] < 0 {
						t.Fatalf("mode %d snap %d node %d: refined N %v", mi, si, id, e.N[id])
					}
				}
			}
		}
		// The introspection path shares the estimator core but allocates the
		// decomposition; it must hold the same bounds and its contributions
		// must reproduce the raw progress even on garbage.
		est := NewEstimator(p, w.DB.Catalog, LQSOptions())
		for si, s := range snaps {
			x, e := est.Explain(s)
			if math.IsNaN(e.Query) || e.Query < 0 || e.Query > 1 {
				t.Fatalf("explain snap %d: query progress %v", si, e.Query)
			}
			var sum float64
			for _, term := range x.Terms {
				sum += term.Contribution
			}
			if math.IsNaN(x.RawQuery) || math.Abs(sum-x.RawQuery) > 1e-6 {
				t.Fatalf("explain snap %d: contributions sum %v != raw %v", si, sum, x.RawQuery)
			}
		}
	})
}
