package progress

import (
	"math"

	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
)

// Bounds are worst-case lower and upper bounds on a node's total GetNext
// count (§4.2), derived purely from the algebraic properties of operators
// (Appendix A, Table 1) plus the counters observed so far. UB may be +Inf
// (spools before their input size is known).
type Bounds struct {
	LB, UB float64
}

// Clamp forces v into [LB, UB].
func (b Bounds) Clamp(v float64) float64 {
	if v < b.LB {
		v = b.LB
	}
	if v > b.UB {
		v = b.UB
	}
	return v
}

// ComputeBounds evaluates Appendix A's bounding table bottom-up for every
// node, given the current snapshot. Nodes on the inner side of a nested
// loops join have their leaf-level upper bounds multiplied by the outer
// side's upper bound (the table's "when on inner side of join" rows),
// since every remaining outer row can re-execute them.
func (e *Estimator) ComputeBounds(snap *dmv.Snapshot) []Bounds {
	bounds := make([]Bounds, len(e.Plan.Nodes))
	var rec func(n *plan.Node, shielded bool) Bounds
	rec = func(n *plan.Node, shielded bool) Bounds {
		// Children first (outer before inner, matching preorder IDs).
		// A spool shields its subtree from rebind multiplication: the
		// spool replays its cache, so the child executes only once.
		childShield := shielded || n.Physical == plan.TableSpool
		kid := make([]Bounds, len(n.Children))
		for i, c := range n.Children {
			kid[i] = rec(c, childShield)
		}
		k := float64(snap.Op(n.ID).ActualRows)
		var b Bounds
		inf := math.Inf(1)

		// innerMult is the execution multiplier for inner-side leaves.
		innerMult := func() float64 {
			if shielded || !e.Decomp.InnerSide[n.ID] {
				return 1
			}
			outer := e.Decomp.OuterOf[n.ID]
			if outer < 0 {
				return 1
			}
			ub := bounds[outer].UB
			if ub < 1 {
				ub = 1
			}
			return ub
		}

		switch n.Physical {
		case plan.TableScan:
			// Unknown table (stale client catalog): no size to bound
			// against — degrade to the trivially true [k, +Inf) rather
			// than crash the monitor.
			size, known := e.tableRowCount(n.Table)
			switch {
			case !known:
				b = Bounds{LB: k, UB: inf}
			case n.Pred == nil && !n.HasStoragePred():
				b = Bounds{LB: size * innerMult(), UB: size * innerMult()}
			default:
				b = Bounds{LB: k, UB: size * innerMult()}
			}
		case plan.ClusteredIndexScan, plan.IndexScan, plan.ClusteredIndexSeek,
			plan.IndexSeek, plan.ColumnstoreIndexScan:
			if size, known := e.tableRowCount(n.Table); known {
				b = Bounds{LB: k, UB: size * innerMult()}
			} else {
				b = Bounds{LB: k, UB: inf}
			}
		case plan.ConstantScan:
			c := float64(len(n.ConstRows)) * innerMult()
			b = Bounds{LB: c, UB: c}
		case plan.HashJoin, plan.MergeJoin, plan.NestedLoops:
			// UB = (UB_outer − K_outer) · UB_inner + K_i: every not-yet-seen
			// outer row may match every inner row. A streaming join's most
			// recently consumed outer row may still have matches in
			// flight (its K_outer advanced before its matches were fully
			// emitted), so one extra outer row is allowed until the join
			// closes; the same slack covers right/full-outer tails.
			ko := float64(snap.Op(n.Children[0].ID).ActualRows)
			remOuter := math.Max(kid[0].UB-ko, 0)
			if !snap.Op(n.ID).Closed && snap.Op(n.Children[0].ID).Opened {
				remOuter++
			}
			b = Bounds{LB: k, UB: remOuter*kid[1].UB + k}
		case plan.Concatenation:
			var lb, ub float64
			for i, c := range n.Children {
				lb += float64(snap.Op(c.ID).ActualRows)
				ub += kid[i].UB
			}
			b = Bounds{LB: math.Max(lb, k), UB: ub}
		case plan.Filter, plan.SegmentOp, plan.DistinctSort:
			kc := float64(snap.Op(n.Children[0].ID).ActualRows)
			b = Bounds{LB: k, UB: math.Max(kid[0].UB-kc, 0) + k}
		case plan.Exchange:
			// An exchange is a buffering pass-through: every consumed row is
			// eventually emitted, so the filter formula above — which treats
			// the consumed-but-unemitted deficit as dropped rows — would sink
			// the upper bound below the true final count by the exchange's
			// buffer occupancy. Output count equals input count, exactly as
			// for Sort; rows already consumed are guaranteed to come out.
			kc := float64(snap.Op(n.Children[0].ID).ActualRows)
			b = Bounds{LB: math.Max(k, kc), UB: kid[0].UB}
		case plan.Sort:
			// A sort outputs exactly its input count.
			kc := float64(snap.Op(n.Children[0].ID).ActualRows)
			b = Bounds{LB: kc, UB: kid[0].UB}
		case plan.TopNSort:
			kc := float64(snap.Op(n.Children[0].ID).ActualRows)
			b = Bounds{LB: math.Min(float64(n.TopN), kc), UB: math.Min(float64(n.TopN), kid[0].UB)}
		case plan.BitmapCreate, plan.ComputeScalar:
			kc := float64(snap.Op(n.Children[0].ID).ActualRows)
			b = Bounds{LB: kc, UB: kid[0].UB}
		case plan.StreamAggregate, plan.HashAggregate:
			// Every remaining input row could found a new group. A scalar
			// aggregate always emits one row; a grouped aggregate emits at
			// least one only once input rows have been observed.
			kc := float64(snap.Op(n.Children[0].ID).ActualRows)
			lb := k
			if len(n.GroupCols) == 0 || kc > 0 {
				lb = math.Max(1, k)
			}
			switch {
			case len(n.GroupCols) == 0:
				// Scalar aggregate: exactly one output row, always.
				b = Bounds{LB: lb, UB: 1}
			case n.Physical == plan.HashAggregate:
				// Blocking: groups buffer in the hash table until the input is
				// exhausted, so emitted-count arithmetic says nothing about
				// what remains to stream out; the only sound cap is the
				// child's total (every input row may found its own group).
				b = Bounds{LB: lb, UB: math.Max(kid[0].UB, lb)}
			default:
				// Streaming: one group in flight at a time, so the future
				// output is at most a new group per remaining input row plus
				// the open group (the +1 slack, until the operator closes).
				slack := 1.0
				if snap.Op(n.ID).Closed {
					slack = 0
				}
				b = Bounds{LB: lb, UB: math.Max(kid[0].UB-kc, 0) + math.Max(lb, k) + slack}
			}
		case plan.RIDLookup:
			b = Bounds{LB: k, UB: kid[0].UB}
		case plan.TableSpool:
			// Replays make the spool unbounded until its input size is
			// known; on the inner side of a join, each outer row replays
			// the cached input.
			if !shielded && e.Decomp.InnerSide[n.ID] {
				b = Bounds{LB: k, UB: kid[0].UB * innerMult()}
			} else if snap.Op(n.Children[0].ID).Closed {
				b = Bounds{LB: k, UB: kid[0].UB}
			} else {
				b = Bounds{LB: k, UB: inf}
			}
		default:
			b = Bounds{LB: k, UB: inf}
		}
		if b.UB < b.LB {
			b.UB = b.LB
		}
		bounds[n.ID] = b
		return b
	}
	rec(e.Plan.Root, false)
	return bounds
}
