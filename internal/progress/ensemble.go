package progress

import (
	"math"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// The estimator ensemble (DESIGN §4j), after König et al.'s "A Statistical
// Approach Towards Robust Progress Estimation": no single estimator
// dominates across workloads, so run the TGN/DNE/LQS candidates
// side-by-side over the same prepared snapshot, score each by its recent
// self-consistency — the deviation between the progress its own implied
// completion rate predicts and the value it actually reports — and blend
// their estimates with weights that favor the consistent ones.
//
// Self-consistency alone is not enough: a candidate whose trajectory is
// q = c·t is perfectly self-consistent for ANY slope c, so constant-rate
// consistency is blind to proportional bias — exactly the failure mode of
// the TGN/DNE baselines on refinement-heavy plans, where they ramp smoothly
// toward the wrong asymptote. The selector therefore gates each challenger
// by its proximity to the anchor candidate (the shipping LQS
// configuration): a challenger earns blend weight only where it both stays
// self-consistent and corroborates the anchor's estimate. Near the anchor,
// challengers act as smoothers of LQS's refinement jumps; far from it,
// their weight decays to zero and the blend stays pinned to LQS. Selection
// among candidates (which one's cardinality attribution the estimate
// carries) moves only under hysteresis, and never on a degraded poll.

// ModeEnsemble is the mode label of the ensemble estimator, used by the
// accuracy suite, the bench artifacts, and the server wire surface.
const ModeEnsemble = "ENS"

// Selector tuning. The penalty is an EWMA of the per-poll deviation
// between a candidate's reported progress and its own constant-rate
// prediction; the distance is an EWMA of the gap to the anchor candidate.
// Challenger scores decay in both, ramp in with confidence (polls
// observed), and are smoothed so one noisy poll cannot whipsaw the blend.
const (
	// ensMinQ: below this a candidate's slope prediction is numeric noise.
	ensMinQ = 0.01
	// ensLambda is the penalty/distance EWMA retention per non-degraded poll.
	ensLambda = 0.8
	// ensTau is the penalty→score temperature: score ∝ e^(−pen/τ).
	ensTau = 0.002
	// ensSigma is the proximity-gate scale: challenger score ∝ e^(−dist/σ).
	ensSigma = 0.01
	// ensConfCap: challengers ramp in linearly over this many polls.
	ensConfCap = 64
	// ensSmooth is the weight EWMA retention per update.
	ensSmooth = 0.7
	// ensMargin: a challenger's weight must exceed the incumbent's by this
	// factor before its takeover streak starts counting.
	ensMargin = 1.2
	// ensStreak: consecutive winning non-degraded polls before selection
	// flips (the hysteresis that keeps the attribution stable).
	ensStreak = 5
)

// ensemble is the per-query selector state: the candidate estimators (all
// sharing one NHints store), the penalty/weight vectors, and the hysteresis
// bookkeeping. It lives on the top-level Estimator; candidates never
// recurse into it.
type ensemble struct {
	names []string
	cands []*Estimator
	hints *NHints

	prior   []float64
	penalty []float64
	dist    []float64
	weights []float64
	lastQ   []float64
	scratch []float64

	// anchor indexes the candidate the proximity gate measures against —
	// the shipping LQS configuration.
	anchor int

	firstAt sim.Duration
	lastAt  sim.Duration
	started bool
	polls   int

	selected   int
	challenger int
	streak     int
	switches   int
}

// EnsembleInfo is the per-poll introspection the ensemble attaches to its
// Estimate: every candidate's displayed progress, the blend weights (sum
// to 1), the selector penalties, the raw blend before display clamps, and
// which candidate the hysteresis currently selects.
type EnsembleInfo struct {
	// Names are the candidate labels, in candidate order (TGN, DNE, LQS).
	Names []string
	// Query is each candidate's displayed query progress this poll.
	Query []float64
	// Weights are the blend weights; they sum to 1.
	Weights []float64
	// Penalty is each candidate's self-consistency penalty (EWMA).
	Penalty []float64
	// Distance is each candidate's EWMA gap to the anchor candidate's
	// estimate (zero for the anchor itself).
	Distance []float64
	// Blend is the raw weighted blend Σ wᵢ·qᵢ before the [0,1] clamp and
	// the monotone high-water — by construction it lies within the
	// candidates' [min q, max q] envelope.
	Blend float64
	// Selected indexes the hysteresis-selected candidate whose cardinality
	// attribution (N̂, source, α) the estimate carries.
	Selected int
	// Switches counts how many times selection has flipped so far.
	Switches int
}

// EnsembleCandidate is one candidate's row in an ensemble Explanation.
type EnsembleCandidate struct {
	Name     string
	Weight   float64
	Penalty  float64
	Query    float64
	RawQuery float64
	// Selected marks the candidate whose per-node attribution (Source,
	// Alpha, N̂ derivation) the Explanation's Terms carry.
	Selected bool
}

// newEnsemble builds the candidate estimators for a top-level ensemble
// estimator: the three published modes, each wired to one shared NHints
// store, each with Ensemble off so construction cannot recurse. The LQS
// candidate keeps its display contract (monotone, degradation-forced
// clamps); the baselines stay raw, exactly like their standalone modes.
func newEnsemble(p *plan.Plan, cat *catalog.Catalog, opt Options) *ensemble {
	hints := NewNHints(p, opt.minRefine())
	specs := []struct {
		name  string
		opts  Options
		prior float64
	}{
		{"TGN", TGNOptions(), 0.25},
		{"DNE", DNEOptions(), 0.25},
		{"LQS", LQSOptions(), 0.5},
	}
	en := &ensemble{hints: hints, challenger: -1}
	for i, s := range specs {
		o := s.opts
		o.Ensemble = false
		o.NHints = hints
		if opt.MinRefineRows > 0 {
			o.MinRefineRows = opt.MinRefineRows
		}
		en.names = append(en.names, s.name)
		en.cands = append(en.cands, NewEstimator(p, cat, o))
		en.prior = append(en.prior, s.prior)
		if s.name == "LQS" {
			en.selected = i
			en.anchor = i
		}
	}
	n := len(en.cands)
	en.weights = append([]float64(nil), en.prior...)
	en.penalty = make([]float64, n)
	en.dist = make([]float64, n)
	en.lastQ = make([]float64, n)
	en.scratch = make([]float64, n)
	return en
}

// estimateEnsemble is the ensemble estimation pass: candidates consume the
// already-prepared snapshot, the selector observes their trajectories, and
// the blend becomes the displayed estimate.
func (e *Estimator) estimateEnsemble(snap *dmv.Snapshot, degraded bool, reason string) *Estimate {
	snap.Aggregate()
	en := e.ens
	en.hints.Update(snap)
	subs := make([]*Estimate, len(en.cands))
	for i, c := range en.cands {
		subs[i] = c.estimateFrom(snap, degraded, reason)
	}
	return e.blendEnsemble(snap, subs, degraded, reason)
}

// blendEnsemble folds candidate estimates into the displayed ensemble
// estimate: selector update (frozen on degraded polls), weighted blend of
// query/operator/pipeline progress, intersection-envelope bounds, and the
// selected candidate's cardinalities clamped into that envelope. Estimate
// and Explain both funnel through it.
func (e *Estimator) blendEnsemble(snap *dmv.Snapshot, subs []*Estimate, degraded bool, reason string) *Estimate {
	en := e.ens
	qs := make([]float64, len(subs))
	for i, s := range subs {
		qs[i] = s.Query
	}
	en.observe(snap.At, qs, degraded)

	est := &Estimate{
		At:            snap.At,
		Op:            make([]float64, len(e.Plan.Nodes)),
		N:             make([]float64, len(e.Plan.Nodes)),
		PipelineProg:  make([]float64, len(e.Decomp.Pipelines)),
		Degraded:      degraded,
		DegradeReason: reason,
	}
	est.Bounds = envelopeBounds(en.cands, subs)
	w := en.weights
	var blend float64
	for i := range subs {
		blend += w[i] * qs[i]
	}
	sel := subs[en.selected]
	for id := range est.Op {
		// The lifecycle contract (closed ⇒ exactly 1, unopened ⇒ 0) must
		// survive blending: every candidate honors it, but a weighted sum of
		// exact values drifts by float rounding when the weights carry theirs.
		prof := snap.Op(id)
		switch {
		case prof.Closed:
			est.Op[id] = 1
		case !prof.Opened:
			est.Op[id] = 0
		default:
			var op float64
			for i, s := range subs {
				op += w[i] * s.Op[id]
			}
			est.Op[id] = clamp01(op)
		}
		est.N[id] = sel.N[id]
		if len(est.Bounds) > 0 {
			est.N[id] = est.Bounds[id].Clamp(est.N[id])
		}
	}
	for pid := range est.PipelineProg {
		var v float64
		for i, s := range subs {
			if pid < len(s.PipelineProg) {
				v += w[i] * s.PipelineProg[pid]
			}
		}
		est.PipelineProg[pid] = clamp01(v)
	}
	est.Ensemble = &EnsembleInfo{
		Names:    en.names,
		Query:    qs,
		Weights:  append([]float64(nil), w...),
		Penalty:  append([]float64(nil), en.penalty...),
		Distance: append([]float64(nil), en.dist...),
		Blend:    blend,
		Selected: en.selected,
		Switches: en.switches,
	}
	est.Query = clamp01(blend)
	switch {
	case e.Opt.Monotone, e.Opt.Degrade && degraded:
		e.enforceMonotone(est, true)
	case e.Opt.Degrade:
		e.enforceMonotone(est, false)
	}
	return est
}

// observe feeds one poll's candidate trajectories into the selector. It is
// skipped entirely on degraded polls — repaired or reconstructed counters
// must advance neither the penalties nor the hysteresis streak, so a
// degraded burst cannot flip the selected candidate — and on replays of an
// already-observed timestamp, keeping Estimate idempotent per snapshot.
func (en *ensemble) observe(at sim.Duration, qs []float64, degraded bool) {
	if degraded {
		return
	}
	if !en.started {
		en.started = true
		en.firstAt, en.lastAt = at, at
		copy(en.lastQ, qs)
		return
	}
	if at <= en.lastAt {
		return
	}
	// König-style self-consistency: each candidate predicts its next value
	// by extrapolating its own implied completion rate (progress linear in
	// time ⇒ q(t) ≈ q(t′)·(t−t₀)/(t′−t₀) measured from the first poll); the
	// penalty accumulates |observed − predicted|. A candidate whose
	// trajectory keeps contradicting its own rate — refinement jumps,
	// stalls against a moving clock — loses weight to steadier candidates.
	if prev := float64(en.lastAt - en.firstAt); prev > 0 {
		growth := float64(at-en.firstAt) / prev
		for i, q := range qs {
			en.dist[i] = ensLambda*en.dist[i] + (1-ensLambda)*math.Abs(q-qs[en.anchor])
			if en.lastQ[i] < ensMinQ {
				continue
			}
			pred := en.lastQ[i] * growth
			if pred > 1 {
				pred = 1
			}
			dev := math.Abs(q - pred)
			en.penalty[i] = ensLambda*en.penalty[i] + (1-ensLambda)*dev
		}
	}
	copy(en.lastQ, qs)
	en.lastAt = at
	en.polls++
	en.reweigh()
}

// reweigh turns penalties and anchor distances into blend weights and runs
// the hysteresis rule. The anchor keeps its prior-scaled consistency score;
// every challenger's score additionally decays in its distance to the
// anchor and ramps in with confidence, so early polls and diverging
// candidates leave the blend pinned to LQS.
func (en *ensemble) reweigh() {
	conf := float64(en.polls)
	if conf > ensConfCap {
		conf = ensConfCap
	}
	raw := en.scratch
	var sum float64
	for i := range raw {
		raw[i] = en.prior[i] * math.Exp(-en.penalty[i]/ensTau)
		if i != en.anchor {
			raw[i] *= math.Exp(-en.dist[i]/ensSigma) * conf / ensConfCap
		}
		sum += raw[i]
	}
	if sum <= 0 {
		copy(raw, en.prior)
		sum = 0
		for _, v := range raw {
			sum += v
		}
	}
	var wsum float64
	for i := range en.weights {
		en.weights[i] = ensSmooth*en.weights[i] + (1-ensSmooth)*raw[i]/sum
		wsum += en.weights[i]
	}
	for i := range en.weights {
		en.weights[i] /= wsum
	}

	best := 0
	for i := range en.weights {
		if en.weights[i] > en.weights[best] {
			best = i
		}
	}
	if best == en.selected || en.weights[best] <= en.weights[en.selected]*ensMargin {
		en.challenger, en.streak = -1, 0
		return
	}
	if en.challenger != best {
		en.challenger, en.streak = best, 0
	}
	en.streak++
	if en.streak >= ensStreak {
		en.selected = best
		en.switches++
		en.challenger, en.streak = -1, 0
	}
}

// envelopeBounds intersects the candidates' Appendix A bounds per node:
// [max LB, min UB] over every bounded candidate — each candidate's interval
// is individually safe, so their intersection is the tightest interval that
// is still safe. A degenerate crossing (which candidate disagreement could
// produce) collapses to the union instead of inventing an empty interval.
func envelopeBounds(cands []*Estimator, subs []*Estimate) []Bounds {
	var inter, union []Bounds
	for i, s := range subs {
		if !cands[i].Opt.Bound || len(s.Bounds) == 0 {
			continue
		}
		if inter == nil {
			inter = append([]Bounds(nil), s.Bounds...)
			union = append([]Bounds(nil), s.Bounds...)
			continue
		}
		for id := range inter {
			if s.Bounds[id].LB > inter[id].LB {
				inter[id].LB = s.Bounds[id].LB
			}
			if s.Bounds[id].UB < inter[id].UB {
				inter[id].UB = s.Bounds[id].UB
			}
			if s.Bounds[id].LB < union[id].LB {
				union[id].LB = s.Bounds[id].LB
			}
			if s.Bounds[id].UB > union[id].UB {
				union[id].UB = s.Bounds[id].UB
			}
		}
	}
	for id := range inter {
		if inter[id].LB > inter[id].UB {
			inter[id] = union[id]
		}
	}
	return inter
}

// explainEnsemble is the introspected ensemble pass: candidate explains run
// over the same prepared snapshot, the blend proceeds exactly as in
// estimateEnsemble (with the top-level recorder capturing monotone clamps),
// and the Terms carry the selected candidate's attribution with
// per-candidate contributions that sum exactly to the blended raw query
// progress.
func (e *Estimator) explainEnsemble(snap *dmv.Snapshot, degraded bool, reason string) (*Explanation, *Estimate) {
	en := e.ens
	en.hints.Update(snap)
	xs := make([]*Explanation, len(en.cands))
	subs := make([]*Estimate, len(en.cands))
	for i, c := range en.cands {
		xs[i], subs[i] = c.explainFrom(snap, degraded, reason)
	}

	x := &Explanation{
		At:    snap.At,
		Plan:  e.Plan,
		Mode:  "ensemble",
		Terms: make([]Term, len(e.Plan.Nodes)),
	}
	e.rec = x
	est := e.blendEnsemble(snap, subs, degraded, reason)
	e.rec = nil

	info := est.Ensemble
	x.Query = est.Query
	x.PipelineProg = est.PipelineProg
	x.Degraded = est.Degraded
	x.DegradeReason = est.DegradeReason
	var raw float64
	x.Candidates = make([]EnsembleCandidate, len(xs))
	for i, cx := range xs {
		raw += info.Weights[i] * cx.RawQuery
		x.Candidates[i] = EnsembleCandidate{
			Name:     info.Names[i],
			Weight:   info.Weights[i],
			Penalty:  info.Penalty[i],
			Query:    info.Query[i],
			RawQuery: cx.RawQuery,
			Selected: i == info.Selected,
		}
	}
	x.RawQuery = raw

	selx := xs[info.Selected]
	for _, n := range e.Plan.Nodes {
		t := &x.Terms[n.ID]
		st := selx.Terms[n.ID]
		t.NodeID = n.ID
		t.Physical = n.Physical
		t.EstRows = n.EstRows
		t.Pipeline = st.Pipeline
		t.Driver = st.Driver
		t.InnerDriver = st.InnerDriver
		t.Source = st.Source
		t.Alpha = st.Alpha
		t.BoundClamped = st.BoundClamped
		t.EnsembleMode = info.Names[info.Selected]
		t.K = snap.Op(n.ID).ActualRows
		t.N = est.N[n.ID]
		t.Op = est.Op[n.ID]
		if len(est.Bounds) > 0 {
			t.Bounds = est.Bounds[n.ID]
		}
		t.CandidateContrib = make([]float64, len(xs))
		var c float64
		for i, cx := range xs {
			cc := info.Weights[i] * cx.Terms[n.ID].Contribution
			t.CandidateContrib[i] = cc
			c += cc
		}
		t.Contribution = c
	}
	return x, est
}
