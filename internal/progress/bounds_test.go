package progress

import (
	"math"
	"testing"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// syntheticSnapshot builds a snapshot with the given per-node ActualRows
// (and optional closed flags) without running the engine, so each Table 1
// rule can be checked against hand-computed values. Counters are keyed by
// node pointer because IDs are only assigned at Finalize.
func syntheticSnapshot(p *plan.Plan, k map[*plan.Node]int64, closed map[*plan.Node]bool) *dmv.Snapshot {
	s := &dmv.Snapshot{Ops: make([]dmv.OpProfile, len(p.Nodes))}
	for _, n := range p.Nodes {
		s.Ops[n.ID] = dmv.OpProfile{
			NodeID:     n.ID,
			Physical:   n.Physical,
			Logical:    n.Logical,
			ActualRows: k[n],
			Opened:     true,
			Closed:     closed[n],
		}
	}
	return s
}

func boundsFor(t *testing.T, f *fixture, root *plan.Node, k map[*plan.Node]int64, closed map[*plan.Node]bool) ([]Bounds, *plan.Plan) {
	t.Helper()
	p := plan.Finalize(root)
	e := NewEstimator(p, f.cat, Options{Bound: true})
	return e.ComputeBounds(syntheticSnapshot(p, k, closed)), p
}

// Table sizes in the fixture: fact = 20000, dim = 500.

func TestBoundsTableScanNoPredIsExact(t *testing.T) {
	f := newFixture(t)
	scan := f.b.TableScan("fact", nil, nil)
	b, _ := boundsFor(t, f, scan, map[*plan.Node]int64{scan: 1234}, nil)
	if b[0].LB != 20000 || b[0].UB != 20000 {
		t.Fatalf("plain table scan bounds = %+v, want exact 20000", b[0])
	}
}

func TestBoundsTableScanWithPred(t *testing.T) {
	f := newFixture(t)
	scan := f.b.TableScan("fact", expr.Lt(expr.C(0, ""), expr.KInt(10)), nil)
	b, _ := boundsFor(t, f, scan, map[*plan.Node]int64{scan: 7}, nil)
	if b[0].LB != 7 || b[0].UB != 20000 {
		t.Fatalf("filtered scan bounds = %+v, want [7, 20000]", b[0])
	}
}

func TestBoundsIndexSeek(t *testing.T) {
	f := newFixture(t)
	seek := f.b.SeekEq("fact", "ix_dim", []expr.Expr{expr.KInt(3)}, nil)
	b, _ := boundsFor(t, f, seek, map[*plan.Node]int64{seek: 40}, nil)
	if b[0].LB != 40 || b[0].UB != 20000 {
		t.Fatalf("seek bounds = %+v, want [K, TableSize]", b[0])
	}
}

func TestBoundsSeekOnInnerSideOfJoin(t *testing.T) {
	f := newFixture(t)
	outer := f.b.TableScan("dim", nil, nil)
	inner := f.b.SeekEq("fact", "ix_dim", []expr.Expr{expr.C(0, "")}, nil)
	nl := f.b.NestedLoopsNode(plan.LogicalInnerJoin, outer, inner, nil)
	b, _ := boundsFor(t, f, nl, map[*plan.Node]int64{}, nil)
	// Inner-side seek UB = TableSize · UB_outer = 20000 · 500.
	if b[inner.ID].UB != 20000*500 {
		t.Fatalf("inner seek UB = %v, want TableSize × UB_outer", b[inner.ID].UB)
	}
}

func TestBoundsConstantScan(t *testing.T) {
	f := newFixture(t)
	cs := f.b.ConstantScanRows([]types.Row{{types.Int(1)}, {types.Int(2)}, {types.Int(3)}})
	b, _ := boundsFor(t, f, cs, nil, nil)
	if b[0].LB != 3 || b[0].UB != 3 {
		t.Fatalf("constant scan bounds = %+v, want exact 3", b[0])
	}
}

func TestBoundsJoinRule(t *testing.T) {
	f := newFixture(t)
	probe := f.b.TableScan("fact", nil, nil)
	build := f.b.TableScan("dim", nil, nil)
	hj := f.b.HashJoinNode(plan.LogicalInnerJoin, probe, build, []int{1}, []int{0}, nil)
	// Probe consumed 5000 of 20000, join output so far 4000.
	b, _ := boundsFor(t, f, hj, map[*plan.Node]int64{probe: 5000, build: 500, hj: 4000}, nil)
	// UB = (UB_outer − K_outer + 1)·UB_inner + K: the +1 covers the
	// in-flight outer row of a streaming join.
	want := float64(20000-5000+1)*500 + 4000
	if b[hj.ID].UB != want || b[hj.ID].LB != 4000 {
		t.Fatalf("join bounds = %+v, want [4000, %v]", b[hj.ID], want)
	}
}

func TestBoundsJoinVariantsShareRule(t *testing.T) {
	f := newFixture(t)
	for _, kind := range []plan.LogicalOp{
		plan.LogicalLeftSemiJoin, plan.LogicalLeftAntiSemiJoin,
		plan.LogicalRightOuterJoin, plan.LogicalRightSemiJoin, plan.LogicalFullOuterJoin,
	} {
		probe := f.b.TableScan("fact", nil, nil)
		build := f.b.TableScan("dim", nil, nil)
		hj := f.b.HashJoinNode(kind, probe, build, []int{1}, []int{0}, nil)
		b, _ := boundsFor(t, f, hj,
			map[*plan.Node]int64{probe: 20000, build: 500, hj: 123},
			map[*plan.Node]bool{probe: true, build: true, hj: true})
		// Join closed with probe fully consumed: UB collapses to K.
		if b[hj.ID].LB != 123 || b[hj.ID].UB != 123 {
			t.Fatalf("%v bounds = %+v, want collapsed to K", kind, b[hj.ID])
		}
	}
}

func TestBoundsConcatenation(t *testing.T) {
	f := newFixture(t)
	s1 := f.b.TableScan("dim", nil, nil)
	s2 := f.b.TableScan("dim", nil, nil)
	c := f.b.Concat(s1, s2)
	b, _ := boundsFor(t, f, c, map[*plan.Node]int64{s1: 100, s2: 200, c: 300}, nil)
	if b[0].LB != 300 || b[0].UB != 1000 {
		t.Fatalf("concat bounds = %+v, want [300, 1000]", b[0])
	}
}

func TestBoundsFilterAndExchangeAndSegment(t *testing.T) {
	f := newFixture(t)
	mk := func(wrap func(*plan.Node) *plan.Node) Bounds {
		scan := f.b.TableScan("dim", nil, nil)
		root := wrap(scan)
		b, _ := boundsFor(t, f, root, map[*plan.Node]int64{root: 30, scan: 100}, nil)
		return b[root.ID]
	}
	fb := mk(func(s *plan.Node) *plan.Node { return f.b.Filter(s, expr.Lt(expr.C(0, ""), expr.KInt(9))) })
	// UB = (UB_child − K_child) + K = (500 − 100) + 30.
	if fb.LB != 30 || fb.UB != 430 {
		t.Fatalf("filter bounds = %+v, want [30, 430]", fb)
	}
	// An exchange is a buffering pass-through (output count = input count):
	// consumed rows are guaranteed out (LB = K_child = 100) and the filter
	// formula's UB, which would treat the buffered deficit as dropped rows,
	// does not apply — UB = UB_child.
	eb := mk(func(s *plan.Node) *plan.Node { return f.b.ExchangeNode(s, plan.GatherStreams) })
	if eb.LB != 100 || eb.UB != 500 {
		t.Fatalf("exchange bounds = %+v, want [100, 500]", eb)
	}
	sb := mk(func(s *plan.Node) *plan.Node { return f.b.SegmentNode(s, []int{0}) })
	if sb.UB != 430 {
		t.Fatalf("segment bounds = %+v, want UB 430", sb)
	}
	db := mk(func(s *plan.Node) *plan.Node { return f.b.DistinctSortNode(s, []int{0}) })
	if db.UB != 430 {
		t.Fatalf("distinct sort bounds = %+v, want UB 430", db)
	}
}

func TestBoundsSortExactOnInput(t *testing.T) {
	f := newFixture(t)
	scan := f.b.TableScan("dim", nil, nil)
	s := f.b.Sort(scan, []int{0}, nil)
	b, _ := boundsFor(t, f, s, map[*plan.Node]int64{scan: 120}, nil)
	// Sort outputs exactly its input: LB = K_child, UB = UB_child.
	if b[0].LB != 120 || b[0].UB != 500 {
		t.Fatalf("sort bounds = %+v, want [120, 500]", b[0])
	}
}

func TestBoundsTopNSort(t *testing.T) {
	f := newFixture(t)
	scan := f.b.TableScan("dim", nil, nil)
	s := f.b.TopNSortNode(scan, 50, []int{0}, nil)
	b, _ := boundsFor(t, f, s, map[*plan.Node]int64{scan: 120}, nil)
	if b[0].LB != 50 || b[0].UB != 50 {
		t.Fatalf("topN bounds = %+v, want exact min(N, ...) = 50", b[0])
	}
	scan2 := f.b.TableScan("dim", nil, nil)
	s2 := f.b.TopNSortNode(scan2, 50, []int{0}, nil)
	b2, _ := boundsFor(t, f, s2, map[*plan.Node]int64{scan2: 20}, nil)
	if b2[0].LB != 20 || b2[0].UB != 50 {
		t.Fatalf("topN early bounds = %+v, want [20, 50]", b2[0])
	}
}

func TestBoundsAggregate(t *testing.T) {
	f := newFixture(t)
	scan := f.b.TableScan("dim", nil, nil)
	agg := f.b.HashAgg(scan, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	b, _ := boundsFor(t, f, agg, map[*plan.Node]int64{scan: 200, agg: 0}, nil)
	// A blocking hash aggregate buffers groups until its input closes, so
	// consumed-count arithmetic cannot tighten the cap: UB = UB_child
	// (every input row may found its own group), LB = max(1, K).
	if b[0].LB != 1 || b[0].UB != 500 {
		t.Fatalf("hash aggregate bounds = %+v, want [1, 500]", b[0])
	}
}

func TestBoundsStreamAggregate(t *testing.T) {
	f := newFixture(t)
	scan := f.b.TableScan("dim", nil, nil)
	agg := f.b.StreamAgg(scan, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	b, _ := boundsFor(t, f, agg, map[*plan.Node]int64{scan: 200, agg: 40}, nil)
	// Streaming emission: a new group per remaining input row plus the one
	// open group — UB = (UB_child − K_child) + K + 1 = (500 − 200) + 40 + 1.
	if b[0].LB != 40 || b[0].UB != 341 {
		t.Fatalf("stream aggregate bounds = %+v, want [40, 341]", b[0])
	}
}

func TestBoundsScalarAggregateExact(t *testing.T) {
	f := newFixture(t)
	scan := f.b.TableScan("dim", nil, nil)
	agg := f.b.HashAgg(scan, nil, []expr.AggSpec{{Kind: expr.CountStar}})
	b, _ := boundsFor(t, f, agg, map[*plan.Node]int64{scan: 200, agg: 0}, nil)
	// A scalar aggregate emits exactly one row, even over empty input.
	if b[0].LB != 1 || b[0].UB != 1 {
		t.Fatalf("scalar aggregate bounds = %+v, want [1, 1]", b[0])
	}
}

func TestBoundsComputeScalarAndBitmap(t *testing.T) {
	f := newFixture(t)
	scan := f.b.TableScan("dim", nil, nil)
	cs := f.b.ComputeScalar(scan, expr.KInt(1))
	b, _ := boundsFor(t, f, cs, map[*plan.Node]int64{scan: 77}, nil)
	if b[0].LB != 77 || b[0].UB != 500 {
		t.Fatalf("compute scalar bounds = %+v, want [K_child, UB_child]", b[0])
	}
	scan2 := f.b.TableScan("dim", nil, nil)
	bm := f.b.BitmapNode(scan2, []int{0})
	b2, _ := boundsFor(t, f, bm, map[*plan.Node]int64{scan2: 77}, nil)
	if b2[0].LB != 77 || b2[0].UB != 500 {
		t.Fatalf("bitmap bounds = %+v, want [K_child, UB_child]", b2[0])
	}
}

func TestBoundsRIDLookup(t *testing.T) {
	f := newFixture(t)
	seek := f.b.SeekKeysOnly("fact", "ix_dim", []expr.Expr{expr.KInt(1)}, []expr.Expr{expr.KInt(1)}, true, true)
	rl := f.b.RIDLookup(seek, "fact")
	b, _ := boundsFor(t, f, rl, map[*plan.Node]int64{rl: 9, seek: 12}, nil)
	if b[0].LB != 9 || b[0].UB != 20000 {
		t.Fatalf("rid lookup bounds = %+v, want [K, UB_child]", b[0])
	}
}

func TestBoundsSpool(t *testing.T) {
	f := newFixture(t)
	// Standalone spool with unfinished child: unbounded above.
	scan := f.b.TableScan("dim", expr.Lt(expr.C(0, ""), expr.KInt(100)), nil)
	sp := f.b.Spool(scan, false)
	b, _ := boundsFor(t, f, sp, map[*plan.Node]int64{sp: 10, scan: 10}, nil)
	if !math.IsInf(b[0].UB, 1) {
		t.Fatalf("lazy spool UB = %v, want +Inf before child completes", b[0].UB)
	}
	// Child complete: bounded by child UB.
	scanB := f.b.TableScan("dim", expr.Lt(expr.C(0, ""), expr.KInt(100)), nil)
	spB := f.b.Spool(scanB, false)
	b2, _ := boundsFor(t, f, spB,
		map[*plan.Node]int64{spB: 60, scanB: 60}, map[*plan.Node]bool{scanB: true})
	if math.IsInf(b2[0].UB, 1) {
		t.Fatal("spool UB must be finite once its child closed")
	}
	// Inner side of a join: UB = UB_child × UB_outer.
	outer := f.b.TableScan("dim", nil, nil)
	inner := f.b.Spool(f.b.TableScan("fact", expr.Lt(expr.C(0, ""), expr.KInt(5)), nil), true)
	nl := f.b.NestedLoopsNode(plan.LogicalInnerJoin, outer, inner, nil)
	b3, _ := boundsFor(t, f, nl, map[*plan.Node]int64{}, nil)
	if b3[inner.ID].UB != 20000*500 {
		t.Fatalf("inner spool UB = %v, want UB_child × UB_outer", b3[inner.ID].UB)
	}
}

func TestBoundsClampBehaviour(t *testing.T) {
	b := Bounds{LB: 10, UB: 100}
	if b.Clamp(5) != 10 || b.Clamp(500) != 100 || b.Clamp(50) != 50 {
		t.Fatal("Clamp wrong")
	}
}

func TestBoundsNeverInverted(t *testing.T) {
	f := newFixture(t)
	// A deep plan with arbitrary counters must never produce UB < LB.
	root, _ := misestimatedFilterPlan(f)
	p, tr := f.trace(t, root, nil)
	e := NewEstimator(p, f.cat, Options{Bound: true})
	for _, s := range tr.Snapshots {
		for id, b := range e.ComputeBounds(s) {
			if b.UB < b.LB {
				t.Fatalf("node %d bounds inverted: %+v", id, b)
			}
		}
	}
}
