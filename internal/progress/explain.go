package progress

import (
	"fmt"
	"math"
	"strings"

	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// NSource identifies which rule of §4 produced a node's refined
// cardinality N̂ in one estimation pass.
type NSource int

const (
	// SrcOptimizer: the raw optimizer estimate (no refinement applied —
	// refinement off, guards not met, or pipeline not started).
	SrcOptimizer NSource = iota
	// SrcClosedExact: the operator closed, so N̂ = k exactly.
	SrcClosedExact
	// SrcCatalogExact: a whole-object leaf scan whose total is catalog
	// metadata (§3.1.1 "driver node cardinalities are typically known").
	SrcCatalogExact
	// SrcChild: an algebraic pass-through of the child's N̂.
	SrcChild
	// SrcPropagated: the §7(a) cross-pipeline refinement ratio.
	SrcPropagated
	// SrcIOFraction: a filtered leaf refined from its I/O or segment
	// fraction (§4.3, §4.7).
	SrcIOFraction
	// SrcRebindScaled: §4.4(3) inner-side per-execution average scaled by
	// the outer side's cardinality.
	SrcRebindScaled
	// SrcChildAlpha: §4.4(2) scale-up by the immediate children's progress
	// below a semi-blocking operator.
	SrcChildAlpha
	// SrcPipelineAlpha: Equation 3 scale-up by driver-node progress.
	SrcPipelineAlpha
	// SrcInterpolated: the prior-work linear interpolation [22]
	// (Options.InterpRefine).
	SrcInterpolated
	// SrcSharedHint: the ensemble's shared refined-N̂ hint (§4j) — an
	// observed-selectivity or closed-exact refinement computed once per
	// poll and consumed by every candidate in place of the raw optimizer
	// fallback.
	SrcSharedHint
)

func (s NSource) String() string {
	switch s {
	case SrcOptimizer:
		return "optimizer"
	case SrcClosedExact:
		return "closed"
	case SrcCatalogExact:
		return "catalog"
	case SrcChild:
		return "child"
	case SrcPropagated:
		return "propagated"
	case SrcIOFraction:
		return "io-fraction"
	case SrcRebindScaled:
		return "rebind-scaled"
	case SrcChildAlpha:
		return "child-alpha"
	case SrcPipelineAlpha:
		return "pipeline-alpha"
	case SrcInterpolated:
		return "interpolated"
	case SrcSharedHint:
		return "shared-hint"
	}
	return fmt.Sprintf("NSource(%d)", int(s))
}

// Term decomposes one operator's role in an estimate: its observed k_i,
// refined N̂_i (with how it was derived and what clamps applied), its
// driver-set membership, its displayed progress, and its additive
// contribution to overall query progress.
type Term struct {
	NodeID   int
	Physical plan.PhysicalOp

	// K is the observed output count k_i at the snapshot.
	K int64
	// N is the refined cardinality N̂_i the estimate used.
	N float64
	// EstRows is the raw optimizer estimate, for comparison.
	EstRows float64
	// Source says which §4 rule produced N.
	Source NSource
	// Alpha is the scale-up fraction the rule used (I/O fraction, child or
	// pipeline α, rebind ratio); 0 when no scale-up was involved.
	Alpha float64

	// Bounds are the Appendix A worst-case bounds (when Options.Bound).
	Bounds Bounds
	// BoundClamped reports that the bound actually moved N̂.
	BoundClamped bool

	// Pipeline is the node's pipeline ID; Driver/InnerDriver its α-set
	// membership (§3.1.1, §4.4(1)).
	Pipeline    int
	Driver      bool
	InnerDriver bool

	// Op is the displayed per-operator progress; MonotoneClamped reports
	// that the display-layer high-water mark raised it above this poll's
	// raw value.
	Op              float64
	MonotoneClamped bool

	// Contribution is this node's additive share of the raw query
	// progress: summing Contribution over all terms reproduces RawQuery
	// exactly, for every estimator mode.
	Contribution float64

	// EnsembleMode, in ensemble mode, names the hysteresis-selected
	// candidate whose N̂ derivation (Source, Alpha, bound clamps) this term
	// carries. Empty in other modes.
	EnsembleMode string
	// CandidateContrib, in ensemble mode, splits Contribution per
	// candidate (aligned with Explanation.Candidates): entry i is
	// weightᵢ · contributionᵢ(node), so the entries sum to Contribution
	// and the full matrix sums to the blended RawQuery.
	CandidateContrib []float64

	// num accumulates the node's numerator while the estimator runs; the
	// final normalization turns it into Contribution.
	num float64
}

// Explanation is the introspection record of one estimation pass: the full
// per-operator decomposition behind the single number LQS displays.
type Explanation struct {
	At   sim.Duration
	Plan *plan.Plan
	// Mode is the query-progress aggregation used: "tgn", "driver",
	// "weighted", or "ensemble".
	Mode  string
	Terms []Term // indexed by node ID
	// RawQuery is the mode formula's value before display clamps;
	// Σ Terms[i].Contribution == RawQuery.
	RawQuery float64
	// Query is the displayed value (clamped to [0,1], monotone).
	Query float64
	// QueryMonotoneClamped reports that the monotone high-water mark
	// raised the displayed query progress above this poll's raw value.
	QueryMonotoneClamped bool
	PipelineProg         []float64
	// Degraded/DegradeReason mirror the estimate: this pass ran on a
	// degraded or repaired snapshot (Options.Degrade).
	Degraded      bool
	DegradeReason string
	// Candidates, in ensemble mode, attributes the blend per candidate:
	// name, weight (weights sum to 1), selector penalty, displayed and raw
	// query progress, and which candidate the hysteresis selected. Nil in
	// other modes.
	Candidates []EnsembleCandidate
}

// Explain runs one estimation pass with introspection enabled, returning
// the decomposition alongside the estimate itself. It is exactly an
// Estimate call — same refinement, same monotone state updates (an Explain
// counts as a poll) — with every intermediate recorded.
func (e *Estimator) Explain(snap *dmv.Snapshot) (*Explanation, *Estimate) {
	// Run the degradation repair first so the recorded K values and the
	// estimate both read the same (possibly repaired) snapshot.
	prepared, degraded, reason := e.prepare(snap)
	snap = prepared
	snap.Aggregate()
	if e.ens != nil {
		return e.explainEnsemble(snap, degraded, reason)
	}
	return e.explainFrom(snap, degraded, reason)
}

// explainFrom is the single-mode introspected pass over an already-prepared
// snapshot; Explain and the ensemble's per-candidate explains funnel
// through it.
func (e *Estimator) explainFrom(snap *dmv.Snapshot, degraded bool, reason string) (*Explanation, *Estimate) {
	x := &Explanation{
		At:    snap.At,
		Plan:  e.Plan,
		Terms: make([]Term, len(e.Plan.Nodes)),
		Mode:  e.mode(),
	}
	for _, n := range e.Plan.Nodes {
		t := &x.Terms[n.ID]
		t.NodeID = n.ID
		t.Physical = n.Physical
		t.EstRows = n.EstRows
		t.Pipeline = e.Decomp.PipeOf[n.ID]
	}
	for _, pl := range e.Decomp.Pipelines {
		for _, id := range pl.Drivers {
			x.Terms[id].Driver = true
		}
		for _, id := range pl.InnerDrivers {
			x.Terms[id].InnerDriver = true
		}
	}
	e.rec = x
	est := e.estimateFrom(snap, degraded, reason)
	e.rec = nil
	x.Query = est.Query
	x.PipelineProg = est.PipelineProg
	x.Degraded = est.Degraded
	x.DegradeReason = est.DegradeReason
	for _, n := range e.Plan.Nodes {
		t := &x.Terms[n.ID]
		t.K = snap.Op(n.ID).ActualRows
		t.N = est.N[n.ID]
		t.Op = est.Op[n.ID]
	}
	return x, est
}

// mode names the query-progress aggregation the options select.
func (e *Estimator) mode() string {
	switch {
	case e.Opt.Ensemble:
		return "ensemble"
	case e.Opt.Weighted:
		return "weighted"
	case e.Opt.DriverNodeQuery:
		return "driver"
	}
	return "tgn"
}

// note records how a node's N̂ was derived; no-op without a recorder.
func (e *Estimator) note(id int, src NSource, alpha float64) {
	if e.rec == nil || id < 0 || id >= len(e.rec.Terms) {
		return
	}
	e.rec.Terms[id].Source = src
	e.rec.Terms[id].Alpha = alpha
}

// noteBound records the bound interval and whether the clamp moved N̂.
func (e *Estimator) noteBound(id int, b Bounds, before, after float64) {
	if e.rec == nil || id < 0 || id >= len(e.rec.Terms) {
		return
	}
	e.rec.Terms[id].Bounds = b
	e.rec.Terms[id].BoundClamped = before != after
}

// addNum accumulates a node's query-progress numerator.
func (e *Estimator) addNum(id int, v float64) {
	if e.rec == nil || id < 0 || id >= len(e.rec.Terms) {
		return
	}
	e.rec.Terms[id].num += v
}

// finishContrib normalizes accumulated numerators into contributions that
// sum exactly to the recorded raw query progress.
func (e *Estimator) finishContrib(raw, den float64) {
	if e.rec == nil {
		return
	}
	e.rec.RawQuery = raw
	if den <= 0 {
		return
	}
	for i := range e.rec.Terms {
		e.rec.Terms[i].Contribution = e.rec.Terms[i].num / den
	}
}

// pipelineShares returns each node's share of a pipeline's progress
// denominator, mirroring pipelineProgress's weighting, so a pipeline's
// query-progress contribution can be distributed across its members
// (shares sum to 1). Degenerate pipelines put the whole share on their
// first member.
func (e *Estimator) pipelineShares(snap *dmv.Snapshot, est *Estimate, pl *Pipeline) map[int]float64 {
	dens := make(map[int]float64, len(pl.Members)+len(pl.Sources))
	var sum float64
	for _, id := range pl.Members {
		n := e.Plan.Node(id)
		_, total := e.termFor(snap, est, n)
		if total <= 0 {
			continue
		}
		w := 1.0
		if e.Opt.Weighted {
			w = e.nodeWeight(n) * math.Max(est.N[id], 1) / total
		}
		dens[id] += w * total
		sum += w * total
	}
	for _, id := range pl.Sources {
		w := 1.0
		if e.Opt.Weighted {
			w = outWeight(e.Plan.Node(id))
		}
		d := w * math.Max(est.N[id], 1)
		dens[id] += d
		sum += d
	}
	if sum <= 0 {
		if len(pl.Members) > 0 {
			return map[int]float64{pl.Members[0]: 1}
		}
		return nil
	}
	for id := range dens {
		dens[id] /= sum
	}
	return dens
}

// Render formats the explanation as an indented table following the plan
// tree, one line per operator under a query-level header.
func (x *Explanation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "progress explain @ %v  mode=%s  query=%.1f%% (raw %.2f%%)",
		x.At, x.Mode, x.Query*100, x.RawQuery*100)
	if x.QueryMonotoneClamped {
		sb.WriteString(" [monotone]")
	}
	if x.Degraded {
		sb.WriteString(" [degraded]")
	}
	sb.WriteByte('\n')
	if len(x.Candidates) > 0 {
		sb.WriteString("  candidates:")
		for _, c := range x.Candidates {
			fmt.Fprintf(&sb, " %s w=%.3f pen=%.4f q=%.1f%%", c.Name, c.Weight, c.Penalty, c.Query*100)
			if c.Selected {
				sb.WriteString("*")
			}
		}
		sb.WriteByte('\n')
	}
	var walk func(n *plan.Node, depth int)
	walk = func(n *plan.Node, depth int) {
		t := x.Terms[n.ID]
		sb.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&sb, "[%d] %s  op=%.1f%%", n.ID, n.Physical, t.Op*100)
		if t.MonotoneClamped {
			sb.WriteString(" [monotone]")
		}
		fmt.Fprintf(&sb, "  k=%d N̂=%.1f (est %.1f) src=%s", t.K, t.N, t.EstRows, t.Source)
		if t.Alpha > 0 {
			fmt.Fprintf(&sb, " α=%.3f", t.Alpha)
		}
		if t.Bounds.UB > 0 || t.Bounds.LB > 0 {
			fmt.Fprintf(&sb, " bounds=[%.0f,%.0f]", t.Bounds.LB, t.Bounds.UB)
			if t.BoundClamped {
				sb.WriteString("!")
			}
		}
		fmt.Fprintf(&sb, " pipe=%d", t.Pipeline)
		switch {
		case t.Driver:
			sb.WriteString(" drv")
		case t.InnerDriver:
			sb.WriteString(" inner-drv")
		}
		fmt.Fprintf(&sb, " contrib=%.2f%%", t.Contribution*100)
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(x.Plan.Root, 1)
	return sb.String()
}
