package progress

import (
	"math"

	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
)

// nodeWeight is the §4.6 operator weight: per-row CPU and I/O are assumed
// to overlap, so only their maximum counts. When weight feedback (§7) is
// configured and has an observation for the operator class, the observed
// per-row cost replaces the cost-model estimate.
func (e *Estimator) nodeWeight(n *plan.Node) float64 {
	if e.Opt.WeightFeedback != nil {
		if w, ok := e.Opt.WeightFeedback.Weight(n); ok {
			return w
		}
	}
	w := math.Max(n.EstCPUPerRow, n.EstIOPerRow)
	if w <= 0 {
		w = 1
	}
	return w
}

// pipelineDuration estimates the remaining-agnostic total duration of a
// pipeline: Σ w_i · N̂_i over its members, using the refined cardinalities
// — the paper recomputes the longest path "based on optimizer cost
// estimates of I/O and CPU cost per tuple and refined N_i counts".
func (e *Estimator) pipelineDuration(est *Estimate, pl *Pipeline) float64 {
	var d float64
	for _, id := range pl.Members {
		n := e.Plan.Node(id)
		d += e.nodeWeight(n) * math.Max(est.N[id], 1)
	}
	// Output phases of blocking operators feed this pipeline from below;
	// their (small) per-row emit cost still takes time.
	for _, id := range pl.Sources {
		d += outWeight(e.Plan.Node(id)) * math.Max(est.N[id], 1)
	}
	return d
}

// outWeight is the per-row cost of a blocking operator's output phase.
func outWeight(n *plan.Node) float64 {
	if n.EstOutCPUPerRow > 0 {
		return n.EstOutCPUPerRow
	}
	return 1
}

// longestPath returns the chain of pipelines from the root pipeline to a
// leaf pipeline with the maximum total estimated duration — the only path
// that bounds the query's end-to-end time (§4.6).
func (e *Estimator) longestPath(est *Estimate) []*Pipeline {
	type result struct {
		total float64
		path  []*Pipeline
	}
	var rec func(pl *Pipeline) result
	rec = func(pl *Pipeline) result {
		best := result{}
		for _, c := range pl.Children {
			r := rec(c)
			if r.total > best.total {
				best = r
			}
		}
		d := e.pipelineDuration(est, pl)
		return result{total: best.total + d, path: append([]*Pipeline{pl}, best.path...)}
	}
	return rec(e.Decomp.Root).path
}

// weightedQueryProgress is the §4.6 query-level estimator: progress is the
// duration-weighted average of pipeline progress.
//
// The paper restricts the sum to the longest path of speed-independent
// pipelines because SQL Server overlaps independent subtrees across
// threads, so only the critical path bounds the query's duration. This
// engine executes pipelines strictly serially — every pipeline contributes
// to elapsed time — so the faithful default here aggregates over all
// pipelines; Options.LongestPathOnly restores the paper's rule for
// ablation (see DESIGN.md).
func (e *Estimator) weightedQueryProgress(snap *dmv.Snapshot, est *Estimate) float64 {
	pipes := e.Decomp.Pipelines
	if e.Opt.LongestPathOnly {
		pipes = e.longestPath(est)
	}
	var num, den float64
	for _, pl := range pipes {
		d := e.pipelineDuration(est, pl)
		if d <= 0 {
			continue
		}
		num += d * est.PipelineProg[pl.ID]
		den += d
	}
	if den <= 0 {
		e.finishContrib(0, 0)
		return 0
	}
	if e.rec != nil {
		// Distribute each pipeline's duration-weighted progress across its
		// members in proportion to their progress-denominator share, so the
		// per-node contributions sum exactly to the query progress.
		for _, pl := range pipes {
			d := e.pipelineDuration(est, pl)
			if d <= 0 {
				continue
			}
			c := d * est.PipelineProg[pl.ID]
			for id, share := range e.pipelineShares(snap, est, pl) {
				e.addNum(id, c*share)
			}
		}
		e.finishContrib(num/den, den)
	}
	return num / den
}

// tgnQueryProgress is Equation 2 with unit weights over all nodes (the
// Total GetNext model of [7]), with the blocking input-phase terms added
// when TwoPhaseBlocking is on.
func (e *Estimator) tgnQueryProgress(snap *dmv.Snapshot, est *Estimate) float64 {
	var num, den float64
	for _, n := range e.Plan.Nodes {
		k := float64(snap.Op(n.ID).ActualRows)
		total := math.Max(est.N[n.ID], 1)
		num += k
		den += total
		e.addNum(n.ID, k)
		if e.Opt.TwoPhaseBlocking && n.IsBlocking() && len(n.Children) > 0 {
			// The input-phase terms belong to the blocking node itself.
			for _, c := range n.Children {
				num += float64(snap.Op(c.ID).ActualRows)
				den += math.Max(est.N[c.ID], 1)
				e.addNum(n.ID, float64(snap.Op(c.ID).ActualRows))
			}
		}
	}
	if den <= 0 {
		e.finishContrib(0, 0)
		return 0
	}
	e.finishContrib(num/den, den)
	return num / den
}

// driverQueryProgress is the driver-node estimator (DNE) of [7]: Equation
// 2 restricted to driver nodes, whose cardinalities are known most
// exactly.
func (e *Estimator) driverQueryProgress(snap *dmv.Snapshot, est *Estimate) float64 {
	var num, den float64
	drivers := e.Decomp.DriverNodes()
	if e.Opt.SemiBlocking {
		// Disjoint from DriverNodes() by construction, so the sum weights
		// each node once (pinned by TestDriverSetsDisjointInvariant).
		for _, pl := range e.Decomp.Pipelines {
			drivers = append(drivers, pl.InnerDrivers...)
		}
	}
	for _, id := range drivers {
		n := e.Plan.Node(id)
		total := math.Max(est.N[id], 1)
		num += e.driverProgress(snap, est, n) * total
		den += total
		e.addNum(id, e.driverProgress(snap, est, n)*total)
	}
	if den <= 0 {
		e.finishContrib(0, 0)
		return 0
	}
	e.finishContrib(num/den, den)
	return num / den
}
