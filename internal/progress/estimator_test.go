package progress

import (
	"math"
	"testing"

	"lqs/internal/engine/expr"
	"lqs/internal/plan"
)

// avgAbsQueryErr compares a config's query progress against the oracle
// (true-N) GetNext progress over every snapshot — per-trace Errorcount.
func avgAbsQueryErr(t *testing.T, f *fixture, root *plan.Node, estErr func(*plan.Node) float64, o Options) float64 {
	t.Helper()
	p, tr := f.trace(t, root, estErr)
	ests := estimateAll(p, f.cat, tr, o)
	var sum float64
	n := 0
	for i, s := range tr.Snapshots {
		sum += math.Abs(ests[i].Query - trueQueryProgress(tr, s))
		n++
	}
	if n == 0 {
		t.Fatal("trace has no snapshots; query too fast for the poll interval")
	}
	return sum / float64(n)
}

// misestimatedFilterPlan builds a scan→filter→sort plan whose filter
// estimate is off by the given multiplier.
func misestimatedFilterPlan(f *fixture) (*plan.Node, *plan.Node) {
	fl := f.b.Filter(f.b.TableScan("fact", nil, nil), expr.Lt(expr.C(2, "cat"), expr.KInt(10)))
	s := f.b.Sort(fl, []int{3}, nil)
	return s, fl
}

func TestRefinementConvergesToTrueCardinality(t *testing.T) {
	f := newFixture(t)
	root, fl := misestimatedFilterPlan(f)
	// Inject a 50x underestimate on the filter.
	inject := func(n *plan.Node) float64 {
		if n == fl {
			return 0.02
		}
		return 1
	}
	p, tr := f.trace(t, root, inject)
	trueN := float64(tr.TrueRows[fl.ID])
	if math.Abs(p.Node(fl.ID).EstRows-trueN) < trueN/2 {
		t.Fatalf("injection failed: est %v vs true %v", p.Node(fl.ID).EstRows, trueN)
	}
	est := NewEstimator(p, f.cat, Options{Refine: true, MinRefineRows: 16})
	// By half-way through the scan, the refined estimate should be close.
	mid := tr.Snapshots[len(tr.Snapshots)/2]
	e := est.Estimate(mid)
	if mid.Op(fl.ID).ActualRows > 100 { // refinement active
		rel := math.Abs(e.N[fl.ID]-trueN) / trueN
		if rel > 0.25 {
			t.Fatalf("refined N = %v, true %v (rel err %v)", e.N[fl.ID], trueN, rel)
		}
	}
	// Without refinement the estimate stays wrong.
	base := NewEstimator(p, f.cat, Options{})
	eb := base.Estimate(mid)
	if math.Abs(eb.N[fl.ID]-trueN)/trueN < 0.5 {
		t.Fatal("baseline unexpectedly accurate; injection broken")
	}
}

func TestRefinementImprovesQueryProgress(t *testing.T) {
	f := newFixture(t)
	mk := func() (*plan.Node, func(*plan.Node) float64) {
		root, fl := misestimatedFilterPlan(f)
		return root, func(n *plan.Node) float64 {
			if n == fl {
				return 0.02
			}
			return 1
		}
	}
	r1, i1 := mk()
	errNone := avgAbsQueryErr(t, f, r1, i1, Options{})
	r2, i2 := mk()
	errRef := avgAbsQueryErr(t, f, r2, i2, Options{Refine: true, MinRefineRows: 16})
	if errRef >= errNone {
		t.Fatalf("refinement did not help: %v vs %v", errRef, errNone)
	}
}

func TestBoundingClampsOverestimate(t *testing.T) {
	f := newFixture(t)
	// Overestimate the filter 40x: bounds cap it at the scan's table size.
	root, fl := misestimatedFilterPlan(f)
	inject := func(n *plan.Node) float64 {
		if n == fl {
			return 40
		}
		return 1
	}
	p, tr := f.trace(t, root, inject)
	if p.Node(fl.ID).EstRows <= 20000 {
		t.Fatalf("overestimate injection too small: %v", p.Node(fl.ID).EstRows)
	}
	est := NewEstimator(p, f.cat, Options{Bound: true})
	mid := tr.Snapshots[len(tr.Snapshots)/2]
	e := est.Estimate(mid)
	// Filter UB = (UB_scan − K_scan) + K_filter ≤ table size.
	if e.N[fl.ID] > 20000 {
		t.Fatalf("bounds failed to clamp: N = %v", e.N[fl.ID])
	}
	if e.Bounds[fl.ID].UB > 20001 {
		t.Fatalf("filter UB = %v, must not exceed input UB", e.Bounds[fl.ID].UB)
	}
}

func TestBoundsExactForCompletedSort(t *testing.T) {
	f := newFixture(t)
	root, _ := misestimatedFilterPlan(f)
	p, tr := f.trace(t, root, nil)
	est := NewEstimator(p, f.cat, Options{Bound: true})
	e := est.Estimate(tr.Final)
	// After completion every bound collapses to the true count for
	// deterministic operators like Sort.
	sortID := p.Root.ID
	if e.Bounds[sortID].LB != e.Bounds[sortID].UB {
		t.Fatalf("final sort bounds not tight: %+v", e.Bounds[sortID])
	}
	if e.Bounds[sortID].LB != float64(tr.TrueRows[sortID]) {
		t.Fatalf("final bound %v != true %d", e.Bounds[sortID].LB, tr.TrueRows[sortID])
	}
}

func TestTwoPhaseBlockingProgressRisesDuringInput(t *testing.T) {
	f := newFixture(t)
	agg := f.b.HashAgg(f.b.TableScan("fact", nil, nil), []int{2}, []expr.AggSpec{{Kind: expr.CountStar}})
	p, tr := f.trace(t, agg, nil)
	var snapMid int
	for i, s := range tr.Snapshots {
		if s.Op(1).ActualRows > 5000 && s.Op(agg.ID).ActualRows == 0 {
			snapMid = i
		}
	}
	if snapMid == 0 {
		t.Skip("no mid-input snapshot captured")
	}
	mid := tr.Snapshots[snapMid]
	withPhases := NewEstimator(p, f.cat, Options{TwoPhaseBlocking: true}).Estimate(mid)
	without := NewEstimator(p, f.cat, Options{}).Estimate(mid)
	if without.Op[agg.ID] != 0 {
		t.Fatalf("output-only model should report 0 before output, got %v", without.Op[agg.ID])
	}
	if withPhases.Op[agg.ID] <= 0.1 {
		t.Fatalf("two-phase model stuck at %v during input", withPhases.Op[agg.ID])
	}
}

func TestStoragePredIOProgress(t *testing.T) {
	f := newFixture(t)
	// A hard-to-estimate predicate pushed into the scan (§4.3).
	pushed := expr.Eq(expr.ModBy(expr.C(0, "id"), expr.KInt(97)), expr.KInt(0))
	scan := f.b.TableScan("fact", nil, pushed)
	p, tr := f.trace(t, scan, func(n *plan.Node) float64 {
		if n == scan {
			return 30 // gross overestimate of the pushed predicate
		}
		return 1
	})
	mid := tr.Snapshots[len(tr.Snapshots)/2]
	ioBased := NewEstimator(p, f.cat, Options{StoragePredIO: true}).Estimate(mid)
	rowBased := NewEstimator(p, f.cat, Options{}).Estimate(mid)
	trueFrac := float64(mid.Op(scan.ID).LogicalReads) / float64(mid.Op(scan.ID).PagesTotal)
	if math.Abs(ioBased.Op[scan.ID]-trueFrac) > 0.02 {
		t.Fatalf("IO-based progress %v, want %v", ioBased.Op[scan.ID], trueFrac)
	}
	// The row-based estimate is badly off given the misestimate.
	if math.Abs(rowBased.Op[scan.ID]-trueFrac) < math.Abs(ioBased.Op[scan.ID]-trueFrac) {
		t.Fatal("IO-based progress should beat row-based under misestimation")
	}
}

func TestBatchModeSegmentProgress(t *testing.T) {
	f := newFixture(t)
	scan := f.b.ColumnstoreScan("fact", "cs", []int{0, 2}, nil)
	p, tr := f.trace(t, scan, nil)
	var mid int
	for i, s := range tr.Snapshots {
		if sp := s.Op(scan.ID); sp.SegmentsProcessed > 0 && sp.SegmentsProcessed < sp.SegmentsTotal {
			mid = i
			break
		}
	}
	s := tr.Snapshots[mid]
	e := NewEstimator(p, f.cat, Options{BatchMode: true}).Estimate(s)
	want := float64(s.Op(scan.ID).SegmentsProcessed) / float64(s.Op(scan.ID).SegmentsTotal)
	if math.Abs(e.Op[scan.ID]-want) > 1e-9 {
		t.Fatalf("batch progress %v, want segment fraction %v", e.Op[scan.ID], want)
	}
}

func TestSemiBlockingInnerDriverAndRebindScaling(t *testing.T) {
	f := newFixture(t)
	outer := f.b.TableScan("dim", nil, nil)
	inner := f.b.SeekEq("fact", "ix_dim", []expr.Expr{expr.C(0, "dim.id")}, nil)
	nl := f.b.NestedLoopsNode(plan.LogicalInnerJoin, outer, inner, nil)
	nl.NLBuffer = 1 << 20 // buffer ALL outer rows before probing (§4.4 worst case)
	p, tr := f.trace(t, nl, nil)
	// Find a snapshot where the outer is fully consumed but the join is
	// far from done.
	var snap int
	for i, s := range tr.Snapshots {
		if s.Op(outer.ID).ActualRows == 500 && float64(s.Op(nl.ID).ActualRows) < 0.5*float64(tr.TrueRows[nl.ID]) {
			snap = i
			break
		}
	}
	if snap == 0 {
		t.Fatal("buffering scenario not captured")
	}
	s := tr.Snapshots[snap]
	plain := NewEstimator(p, f.cat, Options{DriverNodeQuery: true}).Estimate(s)
	adjusted := NewEstimator(p, f.cat, Options{DriverNodeQuery: true, Refine: true, SemiBlocking: true, MinRefineRows: 8}).Estimate(s)
	truth := trueQueryProgress(tr, s)
	// Plain DNE sees the outer driver at 100% and wildly overestimates.
	if plain.Query < 0.9 {
		t.Fatalf("plain DNE should be fooled by buffering, got %v (truth %v)", plain.Query, truth)
	}
	if math.Abs(adjusted.Query-truth) >= math.Abs(plain.Query-truth) {
		t.Fatalf("semi-blocking adjustment did not help: adj %v plain %v truth %v", adjusted.Query, plain.Query, truth)
	}
	// Rebind scaling: the refined inner N should approximate the true
	// total rather than the per-probe count.
	trueInner := float64(tr.TrueRows[inner.ID])
	if s.Op(inner.ID).Rebinds > 32 {
		rel := math.Abs(adjusted.N[inner.ID]-trueInner) / trueInner
		if rel > 0.5 {
			t.Fatalf("inner refined N = %v, true %v", adjusted.N[inner.ID], trueInner)
		}
	}
}

func TestWeightedProgressTracksTimeBetter(t *testing.T) {
	f := newFixture(t)
	// The Fig. 12 scenario: consecutive pipelines whose per-tuple speeds
	// differ by over an order of magnitude. Pipeline 1 streams 20000 rows
	// through a cheap batch-mode aggregation; pipeline 2 runs a slow
	// random-I/O nested-loops lookup over few rows. Unweighted progress
	// over-credits the fast pipeline; weights fix it.
	mk := func() *plan.Node {
		cs := f.b.ColumnstoreScan("fact", "cs", []int{1}, nil)
		agg := f.b.HashAgg(cs, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
		agg.BatchMode = true
		inner := f.b.SeekEq("fact", "ix_dim", []expr.Expr{expr.C(0, "agg.dim_id")}, nil)
		return f.b.NestedLoopsNode(plan.LogicalInnerJoin, agg, inner, nil)
	}
	timeErr := func(o Options) float64 {
		p, tr := f.trace(t, mk(), nil)
		ests := estimateAll(p, f.cat, tr, o)
		var sum float64
		for i, s := range tr.Snapshots {
			frac := float64(s.At-tr.StartedAt) / float64(tr.EndedAt-tr.StartedAt)
			sum += math.Abs(ests[i].Query - frac)
		}
		return sum / float64(len(tr.Snapshots))
	}
	base := Options{TwoPhaseBlocking: true, BatchMode: true}
	weighted := base
	weighted.Weighted = true
	eUnweighted := timeErr(base)
	eWeighted := timeErr(weighted)
	if eWeighted >= eUnweighted {
		t.Fatalf("weights did not improve time correlation: %v vs %v", eWeighted, eUnweighted)
	}
}

func TestQueryProgressReachesOneAtCompletion(t *testing.T) {
	f := newFixture(t)
	for _, o := range []Options{TGNOptions(), DNEOptions(), LQSOptions()} {
		root, _ := misestimatedFilterPlan(f)
		p, tr := f.trace(t, root, nil)
		e := NewEstimator(p, f.cat, o).Estimate(tr.Final)
		if e.Query < 0.99 {
			t.Fatalf("final query progress %v with options %+v", e.Query, o)
		}
		for id, op := range e.Op {
			if tr.Final.Op(id).Closed && op != 1 {
				t.Fatalf("closed op %d progress %v", id, op)
			}
		}
	}
}

func TestPerOpProgressMonotoneUnderLQS(t *testing.T) {
	f := newFixture(t)
	root, _ := misestimatedFilterPlan(f)
	p, tr := f.trace(t, root, nil)
	ests := estimateAll(p, f.cat, tr, LQSOptions())
	// Operator progress may fluctuate while estimates refine, but must
	// never run backwards by a large amount between adjacent snapshots.
	for i := 1; i < len(ests); i++ {
		for id := range ests[i].Op {
			if ests[i].Op[id] < ests[i-1].Op[id]-0.25 {
				t.Fatalf("op %d progress fell from %v to %v at snapshot %d",
					id, ests[i-1].Op[id], ests[i].Op[id], i)
			}
		}
	}
}

func TestInterpolationConvergesSlower(t *testing.T) {
	f := newFixture(t)
	root, fl := misestimatedFilterPlan(f)
	inject := func(n *plan.Node) float64 {
		if n == fl {
			return 0.01 // 100x underestimate: interpolation's weak spot
		}
		return 1
	}
	p, tr := f.trace(t, root, inject)
	trueN := float64(tr.TrueRows[fl.ID])
	snap := tr.Snapshots[len(tr.Snapshots)/4]
	if snap.Op(fl.ID).ActualRows < 64 {
		t.Skip("not enough rows observed at the quarter mark")
	}
	direct := NewEstimator(p, f.cat, Options{Refine: true, MinRefineRows: 16}).Estimate(snap)
	interp := NewEstimator(p, f.cat, Options{Refine: true, InterpRefine: true, MinRefineRows: 16}).Estimate(snap)
	errDirect := math.Abs(direct.N[fl.ID] - trueN)
	errInterp := math.Abs(interp.N[fl.ID] - trueN)
	if errDirect >= errInterp {
		t.Fatalf("direct scale-up (%v) should beat interpolation (%v) under gross misestimates", errDirect, errInterp)
	}
}

func TestDNEVersusTGNOnCleanPlan(t *testing.T) {
	f := newFixture(t)
	// A clean scan-heavy plan: driver cardinalities exact, so DNE should
	// be accurate even with a bad join estimate.
	mk := func() (*plan.Node, func(*plan.Node) float64) {
		hj := f.b.HashJoinNode(plan.LogicalInnerJoin,
			f.b.TableScan("fact", nil, nil), f.b.TableScan("dim", nil, nil),
			[]int{1}, []int{0}, nil)
		return hj, func(n *plan.Node) float64 {
			if n == hj {
				return 20
			}
			return 1
		}
	}
	r1, i1 := mk()
	errTGN := avgAbsQueryErr(t, f, r1, i1, TGNOptions())
	r2, i2 := mk()
	errDNE := avgAbsQueryErr(t, f, r2, i2, DNEOptions())
	// Note: the Errorcount oracle is itself TGN-shaped, so we only check
	// DNE stays sane rather than strictly better.
	if errDNE > 0.5 || errTGN < 0 {
		t.Fatalf("errors out of range: DNE %v TGN %v", errDNE, errTGN)
	}
}
