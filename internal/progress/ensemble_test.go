package progress

import (
	"math"
	"testing"
	"time"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// ensembleFixture runs one small synthetic query and returns an
// ensemble-mode estimator plus the poll trace to feed it.
func ensembleFixture(t *testing.T) (*Estimator, *dmv.Trace) {
	t.Helper()
	cfg := workload.SynthConfig{
		Name: "ENSFIX", Seed: 11, NumTables: 5, MinRows: 300, MaxRows: 2000,
		NumQueries: 1, MinJoins: 2, MaxJoins: 3, GroupByFrac: 1,
	}
	w := workload.Synth(cfg)
	p := plan.Finalize(w.Queries[0].Build(w.Builder()))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 150*time.Microsecond)
	w.DB.ColdStart()
	query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), clock)
	poller.Register(query)
	query.Run()
	tr := poller.Finish(query)
	if len(tr.Snapshots) < 6 {
		t.Fatalf("fixture produced only %d polls", len(tr.Snapshots))
	}
	return NewEstimator(p, w.DB.Catalog, EnsembleOptions()), tr
}

// TestEnsembleObserveFreezesOnDegraded is the white-box audit of the §4j
// hysteresis contract: a degraded poll must advance neither the penalty
// EWMAs nor the weights nor the takeover streak — a degraded burst cannot
// flip the selected candidate — and a replayed (at ≤ lastAt) poll is
// equally inert, keeping Estimate idempotent per snapshot.
func TestEnsembleObserveFreezesOnDegraded(t *testing.T) {
	est, _ := ensembleFixture(t)
	en := est.ens

	en.observe(100, []float64{0.10, 0.10, 0.10}, false)
	en.observe(200, []float64{0.20, 0.18, 0.22}, false)
	en.observe(300, []float64{0.30, 0.25, 0.35}, false)

	snapState := func() (int, int, int, sim.Duration, []float64, []float64) {
		return en.polls, en.selected, en.streak, en.lastAt,
			append([]float64(nil), en.weights...),
			append([]float64(nil), en.penalty...)
	}
	polls, selected, streak, lastAt, weights, penalty := snapState()

	// A degraded burst with trajectories crafted to flatter the first
	// candidate (perfectly linear) and trash the anchor.
	for i := 1; i <= 8; i++ {
		at := sim.Duration(300 + 100*i)
		en.observe(at, []float64{0.30 + 0.1*float64(i), 0.10, 0.90}, true)
	}
	// And a stale replay of an already-observed timestamp.
	en.observe(250, []float64{0.99, 0.99, 0.99}, false)

	gotPolls, gotSel, gotStreak, gotLast, gotW, gotPen := snapState()
	if gotPolls != polls || gotSel != selected || gotStreak != streak || gotLast != lastAt {
		t.Fatalf("selector state advanced on degraded/stale polls: polls %d→%d selected %d→%d streak %d→%d lastAt %v→%v",
			polls, gotPolls, selected, gotSel, streak, gotStreak, lastAt, gotLast)
	}
	for i := range weights {
		if gotW[i] != weights[i] || gotPen[i] != penalty[i] {
			t.Fatalf("candidate %d weight/penalty moved on degraded polls: w %v→%v pen %v→%v",
				i, weights[i], gotW[i], penalty[i], gotPen[i])
		}
	}

	// A healthy poll afterwards resumes the selector.
	en.observe(1200, []float64{0.40, 0.35, 0.45}, false)
	if en.polls != polls+1 {
		t.Fatalf("healthy poll after burst did not advance selector: polls %d, want %d", en.polls, polls+1)
	}
}

// TestEnsembleDegradedBurstEndToEnd drives the same contract through the
// public Estimate path: mid-flight, a burst of poller-synthesized degraded
// snapshots leaves the published weights, penalties, and selection exactly
// where the last healthy poll put them, and progress holds monotone.
func TestEnsembleDegradedBurstEndToEnd(t *testing.T) {
	est, tr := ensembleFixture(t)
	half := len(tr.Snapshots) / 2
	var last *Estimate
	for _, s := range tr.Snapshots[:half] {
		last = est.Estimate(s)
	}
	if last == nil || last.Ensemble == nil {
		t.Fatal("no ensemble info on healthy polls")
	}
	ref := last.Ensemble

	// Replay the rest of the trace as a degraded burst: the poller marks
	// synthesized snapshots Degraded, counters keep moving underneath.
	for si, s := range tr.Snapshots[half:] {
		d := s.Clone()
		d.Degraded = true
		d.DegradeReason = "test burst"
		e := est.Estimate(d)
		if !e.Degraded {
			t.Fatalf("burst snap %d: estimate not marked degraded", si)
		}
		info := e.Ensemble
		if info.Selected != ref.Selected || info.Switches != ref.Switches {
			t.Fatalf("burst snap %d: selection moved (selected %d→%d, switches %d→%d)",
				si, ref.Selected, info.Selected, ref.Switches, info.Switches)
		}
		for i := range ref.Weights {
			if info.Weights[i] != ref.Weights[i] || info.Penalty[i] != ref.Penalty[i] {
				t.Fatalf("burst snap %d candidate %d: weights/penalties advanced (w %v→%v, pen %v→%v)",
					si, i, ref.Weights[i], info.Weights[i], ref.Penalty[i], info.Penalty[i])
			}
		}
		if e.Query < last.Query {
			t.Fatalf("burst snap %d: degraded progress regressed %v → %v", si, last.Query, e.Query)
		}
		last = e
	}
}

// TestEnsembleExplainMatchesEstimate: the introspected path must publish
// the same blended estimate as the display path, with candidate
// contributions that reproduce the blended raw progress per node.
func TestEnsembleExplainMatchesEstimate(t *testing.T) {
	estA, tr := ensembleFixture(t)
	estB := NewEstimator(estA.Plan, estA.Cat, EnsembleOptions())
	snaps := append(append([]*dmv.Snapshot{}, tr.Snapshots...), tr.Final)
	for si, s := range snaps {
		a := estA.Estimate(s)
		x, b := estB.Explain(s)
		if a.Query != b.Query {
			t.Fatalf("snap %d: Estimate %v != Explain %v", si, a.Query, b.Query)
		}
		var raw float64
		for _, term := range x.Terms {
			var csum float64
			for _, cc := range term.CandidateContrib {
				csum += cc
			}
			if math.Abs(csum-term.Contribution) > 1e-9 {
				t.Fatalf("snap %d node %d: candidate contributions sum %v != contribution %v",
					si, term.NodeID, csum, term.Contribution)
			}
			raw += term.Contribution
		}
		if math.Abs(raw-x.RawQuery) > 1e-6 {
			t.Fatalf("snap %d: contributions sum %v != raw %v", si, raw, x.RawQuery)
		}
		selected := 0
		for _, c := range x.Candidates {
			if c.Selected {
				selected++
			}
		}
		if selected != 1 {
			t.Fatalf("snap %d: %d candidates marked selected, want exactly 1", si, selected)
		}
	}
}
