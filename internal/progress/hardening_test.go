package progress

import (
	"math"
	"testing"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/dmv"
	"lqs/internal/engine/expr"
	"lqs/internal/plan"
)

// The estimator is a display component fed by an asynchronous poller: it
// must tolerate snapshots that are empty, partial (fewer ops than the plan
// has nodes), stale, or carrying degenerate optimizer estimates — and with
// Monotone set, its output must never move a progress bar backwards.

func (f *fixture) hardeningPlan(tb testing.TB) (*plan.Plan, *dmv.Trace) {
	tb.Helper()
	agg := f.b.HashAgg(
		f.b.Filter(f.b.TableScan("fact", nil, nil), expr.Lt(expr.C(2, "cat"), expr.KInt(10))),
		[]int{2}, []expr.AggSpec{{Kind: expr.CountStar}})
	return f.trace(tb, f.b.Sort(agg, []int{0}, nil), nil)
}

func TestEstimateToleratesEmptyAndPartialSnapshots(t *testing.T) {
	f := newFixture(t)
	p, _ := f.hardeningPlan(t)
	e := NewEstimator(p, f.cat, LQSOptions())

	for _, snap := range []*dmv.Snapshot{
		{},                              // empty: poll before registration
		{Ops: make([]dmv.OpProfile, 2)}, // partial: fewer ops than plan nodes
		{Ops: make([]dmv.OpProfile, len(p.Nodes))}, // right size, all zero
	} {
		est := e.Estimate(snap) // must not panic
		if est.Query < 0 || est.Query > 1 || math.IsNaN(est.Query) {
			t.Fatalf("query progress %v from degenerate snapshot", est.Query)
		}
		for id, op := range est.Op {
			if op < 0 || op > 1 || math.IsNaN(op) {
				t.Fatalf("node %d progress %v from degenerate snapshot", id, op)
			}
		}
		for id, n := range est.N {
			if math.IsNaN(n) || math.IsInf(n, 0) || n < 0 {
				t.Fatalf("node %d N̂ = %v from degenerate snapshot", id, n)
			}
		}
	}
}

func TestEstimateSanitizesDegenerateOptimizerEstimates(t *testing.T) {
	f := newFixture(t)
	p, tr := f.hardeningPlan(t)
	// Poison one node's estimate after planning, simulating a pathological
	// selectivity product.
	poisoned := p.Nodes[1]
	saved := poisoned.EstRows
	poisoned.EstRows = math.NaN()
	defer func() { poisoned.EstRows = saved }()

	e := NewEstimator(p, f.cat, Options{Refine: true, MinRefineRows: 16})
	for _, snap := range tr.Snapshots {
		est := e.Estimate(snap)
		for id, n := range est.N {
			if math.IsNaN(n) || math.IsInf(n, 0) || n < 0 {
				t.Fatalf("node %d N̂ = %v despite sanitization", id, n)
			}
		}
		if math.IsNaN(est.Query) {
			t.Fatal("NaN query progress leaked through")
		}
	}
}

func TestMonotoneProgressAcrossStaleSnapshots(t *testing.T) {
	f := newFixture(t)
	p, tr := f.hardeningPlan(t)
	if len(tr.Snapshots) < 4 {
		t.Fatalf("trace too short: %d snapshots", len(tr.Snapshots))
	}

	e := NewEstimator(p, f.cat, LQSOptions())
	// Replay the trace with deliberate re-deliveries of older snapshots —
	// the out-of-order arrivals a decoupled poller can produce.
	sequence := []*dmv.Snapshot{
		tr.Snapshots[0],
		tr.Snapshots[2],
		tr.Snapshots[1], // stale
		tr.Snapshots[3],
		tr.Snapshots[0], // very stale
		tr.Final,
	}
	prevQuery := -1.0
	prevOp := make([]float64, len(p.Nodes))
	for i, snap := range sequence {
		est := e.Estimate(snap)
		if est.Query < prevQuery {
			t.Fatalf("step %d: query progress regressed %v -> %v", i, prevQuery, est.Query)
		}
		prevQuery = est.Query
		for id := range est.Op {
			if est.Op[id] < prevOp[id] {
				t.Fatalf("step %d node %d: op progress regressed %v -> %v",
					i, id, prevOp[id], est.Op[id])
			}
			prevOp[id] = est.Op[id]
		}
	}
	if prevQuery < 0.99 {
		t.Fatalf("final progress %v after replaying to the final snapshot", prevQuery)
	}

	// Without Monotone the same stale replay is allowed to regress — the
	// ablation path must stay unconstrained. (No assertion that it does
	// regress, only that the option is what separates the two behaviours.)
	raw := NewEstimator(p, f.cat, TGNOptions())
	for _, snap := range sequence {
		raw.Estimate(snap)
	}
}

// TestEstimateToleratesStaleCatalog: a client can monitor a query while
// holding a catalog that lacks the plan's tables (dropped, renamed, or a
// stale metadata cache). Pre-fix, knownLeafTotal and ComputeBounds called
// Cat.MustTable and panicked the monitor; now both degrade to optimizer
// estimates / trivial bounds.
func TestEstimateToleratesStaleCatalog(t *testing.T) {
	f := newFixture(t)
	p, tr := f.hardeningPlan(t)

	for name, cat := range map[string]*catalog.Catalog{
		"empty": catalog.NewCatalog(), // knows none of the plan's tables
		"nil":   nil,
	} {
		e := NewEstimator(p, cat, LQSOptions())
		for _, snap := range append(tr.Snapshots, tr.Final) {
			est := e.Estimate(snap) // pre-fix: panics in MustTable
			if est.Query < 0 || est.Query > 1 || math.IsNaN(est.Query) {
				t.Fatalf("%s catalog: query progress %v", name, est.Query)
			}
			for id, v := range est.N {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("%s catalog: node %d N̂ = %v", name, id, v)
				}
				// Degradation contract: with no table metadata the scan's
				// N̂ falls back to the optimizer estimate (possibly
				// clamped by the observation-only bounds).
				n := p.Node(id)
				if n.IsLeaf() && n.Physical == plan.TableScan && snap.Op(id).ActualRows == 0 {
					if v != est.Bounds[id].Clamp(n.EstRows) {
						t.Fatalf("%s catalog: unopened scan N̂ = %v, want EstRows fallback %v",
							name, v, n.EstRows)
					}
				}
			}
			for id, b := range est.Bounds {
				if k := float64(snap.Op(id).ActualRows); b.LB > k+0.5 && b.LB > 0 && k > 0 {
					// Bounds must stay trivially true without metadata.
					if b.LB > float64(tr.TrueRows[id]) {
						t.Fatalf("%s catalog: node %d LB %v exceeds true N %d",
							name, id, b.LB, tr.TrueRows[id])
					}
				}
			}
		}
	}
}

// Monotone high-water marks are per-estimator: a fresh estimator starts
// from zero, so traces replayed through different configurations (the
// experiment harness) stay independent.
func TestMonotoneStateIsPerEstimator(t *testing.T) {
	f := newFixture(t)
	p, tr := f.hardeningPlan(t)

	first := NewEstimator(p, f.cat, LQSOptions())
	first.Estimate(tr.Final)

	second := NewEstimator(p, f.cat, LQSOptions())
	early := second.Estimate(tr.Snapshots[0])
	if early.Query >= 0.99 {
		t.Fatalf("fresh estimator inherited progress: %v", early.Query)
	}
}
