package progress

import (
	"fmt"
	"math"
	"sort"

	"lqs/internal/engine/dmv"
)

// The estimator's graceful-degradation pass (Options.Degrade): before a
// snapshot is estimated, its raw per-(node, thread) counter rows are
// checked against the per-key high-water marks of every row the estimator
// has ever seen. Dropped rows are filled from the high-water, duplicated
// keys are merged, and rows whose monotone counters regressed (a stale
// capture raced the server's row churn) are lifted back to the high-water.
// A repaired snapshot is marked Degraded: bounds widen and monotone
// clamping engages, so the display holds last-good progress rather than
// jumping on reconstructed counters. The pass never mutates the caller's
// snapshot — the experiment harness replays shared snapshot traces through
// many estimators — and is a pure function of (snapshot, high-water), so
// estimating the same snapshot twice yields identical results.

// threadKey identifies one DMV profile row: an operator instance on one
// thread.
type threadKey struct {
	node, thread int
}

// degradedBoundSlack is the factor Appendix A bounds are widened by on a
// degraded poll (LB/slack, UB*slack).
const degradedBoundSlack = 2

// prepare vets a snapshot for estimation: it returns the snapshot to
// estimate from (the original, or a repaired private copy), whether the
// poll is degraded, and the reason. Without Options.Degrade, or for
// hand-built snapshots carrying only pre-aggregated Ops rows, it is a
// pass-through.
func (e *Estimator) prepare(snap *dmv.Snapshot) (*dmv.Snapshot, bool, string) {
	if !e.Opt.Degrade {
		return snap, false, ""
	}
	degraded := snap.Degraded
	reason := snap.DegradeReason
	if len(snap.Threads) == 0 {
		return snap, degraded, reason
	}
	if e.lastRows == nil {
		e.lastRows = make(map[threadKey]dmv.OpProfile)
	}

	// Merge duplicated keys (a torn capture emitted a row twice — summing
	// them would double-count k and inflate every fraction).
	merged := make([]dmv.OpProfile, 0, len(snap.Threads))
	index := make(map[threadKey]int, len(snap.Threads))
	var dups int
	for _, row := range snap.Threads {
		key := threadKey{row.NodeID, row.ThreadID}
		if i, ok := index[key]; ok {
			dups++
			merged[i] = maxProfile(merged[i], row)
			continue
		}
		index[key] = len(merged)
		merged = append(merged, row)
	}

	// Detect rows whose monotone counters regressed below the high-water
	// (stale rows interleaved into a fresh capture, or a whole snapshot
	// re-delivered out of order). Regressed rows are left as captured —
	// the poll is flagged Degraded instead, so the display layer holds
	// last-good progress via the forced monotone clamp rather than
	// estimating from counters the estimator invented.
	var stale int
	for i := range merged {
		key := threadKey{merged[i].NodeID, merged[i].ThreadID}
		if last, ok := e.lastRows[key]; ok && profileRegressed(merged[i], last) {
			stale++
		}
	}

	// Fill keys that vanished from the capture (dropped rows) from the
	// high-water: a missing row is indistinguishable from "no progress
	// since last poll", which is the conservative reconstruction.
	var missing int
	for key, last := range e.lastRows {
		if _, ok := index[key]; !ok {
			missing++
			merged = append(merged, last)
		}
	}

	// Update the high-water marks from the merged view, whether or not a
	// repair fired — healthy polls are what the marks are made of.
	for _, row := range merged {
		key := threadKey{row.NodeID, row.ThreadID}
		if last, ok := e.lastRows[key]; ok {
			e.lastRows[key] = maxProfile(last, row)
		} else {
			e.lastRows[key] = row
		}
	}

	if dups == 0 && stale == 0 && missing == 0 {
		return snap, degraded, reason
	}
	repair := fmt.Sprintf("faulty thread rows: %d duplicate, %d stale, %d missing", dups, stale, missing)
	if reason != "" {
		reason += "; " + repair
	} else {
		reason = repair
	}
	if dups == 0 && missing == 0 {
		// Stale-only: nothing to rebuild, the degraded flag (and the forced
		// monotone clamp it engages) is the whole remedy.
		return snap, true, reason
	}

	sort.Slice(merged, func(i, j int) bool {
		if merged[i].NodeID != merged[j].NodeID {
			return merged[i].NodeID < merged[j].NodeID
		}
		return merged[i].ThreadID < merged[j].ThreadID
	})
	repaired := &dmv.Snapshot{
		At:            snap.At,
		NumNodes:      snap.NumNodes,
		Threads:       merged,
		Degraded:      true,
		DegradeReason: reason,
	}
	return repaired, true, reason
}

// maxProfile merges two profile rows for the same (node, thread) key into
// their elementwise high-water: monotone counters take the max, lifecycle
// flags OR together, start times take the earliest set value and end times
// the latest.
func maxProfile(a, b dmv.OpProfile) dmv.OpProfile {
	out := a
	if b.EstimateRows > out.EstimateRows {
		out.EstimateRows = b.EstimateRows
	}
	if b.ActualRows > out.ActualRows {
		out.ActualRows = b.ActualRows
	}
	if b.Rebinds > out.Rebinds {
		out.Rebinds = b.Rebinds
	}
	if b.CPUTime > out.CPUTime {
		out.CPUTime = b.CPUTime
	}
	if b.IOTime > out.IOTime {
		out.IOTime = b.IOTime
	}
	if b.LogicalReads > out.LogicalReads {
		out.LogicalReads = b.LogicalReads
	}
	if b.PhysicalReads > out.PhysicalReads {
		out.PhysicalReads = b.PhysicalReads
	}
	if b.PagesTotal > out.PagesTotal {
		out.PagesTotal = b.PagesTotal
	}
	if b.IORetries > out.IORetries {
		out.IORetries = b.IORetries
	}
	if b.SegmentsProcessed > out.SegmentsProcessed {
		out.SegmentsProcessed = b.SegmentsProcessed
	}
	if b.SegmentsTotal > out.SegmentsTotal {
		out.SegmentsTotal = b.SegmentsTotal
	}
	if b.InternalDone > out.InternalDone {
		out.InternalDone = b.InternalDone
	}
	if b.InternalTotal > out.InternalTotal {
		out.InternalTotal = b.InternalTotal
	}
	if b.Opened {
		if !out.Opened || b.OpenedAt < out.OpenedAt {
			out.OpenedAt = b.OpenedAt
		}
		out.Opened = true
	}
	if b.FirstActive {
		if !out.FirstActive || b.FirstActiveAt < out.FirstActiveAt {
			out.FirstActiveAt = b.FirstActiveAt
		}
		out.FirstActive = true
	}
	if b.LastActive > out.LastActive {
		out.LastActive = b.LastActive
	}
	if b.Closed {
		out.Closed = true
	}
	if b.ClosedAt > out.ClosedAt {
		out.ClosedAt = b.ClosedAt
	}
	return out
}

// profileRegressed reports whether cur's monotone counters or lifecycle
// flags sit below last's — the signature of a stale row.
func profileRegressed(cur, last dmv.OpProfile) bool {
	return cur.ActualRows < last.ActualRows ||
		cur.Rebinds < last.Rebinds ||
		cur.CPUTime < last.CPUTime ||
		cur.IOTime < last.IOTime ||
		cur.LogicalReads < last.LogicalReads ||
		cur.PhysicalReads < last.PhysicalReads ||
		cur.IORetries < last.IORetries ||
		cur.SegmentsProcessed < last.SegmentsProcessed ||
		cur.InternalDone < last.InternalDone ||
		(last.Opened && !cur.Opened) ||
		(last.Closed && !cur.Closed) ||
		(last.FirstActive && !cur.FirstActive)
}

// widenBounds relaxes Appendix A bounds on a degraded poll.
func widenBounds(bs []Bounds) {
	for i := range bs {
		bs[i].LB /= degradedBoundSlack
		if !math.IsInf(bs[i].UB, 1) {
			bs[i].UB *= degradedBoundSlack
		}
	}
}
