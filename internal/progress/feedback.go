package progress

import (
	"math"

	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
)

// Feedback implements the paper's §7 future-work item (b): "the ability to
// use feedback from prior executions of queries to adjust the weights that
// model the relative costs of CPU and I/O overhead when estimating
// query-level progress."
//
// It accumulates observed per-row operator costs — the operator's own CPU
// plus I/O virtual time divided by the rows it produced — from completed
// traces, keyed by physical operator type (scans additionally by table).
// An Estimator whose Options.WeightFeedback points at a populated Feedback
// uses these observed weights in place of the optimizer's cost-model
// weights (§4.6), correcting systematic modelling gaps such as buffer-pool
// caching effects the optimizer cannot see.
//
// Feedback is not safe for concurrent use.
type Feedback struct {
	perRow map[feedbackKey]*feedbackAcc
}

type feedbackKey struct {
	op    plan.PhysicalOp
	table string // non-empty for storage access paths
}

type feedbackAcc struct {
	totalNS float64
	rows    float64
}

// NewFeedback returns an empty calibration store.
func NewFeedback() *Feedback {
	return &Feedback{perRow: make(map[feedbackKey]*feedbackAcc)}
}

func keyFor(n *plan.Node) feedbackKey {
	k := feedbackKey{op: n.Physical}
	if n.IsScan() || n.Physical == plan.RIDLookup {
		k.table = n.Table
	}
	return k
}

// calibratable reports whether an operator's observed per-row cost is a
// stable property of its class. Filtered leaf scans are not: their
// per-output-row cost is dominated by the particular query's selectivity
// (the whole object is read regardless of how many rows survive), so an
// average across queries would poison every other query using the table.
// Their cost-model weights already embed the per-query selectivity.
func calibratable(n *plan.Node) bool {
	if n.IsScan() && (n.Pred != nil || n.HasStoragePred()) {
		return false
	}
	return true
}

// Observe folds one completed query's trace into the calibration: each
// operator contributes its self-charged CPU+I/O time and the row count
// that drove it.
func (f *Feedback) Observe(p *plan.Plan, tr *dmv.Trace) {
	if tr.Final == nil {
		return
	}
	for _, n := range p.Nodes {
		if !calibratable(n) {
			continue
		}
		op := tr.Final.Op(n.ID)
		rows := float64(op.ActualRows)
		if len(n.Children) > 0 {
			// Interior operators do their work per row CONSUMED — a
			// selective join's per-output cost would explode toward
			// infinity as its output approaches zero.
			rows = 0
			for _, c := range n.Children {
				rows += float64(tr.Final.Op(c.ID).ActualRows)
			}
		}
		total := float64(op.CPUTime + op.IOTime)
		if total <= 0 {
			continue
		}
		acc := f.perRow[keyFor(n)]
		if acc == nil {
			acc = &feedbackAcc{}
			f.perRow[keyFor(n)] = acc
		}
		acc.totalNS += total
		acc.rows += math.Max(rows, 1)
	}
}

// Weight returns the observed per-row cost for a node, normalized to the
// same per-output-row convention the §4.6 weights use, or ok=false when no
// observation exists for the operator type.
func (f *Feedback) Weight(n *plan.Node) (float64, bool) {
	if !calibratable(n) {
		return 0, false
	}
	acc := f.perRow[keyFor(n)]
	if acc == nil || acc.rows <= 0 {
		return 0, false
	}
	w := acc.totalNS / acc.rows
	if len(n.Children) > 0 {
		// Observed cost is per input row; the weight convention is per
		// output row (duration = w · N̂_out), so scale by the estimated
		// input/output ratio of this particular node.
		var in float64
		for _, c := range n.Children {
			in += math.Max(c.EstRows, 1)
		}
		out := math.Max(n.EstRows, 1)
		w = w * in / out
	}
	if w <= 0 {
		return 0, false
	}
	return w, true
}

// Observations reports how many (operator, table) classes have been seen.
func (f *Feedback) Observations() int { return len(f.perRow) }
