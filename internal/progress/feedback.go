package progress

import (
	"math"

	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
)

// Feedback implements the paper's §7 future-work item (b): "the ability to
// use feedback from prior executions of queries to adjust the weights that
// model the relative costs of CPU and I/O overhead when estimating
// query-level progress."
//
// It accumulates observed per-row operator costs — the operator's own CPU
// plus I/O virtual time divided by the rows it produced — from completed
// traces, keyed by physical operator type (scans additionally by table).
// An Estimator whose Options.WeightFeedback points at a populated Feedback
// uses these observed weights in place of the optimizer's cost-model
// weights (§4.6), correcting systematic modelling gaps such as buffer-pool
// caching effects the optimizer cannot see.
//
// Feedback is not safe for concurrent use.
type Feedback struct {
	perRow map[feedbackKey]*feedbackAcc
}

type feedbackKey struct {
	op    plan.PhysicalOp
	table string // non-empty for storage access paths
}

type feedbackAcc struct {
	totalNS float64
	rows    float64
}

// NewFeedback returns an empty calibration store.
func NewFeedback() *Feedback {
	return &Feedback{perRow: make(map[feedbackKey]*feedbackAcc)}
}

func keyFor(n *plan.Node) feedbackKey {
	k := feedbackKey{op: n.Physical}
	if n.IsScan() || n.Physical == plan.RIDLookup {
		k.table = n.Table
	}
	return k
}

// calibratable reports whether an operator's observed per-row cost is a
// stable property of its class. Filtered leaf scans are not: their
// per-output-row cost is dominated by the particular query's selectivity
// (the whole object is read regardless of how many rows survive), so an
// average across queries would poison every other query using the table.
// Their cost-model weights already embed the per-query selectivity.
func calibratable(n *plan.Node) bool {
	if n.IsScan() && (n.Pred != nil || n.HasStoragePred()) {
		return false
	}
	return true
}

// Observe folds one completed query's trace into the calibration: each
// operator contributes its self-charged CPU+I/O time and the row count
// that drove it.
func (f *Feedback) Observe(p *plan.Plan, tr *dmv.Trace) {
	if tr.Final == nil {
		return
	}
	for _, n := range p.Nodes {
		if !calibratable(n) {
			continue
		}
		op := tr.Final.Op(n.ID)
		rows := float64(op.ActualRows)
		if len(n.Children) > 0 {
			// Interior operators do their work per row CONSUMED — a
			// selective join's per-output cost would explode toward
			// infinity as its output approaches zero.
			rows = 0
			for _, c := range n.Children {
				rows += float64(tr.Final.Op(c.ID).ActualRows)
			}
		}
		total := float64(op.CPUTime + op.IOTime)
		if total <= 0 {
			continue
		}
		acc := f.perRow[keyFor(n)]
		if acc == nil {
			acc = &feedbackAcc{}
			f.perRow[keyFor(n)] = acc
		}
		acc.totalNS += total
		acc.rows += math.Max(rows, 1)
	}
}

// Weight returns the observed per-row cost for a node, normalized to the
// same per-output-row convention the §4.6 weights use, or ok=false when no
// observation exists for the operator type.
func (f *Feedback) Weight(n *plan.Node) (float64, bool) {
	if !calibratable(n) {
		return 0, false
	}
	acc := f.perRow[keyFor(n)]
	if acc == nil || acc.rows <= 0 {
		return 0, false
	}
	w := acc.totalNS / acc.rows
	if len(n.Children) > 0 {
		// Observed cost is per input row; the weight convention is per
		// output row (duration = w · N̂_out), so scale by the estimated
		// input/output ratio of this particular node.
		var in float64
		for _, c := range n.Children {
			in += math.Max(c.EstRows, 1)
		}
		out := math.Max(n.EstRows, 1)
		w = w * in / out
	}
	if w <= 0 {
		return 0, false
	}
	return w, true
}

// Observations reports how many (operator, table) classes have been seen.
func (f *Feedback) Observations() int { return len(f.perRow) }

// NHints is the ensemble mode's shared mid-flight cardinality refinement
// (§4j): one pass per poll derives per-node refined-N̂ hints from the
// aggregated snapshot alone, and every candidate estimator reads them where
// it would otherwise fall back to the raw optimizer estimate. The hints
// originate from three observables — exactly-known cardinalities of closed
// operators, leaf I/O / segment fractions, and a filter's observed
// selectivity (output/input pass rate projected onto the refined input
// total) — and propagate upward past pipeline boundaries through algebraic
// pass-throughs, distinct-value caps, and a clamped estimate ratio, so
// refinement observed in the first pipeline reaches nodes in pipelines that
// have not started.
//
// Update is a pure function of the snapshot: the store keeps no cross-poll
// memory, so replaying a snapshot yields identical hints (the estimator's
// idempotency contract).
type NHints struct {
	p       *plan.Plan
	decomp  *Decomposition
	minRows int64
	vals    []float64
	has     []bool
}

// NewNHints builds an empty hint store for a finalized plan. minRows is the
// §4.1-style guard: hints derived from live counters need at least this
// many observed rows before they fire.
func NewNHints(p *plan.Plan, minRows int64) *NHints {
	return &NHints{
		p:       p,
		decomp:  Decompose(p),
		minRows: minRows,
		vals:    make([]float64, len(p.Nodes)),
		has:     make([]bool, len(p.Nodes)),
	}
}

// For returns the refined-N̂ hint for a node, or ok=false when no hint
// exists. Safe on a nil store (non-ensemble estimators carry none).
func (h *NHints) For(id int) (float64, bool) {
	if h == nil || id < 0 || id >= len(h.vals) || !h.has[id] {
		return 0, false
	}
	return h.vals[id], true
}

func (h *NHints) set(id int, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	h.vals[id] = v
	h.has[id] = true
}

// Update recomputes every hint from one aggregated snapshot, postorder so
// child hints are available when a node propagates them.
func (h *NHints) Update(snap *dmv.Snapshot) {
	for i := range h.has {
		h.has[i] = false
		h.vals[i] = 0
	}
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		h.hint(snap, n)
	}
	walk(h.p.Root)
}

// hint derives one node's refined-N̂, if any observable supports one.
func (h *NHints) hint(snap *dmv.Snapshot, n *plan.Node) {
	op := snap.Op(n.ID)
	if op.Closed {
		h.set(n.ID, float64(op.ActualRows))
		return
	}
	if h.decomp.InnerSide[n.ID] {
		// Inner-side operators rebind per outer row: their cumulative
		// counters measure executions, not totals. §4.4(3) owns their
		// refinement; a naive hint here would be wildly wrong.
		return
	}
	if n.IsLeaf() {
		// Leaves refine from the fraction of the object read so far.
		if op.ActualRows < h.minRows {
			return
		}
		var frac float64
		switch {
		case n.BatchMode && op.SegmentsTotal > 0:
			frac = float64(op.SegmentsProcessed) / float64(op.SegmentsTotal)
		case op.PagesTotal > 0:
			frac = float64(op.LogicalReads) / float64(op.PagesTotal)
		}
		if frac > 1e-9 {
			h.set(n.ID, float64(op.ActualRows)/math.Min(frac, 1))
		}
		return
	}

	var hintIn, estIn float64
	var kin int64
	anyHint := false
	for _, c := range n.Children {
		kin += snap.Op(c.ID).ActualRows
		if v, ok := h.For(c.ID); ok {
			hintIn += math.Max(v, 1)
			anyHint = true
		} else {
			hintIn += math.Max(c.EstRows, 1)
		}
		estIn += math.Max(c.EstRows, 1)
	}

	// Observed selectivity — the new refined-N̂ source: a streaming filter
	// that has seen both qualifying and non-qualifying rows projects its
	// observed pass rate onto the refined input total. The ratio rule below
	// then carries the correction past the first pipeline boundary.
	if n.Physical == plan.Filter && kin >= h.minRows && op.ActualRows >= 1 && op.ActualRows < kin {
		h.set(n.ID, float64(op.ActualRows)/float64(kin)*hintIn)
		return
	}

	if !anyHint {
		return
	}
	switch n.Physical {
	case plan.ComputeScalar, plan.SegmentOp, plan.BitmapCreate, plan.Exchange, plan.Sort:
		// Algebraic pass-throughs: output equals input.
		if v, ok := h.For(n.Children[0].ID); ok {
			h.set(n.ID, v)
		}
		return
	case plan.TopNSort:
		if v, ok := h.For(n.Children[0].ID); ok {
			h.set(n.ID, math.Min(float64(n.TopN), v))
		}
		return
	case plan.Concatenation:
		h.set(n.ID, hintIn)
		return
	case plan.HashAggregate, plan.StreamAggregate, plan.DistinctSort:
		// Group counts are the distinct-value estimate re-capped by the
		// refined input (mirroring §7(a) propagation).
		dv := n.EstDistinct
		if dv <= 0 {
			dv = n.EstRows
		}
		h.set(n.ID, math.Max(math.Min(dv, hintIn), 1))
		return
	}
	// Everything else: scale the optimizer estimate by the refinement ratio
	// of the inputs, clamped to two orders of magnitude (far-field
	// propagation compounds uncertainty).
	ratio := hintIn / math.Max(estIn, 1)
	if ratio < 0.01 {
		ratio = 0.01
	}
	if ratio > 100 {
		ratio = 100
	}
	h.set(n.ID, n.EstRows*ratio)
}
