package accuracy

// The accuracy suite runner: trace each workload query once, replay the
// trace through every estimator mode, and fold the per-query metrics into
// a deterministic Report — the ACC_*.json trajectory artifact, the
// accuracy twin of the BENCH_*.json wall-clock artifact. Everything rides
// the virtual clock, so the same seed produces a byte-identical report.

import (
	"encoding/json"
	"fmt"
	"strings"

	"lqs/internal/engine/dmv"
	"lqs/internal/metrics"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// DefaultQuickLimit is the per-workload query cap of a quick (non-Full)
// suite run: enough queries that every estimator technique fires, small
// enough for CI.
const DefaultQuickLimit = 7

// Config tunes a suite run. The zero value (plus a seed) is the quick
// TPC-H + TPC-DS sweep the committed artifact uses.
type Config struct {
	// Label is stamped into the report ("pr9", "ci", ...). Default "dev".
	Label string
	// Seed is the workload generation seed. Default 42.
	Seed uint64
	// Workloads names the generators to sweep: tpch, tpch-cs, tpcds.
	// Default {tpch, tpcds}.
	Workloads []string
	// Full traces every query of every workload; otherwise the first
	// Limit queries per workload are traced.
	Full bool
	// Limit is the per-workload query cap when Full is false
	// (DefaultQuickLimit when 0).
	Limit int
	// Parallel is the tracing worker count (1 = serial, 0 = GOMAXPROCS);
	// the report is byte-identical at any setting, per the harness
	// contract.
	Parallel int
	// Interval is the DMV poll interval (metrics.DefaultInterval when 0).
	Interval sim.Duration
}

func (cfg Config) defaulted() Config {
	if cfg.Label == "" {
		cfg.Label = "dev"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{"tpch", "tpcds"}
	}
	if cfg.Limit <= 0 {
		cfg.Limit = DefaultQuickLimit
	}
	if cfg.Parallel == 0 {
		cfg.Parallel = 1
	}
	return cfg
}

// ModeSummary aggregates one mode's accuracy across every query of a run.
type ModeSummary struct {
	Mode    string `json:"mode"`
	Queries int    `json:"queries"`
	// MeanAbsErr is the mean of the per-query mean errors; MaxAbsErr the
	// worst per-query max error — the two numbers the ceilings pin.
	MeanAbsErr float64 `json:"mean_abs_err"`
	MaxAbsErr  float64 `json:"max_abs_err"`
	// MeanTerminalErr / MaxTerminalErr aggregate the at-completion gap.
	MeanTerminalErr float64 `json:"mean_terminal_err"`
	MaxTerminalErr  float64 `json:"max_terminal_err"`
	// BoundsObs totals bound checks across queries; BoundsCoverage is the
	// observation-weighted coverage (1 for modes without bounds).
	BoundsObs      int     `json:"bounds_obs,omitempty"`
	BoundsCoverage float64 `json:"bounds_coverage"`
	// MonotonicityViolations sums progress-bar regressions across queries.
	MonotonicityViolations int `json:"monotonicity_violations"`
}

// Report is the suite result: per-(query, mode) metrics plus per-mode
// aggregates, in deterministic order (workloads as configured, queries in
// workload order, modes TGN/DNE/LQS/ENS).
type Report struct {
	Label   string          `json:"label"`
	Seed    uint64          `json:"seed"`
	Full    bool            `json:"full,omitempty"`
	Modes   []string        `json:"modes"`
	Queries []QueryAccuracy `json:"queries"`
	Summary []ModeSummary   `json:"summary"`
}

// suiteWorkload builds one of the suite's named workloads.
func suiteWorkload(name string, seed uint64) (*workload.Workload, error) {
	switch strings.ToLower(name) {
	case "tpch":
		return workload.TPCH(seed, workload.TPCHRowstore), nil
	case "tpch-cs":
		return workload.TPCH(seed, workload.TPCHColumnstore), nil
	case "tpcds":
		return workload.TPCDS(seed), nil
	}
	return nil, fmt.Errorf("accuracy: unknown workload %q", name)
}

// Run executes the suite: trace once per query, replay per mode, measure.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.defaulted()
	modes := Modes()
	rep := &Report{Label: cfg.Label, Seed: cfg.Seed, Full: cfg.Full}
	for _, m := range modes {
		rep.Modes = append(rep.Modes, m.Name)
	}
	for _, name := range cfg.Workloads {
		w, err := suiteWorkload(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		limit := cfg.Limit
		if cfg.Full {
			limit = 0
		}
		r := metrics.Runner{Limit: limit, Parallel: cfg.Parallel, Interval: cfg.Interval}
		r.ForEach(w, func(q workload.Query, p *plan.Plan, tr *dmv.Trace) {
			for _, m := range modes {
				traj := Record(p, w.DB.Catalog, tr, m)
				rep.Queries = append(rep.Queries, Measure(w.Name, q.Name, traj))
			}
		})
	}
	rep.Summary = summarize(rep.Modes, rep.Queries)
	return rep, nil
}

// summarize folds per-query metrics into per-mode aggregates.
func summarize(modes []string, queries []QueryAccuracy) []ModeSummary {
	out := make([]ModeSummary, 0, len(modes))
	for _, mode := range modes {
		s := ModeSummary{Mode: mode, BoundsCoverage: 1}
		var meanSum, termSum, covSum float64
		for _, qa := range queries {
			if qa.Mode != mode {
				continue
			}
			s.Queries++
			meanSum += qa.MeanAbsErr
			termSum += qa.TerminalErr
			if qa.MaxAbsErr > s.MaxAbsErr {
				s.MaxAbsErr = qa.MaxAbsErr
			}
			if qa.TerminalErr > s.MaxTerminalErr {
				s.MaxTerminalErr = qa.TerminalErr
			}
			s.BoundsObs += qa.BoundsObs
			covSum += qa.BoundsCoverage * float64(qa.BoundsObs)
			s.MonotonicityViolations += qa.MonotonicityViolations
		}
		if s.Queries > 0 {
			s.MeanAbsErr = meanSum / float64(s.Queries)
			s.MeanTerminalErr = termSum / float64(s.Queries)
		}
		if s.BoundsObs > 0 {
			s.BoundsCoverage = covSum / float64(s.BoundsObs)
		}
		out = append(out, s)
	}
	return out
}

// JSON renders the report as the committed ACC_*.json artifact: indented,
// trailing newline, no wall-clock or host fields — a pure function of
// (seed, config), so repeat runs are byte-identical.
func (r *Report) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Render draws the human-readable report: one block per mode with its
// aggregates, then the per-query table.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "estimator accuracy (label %s, seed %d", r.Label, r.Seed)
	if r.Full {
		sb.WriteString(", full")
	}
	sb.WriteString(")\n\n")
	sb.WriteString("per-mode summary:\n")
	for _, s := range r.Summary {
		fmt.Fprintf(&sb, "  %-4s queries=%-3d mean|err|=%.4f max|err|=%.4f terminal(mean/max)=%.4f/%.4f bounds-coverage=%.4f monotonicity-violations=%d\n",
			s.Mode, s.Queries, s.MeanAbsErr, s.MaxAbsErr, s.MeanTerminalErr, s.MaxTerminalErr, s.BoundsCoverage, s.MonotonicityViolations)
	}
	sb.WriteString("\nper-query error (mean / max / terminal):\n")
	for i := 0; i < len(r.Queries); i += len(r.Modes) {
		qa := r.Queries[i]
		fmt.Fprintf(&sb, "  %-8s %-12s", qa.Workload, qa.Query)
		for j := 0; j < len(r.Modes) && i+j < len(r.Queries); j++ {
			m := r.Queries[i+j]
			fmt.Fprintf(&sb, "  %s %.3f/%.3f/%.3f", m.Mode, m.MeanAbsErr, m.MaxAbsErr, m.TerminalErr)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
