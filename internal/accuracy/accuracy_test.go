package accuracy

import (
	"bytes"
	"strings"
	"testing"

	"lqs/internal/engine/dmv"
	"lqs/internal/progress"
	"lqs/internal/sim"
)

func TestTruthAt(t *testing.T) {
	tr := &dmv.Trace{StartedAt: 100, EndedAt: 300}
	cases := []struct {
		at   sim.Duration
		want float64
	}{
		{50, 0}, {100, 0}, {200, 0.5}, {300, 1}, {400, 1},
	}
	for _, c := range cases {
		if got := TruthAt(tr, c.at); got != c.want {
			t.Errorf("TruthAt(%d) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := TruthAt(&dmv.Trace{StartedAt: 5, EndedAt: 5}, 5); got != 1 {
		t.Errorf("zero-duration trace: truth = %v, want 1", got)
	}
}

func TestMeasureDegradedPollsExcludedFromError(t *testing.T) {
	traj := &Trajectory{Mode: "LQS", Terminal: 1, Points: []Point{
		{At: 1, Estimate: 0.25, Truth: 0.25},
		// A wildly wrong but degraded poll: counted, labeled, excluded.
		{At: 2, Estimate: 0.26, Truth: 0.50, Degraded: true},
		{At: 3, Estimate: 0.75, Truth: 0.75},
	}}
	qa := Measure("w", "q", traj)
	if qa.Polls != 3 || qa.DegradedPolls != 1 || qa.ErrPolls != 2 {
		t.Fatalf("poll counts = %d/%d/%d, want 3/1/2", qa.Polls, qa.DegradedPolls, qa.ErrPolls)
	}
	if qa.MaxAbsErr != 0 || qa.MeanAbsErr != 0 {
		t.Fatalf("degraded poll leaked into error stats: max=%v mean=%v", qa.MaxAbsErr, qa.MeanAbsErr)
	}
	if qa.TerminalErr != 0 {
		t.Fatalf("terminal err = %v, want 0", qa.TerminalErr)
	}
}

func TestMeasureMonotonicityAuditCoversDegradedPolls(t *testing.T) {
	traj := &Trajectory{Mode: "LQS", Terminal: 1, Points: []Point{
		{At: 1, Estimate: 0.50, Truth: 0.50},
		// Degraded polls are exempt from error stats but NOT from the
		// monotonicity contract.
		{At: 2, Estimate: 0.40, Truth: 0.60, Degraded: true},
		{At: 3, Estimate: 0.30, Truth: 0.70},
	}}
	qa := Measure("w", "q", traj)
	if qa.MonotonicityViolations != 2 {
		t.Fatalf("monotonicity violations = %d, want 2", qa.MonotonicityViolations)
	}
}

func TestMeasureErrorStats(t *testing.T) {
	traj := &Trajectory{Mode: "TGN", Terminal: 0.9, Points: []Point{
		{At: 1, Estimate: 0.1, Truth: 0.3}, // err 0.2
		{At: 2, Estimate: 0.9, Truth: 0.5}, // err 0.4
	}}
	qa := Measure("w", "q", traj)
	if qa.MaxAbsErr != 0.4 {
		t.Fatalf("max err = %v, want 0.4", qa.MaxAbsErr)
	}
	if diff := qa.MeanAbsErr - 0.3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("mean err = %v, want 0.3", qa.MeanAbsErr)
	}
	if diff := qa.TerminalErr - 0.1; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("terminal err = %v, want 0.1", qa.TerminalErr)
	}
}

func TestBoundsCoverageCounting(t *testing.T) {
	bounds := []progress.Bounds{
		{LB: 0, UB: 0},    // no bound computed: skipped
		{LB: 10, UB: 100}, // contains 50
		{LB: 60, UB: 100}, // excludes 50
	}
	in, obs := boundsCoverage(bounds, []int64{7, 50, 50})
	if in != 1 || obs != 2 {
		t.Fatalf("coverage = %d/%d, want 1/2", in, obs)
	}
}

// TestQuickSuiteWithinCeilings is the accuracy-regression fence in the
// default test tier: the quick suite must stay within the pinned per-mode
// ceilings, so an estimator change that degrades accuracy fails CI the
// same way a speed regression would.
func TestQuickSuiteWithinCeilings(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite traces 14 queries; skipped under -short")
	}
	rep, err := Run(Config{Label: "test", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) < 6*len(rep.Modes) {
		t.Fatalf("suite measured %d (query, mode) pairs, want >= %d", len(rep.Queries), 6*len(rep.Modes))
	}
	for _, v := range rep.Violations(DefaultCeilings()) {
		t.Error(v)
	}
	// The shipping configuration must beat both baselines on mean error —
	// the paper's headline result.
	by := map[string]ModeSummary{}
	for _, s := range rep.Summary {
		by[s.Mode] = s
	}
	lqs := by["LQS"]
	if lqs.MeanAbsErr >= by["TGN"].MeanAbsErr || lqs.MeanAbsErr >= by["DNE"].MeanAbsErr {
		t.Errorf("LQS mean err %.4f does not beat TGN %.4f / DNE %.4f",
			lqs.MeanAbsErr, by["TGN"].MeanAbsErr, by["DNE"].MeanAbsErr)
	}
	// Appendix A bounds are worst-case guarantees and the Monotone option
	// is on: both are hard invariants, not tunable ceilings.
	if lqs.BoundsCoverage != 1 {
		t.Errorf("LQS bounds coverage = %v, want exactly 1", lqs.BoundsCoverage)
	}
	if lqs.MonotonicityViolations != 0 {
		t.Errorf("LQS monotonicity violations = %d, want 0", lqs.MonotonicityViolations)
	}
	// The §4j ensemble's contract: beat or match the best single candidate.
	// Its ceiling entry pins this too (MeanAbsErr = the measured LQS mean),
	// but the relative check keeps the contract honest if LQS itself moves.
	ens := by[progress.ModeEnsemble]
	if ens.MeanAbsErr > lqs.MeanAbsErr {
		t.Errorf("ENS mean err %.6f exceeds LQS %.6f — the ensemble must beat or match the best candidate",
			ens.MeanAbsErr, lqs.MeanAbsErr)
	}
	if ens.BoundsCoverage != 1 {
		t.Errorf("ENS bounds coverage = %v, want exactly 1", ens.BoundsCoverage)
	}
	if ens.MonotonicityViolations != 0 {
		t.Errorf("ENS monotonicity violations = %d, want 0", ens.MonotonicityViolations)
	}
}

// TestReportDeterministic pins the artifact contract: the same seed and
// config produce a byte-identical ACC JSON, serial or parallel.
func TestReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("traces the TPC-H quick suite twice; skipped under -short")
	}
	cfg := Config{Label: "det", Seed: 7, Workloads: []string{"tpch"}, Limit: 4}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("ACC JSON differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", aj, bj)
	}
	if !strings.Contains(string(aj), `"mode": "LQS"`) {
		t.Fatalf("report JSON missing LQS entries:\n%s", aj)
	}
}

func TestViolationsFlagBreaches(t *testing.T) {
	rep := &Report{Summary: []ModeSummary{{
		Mode: "LQS", Queries: 1, MeanAbsErr: 0.5, MaxAbsErr: 0.9,
		MeanTerminalErr: 0.3, BoundsCoverage: 0.5, MonotonicityViolations: 2,
	}}}
	v := rep.Violations(DefaultCeilings())
	if len(v) != 5 {
		t.Fatalf("violations = %v, want all 5 checks to fire", v)
	}
	if len(rep.Violations(map[string]Ceiling{})) != 0 {
		t.Fatal("unpinned mode should pass vacuously")
	}
}
