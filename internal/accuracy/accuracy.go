// Package accuracy is the estimator-accuracy observability subsystem: the
// telemetry twin of the paper's Section 5 evaluation, packaged so estimator
// quality is measured, pinned, and served the same way speed is.
//
// Three pieces compose:
//
//   - a trajectory recorder (Record) that replays a finished query's DMV
//     trace through one estimator mode and captures, per poll, the
//     estimate, the ground truth, the Appendix A bound coverage, and the
//     degradation flag;
//   - a ground-truth oracle (TruthAt): once a run has finished, true
//     progress at any poll is defined as elapsed/total virtual time —
//     exactly the reference the paper's figures plot estimates against;
//   - paper-style error metrics (Measure): max and mean absolute error,
//     terminal error, bounds-coverage rate, and monotonicity-violation
//     count, per mode and per query.
//
// Degraded polls — snapshots the poller synthesized behind an open circuit
// breaker, or that the estimator's repair pass had to fix — are counted but
// excluded from the error statistics: a reconstruction is not an
// observation, and charging the estimator for faults injected below it
// would conflate robustness with accuracy. They still count toward the
// monotonicity audit, because holding progress monotone on degraded polls
// is part of the degradation contract.
//
// The suite runner (run.go) sweeps the TPC-H/TPC-DS workloads across the
// TGN/DNE/LQS/ENS modes into a deterministic Report; ceilings.go pins
// per-mode error ceilings so an estimator regression fails CI like a speed
// regression would.
package accuracy

import (
	"math"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/dmv"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
)

// Mode names one estimator configuration under comparison.
type Mode struct {
	Name string
	Opts progress.Options
}

// Modes returns the estimators under comparison: the three the paper's
// evaluation compares — the Total GetNext baseline, the driver-node
// estimator, and the shipping LQS configuration — plus the §4j online
// ensemble over all three. Fresh values every call — Options carries no
// state, but callers may mutate their copy.
func Modes() []Mode {
	return []Mode{
		{Name: "TGN", Opts: progress.TGNOptions()},
		{Name: "DNE", Opts: progress.DNEOptions()},
		{Name: "LQS", Opts: progress.LQSOptions()},
		{Name: progress.ModeEnsemble, Opts: progress.EnsembleOptions()},
	}
}

// Point is one poll of a trajectory: what the estimator said, what was
// actually true, and how the Appendix A bounds fared against the true
// cardinalities at that instant.
type Point struct {
	At       sim.Duration
	Estimate float64
	Truth    float64
	// Degraded marks a poll whose snapshot was synthesized or repaired;
	// such polls are excluded from the error statistics.
	Degraded bool
	// BoundsIn / BoundsObs count per-node bound checks at this poll: of
	// BoundsObs nodes with computed [LB, UB] cardinality bounds, BoundsIn
	// had their true final cardinality inside the interval. Zero when the
	// mode computes no bounds (TGN, DNE).
	BoundsIn  int
	BoundsObs int
}

// Trajectory is one (query, mode) pair's recorded estimate curve plus the
// estimate at the terminal snapshot.
type Trajectory struct {
	Mode   string
	Points []Point
	// Terminal is the estimate computed on the final snapshot, after every
	// retained poll was replayed — the value a display would show at
	// completion. A perfect estimator reports 1 here.
	Terminal float64
}

// TruthAt is the ground-truth oracle: with the run finished, true progress
// at virtual time `at` is the fraction of total virtual execution time
// elapsed, clamped to [0, 1]. Degenerate traces (zero duration) are
// complete by definition.
func TruthAt(tr *dmv.Trace, at sim.Duration) float64 {
	total := tr.EndedAt - tr.StartedAt
	if total <= 0 {
		return 1
	}
	f := float64(at-tr.StartedAt) / float64(total)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Record replays a finished trace through a fresh estimator in the given
// mode and captures the accuracy trajectory. The estimator sees the polls
// in recorded order — exactly what a live client saw — so stateful
// machinery (monotone clamps, degraded-mode high-water marks) behaves as
// it did in flight.
func Record(p *plan.Plan, cat *catalog.Catalog, tr *dmv.Trace, mode Mode) *Trajectory {
	est := progress.NewEstimator(p, cat, mode.Opts)
	traj := &Trajectory{Mode: mode.Name, Points: make([]Point, 0, len(tr.Snapshots))}
	for _, s := range tr.Snapshots {
		e := est.Estimate(s)
		pt := Point{
			At:       s.At,
			Estimate: e.Query,
			Truth:    TruthAt(tr, s.At),
			Degraded: e.Degraded || s.Degraded,
		}
		pt.BoundsIn, pt.BoundsObs = boundsCoverage(e.Bounds, tr.TrueRows)
		traj.Points = append(traj.Points, pt)
	}
	if tr.Final != nil {
		traj.Terminal = est.Estimate(tr.Final).Query
	}
	return traj
}

// boundsCoverage counts how many of a poll's per-node cardinality bounds
// contain the true final cardinality. The Appendix A bounds are worst-case
// guarantees, so for a correct implementation coverage should sit at (or
// extremely near) 1 — which is precisely what makes it a sharp regression
// surface: a bound that excludes the truth is a bug, not a bad estimate.
func boundsCoverage(bounds []progress.Bounds, trueRows []int64) (in, obs int) {
	for id, b := range bounds {
		if id >= len(trueRows) {
			continue
		}
		if b.LB == 0 && b.UB == 0 {
			continue // no bound computed for this node
		}
		obs++
		t := float64(trueRows[id])
		if t >= b.LB-1e-9 && t <= b.UB+1e-9 {
			in++
		}
	}
	return in, obs
}

// QueryAccuracy is the paper-style error report for one (query, mode)
// pair: the numbers behind one line of one of the paper's accuracy
// figures.
type QueryAccuracy struct {
	Workload string `json:"workload"`
	Query    string `json:"query"`
	Mode     string `json:"mode"`

	// Polls is the number of recorded observations; DegradedPolls of them
	// were synthesized or repaired and are excluded from the error stats,
	// leaving ErrPolls = Polls - DegradedPolls observations under the
	// error metrics.
	Polls         int `json:"polls"`
	DegradedPolls int `json:"degraded_polls,omitempty"`
	ErrPolls      int `json:"err_polls"`

	// MaxAbsErr / MeanAbsErr are max and mean |estimate − truth| over the
	// non-degraded polls. TerminalErr is |1 − estimate at completion|: how
	// far from done the estimator believed the finished query to be.
	MaxAbsErr   float64 `json:"max_abs_err"`
	MeanAbsErr  float64 `json:"mean_abs_err"`
	TerminalErr float64 `json:"terminal_err"`

	// BoundsObs counts per-(poll, node) bound checks; BoundsCoverage is
	// the fraction that contained the true cardinality (1 when BoundsObs
	// is 0 — no bounds means no bound violations).
	BoundsObs      int     `json:"bounds_obs,omitempty"`
	BoundsCoverage float64 `json:"bounds_coverage"`

	// MonotonicityViolations counts polls whose estimate regressed below
	// the immediately preceding poll's — progress-bar backsliding. Modes
	// with Monotone on must report 0.
	MonotonicityViolations int `json:"monotonicity_violations"`
}

// monotoneEps absorbs float jitter in the monotonicity audit.
const monotoneEps = 1e-9

// Measure computes a trajectory's accuracy metrics.
func Measure(workload, query string, traj *Trajectory) QueryAccuracy {
	qa := QueryAccuracy{Workload: workload, Query: query, Mode: traj.Mode}
	prev := math.Inf(-1)
	var errSum float64
	var boundsIn int
	for _, pt := range traj.Points {
		qa.Polls++
		if pt.Estimate < prev-monotoneEps {
			qa.MonotonicityViolations++
		}
		prev = pt.Estimate
		if pt.Degraded {
			qa.DegradedPolls++
			continue
		}
		qa.ErrPolls++
		err := math.Abs(pt.Estimate - pt.Truth)
		errSum += err
		if err > qa.MaxAbsErr {
			qa.MaxAbsErr = err
		}
		boundsIn += pt.BoundsIn
		qa.BoundsObs += pt.BoundsObs
	}
	if qa.ErrPolls > 0 {
		qa.MeanAbsErr = errSum / float64(qa.ErrPolls)
	}
	qa.TerminalErr = math.Abs(1 - traj.Terminal)
	if qa.BoundsObs > 0 {
		qa.BoundsCoverage = float64(boundsIn) / float64(qa.BoundsObs)
	} else {
		qa.BoundsCoverage = 1
	}
	return qa
}
