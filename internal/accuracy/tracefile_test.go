package accuracy

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"lqs/internal/chaos"
	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/metrics"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// regen regenerates the committed trace corpus and its manifest:
//
//	go test ./internal/accuracy -run TestCommittedTraceCorpus -regen
var regen = flag.Bool("regen", false, "regenerate the committed trace corpus and manifest")

const manifestPath = "testdata/manifest.json"

// corpusSpec is one committed capture's recipe. The chaos seed is pinned
// (not searched) so regeneration is reproducible; it was chosen as the
// first seed whose run completes with degraded polls in the stream.
type corpusSpec struct {
	name      string
	workload  string
	seed      uint64
	query     string
	dop       int
	chaosRate float64
	chaosSeed uint64
}

// corpus lists the committed captures: three TPC-H shapes the paper's
// evaluation leans on (streaming aggregate, single-scan filter,
// refinement-heavy join tree), one TPC-DS query, and one chaos-degraded
// run whose poll stream includes watchdog-synthesized snapshots.
func corpus() []corpusSpec {
	return []corpusSpec{
		{name: "tpch-q1", workload: "tpch", seed: 42, query: "Q1"},
		{name: "tpch-q6", workload: "tpch", seed: 42, query: "Q6"},
		{name: "tpch-q9", workload: "tpch", seed: 42, query: "Q9"},
		{name: "tpcds-q13", workload: "tpcds", seed: 42, query: "Q13"},
		{name: "chaos-tpch-q4", workload: "tpch", seed: 42, query: "Q4", dop: 2,
			chaosRate: 0.05, chaosSeed: chaosCaptureSeed},
	}
}

// chaosCaptureSeed is the pinned chaos seed for the degraded capture; see
// findChaosSeed, which regeneration uses to re-derive it if the engine's
// fault schedule shifts.
const chaosCaptureSeed = 1

// manifest pins every committed (trace, mode) pair's accuracy metrics.
type manifest struct {
	Traces map[string]map[string]QueryAccuracy `json:"traces"`
}

// TestCommittedTraceCorpus replays every committed trace through all four
// estimator modes and compares the measured metrics against the pinned
// manifest. The corpus is frozen history: a diff here means an estimator
// change altered behavior on real recorded poll streams, which is exactly
// what the reviewer needs to see.
func TestCommittedTraceCorpus(t *testing.T) {
	if *regen {
		regenerateCorpus(t)
	}
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("reading manifest (run with -regen to create): %v", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	specs := corpus()
	if len(m.Traces) != len(specs) {
		t.Fatalf("manifest pins %d traces, corpus() lists %d — regenerate", len(m.Traces), len(specs))
	}
	sawDegraded := false
	for _, spec := range specs {
		pinned, ok := m.Traces[spec.name]
		if !ok {
			t.Fatalf("manifest missing trace %q — regenerate", spec.name)
		}
		tf, err := ReadTraceFile(tracePath(spec.name))
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		p, cat, err := tf.Rebuild()
		if err != nil {
			t.Fatal(err)
		}
		tr := tf.Trace()
		for _, mode := range Modes() {
			got := Measure(tf.Workload, tf.Query, Record(p, cat, tr, mode))
			want, ok := pinned[mode.Name]
			if !ok {
				t.Errorf("%s: manifest missing mode %s — regenerate", spec.name, mode.Name)
				continue
			}
			compareAccuracy(t, spec.name, got, want)
			if got.DegradedPolls > 0 {
				sawDegraded = true
			}
		}
	}
	if !sawDegraded {
		t.Error("corpus contains no degraded polls — the chaos capture lost its faults")
	}
}

// compareAccuracy diffs one replayed measurement against its pinned twin.
// Replay is deterministic and the manifest stores full float precision, so
// the tolerance only absorbs JSON round-trip noise.
func compareAccuracy(t *testing.T, name string, got, want QueryAccuracy) {
	t.Helper()
	feq := func(field string, g, w float64) {
		if math.Abs(g-w) > 1e-12 {
			t.Errorf("%s/%s: %s = %v, manifest pins %v", name, got.Mode, field, g, w)
		}
	}
	ieq := func(field string, g, w int) {
		if g != w {
			t.Errorf("%s/%s: %s = %d, manifest pins %d", name, got.Mode, field, g, w)
		}
	}
	ieq("polls", got.Polls, want.Polls)
	ieq("degraded_polls", got.DegradedPolls, want.DegradedPolls)
	ieq("err_polls", got.ErrPolls, want.ErrPolls)
	ieq("bounds_obs", got.BoundsObs, want.BoundsObs)
	ieq("monotonicity_violations", got.MonotonicityViolations, want.MonotonicityViolations)
	feq("max_abs_err", got.MaxAbsErr, want.MaxAbsErr)
	feq("mean_abs_err", got.MeanAbsErr, want.MeanAbsErr)
	feq("terminal_err", got.TerminalErr, want.TerminalErr)
	feq("bounds_coverage", got.BoundsCoverage, want.BoundsCoverage)
}

func tracePath(name string) string {
	return filepath.Join("testdata", name+".trace.json.gz")
}

// regenerateCorpus re-captures every committed trace by executing its
// recipe and rewrites the manifest from the fresh captures.
func regenerateCorpus(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	m := manifest{Traces: map[string]map[string]QueryAccuracy{}}
	for _, spec := range corpus() {
		tf, err := capture(spec)
		if err != nil {
			t.Fatalf("capturing %s: %v", spec.name, err)
		}
		if err := WriteTraceFile(tracePath(spec.name), tf); err != nil {
			t.Fatal(err)
		}
		// Pin metrics from the serialized form, not the live trace, so the
		// manifest matches what replay will see.
		reread, err := ReadTraceFile(tracePath(spec.name))
		if err != nil {
			t.Fatal(err)
		}
		p, cat, err := reread.Rebuild()
		if err != nil {
			t.Fatal(err)
		}
		tr := reread.Trace()
		byMode := map[string]QueryAccuracy{}
		for _, mode := range Modes() {
			byMode[mode.Name] = Measure(reread.Workload, reread.Query, Record(p, cat, tr, mode))
		}
		m.Traces[spec.name] = byMode
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %d traces + manifest", len(m.Traces))
}

// capture executes one corpus recipe and serializes the resulting trace.
func capture(spec corpusSpec) (*TraceFile, error) {
	w, err := suiteWorkload(spec.workload, spec.seed)
	if err != nil {
		return nil, err
	}
	var q workload.Query
	found := false
	for _, cand := range w.Queries {
		if cand.Name == spec.query {
			q, found = cand, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("workload %s has no query %s", spec.workload, spec.query)
	}
	dop := spec.dop
	if dop < 1 {
		dop = 1
	}
	var tr *dmv.Trace
	if spec.chaosRate > 0 {
		tr, err = captureChaos(w, q, dop, spec.chaosRate, spec.chaosSeed)
		if err != nil {
			return nil, err
		}
		degraded := 0
		for _, s := range tr.Snapshots {
			if s.Degraded {
				degraded++
			}
		}
		if degraded == 0 {
			return nil, fmt.Errorf("chaos capture %s produced no degraded polls; re-pin chaosSeed (see findChaosSeed)", spec.name)
		}
	} else {
		_, tr, _ = metrics.TraceQueryEventsDOP(w, q, metrics.DefaultInterval, 0, dop)
	}
	tf := NewTraceFile(tr)
	tf.Workload = spec.workload
	tf.Seed = spec.seed
	tf.Query = spec.query
	tf.DOP = spec.dop
	tf.Interval = metrics.DefaultInterval
	tf.ChaosRate = spec.chaosRate
	tf.ChaosSeed = spec.chaosSeed
	return tf, nil
}

// captureChaos runs one query under a seeded DMV-faults-only chaos plan
// (dropped/duplicated/stale thread rows plus poll stalls, at the battery's
// relative rates) and returns its trace. Only the snapshot layer is
// faulted: exec- and storage-layer faults can abort the query, and a
// typed abort has no ground truth to measure against — the corpus wants a
// completed run whose poll stream is dirty.
func captureChaos(w *workload.Workload, q workload.Query, dop int, rate float64, seed uint64) (*dmv.Trace, error) {
	pl := chaos.NewPlan(chaos.Config{
		Seed: seed,
		DMV: chaos.DMVFaults{
			DropRowProb: 4 * rate,
			DupRowProb:  4 * rate,
			StaleProb:   4 * rate,
			StallProb:   8 * rate,
		},
	})
	w.DB.ColdStart()

	p := plan.Finalize(plan.Parallelize(q.Build(w.Builder()), dop))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, metrics.DefaultInterval)
	poller.SetFault(pl.PollFault())
	query := exec.NewQueryDOP(p, w.DB, opt.DefaultCostModel(), clock, dop)
	poller.Register(query)
	_, err := query.RunCollect()
	tr := poller.Finish(query)
	poller.Detach()
	if err != nil {
		return nil, fmt.Errorf("chaos run aborted (%v); re-pin chaosSeed (see findChaosSeed)", err)
	}
	return tr, nil
}

// findChaosSeed searches for the first seed whose chaos run completes with
// degraded polls. Run it when the engine's fault schedule shifts and the
// pinned chaosCaptureSeed stops producing a usable capture:
//
//	go test ./internal/accuracy -run TestFindChaosSeed -find-chaos-seed
var findSeed = flag.Bool("find-chaos-seed", false, "search for a usable chaos capture seed")

func TestFindChaosSeed(t *testing.T) {
	if !*findSeed {
		t.Skip("seed search is opt-in")
	}
	var spec corpusSpec
	for _, s := range corpus() {
		if s.chaosRate > 0 {
			spec = s
			break
		}
	}
	for seed := uint64(1); seed <= 64; seed++ {
		w, err := suiteWorkload(spec.workload, spec.seed)
		if err != nil {
			t.Fatal(err)
		}
		var q workload.Query
		for _, cand := range w.Queries {
			if cand.Name == spec.query {
				q = cand
				break
			}
		}
		tr, err := captureChaos(w, q, spec.dop, spec.chaosRate, seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			continue
		}
		degraded := 0
		for _, s := range tr.Snapshots {
			if s.Degraded {
				degraded++
			}
		}
		if degraded > 0 {
			t.Logf("seed %d: completed with %d/%d degraded polls — pin this as chaosCaptureSeed",
				seed, degraded, len(tr.Snapshots))
			return
		}
		t.Logf("seed %d: completed but 0 degraded polls", seed)
	}
	t.Fatal("no usable seed in 1..64; raise the rate or widen the search")
}

// TestTraceFileRoundTrip pins the serialization itself on a synthetic
// trace: write → read → identical replayable stream.
func TestTraceFileRoundTrip(t *testing.T) {
	tr := &dmv.Trace{
		StartedAt: 100,
		EndedAt:   300,
		TrueRows:  []int64{5, 10},
		Snapshots: []*dmv.Snapshot{
			{At: 150, NumNodes: 2, Threads: []dmv.OpProfile{{NodeID: 0, ActualRows: 2}, {NodeID: 1, ActualRows: 4}}},
			{At: 200, NumNodes: 2, Degraded: true, DegradeReason: "poll stall",
				Threads: []dmv.OpProfile{{NodeID: 0, ActualRows: 3}, {NodeID: 1, ActualRows: 6}}},
		},
		Final: &dmv.Snapshot{At: 300, NumNodes: 2,
			Threads: []dmv.OpProfile{{NodeID: 0, ActualRows: 5, Closed: true}, {NodeID: 1, ActualRows: 10, Closed: true}}},
	}
	tf := NewTraceFile(tr)
	tf.Workload, tf.Query, tf.Seed, tf.NumNodes = "tpch", "QX", 7, 2

	path := filepath.Join(t.TempDir(), "rt.trace.json.gz")
	if err := WriteTraceFile(path, tf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rt := got.Trace()
	if rt.StartedAt != 100 || rt.EndedAt != 300 || len(rt.TrueRows) != 2 {
		t.Fatalf("trace header mangled: %+v", rt)
	}
	if len(rt.Snapshots) != 2 || rt.Final == nil {
		t.Fatalf("snapshots mangled: %d, final %v", len(rt.Snapshots), rt.Final)
	}
	if !rt.Snapshots[1].Degraded || rt.Snapshots[1].DegradeReason != "poll stall" {
		t.Fatal("degradation marking lost in round trip")
	}
	if rt.Snapshots[0].NumNodes != 2 || len(rt.Snapshots[0].Threads) != 2 {
		t.Fatal("thread rows lost in round trip")
	}
	if got := rt.Final.Op(1).ActualRows; got != 10 {
		t.Fatalf("final snapshot aggregation: ActualRows = %d, want 10", got)
	}
	names := make([]string, 0, 4)
	for _, m := range Modes() {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	if want := []string{"DNE", "ENS", "LQS", "TGN"}; !equalStrings(names, want) {
		t.Fatalf("modes = %v, want %v", names, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
