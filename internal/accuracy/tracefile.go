package accuracy

// The recorded-trace regression corpus: a captured DMV trace serialized to
// testdata, replayable through every estimator mode in plain `go test`
// with no engine execution. A live capture pins the exact per-thread
// counter stream a real run produced — including chaos-degraded polls —
// so estimator changes are judged against frozen history, not against a
// re-execution that could drift with the engine.
//
// The file stores the raw per-thread rows plus the capture recipe
// (workload, seed, query, DOP, poll interval, chaos configuration). The
// plan is NOT serialized: it is rebuilt deterministically from the recipe,
// which keeps the corpus valid across plan-struct refactors and fails
// loudly (node-count mismatch) if a planner change invalidates a trace.

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/dmv"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// SnapshotFile is one serialized poll: the raw per-thread profile rows and
// the poller's degradation marking. Aggregation is recomputed on replay.
type SnapshotFile struct {
	At            sim.Duration    `json:"at"`
	Degraded      bool            `json:"degraded,omitempty"`
	DegradeReason string          `json:"degrade_reason,omitempty"`
	Threads       []dmv.OpProfile `json:"threads"`
}

// TraceFile is the on-disk form of one recorded trace: the capture recipe
// followed by the poll stream and ground truth.
type TraceFile struct {
	// Capture recipe — enough to rebuild the plan and, for audit, to
	// regenerate the whole trace bit-for-bit.
	Workload string       `json:"workload"`
	Seed     uint64       `json:"seed"`
	Query    string       `json:"query"`
	DOP      int          `json:"dop,omitempty"`
	Interval sim.Duration `json:"interval"`
	// ChaosRate/ChaosSeed, when the rate is non-zero, record the
	// DMV-faults-only chaos plan the capture ran under (see captureChaos
	// in tracefile_test.go for the rate scaling).
	ChaosRate float64 `json:"chaos_rate,omitempty"`
	ChaosSeed uint64  `json:"chaos_seed,omitempty"`

	NumNodes  int            `json:"num_nodes"`
	StartedAt sim.Duration   `json:"started_at"`
	EndedAt   sim.Duration   `json:"ended_at"`
	TrueRows  []int64        `json:"true_rows"`
	Snapshots []SnapshotFile `json:"snapshots"`
	Final     *SnapshotFile  `json:"final,omitempty"`
}

// NewTraceFile snapshots a finished trace into its serializable form.
// The recipe fields (workload, seed, query, DOP, interval, chaos) are the
// caller's to fill — the trace itself does not know them.
func NewTraceFile(tr *dmv.Trace) *TraceFile {
	tf := &TraceFile{
		StartedAt: tr.StartedAt,
		EndedAt:   tr.EndedAt,
		TrueRows:  append([]int64(nil), tr.TrueRows...),
	}
	if tr.Plan != nil {
		tf.NumNodes = len(tr.Plan.Nodes)
	}
	for _, s := range tr.Snapshots {
		tf.Snapshots = append(tf.Snapshots, snapshotFile(s))
		if tf.NumNodes == 0 {
			tf.NumNodes = s.NumNodes
		}
	}
	if tr.Final != nil {
		f := snapshotFile(tr.Final)
		tf.Final = &f
	}
	return tf
}

func snapshotFile(s *dmv.Snapshot) SnapshotFile {
	return SnapshotFile{
		At:            s.At,
		Degraded:      s.Degraded,
		DegradeReason: s.DegradeReason,
		Threads:       append([]dmv.OpProfile(nil), s.Threads...),
	}
}

// Trace reconstructs the replayable dmv.Trace: raw thread rows with
// per-node aggregation left to the estimator's own Aggregate pass, exactly
// as a live poll stream arrives.
func (tf *TraceFile) Trace() *dmv.Trace {
	tr := &dmv.Trace{
		StartedAt: tf.StartedAt,
		EndedAt:   tf.EndedAt,
		TrueRows:  append([]int64(nil), tf.TrueRows...),
	}
	for i := range tf.Snapshots {
		tr.Snapshots = append(tr.Snapshots, tf.Snapshots[i].snapshot(tf.NumNodes))
	}
	if tf.Final != nil {
		tr.Final = tf.Final.snapshot(tf.NumNodes)
	}
	return tr
}

func (sf *SnapshotFile) snapshot(numNodes int) *dmv.Snapshot {
	return &dmv.Snapshot{
		At:            sf.At,
		NumNodes:      numNodes,
		Threads:       append([]dmv.OpProfile(nil), sf.Threads...),
		Degraded:      sf.Degraded,
		DegradeReason: sf.DegradeReason,
	}
}

// Rebuild reconstructs the capture's finalized, optimizer-estimated plan
// and catalog from the recipe. The planner pipeline is deterministic in
// (workload, seed, query, DOP), so the rebuilt plan is the one the capture
// executed; a node-count mismatch means a planner change invalidated the
// trace, and the caller should regenerate the corpus.
func (tf *TraceFile) Rebuild() (*plan.Plan, *catalog.Catalog, error) {
	w, err := suiteWorkload(tf.Workload, tf.Seed)
	if err != nil {
		return nil, nil, err
	}
	for _, q := range w.Queries {
		if q.Name != tf.Query {
			continue
		}
		dop := tf.DOP
		if dop < 1 {
			dop = 1
		}
		p := plan.Finalize(plan.Parallelize(q.Build(w.Builder()), dop))
		opt.NewEstimator(w.DB.Catalog).Estimate(p)
		if len(p.Nodes) != tf.NumNodes {
			return nil, nil, fmt.Errorf("trace %s/%s: rebuilt plan has %d nodes, capture had %d — regenerate the corpus",
				tf.Workload, tf.Query, len(p.Nodes), tf.NumNodes)
		}
		return p, w.DB.Catalog, nil
	}
	return nil, nil, fmt.Errorf("trace workload %q has no query %q", tf.Workload, tf.Query)
}

// WriteTraceFile writes the gzip-compressed JSON encoding.
func WriteTraceFile(path string, tf *TraceFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(f)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(tf); err != nil {
		f.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile loads one serialized trace.
func ReadTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	defer zr.Close()
	var tf TraceFile
	if err := json.NewDecoder(zr).Decode(&tf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &tf, nil
}
