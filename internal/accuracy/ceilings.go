package accuracy

import "fmt"

// Ceiling pins one mode's worst tolerated accuracy. The values are
// regression fences, not aspirations: each sits above the measured quick
// suite (seed 42) with margin for benign estimator drift, so crossing one
// means the estimator got materially worse, the same way a speed ceiling
// crossing means the code got materially slower.
type Ceiling struct {
	// MeanAbsErr fences the per-mode mean of per-query mean errors.
	MeanAbsErr float64
	// MaxAbsErr fences the worst per-query max error.
	MaxAbsErr float64
	// MeanTerminalErr fences the mean at-completion gap.
	MeanTerminalErr float64
	// MinBoundsCoverage floors the bound-coverage rate (0 disables the
	// check, for modes that compute no bounds).
	MinBoundsCoverage float64
	// MaxMonotonicityViolations caps total progress regressions across the
	// suite (LQS must report 0; the baselines get headroom since nothing
	// clamps them).
	MaxMonotonicityViolations int
}

// DefaultCeilings is the pinned per-mode regression fence for the quick
// suite. TGN is the paper's weak baseline and gets the loosest fence; DNE
// sits between; LQS carries the tight fence plus the hard invariants
// (bounds always cover the truth, monotone progress never regresses); ENS
// is pinned at LQS's measured mean — the ensemble's contract is to beat or
// match the best single candidate, so its fence is the LQS measurement
// itself, not a loosened copy of the LQS fence.
func DefaultCeilings() map[string]Ceiling {
	// Measured on the quick suite at seed 42: TGN mean 0.126 / max 0.771 /
	// terminal 0.116; DNE mean 0.131 / max 0.847 / terminal 0; LQS mean
	// 0.0322 / max 0.252 / terminal 0, bounds coverage exactly 1; ENS mean
	// 0.0316 / max 0.252 / terminal 7e-6, bounds coverage exactly 1.
	return map[string]Ceiling{
		"TGN": {MeanAbsErr: 0.18, MaxAbsErr: 0.90, MeanTerminalErr: 0.18},
		"DNE": {MeanAbsErr: 0.18, MaxAbsErr: 0.95, MeanTerminalErr: 0.05},
		"LQS": {MeanAbsErr: 0.08, MaxAbsErr: 0.40, MeanTerminalErr: 0.02,
			MinBoundsCoverage: 1, MaxMonotonicityViolations: 0},
		"ENS": {MeanAbsErr: 0.0322, MaxAbsErr: 0.30, MeanTerminalErr: 0.001,
			MinBoundsCoverage: 1, MaxMonotonicityViolations: 0},
	}
}

// Violations checks the report's per-mode summary against the ceilings and
// returns one line per breach (empty = suite passed). Modes without a
// ceiling pass vacuously, so experimental modes can ride the suite before
// being pinned.
func (r *Report) Violations(ceilings map[string]Ceiling) []string {
	var out []string
	for _, s := range r.Summary {
		c, ok := ceilings[s.Mode]
		if !ok {
			continue
		}
		if s.MeanAbsErr > c.MeanAbsErr {
			out = append(out, fmt.Sprintf("%s: mean abs err %.4f exceeds ceiling %.4f", s.Mode, s.MeanAbsErr, c.MeanAbsErr))
		}
		if s.MaxAbsErr > c.MaxAbsErr {
			out = append(out, fmt.Sprintf("%s: max abs err %.4f exceeds ceiling %.4f", s.Mode, s.MaxAbsErr, c.MaxAbsErr))
		}
		if s.MeanTerminalErr > c.MeanTerminalErr {
			out = append(out, fmt.Sprintf("%s: mean terminal err %.4f exceeds ceiling %.4f", s.Mode, s.MeanTerminalErr, c.MeanTerminalErr))
		}
		if c.MinBoundsCoverage > 0 && s.BoundsCoverage < c.MinBoundsCoverage {
			out = append(out, fmt.Sprintf("%s: bounds coverage %.4f below floor %.4f", s.Mode, s.BoundsCoverage, c.MinBoundsCoverage))
		}
		if s.MonotonicityViolations > c.MaxMonotonicityViolations {
			out = append(out, fmt.Sprintf("%s: %d monotonicity violations exceed cap %d", s.Mode, s.MonotonicityViolations, c.MaxMonotonicityViolations))
		}
	}
	return out
}
