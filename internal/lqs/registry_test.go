package lqs

import (
	"errors"
	"testing"

	"lqs/internal/engine/exec"
	"lqs/internal/progress"
)

// TestRegistryConcurrentPolling races List/Poll against the executor
// goroutines of two queries sharing one database. Run with -race: it
// exercises the counter-lock capture path, the buffer-pool latch, and the
// atomic lifecycle fields.
func TestRegistryConcurrentPolling(t *testing.T) {
	db := testDB(t)
	reg := NewQueryRegistry()
	id1 := reg.Launch("agg-sort-1", Start(db, testPlan(db), progress.LQSOptions()))
	id2 := reg.Launch("agg-sort-2", Start(db, testPlan(db), progress.LQSOptions()))

	stop := make(chan struct{})
	polls := make(chan int)
	go func() {
		n := 0
		for {
			for _, qi := range reg.List() {
				n++
				if qi.Progress < 0 || qi.Progress > 1 {
					t.Errorf("progress out of range: %+v", qi)
				}
				if qi.Rows < 0 {
					t.Errorf("negative row count: %+v", qi)
				}
			}
			// Check stop only after a full List pass so the poller observes
			// the registry at least once even if both queries finish before
			// this goroutine is first scheduled.
			select {
			case <-stop:
				polls <- n
				return
			default:
			}
		}
	}()

	rows1, err1 := reg.Wait(id1)
	rows2, err2 := reg.Wait(id2)
	close(stop)
	if n := <-polls; n == 0 {
		t.Fatal("concurrent poller never observed the queries")
	}
	if err1 != nil || err2 != nil {
		t.Fatalf("queries failed: %v / %v", err1, err2)
	}
	if rows1 != 16 || rows2 != 16 {
		t.Fatalf("rows = %d, %d; want 16, 16", rows1, rows2)
	}
	for _, qi := range reg.List() {
		if qi.State != exec.StateSucceeded {
			t.Fatalf("terminal state %v for %s", qi.State, qi.Name)
		}
		if qi.Progress < 0.99 {
			t.Fatalf("final progress %v for %s", qi.Progress, qi.Name)
		}
	}
}

func TestRegistryCancelByID(t *testing.T) {
	db := testDB(t)
	reg := NewQueryRegistry()
	s := Start(db, testPlan(db), progress.LQSOptions())
	// Hold the counter lock so the runner goroutine cannot take its first
	// step until the cancellation is registered — the test is deterministic
	// regardless of scheduling.
	s.Query.LockCounters()
	id := reg.Launch("victim", s)
	if err := reg.Cancel(id, "DBA kill"); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	s.Query.UnlockCounters()

	rows, err := reg.Wait(id)
	var qe *exec.QueryError
	if !errors.As(err, &qe) || qe.Kind != exec.KindCancelled {
		t.Fatalf("wait returned %v, want a KindCancelled QueryError", err)
	}
	if rows != 0 {
		t.Fatalf("cancelled-before-start query produced %d rows", rows)
	}
	qi, perr := reg.Poll(id)
	if perr != nil || qi.State != exec.StateCancelled || qi.Err == nil {
		t.Fatalf("poll after cancel: %+v, %v", qi, perr)
	}
}

// TestRegistryReapBoundsSizeUnderChurn pins the fix for the long-running
// server leak: without Remove/Reap every completed query left an entry
// behind forever. Launch waves of queries, reap between waves, and require
// the registry never to exceed one wave's population.
func TestRegistryReapBoundsSizeUnderChurn(t *testing.T) {
	db := testDB(t)
	reg := NewQueryRegistry()
	const waves, perWave = 8, 4
	var reaped int
	for w := 0; w < waves; w++ {
		ids := make([]QueryID, 0, perWave)
		for i := 0; i < perWave; i++ {
			ids = append(ids, reg.Launch("churn", Start(db, testPlan(db), progress.LQSOptions())))
		}
		for _, id := range ids {
			if _, err := reg.Wait(id); err != nil {
				t.Fatalf("wave %d: %v", w, err)
			}
		}
		reaped += len(reg.Reap())
		if n := reg.Len(); n != 0 {
			t.Fatalf("wave %d: %d entries survive a full reap", w, n)
		}
		if n := len(reg.List()); n != 0 {
			t.Fatalf("wave %d: List still renders %d reaped entries", w, n)
		}
	}
	if reaped != waves*perWave {
		t.Fatalf("reaped %d entries, want %d", reaped, waves*perWave)
	}
}

// TestRegistryRemoveRefusesRunning: Remove on an in-flight query is an
// error; after terminal it succeeds; a second Remove reports unknown id.
func TestRegistryRemoveRefusesRunning(t *testing.T) {
	db := testDB(t)
	reg := NewQueryRegistry()
	s := Start(db, testPlan(db), progress.LQSOptions())
	s.Query.LockCounters() // hold the runner at its first step
	id := reg.Launch("held", s)
	if err := reg.Remove(id); err == nil {
		t.Fatal("Remove succeeded on a running query")
	}
	s.Query.UnlockCounters()
	if _, err := reg.Wait(id); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if err := reg.Remove(id); err != nil {
		t.Fatalf("Remove after terminal: %v", err)
	}
	if err := reg.Remove(id); err == nil {
		t.Fatal("second Remove found a ghost entry")
	}
	if reg.Len() != 0 {
		t.Fatalf("registry size %d after remove", reg.Len())
	}
}

func TestRegistryUnknownID(t *testing.T) {
	reg := NewQueryRegistry()
	if _, err := reg.Poll(QueryID(42)); err == nil {
		t.Fatal("Poll on unknown id succeeded")
	}
	if err := reg.Cancel(QueryID(42), "x"); err == nil {
		t.Fatal("Cancel on unknown id succeeded")
	}
	if _, err := reg.Wait(QueryID(42)); err == nil {
		t.Fatal("Wait on unknown id succeeded")
	}
}
