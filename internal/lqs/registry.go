package lqs

import (
	"fmt"
	"sync"

	"lqs/internal/engine/exec"
	"lqs/internal/obs"
	"lqs/internal/sim"
)

// QueryID identifies a query launched through a QueryRegistry.
type QueryID int64

// QueryInfo is one registry row: the live status of a launched query, the
// shape a "sys.dm_exec_requests"-style listing would render.
type QueryInfo struct {
	ID          QueryID
	Name        string
	State       exec.QueryState
	Progress    float64
	Rows        int64
	VirtualTime sim.Duration
	Err         error
}

type registryEntry struct {
	id      QueryID
	name    string
	session *Session
	done    chan struct{}

	// rows and err are written by the runner goroutine before done closes;
	// reads must either hold the registry lock with State terminal, or
	// follow <-done.
	rows int64
	err  error
}

// QueryRegistry tracks concurrently executing queries. Launch runs each
// query on its own goroutine against its own virtual clock; List, Poll, and
// Cancel are safe from any goroutine while queries run — the analog of a
// DBA session watching and killing requests while they execute.
type QueryRegistry struct {
	mu      sync.Mutex
	nextID  QueryID
	entries map[QueryID]*registryEntry
	order   []QueryID
	metrics *obs.Registry
}

// SetMetrics publishes registry occupancy to reg: lqs/queries_launched
// counts Launch calls, lqs/registry_active gauges queries not yet terminal.
// Call before Launch; a nil registry disables publication.
func (r *QueryRegistry) SetMetrics(reg *obs.Registry) { r.metrics = reg }

// NewQueryRegistry returns an empty registry.
func NewQueryRegistry() *QueryRegistry {
	return &QueryRegistry{entries: make(map[QueryID]*registryEntry)}
}

// Launch starts stepping the session's query on a new goroutine and returns
// its registry ID. The session is marked shared, so its Snapshot path
// synchronizes with the executor; the caller must not call Step or Monitor
// on it afterwards — the registry owns the stepping loop.
func (r *QueryRegistry) Launch(name string, s *Session) QueryID {
	s.shared = true
	r.mu.Lock()
	r.nextID++
	e := &registryEntry{id: r.nextID, name: name, session: s, done: make(chan struct{})}
	r.entries[e.id] = e
	r.order = append(r.order, e.id)
	r.mu.Unlock()
	r.metrics.Counter("lqs/queries_launched").Inc()
	r.metrics.Gauge("lqs/registry_active").Add(1)
	go func() {
		more := true
		var err error
		for more && err == nil {
			more, err = s.Step(256)
		}
		e.rows = s.Query.RowsReturned()
		e.err = err
		r.metrics.Gauge("lqs/registry_active").Add(-1)
		close(e.done)
	}()
	return e.id
}

// Poll returns the live status of one query. It is safe while the query
// runs: progress and row counts come from a lock-synchronized snapshot.
func (r *QueryRegistry) Poll(id QueryID) (QueryInfo, error) {
	r.mu.Lock()
	e := r.entries[id]
	r.mu.Unlock()
	if e == nil {
		return QueryInfo{}, fmt.Errorf("lqs: no query with id %d", id)
	}
	return e.info(), nil
}

// List returns the status of every launched query, in launch order.
func (r *QueryRegistry) List() []QueryInfo {
	r.mu.Lock()
	ids := append([]QueryID(nil), r.order...)
	entries := make([]*registryEntry, len(ids))
	for i, id := range ids {
		entries[i] = r.entries[id]
	}
	r.mu.Unlock()
	out := make([]QueryInfo, len(entries))
	for i, e := range entries {
		out[i] = e.info()
	}
	return out
}

// Cancel requests cooperative cancellation of a running query. The query
// reaches CANCELLED at its next charge boundary; Wait observes the result.
func (r *QueryRegistry) Cancel(id QueryID, reason string) error {
	r.mu.Lock()
	e := r.entries[id]
	r.mu.Unlock()
	if e == nil {
		return fmt.Errorf("lqs: no query with id %d", id)
	}
	e.session.Cancel(reason)
	return nil
}

// Wait blocks until the query reaches a terminal state and returns its
// result row count and terminal error (nil if it succeeded).
func (r *QueryRegistry) Wait(id QueryID) (int64, error) {
	r.mu.Lock()
	e := r.entries[id]
	r.mu.Unlock()
	if e == nil {
		return 0, fmt.Errorf("lqs: no query with id %d", id)
	}
	<-e.done
	return e.rows, e.err
}

// Len returns the number of registry entries, running or finished.
func (r *QueryRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// terminal reports whether the entry's runner goroutine has finished (its
// rows/err are recorded and done is closed). Non-blocking.
func (e *registryEntry) terminal() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Remove deletes one finished query from the registry so a long-running
// server does not accumulate an entry per completed query. Removing a
// query that is still running is an error — Cancel it and Wait first.
// The session itself is untouched; callers holding it may keep reading
// its flight recorder.
func (r *QueryRegistry) Remove(id QueryID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[id]
	if e == nil {
		return fmt.Errorf("lqs: no query with id %d", id)
	}
	if !e.terminal() {
		return fmt.Errorf("lqs: query %d still running; cancel and wait before removing", id)
	}
	delete(r.entries, id)
	for i, x := range r.order {
		if x == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// Reap removes every finished query and returns the removed IDs in launch
// order. Running queries are untouched, so Reap is safe to call on a hot
// registry at any cadence — the server's terminal-entry garbage collector.
func (r *QueryRegistry) Reap() []QueryID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var reaped []QueryID
	keep := r.order[:0]
	for _, id := range r.order {
		e := r.entries[id]
		if e != nil && e.terminal() {
			delete(r.entries, id)
			reaped = append(reaped, id)
			continue
		}
		keep = append(keep, id)
	}
	r.order = keep
	return reaped
}

func (e *registryEntry) info() QueryInfo {
	snap := e.session.Snapshot()
	return QueryInfo{
		ID:          e.id,
		Name:        e.name,
		State:       snap.State,
		Progress:    snap.Progress,
		Rows:        e.session.Query.RowsReturned(),
		VirtualTime: snap.At,
		Err:         snap.Err,
	}
}
