package lqs

import (
	"strings"
	"testing"
	"time"

	"lqs/internal/progress"
	"lqs/internal/sim"
)

// TestStartDOPMonitorsParallelQuery: a StartDOP session runs the rewritten
// parallel plan to completion under Monitor, every snapshot carries the
// per-thread drill-down rows, and progress behaves exactly as on a serial
// session — the estimator sees only aggregated counters.
func TestStartDOPMonitorsParallelQuery(t *testing.T) {
	db := testDB(t)
	const dop = 4
	s := StartDOP(db, testPlan(db), dop, progress.LQSOptions())
	if s.Query.Ctx.DOP != dop {
		t.Fatalf("session DOP = %d", s.Query.Ctx.DOP)
	}

	sawWorkers := false
	var snaps []*QuerySnapshot
	_, err := s.Monitor(200*time.Microsecond, func(q *QuerySnapshot) {
		snaps = append(snaps, q)
		if q.Progress < 0 || q.Progress > 1 {
			t.Fatalf("progress out of range: %v", q.Progress)
		}
		perNode := make(map[int]int)
		for _, th := range q.Threads {
			perNode[th.NodeID]++
		}
		for id, n := range perNode {
			if n > 1 {
				sawWorkers = true
				if n != dop && n != dop+1 {
					t.Fatalf("node %d has %d thread rows, want %d or %d", id, n, dop, dop+1)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("monitor: %v", err)
	}
	if !sawWorkers {
		t.Fatal("no snapshot exposed per-worker thread rows")
	}
	final := snaps[len(snaps)-1]
	if final.Progress < 0.99 {
		t.Fatalf("final progress %v", final.Progress)
	}

	// The drill-down renders one block per multi-threaded operator with a
	// line per worker; a serial session renders nothing.
	out := s.RenderThreads(final)
	if !strings.Contains(out, "threads=") || !strings.Contains(out, "thread 1:") {
		t.Fatalf("thread drill-down missing workers:\n%s", out)
	}

	serial := Start(testDB(t), testPlan(db), progress.LQSOptions())
	if _, err := serial.Monitor(200*time.Microsecond, func(*QuerySnapshot) {}); err != nil {
		t.Fatalf("serial monitor: %v", err)
	}
	if out := serial.RenderThreads(serial.Last()); out != "" {
		t.Fatalf("serial drill-down not empty:\n%s", out)
	}
}

// TestStartDOPDeterministicWithSerialResults: StartDOP must return the same
// rows and the same final virtual time run-to-run, and the same rows as the
// serial session.
func TestStartDOPDeterministicWithSerialResults(t *testing.T) {
	run := func(dop int) (int64, sim.Duration) {
		db := testDB(t)
		var s *Session
		if dop > 1 {
			s = StartDOP(db, testPlan(db), dop, progress.LQSOptions())
		} else {
			s = Start(db, testPlan(db), progress.LQSOptions())
		}
		n, err := s.Monitor(500*time.Microsecond, func(*QuerySnapshot) {})
		if err != nil {
			t.Fatalf("dop=%d: %v", dop, err)
		}
		return n, s.Query.Ctx.Clock.Now()
	}
	sn, _ := run(1)
	p1n, p1t := run(4)
	p2n, p2t := run(4)
	if p1n != sn {
		t.Fatalf("row counts differ: serial %d, dop=4 %d", sn, p1n)
	}
	if p1n != p2n || p1t != p2t {
		t.Fatalf("dop=4 not reproducible: rows %d/%d, end %v/%v", p1n, p2n, p1t, p2t)
	}
}
