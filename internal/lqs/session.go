// Package lqs is the user-facing Live Query Statistics layer: it ties a
// running query to the client-side progress estimator and produces the
// artifact SSMS renders (paper §2.3) — overall query progress, per-operator
// progress and row counts, and active-pipeline indicators — plus a plain
// text plan animator used by cmd/lqsmon and the examples.
package lqs

import (
	"fmt"
	"strings"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/storage"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
)

// Session monitors one executing query: it polls the DMV surface on the
// query's clock and computes progress estimates on demand.
type Session struct {
	Query     *exec.Query
	Estimator *progress.Estimator

	plan *plan.Plan
	db   *storage.Database
}

// Attach creates a monitoring session for a query with the given estimator
// options (LQSOptions for the shipping configuration).
func Attach(q *exec.Query, db *storage.Database, o progress.Options) *Session {
	return &Session{
		Query:     q,
		Estimator: progress.NewEstimator(q.Plan, db.Catalog, o),
		plan:      q.Plan,
		db:        db,
	}
}

// Start builds, estimates, and prepares a query over the database, ready
// to Step and Snapshot. It is the one-stop entry point the examples use.
func Start(db *storage.Database, root *plan.Node, o progress.Options) *Session {
	p := plan.Finalize(root)
	opt.NewEstimator(db.Catalog).Estimate(p)
	q := exec.NewQuery(p, db, opt.DefaultCostModel(), sim.NewClock())
	return Attach(q, db, o)
}

// Step advances the query by up to n result rows; false when complete.
func (s *Session) Step(n int) bool { return s.Query.Step(n) }

// Done reports whether the query has finished.
func (s *Session) Done() bool { return s.Query.Done() }

// OpStatus is one operator's live state, as displayed under each plan node.
type OpStatus struct {
	NodeID   int
	Name     string
	Progress float64
	// RowsSoFar and EstRows are the counts the §2.3.1 troubleshooting
	// workflow compares: actual rows already far above the optimizer
	// estimate betray a cardinality estimation problem mid-flight.
	RowsSoFar int64
	EstRows   float64
	RefinedN  float64
	Elapsed   sim.Duration
	Active    bool
	Done      bool
}

// QuerySnapshot is one poll's worth of display state.
type QuerySnapshot struct {
	At       sim.Duration
	Progress float64
	Ops      []OpStatus // indexed by node ID
	// ActivePipelines marks pipelines with work in flight — the animated
	// dotted arrows of the SSMS visualization.
	ActivePipelines []bool
}

// Snapshot polls the DMV surface and estimates progress right now.
func (s *Session) Snapshot() *QuerySnapshot {
	snap := dmv.Capture(s.Query)
	est := s.Estimator.Estimate(snap)
	out := &QuerySnapshot{
		At:              snap.At,
		Progress:        est.Query,
		Ops:             make([]OpStatus, len(s.plan.Nodes)),
		ActivePipelines: make([]bool, len(s.Estimator.Decomp.Pipelines)),
	}
	for _, n := range s.plan.Nodes {
		op := snap.Op(n.ID)
		elapsed := sim.Duration(0)
		if op.Opened {
			end := op.LastActive
			if op.Closed {
				end = op.ClosedAt
			}
			if end > op.OpenedAt {
				elapsed = end - op.OpenedAt
			}
		}
		out.Ops[n.ID] = OpStatus{
			NodeID:    n.ID,
			Name:      n.Physical.String(),
			Progress:  est.Op[n.ID],
			RowsSoFar: op.ActualRows,
			EstRows:   n.EstRows,
			RefinedN:  est.N[n.ID],
			Elapsed:   elapsed,
			Active:    op.Opened && !op.Closed,
			Done:      op.Closed,
		}
	}
	for _, pl := range s.Estimator.Decomp.Pipelines {
		prog := est.PipelineProg[pl.ID]
		out.ActivePipelines[pl.ID] = prog > 0 && prog < 1
	}
	return out
}

// Render draws the plan tree with live per-operator progress, the text
// analog of the SSMS showplan overlay (Fig. 2): overall progress at the
// top, then each operator with its progress bar, percentage, row counts,
// and elapsed time; still-executing pipeline edges render dotted.
func (s *Session) Render(q *QuerySnapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query progress: %5.1f%%   t=%v\n", q.Progress*100, q.At)
	var walk func(n *plan.Node, depth int)
	walk = func(n *plan.Node, depth int) {
		st := q.Ops[n.ID]
		edge := "── "
		if st.Active {
			edge = "┄┄ " // dotted: pipeline still running
		}
		indent := strings.Repeat("   ", depth)
		fmt.Fprintf(&sb, "%s%s%-22s %s %5.1f%%  rows=%d (est %.0f) %v\n",
			indent, edge, n.Physical.String(), bar(st.Progress, 10),
			st.Progress*100, st.RowsSoFar, st.EstRows, st.Elapsed)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(s.plan.Root, 0)
	return sb.String()
}

func bar(frac float64, width int) string {
	full := int(frac * float64(width))
	if full > width {
		full = width
	}
	if full < 0 {
		full = 0
	}
	return "[" + strings.Repeat("█", full) + strings.Repeat("░", width-full) + "]"
}

// Monitor steps the query to completion, invoking observe at every poll
// interval of virtual time, and returns the number of result rows. It is
// the loop cmd/lqsmon and the examples drive.
func (s *Session) Monitor(interval sim.Duration, observe func(*QuerySnapshot)) int64 {
	s.Query.Ctx.Clock.Observe(interval, func(sim.Duration) {
		if !s.Query.Done() {
			observe(s.Snapshot())
		}
	})
	for s.Step(256) {
	}
	observe(s.Snapshot())
	return s.Query.RowsReturned()
}
