// Package lqs is the user-facing Live Query Statistics layer: it ties a
// running query to the client-side progress estimator and produces the
// artifact SSMS renders (paper §2.3) — overall query progress, per-operator
// progress and row counts, and active-pipeline indicators — plus a plain
// text plan animator used by cmd/lqsmon and the examples.
package lqs

import (
	"fmt"
	"strings"
	"sync"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/storage"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
)

// Session monitors one executing query: it polls the DMV surface on the
// query's clock and computes progress estimates on demand.
type Session struct {
	Query     *exec.Query
	Estimator *progress.Estimator

	plan *plan.Plan
	db   *storage.Database

	// shared marks the session as observed from goroutines other than the
	// executor (registry-launched queries). Snapshot then captures through
	// the query's counter lock and serializes the estimator, which keeps
	// per-session state across polls.
	shared bool
	snapMu sync.Mutex

	// Flight recorder: every Snapshot is retained in a bounded ring so the
	// display layer can render a query's final state — or replay its whole
	// progress curve — after it finished, even between poll boundaries.
	histCap     int // 0 → DefaultHistoryCap, negative → unlimited
	history     []*QuerySnapshot
	histDropped int64

	// fault, when non-nil, intercepts each DMV capture exactly as a
	// dmv.Poller's fault hook does — the chaos harness uses it to make
	// snapshot-layer faults visible on the lqsmon monitoring path, which
	// captures directly instead of going through a Poller.
	fault dmv.PollFault
}

// DefaultHistoryCap is the number of snapshots a session's flight recorder
// retains unless SetHistoryCap overrides it.
const DefaultHistoryCap = 64

// Attach creates a monitoring session for a query with the given estimator
// options (LQSOptions for the shipping configuration).
func Attach(q *exec.Query, db *storage.Database, o progress.Options) *Session {
	return &Session{
		Query:     q,
		Estimator: progress.NewEstimator(q.Plan, db.Catalog, o),
		plan:      q.Plan,
		db:        db,
	}
}

// Start builds, estimates, and prepares a query over the database, ready
// to Step and Snapshot. It is the one-stop entry point the examples use.
func Start(db *storage.Database, root *plan.Node, o progress.Options) *Session {
	return StartDOP(db, root, 1, o)
}

// StartDOP is Start at an explicit degree of parallelism: the plan is
// rewritten with parallel zones (plan.Parallelize) before finalization and
// executed with dop workers per gather. The estimator is unchanged — it
// consumes aggregated counters, exactly as LQS estimates parallel plans
// from the per-thread DMV rows the server emits.
func StartDOP(db *storage.Database, root *plan.Node, dop int, o progress.Options) *Session {
	p := plan.Finalize(plan.Parallelize(root, dop))
	opt.NewEstimator(db.Catalog).Estimate(p)
	q := exec.NewQueryDOP(p, db, opt.DefaultCostModel(), sim.NewClock(), dop)
	return Attach(q, db, o)
}

// Step advances the query by up to n result rows; more=false once the
// query reaches a terminal state. A failed or cancelled query reports its
// terminal *exec.QueryError; operator panics are recovered inside the
// executor and surface here as errors, never as panics.
func (s *Session) Step(n int) (more bool, err error) { return s.Query.Step(n) }

// Done reports whether the query has reached a terminal state (succeeded,
// cancelled, or failed).
func (s *Session) Done() bool { return s.Query.Done() }

// State returns the query's lifecycle state.
func (s *Session) State() exec.QueryState { return s.Query.State() }

// Err returns the query's terminal error (nil while running or succeeded).
func (s *Session) Err() error { return s.Query.Err() }

// Cancel requests cooperative cancellation; the executor aborts at the next
// operator charge boundary. Safe from any goroutine; no-op once terminal.
func (s *Session) Cancel(reason string) { s.Query.Cancel(reason) }

// OpStatus is one operator's live state, as displayed under each plan node.
type OpStatus struct {
	NodeID   int
	Name     string
	Progress float64
	// RowsSoFar and EstRows are the counts the §2.3.1 troubleshooting
	// workflow compares: actual rows already far above the optimizer
	// estimate betray a cardinality estimation problem mid-flight.
	RowsSoFar int64
	EstRows   float64
	RefinedN  float64
	Elapsed   sim.Duration
	Active    bool
	Done      bool
}

// ThreadStatus is one raw per-thread DMV row's display state: the
// drill-down behind an operator's aggregated counters on a parallel plan,
// the analog of expanding a node's per-thread rows in
// sys.dm_exec_query_profiles. Thread 0 is the coordinator instance of an
// operator; threads 1..DOP are gather workers.
type ThreadStatus struct {
	NodeID    int
	ThreadID  int
	Name      string
	RowsSoFar int64
	CPUTime   sim.Duration
	IOTime    sim.Duration
	Active    bool
	Done      bool
}

// QuerySnapshot is one poll's worth of display state.
type QuerySnapshot struct {
	At       sim.Duration
	Progress float64
	State    exec.QueryState
	Err      error      // terminal error, if State is CANCELLED or FAILED
	Ops      []OpStatus // indexed by node ID
	// Threads holds the raw per-(node, thread) rows behind Ops, sorted by
	// (NodeID, ThreadID). Serial plans contribute one thread-0 row per node;
	// operators inside a parallel zone contribute one row per worker.
	Threads []ThreadStatus
	// ActivePipelines marks pipelines with work in flight — the animated
	// dotted arrows of the SSMS visualization.
	ActivePipelines []bool
	// Degraded marks a poll whose estimate ran on a faulty or stalled
	// snapshot (see progress.Estimate.Degraded); DegradeReason says why.
	Degraded      bool
	DegradeReason string
}

// SetSnapshotFault installs a capture interceptor on the session's own
// Snapshot/Explain path (the chaos harness's DMV-layer injector). A stall
// reported by the hook marks the capture Degraded rather than dropping it —
// the session has no watchdog ticks to skip, so the degradation surfaces
// directly on the poll. Nil removes the hook.
func (s *Session) SetSnapshotFault(f dmv.PollFault) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.fault = f
}

// applyFault runs the installed capture interceptor over a fresh capture.
func (s *Session) applyFault(snap *dmv.Snapshot) *dmv.Snapshot {
	if s.fault == nil {
		return snap
	}
	out, stalled := s.fault.OnPoll(snap.At, snap)
	if stalled {
		snap.Degraded = true
		snap.DegradeReason = "dmv poll stalled past interval"
		return snap
	}
	if out != nil {
		return out
	}
	return snap
}

// Snapshot polls the DMV surface and estimates progress right now. On a
// shared session (registry-launched) it synchronizes with the executor, so
// it is safe to call concurrently with the query running.
func (s *Session) Snapshot() *QuerySnapshot {
	if s.shared {
		s.snapMu.Lock()
		defer s.snapMu.Unlock()
		out := s.snapshot(s.applyFault(dmv.CaptureSync(s.Query)))
		s.record(out)
		return out
	}
	out := s.snapshot(s.applyFault(dmv.Capture(s.Query)))
	s.snapMu.Lock()
	s.record(out)
	s.snapMu.Unlock()
	return out
}

// snapshot builds the display state for one captured DMV snapshot.
func (s *Session) snapshot(snap *dmv.Snapshot) *QuerySnapshot {
	est := s.Estimator.Estimate(snap)
	out := &QuerySnapshot{
		At:              snap.At,
		Progress:        est.Query,
		State:           s.Query.State(),
		Err:             s.Query.Err(),
		Ops:             make([]OpStatus, len(s.plan.Nodes)),
		ActivePipelines: make([]bool, len(s.Estimator.Decomp.Pipelines)),
		Degraded:        est.Degraded,
		DegradeReason:   est.DegradeReason,
	}
	for _, n := range s.plan.Nodes {
		op := snap.Op(n.ID)
		elapsed := sim.Duration(0)
		if op.Opened {
			end := op.LastActive
			if op.Closed {
				end = op.ClosedAt
			}
			if end > op.OpenedAt {
				elapsed = end - op.OpenedAt
			}
		}
		out.Ops[n.ID] = OpStatus{
			NodeID:    n.ID,
			Name:      n.Physical.String(),
			Progress:  est.Op[n.ID],
			RowsSoFar: op.ActualRows,
			EstRows:   n.EstRows,
			RefinedN:  est.N[n.ID],
			Elapsed:   elapsed,
			Active:    op.Opened && !op.Closed,
			Done:      op.Closed,
		}
	}
	for _, pl := range s.Estimator.Decomp.Pipelines {
		prog := est.PipelineProg[pl.ID]
		out.ActivePipelines[pl.ID] = prog > 0 && prog < 1
	}
	out.Threads = make([]ThreadStatus, 0, len(snap.Threads))
	for _, th := range snap.Threads {
		out.Threads = append(out.Threads, ThreadStatus{
			NodeID:    th.NodeID,
			ThreadID:  th.ThreadID,
			Name:      th.Physical.String(),
			RowsSoFar: th.ActualRows,
			CPUTime:   th.CPUTime,
			IOTime:    th.IOTime,
			Active:    th.Opened && !th.Closed,
			Done:      th.Closed,
		})
	}
	return out
}

// record appends a snapshot to the flight recorder; caller holds snapMu.
func (s *Session) record(q *QuerySnapshot) {
	limit := s.histCap
	if limit == 0 {
		limit = DefaultHistoryCap
	}
	s.history = append(s.history, q)
	if over := len(s.history) - limit; limit > 0 && over > 0 {
		s.history = append(s.history[:0:0], s.history[over:]...)
		s.histDropped += int64(over)
	}
}

// SetHistoryCap bounds the flight recorder to n snapshots (n <= 0 removes
// the bound). Lowering the cap trims already-retained history, oldest
// first.
func (s *Session) SetHistoryCap(n int) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if n <= 0 {
		s.histCap = -1
		return
	}
	s.histCap = n
	if over := len(s.history) - n; over > 0 {
		s.history = append(s.history[:0:0], s.history[over:]...)
		s.histDropped += int64(over)
	}
}

// History returns the flight recorder's retained snapshots, oldest first,
// plus the number dropped to the cap. The slice is a copy; it is safe to
// hold across further polls.
func (s *Session) History() ([]*QuerySnapshot, int64) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return append([]*QuerySnapshot(nil), s.history...), s.histDropped
}

// Last returns the newest retained snapshot without polling again — the
// frame a display renders for a query that reached a terminal state
// between polls — or nil if nothing was ever recorded.
func (s *Session) Last() *QuerySnapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if len(s.history) == 0 {
		return nil
	}
	return s.history[len(s.history)-1]
}

// Explain polls the DMV surface and decomposes the current estimate into
// its per-operator terms (progress.Explanation). It shares the session
// estimator — an Explain counts as a poll, exactly like Snapshot — and is
// safe under the same concurrency rules.
func (s *Session) Explain() *progress.Explanation {
	if s.shared {
		s.snapMu.Lock()
		defer s.snapMu.Unlock()
		x, _ := s.Estimator.Explain(s.applyFault(dmv.CaptureSync(s.Query)))
		return x
	}
	x, _ := s.Estimator.Explain(s.applyFault(dmv.Capture(s.Query)))
	return x
}

// Render draws the plan tree with live per-operator progress, the text
// analog of the SSMS showplan overlay (Fig. 2): overall progress at the
// top, then each operator with its progress bar, percentage, row counts,
// and elapsed time; still-executing pipeline edges render dotted.
func (s *Session) Render(q *QuerySnapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query progress: %5.1f%%   t=%v", q.Progress*100, q.At)
	if q.Degraded {
		sb.WriteString("   [DEGRADED]")
	}
	sb.WriteByte('\n')
	if q.Degraded && q.DegradeReason != "" {
		fmt.Fprintf(&sb, "*** degraded: %s\n", q.DegradeReason)
	}
	if q.State == exec.StateCancelled || q.State == exec.StateFailed {
		fmt.Fprintf(&sb, "*** %s: %v\n", q.State, q.Err)
	}
	var walk func(n *plan.Node, depth int)
	walk = func(n *plan.Node, depth int) {
		st := q.Ops[n.ID]
		edge := "── "
		if st.Active {
			edge = "┄┄ " // dotted: pipeline still running
		}
		indent := strings.Repeat("   ", depth)
		fmt.Fprintf(&sb, "%s%s%-22s %s %5.1f%%  rows=%d (est %.0f) %v\n",
			indent, edge, n.Physical.String(), bar(st.Progress, 10),
			st.Progress*100, st.RowsSoFar, st.EstRows, st.Elapsed)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(s.plan.Root, 0)
	return sb.String()
}

// RenderThreads draws the per-thread drill-down for every operator that
// runs on more than one thread in the snapshot — the text analog of
// expanding a parallel operator's per-thread rows in the SSMS grid. Serial
// snapshots (one thread-0 row everywhere) render as an empty string.
func (s *Session) RenderThreads(q *QuerySnapshot) string {
	perNode := make(map[int][]ThreadStatus)
	for _, th := range q.Threads {
		perNode[th.NodeID] = append(perNode[th.NodeID], th)
	}
	var sb strings.Builder
	for _, n := range s.plan.Nodes {
		rows := perNode[n.ID]
		if len(rows) < 2 {
			continue
		}
		var total int64
		for _, th := range rows {
			total += th.RowsSoFar
		}
		fmt.Fprintf(&sb, "[%d] %s  threads=%d  rows=%d\n", n.ID, n.Physical, len(rows), total)
		for _, th := range rows {
			state := "pending"
			switch {
			case th.Done:
				state = "done"
			case th.Active:
				state = "active"
			}
			fmt.Fprintf(&sb, "   thread %d: rows=%-8d cpu=%-12v io=%-12v %s\n",
				th.ThreadID, th.RowsSoFar, th.CPUTime, th.IOTime, state)
		}
	}
	return sb.String()
}

func bar(frac float64, width int) string {
	full := int(frac * float64(width))
	if full > width {
		full = width
	}
	if full < 0 {
		full = 0
	}
	return "[" + strings.Repeat("█", full) + strings.Repeat("░", width-full) + "]"
}

// Monitor steps the query to a terminal state, invoking observe at every
// poll interval of virtual time, and returns the number of result rows plus
// the terminal error (nil on success). It is the loop cmd/lqsmon and the
// examples drive. Observation stops the moment the query leaves the Running
// state: a cancelled or failed query gets one final snapshot — carrying the
// terminal State and Err — and no further polls. A nil observe runs the
// query to completion without snapshots.
func (s *Session) Monitor(interval sim.Duration, observe func(*QuerySnapshot)) (int64, error) {
	if observe == nil {
		observe = func(*QuerySnapshot) {}
	}
	obs := s.Query.Ctx.Clock.Observe(interval, func(sim.Duration) {
		if s.Query.State() == exec.StateRunning {
			observe(s.Snapshot())
		}
	})
	more := true
	var err error
	for more && err == nil {
		more, err = s.Step(256)
	}
	// Detach only Monitor's own poll observer before the final capture so a
	// terminal snapshot is delivered exactly once. Other observers sharing
	// the clock — an attached dmv.Poller, most commonly — stay registered.
	obs.Stop()
	observe(s.Snapshot())
	return s.Query.RowsReturned(), err
}
