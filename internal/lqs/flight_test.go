package lqs

import (
	"testing"
	"time"

	"lqs/internal/engine/exec"
	"lqs/internal/obs"
	"lqs/internal/progress"
)

// TestMonitorTerminalFrameBetweenPolls is the regression test for the
// blank-table bug: a query whose entire runtime fits inside one poll
// interval produces zero Running-state frames, so a display built only
// from live callbacks had nothing to show. The flight recorder must still
// hold a complete terminal snapshot.
func TestMonitorTerminalFrameBetweenPolls(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	running := 0
	rows, err := s.Monitor(time.Hour, func(q *QuerySnapshot) {
		if q.State == exec.StateRunning {
			running++
		}
	})
	if err != nil {
		t.Fatalf("monitor: %v", err)
	}
	if running != 0 {
		t.Fatalf("hour-long poll interval delivered %d running frames", running)
	}
	last := s.Last()
	if last == nil {
		t.Fatal("flight recorder empty after the query finished between polls")
	}
	if last.State != exec.StateSucceeded || last.Progress < 0.99 {
		t.Fatalf("terminal frame state=%v progress=%v", last.State, last.Progress)
	}
	// The frame is a full table, not a blank one: every operator is done
	// with its real row counts.
	for _, op := range last.Ops {
		if !op.Done {
			t.Fatalf("terminal frame shows %s unfinished", op.Name)
		}
	}
	if last.Ops[2].RowsSoFar != 8000 || rows != 16 {
		t.Fatalf("terminal frame rows: scan=%d returned=%d", last.Ops[2].RowsSoFar, rows)
	}
}

func TestSessionFlightRecorderRetainsCurve(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	frames := 0
	if _, err := s.Monitor(100*time.Microsecond, func(*QuerySnapshot) { frames++ }); err != nil {
		t.Fatalf("monitor: %v", err)
	}
	hist, dropped := s.History()
	if len(hist)+int(dropped) != frames {
		t.Fatalf("recorder holds %d + %d dropped, monitor delivered %d", len(hist), dropped, frames)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].At < hist[i-1].At {
			t.Fatalf("history out of order at %d: %v after %v", i, hist[i].At, hist[i-1].At)
		}
		if hist[i].Progress+1e-9 < hist[i-1].Progress {
			t.Fatalf("progress curve regressed at %d: %v after %v", i, hist[i].Progress, hist[i-1].Progress)
		}
	}
	if last := s.Last(); last != hist[len(hist)-1] {
		t.Fatal("Last() disagrees with History()")
	}
}

func TestSessionFlightRecorderCap(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	s.SetHistoryCap(3)
	var all []*QuerySnapshot
	if _, err := s.Monitor(100*time.Microsecond, func(q *QuerySnapshot) { all = append(all, q) }); err != nil {
		t.Fatalf("monitor: %v", err)
	}
	if len(all) <= 3 {
		t.Skipf("only %d frames; cannot exercise the cap", len(all))
	}
	hist, dropped := s.History()
	if len(hist) != 3 {
		t.Fatalf("retained %d snapshots, want 3", len(hist))
	}
	if want := int64(len(all) - 3); dropped != want {
		t.Fatalf("dropped %d, want %d", dropped, want)
	}
	// Newest retained; a retroactive lower cap trims further.
	if hist[2] != all[len(all)-1] {
		t.Fatal("cap did not keep the newest snapshot")
	}
	s.SetHistoryCap(1)
	hist, _ = s.History()
	if len(hist) != 1 || hist[0] != all[len(all)-1] {
		t.Fatal("retroactive trim did not keep only the newest snapshot")
	}
}

func TestSessionExplainMatchesSnapshot(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	s.Step(1)
	snap := s.Snapshot()
	x := s.Explain()
	if x.Query != snap.Progress {
		t.Fatalf("explain query %v != snapshot progress %v", x.Query, snap.Progress)
	}
	var sum float64
	for _, term := range x.Terms {
		sum += term.Contribution
	}
	if d := sum - x.RawQuery; d > 1e-9 || d < -1e-9 {
		t.Fatalf("Σ contributions %v != raw %v", sum, x.RawQuery)
	}
}

func TestRegistryOccupancyMetrics(t *testing.T) {
	db := testDB(t)
	reg := obs.NewRegistry()
	r := NewQueryRegistry()
	r.SetMetrics(reg)
	id1 := r.Launch("a", Start(db, testPlan(db), progress.LQSOptions()))
	id2 := r.Launch("b", Start(db, testPlan(db), progress.LQSOptions()))
	if _, err := r.Wait(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(id2); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("lqs/queries_launched").Value(); n != 2 {
		t.Fatalf("launched counter %d", n)
	}
	if n := reg.Gauge("lqs/registry_active").Value(); n != 0 {
		t.Fatalf("active gauge %d after both queries finished", n)
	}
}
