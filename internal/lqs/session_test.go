package lqs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
)

func testDB(tb testing.TB) *storage.Database {
	tb.Helper()
	cat := catalog.NewCatalog()
	tt := catalog.NewTable("t",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "g", Kind: types.KindInt},
		catalog.Column{Name: "v", Kind: types.KindFloat},
	)
	cat.Add(tt)
	db := storage.NewDatabase(cat, 1<<18)
	rows := make([]types.Row, 8000)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64(i)), types.Int(int64(i % 16)), types.Float(float64(i))}
	}
	db.Load("t", rows)
	db.BuildAllStats(16)
	return db
}

func testPlan(db *storage.Database) *plan.Node {
	b := plan.NewBuilder(db.Catalog)
	agg := b.HashAgg(b.TableScan("t", nil, nil), []int{1},
		[]expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(2, "v")}})
	return b.Sort(agg, []int{1}, []bool{true})
}

// TestMonitorCoexistsWithPoller: a dmv.Poller and Session.Monitor share one
// clock. Pre-fix, sim.Clock held a single observer slot, so Monitor's
// registration silently detached the poller (and a later poller would have
// detached Monitor); now both sample independently.
func TestMonitorCoexistsWithPoller(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	poller := dmv.NewPoller(s.Query.Ctx.Clock, 100*time.Microsecond)
	poller.Register(s.Query)

	observed := 0
	if _, err := s.Monitor(100*time.Microsecond, func(*QuerySnapshot) { observed++ }); err != nil {
		t.Fatalf("monitor: %v", err)
	}
	if observed < 3 {
		t.Fatalf("monitor observed only %d snapshots", observed)
	}
	tr := poller.Finish(s.Query)
	if len(tr.Snapshots) < 3 {
		t.Fatalf("poller sampled only %d snapshots while Monitor ran", len(tr.Snapshots))
	}
	// Both observers used the same interval, so they saw the same grid of
	// boundaries: the poller's trace must cover every Running-state poll
	// Monitor delivered (Monitor adds one final terminal snapshot).
	if len(tr.Snapshots) < observed-1 {
		t.Fatalf("poller saw %d boundaries, monitor saw %d", len(tr.Snapshots), observed)
	}
}

func TestSessionMonitorRunsToCompletion(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	var snaps []*QuerySnapshot
	rows, err := s.Monitor(100*time.Microsecond, func(q *QuerySnapshot) { snaps = append(snaps, q) })
	if err != nil {
		t.Fatalf("monitor: %v", err)
	}
	if rows != 16 {
		t.Fatalf("query returned %d rows", rows)
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d observations", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Progress < 0.99 {
		t.Fatalf("final progress %v", last.Progress)
	}
	// Earlier snapshots show partial progress.
	mid := snaps[len(snaps)/2]
	if mid.Progress <= 0 || mid.Progress >= 1 {
		t.Fatalf("mid progress %v not in (0,1)", mid.Progress)
	}
}

func TestSnapshotOpStatus(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	s.Step(1) // scan + agg build complete, sort emitting
	q := s.Snapshot()
	if len(q.Ops) != 3 {
		t.Fatalf("%d ops", len(q.Ops))
	}
	scan := q.Ops[2]
	if scan.RowsSoFar != 8000 || !scan.Done {
		t.Fatalf("scan status %+v", scan)
	}
	if scan.Progress != 1 {
		t.Fatalf("closed scan progress %v", scan.Progress)
	}
	if q.Ops[0].Active != true {
		t.Fatal("root sort should be active mid-output")
	}
}

func TestRenderContainsPlanAndBars(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	s.Step(4)
	out := s.Render(s.Snapshot())
	for _, want := range []string{"query progress:", "Sort", "Hash Aggregate", "Table Scan", "rows=8000", "["} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestActivePipelinesFlag(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	// Drive a little of the query via a clock observer so we catch the
	// scan mid-flight.
	var sawActive bool
	s.Query.Ctx.Clock.Observe(50*time.Microsecond, func(sim.Duration) {
		if s.Query.Done() {
			return
		}
		q := s.Snapshot()
		for _, a := range q.ActivePipelines {
			if a {
				sawActive = true
			}
		}
	})
	for more, err := true, error(nil); more && err == nil; {
		more, err = s.Step(64)
	}
	if !sawActive {
		t.Fatal("no pipeline ever reported active")
	}
}

// TestMonitorStopsObservingAfterCancel: once the query leaves Running, the
// poll observer must fall silent; the single final snapshot carries the
// terminal state and error, and Monitor surfaces the error.
func TestMonitorStopsObservingAfterCancel(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	var running, terminal int
	cancelled := false
	_, err := s.Monitor(50*time.Microsecond, func(q *QuerySnapshot) {
		if q.State == exec.StateRunning {
			running++
			if !cancelled {
				cancelled = true
				s.Cancel("kill from the monitor callback")
			}
			return
		}
		terminal++
		if q.State != exec.StateCancelled {
			t.Errorf("terminal snapshot state %v", q.State)
		}
		if q.Err == nil {
			t.Error("terminal snapshot missing the query error")
		}
	})
	var qe *exec.QueryError
	if !errors.As(err, &qe) || qe.Kind != exec.KindCancelled {
		t.Fatalf("monitor returned %v, want KindCancelled", err)
	}
	if running == 0 {
		t.Fatal("observer never saw the query running")
	}
	if terminal != 1 {
		t.Fatalf("observed %d terminal snapshots, want exactly 1", terminal)
	}
	if s.State() != exec.StateCancelled || s.Err() == nil {
		t.Fatalf("session state %v, err %v", s.State(), s.Err())
	}
	if out := s.Render(s.Snapshot()); !strings.Contains(out, "CANCELLED") {
		t.Fatalf("render missing terminal banner:\n%s", out)
	}
}

// A deadline that expires inside the blocking phase must likewise stop
// observation and surface through Monitor.
func TestMonitorSurfacesDeadline(t *testing.T) {
	db := testDB(t)
	s := Start(db, testPlan(db), progress.LQSOptions())
	s.Query.Ctx.Deadline = 200 * time.Microsecond
	_, err := s.Monitor(50*time.Microsecond, func(q *QuerySnapshot) {})
	var qe *exec.QueryError
	if !errors.As(err, &qe) || qe.Kind != exec.KindDeadline {
		t.Fatalf("monitor returned %v, want KindDeadline", err)
	}
	if s.State() != exec.StateCancelled {
		t.Fatalf("state %v", s.State())
	}
}
