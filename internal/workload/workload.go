// Package workload builds the five evaluation workloads of the paper's
// Section 5 against the simulated engine:
//
//   - TPCH: a TPC-H-like schema and query suite at reduced scale with
//     Zipf(1) skew (the paper's 100 GB skewed TPC-H [1]); two physical
//     designs — the DTA-like row-store design and the all-columnstore
//     design of §5.4.
//   - TPCDS: a TPC-DS-like star schema with analogs of the queries named
//     in the paper's figures (Q13, Q21, Q36).
//   - REAL1/REAL2/REAL3: seeded synthetic decision-support workloads
//     matching the published shape statistics of the paper's proprietary
//     customer workloads (477 queries joining 5-8 tables; 632 queries with
//     ~12 joins; 40 join+group-by queries).
//
// Each Query is a plan *builder*: operators are single-use, so the
// experiment harness constructs a fresh plan per execution.
package workload

import (
	"lqs/internal/engine/catalog"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// Query is one workload query: a name plus a plan builder producing a
// fresh, un-finalized plan tree.
type Query struct {
	Name  string
	Build func(b *plan.Builder) *plan.Node
}

// Workload is a database plus its query suite.
type Workload struct {
	Name    string
	DB      *storage.Database
	Queries []Query

	// Gen regenerates an independent, identical copy of this workload
	// (same seed, fresh Database). Workload construction is a pure
	// function of its seed, so a copy's traces are byte-identical to the
	// original's; the parallel harness relies on this to give every
	// worker a private database instead of sharing mutable engine state.
	// Nil for hand-assembled workloads, which therefore run serially.
	Gen func() *Workload
}

// Builder returns a plan builder over the workload's catalog.
func (w *Workload) Builder() *plan.Builder { return plan.NewBuilder(w.DB.Catalog) }

// colSpec describes how to generate one column of a table.
type colSpec struct {
	name string
	kind types.Kind
	gen  func(rng *sim.RNG, rowIdx int64) types.Value
}

// serial generates 0, 1, 2, ...
func serial() func(*sim.RNG, int64) types.Value {
	return func(_ *sim.RNG, i int64) types.Value { return types.Int(i) }
}

// uniformInt generates uniform integers in [0, n).
func uniformInt(n int64) func(*sim.RNG, int64) types.Value {
	return func(rng *sim.RNG, _ int64) types.Value { return types.Int(rng.Int63n(n)) }
}

// zipfInt generates Zipf-skewed integers in [0, n) with parameter theta.
// The sampler is allocated lazily per generator so each column gets its
// own CDF table.
func zipfInt(n int64, theta float64) func(*sim.RNG, int64) types.Value {
	var z *sim.Zipf
	return func(rng *sim.RNG, _ int64) types.Value {
		if z == nil {
			z = sim.NewZipf(rng, n, theta)
		}
		return types.Int(z.Next() - 1)
	}
}

// uniformFloat generates uniform floats in [0, max).
func uniformFloat(max float64) func(*sim.RNG, int64) types.Value {
	return func(rng *sim.RNG, _ int64) types.Value { return types.Float(rng.Float64() * max) }
}

// pick chooses uniformly from a fixed string pool.
func pick(pool ...string) func(*sim.RNG, int64) types.Value {
	return func(rng *sim.RNG, _ int64) types.Value { return types.Str(pool[rng.Intn(len(pool))]) }
}

// dateInt generates "dates" as integer day numbers in [lo, hi).
func dateInt(lo, hi int64) func(*sim.RNG, int64) types.Value {
	return func(rng *sim.RNG, _ int64) types.Value { return types.Int(lo + rng.Int63n(hi-lo)) }
}

// genTable creates the catalog table and its rows from column specs.
func genTable(rng *sim.RNG, name string, n int64, cols []colSpec) (*catalog.Table, []types.Row) {
	cc := make([]catalog.Column, len(cols))
	for i, c := range cols {
		cc[i] = catalog.Column{Name: c.name, Kind: c.kind}
	}
	t := catalog.NewTable(name, cc...)
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		row := make(types.Row, len(cols))
		for j, c := range cols {
			row[j] = c.gen(rng, i)
		}
		rows[i] = row
	}
	return t, rows
}

// histogramBuckets is the statistics resolution used by every workload.
const histogramBuckets = 64
