package workload

import (
	"lqs/internal/engine/catalog"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// Scaled-down TPC-DS-like cardinalities.
const (
	dsDates        = 2400
	dsItems        = 1500
	dsStores       = 20
	dsCustomers    = 2000
	dsWarehouses   = 10
	dsStoreSales   = 40000
	dsCatalogSales = 20000
	dsInventory    = 25000
)

// TPCDS builds the TPC-DS-like star-schema workload, including analogs of
// the queries the paper's figures single out: Q13 (hash-aggregate heavy,
// Fig. 11), Q21 (multi-pipeline with >10x weight spread, Fig. 12), and
// Q36 (Fig. 13).
func TPCDS(seed uint64) *Workload {
	rng := sim.NewRNG(seed)
	cat := catalog.NewCatalog()

	specs := []struct {
		name string
		n    int64
		cols []colSpec
	}{
		{"date_dim", dsDates, []colSpec{
			{"d_datekey", types.KindInt, serial()},
			{"d_year", types.KindInt, func(_ *sim.RNG, i int64) types.Value { return types.Int(2000 + i/365) }},
			{"d_moy", types.KindInt, func(_ *sim.RNG, i int64) types.Value { return types.Int((i / 30 % 12) + 1) }},
		}},
		{"item", dsItems, []colSpec{
			{"i_itemkey", types.KindInt, serial()},
			{"i_category", types.KindString, pick("Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Toys", "Women")},
			{"i_class", types.KindInt, uniformInt(40)},
			{"i_brand", types.KindInt, uniformInt(100)},
			{"i_price", types.KindFloat, uniformFloat(300)},
		}},
		{"store", dsStores, []colSpec{
			{"s_storekey", types.KindInt, serial()},
			{"s_state", types.KindString, pick("CA", "TX", "NY", "WA", "IL", "GA", "OH", "MI")},
		}},
		{"customer", dsCustomers, []colSpec{
			{"c_custkey", types.KindInt, serial()},
			{"c_state", types.KindString, pick("CA", "TX", "NY", "WA", "IL", "GA", "OH", "MI", "FL", "PA")},
			{"c_birth_year", types.KindInt, dateInt(1930, 2000)},
		}},
		{"warehouse", dsWarehouses, []colSpec{
			{"w_warehousekey", types.KindInt, serial()},
			{"w_state", types.KindString, pick("CA", "TX", "NY", "WA")},
		}},
		{"store_sales", dsStoreSales, []colSpec{
			{"ss_sold_date", types.KindInt, dateInt(0, dsDates)},
			{"ss_item", types.KindInt, zipfInt(dsItems, 1.0)},
			{"ss_store", types.KindInt, uniformInt(dsStores)},
			{"ss_cust", types.KindInt, zipfInt(dsCustomers, 1.0)},
			{"ss_qty", types.KindInt, uniformInt(100)},
			{"ss_price", types.KindFloat, uniformFloat(300)},
			{"ss_profit", types.KindFloat, uniformFloat(100)},
		}},
		{"catalog_sales", dsCatalogSales, []colSpec{
			{"cs_sold_date", types.KindInt, dateInt(0, dsDates)},
			{"cs_item", types.KindInt, zipfInt(dsItems, 1.0)},
			{"cs_cust", types.KindInt, zipfInt(dsCustomers, 1.0)},
			{"cs_qty", types.KindInt, uniformInt(100)},
			{"cs_price", types.KindFloat, uniformFloat(300)},
		}},
		{"inventory", dsInventory, []colSpec{
			{"inv_datekey", types.KindInt, dateInt(0, dsDates)},
			{"inv_item", types.KindInt, zipfInt(dsItems, 1.0)},
			{"inv_warehouse", types.KindInt, uniformInt(dsWarehouses)},
			{"inv_qty", types.KindInt, uniformInt(1000)},
		}},
	}

	var load []func(db *storage.Database)
	for _, s := range specs {
		t, rows := genTable(rng.Fork(), s.name, s.n, s.cols)
		addTPCDSIndexes(t)
		cat.Add(t)
		name, r := s.name, rows
		load = append(load, func(db *storage.Database) { db.Load(name, r) })
	}
	db := storage.NewDatabase(cat, 1<<18)
	for _, f := range load {
		f(db)
	}
	db.BuildAllStats(histogramBuckets)
	w := &Workload{Name: "TPC-DS", DB: db, Queries: tpcdsQueries()}
	w.Gen = func() *Workload { return TPCDS(seed) }
	return w
}

func addTPCDSIndexes(t *catalog.Table) {
	t.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	switch t.Name {
	case "store_sales":
		t.AddIndex(&catalog.Index{Name: "ix_item", KeyCols: []int{t.MustCol("ss_item")}})
		t.AddIndex(&catalog.Index{Name: "ix_cust", KeyCols: []int{t.MustCol("ss_cust")}})
	case "catalog_sales":
		t.AddIndex(&catalog.Index{Name: "ix_item", KeyCols: []int{t.MustCol("cs_item")}})
	case "inventory":
		t.AddIndex(&catalog.Index{Name: "ix_item", KeyCols: []int{t.MustCol("inv_item")}})
	}
}

func tpcdsQueries() []Query {
	return []Query{
		// Q13 analog: the paper's Fig. 11 hash-aggregate case — a large
		// fact join whose result collapses into very few groups.
		{Name: "Q13", Build: func(b *plan.Builder) *plan.Node {
			ss := b.TableScan("store_sales", nil, nil)
			sc := row(b, "store_sales", "customer")
			j1 := b.HashJoinNode(plan.LogicalInnerJoin, ss,
				b.TableScan("customer",
					inStr(row(b, "customer").c("customer", "c_state"), "CA", "TX"), nil),
				[]int{sc.idx("store_sales", "ss_cust")},
				[]int{row(b, "customer").idx("customer", "c_custkey")}, nil)
			scs := row(b, "store_sales", "customer", "store")
			j2 := b.HashJoinNode(plan.LogicalInnerJoin, j1,
				b.TableScan("store", nil, nil),
				[]int{sc.idx("store_sales", "ss_store")},
				[]int{row(b, "store").idx("store", "s_storekey")}, nil)
			return b.HashAgg(j2,
				[]int{scs.idx("store", "s_state")},
				[]expr.AggSpec{
					{Kind: expr.Avg, Arg: scs.c("store_sales", "ss_qty")},
					{Kind: expr.Avg, Arg: scs.c("store_sales", "ss_price")},
					{Kind: expr.Sum, Arg: scs.c("store_sales", "ss_profit")},
					{Kind: expr.CountStar},
				})
		}},

		// Q21 analog: the paper's Fig. 12 query — consecutive pipelines
		// whose per-tuple weights differ by more than an order of
		// magnitude. The first pipeline is random-I/O bound (an index
		// nested loop driving few GetNext calls per unit time); the later
		// pipelines stream many rows through cheap operators. An
		// unweighted estimator therefore severely underestimates progress
		// until the cheap pipelines run.
		{Name: "Q21", Build: func(b *plan.Builder) *plan.Node {
			item := b.TableScan("item",
				expr.Gt(row(b, "item").c("item", "i_price"), expr.KInt(280)), nil)
			seek := b.SeekEq("store_sales", "ix_item",
				[]expr.Expr{row(b, "item").c("item", "i_itemkey")}, nil)
			nl := b.NestedLoopsNode(plan.LogicalInnerJoin, item, seek, nil)
			is := row(b, "item", "store_sales")
			agg1 := b.HashAgg(nl,
				[]int{is.idx("store_sales", "ss_item")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: is.c("store_sales", "ss_qty")}})
			// Late pipelines: a large probe streamed through a chain of
			// cheap per-row operators — many GetNext calls per unit time,
			// the opposite speed regime from the seek pipeline above.
			csScan := b.TableScan("catalog_sales", nil, nil)
			j := b.HashJoinNode(plan.LogicalLeftSemiJoin, csScan, agg1,
				[]int{row(b, "catalog_sales").idx("catalog_sales", "cs_item")},
				[]int{0}, nil)
			comp1 := b.ComputeScalar(j,
				expr.Times(row(b, "catalog_sales").c("catalog_sales", "cs_price"),
					row(b, "catalog_sales").c("catalog_sales", "cs_qty")))
			fl := b.Filter(comp1, expr.Gt(row(b, "catalog_sales").c("catalog_sales", "cs_qty"), expr.KInt(2)))
			comp2 := b.ComputeScalar(fl, expr.Plus(expr.C(5, "rev"), expr.KInt(1)))
			seg := b.SegmentNode(comp2, []int{1})
			ex := b.ExchangeNode(seg, plan.GatherStreams)
			return b.Sort(ex, []int{5}, []bool{true})
		}},

		// Q36 analog: the paper's Fig. 13 query — gross margin rollup by
		// item category/class.
		{Name: "Q36", Build: func(b *plan.Builder) *plan.Node {
			ss := b.TableScan("store_sales", nil, nil)
			si := row(b, "store_sales", "item")
			j1 := b.HashJoinNode(plan.LogicalInnerJoin, ss,
				b.TableScan("item", nil, nil),
				[]int{si.idx("store_sales", "ss_item")},
				[]int{row(b, "item").idx("item", "i_itemkey")}, nil)
			sis := row(b, "store_sales", "item", "store")
			j2 := b.HashJoinNode(plan.LogicalInnerJoin, j1,
				b.TableScan("store",
					inStr(row(b, "store").c("store", "s_state"), "CA", "WA"), nil),
				[]int{si.idx("store_sales", "ss_store")},
				[]int{row(b, "store").idx("store", "s_storekey")}, nil)
			agg := b.HashAgg(j2,
				[]int{sis.idx("item", "i_category"), sis.idx("item", "i_class")},
				[]expr.AggSpec{
					{Kind: expr.Sum, Arg: sis.c("store_sales", "ss_profit")},
					{Kind: expr.Sum, Arg: sis.c("store_sales", "ss_price")},
				})
			comp := b.ComputeScalar(agg, expr.DivBy(expr.C(2, "profit"), expr.C(3, "rev")))
			srt := b.Sort(comp, []int{0, 4}, []bool{false, true})
			return b.SegmentNode(srt, []int{0})
		}},

		// A date-ordered merge join (stream aggregate over sorted groups).
		{Name: "DS-MJ", Build: func(b *plan.Builder) *plan.Node {
			ss := b.ClusteredIndexScan("store_sales", "pk", nil, nil)
			dd := b.ClusteredIndexScan("date_dim", "pk", nil, nil)
			sd := row(b, "store_sales", "date_dim")
			mj := b.MergeJoinNode(plan.LogicalInnerJoin, ss, dd,
				[]int{sd.idx("store_sales", "ss_sold_date")},
				[]int{row(b, "date_dim").idx("date_dim", "d_datekey")}, nil)
			return b.StreamAgg(mj,
				[]int{sd.idx("store_sales", "ss_sold_date")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: sd.c("store_sales", "ss_price")}})
		}},

		// Cross-channel union: customers buying in both channels (semi)
		// and store-only customers (anti).
		{Name: "DS-CHAN", Build: func(b *plan.Builder) *plan.Node {
			ssAgg := b.HashAgg(b.TableScan("store_sales", nil, nil),
				[]int{row(b, "store_sales").idx("store_sales", "ss_cust")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: row(b, "store_sales").c("store_sales", "ss_price")}})
			semi := b.HashJoinNode(plan.LogicalLeftSemiJoin, ssAgg,
				b.TableScan("catalog_sales", nil, nil),
				[]int{0}, []int{row(b, "catalog_sales").idx("catalog_sales", "cs_cust")}, nil)
			anti := b.HashJoinNode(plan.LogicalLeftAntiSemiJoin,
				b.HashAgg(b.TableScan("store_sales", nil, nil),
					[]int{row(b, "store_sales").idx("store_sales", "ss_cust")},
					[]expr.AggSpec{{Kind: expr.Sum, Arg: row(b, "store_sales").c("store_sales", "ss_price")}}),
				b.TableScan("catalog_sales", nil, nil),
				[]int{0}, []int{row(b, "catalog_sales").idx("catalog_sales", "cs_cust")}, nil)
			return b.Sort(b.Concat(semi, anti), []int{1}, []bool{true})
		}},

		// Exchange-heavy scan + aggregate (the Fig. 7/8 shape: parallelism
		// over a nested loop).
		{Name: "DS-EXCH", Build: func(b *plan.Builder) *plan.Node {
			cust := b.TableScan("customer",
				expr.Lt(row(b, "customer").c("customer", "c_birth_year"), expr.KInt(1970)), nil)
			inner := b.SeekEq("store_sales", "ix_cust",
				[]expr.Expr{row(b, "customer").c("customer", "c_custkey")}, nil)
			nl := b.NestedLoopsNode(plan.LogicalInnerJoin, cust, inner, nil)
			ex := b.ExchangeNode(nl, plan.GatherStreams)
			sc := row(b, "customer", "store_sales")
			return b.HashAgg(ex,
				[]int{sc.idx("customer", "c_state")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: sc.c("store_sales", "ss_price")}, {Kind: expr.CountStar}})
		}},

		// Top-selling items via index nested loops into item.
		{Name: "DS-TOPITEM", Build: func(b *plan.Builder) *plan.Node {
			agg := b.HashAgg(b.TableScan("store_sales", nil, nil),
				[]int{row(b, "store_sales").idx("store_sales", "ss_item")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: row(b, "store_sales").c("store_sales", "ss_qty")}})
			top := b.TopNSortNode(agg, 50, []int{1}, []bool{true})
			inner := b.SeekEq("item", "pk", []expr.Expr{expr.C(0, "ss_item")}, nil)
			return b.NestedLoopsNode(plan.LogicalInnerJoin, top, inner, nil)
		}},

		// Storage-engine predicate scan (§4.3): opaque hash-bucket filter.
		{Name: "DS-OPAQUE", Build: func(b *plan.Builder) *plan.Node {
			bucket := &expr.Func{
				Name: "hashbucket",
				Args: []expr.Expr{row(b, "store_sales").c("store_sales", "ss_cust")},
				Fn: func(a []types.Value) types.Value {
					v, _ := a[0].AsInt()
					return types.Bool(v%13 == 0)
				},
			}
			scan := b.TableScan("store_sales", nil, bucket)
			return b.HashAgg(scan,
				[]int{row(b, "store_sales").idx("store_sales", "ss_store")},
				[]expr.AggSpec{{Kind: expr.CountStar}})
		}},

		// Outer join distribution (Q13-of-TPC-H shape on DS schema).
		{Name: "DS-OUTER", Build: func(b *plan.Builder) *plan.Node {
			oj := b.HashJoinNode(plan.LogicalLeftOuterJoin,
				b.TableScan("customer", nil, nil),
				b.TableScan("catalog_sales", nil, nil),
				[]int{row(b, "customer").idx("customer", "c_custkey")},
				[]int{row(b, "catalog_sales").idx("catalog_sales", "cs_cust")}, nil)
			cc := row(b, "customer", "catalog_sales")
			per := b.HashAgg(oj,
				[]int{cc.idx("customer", "c_custkey")},
				[]expr.AggSpec{{Kind: expr.Count, Arg: cc.c("catalog_sales", "cs_qty")}})
			hist := b.HashAgg(per, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
			return b.Sort(hist, []int{0}, nil)
		}},

		// Inventory weeks with low stock: range seek + lookup.
		{Name: "DS-LOWSTOCK", Build: func(b *plan.Builder) *plan.Node {
			inv := b.TableScan("inventory",
				expr.Lt(row(b, "inventory").c("inventory", "inv_qty"), expr.KInt(50)), nil)
			iw := row(b, "inventory", "warehouse")
			j := b.HashJoinNode(plan.LogicalInnerJoin, inv,
				b.TableScan("warehouse", nil, nil),
				[]int{iw.idx("inventory", "inv_warehouse")},
				[]int{row(b, "warehouse").idx("warehouse", "w_warehousekey")}, nil)
			agg := b.HashAgg(j,
				[]int{iw.idx("warehouse", "w_state")},
				[]expr.AggSpec{{Kind: expr.CountStar}})
			return b.Sort(agg, []int{1}, []bool{true})
		}},

		// Distinct customers per category (distinct sort exercise).
		{Name: "DS-DISTINCT", Build: func(b *plan.Builder) *plan.Node {
			si := row(b, "store_sales", "item")
			j := b.HashJoinNode(plan.LogicalInnerJoin,
				b.TableScan("store_sales", nil, nil),
				b.TableScan("item", nil, nil),
				[]int{si.idx("store_sales", "ss_item")},
				[]int{row(b, "item").idx("item", "i_itemkey")}, nil)
			dist := b.DistinctSortNode(j, []int{si.idx("item", "i_category"), si.idx("store_sales", "ss_cust")})
			return b.StreamAgg(dist,
				[]int{si.idx("item", "i_category")},
				[]expr.AggSpec{{Kind: expr.CountStar}})
		}},

		// Spooled dimension under nested loops.
		{Name: "DS-SPOOL", Build: func(b *plan.Builder) *plan.Node {
			stores := b.Spool(b.TableScan("store", nil, nil), true)
			ws := row(b, "warehouse", "store")
			nl := b.NestedLoopsNode(plan.LogicalInnerJoin,
				b.TableScan("warehouse", nil, nil), stores,
				expr.Eq(ws.c("warehouse", "w_state"), ws.c("store", "s_state")))
			return b.HashAgg(nl,
				[]int{ws.idx("warehouse", "w_warehousekey")},
				[]expr.AggSpec{{Kind: expr.CountStar}})
		}},
	}
}

// inStr builds an IN predicate over string constants.
func inStr(e expr.Expr, vs ...string) *expr.In {
	set := make([]types.Value, len(vs))
	for i, v := range vs {
		set[i] = types.Str(v)
	}
	return &expr.In{E: e, Set: set}
}
