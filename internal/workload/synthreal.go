package workload

import (
	"fmt"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// SynthConfig parameterizes the synthetic decision-support workload
// generator standing in for the paper's proprietary REAL workloads. The
// three presets below match the published shape statistics.
type SynthConfig struct {
	Name       string
	Seed       uint64
	NumTables  int
	MinRows    int64
	MaxRows    int64
	NumQueries int
	MinJoins   int
	MaxJoins   int
	// GroupByFrac is the fraction of queries topped by an aggregation.
	GroupByFrac float64
}

// REAL1 matches the paper's REAL-1: 477 distinct decision-support queries
// joining 5-8 tables with nested subplans over a ~9 GB database.
func REAL1(seed uint64) *Workload {
	return Synth(SynthConfig{
		Name: "REAL-1", Seed: seed,
		NumTables: 14, MinRows: 300, MaxRows: 6000,
		NumQueries: 477, MinJoins: 5, MaxJoins: 8,
		GroupByFrac: 0.6,
	})
}

// REAL2 matches REAL-2: 632 queries with ~12 joins typical.
func REAL2(seed uint64) *Workload {
	return Synth(SynthConfig{
		Name: "REAL-2", Seed: seed,
		NumTables: 18, MinRows: 200, MaxRows: 4000,
		NumQueries: 632, MinJoins: 10, MaxJoins: 13,
		GroupByFrac: 0.5,
	})
}

// REAL3 matches REAL-3: 40 join + group-by queries over the largest
// dataset of the three.
func REAL3(seed uint64) *Workload {
	return Synth(SynthConfig{
		Name: "REAL-3", Seed: seed,
		NumTables: 10, MinRows: 2000, MaxRows: 25000,
		NumQueries: 40, MinJoins: 3, MaxJoins: 6,
		GroupByFrac: 1.0,
	})
}

// synthTable records the generated schema relationships.
type synthTable struct {
	name     string
	rows     int64
	fkTo     []int   // indexes of referenced tables (by table index)
	fkCols   []int   // ordinal of each FK column
	attrs    []int   // ordinals of integer attribute columns
	attrDoms []int64 // domain size of each attribute
	attrSkew []bool  // whether each attribute is Zipf-distributed
	measure  int     // ordinal of the float measure column
}

// Synth builds a seeded random workload per the config. Tables form a
// DAG of foreign keys (later tables reference earlier ones — facts
// reference dimensions); queries are random join paths over that DAG with
// random filters, join strategies, and tops.
func Synth(cfg SynthConfig) *Workload {
	rng := sim.NewRNG(cfg.Seed)
	cat := catalog.NewCatalog()
	tables := make([]*synthTable, cfg.NumTables)

	var load []func(db *storage.Database)
	for i := 0; i < cfg.NumTables; i++ {
		st := &synthTable{name: fmt.Sprintf("t%02d", i)}
		// Later tables are bigger (facts) and reference earlier ones.
		frac := float64(i) / float64(cfg.NumTables-1)
		st.rows = cfg.MinRows + int64(frac*float64(cfg.MaxRows-cfg.MinRows))
		st.rows += rng.Int63n(cfg.MinRows)

		cols := []colSpec{{"id", types.KindInt, serial()}}
		// Up to 3 foreign keys to earlier tables, skewed half the time.
		nFK := 0
		if i > 0 {
			nFK = 1 + rng.Intn(min3(i, 3))
		}
		seen := map[int]bool{}
		for f := 0; f < nFK; f++ {
			ref := rng.Intn(i)
			if seen[ref] {
				continue
			}
			seen[ref] = true
			st.fkTo = append(st.fkTo, ref)
			st.fkCols = append(st.fkCols, len(cols))
			refRows := tables[ref].rows
			if rng.Float64() < 0.5 {
				cols = append(cols, colSpec{fmt.Sprintf("fk_%s", tables[ref].name), types.KindInt, zipfInt(refRows, 1.0)})
			} else {
				cols = append(cols, colSpec{fmt.Sprintf("fk_%s", tables[ref].name), types.KindInt, uniformInt(refRows)})
			}
		}
		// 2-3 filterable integer attributes with varying domains.
		nAttr := 2 + rng.Intn(2)
		for a := 0; a < nAttr; a++ {
			dom := int64(4) << uint(rng.Intn(8)) // 4..512 distinct values
			skew := rng.Float64() < 0.3
			st.attrs = append(st.attrs, len(cols))
			st.attrDoms = append(st.attrDoms, dom)
			st.attrSkew = append(st.attrSkew, skew)
			if skew {
				cols = append(cols, colSpec{fmt.Sprintf("a%d", a), types.KindInt, zipfInt(dom, 1.0)})
			} else {
				cols = append(cols, colSpec{fmt.Sprintf("a%d", a), types.KindInt, uniformInt(dom)})
			}
		}
		st.measure = len(cols)
		cols = append(cols, colSpec{"m", types.KindFloat, uniformFloat(1000)})

		t, rows := genTable(rng.Fork(), st.name, st.rows, cols)
		t.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
		for _, fc := range st.fkCols {
			t.AddIndex(&catalog.Index{Name: fmt.Sprintf("ix_c%d", fc), KeyCols: []int{fc}})
		}
		cat.Add(t)
		tables[i] = st
		name, r := st.name, rows
		load = append(load, func(db *storage.Database) { db.Load(name, r) })
	}

	db := storage.NewDatabase(cat, 1<<18)
	for _, f := range load {
		f(db)
	}
	db.BuildAllStats(histogramBuckets)

	w := &Workload{Name: cfg.Name, DB: db}
	qrng := rng.Fork()
	for q := 0; q < cfg.NumQueries; q++ {
		seed := qrng.Uint64()
		nJoins := cfg.MinJoins + qrng.Intn(cfg.MaxJoins-cfg.MinJoins+1)
		grouped := qrng.Float64() < cfg.GroupByFrac
		name := fmt.Sprintf("%s-Q%03d", cfg.Name, q)
		w.Queries = append(w.Queries, Query{
			Name: name,
			Build: func(b *plan.Builder) *plan.Node {
				return buildSynthQuery(b, tables, seed, nJoins, grouped)
			},
		})
	}
	w.Gen = func() *Workload { return Synth(cfg) }
	return w
}

// buildSynthQuery constructs one random decision-support plan: a join path
// from a fact table down its FK edges, with random access paths, join
// strategies, filters, and an optional aggregation/sort top.
func buildSynthQuery(b *plan.Builder, tables []*synthTable, seed uint64, nJoins int, grouped bool) *plan.Node {
	rng := sim.NewRNG(seed)
	// Start from a table with FKs (a fact); prefer the later half.
	start := len(tables)/2 + rng.Intn(len(tables)-len(tables)/2)
	for len(tables[start].fkTo) == 0 {
		start = rng.Intn(len(tables))
		if start == 0 {
			start = len(tables) - 1
		}
	}

	type joinedTable struct {
		st     *synthTable
		offset int // column offset in the accumulated row
	}
	cur := tables[start]
	node := synthScan(b, rng, cur)
	acc := []joinedTable{{cur, 0}}
	width := node.Width

	// frontier: FK edges available from already-joined tables.
	for j := 0; j < nJoins; j++ {
		// Pick a random joined table with an FK to follow.
		var candidates []struct {
			from joinedTable
			fk   int
		}
		for _, jt := range acc {
			for fi := range jt.st.fkTo {
				candidates = append(candidates, struct {
					from joinedTable
					fk   int
				}{jt, fi})
			}
		}
		if len(candidates) == 0 {
			break
		}
		cd := candidates[rng.Intn(len(candidates))]
		dim := tables[cd.from.st.fkTo[cd.fk]]
		fkCol := cd.from.offset + cd.from.st.fkCols[cd.fk]

		switch rng.Intn(3) {
		case 0:
			// Index nested loops: correlated seek into the dimension PK.
			inner := b.SeekEq(dim.name, "pk", []expr.Expr{expr.C(fkCol, "fk")}, nil)
			node = b.NestedLoopsNode(plan.LogicalInnerJoin, node, inner, nil)
		case 1:
			// Hash join, sometimes with a bitmap pushed into... the probe
			// is the accumulated side here, so no bitmap (it would need
			// to reach a base scan); plain hash join with optional
			// dimension filter.
			build := synthScan(b, rng, dim)
			node = b.HashJoinNode(plan.LogicalInnerJoin, node, build,
				[]int{fkCol}, []int{0}, nil)
		default:
			// Semi/anti join against the dimension ~20% of the time,
			// plain hash join otherwise.
			r := rng.Float64()
			switch {
			case r < 0.1:
				node = b.HashJoinNode(plan.LogicalLeftSemiJoin, node,
					synthScan(b, rng, dim), []int{fkCol}, []int{0}, nil)
				continue // width unchanged; dimension not in the row
			case r < 0.2:
				node = b.HashJoinNode(plan.LogicalLeftAntiSemiJoin, node,
					synthScan(b, rng, dim), []int{fkCol}, []int{0}, nil)
				continue
			default:
				node = b.HashJoinNode(plan.LogicalInnerJoin, node,
					synthScan(b, rng, dim), []int{fkCol}, []int{0}, nil)
			}
		}
		acc = append(acc, joinedTable{dim, width})
		width = node.Width
	}

	// Occasional exchange.
	if rng.Float64() < 0.3 {
		node = b.ExchangeNode(node, plan.GatherStreams)
	}

	if grouped {
		// Group by a random attribute of a random joined table.
		jt := acc[rng.Intn(len(acc))]
		gcol := jt.offset + jt.st.attrs[rng.Intn(len(jt.st.attrs))]
		mcol := acc[0].offset + acc[0].st.measure
		node = b.HashAgg(node, []int{gcol}, []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.C(mcol, "m")},
			{Kind: expr.CountStar},
		})
		if rng.Float64() < 0.5 {
			node = b.Sort(node, []int{1}, []bool{true})
		}
		return node
	}
	if rng.Float64() < 0.5 {
		mcol := acc[0].offset + acc[0].st.measure
		return b.TopNSortNode(node, 100, []int{mcol}, []bool{true})
	}
	mcol := acc[0].offset + acc[0].st.measure
	return b.Sort(node, []int{mcol}, nil)
}

// synthScan builds a random access path over a table with a random filter
// (sometimes pushed to the storage engine, occasionally opaque).
func synthScan(b *plan.Builder, rng *sim.RNG, st *synthTable) *plan.Node {
	var pred expr.Expr
	r := rng.Float64()
	switch {
	case r < 0.3:
		// Range filter keeping roughly a quarter to three quarters of the
		// rows (skewed columns concentrate mass at low values, so the
		// true selectivity often diverges from the histogram estimate).
		ai := rng.Intn(len(st.attrs))
		dom := st.attrDoms[ai]
		cut := dom/4 + rng.Int63n(dom/2+1)
		pred = expr.Lt(expr.C(st.attrs[ai], "a"), expr.KInt(cut))
	case r < 0.42:
		// Equality on a head value of a skewed attribute when available
		// (frequent, hard to estimate under independence), otherwise a
		// small-domain uniform attribute.
		ai := -1
		for i, skew := range st.attrSkew {
			if skew {
				ai = i
				break
			}
		}
		if ai < 0 {
			best := st.attrDoms[0]
			ai = 0
			for i, d := range st.attrDoms {
				if d < best {
					best, ai = d, i
				}
			}
		}
		pred = expr.Eq(expr.C(st.attrs[ai], "a"), expr.KInt(rng.Int63n(min64(4, st.attrDoms[ai]))))
	case r < 0.5:
		// Opaque out-of-model predicate (§4.3 stress), moderate rate.
		mod := 2 + rng.Int63n(4)
		pred = expr.Eq(expr.ModBy(expr.C(0, "id"), expr.KInt(mod)), expr.KInt(0))
	}
	if pred != nil && rng.Float64() < 0.5 {
		return b.TableScan(st.name, nil, pred) // pushed to storage engine
	}
	return b.TableScan(st.name, pred, nil)
}

func min3(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
