package workload

import (
	"lqs/internal/engine/catalog"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/sim"
)

// TPCHDesign selects the physical design for the TPC-H workload, the two
// regimes of the paper's §5.4 experiment.
type TPCHDesign int

const (
	// TPCHRowstore is the DTA-like design: clustered primary keys plus
	// nonclustered B-tree indexes on join/filter columns. Plans use the
	// full row-mode operator mix (seeks, nested loops, merge joins, ...).
	TPCHRowstore TPCHDesign = iota
	// TPCHColumnstore builds one nonclustered columnstore index per table;
	// plans become batch-mode columnstore scans + hash joins/aggregates.
	TPCHColumnstore
)

// Scaled-down table cardinalities (the paper uses 100 GB; the simulator's
// virtual clock makes scale irrelevant to estimator behaviour, while skew
// — which drives estimation error — is preserved via Zipf(1) columns).
const (
	tpchSuppliers = 150
	tpchCustomers = 1000
	tpchParts     = 1200
	tpchPartsupps = 4800
	tpchOrders    = 7500
	tpchLineitems = 30000
	tpchDateLo    = 0
	tpchDateHi    = 2400
)

// TPCH builds the skewed TPC-H-like workload under the given physical
// design. The same seed generates identical data for both designs.
func TPCH(seed uint64, design TPCHDesign) *Workload {
	rng := sim.NewRNG(seed)
	cat := catalog.NewCatalog()

	specs := []struct {
		name string
		n    int64
		cols []colSpec
	}{
		{"region", 5, []colSpec{
			{"r_regionkey", types.KindInt, serial()},
			{"r_name", types.KindString, pick("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")},
		}},
		{"nation", 25, []colSpec{
			{"n_nationkey", types.KindInt, serial()},
			{"n_regionkey", types.KindInt, uniformInt(5)},
			{"n_name", types.KindString, pick("FRANCE", "GERMANY", "BRAZIL", "JAPAN", "KENYA", "PERU", "CHINA", "INDIA")},
		}},
		{"supplier", tpchSuppliers, []colSpec{
			{"s_suppkey", types.KindInt, serial()},
			{"s_nationkey", types.KindInt, uniformInt(25)},
			{"s_acctbal", types.KindFloat, uniformFloat(10000)},
		}},
		{"customer", tpchCustomers, []colSpec{
			{"c_custkey", types.KindInt, serial()},
			{"c_nationkey", types.KindInt, uniformInt(25)},
			{"c_mktsegment", types.KindString, pick("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")},
			{"c_acctbal", types.KindFloat, uniformFloat(10000)},
		}},
		{"part", tpchParts, []colSpec{
			{"p_partkey", types.KindInt, serial()},
			{"p_brand", types.KindString, pick("Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55")},
			{"p_type", types.KindString, pick("PROMO BRUSHED", "PROMO PLATED", "ECONOMY ANODIZED", "STANDARD POLISHED", "MEDIUM BURNISHED")},
			{"p_size", types.KindInt, uniformInt(50)},
			{"p_container", types.KindString, pick("SM CASE", "MED BOX", "LG JAR", "JUMBO PACK")},
			{"p_retailprice", types.KindFloat, uniformFloat(2000)},
		}},
		{"partsupp", tpchPartsupps, []colSpec{
			{"ps_partkey", types.KindInt, zipfInt(tpchParts, 1.0)},
			{"ps_suppkey", types.KindInt, uniformInt(tpchSuppliers)},
			{"ps_availqty", types.KindInt, uniformInt(10000)},
			{"ps_supplycost", types.KindFloat, uniformFloat(1000)},
		}},
		{"orders", tpchOrders, []colSpec{
			{"o_orderkey", types.KindInt, serial()},
			{"o_custkey", types.KindInt, zipfInt(tpchCustomers, 1.0)},
			{"o_orderdate", types.KindInt, dateInt(tpchDateLo, tpchDateHi)},
			{"o_totalprice", types.KindFloat, uniformFloat(400000)},
			{"o_orderpriority", types.KindString, pick("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")},
		}},
		{"lineitem", tpchLineitems, []colSpec{
			{"l_orderkey", types.KindInt, zipfInt(tpchOrders, 1.0)},
			{"l_partkey", types.KindInt, zipfInt(tpchParts, 1.0)},
			{"l_suppkey", types.KindInt, uniformInt(tpchSuppliers)},
			{"l_quantity", types.KindInt, uniformInt(50)},
			{"l_extendedprice", types.KindFloat, uniformFloat(100000)},
			{"l_discount", types.KindFloat, uniformFloat(0.1)},
			{"l_shipdate", types.KindInt, dateInt(tpchDateLo, tpchDateHi)},
			{"l_returnflag", types.KindString, pick("A", "N", "R")},
			{"l_linestatus", types.KindString, pick("O", "F")},
		}},
	}

	var load []func(db *storage.Database)
	for _, s := range specs {
		t, rows := genTable(rng.Fork(), s.name, s.n, s.cols)
		addTPCHIndexes(t, design)
		cat.Add(t)
		name, r := s.name, rows
		load = append(load, func(db *storage.Database) { db.Load(name, r) })
	}

	db := storage.NewDatabase(cat, 1<<18)
	for _, f := range load {
		f(db)
	}
	db.BuildAllStats(histogramBuckets)

	w := &Workload{Name: "TPC-H", DB: db}
	if design == TPCHColumnstore {
		w.Name = "TPC-H ColumnStore"
		w.Queries = tpchColumnstoreQueries()
	} else {
		w.Queries = tpchRowstoreQueries()
	}
	w.Gen = func() *Workload { return TPCH(seed, design) }
	return w
}

// addTPCHIndexes declares the physical design.
func addTPCHIndexes(t *catalog.Table, design TPCHDesign) {
	if design == TPCHColumnstore {
		t.AddIndex(&catalog.Index{Name: "cs", Kind: catalog.ColumnStore})
		return
	}
	t.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	switch t.Name {
	case "lineitem":
		t.AddIndex(&catalog.Index{Name: "ix_orderkey", KeyCols: []int{t.MustCol("l_orderkey")}})
		t.AddIndex(&catalog.Index{Name: "ix_partkey", KeyCols: []int{t.MustCol("l_partkey")}})
		t.AddIndex(&catalog.Index{Name: "ix_shipdate", KeyCols: []int{t.MustCol("l_shipdate")}})
	case "orders":
		t.AddIndex(&catalog.Index{Name: "ix_custkey", KeyCols: []int{t.MustCol("o_custkey")}})
		t.AddIndex(&catalog.Index{Name: "ix_orderdate", KeyCols: []int{t.MustCol("o_orderdate")}})
	case "partsupp":
		t.AddIndex(&catalog.Index{Name: "ix_partkey", KeyCols: []int{t.MustCol("ps_partkey")}})
	case "customer":
		t.AddIndex(&catalog.Index{Name: "ix_nationkey", KeyCols: []int{t.MustCol("c_nationkey")}})
	}
}
