package workload

import (
	"fmt"

	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// rowOf tracks column offsets through join concatenation: a row consisting
// of the listed tables' columns in order. Semi/anti joins preserve only
// one side, so builders construct a fresh rowOf after them.
type rowOf struct {
	b      *plan.Builder
	tables []string
}

func row(b *plan.Builder, tables ...string) rowOf { return rowOf{b: b, tables: tables} }

// c returns the column reference for table.column within the joined row.
func (r rowOf) c(table, column string) *expr.Col {
	off := 0
	for _, t := range r.tables {
		if t == table {
			return expr.C(off+r.b.Cat.MustTable(t).MustCol(column), table+"."+column)
		}
		off += len(r.b.Cat.MustTable(t).Columns)
	}
	panic(fmt.Sprintf("workload: table %s not in joined row %v", table, r.tables))
}

// idx returns the ordinal of table.column within the joined row.
func (r rowOf) idx(table, column string) int { return r.c(table, column).Idx }

// width returns the joined row's total column count.
func (r rowOf) width() int {
	w := 0
	for _, t := range r.tables {
		w += len(r.b.Cat.MustTable(t).Columns)
	}
	return w
}

// scan builds the design-appropriate full-table access path.
func tpchScan(b *plan.Builder, columnstore bool, table string, pushed expr.Expr) *plan.Node {
	if columnstore {
		return b.ColumnstoreScan(table, "cs", nil, pushed)
	}
	return b.TableScan(table, nil, pushed)
}

// join builds a hash join (probe, build) with batch mode set under the
// columnstore design.
func tpchJoin(b *plan.Builder, columnstore bool, kind plan.LogicalOp, probe, build *plan.Node, pc, bc []int, resid expr.Expr) *plan.Node {
	j := b.HashJoinNode(kind, probe, build, pc, bc, resid)
	j.BatchMode = columnstore
	return j
}

func tpchAgg(b *plan.Builder, columnstore bool, child *plan.Node, groups []int, aggs []expr.AggSpec) *plan.Node {
	a := b.HashAgg(child, groups, aggs)
	a.BatchMode = columnstore
	return a
}

// tpchQueries builds the suite for either design; most queries share their
// logical shape across designs, with access paths and join strategies
// swapped (row mode: seeks, nested loops, merge joins, spools; batch mode:
// columnstore scans + hash operators), mirroring how the optimizer's plans
// shift between the two physical designs (paper Fig. 19).
func tpchQueries(cs bool) []Query {
	qs := []Query{
		{Name: "Q1", Build: func(b *plan.Builder) *plan.Node {
			li := row(b, "lineitem")
			scan := tpchScan(b, cs, "lineitem", expr.Le(li.c("lineitem", "l_shipdate"), expr.KInt(2300)))
			comp := b.ComputeScalar(scan,
				expr.Times(li.c("lineitem", "l_extendedprice"),
					expr.Minus(expr.KInt(1), li.c("lineitem", "l_discount"))))
			ex := b.ExchangeNode(comp, plan.RepartitionStreams)
			agg := tpchAgg(b, cs, ex,
				[]int{li.idx("lineitem", "l_returnflag"), li.idx("lineitem", "l_linestatus")},
				[]expr.AggSpec{
					{Kind: expr.Sum, Arg: li.c("lineitem", "l_quantity")},
					{Kind: expr.Sum, Arg: li.c("lineitem", "l_extendedprice")},
					{Kind: expr.Sum, Arg: expr.C(li.width(), "revenue")},
					{Kind: expr.Avg, Arg: li.c("lineitem", "l_discount")},
					{Kind: expr.CountStar},
				})
			return b.Sort(agg, []int{0, 1}, nil)
		}},

		{Name: "Q3", Build: func(b *plan.Builder) *plan.Node {
			cust := tpchScan(b, cs, "customer",
				expr.Eq(row(b, "customer").c("customer", "c_mktsegment"), expr.K(types.Str("BUILDING"))))
			ord := tpchScan(b, cs, "orders",
				expr.Lt(row(b, "orders").c("orders", "o_orderdate"), expr.KInt(1200)))
			oc := row(b, "orders", "customer")
			j1 := tpchJoin(b, cs, plan.LogicalInnerJoin, ord, cust,
				[]int{row(b, "orders").idx("orders", "o_custkey")},
				[]int{row(b, "customer").idx("customer", "c_custkey")}, nil)
			li := tpchScan(b, cs, "lineitem",
				expr.Gt(row(b, "lineitem").c("lineitem", "l_shipdate"), expr.KInt(1200)))
			loc := row(b, "lineitem", "orders", "customer")
			j2 := tpchJoin(b, cs, plan.LogicalInnerJoin, li, j1,
				[]int{loc.idx("lineitem", "l_orderkey")},
				[]int{oc.idx("orders", "o_orderkey")}, nil)
			comp := b.ComputeScalar(j2,
				expr.Times(loc.c("lineitem", "l_extendedprice"),
					expr.Minus(expr.KInt(1), loc.c("lineitem", "l_discount"))))
			agg := tpchAgg(b, cs, comp,
				[]int{loc.idx("lineitem", "l_orderkey"), loc.idx("orders", "o_orderdate")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(loc.width(), "revenue")}})
			return b.TopNSortNode(agg, 10, []int{2}, []bool{true})
		}},

		{Name: "Q4", Build: func(b *plan.Builder) *plan.Node {
			o := row(b, "orders")
			ord := tpchScan(b, cs, "orders", expr.And(
				expr.Ge(o.c("orders", "o_orderdate"), expr.KInt(800)),
				expr.Lt(o.c("orders", "o_orderdate"), expr.KInt(1000))))
			li := tpchScan(b, cs, "lineitem",
				expr.Gt(row(b, "lineitem").c("lineitem", "l_discount"), expr.K(types.Float(0.05))))
			semi := tpchJoin(b, cs, plan.LogicalLeftSemiJoin, ord, li,
				[]int{o.idx("orders", "o_orderkey")},
				[]int{row(b, "lineitem").idx("lineitem", "l_orderkey")}, nil)
			agg := tpchAgg(b, cs, semi,
				[]int{o.idx("orders", "o_orderpriority")},
				[]expr.AggSpec{{Kind: expr.CountStar}})
			return b.Sort(agg, []int{0}, nil)
		}},

		{Name: "Q5", Build: func(b *plan.Builder) *plan.Node {
			reg := tpchScan(b, cs, "region",
				expr.Eq(row(b, "region").c("region", "r_name"), expr.K(types.Str("ASIA"))))
			nat := tpchJoin(b, cs, plan.LogicalInnerJoin,
				tpchScan(b, cs, "nation", nil), reg,
				[]int{row(b, "nation").idx("nation", "n_regionkey")},
				[]int{row(b, "region").idx("region", "r_regionkey")}, nil)
			nr := row(b, "nation", "region")
			cust := tpchJoin(b, cs, plan.LogicalInnerJoin,
				tpchScan(b, cs, "customer", nil), nat,
				[]int{row(b, "customer").idx("customer", "c_nationkey")},
				[]int{nr.idx("nation", "n_nationkey")}, nil)
			cnr := row(b, "customer", "nation", "region")
			ord := tpchJoin(b, cs, plan.LogicalInnerJoin,
				tpchScan(b, cs, "orders",
					expr.Lt(row(b, "orders").c("orders", "o_orderdate"), expr.KInt(1200))), cust,
				[]int{row(b, "orders").idx("orders", "o_custkey")},
				[]int{cnr.idx("customer", "c_custkey")}, nil)
			ocnr := row(b, "orders", "customer", "nation", "region")
			// Bitmap semi-join reduction: build-side order keys filter the
			// lineitem scan inside the storage engine (§4.3).
			bm := b.BitmapNode(ord, []int{ocnr.idx("orders", "o_orderkey")})
			liScan := tpchScan(b, cs, "lineitem", nil)
			b.AttachBitmap(liScan, bm, []int{row(b, "lineitem").idx("lineitem", "l_orderkey")})
			locnr := row(b, "lineitem", "orders", "customer", "nation", "region")
			j := tpchJoin(b, cs, plan.LogicalInnerJoin, liScan, bm,
				[]int{locnr.idx("lineitem", "l_orderkey")},
				[]int{ocnr.idx("orders", "o_orderkey")}, nil)
			comp := b.ComputeScalar(j,
				expr.Times(locnr.c("lineitem", "l_extendedprice"),
					expr.Minus(expr.KInt(1), locnr.c("lineitem", "l_discount"))))
			ex := b.ExchangeNode(comp, plan.GatherStreams)
			agg := tpchAgg(b, cs, ex,
				[]int{locnr.idx("nation", "n_name")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(locnr.width(), "revenue")}})
			return b.Sort(agg, []int{1}, []bool{true})
		}},

		{Name: "Q6", Build: func(b *plan.Builder) *plan.Node {
			li := row(b, "lineitem")
			scan := tpchScan(b, cs, "lineitem", expr.And(
				expr.Ge(li.c("lineitem", "l_shipdate"), expr.KInt(365)),
				expr.Lt(li.c("lineitem", "l_shipdate"), expr.KInt(730)),
				expr.Ge(li.c("lineitem", "l_discount"), expr.K(types.Float(0.02))),
				expr.Le(li.c("lineitem", "l_discount"), expr.K(types.Float(0.06))),
				expr.Lt(li.c("lineitem", "l_quantity"), expr.KInt(24))))
			comp := b.ComputeScalar(scan,
				expr.Times(li.c("lineitem", "l_extendedprice"), li.c("lineitem", "l_discount")))
			return tpchAgg(b, cs, comp, nil,
				[]expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(li.width(), "revenue")}})
		}},

		{Name: "Q7", Build: func(b *plan.Builder) *plan.Node {
			if cs {
				// Batch designs have no ordered access paths: hash join.
				j := tpchJoin(b, cs, plan.LogicalInnerJoin,
					tpchScan(b, cs, "lineitem", nil),
					tpchScan(b, cs, "orders", nil),
					[]int{row(b, "lineitem").idx("lineitem", "l_orderkey")},
					[]int{row(b, "orders").idx("orders", "o_orderkey")}, nil)
				lo := row(b, "lineitem", "orders")
				fl := b.Filter(j, expr.Lt(lo.c("lineitem", "l_shipdate"), lo.c("orders", "o_orderdate")))
				comp := b.ComputeScalar(fl, expr.DivBy(lo.c("orders", "o_orderdate"), expr.KInt(365)))
				agg := tpchAgg(b, cs, comp, []int{lo.width()},
					[]expr.AggSpec{{Kind: expr.Sum, Arg: lo.c("lineitem", "l_extendedprice")}, {Kind: expr.CountStar}})
				return b.Sort(agg, []int{0}, nil)
			}
			// Row design: both inputs come pre-sorted on the join key from
			// B-tree leaf order → merge join under an exchange.
			l := b.IndexScan("lineitem", "ix_orderkey", nil, nil)
			o := b.ClusteredIndexScan("orders", "pk", nil, nil)
			lo := row(b, "lineitem", "orders")
			mj := b.MergeJoinNode(plan.LogicalInnerJoin, l, o,
				[]int{row(b, "lineitem").idx("lineitem", "l_orderkey")},
				[]int{row(b, "orders").idx("orders", "o_orderkey")}, nil)
			ex := b.ExchangeNode(mj, plan.GatherStreams)
			fl := b.Filter(ex, expr.Lt(lo.c("lineitem", "l_shipdate"), lo.c("orders", "o_orderdate")))
			comp := b.ComputeScalar(fl, expr.DivBy(lo.c("orders", "o_orderdate"), expr.KInt(365)))
			agg := b.HashAgg(comp, []int{lo.width()},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: lo.c("lineitem", "l_extendedprice")}, {Kind: expr.CountStar}})
			return b.Sort(agg, []int{0}, nil)
		}},

		{Name: "Q9", Build: func(b *plan.Builder) *plan.Node {
			part := tpchScan(b, cs, "part",
				&expr.Like{E: row(b, "part").c("part", "p_type"), Pattern: "PROMO%"})
			ps := tpchJoin(b, cs, plan.LogicalInnerJoin,
				tpchScan(b, cs, "partsupp", nil), part,
				[]int{row(b, "partsupp").idx("partsupp", "ps_partkey")},
				[]int{row(b, "part").idx("part", "p_partkey")}, nil)
			psp := row(b, "partsupp", "part")
			bm := b.BitmapNode(ps, []int{psp.idx("partsupp", "ps_partkey")})
			liScan := tpchScan(b, cs, "lineitem", nil)
			b.AttachBitmap(liScan, bm, []int{row(b, "lineitem").idx("lineitem", "l_partkey")})
			lpsp := row(b, "lineitem", "partsupp", "part")
			j := tpchJoin(b, cs, plan.LogicalInnerJoin, liScan, bm,
				[]int{lpsp.idx("lineitem", "l_partkey")},
				[]int{psp.idx("partsupp", "ps_partkey")},
				expr.Eq(lpsp.c("lineitem", "l_suppkey"), lpsp.c("partsupp", "ps_suppkey")))
			comp := b.ComputeScalar(j, expr.Minus(
				expr.Times(lpsp.c("lineitem", "l_extendedprice"),
					expr.Minus(expr.KInt(1), lpsp.c("lineitem", "l_discount"))),
				expr.Times(lpsp.c("partsupp", "ps_supplycost"), lpsp.c("lineitem", "l_quantity"))))
			agg := tpchAgg(b, cs, comp,
				[]int{lpsp.idx("part", "p_brand")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(lpsp.width(), "profit")}})
			return b.Sort(agg, []int{1}, []bool{true})
		}},

		{Name: "Q10", Build: func(b *plan.Builder) *plan.Node {
			ord := tpchScan(b, cs, "orders", expr.And(
				expr.Ge(row(b, "orders").c("orders", "o_orderdate"), expr.KInt(1000)),
				expr.Lt(row(b, "orders").c("orders", "o_orderdate"), expr.KInt(1090))))
			custJ := tpchJoin(b, cs, plan.LogicalInnerJoin,
				tpchScan(b, cs, "customer", nil), ord,
				[]int{row(b, "customer").idx("customer", "c_custkey")},
				[]int{row(b, "orders").idx("orders", "o_custkey")}, nil)
			co := row(b, "customer", "orders")
			li := tpchScan(b, cs, "lineitem",
				expr.Eq(row(b, "lineitem").c("lineitem", "l_returnflag"), expr.K(types.Str("R"))))
			lco := row(b, "lineitem", "customer", "orders")
			j := tpchJoin(b, cs, plan.LogicalInnerJoin, li, custJ,
				[]int{lco.idx("lineitem", "l_orderkey")},
				[]int{co.idx("orders", "o_orderkey")}, nil)
			comp := b.ComputeScalar(j,
				expr.Times(lco.c("lineitem", "l_extendedprice"),
					expr.Minus(expr.KInt(1), lco.c("lineitem", "l_discount"))))
			agg := tpchAgg(b, cs, comp,
				[]int{lco.idx("customer", "c_custkey"), lco.idx("customer", "c_nationkey")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(lco.width(), "revenue")}})
			return b.TopNSortNode(agg, 20, []int{2}, []bool{true})
		}},

		{Name: "Q12", Build: func(b *plan.Builder) *plan.Node {
			if cs {
				j := tpchJoin(b, cs, plan.LogicalInnerJoin,
					tpchScan(b, cs, "lineitem",
						expr.Ge(row(b, "lineitem").c("lineitem", "l_shipdate"), expr.KInt(1800))),
					tpchScan(b, cs, "orders", nil),
					[]int{row(b, "lineitem").idx("lineitem", "l_orderkey")},
					[]int{row(b, "orders").idx("orders", "o_orderkey")}, nil)
				lo := row(b, "lineitem", "orders")
				agg := tpchAgg(b, cs, j, []int{lo.idx("orders", "o_orderpriority")},
					[]expr.AggSpec{{Kind: expr.CountStar}})
				return b.Sort(agg, []int{0}, nil)
			}
			l := b.IndexScan("lineitem", "ix_orderkey", nil,
				expr.Ge(row(b, "lineitem").c("lineitem", "l_shipdate"), expr.KInt(1800)))
			o := b.ClusteredIndexScan("orders", "pk", nil, nil)
			lo := row(b, "lineitem", "orders")
			mj := b.MergeJoinNode(plan.LogicalInnerJoin, l, o,
				[]int{row(b, "lineitem").idx("lineitem", "l_orderkey")},
				[]int{row(b, "orders").idx("orders", "o_orderkey")}, nil)
			agg := b.HashAgg(mj, []int{lo.idx("orders", "o_orderpriority")},
				[]expr.AggSpec{{Kind: expr.CountStar}})
			return b.Sort(agg, []int{0}, nil)
		}},

		{Name: "Q13", Build: func(b *plan.Builder) *plan.Node {
			cust := tpchScan(b, cs, "customer", nil)
			ord := tpchScan(b, cs, "orders",
				&expr.Not{E: expr.Eq(row(b, "orders").c("orders", "o_orderpriority"), expr.K(types.Str("1-URGENT")))})
			oj := tpchJoin(b, cs, plan.LogicalLeftOuterJoin, cust, ord,
				[]int{row(b, "customer").idx("customer", "c_custkey")},
				[]int{row(b, "orders").idx("orders", "o_custkey")}, nil)
			co := row(b, "customer", "orders")
			perCust := tpchAgg(b, cs, oj,
				[]int{co.idx("customer", "c_custkey")},
				[]expr.AggSpec{{Kind: expr.Count, Arg: co.c("orders", "o_orderkey")}})
			dist := tpchAgg(b, cs, perCust, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
			return b.Sort(dist, []int{1, 0}, []bool{true, true})
		}},

		{Name: "Q14", Build: func(b *plan.Builder) *plan.Node {
			li := tpchScan(b, cs, "lineitem", expr.And(
				expr.Ge(row(b, "lineitem").c("lineitem", "l_shipdate"), expr.KInt(1400)),
				expr.Lt(row(b, "lineitem").c("lineitem", "l_shipdate"), expr.KInt(1430))))
			lp := row(b, "lineitem", "part")
			j := tpchJoin(b, cs, plan.LogicalInnerJoin, li,
				tpchScan(b, cs, "part", nil),
				[]int{lp.idx("lineitem", "l_partkey")},
				[]int{row(b, "part").idx("part", "p_partkey")}, nil)
			comp := b.ComputeScalar(j,
				expr.Times(lp.c("lineitem", "l_extendedprice"),
					expr.Minus(expr.KInt(1), lp.c("lineitem", "l_discount"))))
			return tpchAgg(b, cs, comp, nil, []expr.AggSpec{
				{Kind: expr.Sum, Arg: expr.C(lp.width(), "revenue")},
				{Kind: expr.CountStar},
			})
		}},

		{Name: "Q16", Build: func(b *plan.Builder) *plan.Node {
			ps := tpchScan(b, cs, "partsupp", nil)
			pj := tpchJoin(b, cs, plan.LogicalInnerJoin, ps,
				tpchScan(b, cs, "part",
					expr.Gt(row(b, "part").c("part", "p_size"), expr.KInt(20))),
				[]int{row(b, "partsupp").idx("partsupp", "ps_partkey")},
				[]int{row(b, "part").idx("part", "p_partkey")}, nil)
			pp := row(b, "partsupp", "part")
			anti := tpchJoin(b, cs, plan.LogicalLeftAntiSemiJoin, pj,
				tpchScan(b, cs, "supplier",
					expr.Lt(row(b, "supplier").c("supplier", "s_acctbal"), expr.KInt(500))),
				[]int{pp.idx("partsupp", "ps_suppkey")},
				[]int{row(b, "supplier").idx("supplier", "s_suppkey")}, nil)
			dist := b.DistinctSortNode(anti, []int{pp.idx("part", "p_brand"), pp.idx("part", "p_size"), pp.idx("partsupp", "ps_suppkey")})
			agg := b.StreamAgg(dist,
				[]int{pp.idx("part", "p_brand"), pp.idx("part", "p_size")},
				[]expr.AggSpec{{Kind: expr.CountStar}})
			return b.Sort(agg, []int{2}, []bool{true})
		}},

		{Name: "Q17", Build: func(b *plan.Builder) *plan.Node {
			part := tpchScan(b, cs, "part", expr.And(
				expr.Eq(row(b, "part").c("part", "p_brand"), expr.K(types.Str("Brand#33"))),
				expr.Eq(row(b, "part").c("part", "p_container"), expr.K(types.Str("MED BOX")))))
			if cs {
				j := tpchJoin(b, cs, plan.LogicalInnerJoin,
					tpchScan(b, cs, "lineitem",
						expr.Lt(row(b, "lineitem").c("lineitem", "l_quantity"), expr.KInt(10))),
					part,
					[]int{row(b, "lineitem").idx("lineitem", "l_partkey")},
					[]int{row(b, "part").idx("part", "p_partkey")}, nil)
				lp := row(b, "lineitem", "part")
				return tpchAgg(b, cs, j, nil,
					[]expr.AggSpec{{Kind: expr.Sum, Arg: lp.c("lineitem", "l_extendedprice")}})
			}
			// Row design: the correlated index nested loops of the real plan.
			inner := b.SeekEq("lineitem", "ix_partkey",
				[]expr.Expr{row(b, "part").c("part", "p_partkey")},
				expr.Lt(row(b, "lineitem").c("lineitem", "l_quantity"), expr.KInt(10)))
			nl := b.NestedLoopsNode(plan.LogicalInnerJoin, part, inner, nil)
			pl := row(b, "part", "lineitem")
			return b.HashAgg(nl, nil,
				[]expr.AggSpec{{Kind: expr.Sum, Arg: pl.c("lineitem", "l_extendedprice")}})
		}},

		{Name: "Q18", Build: func(b *plan.Builder) *plan.Node {
			li := tpchScan(b, cs, "lineitem", nil)
			perOrder := tpchAgg(b, cs, li,
				[]int{row(b, "lineitem").idx("lineitem", "l_orderkey")},
				[]expr.AggSpec{{Kind: expr.Sum, Arg: row(b, "lineitem").c("lineitem", "l_quantity")}})
			big := b.Filter(perOrder, expr.Gt(expr.C(1, "sum_qty"), expr.KInt(180)))
			if cs {
				j := tpchJoin(b, cs, plan.LogicalInnerJoin, big,
					tpchScan(b, cs, "orders", nil),
					[]int{0}, []int{row(b, "orders").idx("orders", "o_orderkey")}, nil)
				oOff := 2
				return b.TopNSortNode(j, 100, []int{oOff + b.Cat.MustTable("orders").MustCol("o_totalprice")}, []bool{true})
			}
			inner := b.SeekEq("orders", "pk", []expr.Expr{expr.C(0, "l_orderkey")}, nil)
			nl := b.NestedLoopsNode(plan.LogicalInnerJoin, big, inner, nil)
			oOff := 2
			return b.TopNSortNode(nl, 100, []int{oOff + b.Cat.MustTable("orders").MustCol("o_totalprice")}, []bool{true})
		}},

		{Name: "Q19", Build: func(b *plan.Builder) *plan.Node {
			li := tpchScan(b, cs, "lineitem", nil)
			lp := row(b, "lineitem", "part")
			resid := expr.Or(
				expr.And(
					expr.Eq(lp.c("part", "p_brand"), expr.K(types.Str("Brand#11"))),
					expr.Le(lp.c("lineitem", "l_quantity"), expr.KInt(11))),
				expr.And(
					expr.Eq(lp.c("part", "p_brand"), expr.K(types.Str("Brand#22"))),
					expr.Le(lp.c("lineitem", "l_quantity"), expr.KInt(25))),
				expr.And(
					expr.Eq(lp.c("part", "p_container"), expr.K(types.Str("LG JAR"))),
					expr.Ge(lp.c("lineitem", "l_quantity"), expr.KInt(40))))
			j := tpchJoin(b, cs, plan.LogicalInnerJoin, li,
				tpchScan(b, cs, "part", nil),
				[]int{lp.idx("lineitem", "l_partkey")},
				[]int{row(b, "part").idx("part", "p_partkey")}, resid)
			return tpchAgg(b, cs, j, nil,
				[]expr.AggSpec{{Kind: expr.Sum, Arg: lp.c("lineitem", "l_extendedprice")}})
		}},

		{Name: "Q21", Build: func(b *plan.Builder) *plan.Node {
			li := tpchScan(b, cs, "lineitem",
				expr.Eq(row(b, "lineitem").c("lineitem", "l_returnflag"), expr.K(types.Str("A"))))
			ls := row(b, "lineitem", "supplier")
			j := tpchJoin(b, cs, plan.LogicalInnerJoin, li,
				tpchScan(b, cs, "supplier", nil),
				[]int{ls.idx("lineitem", "l_suppkey")},
				[]int{row(b, "supplier").idx("supplier", "s_suppkey")}, nil)
			anti := tpchJoin(b, cs, plan.LogicalLeftAntiSemiJoin, j,
				tpchScan(b, cs, "orders",
					expr.Eq(row(b, "orders").c("orders", "o_orderpriority"), expr.K(types.Str("1-URGENT")))),
				[]int{ls.idx("lineitem", "l_orderkey")},
				[]int{row(b, "orders").idx("orders", "o_orderkey")}, nil)
			agg := tpchAgg(b, cs, anti,
				[]int{ls.idx("supplier", "s_suppkey")},
				[]expr.AggSpec{{Kind: expr.CountStar}})
			return b.TopNSortNode(agg, 25, []int{1}, []bool{true})
		}},

		{Name: "Q22", Build: func(b *plan.Builder) *plan.Node {
			cust := tpchScan(b, cs, "customer",
				expr.Gt(row(b, "customer").c("customer", "c_acctbal"), expr.KInt(5000)))
			anti := tpchJoin(b, cs, plan.LogicalLeftAntiSemiJoin, cust,
				tpchScan(b, cs, "orders", nil),
				[]int{row(b, "customer").idx("customer", "c_custkey")},
				[]int{row(b, "orders").idx("orders", "o_custkey")}, nil)
			agg := tpchAgg(b, cs, anti,
				[]int{row(b, "customer").idx("customer", "c_nationkey")},
				[]expr.AggSpec{
					{Kind: expr.CountStar},
					{Kind: expr.Sum, Arg: row(b, "customer").c("customer", "c_acctbal")},
				})
			return b.Sort(agg, []int{0}, nil)
		}},
	}

	if !cs {
		// Row-design-only plans exercising spools and keys-only lookups.
		qs = append(qs,
			Query{Name: "QSPOOL", Build: func(b *plan.Builder) *plan.Node {
				sup := b.TableScan("supplier",
					expr.Gt(row(b, "supplier").c("supplier", "s_acctbal"), expr.KInt(9000)), nil)
				sp := b.Spool(sup, true)
				nl := b.NestedLoopsNode(plan.LogicalInnerJoin,
					b.TableScan("nation", nil, nil), sp,
					expr.Eq(row(b, "nation", "supplier").c("nation", "n_nationkey"),
						row(b, "nation", "supplier").c("supplier", "s_nationkey")))
				agg := b.HashAgg(nl,
					[]int{row(b, "nation", "supplier").idx("nation", "n_name")},
					[]expr.AggSpec{{Kind: expr.CountStar}})
				return b.Sort(agg, []int{0}, nil)
			}},
			Query{Name: "QLOOKUP", Build: func(b *plan.Builder) *plan.Node {
				seek := b.SeekKeysOnly("lineitem", "ix_shipdate",
					[]expr.Expr{expr.KInt(2350)}, nil, true, false)
				look := b.RIDLookup(seek, "lineitem")
				agg := b.HashAgg(look,
					[]int{row(b, "lineitem").idx("lineitem", "l_returnflag")},
					[]expr.AggSpec{{Kind: expr.Sum, Arg: row(b, "lineitem").c("lineitem", "l_extendedprice")}})
				return b.Sort(agg, []int{0}, nil)
			}},
		)
	}
	return qs
}

func tpchRowstoreQueries() []Query    { return tpchQueries(false) }
func tpchColumnstoreQueries() []Query { return tpchQueries(true) }
