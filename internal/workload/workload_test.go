package workload

import (
	"math"
	"testing"

	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// runQuery builds, estimates, and executes one workload query.
func runQuery(tb testing.TB, w *Workload, q Query) (*exec.Query, int64) {
	tb.Helper()
	p := plan.Finalize(q.Build(w.Builder()))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	p.Walk(func(n *plan.Node) {
		if math.IsNaN(n.EstRows) || n.EstRows < 0 {
			tb.Fatalf("%s: node %d (%v) has bad estimate %v", q.Name, n.ID, n.Physical, n.EstRows)
		}
	})
	w.DB.ColdStart()
	query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), sim.NewClock())
	rows, err := query.Run()
	if err != nil {
		tb.Fatalf("%s: query failed: %v", q.Name, err)
	}
	return query, rows
}

func runAll(t *testing.T, w *Workload, queries []Query) {
	t.Helper()
	empty := 0
	for _, q := range queries {
		query, rows := runQuery(t, w, q)
		if rows == 0 {
			empty++
		}
		if query.Ctx.Clock.Now() == 0 {
			t.Errorf("%s: consumed no virtual time", q.Name)
		}
		// Every opened operator must be closed at completion.
		for id, c := range query.Counters() {
			if c.Opened && !c.Closed {
				t.Errorf("%s: node %d left open", q.Name, id)
			}
		}
	}
	if empty > len(queries)/3 {
		t.Errorf("%d/%d queries returned no rows; workload filters too selective", empty, len(queries))
	}
}

func TestTPCHRowstoreQueriesExecute(t *testing.T) {
	w := TPCH(1, TPCHRowstore)
	if len(w.Queries) < 16 {
		t.Fatalf("only %d rowstore queries", len(w.Queries))
	}
	runAll(t, w, w.Queries)
}

func TestTPCHColumnstoreQueriesExecute(t *testing.T) {
	w := TPCH(1, TPCHColumnstore)
	if len(w.Queries) < 14 {
		t.Fatalf("only %d columnstore queries", len(w.Queries))
	}
	runAll(t, w, w.Queries)
}

func TestTPCHDesignsAgreeOnResults(t *testing.T) {
	// The same data under both designs must produce identical answers for
	// the shared aggregation queries (a cross-design correctness check).
	rw := TPCH(1, TPCHRowstore)
	cw := TPCH(1, TPCHColumnstore)
	find := func(w *Workload, name string) Query {
		for _, q := range w.Queries {
			if q.Name == name {
				return q
			}
		}
		t.Fatalf("query %s missing", name)
		return Query{}
	}
	for _, name := range []string{"Q1", "Q4", "Q6", "Q13", "Q14", "Q22"} {
		_, rRows := runQuery(t, rw, find(rw, name))
		_, cRows := runQuery(t, cw, find(cw, name))
		if rRows != cRows {
			t.Errorf("%s: rowstore %d rows vs columnstore %d rows", name, rRows, cRows)
		}
	}
}

func TestTPCHColumnstorePlansAreBatchHeavy(t *testing.T) {
	w := TPCH(1, TPCHColumnstore)
	scans, batch := 0, 0
	for _, q := range w.Queries {
		p := plan.Finalize(q.Build(w.Builder()))
		p.Walk(func(n *plan.Node) {
			if n.IsScan() {
				scans++
				if n.Physical == plan.ColumnstoreIndexScan {
					batch++
				}
			}
		})
	}
	if batch != scans {
		t.Errorf("columnstore design has %d/%d non-columnstore scans", scans-batch, scans)
	}
}

func TestTPCHRowstoreOperatorDiversity(t *testing.T) {
	// Fig. 19's premise: the row design produces a diverse operator mix.
	w := TPCH(1, TPCHRowstore)
	seen := map[plan.PhysicalOp]bool{}
	for _, q := range w.Queries {
		p := plan.Finalize(q.Build(w.Builder()))
		p.Walk(func(n *plan.Node) { seen[n.Physical] = true })
	}
	for _, want := range []plan.PhysicalOp{
		plan.TableScan, plan.ClusteredIndexScan, plan.IndexScan, plan.IndexSeek,
		plan.ClusteredIndexSeek, plan.RIDLookup, plan.Filter, plan.ComputeScalar,
		plan.Sort, plan.TopNSort, plan.DistinctSort, plan.StreamAggregate,
		plan.HashAggregate, plan.HashJoin, plan.MergeJoin, plan.NestedLoops,
		plan.TableSpool, plan.BitmapCreate, plan.Exchange,
	} {
		if !seen[want] {
			t.Errorf("rowstore suite never uses %v", want)
		}
	}
}

func TestTPCHDeterminism(t *testing.T) {
	w1 := TPCH(7, TPCHRowstore)
	w2 := TPCH(7, TPCHRowstore)
	q1, r1 := runQuery(t, w1, w1.Queries[0])
	q2, r2 := runQuery(t, w2, w2.Queries[0])
	if r1 != r2 || q1.Ctx.Clock.Now() != q2.Ctx.Clock.Now() {
		t.Fatal("same seed produced different executions")
	}
}

func TestTPCDSQueriesExecute(t *testing.T) {
	w := TPCDS(1)
	if len(w.Queries) < 10 {
		t.Fatalf("only %d TPC-DS queries", len(w.Queries))
	}
	runAll(t, w, w.Queries)
}

func TestTPCDSNamedAnalogsPresent(t *testing.T) {
	w := TPCDS(1)
	want := map[string]bool{"Q13": false, "Q21": false, "Q36": false}
	for _, q := range w.Queries {
		if _, ok := want[q.Name]; ok {
			want[q.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("missing paper-figure analog %s", name)
		}
	}
}

func TestREALWorkloadShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation is slow in -short mode")
	}
	r1 := REAL1(1)
	if len(r1.Queries) != 477 {
		t.Errorf("REAL-1 has %d queries, want 477", len(r1.Queries))
	}
	r2 := REAL2(1)
	if len(r2.Queries) != 632 {
		t.Errorf("REAL-2 has %d queries, want 632", len(r2.Queries))
	}
	r3 := REAL3(1)
	if len(r3.Queries) != 40 {
		t.Errorf("REAL-3 has %d queries, want 40", len(r3.Queries))
	}
	// Spot-check join counts on REAL-2 plans.
	joins := 0
	plans := 0
	for i := 0; i < 20; i++ {
		p := plan.Finalize(r2.Queries[i*30].Build(r2.Builder()))
		plans++
		p.Walk(func(n *plan.Node) {
			if n.Logical.IsJoin() {
				joins++
			}
		})
	}
	if avg := float64(joins) / float64(plans); avg < 8 {
		t.Errorf("REAL-2 averages %.1f joins per query, want ~12", avg)
	}
}

func TestREALQueriesExecuteSample(t *testing.T) {
	r1 := REAL1(1)
	sample := make([]Query, 0, 24)
	for i := 0; i < len(r1.Queries); i += 20 {
		sample = append(sample, r1.Queries[i])
	}
	runAll(t, r1, sample)

	r3 := REAL3(1)
	runAll(t, r3, r3.Queries[:8])
}

func TestREALQueriesDeterministicPlans(t *testing.T) {
	a := REAL1(5)
	bw := REAL1(5)
	pa := plan.Finalize(a.Queries[3].Build(a.Builder()))
	pb := plan.Finalize(bw.Queries[3].Build(bw.Builder()))
	if pa.String() != pb.String() {
		t.Fatal("same seed produced different plans")
	}
}

func BenchmarkTPCHQ1(b *testing.B) {
	w := TPCH(1, TPCHRowstore)
	for i := 0; i < b.N; i++ {
		runQuery(b, w, w.Queries[0])
	}
}
