package chaos

import (
	"lqs/internal/engine/dmv"
	"lqs/internal/sim"
)

// rowKey identifies one per-(node, thread) profile row across polls.
type rowKey struct {
	node, thread int
}

// pollFault implements dmv.PollFault: per-poll capture stalls and per-row
// drop/duplicate/stale perturbations. It remembers each key's
// previous-poll row so a "stale" fault re-delivers genuinely old counters
// (the regression signature the estimator's repair pass detects), not
// synthetic ones. Deterministic: rows are visited in the capture's sorted
// (NodeID, ThreadID) order and all draws come from the layer RNG.
type pollFault struct {
	cfg  DMVFaults
	rng  *sim.RNG
	prev map[rowKey]dmv.OpProfile

	// Stats, exposed for tests and reports.
	polls, stalls, drops, dups, stales int64
}

// OnPoll implements dmv.PollFault.
func (f *pollFault) OnPoll(at sim.Duration, snap *dmv.Snapshot) (*dmv.Snapshot, bool) {
	f.polls++
	if f.cfg.StallProb > 0 && f.rng.Float64() < f.cfg.StallProb {
		// The capture stalled past the interval: the watchdog discards it,
		// but the server's row state still advanced.
		f.stalls++
		f.remember(snap)
		return snap, true
	}
	changed := false
	out := make([]dmv.OpProfile, 0, len(snap.Threads))
	for _, row := range snap.Threads {
		if f.cfg.DropRowProb > 0 && f.rng.Float64() < f.cfg.DropRowProb {
			f.drops++
			changed = true
			continue
		}
		if f.cfg.StaleProb > 0 && f.rng.Float64() < f.cfg.StaleProb {
			if old, ok := f.prev[rowKey{row.NodeID, row.ThreadID}]; ok {
				row = old
				changed = true
				f.stales++
			}
		}
		out = append(out, row)
		if f.cfg.DupRowProb > 0 && f.rng.Float64() < f.cfg.DupRowProb {
			f.dups++
			changed = true
			out = append(out, row)
		}
	}
	f.remember(snap)
	if !changed {
		return snap, false
	}
	// Perturbations are delivered on a private copy with Ops unset so the
	// consumer aggregates (or repairs) the faulty rows itself; the original
	// capture is never mutated.
	return &dmv.Snapshot{At: snap.At, NumNodes: snap.NumNodes, Threads: out}, false
}

// remember records the capture's true rows as the next poll's "previous"
// values — staleness replays real history, whatever was delivered.
func (f *pollFault) remember(snap *dmv.Snapshot) {
	for _, row := range snap.Threads {
		f.prev[rowKey{row.NodeID, row.ThreadID}] = row
	}
}
