package chaos

// Tests for the cross-layer chaos harness: the differential battery's
// contract (byte-identical rows or typed errors, estimator invariants at
// every poll), determinism of the seeded fault schedule, worker-crash
// supervision (typed error, no goroutine leaks), DMV-fault degradation,
// and seed derivation.

import (
	"runtime"
	"testing"
	"time"

	"lqs/internal/engine/exec"
	"lqs/internal/sim"
)

const testInterval = 200 * sim.Duration(1e3)

// TestBatterySmallGrid runs a reduced battery and requires the degradation
// contract to hold in every cell: fault-free cells are identical to the
// reference, faulty cells are identical or fail typed, and the estimator
// invariants hold at every replayed poll.
func TestBatterySmallGrid(t *testing.T) {
	rep, err := Run(GridConfig{
		Seed:               42,
		Workloads:          []string{"tpch"},
		QueriesPerWorkload: 2,
		DOPs:               []int{1, 2},
		Rates:              []float64{0, 0.002},
		RetryOnCrash:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2*2*2 {
		t.Fatalf("expected 8 cells, got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Outcome == OutcomeViolation {
			t.Errorf("%s/%s dop=%d rate=%g seed=%d violated: %v",
				c.Workload, c.Query, c.DOP, c.Rate, c.Seed, c.Violations)
		}
		if c.Rate == 0 && c.Outcome != OutcomeIdentical {
			t.Errorf("%s/%s dop=%d rate=0: fault-free cell not identical (%v)",
				c.Workload, c.Query, c.DOP, c.Outcome)
		}
		if c.Polls == 0 {
			t.Errorf("%s/%s dop=%d rate=%g: no polls replayed", c.Workload, c.Query, c.DOP, c.Rate)
		}
	}
}

// TestBatteryDeterminism: same GridConfig, same report — cell for cell,
// violation for violation, rendered byte for byte.
func TestBatteryDeterminism(t *testing.T) {
	cfg := GridConfig{
		Seed:               7,
		Workloads:          []string{"tpch"},
		QueriesPerWorkload: 1,
		DOPs:               []int{2},
		Rates:              []float64{0.005},
		RetryOnCrash:       1,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("same seed produced different reports:\n--- first\n%s--- second\n%s", a.Render(), b.Render())
	}
}

// TestWorkerCrashTypedError injects crash-only exec faults at DOP 4 and
// requires the failure to surface as a typed KindWorkerCrash QueryError —
// never a raw panic or an untyped error — with all worker goroutines
// cleaned up afterwards.
func TestWorkerCrashTypedError(t *testing.T) {
	w, err := gridWorkload("tpch", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Q3 genuinely parallelizes at DOP 4 (Q1's zone shape falls back to
	// serial), so its workers are real crash targets.
	q := w.Queries[1]
	baseline := runtime.NumGoroutine()

	crashed := false
	for seed := uint64(1); seed <= 20 && !crashed; seed++ {
		pl := NewPlan(Config{Seed: seed, Exec: ExecFaults{CrashProb: 0.01}})
		run, err := runCell(w, q, 4, pl, testInterval)
		if err != nil {
			t.Fatal(err)
		}
		if run.err == nil {
			continue
		}
		qe, ok := run.err.(*exec.QueryError)
		if !ok {
			t.Fatalf("seed %d: untyped error %T: %v", seed, run.err, run.err)
		}
		if qe.Kind != exec.KindWorkerCrash {
			t.Fatalf("seed %d: wrong kind %v: %v", seed, qe.Kind, qe)
		}
		crashed = true
	}
	if !crashed {
		t.Fatal("crash injection at DOP 4 never fired across 20 seeds")
	}

	// Worker goroutines must drain after the crash: supervision runs the
	// zone shutdown cleanups on the terminal state.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak after worker crash: %d > baseline %d", n, baseline)
	}
}

// TestCrashInertAtDOP1: worker crashes are a parallel-zone fault; the
// coordinator never crashes, so a serial run under crash-only chaos must
// complete identically to the fault-free run.
func TestCrashInertAtDOP1(t *testing.T) {
	w, err := gridWorkload("tpch", 1)
	if err != nil {
		t.Fatal(err)
	}
	q := w.Queries[0]
	ref, err := runCell(w, q, 1, NewPlan(Config{}), testInterval)
	if err != nil || ref.err != nil {
		t.Fatalf("reference failed: %v / %v", err, ref.err)
	}
	pl := NewPlan(Config{Seed: 3, Exec: ExecFaults{CrashProb: 0.05}})
	run, err := runCell(w, q, 1, pl, testInterval)
	if err != nil {
		t.Fatal(err)
	}
	if run.err != nil {
		t.Fatalf("serial run crashed under worker-crash-only chaos: %v", run.err)
	}
	if !equalRows(run.rows, ref.rows) {
		t.Fatal("serial crash-only chaos run diverged from reference")
	}
}

// TestDMVFaultsDegradeGracefully: snapshot-layer faults (dropped,
// duplicated, stale rows; poll stalls) plus session detaches must never
// perturb query results, must be flagged as degraded polls by the
// estimator, and must not breach any invariant during replay.
func TestDMVFaultsDegradeGracefully(t *testing.T) {
	w, err := gridWorkload("tpch", 1)
	if err != nil {
		t.Fatal(err)
	}
	q := w.Queries[1]
	ref, err := runCell(w, q, 1, NewPlan(Config{}), testInterval)
	if err != nil || ref.err != nil {
		t.Fatalf("reference failed: %v / %v", err, ref.err)
	}
	pl := NewPlan(Config{
		Seed:    11,
		DMV:     DMVFaults{DropRowProb: 0.1, DupRowProb: 0.1, StaleProb: 0.1, StallProb: 0.1},
		Session: SessionFaults{DetachProb: 0.05, DetachTicks: 2},
	})
	run, err := runCell(w, q, 2, pl, testInterval)
	if err != nil {
		t.Fatal(err)
	}
	if run.err != nil {
		t.Fatalf("DMV-only chaos failed the query itself: %v", run.err)
	}
	if !equalRows(run.rows, ref.rows) {
		t.Fatal("DMV-layer faults changed query results")
	}
	polls, degraded, violations := replayEstimator(w, run.trace, pl)
	if len(violations) > 0 {
		t.Fatalf("estimator invariants breached under DMV faults: %v", violations)
	}
	if polls == 0 {
		t.Fatal("no polls replayed")
	}
	if degraded == 0 && run.degraded == 0 {
		t.Fatal("heavy DMV faults produced zero degraded polls")
	}
	t.Logf("polls=%d degraded=%d watchdog-degraded=%d", polls, degraded, run.degraded)
}

// TestRetryOnCrashConsumesBudget: under heavy crash rates at DOP 4, the
// seeded query-level retry loop must actually retry (attempt-salted seeds)
// and still land on a contract-conforming outcome.
func TestRetryOnCrashConsumesBudget(t *testing.T) {
	w, err := gridWorkload("tpch", 1)
	if err != nil {
		t.Fatal(err)
	}
	q := w.Queries[1]
	ref, err := runCell(w, q, 1, NewPlan(Config{}), testInterval)
	if err != nil || ref.err != nil {
		t.Fatalf("reference failed: %v / %v", err, ref.err)
	}
	// Scan seeds for one whose first attempt crashes, then rerun the cell
	// with a retry budget and require a retry to be consumed.
	cfg := GridConfig{Seed: 0, RetryOnCrash: 3}
	for master := uint64(1); master <= 20; master++ {
		cfg.Seed = master
		seed := cellSeed(master, "tpch", q.Name, 4, 0.01, 0)
		probe, err := runCell(w, q, 4, NewPlan(RateConfig(0.01, seed)), testInterval)
		if err != nil {
			t.Fatal(err)
		}
		if probe.err == nil {
			continue
		}
		if qe, ok := probe.err.(*exec.QueryError); !ok || qe.Kind != exec.KindWorkerCrash {
			continue
		}
		cell := runGridCell(cfg, w, "tpch", q, 4, 0.01, ref.rows, testInterval)
		if cell.Retries == 0 {
			t.Fatalf("master seed %d: first attempt crashed but no retry consumed", master)
		}
		if cell.Outcome == OutcomeViolation {
			t.Fatalf("master seed %d: retried cell violated contract: %v", master, cell.Violations)
		}
		t.Logf("master seed %d: outcome=%v retries=%d", master, cell.Outcome, cell.Retries)
		return
	}
	t.Skip("no master seed in 1..20 produced a first-attempt worker crash")
}

// TestLayerSeedIndependence: different layer tags and different salts must
// yield different streams from the same master seed.
func TestLayerSeedIndependence(t *testing.T) {
	tags := []string{"storage", "exec", "dmv", "session"}
	seen := map[uint64]string{}
	for _, tag := range tags {
		s := layerSeed(99, tag)
		if prev, dup := seen[s]; dup {
			t.Fatalf("layer seeds collide: %q and %q -> %d", prev, tag, s)
		}
		seen[s] = tag
	}
	if layerSeed(99, "exec") != layerSeed(99, "exec") {
		t.Fatal("layerSeed not deterministic")
	}
	if layerSeed(99, "exec") == layerSeed(100, "exec") {
		t.Fatal("adjacent master seeds collide")
	}
	if mixSeed(1, 2) == mixSeed(1, 3) {
		t.Fatal("mixSeed ignores salt")
	}
}

// TestExecInjectorForkDeterminism: forking worker injectors in the same
// order must reproduce the same per-thread fault streams.
func TestExecInjectorForkDeterminism(t *testing.T) {
	mk := func() []exec.ChargeFault {
		in := newExecInjector(ExecFaults{StallProb: 0.1, CrashProb: 0.1}, 5)
		var faults []exec.ChargeFault
		for _, th := range []int{1, 2, 3} {
			child := in.Fork(th)
			for i := 0; i < 200; i++ {
				faults = append(faults, child.OnCharge(0))
			}
		}
		return faults
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fork streams diverge at draw %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	var crashes int
	for _, f := range a {
		if f.Crash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("no crash scheduled across 600 worker charges at p=0.1")
	}
}
