package chaos

import (
	"fmt"
	"strings"
)

// Outcome classifies one battery cell against the degradation contract.
type Outcome int

const (
	// OutcomeIdentical: the chaos run completed and its rows are
	// byte-identical to the fault-free reference.
	OutcomeIdentical Outcome = iota
	// OutcomeTypedError: the chaos run failed, but with a typed
	// *exec.QueryError — the contract's permitted failure mode.
	OutcomeTypedError
	// OutcomeViolation: anything else — diverged rows, an untyped error,
	// or an estimator invariant breached during replay.
	OutcomeViolation
)

// String renders the outcome for the report table.
func (o Outcome) String() string {
	switch o {
	case OutcomeIdentical:
		return "identical"
	case OutcomeTypedError:
		return "typed-error"
	case OutcomeViolation:
		return "VIOLATION"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// CellResult is the verdict for one (workload, query, DOP, rate) cell.
type CellResult struct {
	Workload string
	Query    string
	DOP      int
	Rate     float64
	// Seed is the cell's derived seed (attempt 0) — printing it makes any
	// failure replayable in isolation.
	Seed    uint64
	Outcome Outcome
	// ErrKind names the QueryError kind for typed-error outcomes.
	ErrKind string
	// Retries counts seeded query-level retries consumed on worker
	// crashes before this verdict.
	Retries int
	// Polls / DegradedPolls count estimator replay polls across all
	// attempts and how many of them the estimator flagged degraded.
	Polls         int
	DegradedPolls int
	// Violations describes every contract breach; empty unless Outcome is
	// OutcomeViolation.
	Violations []string
}

// Report aggregates a battery run.
type Report struct {
	Config GridConfig
	Cells  []CellResult
}

func (r *Report) add(c CellResult) { r.Cells = append(r.Cells, c) }

// Violations returns every cell that breached the contract.
func (r *Report) Violations() []CellResult {
	var out []CellResult
	for _, c := range r.Cells {
		if c.Outcome == OutcomeViolation {
			out = append(out, c)
		}
	}
	return out
}

// Counts tallies cells by outcome.
func (r *Report) Counts() (identical, typed, violations int) {
	for _, c := range r.Cells {
		switch c.Outcome {
		case OutcomeIdentical:
			identical++
		case OutcomeTypedError:
			typed++
		case OutcomeViolation:
			violations++
		}
	}
	return
}

// Render formats the battery report: one row per cell plus a verdict
// footer, with violation details expanded underneath.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos battery: seed=%d cells=%d\n", r.Config.Seed, len(r.Cells))
	fmt.Fprintf(&sb, "%-8s %-22s %3s %8s %11s %7s %6s %9s  %s\n",
		"workload", "query", "dop", "rate", "outcome", "retries", "polls", "degraded", "detail")
	for _, c := range r.Cells {
		detail := c.ErrKind
		if c.Outcome == OutcomeViolation {
			detail = fmt.Sprintf("%d violation(s), seed=%d", len(c.Violations), c.Seed)
		}
		fmt.Fprintf(&sb, "%-8s %-22s %3d %8.4f %11s %7d %6d %9d  %s\n",
			c.Workload, c.Query, c.DOP, c.Rate, c.Outcome, c.Retries, c.Polls, c.DegradedPolls, detail)
	}
	identical, typed, violations := r.Counts()
	fmt.Fprintf(&sb, "verdict: %d identical, %d typed-error, %d violation(s)\n", identical, typed, violations)
	for _, c := range r.Violations() {
		fmt.Fprintf(&sb, "  %s/%s dop=%d rate=%g seed=%d:\n", c.Workload, c.Query, c.DOP, c.Rate, c.Seed)
		for _, v := range c.Violations {
			fmt.Fprintf(&sb, "    - %s\n", v)
		}
	}
	return sb.String()
}
