package chaos

import (
	"fmt"
	"math"
	"strings"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// GridConfig parameterizes the chaos differential battery: a grid of
// (workload × query × DOP × fault rate) cells, each executed under a
// cell-derived seed with injectors on every layer, validated against the
// fault-free reference run and the estimator invariants.
type GridConfig struct {
	// Seed is the master seed; every cell derives its own from it.
	Seed uint64
	// Workloads to cover (workload names as cmd/lqsbench spells them);
	// nil means {"tpch", "tpcds"}.
	Workloads []string
	// QueriesPerWorkload bounds the queries per workload; 0 means 3
	// (QueriesAll runs every query).
	QueriesPerWorkload int
	// DOPs to cover; nil means {1, 2, 4}.
	DOPs []int
	// Rates is the fault-rate grid; nil means {0, 0.0005, 0.005}. Rate 0
	// cells double as determinism checks: all injectors disabled, output
	// must match the reference exactly.
	Rates []float64
	// PollInterval is the DMV poll interval; 0 means 200µs of virtual
	// time (dense enough that short test queries still get many polls).
	PollInterval sim.Duration
	// RetryOnCrash is the seeded query-level retry budget for
	// KindWorkerCrash failures: each retry re-executes the cell under an
	// attempt-salted seed. 0 disables retry.
	RetryOnCrash int
}

// QueriesAll makes QueriesPerWorkload cover every query of each workload.
const QueriesAll = -1

func (g GridConfig) workloads() []string {
	if len(g.Workloads) == 0 {
		return []string{"tpch", "tpcds"}
	}
	return g.Workloads
}

func (g GridConfig) dops() []int {
	if len(g.DOPs) == 0 {
		return []int{1, 2, 4}
	}
	return g.DOPs
}

func (g GridConfig) rates() []float64 {
	if len(g.Rates) == 0 {
		return []float64{0, 0.0005, 0.005}
	}
	return g.Rates
}

func (g GridConfig) queries() int {
	switch {
	case g.QueriesPerWorkload == QueriesAll:
		return 0
	case g.QueriesPerWorkload > 0:
		return g.QueriesPerWorkload
	}
	return 3
}

func (g GridConfig) pollInterval() sim.Duration {
	if g.PollInterval > 0 {
		return g.PollInterval
	}
	return 200 * sim.Duration(1e3)
}

// gridWorkload builds one named workload at the battery seed.
func gridWorkload(name string, seed uint64) (*workload.Workload, error) {
	switch strings.ToLower(name) {
	case "tpch":
		return workload.TPCH(seed, workload.TPCHRowstore), nil
	case "tpch-cs":
		return workload.TPCH(seed, workload.TPCHColumnstore), nil
	case "tpcds":
		return workload.TPCDS(seed), nil
	}
	return nil, fmt.Errorf("chaos: unknown workload %q", name)
}

// Run executes the battery and returns its report. Execution is serial and
// deterministic: the report for a given GridConfig is identical across
// runs and hosts.
func Run(cfg GridConfig) (*Report, error) {
	rep := &Report{Config: cfg}
	interval := cfg.pollInterval()
	for _, wname := range cfg.workloads() {
		w, err := gridWorkload(wname, cfg.Seed)
		if err != nil {
			return nil, err
		}
		queries := w.Queries
		if limit := cfg.queries(); limit > 0 && limit < len(queries) {
			queries = queries[:limit]
		}
		for _, q := range queries {
			// Fault-free reference, DOP 1. Parallel fault-free runs are
			// byte-identical to serial by the exchange determinism contract,
			// so one reference serves every DOP.
			ref, refErr := runCell(w, q, 1, NewPlan(Config{}), interval)
			if refErr != nil {
				return nil, fmt.Errorf("chaos: fault-free reference %s/%s failed: %w", wname, q.Name, refErr)
			}
			for _, dop := range cfg.dops() {
				for _, rate := range cfg.rates() {
					cell := runGridCell(cfg, w, wname, q, dop, rate, ref.rows, interval)
					rep.add(cell)
				}
			}
		}
	}
	return rep, nil
}

// cellRun is the raw result of one query execution under one plan.
type cellRun struct {
	rows     []string
	err      error
	trace    *dmv.Trace
	degraded int64
}

// cellSeed derives the deterministic seed of one grid cell.
func cellSeed(master uint64, wname, qname string, dop int, rate float64, attempt int) uint64 {
	s := layerSeed(master, wname+"/"+qname)
	s = mixSeed(s, uint64(dop))
	s = mixSeed(s, math.Float64bits(rate))
	return mixSeed(s, uint64(attempt))
}

// runGridCell executes one grid cell — including its seeded crash-retry
// loop and estimator-invariant replay — and classifies the outcome.
func runGridCell(cfg GridConfig, w *workload.Workload, wname string, q workload.Query, dop int, rate float64, ref []string, interval sim.Duration) CellResult {
	cell := CellResult{Workload: wname, Query: q.Name, DOP: dop, Rate: rate}
	for attempt := 0; ; attempt++ {
		seed := cellSeed(cfg.Seed, wname, q.Name, dop, rate, attempt)
		if attempt == 0 {
			cell.Seed = seed
		}
		pl := NewPlan(RateConfig(rate, seed))
		run, err := runCell(w, q, dop, pl, interval)
		if err != nil {
			return CellResult{Workload: wname, Query: q.Name, DOP: dop, Rate: rate, Seed: cell.Seed,
				Outcome: OutcomeViolation, Violations: []string{fmt.Sprintf("harness error: %v", err)}}
		}

		// Estimator invariants must hold over the poll history of every
		// attempt, successful or not, with session-layer detach/reattach
		// faults layered over the replay.
		polls, degraded, violations := replayEstimator(w, run.trace, pl)
		cell.Polls += polls
		cell.DegradedPolls += degraded
		cell.Violations = append(cell.Violations, violations...)

		if run.err == nil {
			if equalRows(run.rows, ref) {
				cell.Outcome = OutcomeIdentical
			} else {
				cell.Outcome = OutcomeViolation
				cell.Violations = append(cell.Violations,
					fmt.Sprintf("rows diverged from fault-free reference (%d vs %d rows)", len(run.rows), len(ref)))
			}
			break
		}
		qe, ok := run.err.(*exec.QueryError)
		if !ok {
			cell.Outcome = OutcomeViolation
			cell.Violations = append(cell.Violations, fmt.Sprintf("untyped error: %v", run.err))
			break
		}
		if qe.Kind == exec.KindWorkerCrash && attempt < cfg.RetryOnCrash {
			cell.Retries++
			continue
		}
		cell.Outcome = OutcomeTypedError
		cell.ErrKind = qe.Kind.String()
		break
	}
	if len(cell.Violations) > 0 {
		cell.Outcome = OutcomeViolation
	}
	return cell
}

// runCell executes one query at one DOP under one chaos plan, polling the
// DMV surface throughout, from a cold cache.
func runCell(w *workload.Workload, q workload.Query, dop int, pl *Plan, interval sim.Duration) (*cellRun, error) {
	w.DB.ColdStart()
	w.DB.Pool.SetFaultInjector(pl.StorageInjector())
	defer w.DB.Pool.SetFaultInjector(nil)

	p := plan.Finalize(plan.Parallelize(q.Build(w.Builder()), dop))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, interval)
	poller.SetFault(pl.PollFault())
	query := exec.NewQueryDOP(p, w.DB, opt.DefaultCostModel(), clock, dop)
	query.Ctx.Chaos = pl.ExecInjector()
	poller.Register(query)

	rows, err := query.RunCollect()
	tr := poller.Finish(query)
	poller.Detach()

	out := &cellRun{err: err, trace: tr}
	for _, snap := range tr.Snapshots {
		if snap.Degraded {
			out.degraded++
		}
	}
	if err == nil {
		out.rows = fingerprint(rows)
	}
	return out, nil
}

// fingerprint renders result rows to comparable strings, the same
// representation the engine's own determinism tests compare.
func fingerprint(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

// replayEstimator replays a run's poll history through a fresh LQS-mode
// estimator, layering session-layer detach/reattach (with stale
// re-delivery) over the stream, and checks the §4 invariants at every
// delivered poll: progress within [0, 1] and monotone, cardinalities
// finite and non-negative, bounds ordered, and Explain contributions
// summing to the raw query progress.
func replayEstimator(w *workload.Workload, tr *dmv.Trace, pl *Plan) (polls, degraded int, violations []string) {
	est := progress.NewEstimator(tr.Plan, w.DB.Catalog, progress.LQSOptions())
	snaps := tr.Snapshots
	if tr.Final != nil {
		snaps = append(append([]*dmv.Snapshot(nil), snaps...), tr.Final)
	}
	sessRNG := pl.SessionRNG()
	detachProb := pl.Config().Session.DetachProb
	detachTicks := pl.DetachTicks()

	prevQ := math.Inf(-1)
	var prevOp []float64
	var lastDelivered *dmv.Snapshot
	detach := 0

	deliver := func(s *dmv.Snapshot) {
		polls++
		x, e := est.Explain(s)
		if e.Degraded {
			degraded++
		}
		add := func(format string, args ...any) {
			violations = append(violations, fmt.Sprintf("poll %d @%v: ", polls, s.At)+fmt.Sprintf(format, args...))
		}
		if math.IsNaN(e.Query) || e.Query < 0 || e.Query > 1 {
			add("query progress %v outside [0,1]", e.Query)
		}
		if e.Query < prevQ-1e-12 {
			add("query progress regressed %v -> %v", prevQ, e.Query)
		}
		prevQ = math.Max(prevQ, e.Query)
		if prevOp == nil {
			prevOp = make([]float64, len(e.Op))
		}
		for i, v := range e.Op {
			if math.IsNaN(v) || v < 0 || v > 1 {
				add("node %d progress %v outside [0,1]", i, v)
			}
			if v < prevOp[i]-1e-12 {
				add("node %d progress regressed %v -> %v", i, prevOp[i], v)
			}
			prevOp[i] = math.Max(prevOp[i], v)
		}
		for i, v := range e.N {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				add("node %d cardinality estimate %v", i, v)
			}
		}
		for i, b := range e.Bounds {
			if math.IsNaN(b.LB) || math.IsNaN(b.UB) || b.LB > b.UB+1e-9 {
				add("node %d bounds [%v, %v] inverted", i, b.LB, b.UB)
			}
		}
		var sum float64
		for i := range x.Terms {
			sum += x.Terms[i].Contribution
		}
		if math.Abs(sum-x.RawQuery) > 1e-6 {
			add("contributions sum %v != raw query progress %v", sum, x.RawQuery)
		}
	}

	for _, s := range snaps {
		if detach > 0 {
			// Monitor detached: this poll is lost. On reattachment the
			// session re-delivers the last snapshot it had seen — the
			// classic stale-replay the estimator must absorb.
			detach--
			if detach == 0 && lastDelivered != nil {
				deliver(lastDelivered)
			}
			continue
		}
		if sessRNG != nil && sessRNG.Float64() < detachProb {
			detach = detachTicks
			continue
		}
		deliver(s)
		lastDelivered = s
	}
	return polls, degraded, violations
}

// equalRows compares two row fingerprints elementwise.
func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
