// Package chaos is the cross-layer fault scheduler and differential
// battery of the robustness harness. A Plan composes deterministic, seeded
// injectors for every layer of the progress pipeline behind one
// configuration: storage page-read faults (the PR-1 injector), exec-layer
// operator faults (slow-operator stalls, spill-write failures,
// memory-grant denials, worker-goroutine crashes inside parallel gather
// zones), DMV snapshot faults (dropped/duplicated/stale per-thread rows,
// poller stalls), and session-layer faults (monitor detach/reattach).
// Same seed ⇒ same fault sequence: every injector draws from its own
// layer-derived RNG and all timing rides the virtual clock, so a failing
// cell of the battery replays exactly from its printed seed.
//
// The paired degradation machinery lives with each layer it protects —
// the poller watchdog and circuit breaker in dmv, snapshot repair and
// bound widening in progress (Options.Degrade), worker supervision in
// exec — and the battery (runner.go) checks the end-to-end contract: a
// chaos run either completes byte-identical to the fault-free run or
// fails with a typed QueryError, and estimator invariants hold at every
// poll, degraded or not.
package chaos

import (
	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/storage"
	"lqs/internal/sim"
)

// StorageFaults configures the storage layer: seeded page-read faults on
// the buffer pool's physical reads (probabilities per physical read).
type StorageFaults struct {
	TransientProb float64
	PermanentProb float64
	// MaxRetries bounds retries of a transient fault; 0 uses the storage
	// layer's default budget.
	MaxRetries int
}

// ExecFaults configures the exec layer (probabilities per charge
// checkpoint unless noted).
type ExecFaults struct {
	// StallProb is the per-charge probability of a slow-operator stall;
	// StallMean is the mean stall duration (exponentially distributed).
	// Zero StallMean uses DefaultStallMean.
	StallProb float64
	StallMean sim.Duration
	// SpillFailProb is the per-spill-chunk probability that a blocking
	// operator's spill write fails (KindSpill).
	SpillFailProb float64
	// MemDenyProb is the per-reservation probability that the memory grant
	// is denied: spillable operators degrade to disk, non-spillable ones
	// abort with KindMemory.
	MemDenyProb float64
	// CrashProb is the per-charge probability that a parallel worker
	// goroutine crashes (KindWorkerCrash). Only worker threads crash — the
	// coordinator surfaces worker crashes, it does not die itself — so the
	// fault is inert at DOP 1.
	CrashProb float64
}

// DMVFaults configures the snapshot layer (probabilities per poll or per
// thread row).
type DMVFaults struct {
	// DropRowProb / DupRowProb / StaleProb are per thread row: the row
	// vanishes from the capture, is emitted twice, or is replaced by its
	// previous-poll value (counters regress).
	DropRowProb float64
	DupRowProb  float64
	StaleProb   float64
	// StallProb is per poll: the capture takes longer than the interval
	// and the watchdog treats the tick as missed.
	StallProb float64
}

// SessionFaults configures the session layer: the monitor detaches
// mid-query (polls are lost) and reattaches later, typically re-delivering
// the last snapshot it had seen.
type SessionFaults struct {
	// DetachProb is the per-poll probability the monitor detaches.
	DetachProb float64
	// DetachTicks is how many polls a detachment lasts; 0 means 3.
	DetachTicks int
}

// Config is a full cross-layer fault configuration. The zero value injects
// nothing; every layer whose rates are all zero costs nothing at runtime
// (its injector is nil).
type Config struct {
	// Seed is the master seed; each layer derives an independent stream
	// from it, so enabling one layer never perturbs another's sequence.
	Seed    uint64
	Storage StorageFaults
	Exec    ExecFaults
	DMV     DMVFaults
	Session SessionFaults
}

// DefaultStallMean is the mean injected stall when ExecFaults.StallMean is
// zero: 100µs of virtual time, large enough to cross poll boundaries in
// the test workloads.
const DefaultStallMean = sim.Duration(100e3)

// RateConfig scales one knob into a full cross-layer configuration — the
// fault-rate grid of the battery and the -chaos flags use it. The relative
// rates reflect event frequencies: charge checkpoints fire thousands of
// times per query (stalls at rate, crashes at rate/5, grant denials at
// rate/20), physical reads hundreds (transients at rate, permanents at
// rate/50), and polls dozens (DMV row faults at 4×rate, poll stalls and
// session detaches at 8×rate) — so every layer actually fires across a
// battery run at moderate rates.
func RateConfig(rate float64, seed uint64) Config {
	return Config{
		Seed: seed,
		Storage: StorageFaults{
			TransientProb: rate,
			PermanentProb: rate / 50,
		},
		Exec: ExecFaults{
			StallProb:     rate,
			StallMean:     DefaultStallMean,
			SpillFailProb: rate,
			MemDenyProb:   rate / 20,
			CrashProb:     rate / 5,
		},
		DMV: DMVFaults{
			DropRowProb: 4 * rate,
			DupRowProb:  4 * rate,
			StaleProb:   4 * rate,
			StallProb:   8 * rate,
		},
		Session: SessionFaults{
			DetachProb:  8 * rate,
			DetachTicks: 3,
		},
	}
}

// Plan is one composed fault schedule: injector factories for every layer,
// all derived deterministically from the master seed. Build the injectors
// fresh per query execution (they are stateful and single-use, like the
// query itself).
type Plan struct {
	cfg Config
}

// NewPlan builds a plan from a configuration.
func NewPlan(cfg Config) *Plan { return &Plan{cfg: cfg} }

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// StorageInjector builds the storage-layer fault injector, or nil when the
// storage rates are all zero. Attach it with db.Pool.SetFaultInjector.
func (p *Plan) StorageInjector() *storage.FaultInjector {
	sc := p.cfg.Storage
	if sc.TransientProb <= 0 && sc.PermanentProb <= 0 {
		return nil
	}
	return storage.NewFaultInjector(storage.FaultConfig{
		Seed:          layerSeed(p.cfg.Seed, "storage"),
		TransientProb: sc.TransientProb,
		PermanentProb: sc.PermanentProb,
		MaxRetries:    sc.MaxRetries,
	})
}

// ExecInjector builds the exec-layer injector, or nil when the exec rates
// are all zero. Assign it to Query.Ctx.Chaos before stepping; parallel
// workers fork their own deterministic streams from it at gather startup.
func (p *Plan) ExecInjector() exec.OpChaos {
	ec := p.cfg.Exec
	if ec.StallProb <= 0 && ec.SpillFailProb <= 0 && ec.MemDenyProb <= 0 && ec.CrashProb <= 0 {
		return nil
	}
	return newExecInjector(ec, layerSeed(p.cfg.Seed, "exec"))
}

// PollFault builds the DMV-layer snapshot fault hook, or nil when the DMV
// rates are all zero. Install it with Poller.SetFault (watchdog path) or
// Session.SetSnapshotFault (direct monitoring path).
func (p *Plan) PollFault() dmv.PollFault {
	dc := p.cfg.DMV
	if dc.DropRowProb <= 0 && dc.DupRowProb <= 0 && dc.StaleProb <= 0 && dc.StallProb <= 0 {
		return nil
	}
	return &pollFault{
		cfg:  dc,
		rng:  sim.NewRNG(layerSeed(p.cfg.Seed, "dmv")),
		prev: make(map[rowKey]dmv.OpProfile),
	}
}

// SessionRNG returns the seeded RNG driving session-layer detach faults,
// or nil when the session rates are all zero. The estimator replay in the
// battery consumes it; lqsmon's monitoring loop could equally.
func (p *Plan) SessionRNG() *sim.RNG {
	if p.cfg.Session.DetachProb <= 0 {
		return nil
	}
	return sim.NewRNG(layerSeed(p.cfg.Seed, "session"))
}

// DetachTicks resolves the configured detachment length.
func (p *Plan) DetachTicks() int {
	if p.cfg.Session.DetachTicks > 0 {
		return p.cfg.Session.DetachTicks
	}
	return 3
}

// layerSeed derives an independent seed for one layer: an FNV-1a hash of
// the layer tag folded into the master seed, finalized with a
// splitmix64-style mix so adjacent master seeds land far apart.
func layerSeed(seed uint64, tag string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tag); i++ {
		h = (h ^ uint64(tag[i])) * 1099511628211
	}
	return mixSeed(seed, h)
}

// mixSeed folds salt into seed with two splitmix64 finalization rounds.
func mixSeed(seed, salt uint64) uint64 {
	x := seed ^ salt
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
