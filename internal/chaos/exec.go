package chaos

import (
	"math"

	"lqs/internal/engine/exec"
	"lqs/internal/sim"
)

// execInjector implements exec.OpChaos: seeded stalls, crashes, spill
// failures, and grant denials. Charge checkpoints fire millions of times
// per query, so stall and crash events are scheduled with geometric
// countdowns (one RNG draw per event, not per checkpoint); the rarer
// spill-write and reservation hooks draw directly. Each injector is owned
// by exactly one executing thread — the coordinator forks worker injectors
// in gather startup order, so the per-thread streams are deterministic at
// any DOP without locks.
type execInjector struct {
	cfg    ExecFaults
	rng    *sim.RNG
	seed   uint64
	thread int
	forks  int

	// stallIn/crashIn count down charge checkpoints to the next event;
	// negative means the event is disabled.
	stallIn int64
	crashIn int64
}

func newExecInjector(cfg ExecFaults, seed uint64) *execInjector {
	in := &execInjector{cfg: cfg, rng: sim.NewRNG(seed), seed: seed}
	in.stallIn = in.countdown(cfg.StallProb)
	// The coordinator never crashes: worker-crash is a parallel-zone fault
	// (the supervision being tested is the gather's), so crashes arm only
	// on forked worker injectors.
	in.crashIn = -1
	return in
}

// countdown draws the number of charge checkpoints until the next event of
// per-checkpoint probability p — a geometric sample via inversion — or -1
// when the event is disabled.
func (in *execInjector) countdown(p float64) int64 {
	if p <= 0 {
		return -1
	}
	if p >= 1 {
		return 1
	}
	u := in.rng.Float64()
	n := int64(math.Floor(math.Log(1-u)/math.Log(1-p))) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// OnCharge implements exec.OpChaos.
func (in *execInjector) OnCharge(nodeID int) exec.ChargeFault {
	var f exec.ChargeFault
	if in.stallIn > 0 {
		in.stallIn--
		if in.stallIn == 0 {
			mean := in.cfg.StallMean
			if mean <= 0 {
				mean = DefaultStallMean
			}
			f.Stall = sim.Duration(in.rng.ExpFloat64() * float64(mean))
			if f.Stall < 1 {
				f.Stall = 1
			}
			in.stallIn = in.countdown(in.cfg.StallProb)
		}
	}
	if in.crashIn > 0 {
		in.crashIn--
		if in.crashIn == 0 {
			f.Crash = true
			in.crashIn = in.countdown(in.cfg.CrashProb)
		}
	}
	return f
}

// OnSpillWrite implements exec.OpChaos.
func (in *execInjector) OnSpillWrite(nodeID int) bool {
	return in.cfg.SpillFailProb > 0 && in.rng.Float64() < in.cfg.SpillFailProb
}

// DenyMem implements exec.OpChaos.
func (in *execInjector) DenyMem(nodeID int) bool {
	return in.cfg.MemDenyProb > 0 && in.rng.Float64() < in.cfg.MemDenyProb
}

// Fork implements exec.OpChaos: a child injector for one worker thread,
// seeded from the parent seed, the fork sequence number, and the thread
// ordinal — deterministic because the coordinator forks workers in gather
// startup order.
func (in *execInjector) Fork(thread int) exec.OpChaos {
	in.forks++
	child := &execInjector{
		cfg:    in.cfg,
		thread: thread,
		seed:   mixSeed(in.seed, uint64(in.forks)<<32|uint64(uint32(thread))),
	}
	child.rng = sim.NewRNG(child.seed)
	child.stallIn = child.countdown(in.cfg.StallProb)
	child.crashIn = -1
	if thread > 0 {
		child.crashIn = child.countdown(in.cfg.CrashProb)
	}
	return child
}
