package dmv

import (
	"testing"

	"lqs/internal/sim"
)

// TestCaptureSyncWhileRunning polls a query's counters from a second
// goroutine while the executor runs it to completion. Run with -race: the
// capture path must acquire the query's counter lock, the executor yields
// it at charge checkpoints, and the lifecycle fields it touches are
// atomics. Row counts observed across successive synchronized snapshots
// must be consistent (never decreasing, never beyond the final total).
func TestCaptureSyncWhileRunning(t *testing.T) {
	clock := sim.NewClock()
	q, scan := testQuery(t, clock)
	done := make(chan error, 1)
	go func() {
		_, err := q.Run()
		done <- err
	}()

	var lastRows int64
	polls := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("query failed: %v", err)
			}
			final := CaptureSync(q)
			fp := final.Op(scan.ID)
			if fp.ActualRows != 5000 || !fp.Closed {
				t.Fatalf("final scan profile: %+v", fp)
			}
			if polls == 0 {
				t.Log("query finished before any concurrent poll landed")
			}
			return
		default:
			snap := CaptureSync(q)
			rows := snap.Op(scan.ID).ActualRows
			if rows < lastRows {
				t.Fatalf("rows went backwards across polls: %d -> %d", lastRows, rows)
			}
			if rows > 5000 {
				t.Fatalf("snapshot overshot the table: %d rows", rows)
			}
			lastRows = rows
			polls++
		}
	}
}

// Out-of-range node IDs — a stale snapshot from a different plan shape —
// must degrade to an empty profile, not a panic.
func TestSnapshotOpBoundsGuard(t *testing.T) {
	s := &Snapshot{}
	if p := s.Op(0); p == nil || p.ActualRows != 0 {
		t.Fatalf("empty snapshot Op(0) = %+v", p)
	}
	if p := s.Op(-1); p.NodeID != -1 {
		t.Fatalf("Op(-1) = %+v", p)
	}
	s = &Snapshot{Ops: make([]OpProfile, 2)}
	if p := s.Op(7); p.Opened || p.ActualRows != 0 {
		t.Fatalf("out-of-range Op(7) = %+v", p)
	}
}
