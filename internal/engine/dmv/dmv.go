// Package dmv is the server-side observability surface of the engine: the
// analog of SQL Server's dynamic management views the paper's client polls
// (§2.1-2.2). QueryProfiles snapshots mirror sys.dm_exec_query_profiles
// (per-operator estimated/actual rows, elapsed and CPU time, reads, and
// columnstore segment counts); the Poller samples them on a fixed
// virtual-time interval (the paper's client polls every 500 ms).
//
// Deliberately absent, matching the paper's §7 list of counters the real
// DMV does not expose: internal state of Sort/Hash operators, and buffered
// row counts inside semi-blocking operators. The client-side estimator
// must work without them, exactly as LQS does.
package dmv

import (
	"lqs/internal/engine/exec"
	"lqs/internal/obs"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// PollInterval is the default sampling interval, matching the 500 ms used
// by the SSMS client.
const PollInterval = 500 * sim.Duration(1e6)

// OpProfile is one row of the query-profiles view: one operator instance's
// counters at the snapshot instant. Serial operators contribute one row
// (ThreadID 0); an operator running under a parallel gather contributes one
// row per worker thread, exactly as sys.dm_exec_query_profiles emits one
// row per (node, thread). Snapshot.Ops holds the per-node aggregation.
type OpProfile struct {
	NodeID int
	// ThreadID is the DMV thread ordinal: 0 for the coordinator instance,
	// w+1 for parallel worker w. Aggregated rows report 0.
	ThreadID int
	Physical plan.PhysicalOp
	Logical  plan.LogicalOp

	EstimateRows float64
	ActualRows   int64 // k_i: GetNext calls that returned a row
	Rebinds      int64

	OpenedAt      sim.Duration
	FirstActiveAt sim.Duration
	FirstActive   bool
	LastActive    sim.Duration
	ClosedAt      sim.Duration
	Opened        bool
	Closed        bool
	CPUTime       sim.Duration
	IOTime        sim.Duration

	LogicalReads  int64
	PhysicalReads int64
	PagesTotal    int64
	// IORetries counts transient page-read faults the storage layer retried
	// while serving this operator (fault-injection harness).
	IORetries int64

	SegmentsProcessed int64
	SegmentsTotal     int64

	// InternalDone/InternalTotal are the §7 extended counters for the
	// internal state of blocking operators (spilled-sort merge progress);
	// zero unless the operator spilled.
	InternalDone  int64
	InternalTotal int64
}

// Snapshot is one poll of a single query: all operator profiles at a
// common instant. Threads holds the raw per-(node, thread) rows, sorted by
// (NodeID, ThreadID); Ops holds one aggregated profile per node, indexed by
// NodeID (plan IDs are dense preorder). Hand-built snapshots may populate
// Ops directly and leave Threads empty — Aggregate treats pre-set Ops as
// authoritative.
type Snapshot struct {
	At sim.Duration
	// NumNodes is the plan's node count, the length Aggregate gives Ops.
	NumNodes int
	// Threads are the raw per-thread profile rows.
	Threads []OpProfile
	// Ops are the per-node aggregations of Threads (or directly-set rows).
	Ops []OpProfile

	// aggregated memoizes Aggregate: once the per-node fold has run (or
	// been found unnecessary), every further Op/Aggregate call on this
	// snapshot is a single flag test. Estimators call Op per node per poll,
	// so without the memo each access would re-walk the guard and, on
	// hand-perturbed snapshots, re-fold the thread rows.
	aggregated bool
	// aggRuns counts the folds that actually ran, pinning the memo in
	// regression tests.
	aggRuns int

	// Degraded marks a snapshot that is not a clean capture: the poller
	// synthesized it from the last good capture while its circuit breaker
	// was open, or the estimator repaired partial/stale/duplicated thread
	// rows. Consumers widen bounds and hold monotone progress rather than
	// trusting the counters at face value.
	Degraded bool
	// DegradeReason says why (poll stall, breaker backoff, repair summary).
	DegradeReason string
}

// Clone returns a deep copy of the snapshot (profile rows are values, so
// copying the slices suffices). The poller's watchdog clones the last good
// snapshot when synthesizing degraded ticks so later aggregation or repair
// never mutates history.
func (s *Snapshot) Clone() *Snapshot {
	out := *s
	out.Threads = append([]OpProfile(nil), s.Threads...)
	out.Ops = append([]OpProfile(nil), s.Ops...)
	// Clones exist to be mutated (degraded-tick synthesis, chaos
	// perturbation), so the memo does not carry over; the next Aggregate
	// re-validates against whatever the mutation left behind.
	out.aggregated = false
	return &out
}

// Op returns the aggregated profile for a node ID. Out-of-range IDs —
// possible when a client holds a stale or partial snapshot from a
// different plan shape — return an empty profile rather than panicking, so
// display code degrades to "no data" instead of crashing the monitor.
func (s *Snapshot) Op(id int) *OpProfile {
	s.Aggregate()
	if id < 0 || id >= len(s.Ops) {
		return &OpProfile{NodeID: id}
	}
	return &s.Ops[id]
}

// Aggregate folds the per-thread rows into one profile per node, the shape
// every estimator consumes: counters that accumulate work (rows, rebinds,
// reads, CPU/IO time, segments, totals) are summed across threads — each
// thread scans a disjoint partition, so the sums are exactly the serial
// counters and nothing is double-counted — while lifecycle is combined as
// Opened = any thread opened, Closed = every opened row also closed,
// OpenedAt/FirstActiveAt = earliest, LastActive/ClosedAt = latest. A no-op
// when Ops is already populated (idempotent, and hand-built snapshots with
// direct Ops stay authoritative); the outcome is memoized, so repeated
// Op/Aggregate calls on an unchanged snapshot cost one flag test.
func (s *Snapshot) Aggregate() {
	if s.aggregated {
		return
	}
	if s.Ops != nil || len(s.Threads) == 0 {
		s.aggregated = true
		return
	}
	s.aggRuns++
	n := s.NumNodes
	for _, t := range s.Threads {
		if t.NodeID+1 > n {
			n = t.NodeID + 1
		}
	}
	ops := make([]OpProfile, n)
	seen := make([]bool, n)
	for i := range ops {
		ops[i].NodeID = i
	}
	for _, t := range s.Threads {
		if t.NodeID < 0 || t.NodeID >= n {
			continue
		}
		agg := &ops[t.NodeID]
		if !seen[t.NodeID] {
			*agg = t
			agg.ThreadID = 0
			seen[t.NodeID] = true
			continue
		}
		agg.ActualRows += t.ActualRows
		agg.Rebinds += t.Rebinds
		agg.CPUTime += t.CPUTime
		agg.IOTime += t.IOTime
		agg.LogicalReads += t.LogicalReads
		agg.PhysicalReads += t.PhysicalReads
		agg.PagesTotal += t.PagesTotal
		agg.IORetries += t.IORetries
		agg.SegmentsProcessed += t.SegmentsProcessed
		agg.SegmentsTotal += t.SegmentsTotal
		agg.InternalDone += t.InternalDone
		agg.InternalTotal += t.InternalTotal
		if t.Opened {
			if !agg.Opened || t.OpenedAt < agg.OpenedAt {
				agg.OpenedAt = t.OpenedAt
			}
			agg.Opened = true
		}
		agg.Closed = agg.Closed && t.Closed
		if t.FirstActive {
			if !agg.FirstActive || t.FirstActiveAt < agg.FirstActiveAt {
				agg.FirstActiveAt = t.FirstActiveAt
			}
			agg.FirstActive = true
		}
		if t.LastActive > agg.LastActive {
			agg.LastActive = t.LastActive
		}
		if t.ClosedAt > agg.ClosedAt {
			agg.ClosedAt = t.ClosedAt
		}
	}
	s.Ops = ops
	s.aggregated = true
}

// NodeProfiles adapts the snapshot into the plan package's annotation
// profiles (indexed by node ID), for plan.ExplainWithProfile.
func (s *Snapshot) NodeProfiles() []plan.NodeProfile {
	s.Aggregate()
	out := make([]plan.NodeProfile, len(s.Ops))
	for i, op := range s.Ops {
		out[i] = plan.NodeProfile{
			ActualRows: op.ActualRows,
			Rebinds:    op.Rebinds,
			Opened:     op.Opened,
			Closed:     op.Closed,
		}
	}
	return out
}

// Capture snapshots a query's counters right now: one Threads row per
// (node, thread) counter set — serial operators contribute their single
// thread-0 row, parallel zones one row per worker — pre-aggregated into
// Ops so consumers that never look at threads see the familiar per-node
// view.
func Capture(q *exec.Query) *Snapshot {
	all := q.AllCounters()
	snap := &Snapshot{
		At:       q.Ctx.Clock.Now(),
		NumNodes: len(q.Plan.Nodes),
		Threads:  make([]OpProfile, 0, len(all)),
	}
	for _, c := range all {
		snap.Threads = append(snap.Threads, OpProfile{
			NodeID:            c.NodeID,
			ThreadID:          c.Thread,
			Physical:          c.Physical,
			Logical:           c.Logical,
			EstimateRows:      c.EstRows,
			ActualRows:        c.Rows,
			Rebinds:           c.Rebinds,
			OpenedAt:          c.OpenedAt,
			FirstActiveAt:     c.FirstActiveAt,
			FirstActive:       c.FirstActive,
			LastActive:        c.LastActive,
			ClosedAt:          c.ClosedAt,
			Opened:            c.Opened,
			Closed:            c.Closed,
			CPUTime:           c.CPUTime,
			IOTime:            c.IOTime,
			LogicalReads:      c.LogicalReads,
			PhysicalReads:     c.PhysicalReads,
			PagesTotal:        c.PagesTotal,
			IORetries:         c.IORetries,
			SegmentsProcessed: c.SegmentsProcessed,
			SegmentsTotal:     c.SegmentsTotal,
			InternalDone:      c.InternalDone,
			InternalTotal:     c.InternalTotal,
		})
	}
	snap.Aggregate()
	return snap
}

// CaptureSync snapshots a query's counters from a goroutine other than the
// one executing the query. It acquires the query's counter lock, so the
// snapshot observes a quiescent batch boundary rather than a torn update.
// Observers running on the executor goroutine itself (clock observers fired
// inside Advance) must use Capture instead: the executor already holds the
// lock there, and re-acquiring it would self-deadlock.
func CaptureSync(q *exec.Query) *Snapshot {
	q.LockCounters()
	defer q.UnlockCounters()
	return Capture(q)
}

// Trace is the recorded history of one query's execution: the plan, every
// snapshot taken while it ran, and the final true cardinalities. The
// experiment harness replays traces through different estimator
// configurations, so each query executes once no matter how many
// estimators are compared.
type Trace struct {
	Plan      *plan.Plan
	Snapshots []*Snapshot
	StartedAt sim.Duration
	EndedAt   sim.Duration
	// TrueRows is each operator's final output count (N_i^true), indexed
	// by node ID.
	TrueRows []int64
	// Final is the snapshot at completion.
	Final *Snapshot
	// DroppedSnapshots counts polls discarded by the flight-recorder cap
	// (SetHistoryCap); the retained Snapshots are the most recent ones.
	DroppedSnapshots int64
}

// Poller samples registered queries on a fixed virtual-time interval,
// accumulating a Trace per query. Register queries before running them.
type Poller struct {
	clock    *sim.Clock
	interval sim.Duration
	queries  []*exec.Query
	traces   map[*exec.Query]*Trace
	obs      *sim.Observation
	// historyCap, when positive, turns each trace into a flight recorder:
	// only the most recent historyCap snapshots are retained and older ones
	// are counted in Trace.DroppedSnapshots. Zero retains everything (the
	// experiment-harness default, which replays full traces).
	historyCap int
	// metrics, when non-nil, receives poll-tick and snapshot counters.
	metrics *obs.Registry
	// fault, when non-nil, perturbs or stalls captures (chaos harness).
	fault PollFault
	// watch holds per-query watchdog state (stall counting, circuit
	// breaker, last good snapshot).
	watch map[*exec.Query]*watchState
}

// PollFault intercepts each capture before it is recorded: it may perturb
// the snapshot (drop/duplicate/stale thread rows) by returning a modified
// copy, or report a stall (capture took longer than the poll interval) by
// returning true — the watchdog then treats the tick as missed. Returning
// (snap, false) unchanged is a healthy poll. Implemented by internal/chaos.
type PollFault interface {
	OnPoll(at sim.Duration, snap *Snapshot) (*Snapshot, bool)
}

// watchdogThreshold is how many consecutive stalled polls trip the circuit
// breaker: a single stall is absorbed as one dropped tick, a second in a
// row opens the breaker.
const watchdogThreshold = 2

// watchdogMaxBackoff caps the open breaker's capture backoff, in poll
// ticks: while open, the poller skips captures for backoff-1 ticks between
// attempts (1, 2, 4, ... watchdogMaxBackoff), synthesizing Degraded
// snapshots from the last good capture so consumers keep a full timeline.
const watchdogMaxBackoff = 8

// watchState is the watchdog's per-query record.
type watchState struct {
	misses   int // consecutive stalled capture attempts
	breaker  bool
	backoff  int // current backoff, in ticks, once the breaker is open
	skip     int // remaining ticks to skip before the next capture attempt
	lastGood *Snapshot
}

// NewPoller attaches a poller to the clock at the given interval. The
// poller holds its own observer registration, so other observers (a
// monitoring session, for example) may share the clock.
func NewPoller(clock *sim.Clock, interval sim.Duration) *Poller {
	p := &Poller{clock: clock, interval: interval, traces: make(map[*exec.Query]*Trace)}
	p.obs = clock.Observe(interval, p.sample)
	return p
}

// Detach stops the poller's clock observer; accumulated traces remain
// readable via Finish. Safe to call more than once.
func (p *Poller) Detach() { p.obs.Stop() }

// SetHistoryCap bounds the number of retained snapshots per query (the
// flight recorder). n <= 0 restores unlimited retention. Lowering the cap
// trims existing traces immediately.
func (p *Poller) SetHistoryCap(n int) {
	p.historyCap = n
	if n > 0 {
		for _, tr := range p.traces {
			p.trim(tr)
		}
	}
}

// SetMetrics attaches an observability registry; each poll tick and each
// captured snapshot is counted under the dmv/ namespace. Nil detaches.
func (p *Poller) SetMetrics(reg *obs.Registry) { p.metrics = reg }

// SetFault installs a capture interceptor (the chaos harness's DMV-layer
// injector). Nil — the default — disables interception and the watchdog
// never fires.
func (p *Poller) SetFault(f PollFault) { p.fault = f }

// trim enforces the flight-recorder cap on one trace.
func (p *Poller) trim(tr *Trace) {
	if p.historyCap <= 0 || len(tr.Snapshots) <= p.historyCap {
		return
	}
	over := len(tr.Snapshots) - p.historyCap
	tr.Snapshots = append(tr.Snapshots[:0:0], tr.Snapshots[over:]...)
	tr.DroppedSnapshots += int64(over)
}

// History returns the retained snapshots for a query, oldest first, along
// with the count of snapshots the flight recorder discarded. It remains
// queryable after the query completes — the point of a flight recorder.
// An unregistered query yields (nil, 0).
func (p *Poller) History(q *exec.Query) ([]*Snapshot, int64) {
	tr := p.traces[q]
	if tr == nil {
		return nil, 0
	}
	return tr.Snapshots, tr.DroppedSnapshots
}

// Register adds a query to the poll set.
func (p *Poller) Register(q *exec.Query) {
	p.queries = append(p.queries, q)
	p.traces[q] = &Trace{Plan: q.Plan}
}

// sample polls every running query. The snapshot is stamped with the poll
// tick time `at`: when one long uninterruptible stretch of operator work
// crosses several tick boundaries, each tick observes the same counters at
// its own time — exactly what a wall-clock poller sees when an operator is
// busy producing nothing.
func (p *Poller) sample(at sim.Duration) {
	p.metrics.Counter("dmv/poll_ticks").Inc()
	for _, q := range p.queries {
		if _, started := q.Started(); !started || q.Done() {
			continue
		}
		tr := p.traces[q]
		st := p.watchFor(q)
		if st.skip > 0 {
			// Breaker open: don't even attempt the capture; publish a
			// degraded tick synthesized from the last good snapshot so the
			// timeline has no holes.
			st.skip--
			p.recordDegraded(tr, st, at, "poller circuit breaker open: backing off")
			continue
		}
		snap := Capture(q)
		snap.At = at
		stalled := false
		if p.fault != nil {
			snap, stalled = p.fault.OnPoll(at, snap)
		}
		if stalled {
			p.metrics.Counter("dmv/poll_stalls").Inc()
			st.misses++
			if st.misses < watchdogThreshold {
				// A lone stall is one dropped poll; the watchdog keeps
				// counting but does not degrade yet.
				continue
			}
			if !st.breaker {
				st.breaker = true
				st.backoff = 1
				p.metrics.Counter("dmv/watchdog_trips").Inc()
			} else if st.backoff < watchdogMaxBackoff {
				st.backoff *= 2
			}
			st.skip = st.backoff - 1
			p.recordDegraded(tr, st, at, "poll stalled past interval")
			continue
		}
		// Healthy capture: close the breaker and reset the watchdog.
		st.misses, st.breaker, st.backoff, st.skip = 0, false, 0, 0
		if snap == nil {
			continue
		}
		if !snap.Degraded {
			st.lastGood = snap
		}
		tr.Snapshots = append(tr.Snapshots, snap)
		p.trim(tr)
		p.metrics.Counter("dmv/snapshots").Inc()
		if snap.Degraded {
			p.metrics.Counter("dmv/degraded_snapshots").Inc()
		}
	}
}

// watchFor returns (creating on first use) the watchdog state for a query.
func (p *Poller) watchFor(q *exec.Query) *watchState {
	if p.watch == nil {
		p.watch = make(map[*exec.Query]*watchState)
	}
	st := p.watch[q]
	if st == nil {
		st = &watchState{}
		p.watch[q] = st
	}
	return st
}

// recordDegraded publishes a synthesized Degraded snapshot: a clone of the
// last good capture restamped at the tick time (or an empty snapshot when
// nothing good was ever captured). Estimators hold last-good progress on
// these instead of blocking or going dark.
func (p *Poller) recordDegraded(tr *Trace, st *watchState, at sim.Duration, reason string) {
	var snap *Snapshot
	if st.lastGood != nil {
		snap = st.lastGood.Clone()
	} else {
		snap = &Snapshot{}
	}
	snap.At = at
	snap.Degraded = true
	snap.DegradeReason = reason
	tr.Snapshots = append(tr.Snapshots, snap)
	p.trim(tr)
	p.metrics.Counter("dmv/snapshots").Inc()
	p.metrics.Counter("dmv/degraded_snapshots").Inc()
}

// Finish finalizes a completed query's trace and returns it. A query that
// was never Registered has no accumulated snapshots; Finish degrades to a
// trace holding only the final capture instead of panicking — monitoring
// code may race registration against a fast query's completion.
func (p *Poller) Finish(q *exec.Query) *Trace {
	tr := p.traces[q]
	if tr == nil {
		tr = &Trace{Plan: q.Plan}
	}
	tr.Final = Capture(q)
	tr.StartedAt, _ = q.Started()
	tr.EndedAt, _ = q.Ended()
	tr.TrueRows = make([]int64, len(q.Plan.Nodes))
	for id, n := range q.TrueCardinalities() {
		tr.TrueRows[id] = n
	}
	return tr
}

// ColumnStoreSegments reports the total segment count for a columnstore
// index — the analog of counting rows in sys.column_store_segments, which
// the client uses as the denominator of batch-mode progress (§4.7).
// It is exposed on the snapshot ops as SegmentsTotal as well; this helper
// serves clients that want it before the scan opens.
func ColumnStoreSegments(rowGroups int64, accessedCols int) int64 {
	if accessedCols < 1 {
		accessedCols = 1
	}
	return rowGroups * int64(accessedCols)
}
