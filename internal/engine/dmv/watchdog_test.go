package dmv

// Tests for the poller watchdog and circuit breaker: stalled captures are
// first dropped, then trip the breaker, which backs off exponentially while
// synthesizing Degraded snapshots from the last good capture; a healthy
// capture closes the breaker and resets all state.

import (
	"testing"
	"time"

	"lqs/internal/obs"
	"lqs/internal/sim"
)

// scriptedFault stalls exactly the poll attempts whose 1-based ordinal is
// listed; every other poll passes the capture through untouched.
type scriptedFault struct {
	stallOn map[int]bool
	n       int
}

func (f *scriptedFault) OnPoll(at sim.Duration, snap *Snapshot) (*Snapshot, bool) {
	f.n++
	return snap, f.stallOn[f.n]
}

func TestWatchdogSingleStallIsDroppedPoll(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	p := NewPoller(clock, 10*time.Microsecond)
	fault := &scriptedFault{stallOn: map[int]bool{2: true}}
	p.SetFault(fault)
	p.Register(q)
	q.Run()
	p.Detach()

	hist, _ := p.History(q)
	if len(hist) == 0 {
		t.Fatal("no snapshots captured")
	}
	for _, s := range hist {
		if s.Degraded {
			t.Fatalf("a lone stall must drop the poll, not degrade: %q", s.DegradeReason)
		}
	}
	if fault.n < 3 {
		t.Fatalf("query too short for the script: only %d polls", fault.n)
	}
}

func TestWatchdogBreakerTripsAndBacksOff(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	p := NewPoller(clock, 10*time.Microsecond)
	reg := obs.NewRegistry()
	p.SetMetrics(reg)
	// Capture attempts 2..5 stall (skipped ticks never reach the fault):
	// attempt 2 is dropped (below threshold), attempt 3 trips the breaker
	// (backoff 1, no skip), attempt 4 doubles backoff to 2 and skips one
	// tick, attempt 5 doubles to 4 and skips three — then captures heal.
	fault := &scriptedFault{stallOn: map[int]bool{2: true, 3: true, 4: true, 5: true}}
	p.SetFault(fault)
	p.Register(q)
	q.Run()
	p.Detach()

	hist, _ := p.History(q)
	var degraded, stallDegraded, synthesized int
	for _, s := range hist {
		if !s.Degraded {
			continue
		}
		degraded++
		switch s.DegradeReason {
		case "poll stalled past interval":
			stallDegraded++
		case "poller circuit breaker open: backing off":
			synthesized++
		default:
			t.Fatalf("unexpected degrade reason %q", s.DegradeReason)
		}
	}
	if stallDegraded != 3 {
		t.Fatalf("want 3 stall-degraded snapshots (attempts 3, 4, 5), got %d", stallDegraded)
	}
	if synthesized != 4 {
		t.Fatalf("want 4 breaker-synthesized ticks (1 after attempt 4, 3 after attempt 5), got %d", synthesized)
	}
	if got := reg.Counter("dmv/watchdog_trips").Value(); got != 1 {
		t.Fatalf("watchdog_trips = %d, want 1", got)
	}
	if got := reg.Counter("dmv/poll_stalls").Value(); got != 4 {
		t.Fatalf("poll_stalls = %d, want 4", got)
	}
	if got := reg.Counter("dmv/degraded_snapshots").Value(); got != int64(degraded) {
		t.Fatalf("degraded_snapshots metric %d != history count %d", got, degraded)
	}

	// Degraded ticks synthesized from the last good capture must carry its
	// counters — the timeline holds progress instead of going dark — and
	// every tick (healthy, degraded, synthesized) must be present: the
	// timeline has no holes apart from sub-threshold dropped polls.
	var lastGoodRows int64
	for _, s := range hist {
		if !s.Degraded {
			lastGoodRows = s.TotalRows()
			continue
		}
		if s.DegradeReason == "poller circuit breaker open: backing off" && s.TotalRows() != lastGoodRows {
			t.Fatalf("synthesized snapshot rows %d != last good %d", s.TotalRows(), lastGoodRows)
		}
	}
}

func TestWatchdogHealthyCaptureClosesBreaker(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	p := NewPoller(clock, 10*time.Microsecond)
	// Trip the breaker early, then stall once more much later: the healthy
	// captures in between must have reset the watchdog, so the late lone
	// stall is a dropped poll, not a degraded one.
	fault := &scriptedFault{stallOn: map[int]bool{2: true, 3: true, 12: true}}
	p.SetFault(fault)
	p.Register(q)
	q.Run()
	p.Detach()

	hist, _ := p.History(q)
	for i, s := range hist {
		if s.Degraded && i > 0 && !hist[i-1].Degraded && hist[i-1].At > s.At {
			t.Fatal("history out of order")
		}
	}
	// Exactly one degraded snapshot: the poll-3 trip (backoff 1 skips
	// nothing, poll 4 heals). The late stall at 12 must not degrade.
	var degraded int
	var last *Snapshot
	for _, s := range hist {
		if s.Degraded {
			degraded++
			last = s
		}
	}
	if degraded != 1 {
		t.Fatalf("want exactly 1 degraded snapshot, got %d", degraded)
	}
	if last.DegradeReason != "poll stalled past interval" {
		t.Fatalf("unexpected reason %q", last.DegradeReason)
	}
}

// TotalRows sums ActualRows across thread rows — a convenient fingerprint
// for comparing synthesized snapshots to their source capture.
func (s *Snapshot) TotalRows() int64 {
	var n int64
	for _, r := range s.Threads {
		n += r.ActualRows
	}
	return n
}
