package dmv

import (
	"testing"

	"lqs/internal/obs"
	"lqs/internal/sim"
)

func TestFlightRecorderCapsHistory(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	// Poll fast relative to the query so many snapshots accrue.
	p := NewPoller(clock, 50*sim.Duration(1000))
	p.SetHistoryCap(4)
	p.Register(q)
	q.Run()

	hist, dropped := p.History(q)
	if len(hist) != 4 {
		t.Fatalf("retained %d snapshots, want 4", len(hist))
	}
	if dropped == 0 {
		t.Fatal("no snapshots dropped despite the cap")
	}
	// The retained ring holds the newest snapshots, oldest first.
	for i := 1; i < len(hist); i++ {
		if hist[i].At <= hist[i-1].At {
			t.Fatalf("history out of order: %v after %v", hist[i].At, hist[i-1].At)
		}
	}
	// The flight recorder is queryable after completion, and the last
	// retained snapshot is the most recent poll before the query ended.
	tr := p.Finish(q)
	if tr.DroppedSnapshots != dropped {
		t.Fatalf("trace dropped count %d != history %d", tr.DroppedSnapshots, dropped)
	}
	if last := hist[len(hist)-1]; last.At > tr.EndedAt {
		t.Fatalf("retained snapshot %v postdates query end %v", last.At, tr.EndedAt)
	}
}

func TestFlightRecorderUnlimitedByDefault(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	p := NewPoller(clock, 50*sim.Duration(1000))
	p.Register(q)
	q.Run()
	hist, dropped := p.History(q)
	if dropped != 0 {
		t.Fatalf("default poller dropped %d snapshots", dropped)
	}
	if len(hist) < 5 {
		t.Fatalf("expected many snapshots, got %d", len(hist))
	}
	// Lowering the cap afterwards trims retroactively.
	p.SetHistoryCap(2)
	hist2, dropped2 := p.History(q)
	if len(hist2) != 2 || dropped2 != int64(len(hist)-2) {
		t.Fatalf("retroactive trim: %d retained / %d dropped, want 2 / %d",
			len(hist2), dropped2, len(hist)-2)
	}
	if hist2[1].At != hist[len(hist)-1].At {
		t.Fatal("trim did not keep the newest snapshots")
	}
}

func TestFlightRecorderUnregisteredQuery(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	p := NewPoller(clock, 50*sim.Duration(1000))
	if hist, dropped := p.History(q); hist != nil || dropped != 0 {
		t.Fatal("unregistered query yielded history")
	}
}

func TestPollerMetrics(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	p := NewPoller(clock, 50*sim.Duration(1000))
	reg := obs.NewRegistry()
	p.SetMetrics(reg)
	p.Register(q)
	q.Run()
	ticks := reg.Counter("dmv/poll_ticks").Value()
	snaps := reg.Counter("dmv/snapshots").Value()
	if ticks == 0 || snaps == 0 {
		t.Fatalf("poller metrics not recorded: ticks=%d snapshots=%d", ticks, snaps)
	}
	if snaps > ticks {
		t.Fatalf("more snapshots (%d) than ticks (%d) for a single query", snaps, ticks)
	}
	hist, _ := p.History(q)
	if snaps != int64(len(hist)) {
		t.Fatalf("snapshot counter %d != retained history %d (no drops configured)", snaps, len(hist))
	}
}
