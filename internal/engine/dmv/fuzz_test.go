package dmv

// Fuzz target for Snapshot.Aggregate: arbitrary per-thread rows — including
// hostile node IDs, shuffled order, and counter values a healthy engine
// never produces — must aggregate without panicking, and the aggregation
// must preserve the no-double-count invariant (per-node sums over thread
// rows) and stay idempotent.

import (
	"encoding/binary"
	"testing"

	"lqs/internal/sim"
)

// decodeThreads turns fuzz bytes into thread rows, 16 bytes per row:
// nodeID(int8) thread(uint8) flags(1) pad(1) rows(int32) cpu(int32) reads(int32).
// Node IDs are deliberately allowed to be negative or far beyond NumNodes.
func decodeThreads(data []byte) []OpProfile {
	var out []OpProfile
	for len(data) >= 16 {
		rec := data[:16]
		data = data[16:]
		out = append(out, OpProfile{
			NodeID:       int(int8(rec[0])),
			ThreadID:     int(rec[1]),
			Opened:       rec[2]&1 != 0,
			Closed:       rec[2]&2 != 0,
			FirstActive:  rec[2]&4 != 0,
			ActualRows:   int64(int32(binary.LittleEndian.Uint32(rec[4:]))),
			CPUTime:      sim.Duration(int32(binary.LittleEndian.Uint32(rec[8:]))),
			LogicalReads: int64(int32(binary.LittleEndian.Uint32(rec[12:]))),
			OpenedAt:     sim.Duration(rec[3]),
			ClosedAt:     sim.Duration(rec[1]),
		})
	}
	return out
}

func FuzzAggregateThreads(f *testing.F) {
	// Seeds: a healthy serial row, a 2-thread parallel node, an out-of-order
	// pair, a negative node ID, and negative counters.
	f.Add([]byte{})
	f.Add([]byte{
		0, 0, 3, 0, 100, 0, 0, 0, 50, 0, 0, 0, 7, 0, 0, 0,
	})
	f.Add([]byte{
		2, 1, 1, 0, 10, 0, 0, 0, 5, 0, 0, 0, 1, 0, 0, 0,
		2, 2, 3, 1, 20, 0, 0, 0, 9, 0, 0, 0, 2, 0, 0, 0,
	})
	f.Add([]byte{
		5, 2, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0,
		1, 1, 1, 0, 2, 0, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0,
	})
	f.Add([]byte{
		0xFF, 0, 1, 0, 9, 0, 0, 0, 9, 0, 0, 0, 9, 0, 0, 0,
	})
	f.Add([]byte{
		3, 1, 7, 9, 0xFF, 0xFF, 0xFF, 0xFF, 0xFE, 0xFF, 0xFF, 0xFF, 0xFD, 0xFF, 0xFF, 0xFF,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		threads := decodeThreads(data)
		snap := &Snapshot{NumNodes: int(uint(len(data)) % 8), Threads: threads}
		snap.Aggregate()

		// Shape: Ops spans NumNodes and every in-range thread node.
		if len(snap.Threads) > 0 && len(snap.Ops) < snap.NumNodes {
			t.Fatalf("Ops shorter than NumNodes: %d < %d", len(snap.Ops), snap.NumNodes)
		}
		for i, op := range snap.Ops {
			if op.NodeID != i {
				t.Fatalf("Ops[%d].NodeID = %d", i, op.NodeID)
			}
			if op.ThreadID != 0 {
				t.Fatalf("aggregated row reports thread %d", op.ThreadID)
			}
		}

		// No double count: per-node work sums over in-range thread rows.
		rowSum := make(map[int]int64)
		readSum := make(map[int]int64)
		opened := make(map[int]bool)
		for _, tr := range threads {
			if tr.NodeID < 0 || tr.NodeID >= len(snap.Ops) {
				continue
			}
			rowSum[tr.NodeID] += tr.ActualRows
			readSum[tr.NodeID] += tr.LogicalReads
			opened[tr.NodeID] = opened[tr.NodeID] || tr.Opened
		}
		for id, want := range rowSum {
			op := snap.Op(id)
			if op.ActualRows != want || op.LogicalReads != readSum[id] {
				t.Fatalf("node %d: agg rows=%d reads=%d, thread sums rows=%d reads=%d",
					id, op.ActualRows, op.LogicalReads, want, readSum[id])
			}
			if op.Opened != opened[id] {
				t.Fatalf("node %d: agg opened=%v, any-thread opened=%v", id, op.Opened, opened[id])
			}
		}

		// Out-of-range lookups degrade, never panic.
		_ = snap.Op(-1)
		_ = snap.Op(len(snap.Ops) + 3)

		// Idempotent: a second Aggregate must not change anything.
		before := append([]OpProfile(nil), snap.Ops...)
		snap.Aggregate()
		for i := range before {
			if before[i] != snap.Ops[i] {
				t.Fatalf("Aggregate not idempotent at node %d", i)
			}
		}
	})
}
