package dmv

// Regression tests for the multi-thread DMV shape: a query with a parallel
// zone emits one profile row per (node, thread), and every capture path —
// the in-executor Capture used by clock observers, the cross-goroutine
// CaptureSync used by monitors — must aggregate those rows without double
// counting, mid-flight and at completion alike. Before per-thread rows
// existed, Capture assumed exactly one counter set per node; these tests
// pin the generalized behavior.

import (
	"testing"
	"time"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// parallelTestQuery builds Sort(HashAgg(TableScan)) over a 5000-row table
// and parallelizes it: the rewrite puts a gather over the scan, so the scan
// runs on dop worker threads while the aggregate and sort stay serial.
func parallelTestQuery(tb testing.TB, clock *sim.Clock, dop int) (*exec.Query, *plan.Node) {
	tb.Helper()
	cat := catalog.NewCatalog()
	tt := catalog.NewTable("t",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "v", Kind: types.KindFloat},
	)
	cat.Add(tt)
	db := storage.NewDatabase(cat, 1<<20)
	rows := make([]types.Row, 5000)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64(i)), types.Float(float64(i))}
	}
	db.Load("t", rows)
	db.BuildAllStats(16)
	bb := plan.NewBuilder(cat)
	scan := bb.TableScan("t", nil, nil)
	agg := bb.HashAgg(scan, []int{0}, []expr.AggSpec{{Kind: expr.CountStar}})
	root := plan.Parallelize(bb.Sort(agg, []int{1}, nil), dop)
	p := plan.Finalize(root)
	opt.NewEstimator(cat).Estimate(p)
	return exec.NewQueryDOP(p, db, opt.DefaultCostModel(), clock, dop), scan
}

// checkThreadConsistency verifies one snapshot's per-thread rows against its
// aggregation: (node, thread) keys are unique and ordered, and the
// aggregated work counters equal the sums over thread rows — the
// no-double-count invariant the estimator's α and driver sets depend on.
func checkThreadConsistency(t *testing.T, snap *Snapshot) {
	t.Helper()
	type key struct{ node, thread int }
	seen := make(map[key]bool)
	var last key
	rowSum := make(map[int]int64)
	cpuSum := make(map[int]sim.Duration)
	readSum := make(map[int]int64)
	for i, tr := range snap.Threads {
		k := key{tr.NodeID, tr.ThreadID}
		if seen[k] {
			t.Fatalf("duplicate thread row (node %d, thread %d)", k.node, k.thread)
		}
		seen[k] = true
		if i > 0 && (k.node < last.node || (k.node == last.node && k.thread < last.thread)) {
			t.Fatalf("thread rows out of (node, thread) order at %d: %v after %v", i, k, last)
		}
		last = k
		rowSum[tr.NodeID] += tr.ActualRows
		cpuSum[tr.NodeID] += tr.CPUTime
		readSum[tr.NodeID] += tr.LogicalReads
	}
	for id := range rowSum {
		op := snap.Op(id)
		if op.ActualRows != rowSum[id] || op.CPUTime != cpuSum[id] || op.LogicalReads != readSum[id] {
			t.Fatalf("node %d aggregation drifted from thread sums: agg rows=%d cpu=%v reads=%d, sums rows=%d cpu=%v reads=%d",
				id, op.ActualRows, op.CPUTime, op.LogicalReads, rowSum[id], cpuSum[id], readSum[id])
		}
	}
}

// TestPollerParallelMidFlight polls a parallel query from a clock observer
// and checks every mid-flight snapshot: per-thread rows stay consistent
// with their aggregation, aggregated counts are monotone and never overshoot
// the table, and at least one snapshot catches the zone genuinely mid-scan
// with multiple worker rows.
func TestPollerParallelMidFlight(t *testing.T) {
	const dop = 4
	clock := sim.NewClock()
	q, scan := parallelTestQuery(t, clock, dop)
	poller := NewPoller(clock, 20*time.Microsecond)
	poller.Register(q)
	if _, err := q.Run(); err != nil {
		t.Fatalf("query failed: %v", err)
	}
	tr := poller.Finish(q)
	if len(tr.Snapshots) < 2 {
		t.Fatalf("only %d mid-flight snapshots; shrink the poll interval", len(tr.Snapshots))
	}

	var lastRows int64
	sawMultiThreadMidScan := false
	for _, snap := range tr.Snapshots {
		checkThreadConsistency(t, snap)
		rows := snap.Op(scan.ID).ActualRows
		if rows < lastRows {
			t.Fatalf("aggregated scan rows decreased across polls: %d -> %d", lastRows, rows)
		}
		if rows > 5000 {
			t.Fatalf("aggregated scan rows overshot the table: %d (double-counted thread rows?)", rows)
		}
		lastRows = rows
		threadRows := 0
		for _, th := range snap.Threads {
			if th.NodeID == scan.ID {
				threadRows++
			}
		}
		if threadRows != dop {
			t.Fatalf("scan node has %d thread rows, want %d (workers register at build time)", threadRows, dop)
		}
		if rows > 0 && rows < 5000 {
			sawMultiThreadMidScan = true
		}
	}
	if !sawMultiThreadMidScan {
		t.Fatal("no poll caught the parallel scan mid-flight; shrink the poll interval")
	}

	fp := tr.Final.Op(scan.ID)
	if fp.ActualRows != 5000 || !fp.Opened || !fp.Closed {
		t.Fatalf("final aggregated scan profile: %+v", fp)
	}
	checkThreadConsistency(t, tr.Final)
	if tr.TrueRows[scan.ID] != 5000 {
		t.Fatalf("TrueRows sums threads wrong: %d", tr.TrueRows[scan.ID])
	}
}

// TestCaptureSyncParallelWhileRunning is the cross-goroutine variant: a
// monitor hammers CaptureSync while the executor runs the parallel query.
// Run with -race. Synchronized snapshots must observe quiescent batch
// boundaries — consistent thread rows, monotone aggregates, no overshoot.
func TestCaptureSyncParallelWhileRunning(t *testing.T) {
	clock := sim.NewClock()
	q, scan := parallelTestQuery(t, clock, 4)
	done := make(chan error, 1)
	go func() {
		_, err := q.Run()
		done <- err
	}()

	var lastRows int64
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("query failed: %v", err)
			}
			final := CaptureSync(q)
			checkThreadConsistency(t, final)
			if fp := final.Op(scan.ID); fp.ActualRows != 5000 || !fp.Closed {
				t.Fatalf("final scan profile: %+v", fp)
			}
			return
		default:
			snap := CaptureSync(q)
			checkThreadConsistency(t, snap)
			rows := snap.Op(scan.ID).ActualRows
			if rows < lastRows {
				t.Fatalf("rows went backwards across polls: %d -> %d", lastRows, rows)
			}
			if rows > 5000 {
				t.Fatalf("snapshot overshot the table: %d rows", rows)
			}
			lastRows = rows
		}
	}
}
