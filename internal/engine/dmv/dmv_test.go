package dmv

import (
	"testing"
	"time"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

func testQuery(tb testing.TB, clock *sim.Clock) (*exec.Query, *plan.Node) {
	tb.Helper()
	cat := catalog.NewCatalog()
	tt := catalog.NewTable("t",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "v", Kind: types.KindFloat},
	)
	cat.Add(tt)
	db := storage.NewDatabase(cat, 1<<20)
	rows := make([]types.Row, 5000)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64(i)), types.Float(float64(i))}
	}
	db.Load("t", rows)
	db.BuildAllStats(16)
	bb := plan.NewBuilder(cat)
	scan := bb.TableScan("t", nil, nil)
	agg := bb.HashAgg(scan, []int{0}, []expr.AggSpec{{Kind: expr.CountStar}})
	p := plan.Finalize(bb.Sort(agg, []int{1}, nil))
	opt.NewEstimator(cat).Estimate(p)
	return exec.NewQuery(p, db, opt.DefaultCostModel(), clock), scan
}

func TestCaptureSnapshot(t *testing.T) {
	clock := sim.NewClock()
	q, scan := testQuery(t, clock)
	q.Run()
	snap := Capture(q)
	if len(snap.Ops) != 3 {
		t.Fatalf("snapshot has %d ops", len(snap.Ops))
	}
	sp := snap.Op(scan.ID)
	if sp.ActualRows != 5000 || !sp.Closed {
		t.Fatalf("scan profile wrong: %+v", sp)
	}
	if sp.EstimateRows != 5000 {
		t.Fatalf("estimate not carried: %v", sp.EstimateRows)
	}
	if snap.At != clock.Now() {
		t.Fatal("snapshot time wrong")
	}
}

func TestPollerAccumulatesTrace(t *testing.T) {
	clock := sim.NewClock()
	q, scan := testQuery(t, clock)
	poller := NewPoller(clock, 100*time.Microsecond)
	poller.Register(q)
	q.Run()
	tr := poller.Finish(q)
	if len(tr.Snapshots) < 3 {
		t.Fatalf("only %d snapshots", len(tr.Snapshots))
	}
	// Snapshots are time-ordered and counters are monotone.
	for i := 1; i < len(tr.Snapshots); i++ {
		if tr.Snapshots[i].At <= tr.Snapshots[i-1].At {
			t.Fatal("snapshots out of order")
		}
		if tr.Snapshots[i].Op(scan.ID).ActualRows < tr.Snapshots[i-1].Op(scan.ID).ActualRows {
			t.Fatal("k_i decreased between snapshots")
		}
	}
	if tr.TrueRows[scan.ID] != 5000 {
		t.Fatalf("TrueRows = %d", tr.TrueRows[scan.ID])
	}
	if tr.Final == nil || tr.EndedAt <= tr.StartedAt {
		t.Fatal("final state not recorded")
	}
}

func TestPollerSkipsFinishedQueries(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	poller := NewPoller(clock, 100*time.Microsecond)
	poller.Register(q)
	q.Run()
	n := len(poller.traces[q].Snapshots)
	clock.Advance(10 * time.Millisecond) // fires the observer repeatedly
	if len(poller.traces[q].Snapshots) != n {
		t.Fatal("poller sampled a finished query")
	}
}

// TestFinishWithoutRegister: finalizing a query the poller never sampled
// must not panic on the missing trace entry — it degrades to a trace built
// from a final capture, with no accumulated snapshots.
func TestFinishWithoutRegister(t *testing.T) {
	clock := sim.NewClock()
	q, scan := testQuery(t, clock)
	poller := NewPoller(clock, 100*time.Microsecond)
	q.Run()
	tr := poller.Finish(q) // pre-fix: nil-map lookup → nil *Trace deref panic
	if tr == nil || tr.Final == nil {
		t.Fatal("Finish returned no usable trace")
	}
	if len(tr.Snapshots) != 0 {
		t.Fatalf("unregistered query accumulated %d snapshots", len(tr.Snapshots))
	}
	if tr.Plan != q.Plan {
		t.Fatal("trace plan not set")
	}
	if tr.TrueRows[scan.ID] != 5000 {
		t.Fatalf("TrueRows = %d", tr.TrueRows[scan.ID])
	}
	if tr.EndedAt <= tr.StartedAt {
		t.Fatal("start/end times not recorded")
	}
}

// TestPollerDetach: a detached poller stops sampling but keeps its traces.
func TestPollerDetach(t *testing.T) {
	clock := sim.NewClock()
	q, _ := testQuery(t, clock)
	poller := NewPoller(clock, 100*time.Microsecond)
	poller.Register(q)
	q.Run()
	n := len(poller.traces[q].Snapshots)
	if n < 3 {
		t.Fatalf("only %d snapshots before detach", n)
	}
	poller.Detach()
	poller.Detach() // idempotent
	clock.Advance(10 * time.Millisecond)
	if len(poller.traces[q].Snapshots) != n {
		t.Fatal("detached poller kept sampling")
	}
	if tr := poller.Finish(q); len(tr.Snapshots) != n {
		t.Fatal("Finish lost snapshots after detach")
	}
}

func TestColumnStoreSegments(t *testing.T) {
	if ColumnStoreSegments(10, 3) != 30 || ColumnStoreSegments(10, 0) != 10 {
		t.Fatal("segment math wrong")
	}
}

// TestSnapshotOpMemoizesAggregate pins the Aggregate memo: however many
// times a client reads Op on an unchanged snapshot — an estimator reads it
// once per node per poll — the per-node fold runs exactly once, and the
// hot-path reads allocate nothing.
func TestSnapshotOpMemoizesAggregate(t *testing.T) {
	snap := &Snapshot{NumNodes: 2, Threads: []OpProfile{
		{NodeID: 0, ThreadID: 1, ActualRows: 3},
		{NodeID: 0, ThreadID: 2, ActualRows: 4},
		{NodeID: 1, ThreadID: 0, ActualRows: 5},
	}}
	for i := 0; i < 100; i++ {
		if got := snap.Op(0).ActualRows; got != 7 {
			t.Fatalf("Op(0).ActualRows = %d, want 7", got)
		}
		if got := snap.Op(1).ActualRows; got != 5 {
			t.Fatalf("Op(1).ActualRows = %d, want 5", got)
		}
	}
	if snap.aggRuns != 1 {
		t.Fatalf("aggregation ran %d times over 200 Op calls, want 1", snap.aggRuns)
	}
	if allocs := testing.AllocsPerRun(100, func() { snap.Op(1) }); allocs != 0 {
		t.Fatalf("Op on an aggregated snapshot allocates %.0f objects per call, want 0", allocs)
	}

	// A mutated clone — the chaos/watchdog pattern — re-aggregates exactly
	// once more, seeing the mutation.
	c := snap.Clone()
	c.Ops = nil
	c.Threads[0].ActualRows = 10
	if got := c.Op(0).ActualRows; got != 14 {
		t.Fatalf("mutated clone Op(0).ActualRows = %d, want 14", got)
	}
	if c.aggRuns != 2 {
		t.Fatalf("clone aggregation count = %d, want 2", c.aggRuns)
	}
	// The original's memo is untouched by the clone's life.
	if got := snap.Op(0).ActualRows; got != 7 || snap.aggRuns != 1 {
		t.Fatalf("original perturbed by clone: rows=%d aggRuns=%d", got, snap.aggRuns)
	}
}
