package exec

import (
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// tableScan reads a heap sequentially, evaluating pushed-down storage
// predicates and bitmap probes before rows become visible to the operator's
// output (so its Rows counter — k_i — reflects only surviving rows, which
// is precisely what breaks driver-node assumptions in §4.3).
type tableScan struct {
	base
	cur      *storage.HeapCursor
	pushCost float64
	predCost float64
}

func newTableScan(n *plan.Node) *tableScan {
	s := &tableScan{}
	s.init(n)
	s.pushCost = float64(expr.Cost(n.PushedPred))
	s.predCost = float64(expr.Cost(n.Pred))
	return s
}

func (s *tableScan) Open(ctx *Ctx) {
	s.opened(ctx)
	h := ctx.DB.Heap(s.node.Table)
	if ctx.Parts > 1 {
		// Parallel worker: claim this worker's contiguous page range. The
		// per-partition PagesTotal values sum exactly to the serial total,
		// so aggregated per-thread DMV rows match a serial scan's.
		s.cur = h.PartitionCursor(ctx.DB.Pool, ctx.Part, ctx.Parts)
		s.c.PagesTotal = h.PartitionPages(ctx.Part, ctx.Parts)
		return
	}
	s.cur = h.Cursor(ctx.DB.Pool)
	s.c.PagesTotal = h.NumPages()
}

func (s *tableScan) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.cur.Reset()
}

func (s *tableScan) Next(ctx *Ctx) (types.Row, bool) {
	for {
		row, _, ok := s.cur.Next()
		ctx.chargeIO(&s.c, s.cur.DrainIO())
		if !ok {
			return nil, false
		}
		ctx.chargeCPU(&s.c, ctx.CM.CPUTuple+s.pushCost*ctx.CM.CPUExprUnit)
		if !storageFilter(ctx, s.node, &s.c, row) {
			continue
		}
		if s.node.Pred != nil {
			ctx.chargeCPU(&s.c, s.predCost*ctx.CM.CPUExprUnit)
			if !expr.EvalPred(s.node.Pred, row) {
				continue
			}
		}
		s.emit()
		return row, true
	}
}

func (s *tableScan) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.closed(ctx)
}

// storageFilter applies the storage-engine-level predicates of §4.3: the
// pushed predicate and the bitmap probe. Rows it rejects never count
// toward the scan's k_i.
func storageFilter(ctx *Ctx, n *plan.Node, c *Counters, row types.Row) bool {
	if n.PushedPred != nil && !expr.EvalPred(n.PushedPred, row) {
		return false
	}
	if n.BitmapSource != nil {
		bf := ctx.Bitmaps[n.BitmapSource.ID]
		if bf == nil {
			panic("exec: scan references an unregistered bitmap")
		}
		if !bf.probe(types.Row(row).HashCols(n.BitmapProbeCols)) {
			return false
		}
	}
	return true
}

// indexScan reads a B-tree's leaf level in key order. Covered columns are
// materialized without extra I/O (covering-index semantics).
type indexScan struct {
	base
	cur      *storage.BTreeCursor
	heap     *storage.Heap
	pushCost float64
	predCost float64
}

func newIndexScan(n *plan.Node) *indexScan {
	s := &indexScan{}
	s.init(n)
	s.pushCost = float64(expr.Cost(n.PushedPred))
	s.predCost = float64(expr.Cost(n.Pred))
	return s
}

func (s *indexScan) Open(ctx *Ctx) {
	s.opened(ctx)
	bt := ctx.DB.BTree(s.node.Table, s.node.Index)
	s.heap = ctx.DB.Heap(s.node.Table)
	if ctx.Parts > 1 {
		s.cur = bt.ScanPartition(ctx.DB.Pool, ctx.Part, ctx.Parts)
		s.c.PagesTotal = bt.PartitionLeafPages(ctx.Part, ctx.Parts)
		return
	}
	s.cur = bt.ScanAll(ctx.DB.Pool)
	s.c.PagesTotal = bt.NumLeafPages()
}

func (s *indexScan) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	bt := ctx.DB.BTree(s.node.Table, s.node.Index)
	if ctx.Parts > 1 {
		s.cur = bt.ScanPartition(ctx.DB.Pool, ctx.Part, ctx.Parts)
		return
	}
	s.cur = bt.ScanAll(ctx.DB.Pool)
}

func (s *indexScan) Next(ctx *Ctx) (types.Row, bool) {
	for {
		e, ok := s.cur.Next()
		ctx.chargeIO(&s.c, s.cur.DrainIO())
		if !ok {
			return nil, false
		}
		row := e.Row
		if row == nil {
			row = s.heap.RowNoIO(e.RID)
		}
		ctx.chargeCPU(&s.c, ctx.CM.CPUTuple+s.pushCost*ctx.CM.CPUExprUnit)
		if !storageFilter(ctx, s.node, &s.c, row) {
			continue
		}
		if s.node.Pred != nil {
			ctx.chargeCPU(&s.c, s.predCost*ctx.CM.CPUExprUnit)
			if !expr.EvalPred(s.node.Pred, row) {
				continue
			}
		}
		s.emit()
		return row, true
	}
}

func (s *indexScan) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.closed(ctx)
}

// constantScan emits literal rows.
type constantScan struct {
	base
	pos int
}

func newConstantScan(n *plan.Node) *constantScan {
	s := &constantScan{}
	s.init(n)
	return s
}

func (s *constantScan) Open(ctx *Ctx)   { s.opened(ctx) }
func (s *constantScan) Rewind(ctx *Ctx) { s.c.Rebinds++; s.pos = 0 }

func (s *constantScan) Next(ctx *Ctx) (types.Row, bool) {
	if s.pos >= len(s.node.ConstRows) {
		return nil, false
	}
	ctx.chargeCPU(&s.c, ctx.CM.CPUTuple)
	row := s.node.ConstRows[s.pos]
	s.pos++
	s.emit()
	return row, true
}

func (s *constantScan) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.closed(ctx)
}

// columnstoreScan reads a columnstore index row group at a time in batch
// mode (§4.7): segment reads are charged per batch, per-row CPU is far
// below row-mode, and the SegmentsProcessed/SegmentsTotal counters drive
// the client's batch-mode progress fraction.
type columnstoreScan struct {
	base
	cs    *storage.ColumnStore
	cols  []int
	group int
	// gLo/gHi bound the row groups this instance reads: the full range
	// serially, one contiguous partition per parallel worker.
	gLo, gHi int
	buf      []types.Row
	pos      int
}

func newColumnstoreScan(n *plan.Node) *columnstoreScan {
	s := &columnstoreScan{}
	s.init(n)
	return s
}

func (s *columnstoreScan) Open(ctx *Ctx) {
	s.opened(ctx)
	s.cs = ctx.DB.ColumnStore(s.node.Table, s.node.Index)
	s.cols = s.node.AccessedCols
	if len(s.cols) == 0 {
		s.cols = make([]int, s.cs.NumColumns())
		for i := range s.cols {
			s.cols[i] = i
		}
	}
	s.gLo, s.gHi = 0, s.cs.NumRowGroups()
	if ctx.Parts > 1 {
		s.gLo, s.gHi = s.cs.PartitionGroups(ctx.Part, ctx.Parts)
		s.c.SegmentsTotal = int64(s.gHi-s.gLo) * int64(len(s.cols))
	} else {
		s.c.SegmentsTotal = s.cs.TotalSegments(len(s.cols))
	}
	s.group = s.gLo
	s.c.PagesTotal = s.c.SegmentsTotal
}

func (s *columnstoreScan) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.group = s.gLo
	s.buf = nil
	s.pos = 0
}

func (s *columnstoreScan) Next(ctx *Ctx) (types.Row, bool) {
	for {
		if s.pos < len(s.buf) {
			row := s.buf[s.pos]
			s.pos++
			s.emit()
			return row, true
		}
		if s.group >= s.gHi {
			return nil, false
		}
		var io storage.IOCounts
		batch := s.cs.ReadRowGroup(s.group, s.cols, ctx.DB.Pool, &io)
		s.group++
		ctx.chargeSegments(&s.c, int64(len(s.cols)), io)
		// Batch-mode filtering: evaluate pushed predicates and bitmap
		// probes over the whole batch, charging batch-rate CPU.
		out := batch[:0]
		for _, row := range batch {
			if storageFilter(ctx, s.node, &s.c, row) && expr.EvalPred(s.node.Pred, row) {
				out = append(out, row)
			}
		}
		ctx.chargeCPU(&s.c, float64(len(batch))*ctx.CM.CPUBatchRow)
		s.buf = out
		s.pos = 0
	}
}

func (s *columnstoreScan) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.closed(ctx)
}
