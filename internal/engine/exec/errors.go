package exec

import (
	"fmt"

	"lqs/internal/sim"
)

// ErrorKind classifies why a query terminated abnormally. The paper's
// motivating workflow (§1, §2.3.1) is a DBA watching live progress to spot
// and kill runaway executions; each kind below is one of the terminal
// outcomes that workflow produces.
type ErrorKind int

const (
	// KindInternal is an operator panic converted to an error at the
	// Query.Step recovery boundary: an engine bug, not a runtime condition.
	KindInternal ErrorKind = iota
	// KindCancelled is an explicit Query.Cancel — the DBA's KILL.
	KindCancelled
	// KindDeadline is the query's virtual-time deadline expiring.
	KindDeadline
	// KindMemory is the simulated memory grant being exceeded by a
	// non-spillable blocking operator.
	KindMemory
	// KindIO is a permanent (retry-exhausted or hard) page-read failure
	// injected by the storage fault harness.
	KindIO
	// KindSpill is a spill-write failure: a blocking operator's external
	// (spilled) phase lost its scratch space mid-merge. Injected by the
	// chaos harness; a real engine surfaces the same condition when tempdb
	// runs out of room under a spilled sort.
	KindSpill
	// KindWorkerCrash is a parallel-zone worker goroutine dying mid-batch.
	// The gather's supervision converts it into this typed error on the
	// coordinator, after every worker goroutine has been released.
	KindWorkerCrash
)

// String names the kind for rendering and logs.
func (k ErrorKind) String() string {
	switch k {
	case KindInternal:
		return "internal error"
	case KindCancelled:
		return "cancelled"
	case KindDeadline:
		return "deadline exceeded"
	case KindMemory:
		return "memory grant exceeded"
	case KindIO:
		return "I/O failure"
	case KindSpill:
		return "spill failure"
	case KindWorkerCrash:
		return "parallel worker crashed"
	}
	return fmt.Sprintf("ErrorKind(%d)", int(k))
}

// QueryError is the typed terminal error of a query execution. NodeID
// identifies the plan node that was executing when the failure surfaced
// (-1 when no operator can be blamed, e.g. cancellation before any work).
type QueryError struct {
	Kind   ErrorKind
	NodeID int
	// At is the virtual time the failure surfaced.
	At sim.Duration
	// Reason is the human-readable detail: the cancel reason, the
	// recovered panic value, the faulted page, ...
	Reason string
}

// Error implements the error interface.
func (e *QueryError) Error() string {
	s := "exec: query " + e.Kind.String()
	if e.NodeID >= 0 {
		s += fmt.Sprintf(" at node %d", e.NodeID)
	}
	if e.Reason != "" {
		s += ": " + e.Reason
	}
	return s
}

// State maps the error to the query's terminal state: cancellation and
// deadline expiry are CANCELLED (the DBA or a policy stopped a healthy
// query); everything else is FAILED.
func (e *QueryError) State() QueryState {
	switch e.Kind {
	case KindCancelled, KindDeadline:
		return StateCancelled
	}
	return StateFailed
}

// QueryState is the lifecycle state of a Query. It is readable concurrently
// with execution (the registry and monitors poll it).
type QueryState int32

const (
	// StatePending: built but not yet stepped; the plan is unopened.
	StatePending QueryState = iota
	// StateRunning: the plan is open and producing rows.
	StateRunning
	// StateSucceeded: ran to completion.
	StateSucceeded
	// StateCancelled: stopped by Cancel or a deadline before completing.
	StateCancelled
	// StateFailed: terminated by an error (operator panic, injected I/O
	// fault, exhausted memory grant).
	StateFailed
)

// Terminal reports whether the state is final.
func (s QueryState) Terminal() bool { return s >= StateSucceeded }

// String names the state as lqsmon renders it.
func (s QueryState) String() string {
	switch s {
	case StatePending:
		return "PENDING"
	case StateRunning:
		return "RUNNING"
	case StateSucceeded:
		return "SUCCEEDED"
	case StateCancelled:
		return "CANCELLED"
	case StateFailed:
		return "FAILED"
	}
	return fmt.Sprintf("QueryState(%d)", int32(s))
}
