package exec

import (
	"math"
	"testing"
	"time"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// fixture: t(id 0..999, grp = id%10, val = id/10.0) with clustered pk and
// secondary index on grp; u(id 0..2999, t_id = id%500, amt) with secondary
// index on t_id; cs table mirrors t with a columnstore.
func testDB(tb testing.TB) *storage.Database {
	tb.Helper()
	cat := catalog.NewCatalog()
	tt := catalog.NewTable("t",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "grp", Kind: types.KindInt},
		catalog.Column{Name: "val", Kind: types.KindFloat},
	)
	tt.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	tt.AddIndex(&catalog.Index{Name: "ix_grp", KeyCols: []int{1}})
	tt.AddIndex(&catalog.Index{Name: "cs", Kind: catalog.ColumnStore})
	cat.Add(tt)
	ut := catalog.NewTable("u",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "t_id", Kind: types.KindInt},
		catalog.Column{Name: "amt", Kind: types.KindFloat},
	)
	ut.AddIndex(&catalog.Index{Name: "ix_tid", KeyCols: []int{1}})
	cat.Add(ut)

	db := storage.NewDatabase(cat, 1<<20)
	tRows := make([]types.Row, 1000)
	for i := range tRows {
		tRows[i] = types.Row{types.Int(int64(i)), types.Int(int64(i % 10)), types.Float(float64(i) / 10)}
	}
	db.Load("t", tRows)
	uRows := make([]types.Row, 3000)
	for i := range uRows {
		uRows[i] = types.Row{types.Int(int64(i)), types.Int(int64(i % 500)), types.Float(float64(i))}
	}
	db.Load("u", uRows)
	db.BuildAllStats(32)
	return db
}

// runPlan estimates, builds, and executes a plan, returning the query and
// its result rows.
func runPlan(tb testing.TB, db *storage.Database, root *plan.Node) (*Query, []types.Row) {
	tb.Helper()
	p := plan.Finalize(root)
	opt.NewEstimator(db.Catalog).Estimate(p)
	q := NewQuery(p, db, opt.DefaultCostModel(), sim.NewClock())
	rows, err := q.RunCollect()
	if err != nil {
		tb.Fatalf("query failed: %v", err)
	}
	return q, rows
}

func b(db *storage.Database) *plan.Builder { return plan.NewBuilder(db.Catalog) }

func TestTableScanAll(t *testing.T) {
	db := testDB(t)
	q, rows := runPlan(t, db, b(db).TableScan("t", nil, nil))
	if len(rows) != 1000 {
		t.Fatalf("scan returned %d rows", len(rows))
	}
	c := q.Root.Counters()
	if c.Rows != 1000 {
		t.Fatalf("k_i = %d", c.Rows)
	}
	if c.PagesTotal == 0 || c.LogicalReads != c.PagesTotal {
		t.Fatalf("reads %d, pages %d", c.LogicalReads, c.PagesTotal)
	}
	if q.Ctx.Clock.Now() == 0 {
		t.Fatal("clock did not advance")
	}
	if !c.Opened || !c.Closed {
		t.Fatal("open/close not recorded")
	}
}

func TestScanResidualVsPushedPredicate(t *testing.T) {
	db := testDB(t)
	pred := expr.Lt(expr.C(0, "id"), expr.KInt(100))
	// Residual: rows are filtered by the operator after being read.
	_, rows := runPlan(t, db, b(db).TableScan("t", pred, nil))
	if len(rows) != 100 {
		t.Fatalf("residual filter returned %d rows", len(rows))
	}
	// Pushed: same output, and k_i likewise counts only survivors.
	q2, rows2 := runPlan(t, db, b(db).TableScan("t", nil, pred))
	if len(rows2) != 100 || q2.Root.Counters().Rows != 100 {
		t.Fatalf("pushed filter: %d rows, k=%d", len(rows2), q2.Root.Counters().Rows)
	}
	// Pushed predicate still reads the whole table's pages.
	if q2.Root.Counters().LogicalReads != q2.Root.Counters().PagesTotal {
		t.Fatal("pushed-predicate scan must still read every page")
	}
}

func TestIndexScanOrdered(t *testing.T) {
	db := testDB(t)
	_, rows := runPlan(t, db, b(db).IndexScan("t", "ix_grp", nil, nil))
	if len(rows) != 1000 {
		t.Fatalf("index scan returned %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][1].I < rows[i-1][1].I {
			t.Fatal("index scan not ordered by key")
		}
	}
}

func TestClusteredSeekRange(t *testing.T) {
	db := testDB(t)
	seek := b(db).Seek("t", "pk",
		[]expr.Expr{expr.KInt(10)}, []expr.Expr{expr.KInt(19)}, true, true, nil)
	_, rows := runPlan(t, db, seek)
	if len(rows) != 10 || rows[0][0].I != 10 || rows[9][0].I != 19 {
		t.Fatalf("seek [10,19] returned %d rows", len(rows))
	}
}

func TestFilterAndComputeScalar(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	f := bb.Filter(bb.TableScan("t", nil, nil), expr.Eq(expr.C(1, "grp"), expr.KInt(3)))
	cs := bb.ComputeScalar(f, expr.Times(expr.C(2, "val"), expr.KInt(2)))
	_, rows := runPlan(t, db, cs)
	if len(rows) != 100 {
		t.Fatalf("filtered %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r) != 4 || r[3].F != r[2].F*2 {
			t.Fatalf("computed column wrong: %v", r)
		}
	}
}

func TestSortOrdersAndCountsInput(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	s := bb.Sort(bb.TableScan("t", nil, nil), []int{2}, []bool{true})
	q, rows := runPlan(t, db, s)
	if len(rows) != 1000 {
		t.Fatalf("sort returned %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][2].F > rows[i-1][2].F {
			t.Fatal("descending sort violated")
		}
	}
	if q.Root.Counters().InputRows != 1000 {
		t.Fatalf("InputRows = %d", q.Root.Counters().InputRows)
	}
}

func TestTopNSortMatchesFullSort(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	top := bb.TopNSortNode(bb.TableScan("u", nil, nil), 25, []int{2}, []bool{true})
	_, rows := runPlan(t, db, top)
	if len(rows) != 25 {
		t.Fatalf("topN returned %d", len(rows))
	}
	// Highest amt values are 2999, 2998, ...
	for i, r := range rows {
		if r[2].F != float64(2999-i) {
			t.Fatalf("topN row %d = %v", i, r)
		}
	}
}

func TestDistinctSort(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	d := bb.DistinctSortNode(bb.TableScan("t", nil, nil), []int{1})
	_, rows := runPlan(t, db, d)
	if len(rows) != 10 {
		t.Fatalf("distinct grp returned %d", len(rows))
	}
}

func TestStreamAndHashAggAgree(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	aggs := []expr.AggSpec{
		{Kind: expr.CountStar},
		{Kind: expr.Sum, Arg: expr.C(2, "val")},
		{Kind: expr.Min, Arg: expr.C(0, "id")},
	}
	// Stream agg needs grouped input: index scan on grp delivers it.
	sa := bb.StreamAgg(bb.IndexScan("t", "ix_grp", nil, nil), []int{1}, aggs)
	_, sRows := runPlan(t, db, sa)
	ha := bb.HashAgg(bb.TableScan("t", nil, nil), []int{1}, aggs)
	_, hRows := runPlan(t, db, ha)
	if len(sRows) != 10 || len(hRows) != 10 {
		t.Fatalf("agg group counts %d/%d", len(sRows), len(hRows))
	}
	byKey := func(rows []types.Row) map[int64]types.Row {
		m := map[int64]types.Row{}
		for _, r := range rows {
			m[r[0].I] = r
		}
		return m
	}
	sm, hm := byKey(sRows), byKey(hRows)
	for k, sr := range sm {
		hr := hm[k]
		for i := range sr {
			if types.Compare(sr[i], hr[i]) != 0 {
				t.Fatalf("group %d differs: stream %v vs hash %v", k, sr, hr)
			}
		}
		if sr[1].I != 100 {
			t.Fatalf("group %d count = %v", k, sr[1])
		}
	}
}

func TestScalarAggregateOverEmptyInput(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	empty := bb.Filter(bb.TableScan("t", nil, nil), expr.Eq(expr.C(0, "id"), expr.KInt(-1)))
	ha := bb.HashAgg(empty, nil, []expr.AggSpec{{Kind: expr.CountStar}})
	_, rows := runPlan(t, db, ha)
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Fatalf("scalar agg over empty input = %v", rows)
	}
}

// joinFixtures builds the same logical join three ways.
func TestJoinAlgorithmsAgree(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	// u join t on u.t_id = t.id → every u row matches exactly one t row
	// (t_id in 0..499 ⊂ t.id 0..999) → 3000 rows.
	hj := bb.HashJoinNode(plan.LogicalInnerJoin,
		bb.TableScan("u", nil, nil), bb.TableScan("t", nil, nil),
		[]int{1}, []int{0}, nil)
	_, hjRows := runPlan(t, db, hj)

	mj := bb.MergeJoinNode(plan.LogicalInnerJoin,
		bb.Sort(bb.TableScan("u", nil, nil), []int{1}, nil),
		bb.IndexScan("t", "pk", nil, nil),
		[]int{1}, []int{0}, nil)
	_, mjRows := runPlan(t, db, mj)

	nl := bb.NestedLoopsNode(plan.LogicalInnerJoin,
		bb.TableScan("u", nil, nil),
		bb.SeekEq("t", "pk", []expr.Expr{expr.C(1, "u.t_id")}, nil),
		nil)
	_, nlRows := runPlan(t, db, nl)

	if len(hjRows) != 3000 || len(mjRows) != 3000 || len(nlRows) != 3000 {
		t.Fatalf("join cardinalities: hash=%d merge=%d nl=%d", len(hjRows), len(mjRows), len(nlRows))
	}
	sum := func(rows []types.Row, col int) float64 {
		s := 0.0
		for _, r := range rows {
			f, _ := r[col].AsFloat()
			s += f
		}
		return s
	}
	// Column 5 is t.val in the concatenated (u ++ t) row. Compare with a
	// tolerance: summation order differs across algorithms.
	s1, s2, s3 := sum(hjRows, 5), sum(mjRows, 5), sum(nlRows, 5)
	if math.Abs(s1-s2) > 1e-6 || math.Abs(s1-s3) > 1e-6 {
		t.Fatalf("join algorithms disagree on payload sums: %v %v %v", s1, s2, s3)
	}
}

func TestSemiAntiOuterJoinVariants(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	// t semi-join u on t.id = u.t_id: t ids 0..499 have matches.
	semi := bb.HashJoinNode(plan.LogicalLeftSemiJoin,
		bb.TableScan("t", nil, nil), bb.TableScan("u", nil, nil),
		[]int{0}, []int{1}, nil)
	_, semiRows := runPlan(t, db, semi)
	if len(semiRows) != 500 {
		t.Fatalf("semi join returned %d, want 500", len(semiRows))
	}
	anti := bb.HashJoinNode(plan.LogicalLeftAntiSemiJoin,
		bb.TableScan("t", nil, nil), bb.TableScan("u", nil, nil),
		[]int{0}, []int{1}, nil)
	_, antiRows := runPlan(t, db, anti)
	if len(antiRows) != 500 {
		t.Fatalf("anti join returned %d, want 500", len(antiRows))
	}
	outer := bb.HashJoinNode(plan.LogicalLeftOuterJoin,
		bb.TableScan("t", nil, nil), bb.TableScan("u", nil, nil),
		[]int{0}, []int{1}, nil)
	_, outerRows := runPlan(t, db, outer)
	// 500 matched t rows × 6 u matches each + 500 unmatched = 3500.
	if len(outerRows) != 3500 {
		t.Fatalf("left outer returned %d, want 3500", len(outerRows))
	}
	nulls := 0
	for _, r := range outerRows {
		if r[3].IsNull() {
			nulls++
		}
	}
	if nulls != 500 {
		t.Fatalf("%d null-padded rows, want 500", nulls)
	}
	ro := bb.HashJoinNode(plan.LogicalRightOuterJoin,
		bb.TableScan("u", nil, nil), bb.TableScan("t", nil, nil),
		[]int{1}, []int{0}, nil)
	_, roRows := runPlan(t, db, ro)
	// 3000 matches + 500 unmatched t rows (ids 500..999).
	if len(roRows) != 3500 {
		t.Fatalf("right outer returned %d, want 3500", len(roRows))
	}
}

func TestMergeJoinVariants(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	semi := bb.MergeJoinNode(plan.LogicalLeftSemiJoin,
		bb.IndexScan("t", "pk", nil, nil),
		bb.Sort(bb.TableScan("u", nil, nil), []int{1}, nil),
		[]int{0}, []int{1}, nil)
	_, rows := runPlan(t, db, semi)
	if len(rows) != 500 {
		t.Fatalf("merge semi join returned %d, want 500", len(rows))
	}
	anti := bb.MergeJoinNode(plan.LogicalLeftAntiSemiJoin,
		bb.IndexScan("t", "pk", nil, nil),
		bb.Sort(bb.TableScan("u", nil, nil), []int{1}, nil),
		[]int{0}, []int{1}, nil)
	_, antiRows := runPlan(t, db, anti)
	if len(antiRows) != 500 {
		t.Fatalf("merge anti join returned %d, want 500", len(antiRows))
	}
}

func TestNestedLoopsRebindCounting(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	inner := bb.SeekEq("t", "pk", []expr.Expr{expr.C(1, "u.t_id")}, nil)
	nl := bb.NestedLoopsNode(plan.LogicalInnerJoin,
		bb.Filter(bb.TableScan("u", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(50))),
		inner, nil)
	q, rows := runPlan(t, db, nl)
	if len(rows) != 50 {
		t.Fatalf("NL returned %d", len(rows))
	}
	ic := q.Operator(inner.ID).Counters()
	if ic.Rebinds != 50 {
		t.Fatalf("inner rebinds = %d, want 50", ic.Rebinds)
	}
	if ic.Rows != 50 {
		t.Fatalf("inner k = %d, want 50", ic.Rows)
	}
}

func TestSpoolReplayUnderNL(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	// Outer: 20 u rows; inner: eager spool of 10 t rows (grp=5 → 100 rows
	// filtered to id<50 → 5 rows). Cross join semantics via residual-free NL.
	innerScan := bb.TableScan("t", expr.And(
		expr.Eq(expr.C(1, "grp"), expr.KInt(5)),
		expr.Lt(expr.C(0, "id"), expr.KInt(50))), nil)
	sp := bb.Spool(innerScan, true)
	outer := bb.Filter(bb.TableScan("u", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(20)))
	nl := bb.NestedLoopsNode(plan.LogicalInnerJoin, outer, sp, nil)
	q, rows := runPlan(t, db, nl)
	if len(rows) != 20*5 {
		t.Fatalf("NL-over-spool returned %d, want 100", len(rows))
	}
	sc := q.Operator(sp.ID).Counters()
	if sc.Rows != 100 {
		t.Fatalf("spool k = %d (replays must count), want 100", sc.Rows)
	}
	if sc.InputRows != 5 {
		t.Fatalf("spool input = %d, want 5 (child runs once)", sc.InputRows)
	}
	// The spooled child must have executed exactly once.
	if q.Operator(innerScan.ID).Counters().Rows != 5 {
		t.Fatal("spooled child re-executed")
	}
}

func TestExchangeBufferingRunsAhead(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	child := bb.TableScan("u", nil, nil)
	ex := bb.ExchangeNode(child, plan.GatherStreams)
	ex.ExchangeStartup = 500
	ex.ExchangeAhead = 2
	p := plan.Finalize(ex)
	opt.NewEstimator(db.Catalog).Estimate(p)
	q := NewQuery(p, db, opt.DefaultCostModel(), sim.NewClock())
	q.Step(1)
	ck := q.Operator(child.ID).Counters().Rows
	ek := q.Operator(ex.ID).Counters().Rows
	if ck < 500 {
		t.Fatalf("child k = %d after one exchange row, want >= startup burst", ck)
	}
	if ek != 1 {
		t.Fatalf("exchange k = %d", ek)
	}
	if q.Operator(ex.ID).Counters().BufferedRows < 400 {
		t.Fatalf("buffered = %d", q.Operator(ex.ID).Counters().BufferedRows)
	}
	// Draining completes with every row delivered exactly once.
	q.Run()
	if q.RowsReturned() != 3000 {
		t.Fatalf("exchange delivered %d rows", q.RowsReturned())
	}
}

func TestBitmapFilterReducesProbeOutput(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	// Build side: t filtered to grp=7 (100 rows, ids 7,17,...,997).
	build := bb.TableScan("t", expr.Eq(expr.C(1, "grp"), expr.KInt(7)), nil)
	bm := bb.BitmapNode(build, []int{0})
	probe := bb.TableScan("u", nil, nil)
	bb.AttachBitmap(probe, bm, []int{1})
	hj := bb.HashJoinNode(plan.LogicalInnerJoin, probe, bm, []int{1}, []int{0}, nil)
	q, rows := runPlan(t, db, hj)
	// t ids with grp=7 and id<500: 7,17,...,497 → 50 values × 6 u rows.
	if len(rows) != 300 {
		t.Fatalf("bitmap join returned %d, want 300", len(rows))
	}
	pk := q.Operator(probe.ID).Counters().Rows
	if pk >= 3000 || pk < 300 {
		t.Fatalf("probe scan k = %d; bitmap should filter most rows in-scan", pk)
	}
}

func TestColumnstoreScanBatchCounters(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	scan := bb.ColumnstoreScan("t", "cs", []int{0, 1}, expr.Lt(expr.C(0, "id"), expr.KInt(600)))
	q, rows := runPlan(t, db, scan)
	if len(rows) != 600 {
		t.Fatalf("columnstore scan returned %d", len(rows))
	}
	c := q.Root.Counters()
	if c.SegmentsTotal == 0 || c.SegmentsProcessed != c.SegmentsTotal {
		t.Fatalf("segments %d/%d", c.SegmentsProcessed, c.SegmentsTotal)
	}
}

func TestRIDLookupPath(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	seek := bb.SeekKeysOnly("t", "ix_grp",
		[]expr.Expr{expr.KInt(4)}, []expr.Expr{expr.KInt(4)}, true, true)
	look := bb.RIDLookup(seek, "t")
	q, rows := runPlan(t, db, look)
	if len(rows) != 100 {
		t.Fatalf("rid lookup returned %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 3 || r[1].I != 4 {
			t.Fatalf("rid lookup row wrong: %v", r)
		}
	}
	if q.Root.Counters().LogicalReads == 0 {
		t.Fatal("rid lookup charged no I/O")
	}
}

func TestConcatAndConstantScan(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	cs := bb.ConstantScanRows([]types.Row{
		{types.Int(1), types.Int(0), types.Float(0)},
		{types.Int(2), types.Int(0), types.Float(0)},
	})
	cc := bb.Concat(cs, bb.TableScan("t", expr.Lt(expr.C(0, "id"), expr.KInt(3)), nil))
	_, rows := runPlan(t, db, cc)
	if len(rows) != 5 {
		t.Fatalf("concat returned %d", len(rows))
	}
}

func TestStackedNestedLoops(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	// outer: 10 u rows → mid: seek t by t_id → deep: seek u by t.id.
	deep := bb.SeekEq("u", "ix_tid", []expr.Expr{expr.C(0, "t.id")}, nil)
	mid := bb.NestedLoopsNode(plan.LogicalInnerJoin,
		bb.SeekEq("t", "pk", []expr.Expr{expr.C(1, "u.t_id")}, nil),
		deep, nil)
	top := bb.NestedLoopsNode(plan.LogicalInnerJoin,
		bb.Filter(bb.TableScan("u", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(10))),
		mid, nil)
	_, rows := runPlan(t, db, top)
	// Each of 10 u rows (t_id = id, 0..9) matches 1 t row; each t.id in
	// 0..9 matches 6 u rows → 60.
	if len(rows) != 60 {
		t.Fatalf("stacked NL returned %d, want 60", len(rows))
	}
}

func TestQueryDeterminism(t *testing.T) {
	run := func() (sim.Duration, int64) {
		db := testDB(t)
		bb := b(db)
		hj := bb.HashJoinNode(plan.LogicalInnerJoin,
			bb.TableScan("u", nil, nil), bb.TableScan("t", nil, nil),
			[]int{1}, []int{0}, nil)
		agg := bb.HashAgg(hj, []int{4}, []expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(2, "amt")}})
		q, _ := runPlan(t, db, agg)
		return q.Ctx.Clock.Now(), q.RowsReturned()
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("nondeterministic execution: (%v,%d) vs (%v,%d)", t1, r1, t2, r2)
	}
}

func TestClockObserverFiresDuringRun(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	s := bb.Sort(bb.TableScan("u", nil, nil), []int{2}, nil)
	p := plan.Finalize(s)
	opt.NewEstimator(db.Catalog).Estimate(p)
	clock := sim.NewClock()
	samples := 0
	clock.Observe(100*time.Microsecond, func(sim.Duration) { samples++ })
	q := NewQuery(p, db, opt.DefaultCostModel(), clock)
	q.Run()
	if samples < 5 {
		t.Fatalf("only %d samples during execution", samples)
	}
}

func BenchmarkHashJoinExec(bm *testing.B) {
	db := testDB(bm)
	for i := 0; i < bm.N; i++ {
		bb := b(db)
		hj := bb.HashJoinNode(plan.LogicalInnerJoin,
			bb.TableScan("u", nil, nil), bb.TableScan("t", nil, nil),
			[]int{1}, []int{0}, nil)
		p := plan.Finalize(hj)
		opt.NewEstimator(db.Catalog).Estimate(p)
		q := NewQuery(p, db, opt.DefaultCostModel(), sim.NewClock())
		q.Run()
	}
}
