package exec

import (
	"testing"

	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// Rewind paths: operators on the inner side of a nested loop re-execute
// once per outer row; these tests put each pipelined operator there.

func nlOver(t *testing.T, innerOf func(b *plan.Builder) *plan.Node, wantRows int) {
	t.Helper()
	db := testDB(t)
	bb := b(db)
	outer := bb.Filter(bb.TableScan("u", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(5)))
	inner := innerOf(bb)
	nl := bb.NestedLoopsNode(plan.LogicalInnerJoin, outer, inner, nil)
	_, rows := runPlan(t, db, nl)
	if len(rows) != wantRows {
		t.Fatalf("NL returned %d rows, want %d", len(rows), wantRows)
	}
}

func TestRewindFilterOverScan(t *testing.T) {
	// Inner: full rescan of t filtered to 2 rows, per 5 outer rows.
	nlOver(t, func(bb *plan.Builder) *plan.Node {
		return bb.Filter(bb.TableScan("t", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(2)))
	}, 10)
}

func TestRewindComputeScalarAndSegment(t *testing.T) {
	nlOver(t, func(bb *plan.Builder) *plan.Node {
		cs := bb.ComputeScalar(
			bb.TableScan("t", expr.Lt(expr.C(0, "id"), expr.KInt(3)), nil),
			expr.Plus(expr.C(0, "id"), expr.KInt(1)))
		return bb.SegmentNode(cs, []int{1})
	}, 15)
}

func TestRewindConcatAndConstant(t *testing.T) {
	nlOver(t, func(bb *plan.Builder) *plan.Node {
		return bb.Concat(
			bb.ConstantScanRows([]types.Row{{types.Int(-1), types.Int(0), types.Float(0)}}),
			bb.TableScan("t", expr.Eq(expr.C(0, "id"), expr.KInt(7)), nil))
	}, 10)
}

func TestRewindIndexScanAndSort(t *testing.T) {
	nlOver(t, func(bb *plan.Builder) *plan.Node {
		// Sort's rewind replays without re-consuming its input.
		return bb.Sort(
			bb.IndexScan("t", "ix_grp", nil, expr.Eq(expr.C(1, "grp"), expr.KInt(0))),
			[]int{0}, []bool{true})
	}, 5*100)
}

func TestRewindTopNAndHashAgg(t *testing.T) {
	nlOver(t, func(bb *plan.Builder) *plan.Node {
		agg := bb.HashAgg(bb.TableScan("t", nil, nil), []int{1},
			[]expr.AggSpec{{Kind: expr.CountStar}})
		return bb.TopNSortNode(agg, 3, []int{1}, []bool{true})
	}, 15)
}

func TestRewindLazySpoolContinuesChild(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	scan := bb.TableScan("t", expr.Lt(expr.C(0, "id"), expr.KInt(4)), nil)
	sp := bb.Spool(scan, false) // lazy
	outer := bb.Filter(bb.TableScan("u", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(3)))
	nl := bb.NestedLoopsNode(plan.LogicalInnerJoin, outer, sp, nil)
	q, rows := runPlan(t, db, nl)
	if len(rows) != 12 {
		t.Fatalf("lazy spool NL returned %d rows, want 12", len(rows))
	}
	// The lazy spool's child executed exactly once.
	if q.Operator(scan.ID).Counters().Rows != 4 {
		t.Fatalf("spooled child produced %d rows", q.Operator(scan.ID).Counters().Rows)
	}
}

func TestNestedLoopsSemiAntiOuter(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	mk := func(kind plan.LogicalOp) int {
		outer := bb.Filter(bb.TableScan("t", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(600)))
		inner := bb.SeekEq("u", "ix_tid", []expr.Expr{expr.C(0, "t.id")}, nil)
		nl := bb.NestedLoopsNode(kind, outer, inner, nil)
		_, rows := runPlan(t, db, nl)
		return len(rows)
	}
	// t ids 0..599; u.t_id covers 0..499 with 6 rows each.
	if got := mk(plan.LogicalLeftSemiJoin); got != 500 {
		t.Fatalf("NL semi = %d, want 500", got)
	}
	if got := mk(plan.LogicalLeftAntiSemiJoin); got != 100 {
		t.Fatalf("NL anti = %d, want 100", got)
	}
	if got := mk(plan.LogicalLeftOuterJoin); got != 500*6+100 {
		t.Fatalf("NL left outer = %d, want 3100", got)
	}
	if got := mk(plan.LogicalInnerJoin); got != 3000 {
		t.Fatalf("NL inner = %d, want 3000", got)
	}
}

func TestMergeJoinLeftOuter(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	mj := bb.MergeJoinNode(plan.LogicalLeftOuterJoin,
		bb.IndexScan("t", "pk", nil, nil),
		bb.Sort(bb.TableScan("u", nil, nil), []int{1}, nil),
		[]int{0}, []int{1}, nil)
	_, rows := runPlan(t, db, mj)
	// 500 matched t ids × 6 + 500 unmatched padded with NULLs.
	if len(rows) != 3500 {
		t.Fatalf("merge left outer = %d, want 3500", len(rows))
	}
	nulls := 0
	for _, r := range rows {
		if r[3].IsNull() {
			nulls++
		}
	}
	if nulls != 500 {
		t.Fatalf("null-padded rows = %d, want 500", nulls)
	}
}

func TestHashJoinFullOuter(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	// t ids 500..999 never match; u rows all match.
	fo := bb.HashJoinNode(plan.LogicalFullOuterJoin,
		bb.TableScan("t", nil, nil),
		bb.TableScan("u", expr.Lt(expr.C(1, "t_id"), expr.KInt(100)), nil),
		[]int{0}, []int{1}, nil)
	_, rows := runPlan(t, db, fo)
	// Matches: t ids 0..99 × 6 = 600; unmatched probe (t): 900; unmatched
	// build: 0 → 1500 total.
	if len(rows) != 1500 {
		t.Fatalf("full outer = %d, want 1500", len(rows))
	}
}

func TestHashJoinRightSemi(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	rs := bb.HashJoinNode(plan.LogicalRightSemiJoin,
		bb.TableScan("u", nil, nil),
		bb.TableScan("t", nil, nil),
		[]int{1}, []int{0}, nil)
	_, rows := runPlan(t, db, rs)
	// Build rows (t) with at least one probe match: ids 0..499.
	if len(rows) != 500 {
		t.Fatalf("right semi = %d, want 500", len(rows))
	}
	if len(rows[0]) != 3 {
		t.Fatalf("right semi row width %d, want build width 3", len(rows[0]))
	}
}

func TestBatchModeJoinAndAggCheaper(t *testing.T) {
	db := testDB(t)
	run := func(batch bool) int64 {
		bb := b(db)
		j := bb.HashJoinNode(plan.LogicalInnerJoin,
			bb.TableScan("u", nil, nil), bb.TableScan("t", nil, nil),
			[]int{1}, []int{0}, nil)
		j.BatchMode = batch
		agg := bb.HashAgg(j, []int{4}, []expr.AggSpec{{Kind: expr.CountStar}})
		agg.BatchMode = batch
		q, _ := runPlan(t, db, agg)
		return int64(q.Ctx.Clock.Now())
	}
	row := run(false)
	bat := run(true)
	if bat >= row {
		t.Fatalf("batch mode not cheaper: %d vs %d", bat, row)
	}
}

func TestJoinRewindPanics(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	for _, mk := range []func() Operator{
		func() Operator {
			n := bb.HashJoinNode(plan.LogicalInnerJoin,
				bb.TableScan("t", nil, nil), bb.TableScan("u", nil, nil), []int{0}, []int{1}, nil)
			plan.Finalize(n)
			return BuildOperator(n, &Ctx{})
		},
		func() Operator {
			n := bb.MergeJoinNode(plan.LogicalInnerJoin,
				bb.TableScan("t", nil, nil), bb.TableScan("u", nil, nil), []int{0}, []int{1}, nil)
			plan.Finalize(n)
			return BuildOperator(n, &Ctx{})
		},
		func() Operator {
			n := bb.ExchangeNode(bb.TableScan("t", nil, nil), plan.GatherStreams)
			plan.Finalize(n)
			return BuildOperator(n, &Ctx{})
		},
	} {
		op := mk()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T.Rewind did not panic", op)
				}
			}()
			op.Rewind(&Ctx{})
		}()
	}
}

func TestStreamAggScalarOverEmpty(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	empty := bb.Filter(bb.TableScan("t", nil, nil), expr.Eq(expr.C(0, "id"), expr.KInt(-5)))
	sa := bb.StreamAgg(empty, nil, []expr.AggSpec{{Kind: expr.CountStar}, {Kind: expr.Sum, Arg: expr.C(2, "val")}})
	_, rows := runPlan(t, db, sa)
	if len(rows) != 1 || rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Fatalf("scalar stream agg over empty = %v", rows)
	}
}
