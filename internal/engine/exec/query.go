package exec

import (
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// Query is one executing query: a plan, its operator tree, and the
// execution context. The DMV layer snapshots its counters while it runs.
type Query struct {
	Plan *plan.Plan
	Root Operator
	Ctx  *Ctx

	ops     map[int]Operator // by node ID
	opened  bool
	done    bool
	rows    int64
	started sim.Duration
	ended   sim.Duration
}

// NewQuery builds the operator tree for a finalized, estimated plan over
// the database, charging work to the given clock.
func NewQuery(p *plan.Plan, db *storage.Database, cm *opt.CostModel, clock *sim.Clock) *Query {
	q := &Query{
		Plan: p,
		Ctx:  &Ctx{Clock: clock, DB: db, CM: cm},
		ops:  make(map[int]Operator, len(p.Nodes)),
	}
	q.Root = BuildOperator(p.Root, q.Ctx)
	q.index(q.Root)
	return q
}

func (q *Query) index(op Operator) {
	q.ops[op.Counters().NodeID] = op
	switch t := op.(type) {
	case *ridLookup:
		q.index(t.child)
	case *filter:
		q.index(t.child)
	case *computeScalar:
		q.index(t.child)
	case *segment:
		q.index(t.child)
	case *concat:
		for _, k := range t.kids {
			q.index(k)
		}
	case *sortOp:
		q.index(t.child)
	case *topNSort:
		q.index(t.child)
	case *streamAgg:
		q.index(t.child)
	case *hashAgg:
		q.index(t.child)
	case *hashJoin:
		q.index(t.probe)
		q.index(t.build)
	case *mergeJoin:
		q.index(t.left)
		q.index(t.right)
	case *nestedLoops:
		q.index(t.outer)
		q.index(t.inner)
	case *spool:
		q.index(t.child)
	case *bitmap:
		q.index(t.child)
	case *exchange:
		q.index(t.child)
	}
}

// Operator returns the operator for a plan node ID.
func (q *Query) Operator(id int) Operator { return q.ops[id] }

// Counters returns every operator's counters indexed by node ID.
func (q *Query) Counters() map[int]*Counters {
	out := make(map[int]*Counters, len(q.ops))
	for id, op := range q.ops {
		out[id] = op.Counters()
	}
	return out
}

// Started reports whether execution has begun and when.
func (q *Query) Started() (sim.Duration, bool) { return q.started, q.opened }

// Ended reports whether execution has finished and when.
func (q *Query) Ended() (sim.Duration, bool) { return q.ended, q.done }

// Done reports whether the query has finished.
func (q *Query) Done() bool { return q.done }

// RowsReturned is the number of rows the root has produced.
func (q *Query) RowsReturned() int64 { return q.rows }

// Step advances execution by up to n result rows, returning false when the
// query completes. It opens the plan on first call.
func (q *Query) Step(n int) bool {
	if q.done {
		return false
	}
	if !q.opened {
		q.opened = true
		q.started = q.Ctx.Clock.Now()
		q.Root.Open(q.Ctx)
	}
	for i := 0; i < n; i++ {
		_, ok := q.Root.Next(q.Ctx)
		if !ok {
			q.Root.Close(q.Ctx)
			q.done = true
			q.ended = q.Ctx.Clock.Now()
			return false
		}
		q.rows++
	}
	return true
}

// Run executes the query to completion and returns the result row count.
func (q *Query) Run() int64 {
	for q.Step(1 << 12) {
	}
	return q.rows
}

// RunCollect executes to completion collecting result rows (tests and
// examples; result sets in experiments are discarded by Run instead).
func (q *Query) RunCollect() []types.Row {
	if q.done {
		return nil
	}
	if !q.opened {
		q.opened = true
		q.started = q.Ctx.Clock.Now()
		q.Root.Open(q.Ctx)
	}
	var out []types.Row
	for {
		row, ok := q.Root.Next(q.Ctx)
		if !ok {
			break
		}
		out = append(out, row)
		q.rows++
	}
	q.Root.Close(q.Ctx)
	q.done = true
	q.ended = q.Ctx.Clock.Now()
	return out
}

// TrueCardinalities returns each operator's final row count (N_i^true),
// available after the query completes; the experiment harness uses these
// as the oracle denominators in the paper's error metrics.
func (q *Query) TrueCardinalities() map[int]int64 {
	out := make(map[int]int64, len(q.ops))
	for id, op := range q.ops {
		out[id] = op.Counters().Rows
	}
	return out
}
