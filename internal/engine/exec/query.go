package exec

import (
	"fmt"
	"sort"
	"sync/atomic"

	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/trace"
)

// Query is one executing query: a plan, its operator tree, and the
// execution context. The DMV layer snapshots its counters while it runs;
// lifecycle state (rows, state, terminal error) is maintained with atomics
// so monitors on other goroutines can poll it without synchronizing with
// the executor.
type Query struct {
	Plan *plan.Plan
	Root Operator
	Ctx  *Ctx

	ops     map[int]Operator  // by node ID
	ctrs    map[int]*Counters // coordinator counters by node ID, incl. batch-native operators
	all     []*Counters       // every (node, thread) counter row, sorted
	state   atomic.Int32      // QueryState
	failure atomic.Pointer[QueryError]
	rows    atomic.Int64
	started atomic.Int64 // sim.Duration
	ended   atomic.Int64 // sim.Duration
}

// NewQuery builds the operator tree for a finalized, estimated plan over
// the database, charging work to the given clock.
func NewQuery(p *plan.Plan, db *storage.Database, cm *opt.CostModel, clock *sim.Clock) *Query {
	return NewQueryDOP(p, db, cm, clock, 1)
}

// NewQueryDOP is NewQuery at an explicit degree of parallelism: when dop
// exceeds 1, each GatherStreams exchange over a parallel-safe subtree runs
// dop workers over disjoint partitions (see parallel.go). Results, final
// aggregated counters, and the virtual-time stream stay deterministic at
// any DOP; only the simulated elapsed time changes.
func NewQueryDOP(p *plan.Plan, db *storage.Database, cm *opt.CostModel, clock *sim.Clock, dop int) *Query {
	return NewQueryBatch(p, db, cm, clock, dop, 0)
}

// NewQueryBatch is NewQueryDOP with vectorized execution: batchSize > 0
// builds batch-native pipelines (scans, filter, compute scalar, stream
// aggregate) producing up to batchSize rows per call, with checkpoints
// amortized per batch; 0 is classic row-at-a-time execution. Results and
// final counters are identical at any batch size (and byte-identical
// snapshot trajectories at batchSize 1); see DESIGN §4g.
func NewQueryBatch(p *plan.Plan, db *storage.Database, cm *opt.CostModel, clock *sim.Clock, dop, batchSize int) *Query {
	if dop < 1 {
		dop = 1
	}
	if batchSize < 0 {
		batchSize = 0
	}
	q := &Query{
		Plan: p,
		Ctx:  &Ctx{Clock: clock, DB: db, CM: cm, DOP: dop, BatchSize: batchSize},
		ops:  make(map[int]Operator, len(p.Nodes)),
		ctrs: make(map[int]*Counters, len(p.Nodes)),
	}
	q.Root = BuildOperator(p.Root, q.Ctx)
	q.index(q.Root)
	q.all = make([]*Counters, 0, len(q.ctrs)+len(q.Ctx.threadCounters))
	for _, c := range q.ctrs {
		q.all = append(q.all, c)
	}
	q.all = append(q.all, q.Ctx.threadCounters...)
	sort.Slice(q.all, func(i, j int) bool {
		if q.all[i].NodeID != q.all[j].NodeID {
			return q.all[i].NodeID < q.all[j].NodeID
		}
		return q.all[i].Thread < q.all[j].Thread
	})
	return q
}

func (q *Query) index(op Operator) {
	c := op.Counters()
	q.ops[c.NodeID] = op
	q.ctrs[c.NodeID] = c
	switch t := op.(type) {
	case *batchToRow:
		q.indexBatch(t.b)
	case *ridLookup:
		q.index(t.child)
	case *filter:
		q.index(t.child)
	case *computeScalar:
		q.index(t.child)
	case *segment:
		q.index(t.child)
	case *concat:
		for _, k := range t.kids {
			q.index(k)
		}
	case *sortOp:
		q.index(t.child)
	case *topNSort:
		q.index(t.child)
	case *streamAgg:
		q.index(t.child)
	case *hashAgg:
		q.index(t.child)
	case *hashJoin:
		q.index(t.probe)
		q.index(t.build)
	case *mergeJoin:
		q.index(t.left)
		q.index(t.right)
	case *nestedLoops:
		q.index(t.outer)
		q.index(t.inner)
	case *spool:
		q.index(t.child)
	case *bitmap:
		q.index(t.child)
	case *exchange:
		q.index(t.child)
	case *gather:
		// Worker operator instances are not indexed by node ID (there are
		// DOP of them per node); their counter rows are registered in
		// ctx.threadCounters at build time and surface via AllCounters.
	}
}

// indexBatch registers coordinator batch-native operators' counters so DMV
// captures see them. Batch operators are not Operators, so they do not
// enter q.ops (the root of a batch subtree is reachable there through its
// batchToRow adapter, which shares its counters).
func (q *Query) indexBatch(b BatchOperator) {
	c := b.Counters()
	q.ctrs[c.NodeID] = c
	switch t := b.(type) {
	case *batchFilter:
		q.indexBatch(t.child)
	case *batchCompute:
		q.indexBatch(t.child)
	case *batchStreamAgg:
		q.indexBatch(t.child)
	case *rowToBatch:
		q.index(t.op)
	}
}

// Operator returns the operator for a plan node ID.
func (q *Query) Operator(id int) Operator { return q.ops[id] }

// Counters returns every coordinator operator's counters indexed by node
// ID (the thread-0 rows). Parallel worker rows are reached through
// AllCounters.
func (q *Query) Counters() map[int]*Counters {
	out := make(map[int]*Counters, len(q.ctrs))
	for id, c := range q.ctrs {
		out[id] = c
	}
	return out
}

// AllCounters returns every (node, thread) counter row of the query —
// coordinator and parallel-worker instances alike — sorted by (NodeID,
// Thread). This is the DMV's source of truth: one profile row per entry,
// exactly like sys.dm_exec_query_profiles' per-thread rows. The slice is
// built at query construction and stable thereafter; callers must not
// mutate it.
func (q *Query) AllCounters() []*Counters { return q.all }

// State returns the query's lifecycle state; safe from any goroutine.
func (q *Query) State() QueryState { return QueryState(q.state.Load()) }

// Err returns the terminal QueryError, or nil while the query is healthy.
// Safe from any goroutine.
func (q *Query) Err() error {
	if qe := q.failure.Load(); qe != nil {
		return qe
	}
	return nil
}

// Failure returns the typed terminal error, or nil.
func (q *Query) Failure() *QueryError { return q.failure.Load() }

// Cancel requests cancellation with a reason (the DBA's KILL). The
// executing goroutine observes it at its next charge checkpoint — bounded
// by one row's work, even inside a blocking Sort or Hash build — and
// terminates with a KindCancelled QueryError. Safe from any goroutine; a
// no-op once the query is terminal.
func (q *Query) Cancel(reason string) {
	if q.State().Terminal() {
		return
	}
	q.Ctx.CancelCause(reason)
}

// Started reports whether execution has begun and when.
func (q *Query) Started() (sim.Duration, bool) {
	return sim.Duration(q.started.Load()), q.State() != StatePending
}

// Ended reports whether execution has finished (successfully or not) and
// when.
func (q *Query) Ended() (sim.Duration, bool) {
	return sim.Duration(q.ended.Load()), q.State().Terminal()
}

// Done reports whether the query has reached a terminal state.
func (q *Query) Done() bool { return q.State().Terminal() }

// RowsReturned is the number of rows the root has produced.
func (q *Query) RowsReturned() int64 { return q.rows.Load() }

// LockCounters acquires the query's counter mutex so another goroutine can
// read a consistent snapshot of operator counters and the clock while the
// query executes. The executor yields the mutex at every charge
// checkpoint, so acquisition latency is bounded by a handful of rows'
// work. Do not call from the executing goroutine (the clock-observer /
// poller path already sees quiescent counters without locking).
func (q *Query) LockCounters() { q.Ctx.mu.Lock() }

// UnlockCounters releases the counter mutex taken by LockCounters.
func (q *Query) UnlockCounters() { q.Ctx.mu.Unlock() }

// fail records the terminal error and state; first failure wins.
func (q *Query) fail(qe *QueryError) {
	if !q.failure.CompareAndSwap(nil, qe) {
		return
	}
	q.state.Store(int32(qe.State()))
	q.ended.Store(int64(q.Ctx.Clock.Now()))
	q.Ctx.runCleanups()
	q.traceState(qe.State())
}

// traceState records a lifecycle transition on the query's trace track.
func (q *Query) traceState(s QueryState) {
	if q.Ctx.Trace != nil {
		q.Ctx.Trace.Record(trace.KindState, -1, s.String(), 0)
	}
}

// recoverStep is the panic-to-error boundary: any panic escaping operator
// code — typed lifecycle aborts (cancellation, deadline, memory, I/O
// fault) as well as untyped engine bugs — is converted into a QueryError
// identifying the failing plan node, and the query transitions to its
// terminal state. No panic escapes Step/Run/RunCollect.
func (q *Query) recoverStep(err *error) {
	r := recover()
	if r == nil {
		return
	}
	qe, ok := r.(*QueryError)
	if !ok {
		qe = &QueryError{Kind: KindInternal, NodeID: -1, Reason: fmt.Sprintf("panic: %v", r)}
	}
	if qe.NodeID < 0 && q.Ctx.cur != nil {
		qe.NodeID = q.Ctx.cur.NodeID
	}
	qe.At = q.Ctx.Clock.Now()
	q.fail(qe)
	*err = qe
}

// open transitions Pending → Running and opens the plan. Caller holds the
// counter mutex.
func (q *Query) open() {
	if q.State() != StatePending {
		return
	}
	q.state.Store(int32(StateRunning))
	q.started.Store(int64(q.Ctx.Clock.Now()))
	q.traceState(StateRunning)
	q.Root.Open(q.Ctx)
}

// finish transitions Running → Succeeded. Caller holds the counter mutex.
func (q *Query) finish() {
	q.Root.Close(q.Ctx)
	q.state.Store(int32(StateSucceeded))
	q.ended.Store(int64(q.Ctx.Clock.Now()))
	q.Ctx.runCleanups()
	q.traceState(StateSucceeded)
}

// Step advances execution by up to n result rows. It returns (true, nil)
// while the query can still make progress, (false, nil) on successful
// completion, and (false, err) when execution terminated with a
// QueryError. It opens the plan on first call. A non-positive n is a no-op
// progress report: it performs no work (and does not open the plan), it
// only reports whether the query is still runnable — callers looping on
// Step(0) no longer spin forever on a query that can never finish.
func (q *Query) Step(n int) (more bool, err error) {
	if qe := q.failure.Load(); qe != nil {
		return false, qe
	}
	if q.State() == StateSucceeded {
		return false, nil
	}
	if n <= 0 {
		return true, nil
	}
	q.Ctx.mu.Lock()
	defer q.Ctx.mu.Unlock()
	defer q.recoverStep(&err)
	// Re-check under the lock: a concurrent Step may have finished or
	// failed the query while we waited.
	if qe := q.failure.Load(); qe != nil {
		return false, qe
	}
	if q.State() == StateSucceeded {
		return false, nil
	}
	if qe := q.Ctx.interrupted(); qe != nil {
		panic(qe)
	}
	q.open()
	for i := 0; i < n; i++ {
		_, ok := q.Root.Next(q.Ctx)
		if !ok {
			q.finish()
			return false, nil
		}
		q.rows.Add(1)
	}
	return true, nil
}

// Run executes the query to completion and returns the result row count
// together with the terminal error, if any.
func (q *Query) Run() (int64, error) {
	for {
		more, err := q.Step(1 << 12)
		if err != nil {
			return q.rows.Load(), err
		}
		if !more {
			return q.rows.Load(), nil
		}
	}
}

// RunCollect executes to completion collecting result rows (tests and
// examples; result sets in experiments are discarded by Run instead). On
// abnormal termination the rows produced so far are returned alongside the
// error.
func (q *Query) RunCollect() (rows []types.Row, err error) {
	if qe := q.failure.Load(); qe != nil {
		return nil, qe
	}
	if q.State() == StateSucceeded {
		return nil, nil
	}
	q.Ctx.mu.Lock()
	defer q.Ctx.mu.Unlock()
	defer q.recoverStep(&err)
	if qe := q.Ctx.interrupted(); qe != nil {
		panic(qe)
	}
	q.open()
	for {
		row, ok := q.Root.Next(q.Ctx)
		if !ok {
			break
		}
		rows = append(rows, row)
		q.rows.Add(1)
	}
	q.finish()
	return rows, nil
}

// TrueCardinalities returns each operator's final row count (N_i^true),
// available after the query completes; the experiment harness uses these
// as the oracle denominators in the paper's error metrics.
func (q *Query) TrueCardinalities() map[int]int64 {
	out := make(map[int]int64, len(q.ops))
	for _, c := range q.all {
		out[c.NodeID] += c.Rows
	}
	return out
}
