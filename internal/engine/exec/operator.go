package exec

import (
	"fmt"

	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/trace"
)

// Operator is the demand-driven iterator interface (Open/GetNext/Close of
// [11], §3.1.2). Operators carry no error returns: runtime failures —
// cancellation, deadline expiry, an exceeded memory grant, injected I/O
// faults, and plain engine bugs — surface as panics that the Query.Step
// recovery boundary converts into a typed *QueryError identifying the
// failing node. No panic escapes Step/Run/RunCollect.
type Operator interface {
	// Open prepares the operator (and its children). Blocking operators
	// consume their input here.
	Open(ctx *Ctx)
	// Next returns the next output row; ok=false at end of output.
	Next(ctx *Ctx) (row types.Row, ok bool)
	// Close releases the operator after its output is drained.
	Close(ctx *Ctx)
	// Rewind re-positions the operator at its beginning for the current
	// ctx.Bind row; nested loops rewind their inner side per outer row.
	Rewind(ctx *Ctx)
	// Counters exposes the operator's instrumentation.
	Counters() *Counters
}

// base carries the plumbing every operator shares.
type base struct {
	node *plan.Node
	c    Counters
	// tr caches ctx.Trace at first Open so the per-row emit path pays one
	// nil check when tracing is disabled (the zero-cost contract).
	tr *trace.Recorder
}

func (b *base) init(n *plan.Node) {
	b.node = n
	b.c = Counters{
		NodeID:   n.ID,
		Physical: n.Physical,
		Logical:  n.Logical,
		EstRows:  n.EstRows,
	}
}

// Counters returns the operator's counters.
func (b *base) Counters() *Counters { return &b.c }

// opened marks the operator open (first call only) and stamps the time.
// The first open also emits the operator's trace-track Open event (rebinds
// deliberately do not: an inner-side operator re-opening once per outer
// row would flood the ring with no added signal).
func (b *base) opened(ctx *Ctx) {
	if !b.c.Opened {
		b.c.Opened = true
		b.c.OpenedAt = ctx.Clock.Now()
		if ctx.Trace != nil {
			b.tr = ctx.Trace
			b.tr.Record(trace.KindOpen, b.c.NodeID, b.c.Physical.String(), 0)
		}
	}
	b.c.Rebinds++
}

// closed stamps the close time.
func (b *base) closed(ctx *Ctx) {
	if !b.c.Closed {
		b.c.Closed = true
		b.c.ClosedAt = ctx.Clock.Now()
		if b.tr != nil {
			b.tr.Record(trace.KindClose, b.c.NodeID, "", b.c.Rows)
		}
	}
}

// emit counts an output row.
func (b *base) emit() {
	b.c.Rows++
	if b.tr != nil {
		b.tr.RowBatch(b.c.NodeID, b.c.Rows)
	}
}

// BuildOperator constructs the operator tree for a finalized, estimated
// plan. The ctx must be the one later used to run the query (bitmap
// registration happens here). When ctx.BatchSize selects vectorized
// execution, subtrees rooted at batch-native nodes are built as
// BatchOperators behind a batchToRow adapter, so row-mode parents (and the
// query root) are oblivious to the execution mode below them.
func BuildOperator(n *plan.Node, ctx *Ctx) Operator {
	if ctx.BatchSize > 0 && batchNative(n) {
		return newBatchToRow(BuildBatchOperator(n, ctx))
	}
	return buildRowOperator(n, ctx)
}

// buildRowOperator constructs the classic row-at-a-time operator for n.
// Children recurse through BuildOperator and may re-enter batch mode.
func buildRowOperator(n *plan.Node, ctx *Ctx) Operator {
	switch n.Physical {
	case plan.TableScan:
		return newTableScan(n)
	case plan.ClusteredIndexScan, plan.IndexScan:
		return newIndexScan(n)
	case plan.ClusteredIndexSeek, plan.IndexSeek:
		return newIndexSeek(n)
	case plan.RIDLookup:
		return newRIDLookup(n, BuildOperator(n.Children[0], ctx))
	case plan.ConstantScan:
		return newConstantScan(n)
	case plan.ColumnstoreIndexScan:
		return newColumnstoreScan(n)
	case plan.Filter:
		return newFilter(n, BuildOperator(n.Children[0], ctx))
	case plan.ComputeScalar:
		return newComputeScalar(n, BuildOperator(n.Children[0], ctx))
	case plan.SegmentOp:
		return newSegment(n, BuildOperator(n.Children[0], ctx))
	case plan.Concatenation:
		kids := make([]Operator, len(n.Children))
		for i, c := range n.Children {
			kids[i] = BuildOperator(c, ctx)
		}
		return newConcat(n, kids)
	case plan.Sort, plan.DistinctSort:
		return newSort(n, BuildOperator(n.Children[0], ctx))
	case plan.TopNSort:
		return newTopNSort(n, BuildOperator(n.Children[0], ctx))
	case plan.StreamAggregate:
		return newStreamAgg(n, BuildOperator(n.Children[0], ctx))
	case plan.HashAggregate:
		return newHashAgg(n, BuildOperator(n.Children[0], ctx))
	case plan.HashJoin:
		return newHashJoin(n, BuildOperator(n.Children[0], ctx), BuildOperator(n.Children[1], ctx))
	case plan.MergeJoin:
		return newMergeJoin(n, BuildOperator(n.Children[0], ctx), BuildOperator(n.Children[1], ctx))
	case plan.NestedLoops:
		return newNestedLoops(n, BuildOperator(n.Children[0], ctx), BuildOperator(n.Children[1], ctx))
	case plan.TableSpool:
		return newSpool(n, BuildOperator(n.Children[0], ctx))
	case plan.BitmapCreate:
		if ctx.Bitmaps == nil {
			ctx.Bitmaps = make(map[int]*bitmapFilter)
		}
		ctx.Bitmaps[n.ID] = newBitmapFilter()
		return newBitmap(n, BuildOperator(n.Children[0], ctx))
	case plan.Exchange:
		return newExchangeOrGather(n, ctx)
	default:
		panic(fmt.Sprintf("exec: no operator for %v", n.Physical))
	}
}
