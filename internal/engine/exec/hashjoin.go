package exec

import (
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// hashJoin builds a hash table from its build child (children[1]) at Open
// — a separate pipeline, during which any BitmapCreate node in the build
// subtree populates its bitmap — then streams probe rows (children[0])
// against it. Output rows are probe columns followed by build columns.
type hashJoin struct {
	base
	probe, build Operator

	table   map[uint64][]*buildEntry
	order   []*buildEntry // insertion order, for deterministic outer tails
	nullRow types.Row     // build-width null padding for outer joins

	// streaming state
	curMatches []*buildEntry
	matchPos   int
	curProbe   types.Row
	probeDone  bool
	tailPos    int // unmatched-build emission for right/full outer
	matched    bool
}

type buildEntry struct {
	row     types.Row
	matched bool
}

func newHashJoin(n *plan.Node, probe, build Operator) *hashJoin {
	h := &hashJoin{probe: probe, build: build}
	h.init(n)
	return h
}

func (h *hashJoin) Open(ctx *Ctx) {
	h.opened(ctx)
	h.build.Open(ctx)
	h.table = make(map[uint64][]*buildEntry)
	h.order = h.order[:0]
	insert := ctx.CM.CPUHashInsert
	if h.node.BatchMode {
		insert /= batchFactor
	}
	for {
		row, ok := h.build.Next(ctx)
		if !ok {
			break
		}
		h.c.InputRows++
		ctx.chargeCPU(&h.c, insert)
		// The build table is resident for the join's whole lifetime; hash
		// joins do not spill in this engine, so an exceeded grant aborts.
		ctx.reserveMem(&h.c, 1, false)
		e := &buildEntry{row: row}
		hv := row.HashCols(h.node.JoinRightCols)
		h.table[hv] = append(h.table[hv], e)
		h.order = append(h.order, e)
	}
	h.build.Close(ctx)
	if len(h.order) > 0 {
		h.nullRow = make(types.Row, len(h.order[0].row))
	}
	h.probe.Open(ctx)
}

func (h *hashJoin) Rewind(ctx *Ctx) {
	// Hash joins never sit on the inner side of a nested loop in the
	// plans this engine produces; a rebind would need a full re-open.
	panic("exec: hash join cannot be rewound")
}

// lookup returns the build entries whose keys equal the probe row's.
func (h *hashJoin) lookup(ctx *Ctx, probeRow types.Row) []*buildEntry {
	probeCost := ctx.CM.CPUHashProbe
	if h.node.BatchMode {
		probeCost /= batchFactor
	}
	ctx.chargeCPU(&h.c, probeCost)
	hv := probeRow.HashCols(h.node.JoinLeftCols)
	var out []*buildEntry
	for _, e := range h.table[hv] {
		if types.EqualCols(probeRow, e.row, h.node.JoinLeftCols, h.node.JoinRightCols) {
			out = append(out, e)
		}
	}
	return out
}

func (h *hashJoin) Next(ctx *Ctx) (types.Row, bool) {
	kind := h.node.Logical
	for {
		// Emit pending matches for the current probe row.
		for h.matchPos < len(h.curMatches) {
			e := h.curMatches[h.matchPos]
			h.matchPos++
			joined := h.curProbe.Concat(e.row)
			if h.node.Residual != nil && !expr.EvalPred(h.node.Residual, joined) {
				continue
			}
			h.matched = true
			firstForBuild := !e.matched
			e.matched = true
			switch kind {
			case plan.LogicalInnerJoin, plan.LogicalLeftOuterJoin,
				plan.LogicalRightOuterJoin, plan.LogicalFullOuterJoin:
				h.emit()
				return joined, true
			case plan.LogicalLeftSemiJoin:
				h.curMatches = nil // one output per probe row
				h.emit()
				return h.curProbe, true
			case plan.LogicalRightSemiJoin:
				if firstForBuild {
					h.emit()
					return e.row, true
				}
			case plan.LogicalLeftAntiSemiJoin:
				h.curMatches = nil // match found: probe row disqualified
			}
		}
		// Handle probe-row epilogue for outer/anti variants.
		if h.curProbe != nil {
			probeRow := h.curProbe
			h.curProbe = nil
			if !h.matched {
				switch kind {
				case plan.LogicalLeftOuterJoin, plan.LogicalFullOuterJoin:
					pad := h.nullRow
					if pad == nil {
						pad = make(types.Row, h.node.Width-len(probeRow))
					}
					h.emit()
					return probeRow.Concat(pad), true
				case plan.LogicalLeftAntiSemiJoin:
					h.emit()
					return probeRow, true
				}
			}
		}
		if h.probeDone {
			// Unmatched-build tail for right/full outer joins.
			if kind == plan.LogicalRightOuterJoin || kind == plan.LogicalFullOuterJoin {
				for h.tailPos < len(h.order) {
					e := h.order[h.tailPos]
					h.tailPos++
					if !e.matched {
						ctx.chargeCPU(&h.c, ctx.CM.CPUTuple)
						h.emit()
						return h.probeNulls().Concat(e.row), true
					}
				}
			}
			return nil, false
		}
		row, ok := h.probe.Next(ctx)
		if !ok {
			h.probeDone = true
			continue
		}
		h.curProbe = row
		h.matched = false
		h.matchPos = 0
		h.curMatches = h.lookup(ctx, row)
	}
}

func (h *hashJoin) probeNulls() types.Row {
	if len(h.order) == 0 {
		return types.Row{}
	}
	return make(types.Row, h.node.Width-len(h.order[0].row))
}

func (h *hashJoin) Close(ctx *Ctx) {
	if h.c.Closed {
		return
	}
	h.probe.Close(ctx)
	ctx.releaseMem(&h.c)
	h.closed(ctx)
}
