package exec

import (
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// indexSeek descends a B-tree to a key range. Bounds are evaluated against
// ctx.Bind at Open/Rewind time, so the same operator serves standalone
// range seeks (empty bind row) and correlated seeks on the inner side of a
// nested-loops join (the NL sets the bind row before each Rewind).
type indexSeek struct {
	base
	cur      *storage.BTreeCursor
	heap     *storage.Heap
	keyCols  []int
	predCost float64
}

func newIndexSeek(n *plan.Node) *indexSeek {
	s := &indexSeek{}
	s.init(n)
	s.predCost = float64(expr.Cost(n.Pred))
	return s
}

func (s *indexSeek) Open(ctx *Ctx) {
	s.opened(ctx)
	s.c.Rebinds-- // position() below counts the first execution
	s.heap = ctx.DB.Heap(s.node.Table)
	t := ctx.DB.Catalog.MustTable(s.node.Table)
	if ix := t.Index(s.node.Index); ix != nil {
		s.keyCols = ix.KeyCols
	}
	s.position(ctx)
}

func (s *indexSeek) Rewind(ctx *Ctx) { s.position(ctx) }

// position re-evaluates the seek bounds against the bind row and descends
// the tree, charging descent CPU and I/O.
func (s *indexSeek) position(ctx *Ctx) {
	s.c.Rebinds++
	bt := ctx.DB.BTree(s.node.Table, s.node.Index)
	lo := evalKeys(s.node.SeekLo, ctx.Bind)
	hi := evalKeys(s.node.SeekHi, ctx.Bind)
	s.cur = bt.Seek(lo, s.node.SeekLoInc, ctx.DB.Pool)
	if hi != nil {
		s.cur.SetUpper(hi, s.node.SeekHiInc)
	}
	ctx.chargeCPU(&s.c, float64(bt.Height())*ctx.CM.CPUSeekLevel)
	ctx.chargeIO(&s.c, s.cur.DrainIO())
}

func evalKeys(keys []expr.Expr, bind types.Row) []types.Value {
	if len(keys) == 0 {
		return nil
	}
	out := make([]types.Value, len(keys))
	for i, k := range keys {
		out[i] = k.Eval(bind)
	}
	return out
}

func (s *indexSeek) Next(ctx *Ctx) (types.Row, bool) {
	for {
		e, ok := s.cur.Next()
		ctx.chargeIO(&s.c, s.cur.DrainIO())
		if !ok {
			return nil, false
		}
		var row types.Row
		if s.node.KeysOnly {
			row = append(append(make(types.Row, 0, len(e.Key)+1), e.Key...), types.Int(e.RID))
		} else if e.Row != nil {
			row = e.Row
		} else {
			row = s.heap.RowNoIO(e.RID)
		}
		ctx.chargeCPU(&s.c, ctx.CM.CPUTuple)
		if s.node.Pred != nil {
			ctx.chargeCPU(&s.c, s.predCost*ctx.CM.CPUExprUnit)
			if !expr.EvalPred(s.node.Pred, row) {
				continue
			}
		}
		s.emit()
		return row, true
	}
}

func (s *indexSeek) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.closed(ctx)
}

// ridLookup resolves each input row's trailing RID column to the full heap
// row (bookmark lookup), charging a random page read per row.
type ridLookup struct {
	base
	child Operator
}

func newRIDLookup(n *plan.Node, child Operator) *ridLookup {
	l := &ridLookup{child: child}
	l.init(n)
	return l
}

func (l *ridLookup) Open(ctx *Ctx) {
	l.opened(ctx)
	l.child.Open(ctx)
}

func (l *ridLookup) Rewind(ctx *Ctx) {
	l.c.Rebinds++
	l.child.Rewind(ctx)
}

func (l *ridLookup) Next(ctx *Ctx) (types.Row, bool) {
	for {
		in, ok := l.child.Next(ctx)
		if !ok {
			return nil, false
		}
		rid, _ := in[len(in)-1].AsInt()
		var io storage.IOCounts
		row := ctx.DB.Heap(l.node.Table).Get(rid, ctx.DB.Pool, &io)
		ctx.chargeIO(&l.c, io)
		ctx.chargeCPU(&l.c, ctx.CM.CPUTuple)
		if l.node.Pred != nil && !expr.EvalPred(l.node.Pred, row) {
			continue
		}
		l.emit()
		return row, true
	}
}

func (l *ridLookup) Close(ctx *Ctx) {
	if l.c.Closed {
		return
	}
	l.child.Close(ctx)
	l.closed(ctx)
}
