package exec

import (
	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/trace"
)

// spool caches its child's rows and replays them on rewind, so the child
// executes once even when the spool sits on the inner side of a nested
// loop. Eager spools (blocking) drain the child at Open; lazy spools cache
// incrementally. A spool's Rows counter counts every emitted row including
// replays, which is why Appendix A bounds it by UB_child × UB_outer when
// it sits under a join.
type spool struct {
	base
	child     Operator
	cache     []types.Row
	pos       int
	childDone bool
	// overBudget: the cache outgrew the memory grant; further appends are
	// written through to simulated disk (spools are disk-backed worktables
	// in the real engine, so they degrade rather than abort).
	overBudget bool
}

// cacheRow appends a row to the spool's worktable, charging spill I/O once
// the cache exceeds the memory grant.
func (s *spool) cacheRow(ctx *Ctx, row types.Row) {
	if !s.overBudget && !ctx.reserveMem(&s.c, 1, true) {
		if ctx.Trace != nil {
			ctx.Trace.Record(trace.KindMemDegrade, s.c.NodeID, "spool exceeds grant: writing through to worktable", 0)
		}
		s.overBudget = true
	}
	if s.overBudget {
		ctx.chargeCPU(&s.c, ctx.CM.SpillIOPerRow)
	}
	s.cache = append(s.cache, row)
}

func newSpool(n *plan.Node, child Operator) *spool {
	s := &spool{child: child}
	s.init(n)
	return s
}

func (s *spool) Open(ctx *Ctx) {
	s.opened(ctx)
	s.child.Open(ctx)
	if s.node.SpoolEager {
		for {
			row, ok := s.child.Next(ctx)
			if !ok {
				break
			}
			s.c.InputRows++
			ctx.chargeCPU(&s.c, ctx.CM.CPUSpoolRow)
			s.cacheRow(ctx, row)
		}
		s.childDone = true
		s.child.Close(ctx) // eager spool drained its input: shut it down
	}
}

func (s *spool) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.pos = 0
}

func (s *spool) Next(ctx *Ctx) (types.Row, bool) {
	if s.pos < len(s.cache) {
		row := s.cache[s.pos]
		s.pos++
		ctx.chargeCPU(&s.c, ctx.CM.CPUSpoolRow)
		s.emit()
		return row, true
	}
	if s.childDone {
		return nil, false
	}
	row, ok := s.child.Next(ctx)
	if !ok {
		s.childDone = true
		return nil, false
	}
	s.c.InputRows++
	ctx.chargeCPU(&s.c, ctx.CM.CPUSpoolRow+ctx.CM.CPUTuple)
	s.cacheRow(ctx, row)
	s.pos++
	s.emit()
	return row, true
}

func (s *spool) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.child.Close(ctx)
	ctx.releaseMem(&s.c)
	s.closed(ctx)
}

// exchange models the Parallelism operator (§4.4, Figs. 7-8): producer
// threads run ahead of the consumer, so the child's GetNext count leads
// the exchange's by the buffer occupancy — up to orders of magnitude early
// in execution. The simulation pulls `startup` child rows before emitting
// anything, then `ahead` child rows per row emitted.
type exchange struct {
	base
	child     Operator
	queue     []types.Row
	head      int
	childDone bool
	started   bool
}

const (
	defaultExchangeStartup = 2048
	defaultExchangeAhead   = 2
)

func newExchange(n *plan.Node, child Operator) *exchange {
	e := &exchange{child: child}
	e.init(n)
	return e
}

func (e *exchange) Open(ctx *Ctx) {
	e.opened(ctx)
	e.child.Open(ctx)
}

func (e *exchange) Rewind(ctx *Ctx) {
	panic("exec: exchange cannot be rewound")
}

func (e *exchange) pull(ctx *Ctx, n int) {
	for i := 0; i < n && !e.childDone; i++ {
		row, ok := e.child.Next(ctx)
		if !ok {
			e.childDone = true
			break
		}
		e.c.InputRows++
		ctx.chargeCPU(&e.c, ctx.CM.CPUExchangeRow)
		e.queue = append(e.queue, row)
	}
	e.c.BufferedRows = int64(len(e.queue) - e.head)
}

func (e *exchange) Next(ctx *Ctx) (types.Row, bool) {
	if !e.started {
		e.started = true
		startup := e.node.ExchangeStartup
		if startup == 0 {
			startup = defaultExchangeStartup
		}
		e.pull(ctx, startup)
	}
	if e.head >= len(e.queue) {
		if e.childDone {
			return nil, false
		}
		e.pull(ctx, 1)
		if e.head >= len(e.queue) {
			return nil, false
		}
	}
	row := e.queue[e.head]
	e.head++
	ahead := e.node.ExchangeAhead
	if ahead == 0 {
		ahead = defaultExchangeAhead
	}
	e.pull(ctx, ahead)
	ctx.chargeCPU(&e.c, ctx.CM.CPUTuple)
	e.emit()
	return row, true
}

func (e *exchange) Close(ctx *Ctx) {
	if e.c.Closed {
		return
	}
	e.child.Close(ctx)
	e.closed(ctx)
}
