package exec

import (
	"fmt"
	"sort"

	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/trace"
)

// This file implements intra-query parallelism: the gather operator runs a
// GatherStreams exchange's subtree on DOP worker goroutines, each scanning
// a disjoint contiguous partition of the input object against a private
// sub-clock, and merges their output deterministically on the coordinator.
//
// Determinism at any DOP is the design center, because the whole repo's
// experiment methodology rests on bit-reproducible runs:
//
//   - Workers only compute inside a fork-join batch round: the coordinator
//     sends a batch request to each worker's channel and blocks until every
//     response arrives. Channel receives are the happens-before edges, so
//     there is no data race and no schedule-dependent interleaving —
//     workers never touch shared state between rounds.
//   - Each worker charges its work to a private sim.Clock seeded at the
//     zone's start time. The shared query clock is advanced only by the
//     coordinator, while all workers are parked, using max(now, row time):
//     virtual time flows from worker sub-clocks into the query clock in a
//     fixed worker order, so poller observations are identical run to run.
//   - The gather is order-preserving: worker 0's rows are emitted before
//     worker 1's, and partitions are contiguous ranges, so the merged
//     output is byte-identical to the serial scan order. When the zone is
//     drained the shared clock advances to the maximum worker end time —
//     the fork-join barrier — with ties broken by worker order.
//
// Zones that the rewrite cannot prove safe (and every pre-existing
// Exchange node in the workloads) fall back to the serial exchange in
// spool.go.

// GatherBatchRows is how many rows a coordinator batch request asks a
// worker for. Larger batches amortize channel round-trips; the value has
// no effect on results or on virtual time of fully-consumed zones, only on
// real-time constant factors — and it bounds the run-ahead of a zone whose
// consumer stops early (at most DOP batches of extra rows are produced,
// exactly as the serial exchange runs ahead of its consumer). Exported so
// differential tests can state that bound.
const GatherBatchRows = 512

// timedRow is a worker output row stamped with the worker's virtual time
// after producing it; the coordinator replays those stamps onto the shared
// clock as it emits the row.
type timedRow struct {
	row types.Row
	at  sim.Duration
}

// workerResp is one batch of rows from a worker: done marks the worker's
// current root as exhausted (and closed); err carries a typed failure that
// the coordinator re-panics on its own goroutine.
type workerResp struct {
	rows []timedRow
	done bool
	err  *QueryError
}

// zoneWorker is one parallel worker: a private context (clock, buffer-pool
// view, partition assignment) plus the operator tree it drives. The
// coordinator requests batches over req and receives them over resp;
// outside an in-flight request the worker goroutine is parked and its
// state may be read (trace merge) or mutated (stage swap) freely.
type zoneWorker struct {
	id   int
	ctx  *Ctx
	root Operator
	// stage2 is the post-repartition tree of a two-stage aggregate zone,
	// swapped in as root once stage 1 is drained and routed.
	stage2  *producerWrap
	req     chan int
	resp    chan workerResp
	running bool

	// opened/srvDone are goroutine-local to serve().
	opened  bool
	srvDone bool

	// Coordinator-side view of the worker's stream.
	queue []timedRow
	head  int
	done  bool
}

func (w *zoneWorker) start() {
	if !w.running {
		w.running = true
		go w.run()
	}
}

func (w *zoneWorker) run() {
	for n := range w.req {
		w.resp <- w.serve(n)
	}
}

// serve produces up to n rows from the worker's current root on the
// worker's own clock. Panics — typed lifecycle aborts and engine bugs
// alike — are converted to a QueryError blamed on the worker's current
// operator, stamped with the worker clock, and shipped to the coordinator.
func (w *zoneWorker) serve(n int) (resp workerResp) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		qe, ok := r.(*QueryError)
		if !ok {
			qe = &QueryError{Kind: KindInternal, NodeID: -1, Reason: fmt.Sprintf("panic: %v", r)}
		}
		if qe.NodeID < 0 && w.ctx.cur != nil {
			qe.NodeID = w.ctx.cur.NodeID
		}
		qe.At = w.ctx.Clock.Now()
		w.srvDone = true
		resp = workerResp{err: qe, done: true}
	}()
	if w.srvDone {
		return workerResp{done: true}
	}
	if !w.opened {
		w.opened = true
		w.root.Open(w.ctx)
	}
	rows := make([]timedRow, 0, n)
	for len(rows) < n {
		row, ok := w.root.Next(w.ctx)
		if !ok {
			w.root.Close(w.ctx)
			w.srvDone = true
			return workerResp{rows: rows, done: true}
		}
		rows = append(rows, timedRow{row: row, at: w.ctx.Clock.Now()})
	}
	return workerResp{rows: rows}
}

// setRoot swaps the worker's tree for the next stage. Called by the
// coordinator while the worker is parked between rounds; the next req send
// publishes the change.
func (w *zoneWorker) setRoot(op Operator) {
	w.root = op
	w.opened = false
	w.srvDone = false
	w.done = false
}

// producerWrap sits at the top of each worker tree, charging the exchange's
// producer-side cost (CPUExchangeRow per row crossing the exchange) to a
// per-thread counter row for the exchange node — the worker's half of the
// serial exchange's accounting, so aggregated totals match serial runs.
type producerWrap struct {
	node  *plan.Node
	c     *Counters
	child Operator
}

func (p *producerWrap) Counters() *Counters { return p.c }

func (p *producerWrap) Open(ctx *Ctx) {
	if !p.c.Opened {
		p.c.Opened = true
		p.c.OpenedAt = ctx.Clock.Now()
		if ctx.Trace != nil {
			ctx.Trace.Record(trace.KindOpen, p.c.NodeID, p.c.Physical.String(), 0)
		}
	}
	p.c.Rebinds++
	p.child.Open(ctx)
}

func (p *producerWrap) Next(ctx *Ctx) (types.Row, bool) {
	row, ok := p.child.Next(ctx)
	if !ok {
		return nil, false
	}
	p.c.InputRows++
	ctx.chargeCPU(p.c, ctx.CM.CPUExchangeRow)
	return row, true
}

func (p *producerWrap) Close(ctx *Ctx) {
	p.child.Close(ctx)
	if !p.c.Closed {
		p.c.Closed = true
		p.c.ClosedAt = ctx.Clock.Now()
		if ctx.Trace != nil {
			ctx.Trace.Record(trace.KindClose, p.c.NodeID, "", p.c.InputRows)
		}
	}
}

func (p *producerWrap) Rewind(ctx *Ctx) {
	panic(&QueryError{Kind: KindInternal, NodeID: p.c.NodeID, Reason: "exchange cannot be rewound"})
}

// bucketSource replays the hash bucket routed to one worker during a
// repartition's stage-2, charging consumer-side CPU to the same per-thread
// exchange counter row its stage-1 producer used.
type bucketSource struct {
	c    *Counters
	rows []types.Row
	pos  int
}

func (b *bucketSource) Counters() *Counters { return b.c }

func (b *bucketSource) Open(ctx *Ctx) {}

func (b *bucketSource) Next(ctx *Ctx) (types.Row, bool) {
	if b.pos >= len(b.rows) {
		return nil, false
	}
	row := b.rows[b.pos]
	b.pos++
	ctx.chargeCPU(b.c, ctx.CM.CPUTuple)
	b.c.Rows++
	return row, true
}

func (b *bucketSource) Close(ctx *Ctx) {}
func (b *bucketSource) Rewind(ctx *Ctx) {
	panic(&QueryError{Kind: KindInternal, NodeID: b.c.NodeID, Reason: "exchange cannot be rewound"})
}

// gather is the parallel GatherStreams exchange: DOP workers over disjoint
// partitions, order-preserving deterministic merge on the coordinator.
type gather struct {
	base
	rootCtx *Ctx
	workers []*zoneWorker
	// rep is the RepartitionStreams node of a two-stage aggregate zone, nil
	// for a plain scan zone; bsrcs are the per-worker stage-2 sources its
	// routed buckets are loaded into.
	rep   *plan.Node
	bsrcs []*bucketSource

	cur      int // worker currently being drained (order-preserving merge)
	started  bool
	zoneDone bool
	shutDown bool
}

// newExchangeOrGather builds the operator for an Exchange plan node: a
// parallel gather when the query runs at DOP > 1 and the subtree is a
// provably safe zone, the serial exchange otherwise (including every
// repartition without a two-stage shape and all pre-existing workload
// exchanges).
func newExchangeOrGather(n *plan.Node, ctx *Ctx) Operator {
	if ctx.DOP > 1 && n.ExchangeKind == plan.GatherStreams {
		if g := tryNewGather(n, ctx, ctx.DOP); g != nil {
			return g
		}
	}
	return newExchange(n, BuildOperator(n.Children[0], ctx))
}

// parseZone checks that the subtree under a gather is a safe parallel
// zone and locates its repartition point, if any. Safe shapes are either a
// partitionable scan chain, or Filter/ComputeScalar over a grouped
// HashAggregate directly over a hash repartition (on exactly the group
// columns — the invariant that makes per-worker aggregation exact) over a
// partitionable scan chain.
func parseZone(n *plan.Node) (rep *plan.Node, ok bool) {
	if plan.Partitionable(n) {
		return nil, true
	}
	cur := n
	for cur.Physical == plan.Filter || cur.Physical == plan.ComputeScalar {
		if len(cur.Children) != 1 {
			return nil, false
		}
		cur = cur.Children[0]
	}
	if cur.Physical != plan.HashAggregate || len(cur.GroupCols) == 0 || len(cur.Children) != 1 {
		return nil, false
	}
	rep = cur.Children[0]
	if rep.Physical != plan.Exchange || rep.ExchangeKind != plan.RepartitionStreams {
		return nil, false
	}
	if len(rep.ExchangeHashCols) != len(cur.GroupCols) {
		return nil, false
	}
	for i, c := range rep.ExchangeHashCols {
		if c != cur.GroupCols[i] {
			return nil, false
		}
	}
	if len(rep.Children) != 1 || !plan.Partitionable(rep.Children[0]) {
		return nil, false
	}
	return rep, true
}

// buildStage2 rebuilds the zone spine above the repartition for one worker,
// grafting the worker's bucket source where the repartition sits.
func buildStage2(n, rep *plan.Node, src Operator) Operator {
	if n == rep {
		return src
	}
	child := buildStage2(n.Children[0], rep, src)
	switch n.Physical {
	case plan.Filter:
		return newFilter(n, child)
	case plan.ComputeScalar:
		return newComputeScalar(n, child)
	case plan.HashAggregate:
		return newHashAgg(n, child)
	}
	panic(fmt.Sprintf("exec: unexpected stage-2 operator %v", n.Physical))
}

// tryNewGather builds the parallel gather for an Exchange node, or returns
// nil when the subtree is not a safe zone. Worker trees (and therefore all
// per-thread counter rows) are built eagerly so the DMV sees every (node,
// thread) row from the first poll, long before the zone starts.
func tryNewGather(n *plan.Node, ctx *Ctx, dop int) *gather {
	rep, ok := parseZone(n.Children[0])
	if !ok {
		return nil
	}
	g := &gather{rootCtx: ctx, rep: rep}
	g.init(n)
	seen := make(map[*Counters]bool)
	for w := 0; w < dop; w++ {
		wctx := &Ctx{
			DB:        ctx.DB.WorkerView(),
			CM:        ctx.CM,
			BatchSize: ctx.BatchSize,
			Thread:    w + 1,
			Part:      w,
			Parts:     dop,
			parent:    ctx,
		}
		zw := &zoneWorker{
			id:   w,
			ctx:  wctx,
			req:  make(chan int),
			resp: make(chan workerResp, 1),
		}
		prodCtr := &Counters{
			NodeID: n.ID, Thread: w + 1,
			Physical: n.Physical, Logical: n.Logical, EstRows: n.EstRows,
		}
		if rep == nil {
			zw.root = &producerWrap{node: n, c: prodCtr, child: BuildOperator(n.Children[0], wctx)}
		} else {
			repCtr := &Counters{
				NodeID: rep.ID, Thread: w + 1,
				Physical: rep.Physical, Logical: rep.Logical, EstRows: rep.EstRows,
			}
			zw.root = &producerWrap{node: rep, c: repCtr, child: BuildOperator(rep.Children[0], wctx)}
			bs := &bucketSource{c: repCtr}
			zw.stage2 = &producerWrap{node: n, c: prodCtr, child: buildStage2(n.Children[0], rep, bs)}
			g.bsrcs = append(g.bsrcs, bs)
		}
		g.workers = append(g.workers, zw)
		registerWorkerCounters(ctx, zw.root, w+1, seen)
		if zw.stage2 != nil {
			registerWorkerCounters(ctx, zw.stage2, w+1, seen)
		}
	}
	return g
}

// registerWorkerCounters walks a worker tree, stamps every counter set
// with the worker's thread ordinal (BuildOperator-built zone operators
// default to thread 0), and registers each distinct set with the
// coordinator context for DMV capture.
func registerWorkerCounters(ctx *Ctx, op Operator, thread int, seen map[*Counters]bool) {
	if op == nil {
		return
	}
	if c := op.Counters(); !seen[c] {
		seen[c] = true
		c.Thread = thread
		ctx.threadCounters = append(ctx.threadCounters, c)
	}
	switch t := op.(type) {
	case *producerWrap:
		registerWorkerCounters(ctx, t.child, thread, seen)
	case *filter:
		registerWorkerCounters(ctx, t.child, thread, seen)
	case *computeScalar:
		registerWorkerCounters(ctx, t.child, thread, seen)
	case *hashAgg:
		registerWorkerCounters(ctx, t.child, thread, seen)
	case *batchToRow:
		registerBatchWorkerCounters(ctx, t.b, thread, seen)
	}
}

// registerBatchWorkerCounters is registerWorkerCounters over a batch
// subtree inside a worker tree.
func registerBatchWorkerCounters(ctx *Ctx, b BatchOperator, thread int, seen map[*Counters]bool) {
	if b == nil {
		return
	}
	if c := b.Counters(); !seen[c] {
		seen[c] = true
		c.Thread = thread
		ctx.threadCounters = append(ctx.threadCounters, c)
	}
	switch t := b.(type) {
	case *batchFilter:
		registerBatchWorkerCounters(ctx, t.child, thread, seen)
	case *batchCompute:
		registerBatchWorkerCounters(ctx, t.child, thread, seen)
	case *batchStreamAgg:
		registerBatchWorkerCounters(ctx, t.child, thread, seen)
	case *rowToBatch:
		registerWorkerCounters(ctx, t.op, thread, seen)
	}
}

func (g *gather) Open(ctx *Ctx) {
	g.opened(ctx)
	// Shutdown must run even on the failure path, where Close is never
	// called; the cleanup hooks fire at any terminal state.
	ctx.onCleanup(g.shutdown)
}

// zoneStart is the lazy fork point, run at the first Next: worker clocks
// are seeded with the zone's start time, late-bound context (deadline,
// memory grant, tracing — all settable after NewQuery) is copied down, the
// goroutines launch, and a repartition zone runs its stage-1 to the
// barrier.
func (g *gather) zoneStart(ctx *Ctx) {
	g.started = true
	t0 := ctx.Clock.Now()
	for _, w := range g.workers {
		w.ctx.Clock = sim.NewClockAt(t0)
		w.ctx.Deadline = ctx.Deadline
		w.ctx.MemGrantRows = ctx.MemGrantRows
		if ctx.Chaos != nil {
			w.ctx.Chaos = ctx.Chaos.Fork(w.ctx.Thread)
		}
		if ctx.Trace != nil {
			w.ctx.Trace = trace.NewRecorder(w.ctx.Clock, 0)
		}
		w.start()
	}
	if g.rep != nil {
		g.repartition(ctx)
	}
	// Initial round: one batch request to every worker, so all DOP
	// goroutines genuinely compute concurrently; refills after this go to
	// the worker currently being drained, bounding buffered memory.
	g.roundAll()
}

// roundAll sends a batch request to every non-exhausted worker and absorbs
// all responses before surfacing the first error (in worker order), so no
// request is left in flight when the coordinator panics.
func (g *gather) roundAll() {
	var sent []*zoneWorker
	for _, w := range g.workers {
		if !w.done {
			w.req <- GatherBatchRows
			sent = append(sent, w)
		}
	}
	var firstErr *QueryError
	for _, w := range sent {
		r := <-w.resp
		if err := g.absorb(w, r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		panic(firstErr)
	}
}

func (g *gather) absorb(w *zoneWorker, r workerResp) *QueryError {
	w.queue = append(w.queue, r.rows...)
	if r.done {
		w.done = true
	}
	return r.err
}

func (g *gather) refill(w *zoneWorker) {
	w.req <- GatherBatchRows
	r := <-w.resp
	if err := g.absorb(w, r); err != nil {
		panic(err)
	}
}

// repartition drains every worker's stage-1 tree, routes each produced row
// to its hash bucket in deterministic (worker, sequence) order, then
// advances all workers to the stage barrier — the maximum stage-1 end time
// — and swaps in the stage-2 trees over the routed buckets.
func (g *gather) repartition(ctx *Ctx) {
	nw := len(g.workers)
	buckets := make([][]types.Row, nw)
	active := nw
	for active > 0 {
		var sent []*zoneWorker
		for _, w := range g.workers {
			if !w.done {
				w.req <- GatherBatchRows
				sent = append(sent, w)
			}
		}
		var firstErr *QueryError
		for _, w := range sent {
			r := <-w.resp
			for _, tr := range r.rows {
				b := int(tr.row.HashCols(g.rep.ExchangeHashCols) % uint64(nw))
				buckets[b] = append(buckets[b], tr.row)
			}
			if r.done {
				w.done = true
				active--
			}
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		}
		if firstErr != nil {
			panic(firstErr)
		}
	}
	var barrier sim.Duration
	for _, w := range g.workers {
		if t := w.ctx.Clock.Now(); t > barrier {
			barrier = t
		}
	}
	for i, w := range g.workers {
		if d := barrier - w.ctx.Clock.Now(); d > 0 {
			w.ctx.Clock.Advance(d)
		}
		g.bsrcs[i].rows = buckets[i]
		w.setRoot(w.stage2)
	}
}

func (g *gather) buffered() int64 {
	var n int64
	for _, w := range g.workers {
		n += int64(len(w.queue) - w.head)
	}
	return n
}

func (g *gather) Next(ctx *Ctx) (types.Row, bool) {
	if !g.started {
		g.zoneStart(ctx)
	}
	for {
		if g.cur >= len(g.workers) {
			g.finishZone(ctx)
			return nil, false
		}
		w := g.workers[g.cur]
		if w.head < len(w.queue) {
			tr := w.queue[w.head]
			w.head++
			if w.head == len(w.queue) {
				w.queue = w.queue[:0]
				w.head = 0
			}
			// Sync the shared clock up to the worker time that produced
			// this row; time never flows backwards because rows are
			// consumed in nondecreasing per-worker time order and the max()
			// guard absorbs cross-worker skew.
			if d := tr.at - ctx.Clock.Now(); d > 0 {
				ctx.Clock.Advance(d)
			}
			g.c.BufferedRows = g.buffered()
			ctx.chargeCPU(&g.c, ctx.CM.CPUTuple)
			g.emit()
			return tr.row, true
		}
		if w.done {
			g.cur++
			continue
		}
		g.refill(w)
	}
}

// finishZone advances the shared clock to the fork-join barrier — the
// maximum worker end time, scanned in fixed worker order — and releases
// the worker goroutines.
func (g *gather) finishZone(ctx *Ctx) {
	if g.zoneDone {
		return
	}
	g.zoneDone = true
	var end sim.Duration
	for _, w := range g.workers {
		if t := w.ctx.Clock.Now(); t > end {
			end = t
		}
	}
	if d := end - ctx.Clock.Now(); d > 0 {
		ctx.Clock.Advance(d)
	}
	g.c.BufferedRows = 0
	g.shutdown()
}

func (g *gather) Close(ctx *Ctx) {
	if g.c.Closed {
		return
	}
	if !g.started {
		// The zone was opened but never pulled (e.g. a parent short-
		// circuited). Open and close the worker trees without running them,
		// exactly as a serial exchange's Close reaches its never-pulled
		// child, so every per-thread row reports Closed and the estimator's
		// completion invariant holds at any DOP.
		g.started = true
		t0 := ctx.Clock.Now()
		for _, w := range g.workers {
			w.ctx.Clock = sim.NewClockAt(t0)
			w.root.Open(w.ctx)
			w.root.Close(w.ctx)
			if w.stage2 != nil {
				w.stage2.Open(w.ctx)
				w.stage2.Close(w.ctx)
			}
		}
	}
	g.shutdown()
	g.closed(ctx)
}

// shutdown releases worker goroutines and merges worker trace streams into
// the query recorder; idempotent, and run from the query's terminal-state
// cleanup hooks so the failure path leaks neither goroutines nor events.
func (g *gather) shutdown() {
	if g.shutDown {
		return
	}
	g.shutDown = true
	for _, w := range g.workers {
		if w.running {
			close(w.req)
		}
	}
	g.mergeTraces()
}

// mergeTraces folds the per-worker event streams into the query's
// recorder, tagging each event with its thread and interleaving across
// workers by (time, thread) — a total, deterministic order.
func (g *gather) mergeTraces() {
	if g.rootCtx.Trace == nil {
		return
	}
	var all []trace.Event
	for _, w := range g.workers {
		if w.ctx.Trace == nil {
			continue
		}
		evs := w.ctx.Trace.Events()
		for i := range evs {
			evs[i].Thread = w.id + 1
		}
		all = append(all, evs...)
	}
	if len(all) == 0 {
		return
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Thread < all[j].Thread
	})
	g.rootCtx.Trace.Ingest(all)
}

func (g *gather) Rewind(ctx *Ctx) {
	panic(&QueryError{Kind: KindInternal, NodeID: g.c.NodeID, Reason: "exchange cannot be rewound"})
}
