// Package exec is the execution engine: demand-driven iterator-model
// physical operators (the GetNext model of §3.1.2) instrumented with the
// per-operator counters the paper's DMV exposes. All work is charged to a
// virtual clock through the shared cost model, so experiments are
// deterministic and a "long-running" query costs microseconds of real time.
package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/trace"
)

// Counters is the per-operator instrumentation, mirroring the columns of
// sys.dm_exec_query_profiles the paper's client polls (§2.1): actual and
// estimated rows, elapsed/CPU time, logical and physical reads, and the
// columnstore segment counts of §4.7.
type Counters struct {
	NodeID int
	// Thread is the DMV thread ordinal this counter set belongs to: 0 for
	// the coordinator (serial) instance of an operator, w+1 for parallel
	// worker w's instance. The DMV emits one profile row per (node,
	// thread), matching sys.dm_exec_query_profiles' shape.
	Thread   int
	Physical plan.PhysicalOp
	Logical  plan.LogicalOp
	EstRows  float64

	// Rows is k_i: the number of rows output so far (GetNext calls that
	// returned a row).
	Rows int64
	// InputRows counts rows consumed by stop-and-go phases (sort input,
	// hash build) — internal instrumentation; the DMV derives input counts
	// from child operators just as the paper's client does.
	InputRows int64
	// Rebinds counts executions of this operator (inner side of nested
	// loops re-opens once per outer row).
	Rebinds int64

	CPUTime sim.Duration
	// IOTime is the virtual time this operator spent on page/segment I/O.
	IOTime sim.Duration
	// OpenedAt is when Open was entered. For operators whose Open
	// recursively opens a deep subtree this long precedes any actual
	// work; FirstActiveAt records the first instant the operator itself
	// charged CPU or I/O — the start of its true active window.
	OpenedAt      sim.Duration
	FirstActiveAt sim.Duration
	FirstActive   bool
	LastActive    sim.Duration
	ClosedAt      sim.Duration
	Opened        bool
	Closed        bool

	LogicalReads  int64
	PhysicalReads int64
	// PagesTotal is the total logical reads a full scan of this operator's
	// input object requires, known when the scan opens; the denominator of
	// the §4.3 I/O-fraction progress estimate.
	PagesTotal int64

	SegmentsProcessed int64
	SegmentsTotal     int64

	// IORetries counts transient page-read faults this operator absorbed:
	// each one is a re-issued physical read plus a backoff charged to the
	// virtual clock by the fault-injection harness.
	IORetries int64

	// MemRows is the operator's current simulated workspace reservation in
	// rows, charged against the query's memory grant.
	MemRows int64

	// InternalDone/InternalTotal expose a blocking operator's internal
	// (neither-input-nor-output) work — e.g. a spilled sort's external
	// merge rows. The real DMV does not expose these; the paper's §7
	// names them as the first future-work item, and the extended
	// estimator option InternalCounters consumes them.
	InternalDone  int64
	InternalTotal int64

	// BufferedRows is the operator's current internal buffer occupancy
	// (exchanges, NL outer batches). The paper notes (§7) this is NOT
	// exposed by the real DMV; the DMV layer here omits it likewise, but
	// tests use it to validate semi-blocking behavior.
	BufferedRows int64
}

// ChargeFault is what an OpChaos injector asks a charge checkpoint to do:
// stall the operator for Stall nanoseconds of virtual time, crash the
// executing thread, or both zero values for "no fault here".
type ChargeFault struct {
	// Stall burns virtual time attributed to the current operator — a slow
	// operator (external interference, scheduler preemption) that makes
	// progress denominators drift without changing any row counts.
	Stall sim.Duration
	// Crash kills the executing thread with a typed KindWorkerCrash panic.
	// On a parallel worker the gather's supervision converts it into a
	// coordinator-side QueryError after releasing every worker goroutine.
	Crash bool
}

// OpChaos is the exec-layer fault injector interface implemented by
// internal/chaos. All methods are called from the single goroutine that
// owns the Ctx (coordinator or one worker), so implementations need no
// locking; Fork derives an independent deterministic injector for a
// parallel worker thread. A nil Ctx.Chaos disables injection at the cost
// of one pointer check per charge.
type OpChaos interface {
	// OnCharge is consulted at every charge checkpoint.
	OnCharge(nodeID int) ChargeFault
	// OnSpillWrite is consulted once per spill-write chunk of a blocking
	// operator's external phase; true fails the spill (KindSpill).
	OnSpillWrite(nodeID int) bool
	// DenyMem is consulted at every workspace reservation; true denies the
	// grant as if the engine revoked it (spillable operators degrade to
	// disk, non-spillable ones abort with KindMemory).
	DenyMem(nodeID int) bool
	// Fork returns the injector for parallel worker thread ordinal t
	// (1-based, 0 = coordinator). Called by the coordinator in gather
	// startup order, so worker fault sequences are seed-deterministic.
	Fork(thread int) OpChaos
}

// Ctx is the per-query execution context: the virtual clock, buffer pool,
// cost model, runtime bitmap registry, the bind row for correlated inner
// subtrees, and the query's lifecycle controls (cancellation, deadline,
// memory grant).
type Ctx struct {
	Clock *sim.Clock
	DB    *storage.Database
	CM    *opt.CostModel

	// Deadline is a virtual-time deadline: execution aborts with a
	// KindDeadline QueryError once the clock reaches it. Zero disables.
	// Set it before the query starts stepping.
	Deadline sim.Duration

	// Trace, when non-nil, receives structured operator lifecycle events
	// (open/close, row batches, spills, degradations, state transitions)
	// stamped with virtual time. Nil disables tracing at zero cost: the
	// only residue in the per-row hot loop is a nil check on the pointer
	// each operator caches at Open (pinned by BenchmarkQueryExecution).
	// Set it before the query starts stepping; the recorder must be backed
	// by the query's own clock.
	Trace *trace.Recorder

	// Chaos, when non-nil, injects exec-layer faults (stalls, crashes,
	// spill failures, memory-grant denials) at the charge checkpoints. Set
	// it before the query starts stepping; parallel workers receive forked
	// injectors from it at gather startup.
	Chaos OpChaos

	// MemGrantRows is the simulated memory grant, in buffered rows, shared
	// by the query's blocking operators. Non-spillable operators (hash
	// build, hash aggregate, top-N) abort with KindMemory when the grant is
	// exceeded; spillable ones (sort, spool) degrade to simulated disk.
	// Zero means unlimited. Set it before the query starts stepping.
	MemGrantRows int64

	// Bind is the current outer row for correlated operators on the inner
	// side of a nested-loops join; seeks evaluate their bounds against it
	// at rewind time.
	Bind types.Row

	// Bitmaps holds runtime bitmap filters keyed by BitmapCreate node ID.
	Bitmaps map[int]*bitmapFilter

	// DOP is the query's degree of parallelism: GatherStreams exchanges
	// over partitionable subtrees run DOP worker threads when it exceeds
	// 1. Set at query construction (NewQueryDOP) — the operator tree is
	// shaped by it.
	DOP int

	// BatchSize selects vectorized execution: when it exceeds 0, operators
	// with native batch implementations (scans, filter, compute scalar,
	// stream aggregate) are built as BatchOperators producing up to
	// BatchSize rows per NextBatch call, with checkpoints amortized to one
	// per batch. 0 (the default) is classic row-at-a-time execution. Set at
	// query construction (NewQueryBatch) — the operator tree is shaped by
	// it.
	BatchSize int

	// Thread is this context's DMV thread ordinal (0 = coordinator, w+1 =
	// parallel worker w); Part/Parts are the range partition a worker's
	// scans claim (Parts 0 means unpartitioned). Worker contexts are
	// created by the gather operator, never by users.
	Thread      int
	Part, Parts int

	// parent is the coordinator context a worker context hangs off:
	// workers observe the parent's cancellation flag (an atomic, so it is
	// race-free) while charging their own private sub-clock.
	parent *Ctx

	// cleanups run exactly once when the query reaches a terminal state —
	// success, failure, or cancellation. Parallel gathers register worker
	// shutdown here so goroutines never leak even on the failure path,
	// where operator Close is not called.
	cleanups []func()

	// threadCounters are the per-(node, thread) counter sets of parallel
	// worker operator instances, registered at build time by the gather so
	// DMV captures see every thread row from the first poll. Coordinator
	// instances live in Query.ops instead.
	threadCounters []*Counters

	// mu serializes counter and clock mutation against concurrent DMV
	// captures. The executing goroutine holds it for the duration of each
	// Step batch, yielding briefly every yieldEvery charges so pollers on
	// other goroutines (dmv.CaptureSync, the lqs registry) can take a
	// consistent snapshot even while a blocking operator works.
	mu sync.Mutex

	// cancel carries a pending cancellation request, set from any
	// goroutine and observed at the next charge checkpoint.
	cancel atomic.Pointer[QueryError]

	// cur is the last operator that charged work: the node blamed when an
	// untyped panic or an interrupt surfaces.
	cur *Counters

	memUsed   int64
	chargeOps int
}

// yieldEvery is how many charge checkpoints pass between mutex yields: small
// enough that concurrent pollers wait microseconds, large enough that the
// lock traffic is invisible in benchmarks.
const yieldEvery = 256

// CancelCause requests cancellation: the executing goroutine observes it at
// the next charge checkpoint and aborts with a KindCancelled QueryError. It
// is safe to call from any goroutine, any number of times (the first wins),
// and is a no-op after the query reaches a terminal state.
func (ctx *Ctx) CancelCause(reason string) {
	ctx.cancel.CompareAndSwap(nil, &QueryError{Kind: KindCancelled, NodeID: -1, Reason: reason})
}

// onCleanup registers f to run once when the query reaches any terminal
// state. Called on the executing goroutine only.
func (ctx *Ctx) onCleanup(f func()) { ctx.cleanups = append(ctx.cleanups, f) }

// runCleanups runs and clears the registered cleanup hooks; idempotent.
func (ctx *Ctx) runCleanups() {
	fns := ctx.cleanups
	ctx.cleanups = nil
	for _, f := range fns {
		f()
	}
}

// interrupted returns the pending interrupt, if any: an explicit
// cancellation or an expired virtual-time deadline. Worker contexts
// observe the coordinator's cancellation flag but check the deadline
// against their own sub-clock, so deadline aborts stay deterministic at
// any DOP.
func (ctx *Ctx) interrupted() *QueryError {
	cancel := &ctx.cancel
	if ctx.parent != nil {
		cancel = &ctx.parent.cancel
	}
	if qe := cancel.Load(); qe != nil {
		return qe
	}
	if ctx.Deadline > 0 && ctx.Clock.Now() >= ctx.Deadline {
		return &QueryError{
			Kind:   KindDeadline,
			NodeID: -1,
			Reason: fmt.Sprintf("virtual-time deadline %v expired", ctx.Deadline),
		}
	}
	return nil
}

// checkpoint is the per-charge interrupt and yield point: it records the
// operator currently doing work, periodically yields the counter mutex so
// concurrent snapshots can drain, and aborts execution (by typed panic,
// converted to a QueryError at the Step recovery boundary) when a
// cancellation or deadline is pending. Every charge funnels through it, so
// cancellation latency is bounded by one row's work — even inside blocking
// Sort/Hash phases that produce no output for a long time.
func (ctx *Ctx) checkpoint(c *Counters) {
	if c != nil {
		ctx.cur = c
	}
	ctx.chargeOps++
	if ctx.chargeOps >= yieldEvery {
		ctx.chargeOps = 0
		// Only the coordinator holds (and may yield) the counter mutex;
		// worker contexts synchronize with snapshots through the gather's
		// batch protocol instead.
		if ctx.parent == nil {
			ctx.mu.Unlock()
			ctx.mu.Lock()
		}
	}
	if ctx.Chaos != nil && c != nil {
		ctx.chaosCharge(c)
	}
	if qe := ctx.interrupted(); qe != nil {
		panic(qe)
	}
}

// checkpointBatch is the amortized interrupt point of batch operators: one
// call covers `charges` preceding chargeCPURow calls. The yield cadence is
// preserved exactly (chargeOps accumulates the real charge count, so
// concurrent pollers wait no longer than under row mode), while the chaos
// consultation and the cancellation/deadline check run once per batch —
// cancellation latency grows from one row's work to one batch's work,
// which is the documented batch-mode contract (DESIGN §4g).
func (ctx *Ctx) checkpointBatch(c *Counters, charges int) {
	if charges <= 0 {
		return
	}
	if c != nil {
		ctx.cur = c
	}
	ctx.chargeOps += charges
	if ctx.chargeOps >= yieldEvery {
		ctx.chargeOps = 0
		if ctx.parent == nil {
			ctx.mu.Unlock()
			ctx.mu.Lock()
		}
	}
	if ctx.Chaos != nil && c != nil {
		ctx.chaosCharge(c)
	}
	if qe := ctx.interrupted(); qe != nil {
		panic(qe)
	}
}

// chaosCharge applies any injected fault due at this charge checkpoint: a
// stall burns virtual time against the current operator; a crash kills the
// executing thread with a typed panic (workers: absorbed and re-surfaced by
// the gather's supervision; coordinator: the Step recovery boundary).
func (ctx *Ctx) chaosCharge(c *Counters) {
	f := ctx.Chaos.OnCharge(c.NodeID)
	if f.Stall > 0 {
		ctx.Clock.Advance(f.Stall)
		c.CPUTime += f.Stall
		c.LastActive = ctx.Clock.Now()
		if ctx.Trace != nil {
			ctx.Trace.Record(trace.KindChaos, c.NodeID, "stall", int64(f.Stall))
		}
	}
	if f.Crash {
		if ctx.Trace != nil {
			ctx.Trace.Record(trace.KindChaos, c.NodeID, "worker-crash", 0)
		}
		panic(&QueryError{
			Kind:   KindWorkerCrash,
			NodeID: c.NodeID,
			Reason: fmt.Sprintf("chaos: worker thread %d crashed", ctx.Thread),
		})
	}
}

// chaosSpillWrite is consulted once per spill-write chunk by blocking
// operators' external phases; an injected failure aborts the query with a
// KindSpill error blamed on the spilling operator.
func (ctx *Ctx) chaosSpillWrite(c *Counters) {
	if ctx.Chaos == nil || !ctx.Chaos.OnSpillWrite(c.NodeID) {
		return
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(trace.KindChaos, c.NodeID, "spill-fail", 0)
	}
	panic(&QueryError{
		Kind:   KindSpill,
		NodeID: c.NodeID,
		Reason: "chaos: spill write failed during external phase",
	})
}

// reserveMem charges rows of simulated workspace memory to a blocking
// operator. Within the grant (or with no grant configured) it returns true.
// Over the grant, spillable operators get false — they degrade to simulated
// disk and keep running — while non-spillable operators abort with a
// KindMemory QueryError attributed to the operator.
func (ctx *Ctx) reserveMem(c *Counters, rows int64, spillable bool) bool {
	ctx.memUsed += rows
	c.MemRows += rows
	denied := ctx.Chaos != nil && ctx.Chaos.DenyMem(c.NodeID)
	if !denied && (ctx.MemGrantRows <= 0 || ctx.memUsed <= ctx.MemGrantRows) {
		return true
	}
	reason := fmt.Sprintf("workspace of %d rows exceeds memory grant of %d rows", ctx.memUsed, ctx.MemGrantRows)
	if denied {
		reason = "chaos: memory grant denied"
		if ctx.Trace != nil {
			ctx.Trace.Record(trace.KindChaos, c.NodeID, "mem-deny", rows)
		}
	}
	if spillable {
		return false
	}
	panic(&QueryError{
		Kind:   KindMemory,
		NodeID: c.NodeID,
		Reason: reason,
	})
}

// releaseMem returns an operator's workspace reservation to the grant.
func (ctx *Ctx) releaseMem(c *Counters) {
	ctx.memUsed -= c.MemRows
	c.MemRows = 0
}

// batchFactor is how much cheaper per-row CPU is for batch-mode operators
// (§4.7: batch processing "greatly reduces CPU time and cache misses").
const batchFactor = 6.0

// chargeCPU advances the clock by ns nanoseconds of CPU work attributed
// to c.
func (ctx *Ctx) chargeCPU(c *Counters, ns float64) {
	if ns <= 0 {
		return
	}
	if !c.FirstActive {
		c.FirstActive = true
		c.FirstActiveAt = ctx.Clock.Now()
	}
	d := sim.Duration(ns)
	ctx.Clock.Advance(d)
	c.CPUTime += d
	c.LastActive = ctx.Clock.Now()
	ctx.checkpoint(c)
}

// chargeCPURow is chargeCPU without the trailing checkpoint: batch
// operators advance the clock and the counters row by row — so the virtual
// timeline of every charge is identical to row mode — and amortize the
// checkpoint (poller yield, chaos, cancellation) to one checkpointBatch
// call per batch.
func (ctx *Ctx) chargeCPURow(c *Counters, ns float64) {
	if ns <= 0 {
		return
	}
	if !c.FirstActive {
		c.FirstActive = true
		c.FirstActiveAt = ctx.Clock.Now()
	}
	d := sim.Duration(ns)
	ctx.Clock.Advance(d)
	c.CPUTime += d
	c.LastActive = ctx.Clock.Now()
}

// chargeIO charges page I/O at logical/physical page costs, plus
// retry backoff for transient faults the storage layer absorbed. A
// permanent fault aborts the query with a KindIO error blamed on c.
func (ctx *Ctx) chargeIO(c *Counters, io storage.IOCounts) {
	if io.Logical == 0 && io.Physical == 0 {
		return
	}
	if !c.FirstActive {
		c.FirstActive = true
		c.FirstActiveAt = ctx.Clock.Now()
	}
	ns := float64(io.Logical)*ctx.CM.IOLogicalPage + float64(io.Physical)*ctx.CM.IOPhysicalPage
	ns += float64(io.Retries) * ctx.CM.IORetryBackoff
	ctx.Clock.Advance(sim.Duration(ns))
	c.IOTime += sim.Duration(ns)
	c.LogicalReads += io.Logical
	c.PhysicalReads += io.Physical
	c.IORetries += io.Retries
	c.LastActive = ctx.Clock.Now()
	if ctx.Trace != nil && io.Retries > 0 {
		ctx.Trace.Record(trace.KindIORetry, c.NodeID, "", io.Retries)
	}
	ctx.failOnIOFault(c, io)
	ctx.checkpoint(c)
}

// chargeSegments charges columnstore segment reads (and any faults the
// segment page reads hit, exactly as chargeIO does).
func (ctx *Ctx) chargeSegments(c *Counters, n int64, io storage.IOCounts) {
	if !c.FirstActive {
		c.FirstActive = true
		c.FirstActiveAt = ctx.Clock.Now()
	}
	segNS := sim.Duration(float64(n)*ctx.CM.IOSegment + float64(io.Retries)*ctx.CM.IORetryBackoff)
	ctx.Clock.Advance(segNS)
	c.IOTime += segNS
	c.SegmentsProcessed += n
	c.LogicalReads += io.Logical
	c.PhysicalReads += io.Physical
	c.IORetries += io.Retries
	c.LastActive = ctx.Clock.Now()
	if ctx.Trace != nil && io.Retries > 0 {
		ctx.Trace.Record(trace.KindIORetry, c.NodeID, "", io.Retries)
	}
	ctx.failOnIOFault(c, io)
	ctx.checkpoint(c)
}

// failOnIOFault aborts the query when the drained I/O counts include a
// permanent (retry-exhausted or hard) page-read failure.
func (ctx *Ctx) failOnIOFault(c *Counters, io storage.IOCounts) {
	if io.Faults == 0 {
		return
	}
	panic(&QueryError{
		Kind:   KindIO,
		NodeID: c.NodeID,
		Reason: fmt.Sprintf("%d permanent page-read failure(s) after %d retries", io.Faults, io.Retries),
	})
}

// bitmapFilter is the runtime bitmap a BitmapCreate node populates and a
// probe-side scan consults. Hash-based membership admits false positives,
// exactly like a real bloom-style bitmap (§4.3).
type bitmapFilter struct {
	bits     map[uint64]struct{}
	complete bool
}

func newBitmapFilter() *bitmapFilter {
	return &bitmapFilter{bits: make(map[uint64]struct{})}
}

func (b *bitmapFilter) insert(h uint64) { b.bits[h] = struct{}{} }

func (b *bitmapFilter) probe(h uint64) bool {
	if !b.complete {
		panic("exec: bitmap probed before its build side completed")
	}
	_, ok := b.bits[h]
	return ok
}
