// Package exec is the execution engine: demand-driven iterator-model
// physical operators (the GetNext model of §3.1.2) instrumented with the
// per-operator counters the paper's DMV exposes. All work is charged to a
// virtual clock through the shared cost model, so experiments are
// deterministic and a "long-running" query costs microseconds of real time.
package exec

import (
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// Counters is the per-operator instrumentation, mirroring the columns of
// sys.dm_exec_query_profiles the paper's client polls (§2.1): actual and
// estimated rows, elapsed/CPU time, logical and physical reads, and the
// columnstore segment counts of §4.7.
type Counters struct {
	NodeID   int
	Physical plan.PhysicalOp
	Logical  plan.LogicalOp
	EstRows  float64

	// Rows is k_i: the number of rows output so far (GetNext calls that
	// returned a row).
	Rows int64
	// InputRows counts rows consumed by stop-and-go phases (sort input,
	// hash build) — internal instrumentation; the DMV derives input counts
	// from child operators just as the paper's client does.
	InputRows int64
	// Rebinds counts executions of this operator (inner side of nested
	// loops re-opens once per outer row).
	Rebinds int64

	CPUTime sim.Duration
	// IOTime is the virtual time this operator spent on page/segment I/O.
	IOTime sim.Duration
	// OpenedAt is when Open was entered. For operators whose Open
	// recursively opens a deep subtree this long precedes any actual
	// work; FirstActiveAt records the first instant the operator itself
	// charged CPU or I/O — the start of its true active window.
	OpenedAt      sim.Duration
	FirstActiveAt sim.Duration
	FirstActive   bool
	LastActive    sim.Duration
	ClosedAt      sim.Duration
	Opened        bool
	Closed        bool

	LogicalReads  int64
	PhysicalReads int64
	// PagesTotal is the total logical reads a full scan of this operator's
	// input object requires, known when the scan opens; the denominator of
	// the §4.3 I/O-fraction progress estimate.
	PagesTotal int64

	SegmentsProcessed int64
	SegmentsTotal     int64

	// InternalDone/InternalTotal expose a blocking operator's internal
	// (neither-input-nor-output) work — e.g. a spilled sort's external
	// merge rows. The real DMV does not expose these; the paper's §7
	// names them as the first future-work item, and the extended
	// estimator option InternalCounters consumes them.
	InternalDone  int64
	InternalTotal int64

	// BufferedRows is the operator's current internal buffer occupancy
	// (exchanges, NL outer batches). The paper notes (§7) this is NOT
	// exposed by the real DMV; the DMV layer here omits it likewise, but
	// tests use it to validate semi-blocking behavior.
	BufferedRows int64
}

// Ctx is the per-query execution context: the virtual clock, buffer pool,
// cost model, runtime bitmap registry, and the bind row for correlated
// inner subtrees.
type Ctx struct {
	Clock *sim.Clock
	DB    *storage.Database
	CM    *opt.CostModel

	// Bind is the current outer row for correlated operators on the inner
	// side of a nested-loops join; seeks evaluate their bounds against it
	// at rewind time.
	Bind types.Row

	// Bitmaps holds runtime bitmap filters keyed by BitmapCreate node ID.
	Bitmaps map[int]*bitmapFilter
}

// batchFactor is how much cheaper per-row CPU is for batch-mode operators
// (§4.7: batch processing "greatly reduces CPU time and cache misses").
const batchFactor = 6.0

// chargeCPU advances the clock by ns nanoseconds of CPU work attributed
// to c.
func (ctx *Ctx) chargeCPU(c *Counters, ns float64) {
	if ns <= 0 {
		return
	}
	if !c.FirstActive {
		c.FirstActive = true
		c.FirstActiveAt = ctx.Clock.Now()
	}
	d := sim.Duration(ns)
	ctx.Clock.Advance(d)
	c.CPUTime += d
	c.LastActive = ctx.Clock.Now()
}

// chargeIO charges page I/O at logical/physical page costs.
func (ctx *Ctx) chargeIO(c *Counters, io storage.IOCounts) {
	if io.Logical == 0 && io.Physical == 0 {
		return
	}
	if !c.FirstActive {
		c.FirstActive = true
		c.FirstActiveAt = ctx.Clock.Now()
	}
	ns := float64(io.Logical)*ctx.CM.IOLogicalPage + float64(io.Physical)*ctx.CM.IOPhysicalPage
	ctx.Clock.Advance(sim.Duration(ns))
	c.IOTime += sim.Duration(ns)
	c.LogicalReads += io.Logical
	c.PhysicalReads += io.Physical
	c.LastActive = ctx.Clock.Now()
}

// chargeSegments charges columnstore segment reads.
func (ctx *Ctx) chargeSegments(c *Counters, n int64, io storage.IOCounts) {
	if !c.FirstActive {
		c.FirstActive = true
		c.FirstActiveAt = ctx.Clock.Now()
	}
	segNS := sim.Duration(float64(n) * ctx.CM.IOSegment)
	ctx.Clock.Advance(segNS)
	c.IOTime += segNS
	c.SegmentsProcessed += n
	c.LogicalReads += io.Logical
	c.PhysicalReads += io.Physical
	c.LastActive = ctx.Clock.Now()
}

// bitmapFilter is the runtime bitmap a BitmapCreate node populates and a
// probe-side scan consults. Hash-based membership admits false positives,
// exactly like a real bloom-style bitmap (§4.3).
type bitmapFilter struct {
	bits     map[uint64]struct{}
	complete bool
}

func newBitmapFilter() *bitmapFilter {
	return &bitmapFilter{bits: make(map[uint64]struct{})}
}

func (b *bitmapFilter) insert(h uint64) { b.bits[h] = struct{}{} }

func (b *bitmapFilter) probe(h uint64) bool {
	if !b.complete {
		panic("exec: bitmap probed before its build side completed")
	}
	_, ok := b.bits[h]
	return ok
}
