package exec_test

// Differential battery for vectorized batch execution: every workload query
// runs through the batch executor at batch sizes {1, 7, 1024} and DOP
// {1, 4} and must be indistinguishable from the row-mode reference at the
// same DOP in everything the outside world can observe at completion —
// byte-identical result rows, identical final per-(node, thread) DMV work
// counters, identical end-of-run virtual time, and an identical poll
// schedule.
//
// The per-batch charging contract (DESIGN §4g) sets the granularity of the
// mid-run guarantees:
//
//   - batch size 1 pulls exactly one row through each native stage per
//     NextBatch, so the charge interleaving matches row mode charge for
//     charge: every snapshot — and therefore every estimator trajectory —
//     is bit-identical, timestamps included.
//   - batch size > 1 amortizes: a producer runs up to one batch ahead of
//     its consumer, so mid-run snapshots skew by a bounded amount of work
//     and per-poll estimates deviate by a bounded epsilon, while the final
//     counters stay exact. At DOP 1 the end-of-run clock is also exact
//     (the total advanced virtual time is the total charged time). At
//     DOP > 1 a gathered worker stamps each row with its clock *after*
//     producing it, and under batching that stamp includes the vectorized
//     read-ahead of the rest of the batch — rows become *available* later
//     even though no extra work is charged. The coordinator overlaps its
//     own charges with worker time via those stamps, so the end-of-run
//     clock may exceed the row-mode reference by a small bounded slice of
//     lost overlap (and the poll schedule gains the correspondingly
//     crossed grid points).

import (
	"fmt"
	"math"
	"testing"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// trajectoryEps bounds the per-poll query-progress deviation between batch
// and row mode at batch sizes > 1. The skew is at most one in-flight batch
// per pipeline stage (plus DOP*GatherBatchRows inside a parallel zone),
// which on the suite's table sizes stays well under this.
const trajectoryEps = 0.15

// runTraced builds and executes one query with a DMV poller attached.
// batch == 0 selects the row-mode reference engine.
func runTraced(t *testing.T, w *workload.Workload, q workload.Query, dop, batch int) ([]types.Row, *dmv.Trace, *plan.Plan) {
	t.Helper()
	root := q.Build(w.Builder())
	root = plan.Parallelize(root, dop)
	p := plan.Finalize(root)
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, dmv.PollInterval)
	w.DB.ColdStart()
	query := exec.NewQueryBatch(p, w.DB, opt.DefaultCostModel(), clock, dop, batch)
	poller.Register(query)
	rows, err := query.RunCollect()
	if err != nil {
		t.Fatalf("%s dop=%d batch=%d: %v", q.Name, dop, batch, err)
	}
	return rows, poller.Finish(query), p
}

// workField is one comparable int64 projection of an OpProfile.
type workField struct {
	name string
	get  func(*dmv.OpProfile) int64
}

// workFields are the counters that accumulate work: identical between row
// and batch mode at every batch size, because batch operators charge them
// row by row in the same order — only the checkpoint is amortized.
var workFields = []workField{
	{"ActualRows", func(o *dmv.OpProfile) int64 { return o.ActualRows }},
	{"Rebinds", func(o *dmv.OpProfile) int64 { return o.Rebinds }},
	{"CPUTime", func(o *dmv.OpProfile) int64 { return int64(o.CPUTime) }},
	{"IOTime", func(o *dmv.OpProfile) int64 { return int64(o.IOTime) }},
	{"LogicalReads", func(o *dmv.OpProfile) int64 { return o.LogicalReads }},
	{"PhysicalReads", func(o *dmv.OpProfile) int64 { return o.PhysicalReads }},
	{"PagesTotal", func(o *dmv.OpProfile) int64 { return o.PagesTotal }},
	{"SegmentsProcessed", func(o *dmv.OpProfile) int64 { return o.SegmentsProcessed }},
	{"SegmentsTotal", func(o *dmv.OpProfile) int64 { return o.SegmentsTotal }},
	{"InternalDone", func(o *dmv.OpProfile) int64 { return o.InternalDone }},
	{"InternalTotal", func(o *dmv.OpProfile) int64 { return o.InternalTotal }},
}

// compareFinalThreads requires the final snapshots' per-(node, thread) rows
// to agree on every work counter. With exact=true (batch size 1) the rows
// must be bit-identical, timestamps and all.
func compareFinalThreads(t *testing.T, name string, ref, got *dmv.Snapshot, exact bool) {
	t.Helper()
	if len(ref.Threads) != len(got.Threads) {
		t.Fatalf("%s: thread row count %d vs row-mode %d", name, len(got.Threads), len(ref.Threads))
	}
	for i := range ref.Threads {
		r, g := &ref.Threads[i], &got.Threads[i]
		if r.NodeID != g.NodeID || r.ThreadID != g.ThreadID {
			t.Fatalf("%s: thread row %d is (%d,%d), row-mode has (%d,%d)",
				name, i, g.NodeID, g.ThreadID, r.NodeID, r.ThreadID)
		}
		if exact {
			if *r != *g {
				t.Errorf("%s: thread row %d (node %d thread %d) differs from row mode:\nrow:   %+v\nbatch: %+v",
					name, i, r.NodeID, r.ThreadID, *r, *g)
			}
			continue
		}
		for _, f := range workFields {
			if f.get(r) != f.get(g) {
				t.Errorf("%s: node %d thread %d %s: row-mode %d vs batch %d",
					name, r.NodeID, r.ThreadID, f.name, f.get(r), f.get(g))
			}
		}
		if r.Opened != g.Opened || r.Closed != g.Closed {
			t.Errorf("%s: node %d thread %d lifecycle: row-mode opened=%v closed=%v vs batch opened=%v closed=%v",
				name, r.NodeID, r.ThreadID, r.Opened, r.Closed, g.Opened, g.Closed)
		}
	}
}

// TestBatchMatchesRowMode is the batch/row differential battery over the
// full TPC-H suite (both physical designs) and TPC-DS.
func TestBatchMatchesRowMode(t *testing.T) {
	workloads := []*workload.Workload{
		workload.TPCH(1, workload.TPCHRowstore),
		workload.TPCH(1, workload.TPCHColumnstore),
		workload.TPCDS(7),
	}
	for _, w := range workloads {
		for _, q := range w.Queries {
			for _, dop := range []int{1, 4} {
				refRows, refTr, refPlan := runTraced(t, w, q, dop, 0)
				refEst := progress.NewEstimator(refPlan, w.DB.Catalog, progress.LQSOptions())
				for _, batch := range []int{1, 7, 1024} {
					name := fmt.Sprintf("%s/%s/dop%d/batch%d", w.Name, q.Name, dop, batch)
					gotRows, gotTr, gotPlan := runTraced(t, w, q, dop, batch)
					if i, ok := rowsEqual(refRows, gotRows); !ok {
						t.Fatalf("%s: result rows differ from row mode at index %d (row-mode %d rows, batch %d)",
							name, i, len(refRows), len(gotRows))
					}
					if batch == 1 || dop == 1 {
						if refTr.EndedAt != gotTr.EndedAt {
							t.Errorf("%s: end time %v vs row-mode %v", name, gotTr.EndedAt, refTr.EndedAt)
						}
					} else {
						// DOP > 1, batch > 1: read-ahead delays row
						// availability stamps, losing a bounded slice of
						// coordinator/worker overlap (see file header).
						if gotTr.EndedAt < refTr.EndedAt {
							t.Errorf("%s: end time %v below row-mode %v (charges lost?)",
								name, gotTr.EndedAt, refTr.EndedAt)
						}
						if float64(gotTr.EndedAt) > float64(refTr.EndedAt)*1.10 {
							t.Errorf("%s: end time %v exceeds row-mode %v by more than the overlap bound",
								name, gotTr.EndedAt, refTr.EndedAt)
						}
					}
					if fmt.Sprint(refTr.TrueRows) != fmt.Sprint(gotTr.TrueRows) {
						t.Errorf("%s: true cardinalities differ:\nrow:   %v\nbatch: %v",
							name, refTr.TrueRows, gotTr.TrueRows)
					}
					compareFinalThreads(t, name, refTr.Final, gotTr.Final, batch == 1)

					// Poll schedule: the row-mode ticks must all recur at the
					// same grid times; a longer run (lost overlap, above) may
					// append the extra grid points it crossed, nothing more.
					if len(gotTr.Snapshots) < len(refTr.Snapshots) {
						t.Errorf("%s: %d polls vs row-mode %d", name, len(gotTr.Snapshots), len(refTr.Snapshots))
						continue
					}
					extra := int64(gotTr.EndedAt-refTr.EndedAt)/int64(dmv.PollInterval) + 1
					if surplus := int64(len(gotTr.Snapshots) - len(refTr.Snapshots)); surplus > extra {
						t.Errorf("%s: %d polls vs row-mode %d: %d extra exceeds the %d grid points the longer run crossed",
							name, len(gotTr.Snapshots), len(refTr.Snapshots), surplus, extra)
						continue
					}
					gotEst := progress.NewEstimator(gotPlan, w.DB.Catalog, progress.LQSOptions())
					for i := range refTr.Snapshots {
						rs, gs := refTr.Snapshots[i], gotTr.Snapshots[i]
						if rs.At != gs.At {
							t.Errorf("%s: poll %d at %v vs row-mode %v", name, i, gs.At, rs.At)
							break
						}
						if batch == 1 {
							// Exact interleaving: snapshots are bit-identical.
							compareFinalThreads(t, fmt.Sprintf("%s poll %d", name, i), rs, gs, true)
							continue
						}
						// Amortized interleaving: the estimator trajectory
						// deviates by at most a bounded epsilon per poll.
						rp := refEst.Estimate(rs).Query
						gp := gotEst.Estimate(gs).Query
						if d := math.Abs(rp - gp); d > trajectoryEps {
							t.Errorf("%s: poll %d query progress %.4f vs row-mode %.4f (|Δ|=%.4f > %.2f)",
								name, i, gp, rp, d, trajectoryEps)
						}
					}
				}
			}
		}
	}
}

// TestBatchDeterministic runs the same query twice at the same batch size
// and DOP and requires bit-identical rows, thread counters, and end time.
func TestBatchDeterministic(t *testing.T) {
	w := workload.TPCH(1, workload.TPCHRowstore)
	for _, q := range w.Queries {
		for _, batch := range []int{7, 1024} {
			r1, t1, _ := runTraced(t, w, q, 4, batch)
			r2, t2, _ := runTraced(t, w, q, 4, batch)
			if t1.EndedAt != t2.EndedAt {
				t.Errorf("%s batch=%d: end time differs across runs: %v vs %v", q.Name, batch, t1.EndedAt, t2.EndedAt)
			}
			if i, ok := rowsEqual(r1, r2); !ok {
				t.Fatalf("%s batch=%d: rows differ across runs at index %d", q.Name, batch, i)
			}
			compareFinalThreads(t, fmt.Sprintf("%s/batch%d", q.Name, batch), t1.Final, t2.Final, true)
		}
	}
}
