package exec

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// buildQuery finalizes, estimates, and constructs a query without running
// it, so lifecycle tests can configure deadlines/grants/faults first.
func buildQuery(tb testing.TB, db *storage.Database, root *plan.Node) *Query {
	tb.Helper()
	p := plan.Finalize(root)
	opt.NewEstimator(db.Catalog).Estimate(p)
	return NewQuery(p, db, opt.DefaultCostModel(), sim.NewClock())
}

func asQueryError(tb testing.TB, err error) *QueryError {
	tb.Helper()
	var qe *QueryError
	if !errors.As(err, &qe) {
		tb.Fatalf("error is %T (%v), not *QueryError", err, err)
	}
	return qe
}

func TestStepZeroIsNoOpProgressReport(t *testing.T) {
	db := testDB(t)
	q := buildQuery(t, db, b(db).TableScan("t", nil, nil))

	more, err := q.Step(0)
	if !more || err != nil {
		t.Fatalf("Step(0) on a fresh query = (%v, %v), want (true, nil)", more, err)
	}
	if _, started := q.Started(); started {
		t.Fatal("Step(0) must not open the plan")
	}
	if q.RowsReturned() != 0 {
		t.Fatalf("Step(0) produced %d rows", q.RowsReturned())
	}

	// The no-op report must not have wedged the query: it still runs.
	rows, err := q.Run()
	if err != nil || rows != 1000 {
		t.Fatalf("Run after Step(0) = (%d, %v)", rows, err)
	}

	// And on a finished query, Step(<=0) reports completion, not progress —
	// a Step(0) polling loop terminates.
	more, err = q.Step(-3)
	if more || err != nil {
		t.Fatalf("Step(-3) on finished query = (%v, %v), want (false, nil)", more, err)
	}
}

func TestCancelMidPipeline(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	q := buildQuery(t, db, bb.Filter(bb.TableScan("t", nil, nil),
		expr.Lt(expr.C(0, "id"), expr.KInt(900))))

	if more, err := q.Step(10); !more || err != nil {
		t.Fatalf("first Step = (%v, %v)", more, err)
	}
	q.Cancel("user requested KILL")

	more, err := q.Step(10)
	if more {
		t.Fatal("Step reported more work after cancellation")
	}
	qe := asQueryError(t, err)
	if qe.Kind != KindCancelled {
		t.Fatalf("kind = %v, want %v", qe.Kind, KindCancelled)
	}
	if !strings.Contains(qe.Error(), "user requested KILL") {
		t.Fatalf("reason lost: %v", qe)
	}
	if q.State() != StateCancelled || !q.Done() {
		t.Fatalf("state = %v, done = %v", q.State(), q.Done())
	}
	if _, ended := q.Ended(); !ended {
		t.Fatal("cancelled query does not report an end time")
	}

	// The terminal error is sticky and cancellation is idempotent.
	q.Cancel("again")
	if _, err2 := q.Step(1); err2 != err {
		t.Fatalf("second Step error %v != first %v", err2, err)
	}
	if rows := q.RowsReturned(); rows != 10 {
		t.Fatalf("rows after cancel = %d, want the 10 produced before it", rows)
	}
}

func TestDeadlineExpiresInsideBlockingSort(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	root := bb.Sort(bb.TableScan("t", nil, nil), []int{2}, nil)
	q := buildQuery(t, db, root)
	// The sort's Open consumes the whole 1000-row input before the first
	// output row; the deadline must fire inside that blocking phase.
	q.Ctx.Deadline = 20 * time.Microsecond

	_, err := q.Step(1)
	qe := asQueryError(t, err)
	if qe.Kind != KindDeadline {
		t.Fatalf("kind = %v, want %v", qe.Kind, KindDeadline)
	}
	if q.State() != StateCancelled {
		t.Fatalf("deadline expiry left state %v", q.State())
	}
	if q.RowsReturned() != 0 {
		t.Fatalf("%d rows escaped before the deadline inside Open", q.RowsReturned())
	}
	if qe.At < q.Ctx.Deadline {
		t.Fatalf("abort stamped at %v, before the %v deadline", qe.At, q.Ctx.Deadline)
	}
}

func TestDeadlineExpiresInsideHashAggBuild(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	q := buildQuery(t, db, bb.HashAgg(bb.TableScan("t", nil, nil), []int{0},
		[]expr.AggSpec{{Kind: expr.CountStar}}))
	q.Ctx.Deadline = 20 * time.Microsecond

	_, err := q.Run()
	if qe := asQueryError(t, err); qe.Kind != KindDeadline {
		t.Fatalf("kind = %v, want %v", qe.Kind, KindDeadline)
	}
}

// boomOp wraps an operator and panics (untyped) after a few output rows —
// a stand-in for an arbitrary engine bug inside operator code.
type boomOp struct {
	base
	child Operator
	after int64
}

func (o *boomOp) Open(ctx *Ctx)   { o.opened(ctx); o.child.Open(ctx) }
func (o *boomOp) Close(ctx *Ctx)  { o.child.Close(ctx); o.closed(ctx) }
func (o *boomOp) Rewind(ctx *Ctx) { o.child.Rewind(ctx) }

func (o *boomOp) Next(ctx *Ctx) (types.Row, bool) {
	row, ok := o.child.Next(ctx)
	ctx.chargeCPU(&o.c, 10)
	if ok {
		o.emit()
		if o.c.Rows > o.after {
			panic("boom: synthetic operator failure")
		}
	}
	return row, ok
}

func TestOperatorPanicBecomesTypedErrorWithNodeID(t *testing.T) {
	db := testDB(t)
	p := plan.Finalize(b(db).TableScan("t", nil, nil))
	opt.NewEstimator(db.Catalog).Estimate(p)
	q := NewQuery(p, db, opt.DefaultCostModel(), sim.NewClock())
	bo := &boomOp{child: q.Root, after: 5}
	bo.init(p.Root)
	q.Root = bo
	q.ops[p.Root.ID] = bo

	rows, err := q.Run()
	qe := asQueryError(t, err)
	if qe.Kind != KindInternal {
		t.Fatalf("kind = %v, want %v", qe.Kind, KindInternal)
	}
	if qe.NodeID != p.Root.ID {
		t.Fatalf("panic blamed on node %d, want %d (the last charging operator)", qe.NodeID, p.Root.ID)
	}
	if !strings.Contains(qe.Error(), "boom") {
		t.Fatalf("panic value lost: %v", qe)
	}
	if q.State() != StateFailed {
		t.Fatalf("state = %v, want %v", q.State(), StateFailed)
	}
	if rows != 5 {
		t.Fatalf("rows before panic = %d", rows)
	}
	// RunCollect on the failed query must also surface the error, not panic.
	if _, err2 := q.RunCollect(); err2 == nil {
		t.Fatal("RunCollect after failure returned nil error")
	}
}

func TestMemoryGrantAbortsNonSpillableOperator(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	agg := bb.HashAgg(bb.TableScan("t", nil, nil), []int{0}, // 1000 groups
		[]expr.AggSpec{{Kind: expr.CountStar}})
	q := buildQuery(t, db, agg)
	q.Ctx.MemGrantRows = 64

	_, err := q.Run()
	qe := asQueryError(t, err)
	if qe.Kind != KindMemory {
		t.Fatalf("kind = %v, want %v", qe.Kind, KindMemory)
	}
	if qe.NodeID != agg.ID {
		t.Fatalf("memory abort blamed on node %d, want the hash aggregate %d", qe.NodeID, agg.ID)
	}
	if q.State() != StateFailed {
		t.Fatalf("state = %v", q.State())
	}
}

func TestMemoryGrantDegradesSortToSpill(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	root := bb.Sort(bb.TableScan("t", nil, nil), []int{2}, nil)
	q := buildQuery(t, db, root)
	// 1000 input rows against a 100-row grant: the cost model alone would
	// keep this sort in memory (SortMemoryRows is 8192), so any spill pass
	// observed below comes from the grant, not the model.
	q.Ctx.MemGrantRows = 100

	rows, err := q.Run()
	if err != nil {
		t.Fatalf("spillable sort aborted: %v", err)
	}
	if rows != 1000 {
		t.Fatalf("spilled sort returned %d rows", rows)
	}
	c := q.Operator(root.ID).Counters()
	if c.InternalTotal == 0 || c.InternalDone != c.InternalTotal {
		t.Fatalf("forced spill not reflected in internal counters: done=%d total=%d",
			c.InternalDone, c.InternalTotal)
	}
	if q.Ctx.memUsed != 0 {
		t.Fatalf("workspace not released at close: %d rows still reserved", q.Ctx.memUsed)
	}
}

func TestTransientFaultRetryExhaustionFailsQuery(t *testing.T) {
	db := testDB(t)
	fi := db.InjectFaults(storage.FaultConfig{Seed: 7, TransientProb: 1, MaxRetries: 3})
	scan := b(db).TableScan("t", nil, nil)
	q := buildQuery(t, db, scan)

	_, err := q.Run()
	qe := asQueryError(t, err)
	if qe.Kind != KindIO {
		t.Fatalf("kind = %v, want %v", qe.Kind, KindIO)
	}
	if qe.NodeID != scan.ID {
		t.Fatalf("I/O failure blamed on node %d, want the scan %d", qe.NodeID, scan.ID)
	}
	if !strings.Contains(qe.Error(), "permanent") {
		t.Fatalf("reason: %v", qe)
	}
	c := q.Operator(scan.ID).Counters()
	if c.IORetries != 3 {
		t.Fatalf("scan absorbed %d retries, want the full budget of 3", c.IORetries)
	}
	st := fi.Stats()
	if st.Permanents == 0 || st.Retries != c.IORetries {
		t.Fatalf("injector stats inconsistent: %+v vs counter retries %d", st, c.IORetries)
	}
}

func TestFaultInjectionIsDeterministic(t *testing.T) {
	type trace struct {
		clock   sim.Duration
		rows    int64
		retries int64
		stats   storage.FaultStats
	}
	run := func() trace {
		db := testDB(t)
		fi := db.InjectFaults(storage.FaultConfig{Seed: 99, TransientProb: 0.9, MaxRetries: 50})
		bb := b(db)
		root := bb.Sort(bb.HashAgg(bb.TableScan("t", nil, nil), []int{1},
			[]expr.AggSpec{{Kind: expr.CountStar}}), []int{0}, nil)
		q := buildQuery(t, db, root)
		rows, err := q.Run()
		if err != nil {
			t.Fatalf("faulty run failed: %v", err)
		}
		var retries int64
		for _, c := range q.Counters() {
			retries += c.IORetries
		}
		return trace{clock: q.Ctx.Clock.Now(), rows: rows, retries: retries, stats: fi.Stats()}
	}

	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different traces:\n  %+v\n  %+v", a, b)
	}
	if a.retries == 0 {
		t.Fatal("fault run absorbed no retries; the backoff path went unexercised")
	}
	if a.clock <= buildAndRunClean(t).clock {
		t.Fatal("retry backoff did not advance the virtual clock beyond a clean run")
	}
}

// buildAndRunClean runs the determinism fixture without faults, for the
// virtual-time comparison above.
func buildAndRunClean(t *testing.T) struct{ clock sim.Duration } {
	db := testDB(t)
	bb := b(db)
	root := bb.Sort(bb.HashAgg(bb.TableScan("t", nil, nil), []int{1},
		[]expr.AggSpec{{Kind: expr.CountStar}}), []int{0}, nil)
	q := buildQuery(t, db, root)
	if _, err := q.Run(); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	return struct{ clock sim.Duration }{q.Ctx.Clock.Now()}
}
