package exec

import (
	"testing"

	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// runPlanWithCM executes a plan under a custom cost model.
func runPlanWithCM(t *testing.T, cm *opt.CostModel, build func(bb *plan.Builder) *plan.Node) *Query {
	t.Helper()
	db := testDB(t)
	root := build(b(db))
	p := plan.Finalize(root)
	e := opt.NewEstimator(db.Catalog)
	e.CM = cm
	e.Estimate(p)
	q := NewQuery(p, db, cm, sim.NewClock())
	q.Run()
	return q
}

func TestSortSpillsAboveMemoryBudget(t *testing.T) {
	cm := opt.DefaultCostModel()
	cm.SortMemoryRows = 256 // u has 3000 rows → 12 runs → 2 merge passes at fan-in 8
	q := runPlanWithCM(t, cm, func(bb *plan.Builder) *plan.Node {
		return bb.Sort(bb.TableScan("u", nil, nil), []int{2}, nil)
	})
	c := q.Root.Counters()
	wantPasses := cm.SortMergePasses(3000)
	if wantPasses != 2 {
		t.Fatalf("expected 2 merge passes for 3000 rows / 256 budget, cost model says %d", wantPasses)
	}
	if c.InternalTotal != int64(wantPasses)*3000 {
		t.Fatalf("InternalTotal = %d, want %d", c.InternalTotal, int64(wantPasses)*3000)
	}
	if c.InternalDone != c.InternalTotal {
		t.Fatalf("merge incomplete: %d/%d", c.InternalDone, c.InternalTotal)
	}
	if c.Rows != 3000 {
		t.Fatalf("spilled sort lost rows: %d", c.Rows)
	}
}

func TestSortInMemoryNoSpill(t *testing.T) {
	cm := opt.DefaultCostModel() // budget 8192 > 3000
	q := runPlanWithCM(t, cm, func(bb *plan.Builder) *plan.Node {
		return bb.Sort(bb.TableScan("u", nil, nil), []int{2}, nil)
	})
	c := q.Root.Counters()
	if c.InternalTotal != 0 || c.InternalDone != 0 {
		t.Fatalf("in-memory sort reported internal work: %d/%d", c.InternalDone, c.InternalTotal)
	}
}

func TestSpillCostsTime(t *testing.T) {
	run := func(memory int64) sim.Duration {
		cm := opt.DefaultCostModel()
		cm.SortMemoryRows = memory
		q := runPlanWithCM(t, cm, func(bb *plan.Builder) *plan.Node {
			return bb.Sort(bb.TableScan("u", nil, nil), []int{2}, nil)
		})
		return q.Ctx.Clock.Now()
	}
	inMem := run(1 << 20)
	spilled := run(128)
	if spilled <= inMem {
		t.Fatalf("spilled sort not slower: %v vs %v", spilled, inMem)
	}
}

func TestMergePassesMath(t *testing.T) {
	cm := opt.DefaultCostModel()
	cm.SortMemoryRows = 100
	cm.SortMergeFanIn = 8
	cases := map[float64]int{
		50: 0, 100: 0, 101: 1, 800: 1, 801: 2, 6400: 2, 6401: 3,
	}
	for n, want := range cases {
		if got := cm.SortMergePasses(n); got != want {
			t.Errorf("SortMergePasses(%v) = %d, want %d", n, got, want)
		}
	}
}
