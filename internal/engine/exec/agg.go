package exec

import (
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// streamAgg aggregates input already ordered on the group columns: fully
// pipelined, one group in flight at a time.
type streamAgg struct {
	base
	child  Operator
	curKey types.Row
	states []expr.AggState
	idCols []int
	open   bool
	done   bool
}

func newStreamAgg(n *plan.Node, child Operator) *streamAgg {
	s := &streamAgg{child: child}
	s.init(n)
	s.idCols = identityCols(len(n.GroupCols))
	return s
}

func (s *streamAgg) Open(ctx *Ctx) {
	s.opened(ctx)
	s.child.Open(ctx)
}

func (s *streamAgg) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.curKey = nil
	s.states = nil
	s.open = false
	s.done = false
	s.child.Rewind(ctx)
}

func (s *streamAgg) freshStates() []expr.AggState {
	states := make([]expr.AggState, len(s.node.Aggs))
	for i, a := range s.node.Aggs {
		states[i] = expr.NewAggState(a)
	}
	return states
}

func (s *streamAgg) result() types.Row {
	out := make(types.Row, 0, len(s.node.GroupCols)+len(s.states))
	out = append(out, s.curKey...)
	for _, st := range s.states {
		out = append(out, st.Result())
	}
	return out
}

func (s *streamAgg) Next(ctx *Ctx) (types.Row, bool) {
	if s.done {
		return nil, false
	}
	for {
		row, ok := s.child.Next(ctx)
		if !ok {
			s.done = true
			// Emit the final group; a scalar aggregate (no group columns)
			// emits exactly one row even over empty input.
			if s.open || len(s.node.GroupCols) == 0 {
				if !s.open {
					s.curKey = types.Row{}
					s.states = s.freshStates()
				}
				out := s.result()
				s.emit()
				return out, true
			}
			return nil, false
		}
		s.c.InputRows++
		ctx.chargeCPU(&s.c, ctx.CM.CPUTuple+float64(len(s.node.Aggs))*ctx.CM.CPUAggUpdate)
		// Project the group key only when a new group starts: within a
		// group the boundary comparison needs no per-row allocation.
		if !s.open {
			s.open = true
			s.curKey = projectCols(row, s.node.GroupCols)
			s.states = s.freshStates()
		} else if !types.EqualCols(row, s.curKey, s.node.GroupCols, s.idCols) {
			out := s.result()
			s.curKey = projectCols(row, s.node.GroupCols)
			s.states = s.freshStates()
			for i := range s.states {
				s.states[i].Add(row)
			}
			s.emit()
			return out, true
		}
		for i := range s.states {
			s.states[i].Add(row)
		}
	}
}

func (s *streamAgg) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.child.Close(ctx)
	s.closed(ctx)
}

func projectCols(row types.Row, cols []int) types.Row {
	out := make(types.Row, len(cols))
	for i, c := range cols {
		out[i] = row[c]
	}
	return out
}

func identityCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// hashAgg is the blocking Hash Aggregate: Open builds the hash table from
// the entire input; Next streams the groups out. This is the canonical
// two-phase operator of the paper's §4.5 (Fig. 10): under the unmodified
// GetNext model its progress is 0 until the input phase finishes.
type hashAgg struct {
	base
	child  Operator
	groups []*aggGroup
	table  map[uint64][]*aggGroup
	pos    int
}

type aggGroup struct {
	key    types.Row
	states []expr.AggState
}

func newHashAgg(n *plan.Node, child Operator) *hashAgg {
	h := &hashAgg{}
	h.child = child
	h.init(n)
	return h
}

func (h *hashAgg) Open(ctx *Ctx) {
	h.opened(ctx)
	h.child.Open(ctx)
	h.table = make(map[uint64][]*aggGroup)
	h.groups = h.groups[:0]
	h.pos = 0
	gcols := h.node.GroupCols
	idCols := identityCols(len(gcols))
	perRow := ctx.CM.CPUHashInsert + float64(len(h.node.Aggs))*ctx.CM.CPUAggUpdate
	if h.node.BatchMode {
		perRow /= batchFactor
	}
	for {
		row, ok := h.child.Next(ctx)
		if !ok {
			break
		}
		h.c.InputRows++
		ctx.chargeCPU(&h.c, perRow)
		hv := row.HashCols(gcols)
		var grp *aggGroup
		for _, g := range h.table[hv] {
			if types.EqualCols(row, g.key, gcols, idCols) {
				grp = g
				break
			}
		}
		if grp == nil {
			// Workspace grows with distinct groups; hash aggregates do not
			// spill in this engine, so an exceeded grant aborts.
			ctx.reserveMem(&h.c, 1, false)
			grp = &aggGroup{key: projectCols(row, gcols)}
			grp.states = make([]expr.AggState, len(h.node.Aggs))
			for i, a := range h.node.Aggs {
				grp.states[i] = expr.NewAggState(a)
			}
			h.table[hv] = append(h.table[hv], grp)
			h.groups = append(h.groups, grp)
		}
		for i := range grp.states {
			grp.states[i].Add(row)
		}
	}
	h.child.Close(ctx) // input subtree drained: shut it down
	// A scalar aggregate emits one row even over empty input.
	if len(gcols) == 0 && len(h.groups) == 0 {
		grp := &aggGroup{key: types.Row{}}
		grp.states = make([]expr.AggState, len(h.node.Aggs))
		for i, a := range h.node.Aggs {
			grp.states[i] = expr.NewAggState(a)
		}
		h.groups = append(h.groups, grp)
	}
}

func (h *hashAgg) Rewind(ctx *Ctx) {
	h.c.Rebinds++
	h.pos = 0
}

func (h *hashAgg) Next(ctx *Ctx) (types.Row, bool) {
	if h.pos >= len(h.groups) {
		return nil, false
	}
	g := h.groups[h.pos]
	h.pos++
	ctx.chargeCPU(&h.c, ctx.CM.CPUTuple)
	out := make(types.Row, 0, len(g.key)+len(g.states))
	out = append(out, g.key...)
	for _, st := range g.states {
		out = append(out, st.Result())
	}
	h.emit()
	return out, true
}

func (h *hashAgg) Close(ctx *Ctx) {
	if h.c.Closed {
		return
	}
	h.child.Close(ctx)
	ctx.releaseMem(&h.c)
	h.closed(ctx)
}
