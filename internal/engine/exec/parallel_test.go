package exec_test

// Differential tests for intra-query parallelism: for every workload query,
// running at DOP 2 and 4 must produce byte-identical result rows and equal
// final aggregated DMV counter totals to the serial run, be bit-reproducible
// across repeated runs at the same DOP, and finish in strictly less virtual
// time on scan-heavy queries. This is the engine-level analogue of the
// metrics harness's TestParallelMatchesSerial, one level down: not "the
// harness schedules deterministically" but "the parallel operators
// themselves are deterministic".

import (
	"fmt"
	"testing"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// runOnce builds and executes one query at the given DOP, returning its
// result rows, final DMV snapshot, finalized plan, and end-of-run clock.
func runOnce(t *testing.T, w *workload.Workload, q workload.Query, dop int) ([]types.Row, *dmv.Snapshot, *plan.Plan, sim.Duration) {
	t.Helper()
	root := q.Build(w.Builder())
	root = plan.Parallelize(root, dop)
	p := plan.Finalize(root)
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	w.DB.ColdStart()
	query := exec.NewQueryDOP(p, w.DB, opt.DefaultCostModel(), sim.NewClock(), dop)
	rows, err := query.RunCollect()
	if err != nil {
		t.Fatalf("%s dop=%d: %v", q.Name, dop, err)
	}
	return rows, dmv.Capture(query), p, query.Ctx.Clock.Now()
}

func rowsEqual(a, b []types.Row) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// compareCounterTotals walks the serial and parallelized plan trees in
// tandem — skipping the exchange nodes the rewrite inserted, which have no
// serial counterpart — and requires each node's aggregated totals to match
// the serial node's. Rebinds and timestamps are excluded by design: DOP
// workers each open their scan once (W opens vs 1), and virtual-time
// stamps legitimately shift when zones overlap.
//
// Nodes inside an inserted parallel zone get two documented relaxations:
//
//   - PhysicalReads and IOTime are not compared. Worker buffer pools are
//     private (see storage.WorkerView: sharing the LRU would make eviction
//     order schedule-dependent), so a zone re-scanning pages another
//     operator already cached in the shared pool misses where the serial
//     run hit — exactly as physical reads vary with cache placement across
//     DOP in a real server. LogicalReads stays exact: page accesses don't
//     depend on hit or miss.
//   - If the zone's consumer stopped pulling before exhaustion (e.g. a
//     merge join whose other input ran out), the zone legitimately ran
//     ahead of the serial operator by at most one in-flight batch per
//     worker — semi-blocking exchanges produce ahead of demand, serial and
//     parallel alike. Work counters may then exceed serial, bounded by
//     DOP*GatherBatchRows extra rows. When ActualRows match (the zone was
//     fully consumed — the common case), everything must be exact.
func compareCounterTotals(t *testing.T, name string, dop int, sp, pp *plan.Plan, ss, ps *dmv.Snapshot) {
	t.Helper()
	var walk func(sn, pn *plan.Node, inZone bool)
	walk = func(sn, pn *plan.Node, inZone bool) {
		// An exchange present only in the parallel plan is an artifact of
		// the rewrite: step through it into the parallel zone.
		for pn.Physical == plan.Exchange && sn.Physical != plan.Exchange {
			pn = pn.Children[0]
			inZone = true
		}
		if sn.Physical != pn.Physical {
			t.Fatalf("%s: tandem walk diverged: serial %v vs parallel %v", name, sn.Physical, pn.Physical)
		}
		so, po := ss.Op(sn.ID), ps.Op(pn.ID)
		runAhead := inZone && po.ActualRows > so.ActualRows
		if runAhead && po.ActualRows > so.ActualRows+int64(dop)*exec.GatherBatchRows {
			t.Errorf("%s node %d (%v) ActualRows: parallel %d exceeds serial %d by more than the run-ahead bound",
				name, sn.ID, sn.Physical, po.ActualRows, so.ActualRows)
		}
		type field struct {
			name string
			s, p int64
			// exact fields must match even in a run-ahead zone (structural
			// totals); atLeast fields may exceed serial there.
			exact bool
		}
		fields := []field{
			{"ActualRows", so.ActualRows, po.ActualRows, false},
			{"LogicalReads", so.LogicalReads, po.LogicalReads, false},
			{"PhysicalReads", so.PhysicalReads, po.PhysicalReads, false},
			{"PagesTotal", so.PagesTotal, po.PagesTotal, true},
			{"CPUTime", int64(so.CPUTime), int64(po.CPUTime), false},
			{"IOTime", int64(so.IOTime), int64(po.IOTime), false},
			{"SegmentsProcessed", so.SegmentsProcessed, po.SegmentsProcessed, false},
			{"SegmentsTotal", so.SegmentsTotal, po.SegmentsTotal, true},
			{"InternalDone", so.InternalDone, po.InternalDone, true},
			{"InternalTotal", so.InternalTotal, po.InternalTotal, true},
		}
		// Exchange nodes present in both plans run different operator
		// implementations (serial pull-ahead vs parallel gather) whose CPU
		// accounting matches but whose row counts are split across producer
		// and consumer sides differently; compare only their row flow.
		if sn.Physical == plan.Exchange {
			fields = fields[:1]
		}
		for _, f := range fields {
			if inZone && (f.name == "PhysicalReads" || f.name == "IOTime") {
				continue
			}
			if runAhead && !f.exact {
				if f.p < f.s {
					t.Errorf("%s node %d (%v) %s: parallel %d below serial %d in run-ahead zone",
						name, sn.ID, sn.Physical, f.name, f.p, f.s)
				}
				continue
			}
			if f.s != f.p {
				t.Errorf("%s node %d (%v) %s: serial %d vs parallel %d",
					name, sn.ID, sn.Physical, f.name, f.s, f.p)
			}
		}
		if !po.Opened || !po.Closed {
			t.Errorf("%s node %d (%v): parallel aggregated row not opened+closed (opened=%v closed=%v)",
				name, pn.ID, pn.Physical, po.Opened, po.Closed)
		}
		for i := range sn.Children {
			// Tandem children: the parallel plan's repartition rewrite only
			// triggers under TwoStageAgg, which this test does not enable,
			// so child counts match once inserted gathers are stepped over.
			walk(sn.Children[i], pn.Children[i], inZone)
		}
	}
	walk(sp.Root, pp.Root, false)
}

// TestParallelMatchesSerialEngine is the engine-level differential battery
// over the full TPC-H suite (both physical designs) and TPC-DS.
func TestParallelMatchesSerialEngine(t *testing.T) {
	workloads := []*workload.Workload{
		workload.TPCH(1, workload.TPCHRowstore),
		workload.TPCH(1, workload.TPCHColumnstore),
		workload.TPCDS(7),
	}
	for _, w := range workloads {
		for _, q := range w.Queries {
			sRows, sSnap, sPlan, sEnd := runOnce(t, w, q, 1)
			for _, dop := range []int{2, 4} {
				name := fmt.Sprintf("%s/%s/dop%d", w.Name, q.Name, dop)
				pRows, pSnap, pPlan, _ := runOnce(t, w, q, dop)
				if i, ok := rowsEqual(sRows, pRows); !ok {
					t.Fatalf("%s: result rows differ from serial at index %d (serial %d rows, parallel %d)",
						name, i, len(sRows), len(pRows))
				}
				compareCounterTotals(t, name, dop, sPlan, pPlan, sSnap, pSnap)
			}
			_ = sEnd
		}
	}
}

// TestParallelDeterministic runs the same query twice at the same DOP and
// requires bit-identical rows, counters, and final virtual time.
func TestParallelDeterministic(t *testing.T) {
	w := workload.TPCH(1, workload.TPCHRowstore)
	for _, q := range w.Queries {
		for _, dop := range []int{2, 4} {
			r1, s1, _, e1 := runOnce(t, w, q, dop)
			r2, s2, _, e2 := runOnce(t, w, q, dop)
			if e1 != e2 {
				t.Errorf("%s dop=%d: end time differs across runs: %v vs %v", q.Name, dop, e1, e2)
			}
			if i, ok := rowsEqual(r1, r2); !ok {
				t.Fatalf("%s dop=%d: rows differ across runs at index %d", q.Name, dop, i)
			}
			if len(s1.Threads) != len(s2.Threads) {
				t.Fatalf("%s dop=%d: thread row count differs across runs", q.Name, dop)
			}
			for i := range s1.Threads {
				if s1.Threads[i] != s2.Threads[i] {
					t.Errorf("%s dop=%d: thread row %d differs across runs:\n%+v\n%+v",
						q.Name, dop, i, s1.Threads[i], s2.Threads[i])
				}
			}
		}
	}
}

// TestParallelSpeedsUpScanHeavyQueries requires strictly lower virtual
// elapsed time at DOP 4 on queries dominated by partitionable scans.
func TestParallelSpeedsUpScanHeavyQueries(t *testing.T) {
	w := workload.TPCH(1, workload.TPCHRowstore)
	scanHeavy := map[string]bool{"Q3": true, "Q4": true, "Q6": true, "Q10": true, "Q12": true, "Q14": true}
	for _, q := range w.Queries {
		if !scanHeavy[q.Name] {
			continue
		}
		_, _, _, sEnd := runOnce(t, w, q, 1)
		_, _, _, pEnd := runOnce(t, w, q, 4)
		if pEnd >= sEnd {
			t.Errorf("%s: no parallel speedup: serial %v, dop=4 %v", q.Name, sEnd, pEnd)
		}
	}
}

// TestTwoStageAggregate exercises the opt-in repartition rewrite: a grouped
// hash aggregate over a partitionable scan runs as a two-stage parallel
// plan whose result is multiset-equal (order may differ — groups are
// emitted in worker order) and whose group aggregates are exact.
func TestTwoStageAggregate(t *testing.T) {
	w := workload.TPCH(1, workload.TPCHRowstore)
	// SELECT l_returnflag, count(*), sum(l_quantity) FROM lineitem GROUP BY l_returnflag
	build := func(b *plan.Builder) *plan.Node {
		return b.HashAgg(
			b.TableScan("lineitem", nil, nil),
			[]int{7}, // l_returnflag
			[]expr.AggSpec{{Kind: expr.CountStar}, {Kind: expr.Sum, Arg: expr.C(3, "l_quantity")}},
		)
	}
	serialP := plan.Finalize(build(w.Builder()))
	opt.NewEstimator(w.DB.Catalog).Estimate(serialP)
	w.DB.ColdStart()
	sq := exec.NewQuery(serialP, w.DB, opt.DefaultCostModel(), sim.NewClock())
	sRows, err := sq.RunCollect()
	if err != nil {
		t.Fatal(err)
	}

	for _, dop := range []int{2, 4} {
		root := plan.ParallelizeWith(build(w.Builder()), dop, plan.ParallelizeOptions{TwoStageAgg: true})
		p := plan.Finalize(root)
		// The rewrite must have produced Gather ← HashAgg ← Repartition.
		if p.Root.Physical != plan.Exchange || p.Root.ExchangeKind != plan.GatherStreams {
			t.Fatalf("dop=%d: root is %v, want gather exchange", dop, p.Root.Physical)
		}
		agg := p.Root.Children[0]
		if agg.Physical != plan.HashAggregate || agg.Children[0].ExchangeKind != plan.RepartitionStreams {
			t.Fatalf("dop=%d: missing two-stage shape under gather", dop)
		}
		opt.NewEstimator(w.DB.Catalog).Estimate(p)
		w.DB.ColdStart()
		pq := exec.NewQueryDOP(p, w.DB, opt.DefaultCostModel(), sim.NewClock(), dop)
		pRows, err := pq.RunCollect()
		if err != nil {
			t.Fatalf("dop=%d: %v", dop, err)
		}
		if len(pRows) != len(sRows) {
			t.Fatalf("dop=%d: %d groups vs %d serial", dop, len(pRows), len(sRows))
		}
		want := make(map[string]int, len(sRows))
		for _, r := range sRows {
			want[fmt.Sprint(r)]++
		}
		for _, r := range pRows {
			k := fmt.Sprint(r)
			if want[k] == 0 {
				t.Fatalf("dop=%d: unexpected group row %v", dop, r)
			}
			want[k]--
		}
	}
}
