package exec

import (
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// defaultNLBuffer is how many outer rows a nested-loops join batches
// before probing the inner side when the plan does not specify. Batching
// the outer side (SQL Server's optimized nested loops / prefetching) is
// what makes NL semi-blocking in the paper's §4.4 sense: the outer child's
// k_i races ahead of join output.
const defaultNLBuffer = 1024

// nestedLoops re-executes its inner child once per outer row, binding the
// outer row for correlated inner operators (index seeks, spool replays).
type nestedLoops struct {
	base
	outer, inner Operator

	buf       []types.Row // batched outer rows
	bufPos    int
	outerDone bool

	curOuter  types.Row
	innerLive bool // inner is positioned for curOuter
	matched   bool
	nullInner types.Row
}

func newNestedLoops(n *plan.Node, outer, inner Operator) *nestedLoops {
	nl := &nestedLoops{outer: outer, inner: inner}
	nl.init(n)
	return nl
}

func (nl *nestedLoops) Open(ctx *Ctx) {
	nl.opened(ctx)
	nl.outer.Open(ctx)
	// The inner child opens lazily at the first bind: a correlated seek
	// cannot position itself without an outer row.
}

// Rewind resets the join for a new bind row (stacked NLs: this join sits
// on the inner side of another NL, and its outer child re-positions
// against the new outer row).
func (nl *nestedLoops) Rewind(ctx *Ctx) {
	nl.c.Rebinds++
	nl.buf = nl.buf[:0]
	nl.bufPos = 0
	nl.outerDone = false
	nl.curOuter = nil
	nl.matched = false
	nl.outer.Rewind(ctx)
}

// fillBuffer batches outer rows (§4.4). With a large buffer relative to
// the outer cardinality, the entire outer side is consumed — and its
// driver-node progress hits 100% — before the first inner row is read.
func (nl *nestedLoops) fillBuffer(ctx *Ctx) {
	limit := nl.node.NLBuffer
	if limit == 0 {
		limit = defaultNLBuffer
	}
	nl.buf = nl.buf[:0]
	nl.bufPos = 0
	for len(nl.buf) < limit {
		row, ok := nl.outer.Next(ctx)
		if !ok {
			nl.outerDone = true
			break
		}
		ctx.chargeCPU(&nl.c, ctx.CM.CPUTuple)
		nl.buf = append(nl.buf, row)
	}
	nl.c.BufferedRows = int64(len(nl.buf))
}

func (nl *nestedLoops) bindInner(ctx *Ctx, outerRow types.Row) {
	saved := ctx.Bind
	ctx.Bind = outerRow
	if !nl.innerLive {
		// First execution overall: open now that a bind row exists.
		if nl.inner.Counters().Opened {
			nl.inner.Rewind(ctx)
		} else {
			nl.inner.Open(ctx)
		}
		nl.innerLive = true
	} else {
		nl.inner.Rewind(ctx)
	}
	ctx.Bind = saved
}

func (nl *nestedLoops) Next(ctx *Ctx) (types.Row, bool) {
	kind := nl.node.Logical
	for {
		// Stream inner matches for the current outer row.
		if nl.curOuter != nil {
			for {
				saved := ctx.Bind
				ctx.Bind = nl.curOuter
				innerRow, ok := nl.inner.Next(ctx)
				ctx.Bind = saved
				if !ok {
					break
				}
				joined := nl.curOuter.Concat(innerRow)
				if nl.node.Residual != nil {
					ctx.chargeCPU(&nl.c, ctx.CM.CPUTuple)
					if !expr.EvalPred(nl.node.Residual, joined) {
						continue
					}
				}
				nl.matched = true
				switch kind {
				case plan.LogicalLeftSemiJoin:
					o := nl.curOuter
					nl.curOuter = nil
					nl.emit()
					return o, true
				case plan.LogicalLeftAntiSemiJoin:
					// Disqualified; drain remaining inner lazily by
					// falling out of the loop.
				default:
					nl.emit()
					return joined, true
				}
				if kind == plan.LogicalLeftAntiSemiJoin {
					break
				}
			}
			o := nl.curOuter
			nl.curOuter = nil
			if o != nil && !nl.matched {
				switch kind {
				case plan.LogicalLeftOuterJoin:
					if nl.nullInner == nil {
						nl.nullInner = make(types.Row, nl.node.Width-len(o))
					}
					nl.emit()
					return o.Concat(nl.nullInner), true
				case plan.LogicalLeftAntiSemiJoin:
					nl.emit()
					return o, true
				}
			}
		}
		// Advance to the next buffered outer row, refilling as needed.
		if nl.bufPos >= len(nl.buf) {
			if nl.outerDone {
				return nil, false
			}
			nl.fillBuffer(ctx)
			if len(nl.buf) == 0 {
				return nil, false
			}
		}
		nl.curOuter = nl.buf[nl.bufPos]
		nl.bufPos++
		nl.c.BufferedRows = int64(len(nl.buf) - nl.bufPos)
		nl.matched = false
		nl.bindInner(ctx, nl.curOuter)
	}
}

func (nl *nestedLoops) Close(ctx *Ctx) {
	if nl.c.Closed {
		return
	}
	nl.outer.Close(ctx)
	// Close the inner side even if it never opened (zero outer rows):
	// the subtree will never run, and downstream progress consumers treat
	// closed as "no further work".
	nl.inner.Close(ctx)
	nl.closed(ctx)
}
