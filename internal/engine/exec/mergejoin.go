package exec

import (
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// mergeJoin joins two inputs sorted on the join keys, buffering runs of
// equal keys on the right side to handle many-to-many matches. Supported
// variants: inner, left outer, left semi, left anti.
type mergeJoin struct {
	base
	left, right Operator

	curLeft   types.Row
	run       []types.Row // right-side rows equal to runKey
	runKey    types.Row
	runPos    int
	nextRight types.Row // right row read past the current run
	rightDone bool
	leftDone  bool
	matched   bool
	nullRight types.Row
}

func newMergeJoin(n *plan.Node, left, right Operator) *mergeJoin {
	m := &mergeJoin{left: left, right: right}
	m.init(n)
	return m
}

func (m *mergeJoin) Open(ctx *Ctx) {
	m.opened(ctx)
	m.left.Open(ctx)
	m.right.Open(ctx)
}

func (m *mergeJoin) Rewind(ctx *Ctx) {
	panic("exec: merge join cannot be rewound")
}

// cmpKeys orders a left row against a right row on the join keys.
func (m *mergeJoin) cmpKeys(l, r types.Row) int {
	return types.CompareCols(l, r, m.node.JoinLeftCols, m.node.JoinRightCols, nil)
}

// advanceRight loads the run of right rows matching the current left row's
// key, skipping lesser right rows.
func (m *mergeJoin) advanceRight(ctx *Ctx) {
	// Reuse the existing run if the key still matches.
	if m.runKey != nil && m.cmpKeys(m.curLeft, m.runKey) == 0 {
		m.runPos = 0
		return
	}
	m.run = m.run[:0]
	m.runKey = nil
	m.runPos = 0
	for {
		var r types.Row
		if m.nextRight != nil {
			r = m.nextRight
			m.nextRight = nil
		} else if m.rightDone {
			return
		} else {
			var ok bool
			r, ok = m.right.Next(ctx)
			if !ok {
				m.rightDone = true
				return
			}
			ctx.chargeCPU(&m.c, ctx.CM.CPUTuple)
		}
		c := m.cmpKeys(m.curLeft, r)
		switch {
		case c > 0:
			continue // right row too small; skip
		case c == 0:
			if m.runKey == nil {
				m.runKey = r
			}
			m.run = append(m.run, r)
			// Keep pulling until the run ends.
		default:
			m.nextRight = r // right ran ahead; stash for later keys
			return
		}
	}
}

func (m *mergeJoin) Next(ctx *Ctx) (types.Row, bool) {
	kind := m.node.Logical
	for {
		// Emit remaining matches for the current left row.
		for m.curLeft != nil && m.runPos < len(m.run) {
			r := m.run[m.runPos]
			m.runPos++
			joined := m.curLeft.Concat(r)
			if m.node.Residual != nil && !expr.EvalPred(m.node.Residual, joined) {
				continue
			}
			m.matched = true
			switch kind {
			case plan.LogicalLeftSemiJoin:
				l := m.curLeft
				m.curLeft = nil
				m.emit()
				return l, true
			case plan.LogicalLeftAntiSemiJoin:
				m.runPos = len(m.run) // disqualified; skip rest
			default:
				m.emit()
				return joined, true
			}
		}
		if m.curLeft != nil {
			l := m.curLeft
			m.curLeft = nil
			if !m.matched {
				switch kind {
				case plan.LogicalLeftOuterJoin:
					if m.nullRight == nil {
						m.nullRight = make(types.Row, m.node.Width-len(l))
					}
					m.emit()
					return l.Concat(m.nullRight), true
				case plan.LogicalLeftAntiSemiJoin:
					m.emit()
					return l, true
				}
			}
		}
		if m.leftDone {
			return nil, false
		}
		l, ok := m.left.Next(ctx)
		if !ok {
			m.leftDone = true
			return nil, false
		}
		ctx.chargeCPU(&m.c, ctx.CM.CPUTuple)
		m.curLeft = l
		m.matched = false
		m.advanceRight(ctx)
	}
}

func (m *mergeJoin) Close(ctx *Ctx) {
	if m.c.Closed {
		return
	}
	m.left.Close(ctx)
	m.right.Close(ctx)
	m.closed(ctx)
}
