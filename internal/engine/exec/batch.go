package exec

import (
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// This file is the vectorized execution path: operators that produce rows
// a batch at a time instead of one GetNext call per row. The contract with
// the row-mode executor is strict (DESIGN §4g, pinned by the differential
// battery in internal/metrics):
//
//   - Output rows are byte-identical to row mode at any batch size.
//   - Every clock advance and counter mutation happens per row, in the
//     same order and granularity as row mode, so final counters — and at
//     batch size 1, every polled snapshot — are identical. Only the
//     checkpoint (poller yield, chaos consultation, cancellation check) is
//     amortized to one per batch via Ctx.checkpointBatch.
//   - At batch sizes above 1, producer stages run up to one batch ahead of
//     their consumers, so mid-query snapshots may show bounded progress
//     skew between pipeline stages; totals are unaffected.
//
// Hot loops use compiled predicates/expressions (expr.CompilePred,
// expr.CompileExpr), which evaluate exactly like the interpreted forms.

// BatchOperator is the vectorized sibling of Operator. NextBatch appends
// up to min(ctx.BatchSize, cap(dst)) rows to dst (passed in empty,
// capacity reused across calls) and returns the extended slice; an empty
// result means the operator is exhausted. Non-empty results may be shorter
// than the limit. Honoring cap(dst) lets consumers ask for less than a
// full batch — the batchToRow ramp under rebind-heavy consumers.
type BatchOperator interface {
	Open(ctx *Ctx)
	NextBatch(ctx *Ctx, dst []types.Row) []types.Row
	Close(ctx *Ctx)
	Rewind(ctx *Ctx)
	Counters() *Counters
}

// batchLimit is the row limit of one NextBatch call: the configured batch
// size, tightened by the capacity of the destination the consumer passed.
func batchLimit(ctx *Ctx, dst []types.Row) int {
	lim := ctx.BatchSize
	if c := cap(dst); c > 0 && c < lim {
		lim = c
	}
	return lim
}

// batchNative reports whether a plan node has a native batch
// implementation. Everything else (joins, sorts, spools, exchanges) runs
// in row mode behind an adapter until it gets a native port.
func batchNative(n *plan.Node) bool {
	switch n.Physical {
	case plan.TableScan, plan.ConstantScan, plan.ColumnstoreIndexScan,
		plan.Filter, plan.ComputeScalar, plan.StreamAggregate:
		return true
	}
	return false
}

// BuildBatchOperator constructs the batch operator tree for n. Nodes
// without a native batch implementation are built as row operators behind
// a rowToBatch adapter (their own children recurse through BuildOperator
// and may re-enter batch mode below).
func BuildBatchOperator(n *plan.Node, ctx *Ctx) BatchOperator {
	switch n.Physical {
	case plan.TableScan:
		return newBatchTableScan(n)
	case plan.ConstantScan:
		return newBatchConstantScan(n)
	case plan.ColumnstoreIndexScan:
		return newBatchColumnstoreScan(n)
	case plan.Filter:
		return newBatchFilter(n, BuildBatchOperator(n.Children[0], ctx))
	case plan.ComputeScalar:
		return newBatchCompute(n, BuildBatchOperator(n.Children[0], ctx))
	case plan.StreamAggregate:
		return newBatchStreamAgg(n, BuildBatchOperator(n.Children[0], ctx))
	default:
		return &rowToBatch{op: buildRowOperator(n, ctx)}
	}
}

// batchRampInitial is the batch size a batchToRow adapter starts at,
// doubling toward ctx.BatchSize while demand is sustained. A consumer that
// abandons the stream early — the inner side of a nested-loops join pulls
// a handful of rows, then rewinds — would otherwise pay a full batch of
// vectorized read-ahead per rebind and run *slower* than row mode.
const batchRampInitial = 32

// batchToRow adapts a batch subtree for a row-mode consumer (or the query
// root). It owns the batch buffer and carries no counters of its own: its
// Counters are the adapted operator's, so the DMV sees the plan node, not
// the adapter.
type batchToRow struct {
	b BatchOperator
	// back is the full-capacity backing array; buf is the live slice of it
	// returned by the last NextBatch (capped at want rows).
	back []types.Row
	buf  []types.Row
	pos  int
	want int
	eof  bool
}

func newBatchToRow(b BatchOperator) *batchToRow { return &batchToRow{b: b} }

func (a *batchToRow) Counters() *Counters { return a.b.Counters() }

func (a *batchToRow) resetRamp(ctx *Ctx) {
	a.want = batchRampInitial
	if a.want > ctx.BatchSize {
		a.want = ctx.BatchSize
	}
}

func (a *batchToRow) Open(ctx *Ctx) {
	if a.back == nil {
		a.back = make([]types.Row, 0, ctx.BatchSize)
	}
	a.resetRamp(ctx)
	a.b.Open(ctx)
}

func (a *batchToRow) Next(ctx *Ctx) (row types.Row, ok bool) {
	if a.pos >= len(a.buf) {
		if a.eof {
			return nil, false
		}
		a.buf = a.b.NextBatch(ctx, a.back[:0:a.want])
		a.pos = 0
		if len(a.buf) == 0 {
			a.eof = true
			return nil, false
		}
		if len(a.buf) == a.want && a.want < ctx.BatchSize {
			// Demand sustained through a full batch: ramp up.
			a.want *= 2
			if a.want > ctx.BatchSize {
				a.want = ctx.BatchSize
			}
		}
	}
	row = a.buf[a.pos]
	a.pos++
	return row, true
}

func (a *batchToRow) Close(ctx *Ctx) { a.b.Close(ctx) }

func (a *batchToRow) Rewind(ctx *Ctx) {
	a.buf = nil
	a.pos = 0
	a.eof = false
	a.resetRamp(ctx)
	a.b.Rewind(ctx)
}

// rowToBatch adapts a row-mode operator for a batch consumer. Like
// batchToRow it is pure plumbing: no charges, no counters of its own.
type rowToBatch struct {
	op  Operator
	eof bool
}

func (a *rowToBatch) Counters() *Counters { return a.op.Counters() }

func (a *rowToBatch) Open(ctx *Ctx) { a.op.Open(ctx) }

func (a *rowToBatch) NextBatch(ctx *Ctx, dst []types.Row) []types.Row {
	if a.eof {
		return dst
	}
	lim := batchLimit(ctx, dst)
	for len(dst) < lim {
		row, ok := a.op.Next(ctx)
		if !ok {
			a.eof = true
			break
		}
		dst = append(dst, row)
	}
	return dst
}

func (a *rowToBatch) Close(ctx *Ctx) { a.op.Close(ctx) }

func (a *rowToBatch) Rewind(ctx *Ctx) {
	a.eof = false
	a.op.Rewind(ctx)
}

// storageFilterCompiled is storageFilter with a precompiled pushed
// predicate: the storage-engine-level filtering of §4.3 (pushed predicate,
// then bitmap probe), rejecting rows before they count toward k_i.
func storageFilterCompiled(ctx *Ctx, n *plan.Node, pushed expr.PredFn, row types.Row) bool {
	if pushed != nil && !pushed(row) {
		return false
	}
	if n.BitmapSource != nil {
		bf := ctx.Bitmaps[n.BitmapSource.ID]
		if bf == nil {
			panic("exec: scan references an unregistered bitmap")
		}
		if !bf.probe(row.HashCols(n.BitmapProbeCols)) {
			return false
		}
	}
	return true
}

// batchTableScan is the vectorized heap scan. It iterates page runs
// (HeapCursor.NextPageRows) instead of per-row cursor calls; the charge
// sequence per page — one I/O charge when the page is entered, then
// per-row CPU — is identical to the row-mode scan's.
type batchTableScan struct {
	base
	cur      *storage.HeapCursor
	page     []types.Row
	pushed   expr.PredFn
	pred     expr.PredFn
	pushCost float64
	predCost float64
}

func newBatchTableScan(n *plan.Node) *batchTableScan {
	s := &batchTableScan{}
	s.init(n)
	s.pushCost = float64(expr.Cost(n.PushedPred))
	s.predCost = float64(expr.Cost(n.Pred))
	s.pushed = expr.CompilePred(n.PushedPred)
	s.pred = expr.CompilePred(n.Pred)
	return s
}

func (s *batchTableScan) Open(ctx *Ctx) {
	s.opened(ctx)
	h := ctx.DB.Heap(s.node.Table)
	if ctx.Parts > 1 {
		s.cur = h.PartitionCursor(ctx.DB.Pool, ctx.Part, ctx.Parts)
		s.c.PagesTotal = h.PartitionPages(ctx.Part, ctx.Parts)
		return
	}
	s.cur = h.Cursor(ctx.DB.Pool)
	s.c.PagesTotal = h.NumPages()
}

func (s *batchTableScan) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.page = nil
	s.cur.Reset()
}

func (s *batchTableScan) NextBatch(ctx *Ctx, dst []types.Row) []types.Row {
	perRow := ctx.CM.CPUTuple + s.pushCost*ctx.CM.CPUExprUnit
	predNS := s.predCost * ctx.CM.CPUExprUnit
	charges := 0
	lim := batchLimit(ctx, dst)
	for len(dst) < lim {
		if len(s.page) == 0 {
			rows, ok := s.cur.NextPageRows()
			if !ok {
				break
			}
			ctx.chargeIO(&s.c, s.cur.DrainIO())
			s.page = rows
		}
		row := s.page[0]
		s.page = s.page[1:]
		ctx.chargeCPURow(&s.c, perRow)
		charges++
		if !storageFilterCompiled(ctx, s.node, s.pushed, row) {
			continue
		}
		if s.pred != nil {
			ctx.chargeCPURow(&s.c, predNS)
			charges++
			if !s.pred(row) {
				continue
			}
		}
		s.emit()
		dst = append(dst, row)
	}
	ctx.checkpointBatch(&s.c, charges)
	return dst
}

func (s *batchTableScan) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.closed(ctx)
}

// batchConstantScan emits literal rows a batch at a time.
type batchConstantScan struct {
	base
	pos int
}

func newBatchConstantScan(n *plan.Node) *batchConstantScan {
	s := &batchConstantScan{}
	s.init(n)
	return s
}

func (s *batchConstantScan) Open(ctx *Ctx)   { s.opened(ctx) }
func (s *batchConstantScan) Rewind(ctx *Ctx) { s.c.Rebinds++; s.pos = 0 }

func (s *batchConstantScan) NextBatch(ctx *Ctx, dst []types.Row) []types.Row {
	charges := 0
	lim := batchLimit(ctx, dst)
	for len(dst) < lim && s.pos < len(s.node.ConstRows) {
		ctx.chargeCPURow(&s.c, ctx.CM.CPUTuple)
		charges++
		row := s.node.ConstRows[s.pos]
		s.pos++
		s.emit()
		dst = append(dst, row)
	}
	ctx.checkpointBatch(&s.c, charges)
	return dst
}

func (s *batchConstantScan) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.closed(ctx)
}

// batchColumnstoreScan reads row groups exactly like the row-mode
// columnstore scan (which is already internally batched per §4.7) but
// serves the filtered rows out by the batch. A row group is only read when
// the buffer is empty, so the charge order matches row mode: the demand
// that drains the last buffered row is the one that pays for the next
// group.
type batchColumnstoreScan struct {
	base
	cs       *storage.ColumnStore
	cols     []int
	group    int
	gLo, gHi int
	buf      []types.Row
	pos      int
	pushed   expr.PredFn
	pred     expr.PredFn
}

func newBatchColumnstoreScan(n *plan.Node) *batchColumnstoreScan {
	s := &batchColumnstoreScan{}
	s.init(n)
	s.pushed = expr.CompilePred(n.PushedPred)
	s.pred = expr.CompilePred(n.Pred)
	return s
}

func (s *batchColumnstoreScan) Open(ctx *Ctx) {
	s.opened(ctx)
	s.cs = ctx.DB.ColumnStore(s.node.Table, s.node.Index)
	s.cols = s.node.AccessedCols
	if len(s.cols) == 0 {
		s.cols = make([]int, s.cs.NumColumns())
		for i := range s.cols {
			s.cols[i] = i
		}
	}
	s.gLo, s.gHi = 0, s.cs.NumRowGroups()
	if ctx.Parts > 1 {
		s.gLo, s.gHi = s.cs.PartitionGroups(ctx.Part, ctx.Parts)
		s.c.SegmentsTotal = int64(s.gHi-s.gLo) * int64(len(s.cols))
	} else {
		s.c.SegmentsTotal = s.cs.TotalSegments(len(s.cols))
	}
	s.group = s.gLo
	s.c.PagesTotal = s.c.SegmentsTotal
}

func (s *batchColumnstoreScan) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.group = s.gLo
	s.buf = nil
	s.pos = 0
}

func (s *batchColumnstoreScan) NextBatch(ctx *Ctx, dst []types.Row) []types.Row {
	lim := batchLimit(ctx, dst)
	for len(dst) < lim {
		if s.pos < len(s.buf) {
			row := s.buf[s.pos]
			s.pos++
			s.emit()
			dst = append(dst, row)
			continue
		}
		if s.group >= s.gHi {
			break
		}
		var io storage.IOCounts
		batch := s.cs.ReadRowGroup(s.group, s.cols, ctx.DB.Pool, &io)
		s.group++
		ctx.chargeSegments(&s.c, int64(len(s.cols)), io)
		out := batch[:0]
		for _, row := range batch {
			if storageFilterCompiled(ctx, s.node, s.pushed, row) && (s.pred == nil || s.pred(row)) {
				out = append(out, row)
			}
		}
		ctx.chargeCPU(&s.c, float64(len(batch))*ctx.CM.CPUBatchRow)
		s.buf = out
		s.pos = 0
	}
	return dst
}

func (s *batchColumnstoreScan) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.closed(ctx)
}

// batchFilter passes rows satisfying its predicate, a child batch at a
// time.
type batchFilter struct {
	base
	child    BatchOperator
	in       []types.Row
	pred     expr.PredFn
	predCost float64
	eof      bool
}

func newBatchFilter(n *plan.Node, child BatchOperator) *batchFilter {
	f := &batchFilter{child: child}
	f.init(n)
	f.predCost = float64(expr.Cost(n.Pred))
	f.pred = expr.CompilePred(n.Pred)
	return f
}

func (f *batchFilter) Open(ctx *Ctx) {
	f.opened(ctx)
	if f.in == nil {
		f.in = make([]types.Row, 0, ctx.BatchSize)
	}
	f.child.Open(ctx)
}

func (f *batchFilter) Rewind(ctx *Ctx) {
	f.c.Rebinds++
	f.eof = false
	f.child.Rewind(ctx)
}

func (f *batchFilter) NextBatch(ctx *Ctx, dst []types.Row) []types.Row {
	if f.eof {
		return dst
	}
	perRow := ctx.CM.CPUTuple + f.predCost*ctx.CM.CPUExprUnit
	lim := batchLimit(ctx, dst)
	for {
		// f.in is the full-capacity backing; the limit is applied per call
		// (it varies while a downstream batchToRow ramp is warming up).
		in := f.child.NextBatch(ctx, f.in[:0:lim])
		if len(in) == 0 {
			f.eof = true
			return dst
		}
		charges := 0
		for _, row := range in {
			ctx.chargeCPURow(&f.c, perRow)
			charges++
			if f.pred == nil || f.pred(row) {
				f.emit()
				dst = append(dst, row)
			}
		}
		ctx.checkpointBatch(&f.c, charges)
		if len(dst) > 0 {
			return dst
		}
	}
}

func (f *batchFilter) Close(ctx *Ctx) {
	if f.c.Closed {
		return
	}
	f.child.Close(ctx)
	f.closed(ctx)
}

// batchCompute appends computed expressions to each row of a child batch.
// Output rows are materialized into one fresh backing array per batch (a
// single allocation amortizing row mode's per-row allocation). The backing
// must be fresh, not recycled: consumers — sorts, hash builds, spools,
// exchange buffers — retain row references past the batch lifetime.
type batchCompute struct {
	base
	child BatchOperator
	in    []types.Row
	exprs []func(types.Row) types.Value
	cost  float64
	eof   bool
}

func newBatchCompute(n *plan.Node, child BatchOperator) *batchCompute {
	c := &batchCompute{child: child}
	c.init(n)
	total := 0
	for _, e := range n.Exprs {
		total += expr.Cost(e)
	}
	c.cost = float64(total)
	c.exprs = make([]func(types.Row) types.Value, len(n.Exprs))
	for i, e := range n.Exprs {
		c.exprs[i] = expr.CompileExpr(e)
	}
	return c
}

func (c *batchCompute) Open(ctx *Ctx) {
	c.opened(ctx)
	if c.in == nil {
		c.in = make([]types.Row, 0, ctx.BatchSize)
	}
	c.child.Open(ctx)
}

func (c *batchCompute) Rewind(ctx *Ctx) {
	c.c.Rebinds++
	c.eof = false
	c.child.Rewind(ctx)
}

func (c *batchCompute) NextBatch(ctx *Ctx, dst []types.Row) []types.Row {
	if c.eof {
		return dst
	}
	in := c.child.NextBatch(ctx, c.in[:0:batchLimit(ctx, dst)])
	if len(in) == 0 {
		c.eof = true
		return dst
	}
	perRow := ctx.CM.CPUTuple + c.cost*ctx.CM.CPUExprUnit
	total := 0
	for _, row := range in {
		total += len(row) + len(c.exprs)
	}
	backing := make([]types.Value, 0, total)
	charges := 0
	for _, row := range in {
		ctx.chargeCPURow(&c.c, perRow)
		charges++
		start := len(backing)
		backing = append(backing, row...)
		for _, f := range c.exprs {
			backing = append(backing, f(row))
		}
		out := types.Row(backing[start:len(backing):len(backing)])
		c.emit()
		dst = append(dst, out)
	}
	ctx.checkpointBatch(&c.c, charges)
	return dst
}

func (c *batchCompute) Close(ctx *Ctx) {
	if c.c.Closed {
		return
	}
	c.child.Close(ctx)
	c.closed(ctx)
}

// batchStreamAgg aggregates ordered input a child batch at a time. Group
// keys are projected only at group boundaries (row mode pays the same
// projection; see streamAgg) and the boundary comparison uses a cached
// identity column list.
type batchStreamAgg struct {
	base
	child  BatchOperator
	in     []types.Row
	curKey types.Row
	states []expr.AggState
	idCols []int
	open   bool
	done   bool
}

func newBatchStreamAgg(n *plan.Node, child BatchOperator) *batchStreamAgg {
	s := &batchStreamAgg{child: child}
	s.init(n)
	s.idCols = identityCols(len(n.GroupCols))
	return s
}

func (s *batchStreamAgg) Open(ctx *Ctx) {
	s.opened(ctx)
	if s.in == nil {
		s.in = make([]types.Row, 0, ctx.BatchSize)
	}
	s.child.Open(ctx)
}

func (s *batchStreamAgg) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.curKey = nil
	s.states = nil
	s.open = false
	s.done = false
	s.child.Rewind(ctx)
}

func (s *batchStreamAgg) freshStates() []expr.AggState {
	states := make([]expr.AggState, len(s.node.Aggs))
	for i, a := range s.node.Aggs {
		states[i] = expr.NewAggState(a)
	}
	return states
}

func (s *batchStreamAgg) result() types.Row {
	out := make(types.Row, 0, len(s.node.GroupCols)+len(s.states))
	out = append(out, s.curKey...)
	for _, st := range s.states {
		out = append(out, st.Result())
	}
	return out
}

func (s *batchStreamAgg) NextBatch(ctx *Ctx, dst []types.Row) []types.Row {
	if s.done {
		return dst
	}
	gcols := s.node.GroupCols
	perRow := ctx.CM.CPUTuple + float64(len(s.node.Aggs))*ctx.CM.CPUAggUpdate
	lim := batchLimit(ctx, dst)
	for {
		in := s.child.NextBatch(ctx, s.in[:0:lim])
		if len(in) == 0 {
			s.done = true
			// Emit the final group; a scalar aggregate emits one row even
			// over empty input.
			if s.open || len(gcols) == 0 {
				if !s.open {
					s.curKey = types.Row{}
					s.states = s.freshStates()
				}
				out := s.result()
				s.emit()
				dst = append(dst, out)
			}
			return dst
		}
		charges := 0
		for _, row := range in {
			s.c.InputRows++
			ctx.chargeCPURow(&s.c, perRow)
			charges++
			if !s.open {
				s.open = true
				s.curKey = projectCols(row, gcols)
				s.states = s.freshStates()
			} else if !types.EqualCols(row, s.curKey, gcols, s.idCols) {
				out := s.result()
				s.curKey = projectCols(row, gcols)
				s.states = s.freshStates()
				s.emit()
				dst = append(dst, out)
			}
			for i := range s.states {
				s.states[i].Add(row)
			}
		}
		ctx.checkpointBatch(&s.c, charges)
		if len(dst) > 0 {
			return dst
		}
	}
}

func (s *batchStreamAgg) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.child.Close(ctx)
	s.closed(ctx)
}
