package exec

import (
	"container/heap"
	"sort"

	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/trace"
)

// sortOp is the blocking Sort (and Distinct Sort) operator: Open consumes
// the entire input, then Next streams the ordered output. Its two internal
// phases — input consumption and output production — are exactly the
// §4.5 phenomenon: most of the operator's work happens before the first
// row is output, so output-count-only progress estimates sit at 0% for
// most of the operator's lifetime.
type sortOp struct {
	base
	child    Operator
	rows     []types.Row
	pos      int
	distinct bool
	// overBudget: the input outgrew the query's memory grant; the sort
	// degrades to an external (spilled) sort rather than aborting.
	overBudget bool
}

func newSort(n *plan.Node, child Operator) *sortOp {
	s := &sortOp{child: child, distinct: n.Physical == plan.DistinctSort}
	s.init(n)
	return s
}

func (s *sortOp) Open(ctx *Ctx) {
	s.opened(ctx)
	s.child.Open(ctx)
	s.fill(ctx)
}

func (s *sortOp) fill(ctx *Ctx) {
	s.rows = s.rows[:0]
	s.pos = 0
	for {
		row, ok := s.child.Next(ctx)
		if !ok {
			break
		}
		// Run generation interleaves with input consumption (as external
		// sorts do), so the comparison work is charged incrementally: the
		// log factor grows with the rows seen so far.
		ctx.chargeCPU(&s.c, ctx.CM.CPUTuple+ctx.CM.SortRowCPU(float64(len(s.rows)+2)))
		s.c.InputRows++
		if !ctx.reserveMem(&s.c, 1, true) {
			if !s.overBudget && ctx.Trace != nil {
				ctx.Trace.Record(trace.KindMemDegrade, s.c.NodeID, "sort exceeds grant: degrading to external sort", 0)
			}
			s.overBudget = true
		}
		s.rows = append(s.rows, row)
	}
	// The input subtree is fully drained: shut it down, as real engines
	// do, so its operators report closed while the sort works and emits.
	s.child.Close(ctx)
	cols, desc := s.node.SortCols, s.node.SortDesc
	sort.SliceStable(s.rows, func(i, j int) bool {
		return types.CompareCols(s.rows[i], s.rows[j], cols, cols, desc) < 0
	})
	s.spillMerge(ctx)
	// The final merge pass is charged on output (per row in Next).
}

// spillMerge simulates the external merge passes of a sort whose input
// exceeded the memory budget: each pass rewrites every row once
// (sequential spill I/O plus a comparison). The work is charged in chunks
// so DMV polls observe time advancing, and reported through the
// InternalDone/InternalTotal counters — the §7 "internal state of blocking
// operators" the real DMV does not expose. Under the plain GetNext model
// this phase is invisible: the sort has consumed all input but emitted
// nothing, the exact regime where the paper says "even more intricate
// models may be needed".
func (s *sortOp) spillMerge(ctx *Ctx) {
	passes := ctx.CM.SortMergePasses(float64(len(s.rows)))
	if passes == 0 && s.overBudget {
		// The memory grant forced a spill the cost model alone would not
		// have predicted: at least one external pass.
		passes = 1
	}
	if passes == 0 {
		return
	}
	total := int64(passes) * int64(len(s.rows))
	s.c.InternalTotal = total
	if ctx.Trace != nil {
		ctx.Trace.Record(trace.KindSpillBegin, s.c.NodeID, "external merge", total)
	}
	perRow := ctx.CM.SpillIOPerRow + ctx.CM.CPUSortCompare
	const chunk = 512
	for done := int64(0); done < total; done += chunk {
		n := int64(chunk)
		if done+n > total {
			n = total - done
		}
		ctx.chaosSpillWrite(&s.c)
		ctx.chargeCPU(&s.c, float64(n)*perRow)
		s.c.InternalDone = done + n
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(trace.KindSpillEnd, s.c.NodeID, "", total)
	}
}

func (s *sortOp) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.pos = 0 // input is already sorted; a rewind just replays
}

func (s *sortOp) Next(ctx *Ctx) (types.Row, bool) {
	for s.pos < len(s.rows) {
		row := s.rows[s.pos]
		s.pos++
		if s.distinct && s.pos > 1 {
			prev := s.rows[s.pos-2]
			if types.CompareCols(row, prev, s.node.SortCols, s.node.SortCols, nil) == 0 {
				continue
			}
		}
		ctx.chargeCPU(&s.c, ctx.CM.CPUTuple+ctx.CM.CPUSortCompare)
		s.emit()
		return row, true
	}
	return nil, false
}

func (s *sortOp) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.child.Close(ctx)
	ctx.releaseMem(&s.c)
	s.closed(ctx)
}

// topNSort keeps only the first N rows of the sort order, using a bounded
// max-heap so memory and comparison costs scale with N, not the input.
type topNSort struct {
	base
	child Operator
	h     rowHeap
	out   []types.Row
	pos   int
}

func newTopNSort(n *plan.Node, child Operator) *topNSort {
	t := &topNSort{child: child}
	t.init(n)
	return t
}

// rowHeap is a max-heap under the sort order: the root is the worst
// retained row, evicted when a better one arrives.
type rowHeap struct {
	rows []types.Row
	cols []int
	desc []bool
}

func (h rowHeap) Len() int { return len(h.rows) }
func (h rowHeap) Less(i, j int) bool {
	return types.CompareCols(h.rows[i], h.rows[j], h.cols, h.cols, h.desc) > 0
}
func (h rowHeap) Swap(i, j int)       { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x interface{}) { h.rows = append(h.rows, x.(types.Row)) }
func (h *rowHeap) Pop() interface{} {
	r := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return r
}

func (t *topNSort) Open(ctx *Ctx) {
	t.opened(ctx)
	t.child.Open(ctx)
	t.h = rowHeap{cols: t.node.SortCols, desc: t.node.SortDesc}
	n := int(t.node.TopN)
	for {
		row, ok := t.child.Next(ctx)
		if !ok {
			break
		}
		t.c.InputRows++
		ctx.chargeCPU(&t.c, ctx.CM.CPUTuple+ctx.CM.CPUSortCompare*4)
		if t.h.Len() < n {
			// The heap is the operator's whole workspace (bounded by N);
			// a top-N that cannot hold N rows aborts.
			ctx.reserveMem(&t.c, 1, false)
			heap.Push(&t.h, row)
			continue
		}
		worst := t.h.rows[0]
		if types.CompareCols(row, worst, t.node.SortCols, t.node.SortCols, t.node.SortDesc) < 0 {
			t.h.rows[0] = row
			heap.Fix(&t.h, 0)
		}
	}
	t.child.Close(ctx) // input subtree drained: shut it down
	// Drain the heap into ascending output order; the cost is charged per
	// row as the operator emits.
	t.out = make([]types.Row, t.h.Len())
	for i := t.h.Len() - 1; i >= 0; i-- {
		t.out[i] = heap.Pop(&t.h).(types.Row)
	}
}

func (t *topNSort) Rewind(ctx *Ctx) {
	t.c.Rebinds++
	t.pos = 0
}

func (t *topNSort) Next(ctx *Ctx) (types.Row, bool) {
	if t.pos >= len(t.out) {
		return nil, false
	}
	ctx.chargeCPU(&t.c, ctx.CM.CPUTuple)
	row := t.out[t.pos]
	t.pos++
	t.emit()
	return row, true
}

func (t *topNSort) Close(ctx *Ctx) {
	if t.c.Closed {
		return
	}
	t.child.Close(ctx)
	ctx.releaseMem(&t.c)
	t.closed(ctx)
}
