package exec

import (
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// filter passes rows satisfying its predicate.
type filter struct {
	base
	child    Operator
	predCost float64
}

func newFilter(n *plan.Node, child Operator) *filter {
	f := &filter{child: child}
	f.init(n)
	f.predCost = float64(expr.Cost(n.Pred))
	return f
}

func (f *filter) Open(ctx *Ctx) {
	f.opened(ctx)
	f.child.Open(ctx)
}

func (f *filter) Rewind(ctx *Ctx) {
	f.c.Rebinds++
	f.child.Rewind(ctx)
}

func (f *filter) Next(ctx *Ctx) (types.Row, bool) {
	for {
		row, ok := f.child.Next(ctx)
		if !ok {
			return nil, false
		}
		ctx.chargeCPU(&f.c, ctx.CM.CPUTuple+f.predCost*ctx.CM.CPUExprUnit)
		if expr.EvalPred(f.node.Pred, row) {
			f.emit()
			return row, true
		}
	}
}

func (f *filter) Close(ctx *Ctx) {
	if f.c.Closed {
		return
	}
	f.child.Close(ctx)
	f.closed(ctx)
}

// computeScalar appends computed expressions to each row.
type computeScalar struct {
	base
	child Operator
	cost  float64
}

func newComputeScalar(n *plan.Node, child Operator) *computeScalar {
	c := &computeScalar{child: child}
	c.init(n)
	total := 0
	for _, e := range n.Exprs {
		total += expr.Cost(e)
	}
	c.cost = float64(total)
	return c
}

func (c *computeScalar) Open(ctx *Ctx) {
	c.opened(ctx)
	c.child.Open(ctx)
}

func (c *computeScalar) Rewind(ctx *Ctx) {
	c.c.Rebinds++
	c.child.Rewind(ctx)
}

func (c *computeScalar) Next(ctx *Ctx) (types.Row, bool) {
	row, ok := c.child.Next(ctx)
	if !ok {
		return nil, false
	}
	ctx.chargeCPU(&c.c, ctx.CM.CPUTuple+c.cost*ctx.CM.CPUExprUnit)
	out := make(types.Row, 0, len(row)+len(c.node.Exprs))
	out = append(out, row...)
	for _, e := range c.node.Exprs {
		out = append(out, e.Eval(row))
	}
	c.emit()
	return out, true
}

func (c *computeScalar) Close(ctx *Ctx) {
	if c.c.Closed {
		return
	}
	c.child.Close(ctx)
	c.closed(ctx)
}

// segment passes rows through while tracking group boundaries on its
// grouping columns (consumers observe groups positionally).
type segment struct {
	base
	child Operator
	prev  types.Row
}

func newSegment(n *plan.Node, child Operator) *segment {
	s := &segment{child: child}
	s.init(n)
	return s
}

func (s *segment) Open(ctx *Ctx) {
	s.opened(ctx)
	s.child.Open(ctx)
}

func (s *segment) Rewind(ctx *Ctx) {
	s.c.Rebinds++
	s.prev = nil
	s.child.Rewind(ctx)
}

func (s *segment) Next(ctx *Ctx) (types.Row, bool) {
	row, ok := s.child.Next(ctx)
	if !ok {
		return nil, false
	}
	ctx.chargeCPU(&s.c, ctx.CM.CPUTuple)
	s.prev = row
	s.emit()
	return row, true
}

func (s *segment) Close(ctx *Ctx) {
	if s.c.Closed {
		return
	}
	s.child.Close(ctx)
	s.closed(ctx)
}

// concat unions children in order (UNION ALL).
type concat struct {
	base
	kids []Operator
	pos  int
}

func newConcat(n *plan.Node, kids []Operator) *concat {
	c := &concat{kids: kids}
	c.init(n)
	return c
}

func (c *concat) Open(ctx *Ctx) {
	c.opened(ctx)
	for _, k := range c.kids {
		k.Open(ctx)
	}
}

func (c *concat) Rewind(ctx *Ctx) {
	c.c.Rebinds++
	c.pos = 0
	for _, k := range c.kids {
		k.Rewind(ctx)
	}
}

func (c *concat) Next(ctx *Ctx) (types.Row, bool) {
	for c.pos < len(c.kids) {
		row, ok := c.kids[c.pos].Next(ctx)
		if ok {
			ctx.chargeCPU(&c.c, ctx.CM.CPUTuple)
			c.emit()
			return row, true
		}
		c.pos++
	}
	return nil, false
}

func (c *concat) Close(ctx *Ctx) {
	if c.c.Closed {
		return
	}
	for _, k := range c.kids {
		k.Close(ctx)
	}
	c.closed(ctx)
}

// bitmap populates its runtime bitmap filter from the child's key columns
// and passes rows through; a probe-side scan consults the filter inside
// the storage engine (§4.3).
type bitmap struct {
	base
	child Operator
}

func newBitmap(n *plan.Node, child Operator) *bitmap {
	b := &bitmap{child: child}
	b.init(n)
	return b
}

func (b *bitmap) Open(ctx *Ctx) {
	b.opened(ctx)
	b.child.Open(ctx)
}

func (b *bitmap) Rewind(ctx *Ctx) {
	b.c.Rebinds++
	b.child.Rewind(ctx)
}

func (b *bitmap) Next(ctx *Ctx) (types.Row, bool) {
	row, ok := b.child.Next(ctx)
	bf := ctx.Bitmaps[b.node.ID]
	if !ok {
		bf.complete = true
		return nil, false
	}
	ctx.chargeCPU(&b.c, ctx.CM.CPUTuple+ctx.CM.CPUHashInsert)
	bf.insert(row.HashCols(b.node.BitmapKeyCols))
	b.emit()
	return row, true
}

func (b *bitmap) Close(ctx *Ctx) {
	if b.c.Closed {
		return
	}
	// A semi-join reduction may close before draining (semi join short
	// circuits); mark the bitmap complete only if the input really ended,
	// which Next handles. Closing without completion is a plan bug that
	// the probing scan's panic will surface.
	b.child.Close(ctx)
	b.closed(ctx)
}
