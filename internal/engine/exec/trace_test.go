package exec

import (
	"strings"
	"testing"

	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/trace"
)

// attachRecorder wires a trace recorder (backed by the query's own clock)
// into the query context and returns it.
func attachRecorder(q *Query, capacity int) *trace.Recorder {
	r := trace.NewRecorder(q.Ctx.Clock, capacity)
	q.Ctx.Trace = r
	return r
}

func eventsOf(r *trace.Recorder, k trace.Kind) []trace.Event {
	var out []trace.Event
	for _, ev := range r.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func TestTraceLifecycleEvents(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	scan := bb.TableScan("t", nil, nil)
	root := bb.Filter(scan, nil)
	q := buildQuery(t, db, root)
	r := attachRecorder(q, trace.DefaultCapacity)

	if _, err := q.Run(); err != nil {
		t.Fatalf("traced query failed: %v", err)
	}

	evs := r.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	// The stream starts with the RUNNING transition and ends with SUCCEEDED.
	if evs[0].Kind != trace.KindState || evs[0].Name != "RUNNING" {
		t.Fatalf("first event = %+v, want state RUNNING", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Kind != trace.KindState || last.Name != "SUCCEEDED" {
		t.Fatalf("last event = %+v, want state SUCCEEDED", last)
	}

	// Every operator opened once and closed once, with the final row count
	// on the close event.
	opens, closes := eventsOf(r, trace.KindOpen), eventsOf(r, trace.KindClose)
	if len(opens) != 2 || len(closes) != 2 {
		t.Fatalf("opens=%d closes=%d, want 2 each", len(opens), len(closes))
	}
	if opens[0].NodeID != root.ID {
		t.Fatalf("root did not open first: %+v", opens[0])
	}
	if opens[0].Name != "Filter" {
		t.Fatalf("open event not named after the physical operator: %q", opens[0].Name)
	}
	for _, ev := range closes {
		if ev.Rows != 1000 {
			t.Fatalf("close event for node %d carries %d rows, want 1000", ev.NodeID, ev.Rows)
		}
	}

	// Row batches fire every DefaultBatchEvery rows: 1000 rows → 3 batches
	// per operator at 256, 512, 768.
	batches := eventsOf(r, trace.KindRowBatch)
	perNode := map[int][]int64{}
	for _, ev := range batches {
		perNode[ev.NodeID] = append(perNode[ev.NodeID], ev.Rows)
	}
	for id, got := range perNode {
		want := []int64{256, 512, 768}
		if len(got) != len(want) {
			t.Fatalf("node %d: %d row batches %v, want %v", id, len(got), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d batches = %v, want %v", id, got, want)
			}
		}
	}
	if len(perNode) != 2 {
		t.Fatalf("row batches cover %d nodes, want 2", len(perNode))
	}

	// Virtual timestamps are monotone.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("timestamps regressed at %d: %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
}

func TestTraceDisabledRecordsNothing(t *testing.T) {
	db := testDB(t)
	root := b(db).TableScan("t", nil, nil)
	q := buildQuery(t, db, root)
	// q.Ctx.Trace stays nil: the zero-cost fast path.
	if _, err := q.Run(); err != nil {
		t.Fatalf("untraced query failed: %v", err)
	}
	if q.Ctx.Trace != nil {
		t.Fatal("trace recorder appeared from nowhere")
	}
}

func TestTraceSpillAndMemDegradeEvents(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	root := bb.Sort(bb.TableScan("t", nil, nil), []int{2}, nil)
	q := buildQuery(t, db, root)
	q.Ctx.MemGrantRows = 100 // force the sort over budget → external sort
	r := attachRecorder(q, trace.DefaultCapacity)

	if _, err := q.Run(); err != nil {
		t.Fatalf("spilling sort failed: %v", err)
	}

	deg := eventsOf(r, trace.KindMemDegrade)
	if len(deg) != 1 {
		t.Fatalf("mem-degrade events = %d, want exactly 1 (transition only)", len(deg))
	}
	if deg[0].NodeID != root.ID || !strings.Contains(deg[0].Name, "external sort") {
		t.Fatalf("unexpected degrade event: %+v", deg[0])
	}
	begins, ends := eventsOf(r, trace.KindSpillBegin), eventsOf(r, trace.KindSpillEnd)
	if len(begins) != 1 || len(ends) != 1 {
		t.Fatalf("spill begin/end = %d/%d, want 1/1", len(begins), len(ends))
	}
	if begins[0].Rows == 0 || begins[0].Rows != ends[0].Rows {
		t.Fatalf("spill events disagree on total: begin=%d end=%d", begins[0].Rows, ends[0].Rows)
	}
	if ends[0].At < begins[0].At {
		t.Fatal("spill ended before it began")
	}
}

func TestTraceIORetryEvents(t *testing.T) {
	db := testDB(t)
	db.InjectFaults(storage.FaultConfig{Seed: 11, TransientProb: 0.5, MaxRetries: 50})
	db.ColdStart() // faults fire on physical reads only: evict the pool
	scan := b(db).TableScan("u", nil, nil)
	q := buildQuery(t, db, scan)
	r := attachRecorder(q, trace.DefaultCapacity)

	if _, err := q.Run(); err != nil {
		t.Fatalf("query with transient faults failed: %v", err)
	}
	retries := eventsOf(r, trace.KindIORetry)
	if len(retries) == 0 {
		t.Fatal("no IO retry events despite 50% transient fault probability")
	}
	for _, ev := range retries {
		if ev.Rows <= 0 {
			t.Fatalf("retry event carries no retry count: %+v", ev)
		}
		if ev.NodeID != scan.ID {
			t.Fatalf("retry attributed to node %d, want scan %d", ev.NodeID, scan.ID)
		}
	}
}

func TestTraceFailureRecordsTerminalState(t *testing.T) {
	db := testDB(t)
	bb := b(db)
	agg := bb.HashAgg(bb.TableScan("t", nil, nil), []int{0},
		[]expr.AggSpec{{Kind: expr.CountStar}})
	q := buildQuery(t, db, agg)
	q.Ctx.MemGrantRows = 64
	r := attachRecorder(q, trace.DefaultCapacity)

	if _, err := q.Run(); err == nil {
		t.Fatal("memory-starved hash aggregate succeeded")
	}
	evs := r.Events()
	last := evs[len(evs)-1]
	if last.Kind != trace.KindState || last.Name != "FAILED" {
		t.Fatalf("last event = %+v, want state FAILED", last)
	}
}

// benchScan runs the engine's tightest Next loop — a full scan through a
// filter — with or without a recorder attached.
func benchScan(bm *testing.B, traced bool) {
	db := testDB(bm)
	for i := 0; i < bm.N; i++ {
		bb := b(db)
		root := bb.Filter(bb.TableScan("u", nil, nil), nil)
		q := buildQuery(bm, db, root)
		if traced {
			attachRecorder(q, trace.DefaultCapacity)
		}
		if _, err := q.Run(); err != nil {
			bm.Fatal(err)
		}
	}
}

// BenchmarkNextLoopTracingDisabled pins the zero-cost-when-disabled
// guarantee: with no recorder in the context the per-row path pays one
// cached-pointer nil check. Compare against BenchmarkNextLoopTracingEnabled
// to see the instrumented cost.
func BenchmarkNextLoopTracingDisabled(bm *testing.B) { benchScan(bm, false) }

func BenchmarkNextLoopTracingEnabled(bm *testing.B) { benchScan(bm, true) }
