package expr

import (
	"fmt"

	"lqs/internal/engine/types"
)

// AggKind enumerates the aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	CountStar AggKind = iota
	Count
	Sum
	Min
	Max
	Avg
)

var aggNames = [...]string{"COUNT(*)", "COUNT", "SUM", "MIN", "MAX", "AVG"}

// AggSpec describes one aggregate expression in a Group By.
type AggSpec struct {
	Kind AggKind
	Arg  Expr // nil for COUNT(*)
}

// String renders the aggregate for plan display.
func (a AggSpec) String() string {
	if a.Kind == CountStar || a.Arg == nil {
		return aggNames[a.Kind]
	}
	return fmt.Sprintf("%s(%s)", aggNames[a.Kind], a.Arg)
}

// AggState accumulates one aggregate over a group's rows.
type AggState interface {
	Add(row types.Row)
	Result() types.Value
}

// NewAggState returns a fresh accumulator for the spec.
func NewAggState(spec AggSpec) AggState {
	switch spec.Kind {
	case CountStar:
		return &countState{star: true}
	case Count:
		return &countState{arg: spec.Arg}
	case Sum:
		return &sumState{arg: spec.Arg}
	case Avg:
		return &avgState{arg: spec.Arg}
	case Min:
		return &minMaxState{arg: spec.Arg, wantMin: true}
	case Max:
		return &minMaxState{arg: spec.Arg}
	default:
		panic(fmt.Sprintf("expr: unknown aggregate kind %d", spec.Kind))
	}
}

type countState struct {
	star bool
	arg  Expr
	n    int64
}

func (s *countState) Add(row types.Row) {
	if s.star || !s.arg.Eval(row).IsNull() {
		s.n++
	}
}

func (s *countState) Result() types.Value { return types.Int(s.n) }

type sumState struct {
	arg    Expr
	sum    float64
	isum   int64
	anyVal bool
	asInt  bool
	first  bool
}

func (s *sumState) Add(row types.Row) {
	v := s.arg.Eval(row)
	if v.IsNull() {
		return
	}
	if !s.first {
		s.first = true
		s.asInt = v.K == types.KindInt
	}
	if v.K != types.KindInt {
		s.asInt = false
	}
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	s.sum += f
	if i, ok := v.AsInt(); ok {
		s.isum += i
	}
	s.anyVal = true
}

func (s *sumState) Result() types.Value {
	if !s.anyVal {
		return types.Null()
	}
	if s.asInt {
		return types.Int(s.isum)
	}
	return types.Float(s.sum)
}

type avgState struct {
	arg Expr
	sum float64
	n   int64
}

func (s *avgState) Add(row types.Row) {
	v := s.arg.Eval(row)
	if v.IsNull() {
		return
	}
	if f, ok := v.AsFloat(); ok {
		s.sum += f
		s.n++
	}
}

func (s *avgState) Result() types.Value {
	if s.n == 0 {
		return types.Null()
	}
	return types.Float(s.sum / float64(s.n))
}

type minMaxState struct {
	arg     Expr
	wantMin bool
	best    types.Value
	any     bool
}

func (s *minMaxState) Add(row types.Row) {
	v := s.arg.Eval(row)
	if v.IsNull() {
		return
	}
	if !s.any {
		s.best = v
		s.any = true
		return
	}
	c := types.Compare(v, s.best)
	if (s.wantMin && c < 0) || (!s.wantMin && c > 0) {
		s.best = v
	}
}

func (s *minMaxState) Result() types.Value {
	if !s.any {
		return types.Null()
	}
	return s.best
}
