package expr

// Differential tests for the expression compiler: CompilePred/CompileExpr
// must agree with the interpreted Eval/EvalPred on every expression shape —
// including the flattened conjunction-of-comparisons fast path the scans
// hit — over rows mixing ints, floats (NaN included), strings, and NULLs.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lqs/internal/engine/types"
)

const fuzzCols = 6

// randValue draws a value skewed toward the corner cases: NULLs, NaN, zero
// (division), negative ints, and colliding small strings.
func randValue(rng *rand.Rand) types.Value {
	switch rng.Intn(10) {
	case 0, 1:
		return types.Null()
	case 2:
		return types.Float(math.NaN())
	case 3:
		return types.Int(0)
	case 4:
		return types.Str([]string{"", "a", "ab", "ba", "z"}[rng.Intn(5)])
	case 5:
		return types.Float(rng.Float64()*20 - 10)
	default:
		return types.Int(int64(rng.Intn(21) - 10))
	}
}

func randRow(rng *rand.Rand) types.Row {
	row := make(types.Row, fuzzCols)
	for i := range row {
		row[i] = randValue(rng)
	}
	return row
}

// randExpr generates a random expression tree of bounded depth over
// fuzzCols columns.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return C(rng.Intn(fuzzCols), fmt.Sprintf("c%d", rng.Intn(fuzzCols)))
		}
		return K(randValue(rng))
	}
	switch rng.Intn(7) {
	case 0:
		return &Cmp{Op: CmpOp(rng.Intn(6)), L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 1:
		return &Arith{Op: ArithOp(rng.Intn(5)), L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 2:
		kids := make([]Expr, 2+rng.Intn(3))
		for i := range kids {
			kids[i] = randExpr(rng, depth-1)
		}
		return &Logic{Op: LogicOp(rng.Intn(2)), Kids: kids}
	case 3:
		return &Not{E: randExpr(rng, depth-1)}
	case 4:
		return &IsNull{E: randExpr(rng, depth-1)}
	case 5:
		return &Like{E: randExpr(rng, depth-1), Pattern: []string{"a%", "%b", "_", "%", "ab"}[rng.Intn(5)]}
	default:
		elems := make([]types.Value, 1+rng.Intn(3))
		for i := range elems {
			elems[i] = randValue(rng)
		}
		return &In{E: randExpr(rng, depth-1), Set: elems}
	}
}

// eqValue compares values treating NaN as equal to itself, so both
// evaluators producing NaN counts as agreement.
func eqValue(a, b types.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == types.KindFloat && math.IsNaN(a.F) && math.IsNaN(b.F) {
		return math.IsNaN(a.F) == math.IsNaN(b.F)
	}
	return a == b
}

// TestCompileMatchesEval is the randomized differential: compiled and
// interpreted evaluation must agree on every (expression, row) pair.
func TestCompileMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		e := randExpr(rng, 4)
		pred := CompilePred(e)
		val := CompileExpr(e)
		for j := 0; j < 8; j++ {
			row := randRow(rng)
			if got, want := pred(row), EvalPred(e, row); got != want {
				t.Fatalf("expr %d row %d: CompilePred=%v EvalPred=%v\nexpr: %s\nrow:  %v", i, j, got, want, e, row)
			}
			if got, want := val(row), e.Eval(row); !eqValue(got, want) {
				t.Fatalf("expr %d row %d: CompileExpr=%v Eval=%v\nexpr: %s\nrow:  %v", i, j, got, want, e, row)
			}
		}
	}
}

// TestCompileConjunctionFastPath targets the flattened AND-of-comparisons
// shape pushed-down scan predicates take: every comparison operator against
// int, float, NaN, string, and NULL cells.
func TestCompileConjunctionFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(4)
		kids := make([]Expr, n)
		for k := range kids {
			kids[k] = &Cmp{
				Op: CmpOp(rng.Intn(6)),
				L:  C(rng.Intn(fuzzCols), "c"),
				R:  K(randValue(rng)),
			}
		}
		e := Expr(&Logic{Op: AndOp, Kids: kids})
		pred := CompilePred(e)
		for j := 0; j < 12; j++ {
			row := randRow(rng)
			if got, want := pred(row), EvalPred(e, row); got != want {
				t.Fatalf("conj %d row %d: CompilePred=%v EvalPred=%v\nexpr: %s\nrow:  %v", i, j, got, want, e, row)
			}
		}
	}
}

// TestCompilePredNil pins the nil contract: callers keep their explicit
// nil checks instead of paying an always-true closure per row.
func TestCompilePredNil(t *testing.T) {
	if CompilePred(nil) != nil {
		t.Fatal("CompilePred(nil) must return nil")
	}
}
