// Package expr implements scalar expressions, predicates, and aggregate
// functions evaluated over rows: the computation layer of the engine's
// physical operators. Predicates follow SQL three-valued logic. The paper's
// §4.3 "out-of-model scalar functions" (predicates the optimizer cannot
// estimate) are represented by the Func node, whose selectivity the
// optimizer guesses blindly.
package expr

import (
	"fmt"
	"math"
	"strings"

	"lqs/internal/engine/types"
)

// Expr is a scalar expression evaluated against a row. Eval never fails:
// type mismatches yield NULL, matching the engine's permissive runtime.
type Expr interface {
	Eval(row types.Row) types.Value
	String() string
}

// Col references a column by ordinal; Name is carried for display only.
type Col struct {
	Idx  int
	Name string
}

// Eval returns the referenced column's value.
func (c *Col) Eval(row types.Row) types.Value { return row[c.Idx] }

func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("col%d", c.Idx)
}

// C is shorthand for a column reference.
func C(idx int, name string) *Col { return &Col{Idx: idx, Name: name} }

// Const is a literal value.
type Const struct{ V types.Value }

// Eval returns the literal.
func (c *Const) Eval(types.Row) types.Value { return c.V }

func (c *Const) String() string { return c.V.String() }

// K is shorthand for a constant.
func K(v types.Value) *Const { return &Const{V: v} }

// KInt is shorthand for an integer constant.
func KInt(v int64) *Const { return &Const{V: types.Int(v)} }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

var cmpNames = [...]string{"=", "<>", "<", "<=", ">", ">="}

// Cmp compares two sub-expressions; NULL operands yield NULL (unknown).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval applies the comparison with SQL NULL semantics.
func (c *Cmp) Eval(row types.Row) types.Value {
	return applyCmp(c.Op, c.L.Eval(row), c.R.Eval(row))
}

// applyCmp is the comparison kernel shared by the interpreted Eval and the
// compiled evaluators: NULL operands yield NULL, otherwise the operator is
// applied to the types.Compare ordering.
func applyCmp(op CmpOp, l, r types.Value) types.Value {
	if l.IsNull() || r.IsNull() {
		return types.Null()
	}
	v := types.Compare(l, r)
	switch op {
	case EQ:
		return types.Bool(v == 0)
	case NE:
		return types.Bool(v != 0)
	case LT:
		return types.Bool(v < 0)
	case LE:
		return types.Bool(v <= 0)
	case GT:
		return types.Bool(v > 0)
	case GE:
		return types.Bool(v >= 0)
	}
	return types.Null()
}

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, cmpNames[c.Op], c.R)
}

// Eq builds an equality comparison.
func Eq(l, r Expr) *Cmp { return &Cmp{Op: EQ, L: l, R: r} }

// Lt builds a less-than comparison.
func Lt(l, r Expr) *Cmp { return &Cmp{Op: LT, L: l, R: r} }

// Le builds a less-or-equal comparison.
func Le(l, r Expr) *Cmp { return &Cmp{Op: LE, L: l, R: r} }

// Gt builds a greater-than comparison.
func Gt(l, r Expr) *Cmp { return &Cmp{Op: GT, L: l, R: r} }

// Ge builds a greater-or-equal comparison.
func Ge(l, r Expr) *Cmp { return &Cmp{Op: GE, L: l, R: r} }

// LogicOp enumerates boolean connectives.
type LogicOp uint8

// Boolean connectives.
const (
	AndOp LogicOp = iota
	OrOp
)

// Logic combines predicates with three-valued AND/OR.
type Logic struct {
	Op   LogicOp
	Kids []Expr
}

// Eval evaluates the connective with Kleene 3VL: AND short-circuits on
// false, OR on true; otherwise NULL propagates.
func (l *Logic) Eval(row types.Row) types.Value {
	sawNull := false
	for _, k := range l.Kids {
		v := k.Eval(row)
		if v.IsNull() {
			sawNull = true
			continue
		}
		t := v.IsTrue()
		if l.Op == AndOp && !t {
			return types.Bool(false)
		}
		if l.Op == OrOp && t {
			return types.Bool(true)
		}
	}
	if sawNull {
		return types.Null()
	}
	return types.Bool(l.Op == AndOp)
}

func (l *Logic) String() string {
	word := " AND "
	if l.Op == OrOp {
		word = " OR "
	}
	parts := make([]string, len(l.Kids))
	for i, k := range l.Kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, word) + ")"
}

// And conjoins predicates.
func And(kids ...Expr) *Logic { return &Logic{Op: AndOp, Kids: kids} }

// Or disjoins predicates.
func Or(kids ...Expr) *Logic { return &Logic{Op: OrOp, Kids: kids} }

// Not negates a predicate (NULL stays NULL).
type Not struct{ E Expr }

// Eval negates with 3VL.
func (n *Not) Eval(row types.Row) types.Value {
	v := n.E.Eval(row)
	if v.IsNull() {
		return types.Null()
	}
	return types.Bool(!v.IsTrue())
}

func (n *Not) String() string { return "NOT " + n.E.String() }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

var arithNames = [...]string{"+", "-", "*", "/", "%"}

// Arith computes binary arithmetic; integer pairs stay integer (except /,
// which is float as in most analytical expressions); anything with a float
// is float; NULL propagates; division by zero yields NULL.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval computes the arithmetic result.
func (a *Arith) Eval(row types.Row) types.Value {
	return applyArith(a.Op, a.L.Eval(row), a.R.Eval(row))
}

// applyArith is the arithmetic kernel shared by the interpreted Eval and
// the compiled evaluators.
func applyArith(op ArithOp, l, r types.Value) types.Value {
	if l.IsNull() || r.IsNull() {
		return types.Null()
	}
	if l.K == types.KindInt && r.K == types.KindInt && op != Div {
		switch op {
		case Add:
			return types.Int(l.I + r.I)
		case Sub:
			return types.Int(l.I - r.I)
		case Mul:
			return types.Int(l.I * r.I)
		case Mod:
			if r.I == 0 {
				return types.Null()
			}
			return types.Int(l.I % r.I)
		}
	}
	lf, ok1 := l.AsFloat()
	rf, ok2 := r.AsFloat()
	if !ok1 || !ok2 {
		return types.Null()
	}
	switch op {
	case Add:
		return types.Float(lf + rf)
	case Sub:
		return types.Float(lf - rf)
	case Mul:
		return types.Float(lf * rf)
	case Div:
		if rf == 0 {
			return types.Null()
		}
		return types.Float(lf / rf)
	case Mod:
		// Modulo truncates both operands; the zero check must look at the
		// truncated divisor (0 < |rf| < 1 would otherwise divide by zero),
		// and a non-finite operand has no truncation at all.
		if math.IsNaN(lf) || math.IsInf(lf, 0) || math.IsNaN(rf) || math.IsInf(rf, 0) || int64(rf) == 0 {
			return types.Null()
		}
		return types.Float(float64(int64(lf) % int64(rf)))
	}
	return types.Null()
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, arithNames[a.Op], a.R)
}

// Plus builds an addition.
func Plus(l, r Expr) *Arith { return &Arith{Op: Add, L: l, R: r} }

// Minus builds a subtraction.
func Minus(l, r Expr) *Arith { return &Arith{Op: Sub, L: l, R: r} }

// Times builds a multiplication.
func Times(l, r Expr) *Arith { return &Arith{Op: Mul, L: l, R: r} }

// DivBy builds a division.
func DivBy(l, r Expr) *Arith { return &Arith{Op: Div, L: l, R: r} }

// ModBy builds a modulo.
func ModBy(l, r Expr) *Arith { return &Arith{Op: Mod, L: l, R: r} }

// Like matches a string against a pattern with % (any run) and _ (any one
// character) wildcards, the SQL LIKE subset decision-support predicates use.
type Like struct {
	E       Expr
	Pattern string
}

// Eval performs the wildcard match.
func (l *Like) Eval(row types.Row) types.Value {
	v := l.E.Eval(row)
	if v.IsNull() {
		return types.Null()
	}
	if v.K != types.KindString {
		return types.Bool(false)
	}
	return types.Bool(likeMatch(v.S, l.Pattern))
}

func (l *Like) String() string { return fmt.Sprintf("(%s LIKE '%s')", l.E, l.Pattern) }

// likeMatch is a simple backtracking matcher, linear for patterns with a
// single %, which covers the workloads here.
func likeMatch(s, p string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// In tests membership in a constant set.
type In struct {
	E   Expr
	Set []types.Value
}

// Eval tests membership; NULL input yields NULL.
func (in *In) Eval(row types.Row) types.Value {
	v := in.E.Eval(row)
	if v.IsNull() {
		return types.Null()
	}
	for _, s := range in.Set {
		if types.Compare(v, s) == 0 {
			return types.Bool(true)
		}
	}
	return types.Bool(false)
}

func (in *In) String() string {
	parts := make([]string, len(in.Set))
	for i, v := range in.Set {
		parts[i] = v.String()
	}
	return fmt.Sprintf("(%s IN (%s))", in.E, strings.Join(parts, ", "))
}

// IsNull tests for NULL.
type IsNull struct{ E Expr }

// Eval returns whether the operand is NULL (never NULL itself).
func (n *IsNull) Eval(row types.Row) types.Value {
	return types.Bool(n.E.Eval(row).IsNull())
}

func (n *IsNull) String() string { return fmt.Sprintf("(%s IS NULL)", n.E) }

// Func is an opaque scalar function: the optimizer cannot see inside it,
// so predicates built on it get guessed selectivities — the paper's §4.3
// "out-of-model scalar functions" pushed to the storage engine.
type Func struct {
	Name string
	Args []Expr
	Fn   func(args []types.Value) types.Value
}

// Eval evaluates the arguments then the opaque function.
func (f *Func) Eval(row types.Row) types.Value {
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Eval(row)
	}
	return f.Fn(args)
}

func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// EvalPred evaluates e as a predicate: NULL and false both reject.
func EvalPred(e Expr, row types.Row) bool {
	if e == nil {
		return true
	}
	v := e.Eval(row)
	return !v.IsNull() && v.IsTrue()
}

// Cost returns the node count of the expression tree, the unit the cost
// model charges per-row CPU for.
func Cost(e Expr) int {
	if e == nil {
		return 0
	}
	n := 1
	switch t := e.(type) {
	case *Cmp:
		n += Cost(t.L) + Cost(t.R)
	case *Logic:
		for _, k := range t.Kids {
			n += Cost(k)
		}
	case *Not:
		n += Cost(t.E)
	case *Arith:
		n += Cost(t.L) + Cost(t.R)
	case *Like:
		n += Cost(t.E)
	case *In:
		n += Cost(t.E) + len(t.Set)/4
	case *IsNull:
		n += Cost(t.E)
	case *Func:
		n += 3 // opaque functions are assumed expensive
		for _, a := range t.Args {
			n += Cost(a)
		}
	}
	return n
}

// Columns appends the column ordinals referenced by e to dst and returns
// it. The optimizer and batch scans use it to know which columns to read.
func Columns(e Expr, dst []int) []int {
	switch t := e.(type) {
	case nil:
		return dst
	case *Col:
		return append(dst, t.Idx)
	case *Cmp:
		return Columns(t.R, Columns(t.L, dst))
	case *Logic:
		for _, k := range t.Kids {
			dst = Columns(k, dst)
		}
		return dst
	case *Not:
		return Columns(t.E, dst)
	case *Arith:
		return Columns(t.R, Columns(t.L, dst))
	case *Like:
		return Columns(t.E, dst)
	case *In:
		return Columns(t.E, dst)
	case *IsNull:
		return Columns(t.E, dst)
	case *Func:
		for _, a := range t.Args {
			dst = Columns(a, dst)
		}
		return dst
	}
	return dst
}
