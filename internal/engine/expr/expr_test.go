package expr

import (
	"testing"
	"testing/quick"

	"lqs/internal/engine/types"
)

var testRow = types.Row{types.Int(10), types.Str("widget"), types.Float(2.5), types.Null()}

func evalB(t *testing.T, e Expr, want bool) {
	t.Helper()
	if got := EvalPred(e, testRow); got != want {
		t.Errorf("%s = %v, want %v", e, got, want)
	}
}

func TestComparisons(t *testing.T) {
	id := C(0, "id")
	evalB(t, Eq(id, KInt(10)), true)
	evalB(t, Eq(id, KInt(11)), false)
	evalB(t, Lt(id, KInt(11)), true)
	evalB(t, Le(id, KInt(10)), true)
	evalB(t, Gt(id, KInt(10)), false)
	evalB(t, Ge(id, KInt(10)), true)
	evalB(t, &Cmp{Op: NE, L: id, R: KInt(3)}, true)
}

func TestNullComparisonIsUnknown(t *testing.T) {
	nullCol := C(3, "n")
	if !Eq(nullCol, KInt(1)).Eval(testRow).IsNull() {
		t.Error("NULL = 1 should be NULL")
	}
	evalB(t, Eq(nullCol, KInt(1)), false) // unknown rejects as predicate
	evalB(t, &IsNull{E: nullCol}, true)
	evalB(t, &IsNull{E: C(0, "id")}, false)
}

func TestThreeValuedLogic(t *testing.T) {
	tr := K(types.Bool(true))
	fa := K(types.Bool(false))
	nu := K(types.Null())
	// AND
	if !And(tr, nu).Eval(nil).IsNull() {
		t.Error("true AND null should be null")
	}
	if And(fa, nu).Eval(nil).IsNull() {
		t.Error("false AND null should be false (short circuit)")
	}
	evalB(t, And(tr, tr), true)
	evalB(t, And(tr, fa), false)
	// OR
	if Or(tr, nu).Eval(nil).IsNull() {
		t.Error("true OR null should be true")
	}
	if !Or(fa, nu).Eval(nil).IsNull() {
		t.Error("false OR null should be null")
	}
	evalB(t, Or(fa, fa), false)
	// NOT
	if !(&Not{E: nu}).Eval(nil).IsNull() {
		t.Error("NOT null should be null")
	}
	evalB(t, &Not{E: fa}, true)
}

func TestArithmetic(t *testing.T) {
	if v := Plus(KInt(2), KInt(3)).Eval(nil); v.K != types.KindInt || v.I != 5 {
		t.Errorf("2+3 = %v", v)
	}
	if v := Times(KInt(4), K(types.Float(0.5))).Eval(nil); v.K != types.KindFloat || v.F != 2 {
		t.Errorf("4*0.5 = %v", v)
	}
	if v := DivBy(KInt(7), KInt(2)).Eval(nil); v.F != 3.5 {
		t.Errorf("7/2 = %v (division is float)", v)
	}
	if !DivBy(KInt(1), KInt(0)).Eval(nil).IsNull() {
		t.Error("divide by zero should be NULL")
	}
	if v := ModBy(KInt(10), KInt(3)).Eval(nil); v.I != 1 {
		t.Errorf("10%%3 = %v", v)
	}
	if !Minus(KInt(1), K(types.Null())).Eval(nil).IsNull() {
		t.Error("1 - NULL should be NULL")
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"widget", "widget", true},
		{"widget", "wid%", true},
		{"widget", "%get", true},
		{"widget", "%dge%", true},
		{"widget", "w_dget", true},
		{"widget", "x%", false},
		{"widget", "%x%", false},
		{"", "%", true},
		{"abc", "", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, c := range cases {
		got := likeMatch(c.s, c.p)
		if got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	evalB(t, &Like{E: C(1, "name"), Pattern: "wid%"}, true)
	if !(&Like{E: C(3, "null"), Pattern: "%"}).Eval(testRow).IsNull() {
		t.Error("NULL LIKE should be NULL")
	}
}

func TestIn(t *testing.T) {
	evalB(t, &In{E: C(0, "id"), Set: []types.Value{types.Int(1), types.Int(10)}}, true)
	evalB(t, &In{E: C(0, "id"), Set: []types.Value{types.Int(1)}}, false)
	if !(&In{E: C(3, "null"), Set: []types.Value{types.Int(1)}}).Eval(testRow).IsNull() {
		t.Error("NULL IN should be NULL")
	}
}

func TestFunc(t *testing.T) {
	f := &Func{
		Name: "hash_bucket",
		Args: []Expr{C(0, "id")},
		Fn: func(args []types.Value) types.Value {
			i, _ := args[0].AsInt()
			return types.Int(i % 4)
		},
	}
	if v := f.Eval(testRow); v.I != 2 {
		t.Errorf("hash_bucket(10) = %v", v)
	}
	if f.String() != "hash_bucket(id)" {
		t.Errorf("String() = %s", f.String())
	}
}

func TestCostAndColumns(t *testing.T) {
	e := And(Eq(C(0, "a"), KInt(1)), Gt(Plus(C(2, "c"), KInt(5)), C(1, "b")))
	if Cost(e) < 5 {
		t.Errorf("Cost = %d, too small", Cost(e))
	}
	cols := Columns(e, nil)
	seen := map[int]bool{}
	for _, c := range cols {
		seen[c] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("Columns = %v, want {0,1,2}", cols)
	}
	if Cost(nil) != 0 || len(Columns(nil, nil)) != 0 {
		t.Error("nil expression should cost 0 and reference nothing")
	}
}

func TestEvalPredNil(t *testing.T) {
	if !EvalPred(nil, testRow) {
		t.Error("nil predicate accepts everything")
	}
}

func TestAggregates(t *testing.T) {
	rows := []types.Row{
		{types.Int(1), types.Float(2)},
		{types.Int(2), types.Float(4)},
		{types.Int(3), types.Null()},
		{types.Null(), types.Float(6)},
	}
	col0 := C(0, "a")
	col1 := C(1, "b")
	run := func(spec AggSpec) types.Value {
		st := NewAggState(spec)
		for _, r := range rows {
			st.Add(r)
		}
		return st.Result()
	}
	if v := run(AggSpec{Kind: CountStar}); v.I != 4 {
		t.Errorf("COUNT(*) = %v", v)
	}
	if v := run(AggSpec{Kind: Count, Arg: col0}); v.I != 3 {
		t.Errorf("COUNT(a) = %v (nulls excluded)", v)
	}
	if v := run(AggSpec{Kind: Sum, Arg: col0}); v.K != types.KindInt || v.I != 6 {
		t.Errorf("SUM(a) = %v, want int 6", v)
	}
	if v := run(AggSpec{Kind: Sum, Arg: col1}); v.K != types.KindFloat || v.F != 12 {
		t.Errorf("SUM(b) = %v, want float 12", v)
	}
	if v := run(AggSpec{Kind: Avg, Arg: col1}); v.F != 4 {
		t.Errorf("AVG(b) = %v", v)
	}
	if v := run(AggSpec{Kind: Min, Arg: col0}); v.I != 1 {
		t.Errorf("MIN(a) = %v", v)
	}
	if v := run(AggSpec{Kind: Max, Arg: col0}); v.I != 3 {
		t.Errorf("MAX(a) = %v", v)
	}
}

func TestAggregatesEmptyInput(t *testing.T) {
	for _, k := range []AggKind{Count, Sum, Min, Max, Avg} {
		st := NewAggState(AggSpec{Kind: k, Arg: C(0, "a")})
		v := st.Result()
		if k == Count {
			if v.I != 0 {
				t.Errorf("empty COUNT = %v", v)
			}
		} else if !v.IsNull() {
			t.Errorf("empty %v = %v, want NULL", k, v)
		}
	}
}

func TestAggSpecString(t *testing.T) {
	if (AggSpec{Kind: Sum, Arg: C(0, "x")}).String() != "SUM(x)" {
		t.Error("SUM display wrong")
	}
	if (AggSpec{Kind: CountStar}).String() != "COUNT(*)" {
		t.Error("COUNT(*) display wrong")
	}
}

func TestPropertyCmpTotalOnInts(t *testing.T) {
	f := func(a, b int64) bool {
		row := types.Row{types.Int(a), types.Int(b)}
		lt := EvalPred(Lt(C(0, ""), C(1, "")), row)
		eq := EvalPred(Eq(C(0, ""), C(1, "")), row)
		gt := EvalPred(Gt(C(0, ""), C(1, "")), row)
		// Exactly one holds.
		n := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	f := func(a, b int64, x, y int64) bool {
		row := types.Row{types.Int(a), types.Int(b)}
		p := Lt(C(0, ""), KInt(x))
		q := Gt(C(1, ""), KInt(y))
		lhs := (&Not{E: And(p, q)}).Eval(row)
		rhs := Or(&Not{E: p}, &Not{E: q}).Eval(row)
		return types.Compare(lhs, rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredicateEval(b *testing.B) {
	e := And(Gt(C(0, "id"), KInt(3)), &Like{E: C(1, "name"), Pattern: "wid%"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalPred(e, testRow)
	}
}
