package expr

import (
	"lqs/internal/engine/types"
)

// This file compiles expression trees into closures for the vectorized
// batch executor. The interpreted Eval path walks the tree with one
// interface dispatch per node per row, which profiling shows dominates
// scan-heavy queries; the compiled form resolves the tree shape once and
// evaluates each row with direct calls. Compiled evaluation is an exact
// re-expression of Eval: both funnel through the same applyCmp/applyArith
// kernels and the same three-valued logic, so for every expression and
// every row the compiled result equals the interpreted one (pinned by
// TestCompileMatchesEval).

// Tri-valued predicate outcomes. Kleene logic needs the third state:
// NULL is neither true nor false and must propagate through connectives.
const (
	triFalse int8 = iota
	triTrue
	triNull
)

// PredFn is a compiled predicate with EvalPred semantics: NULL and false
// both reject.
type PredFn func(types.Row) bool

// CompilePred compiles e into a closure equivalent to EvalPred(e, row).
// A nil expression compiles to nil, so callers keep their "no predicate"
// fast path explicit, exactly as they test e == nil today.
func CompilePred(e Expr) PredFn {
	if e == nil {
		return nil
	}
	f := compileTri(e)
	return func(row types.Row) bool { return f(row) == triTrue }
}

// CompileExpr compiles e into a closure equivalent to e.Eval. Nodes
// without a specialized form fall back to the interpreted Eval, so the
// compiled closure is total over the expression language.
func CompileExpr(e Expr) func(types.Row) types.Value {
	return compileVal(e)
}

// cmpTri maps a types.Compare result to the tri-valued outcome of op.
func cmpTri(op CmpOp, c int) int8 {
	var t bool
	switch op {
	case EQ:
		t = c == 0
	case NE:
		t = c != 0
	case LT:
		t = c < 0
	case LE:
		t = c <= 0
	case GT:
		t = c > 0
	case GE:
		t = c >= 0
	}
	if t {
		return triTrue
	}
	return triFalse
}

// cmpTerm is one column-vs-constant comparison, the overwhelmingly common
// conjunct shape in pushed-down scan predicates. Same-kind numeric
// comparisons are inlined; everything else goes through types.Compare,
// which is also what the inline paths replicate.
type cmpTerm struct {
	idx int
	op  CmpOp
	k   types.Value
}

func (t *cmpTerm) eval(row types.Row) int8 {
	v := row[t.idx]
	if v.K == types.KindNull || t.k.K == types.KindNull {
		return triNull
	}
	var c int
	switch {
	case v.K == types.KindInt && t.k.K == types.KindInt:
		switch {
		case v.I < t.k.I:
			c = -1
		case v.I > t.k.I:
			c = 1
		}
	case v.K == types.KindFloat && t.k.K == types.KindFloat:
		switch {
		case v.F < t.k.F:
			c = -1
		case v.F > t.k.F:
			c = 1
		}
	default:
		c = types.Compare(v, t.k)
	}
	return cmpTri(t.op, c)
}

// flattenAndTerms extracts the cmpTerm list of an AND whose conjuncts are
// all column-vs-constant comparisons — the shape that gets the single-loop
// fast path.
func flattenAndTerms(l *Logic) ([]cmpTerm, bool) {
	terms := make([]cmpTerm, 0, len(l.Kids))
	for _, k := range l.Kids {
		c, ok := k.(*Cmp)
		if !ok {
			return nil, false
		}
		col, ok := c.L.(*Col)
		if !ok {
			return nil, false
		}
		kv, ok := c.R.(*Const)
		if !ok {
			return nil, false
		}
		terms = append(terms, cmpTerm{idx: col.Idx, op: c.Op, k: kv.V})
	}
	return terms, true
}

// compileTri compiles e as a tri-valued predicate.
func compileTri(e Expr) func(types.Row) int8 {
	switch t := e.(type) {
	case *Const:
		r := triFalse
		if t.V.IsNull() {
			r = triNull
		} else if t.V.IsTrue() {
			r = triTrue
		}
		return func(types.Row) int8 { return r }
	case *Col:
		idx := t.Idx
		return func(row types.Row) int8 {
			v := row[idx]
			if v.IsNull() {
				return triNull
			}
			if v.IsTrue() {
				return triTrue
			}
			return triFalse
		}
	case *Cmp:
		if col, ok := t.L.(*Col); ok {
			if k, ok := t.R.(*Const); ok {
				term := &cmpTerm{idx: col.Idx, op: t.Op, k: k.V}
				return term.eval
			}
			if rcol, ok := t.R.(*Col); ok {
				li, ri, op := col.Idx, rcol.Idx, t.Op
				return func(row types.Row) int8 {
					l, r := row[li], row[ri]
					if l.IsNull() || r.IsNull() {
						return triNull
					}
					return cmpTri(op, types.Compare(l, r))
				}
			}
		}
		lf, rf := compileVal(t.L), compileVal(t.R)
		op := t.Op
		return func(row types.Row) int8 {
			l, r := lf(row), rf(row)
			if l.IsNull() || r.IsNull() {
				return triNull
			}
			return cmpTri(op, types.Compare(l, r))
		}
	case *Logic:
		// Fast path: AND of column-vs-constant terms evaluates in one loop
		// with no per-term calls, preserving Eval's order (null terms are
		// skipped, the first definite false wins).
		if t.Op == AndOp {
			if terms, ok := flattenAndTerms(t); ok {
				return func(row types.Row) int8 {
					sawNull := false
					for i := range terms {
						switch terms[i].eval(row) {
						case triFalse:
							return triFalse
						case triNull:
							sawNull = true
						}
					}
					if sawNull {
						return triNull
					}
					return triTrue
				}
			}
		}
		kids := make([]func(types.Row) int8, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = compileTri(k)
		}
		op := t.Op
		return func(row types.Row) int8 {
			sawNull := false
			for _, k := range kids {
				switch k(row) {
				case triNull:
					sawNull = true
				case triFalse:
					if op == AndOp {
						return triFalse
					}
				case triTrue:
					if op == OrOp {
						return triTrue
					}
				}
			}
			if sawNull {
				return triNull
			}
			if op == AndOp {
				return triTrue
			}
			return triFalse
		}
	case *Not:
		f := compileTri(t.E)
		return func(row types.Row) int8 {
			switch f(row) {
			case triNull:
				return triNull
			case triTrue:
				return triFalse
			}
			return triTrue
		}
	case *IsNull:
		f := compileVal(t.E)
		return func(row types.Row) int8 {
			if f(row).IsNull() {
				return triTrue
			}
			return triFalse
		}
	default:
		// Like, In, Arith, Func as predicates: evaluate, then truthiness.
		f := compileVal(e)
		return func(row types.Row) int8 {
			v := f(row)
			if v.IsNull() {
				return triNull
			}
			if v.IsTrue() {
				return triTrue
			}
			return triFalse
		}
	}
}

// compileVal compiles e as a value expression.
func compileVal(e Expr) func(types.Row) types.Value {
	switch t := e.(type) {
	case *Col:
		idx := t.Idx
		return func(row types.Row) types.Value { return row[idx] }
	case *Const:
		v := t.V
		return func(types.Row) types.Value { return v }
	case *Arith:
		lf, rf := compileVal(t.L), compileVal(t.R)
		op := t.Op
		return func(row types.Row) types.Value {
			return applyArith(op, lf(row), rf(row))
		}
	case *Cmp:
		lf, rf := compileVal(t.L), compileVal(t.R)
		op := t.Op
		return func(row types.Row) types.Value {
			return applyCmp(op, lf(row), rf(row))
		}
	case *Logic, *Not:
		f := compileTri(e)
		return func(row types.Row) types.Value {
			switch f(row) {
			case triNull:
				return types.Null()
			case triTrue:
				return types.Bool(true)
			}
			return types.Bool(false)
		}
	case *IsNull:
		f := compileVal(t.E)
		return func(row types.Row) types.Value {
			return types.Bool(f(row).IsNull())
		}
	case nil:
		return func(types.Row) types.Value { return types.Null() }
	default:
		return e.Eval
	}
}
