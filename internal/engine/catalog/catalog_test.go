package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"lqs/internal/engine/types"
	"lqs/internal/sim"
)

func testTable() *Table {
	return NewTable("t",
		Column{"id", types.KindInt},
		Column{"name", types.KindString},
		Column{"price", types.KindFloat},
	)
}

func TestTableColumnLookup(t *testing.T) {
	tb := testTable()
	if tb.Col("name") != 1 || tb.Col("missing") != -1 {
		t.Error("Col lookup wrong")
	}
	if tb.MustCol("price") != 2 {
		t.Error("MustCol wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol on missing column did not panic")
		}
	}()
	tb.MustCol("nope")
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate column did not panic")
		}
	}()
	NewTable("t", Column{"a", types.KindInt}, Column{"a", types.KindInt})
}

func TestCatalogAddAndLookup(t *testing.T) {
	c := NewCatalog()
	tb := c.Add(testTable())
	if c.Table("t") != tb || c.Table("x") != nil {
		t.Error("catalog lookup wrong")
	}
	if len(c.Tables()) != 1 {
		t.Error("Tables() wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate table did not panic")
		}
	}()
	c.Add(testTable())
}

func TestIndexRegistrationAndLookup(t *testing.T) {
	tb := testTable()
	ci := tb.AddIndex(&Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	nc := tb.AddIndex(&Index{Name: "ix_name", KeyCols: []int{1}})
	cs := tb.AddIndex(&Index{Name: "cs", Kind: ColumnStore})
	if tb.Index("pk") != ci || tb.Index("zz") != nil {
		t.Error("Index lookup wrong")
	}
	if tb.ClusteredIndex() != ci {
		t.Error("ClusteredIndex wrong")
	}
	if tb.ColumnStoreIndex() != cs {
		t.Error("ColumnStoreIndex wrong")
	}
	if nc.Table != "t" {
		t.Error("AddIndex did not set table name")
	}
}

func intVals(vs ...int64) []types.Value {
	out := make([]types.Value, len(vs))
	for i, v := range vs {
		out[i] = types.Int(v)
	}
	return out
}

func TestHistogramBasicCounts(t *testing.T) {
	h := BuildHistogram(intVals(1, 1, 2, 3, 3, 3, 4, 5, 5, 9), 4)
	if h.TotalRows != 10 {
		t.Fatalf("TotalRows = %v", h.TotalRows)
	}
	if h.DistinctTotal != 6 {
		t.Fatalf("DistinctTotal = %v", h.DistinctTotal)
	}
	if types.Compare(h.Min, types.Int(1)) != 0 || types.Compare(h.Max, types.Int(9)) != 0 {
		t.Fatalf("min/max = %v/%v", h.Min, h.Max)
	}
	// Mass conservation: all rows accounted for across buckets.
	var mass float64
	for _, b := range h.Buckets {
		mass += b.RangeRows + b.EqRows
	}
	if mass != 10 {
		t.Fatalf("bucket mass = %v, want 10", mass)
	}
}

func TestHistogramSelectivityEqExactOnBoundary(t *testing.T) {
	// With enough buckets every distinct value is a boundary → exact eq.
	h := BuildHistogram(intVals(1, 1, 1, 2, 3, 3, 4, 4, 4, 4), 10)
	cases := map[int64]float64{1: 0.3, 2: 0.1, 3: 0.2, 4: 0.4, 7: 0}
	for v, want := range cases {
		if got := h.SelectivityEq(types.Int(v)); math.Abs(got-want) > 1e-9 {
			t.Errorf("SelectivityEq(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestHistogramSelectivityLT(t *testing.T) {
	vals := make([]types.Value, 0, 100)
	for i := int64(1); i <= 100; i++ {
		vals = append(vals, types.Int(i))
	}
	h := BuildHistogram(vals, 10)
	if got := h.SelectivityLT(types.Int(51), false); math.Abs(got-0.5) > 0.05 {
		t.Errorf("SelectivityLT(51) = %v, want ~0.5", got)
	}
	if got := h.SelectivityLT(types.Int(1), false); got > 0.02 {
		t.Errorf("SelectivityLT(min) = %v, want ~0", got)
	}
	if got := h.SelectivityLT(types.Int(1000), true); got != 1 {
		t.Errorf("SelectivityLT(above max) = %v, want 1", got)
	}
}

func TestHistogramSelectivityRange(t *testing.T) {
	vals := make([]types.Value, 0, 1000)
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, types.Int(i%100))
	}
	h := BuildHistogram(vals, 20)
	got := h.SelectivityRange(types.Int(20), types.Int(39), true, true)
	if math.Abs(got-0.2) > 0.05 {
		t.Errorf("range [20,39] = %v, want ~0.2", got)
	}
	full := h.SelectivityRange(types.Null(), types.Null(), false, false)
	if full != 1 {
		t.Errorf("open range = %v, want 1", full)
	}
}

func TestHistogramSkewedEqHeadVsTail(t *testing.T) {
	rng := sim.NewRNG(1)
	z := sim.NewZipf(rng, 1000, 1.0)
	vals := make([]types.Value, 50000)
	for i := range vals {
		vals[i] = types.Int(z.Next())
	}
	h := BuildHistogram(vals, 50)
	head := h.SelectivityEq(types.Int(1))
	if head < 0.05 {
		t.Errorf("head selectivity %v too small for Z=1 skew", head)
	}
	tail := h.SelectivityEq(types.Int(997))
	if tail > head/10 {
		t.Errorf("tail selectivity %v not far below head %v", tail, head)
	}
}

func TestHistogramPropertyLTMonotone(t *testing.T) {
	rng := sim.NewRNG(2)
	vals := make([]types.Value, 2000)
	for i := range vals {
		vals[i] = types.Int(rng.Int63n(500))
	}
	h := BuildHistogram(vals, 16)
	f := func(a, b uint16) bool {
		x, y := int64(a%600), int64(b%600)
		if x > y {
			x, y = y, x
		}
		return h.SelectivityLT(types.Int(x), false) <= h.SelectivityLT(types.Int(y), false)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := BuildHistogram(nil, 8)
	if h.SelectivityEq(types.Int(1)) != 0 || h.SelectivityLT(types.Int(1), true) != 0 {
		t.Error("empty histogram selectivity should be 0")
	}
}

func TestBuildStats(t *testing.T) {
	tb := testTable()
	tb.RowCount = 4
	data := [][]types.Value{
		intVals(1, 2, 2, 3),
		{types.Str("a"), types.Str("b"), types.Str("b"), types.Null()},
		{types.Float(1), types.Float(2), types.Float(3), types.Float(4)},
	}
	tb.BuildStats(8, func(i int) []types.Value { return data[i] })
	st := tb.Stats
	if st == nil || st.Rows != 4 {
		t.Fatalf("stats rows = %+v", st)
	}
	if st.Cols[0].Distinct != 3 {
		t.Errorf("id distinct = %v", st.Cols[0].Distinct)
	}
	if math.Abs(st.Cols[1].NullFrac-0.25) > 1e-9 {
		t.Errorf("name null frac = %v", st.Cols[1].NullFrac)
	}
	if st.Cols[1].Distinct != 2 {
		t.Errorf("name distinct = %v (nulls must be excluded)", st.Cols[1].Distinct)
	}
}

func TestHistogramStringValues(t *testing.T) {
	h := BuildHistogram([]types.Value{
		types.Str("apple"), types.Str("apple"), types.Str("banana"), types.Str("cherry"),
	}, 4)
	if got := h.SelectivityEq(types.Str("apple")); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("eq apple = %v", got)
	}
	if got := h.SelectivityLT(types.Str("z"), false); got != 1 {
		t.Errorf("lt z = %v", got)
	}
}
