// Package catalog holds schema metadata and optimizer statistics: tables,
// columns, indexes (row-store B-trees and columnstores), and per-column
// equi-depth histograms. It corresponds to the system catalog + statistics
// subsystem the paper's optimizer estimates are drawn from.
package catalog

import (
	"fmt"
	"sort"

	"lqs/internal/engine/types"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind types.Kind
}

// IndexKind distinguishes row-store B-tree indexes from columnstores.
type IndexKind uint8

const (
	// BTree is a row-store B-tree index (clustered or nonclustered).
	BTree IndexKind = iota
	// ColumnStore is a columnar index stored as per-column segments and
	// scanned in batch mode (paper §4.7).
	ColumnStore
)

// Index describes an index over a table.
type Index struct {
	Name      string
	Table     string
	Kind      IndexKind
	KeyCols   []int // ordinals into the table schema; empty for columnstores
	Clustered bool  // clustered B-tree: leaf level stores full rows

	// Physical metadata recorded at build time; the cost model and the
	// client-side progress estimator (paper §4.3, §4.7) both read these.
	LeafPages int64 // B-tree leaf pages
	Height    int   // B-tree levels including leaves
	RowGroups int64 // columnstore row groups
}

// Table describes one table's schema and, once data is loaded, its
// cardinality and statistics.
type Table struct {
	Name    string
	Columns []Column
	Indexes []*Index

	// RowCount is the loaded cardinality; the storage layer sets it.
	RowCount int64
	// Pages is the heap page count; the storage layer sets it. The §4.3
	// logical-I/O progress fraction uses it as its denominator.
	Pages int64
	// Stats holds per-column histograms; BuildStats populates it.
	Stats *TableStats

	byName map[string]int
}

// NewTable creates a table with the given columns.
func NewTable(name string, cols ...Column) *Table {
	t := &Table{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.byName[c.Name]; dup {
			panic(fmt.Sprintf("catalog: duplicate column %s.%s", name, c.Name))
		}
		t.byName[c.Name] = i
	}
	return t
}

// Col returns the ordinal of the named column, or -1 if absent.
func (t *Table) Col(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// MustCol returns the ordinal of the named column and panics if absent.
// Plan builders use it so schema typos fail loudly at construction time.
func (t *Table) MustCol(name string) int {
	i := t.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("catalog: no column %s.%s", t.Name, name))
	}
	return i
}

// AddIndex registers an index on the table.
func (t *Table) AddIndex(ix *Index) *Index {
	ix.Table = t.Name
	t.Indexes = append(t.Indexes, ix)
	return ix
}

// Index returns the named index, or nil.
func (t *Table) Index(name string) *Index {
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}

// ClusteredIndex returns the table's clustered index if one exists.
func (t *Table) ClusteredIndex() *Index {
	for _, ix := range t.Indexes {
		if ix.Clustered && ix.Kind == BTree {
			return ix
		}
	}
	return nil
}

// ColumnStoreIndex returns the table's columnstore index if one exists.
func (t *Table) ColumnStoreIndex() *Index {
	for _, ix := range t.Indexes {
		if ix.Kind == ColumnStore {
			return ix
		}
	}
	return nil
}

// Catalog is a named collection of tables.
type Catalog struct {
	tables map[string]*Table
	order  []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table; it panics on duplicate names.
func (c *Catalog) Add(t *Table) *Table {
	if _, dup := c.tables[t.Name]; dup {
		panic("catalog: duplicate table " + t.Name)
	}
	c.tables[t.Name] = t
	c.order = append(c.order, t.Name)
	return t
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// MustTable returns the named table and panics if absent.
func (c *Catalog) MustTable(name string) *Table {
	t := c.tables[name]
	if t == nil {
		panic("catalog: no table " + name)
	}
	return t
}

// Tables returns all tables in registration order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}

// TableStats carries optimizer statistics for a table.
type TableStats struct {
	Rows float64
	Cols []*ColumnStats // indexed by column ordinal; nil if not collected
}

// ColumnStats carries statistics for one column.
type ColumnStats struct {
	Hist     *Histogram
	Distinct float64
	NullFrac float64
}

// BuildStats computes statistics for the table from the supplied column
// extractor: col(i) must return all values of column ordinal i in storage
// order. buckets controls histogram resolution (SQL Server uses up to 200
// steps; tests use fewer). The statistics sample every row — sampling error
// is not a phenomenon the paper studies, while skew-induced estimation
// error (which it does study) survives full scans intact.
func (t *Table) BuildStats(buckets int, col func(i int) []types.Value) {
	st := &TableStats{Rows: float64(t.RowCount), Cols: make([]*ColumnStats, len(t.Columns))}
	for i := range t.Columns {
		vals := col(i)
		cs := &ColumnStats{}
		nonNull := make([]types.Value, 0, len(vals))
		nulls := 0
		for _, v := range vals {
			if v.IsNull() {
				nulls++
			} else {
				nonNull = append(nonNull, v)
			}
		}
		if len(vals) > 0 {
			cs.NullFrac = float64(nulls) / float64(len(vals))
		}
		sort.Slice(nonNull, func(a, b int) bool { return types.Compare(nonNull[a], nonNull[b]) < 0 })
		cs.Hist = buildHistogramSorted(nonNull, buckets)
		cs.Distinct = cs.Hist.DistinctTotal
		st.Cols[i] = cs
	}
	t.Stats = st
}
