package catalog

import (
	"fmt"
	"strings"

	"lqs/internal/engine/types"
)

// Bucket is one step of an equi-depth histogram. It covers the value range
// (previous bucket's Upper, Upper], with EqRows rows equal to Upper itself
// and RangeRows/RangeDistinct describing the open interval below it —
// the same MaxDiff-style layout SQL Server statistics use, which is what
// the paper's optimizer estimates come from.
type Bucket struct {
	Upper         types.Value
	EqRows        float64
	RangeRows     float64
	RangeDistinct float64
}

// Histogram is an equi-depth histogram over a column's non-null values.
type Histogram struct {
	Buckets       []Bucket
	TotalRows     float64
	DistinctTotal float64
	Min, Max      types.Value
}

// buildHistogramSorted builds a histogram from values already sorted
// ascending. It produces at most maxBuckets steps; every distinct value at
// a bucket boundary gets exact EqRows, which mirrors how real engines pin
// frequent values to steps.
func buildHistogramSorted(sorted []types.Value, maxBuckets int) *Histogram {
	h := &Histogram{}
	n := len(sorted)
	if n == 0 {
		return h
	}
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	h.TotalRows = float64(n)
	h.Min = sorted[0]
	h.Max = sorted[n-1]

	// Group into runs of equal values first.
	type run struct {
		v     types.Value
		count int
	}
	runs := make([]run, 0, min(n, 4096))
	for i := 0; i < n; {
		j := i + 1
		for j < n && types.Equal(sorted[j], sorted[i]) {
			j++
		}
		runs = append(runs, run{sorted[i], j - i})
		i = j
	}
	h.DistinctTotal = float64(len(runs))

	perBucket := (n + maxBuckets - 1) / maxBuckets
	var cur Bucket
	var curRows int
	var curDistinct int
	flush := func(boundary run) {
		cur.Upper = boundary.v
		cur.EqRows = float64(boundary.count)
		cur.RangeRows = float64(curRows)
		cur.RangeDistinct = float64(curDistinct)
		h.Buckets = append(h.Buckets, cur)
		cur = Bucket{}
		curRows, curDistinct = 0, 0
	}
	for i, rn := range runs {
		// A run becomes the boundary when the accumulated range plus the
		// run itself reaches the target depth, or it is the last run.
		if curRows+rn.count >= perBucket || i == len(runs)-1 {
			flush(rn)
		} else {
			curRows += rn.count
			curDistinct++
		}
	}
	return h
}

// BuildHistogram sorts a copy of values and builds an equi-depth histogram
// with at most maxBuckets steps. Null values must be filtered out by the
// caller (Table.BuildStats does this).
func BuildHistogram(values []types.Value, maxBuckets int) *Histogram {
	cp := make([]types.Value, len(values))
	copy(cp, values)
	sortValues(cp)
	return buildHistogramSorted(cp, maxBuckets)
}

func sortValues(vs []types.Value) {
	// insertion-free: delegate to sort.Slice via a tiny local import-free
	// shim is not worth it; use a simple quicksort to keep the package
	// dependency surface minimal? Standard library is allowed and clearer.
	quickSortValues(vs, 0, len(vs)-1)
}

func quickSortValues(vs []types.Value, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && types.Compare(vs[j], vs[j-1]) < 0; j-- {
					vs[j], vs[j-1] = vs[j-1], vs[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		pivot := vs[mid]
		i, j := lo, hi
		for i <= j {
			for types.Compare(vs[i], pivot) < 0 {
				i++
			}
			for types.Compare(vs[j], pivot) > 0 {
				j--
			}
			if i <= j {
				vs[i], vs[j] = vs[j], vs[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side to bound stack depth.
		if j-lo < hi-i {
			quickSortValues(vs, lo, j)
			lo = i
		} else {
			quickSortValues(vs, i, hi)
			hi = j
		}
	}
}

// SelectivityEq estimates the fraction of rows equal to v.
func (h *Histogram) SelectivityEq(v types.Value) float64 {
	if h.TotalRows == 0 {
		return 0
	}
	for _, b := range h.Buckets {
		c := types.Compare(v, b.Upper)
		if c == 0 {
			return b.EqRows / h.TotalRows
		}
		if c < 0 {
			// Inside the bucket's open range: assume uniform over its
			// distinct values.
			if b.RangeDistinct > 0 {
				return b.RangeRows / b.RangeDistinct / h.TotalRows
			}
			return 0
		}
	}
	return 0 // above the max
}

// SelectivityLT estimates the fraction of rows strictly below v
// (inclusive=true makes it <=).
func (h *Histogram) SelectivityLT(v types.Value, inclusive bool) float64 {
	if h.TotalRows == 0 {
		return 0
	}
	var below float64
	var prev types.Value
	hasPrev := false
	for _, b := range h.Buckets {
		c := types.Compare(v, b.Upper)
		switch {
		case c > 0:
			below += b.RangeRows + b.EqRows
		case c == 0:
			below += b.RangeRows
			if inclusive {
				below += b.EqRows
			}
			return clamp01(below / h.TotalRows)
		default:
			// v falls inside this bucket's open range: linear interpolation
			// on numeric bounds, half the bucket otherwise. The first
			// bucket's lower bound is the column minimum.
			frac := 0.5
			lower := h.Min
			if hasPrev {
				lower = prev
			}
			if lo, ok1 := lower.AsFloat(); ok1 {
				if hi, ok2 := b.Upper.AsFloat(); ok2 && hi > lo {
					if fv, ok3 := v.AsFloat(); ok3 {
						frac = (fv - lo) / (hi - lo)
					}
				}
			}
			below += b.RangeRows * clamp01(frac)
			return clamp01(below / h.TotalRows)
		}
		prev = b.Upper
		hasPrev = true
	}
	return clamp01(below / h.TotalRows)
}

// SelectivityRange estimates the fraction of rows in [lo, hi] with the
// given inclusivities. Pass a NULL bound for an open end.
func (h *Histogram) SelectivityRange(lo, hi types.Value, loInc, hiInc bool) float64 {
	upper := 1.0
	if !hi.IsNull() {
		upper = h.SelectivityLT(hi, hiInc)
	}
	lower := 0.0
	if !lo.IsNull() {
		lower = h.SelectivityLT(lo, !loInc)
	}
	return clamp01(upper - lower)
}

// String renders the histogram compactly for debugging.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hist{rows=%.0f distinct=%.0f", h.TotalRows, h.DistinctTotal)
	for _, b := range h.Buckets {
		fmt.Fprintf(&sb, " [<%s:%.0f/%.0f =%s:%.0f]", b.Upper, b.RangeRows, b.RangeDistinct, b.Upper, b.EqRows)
	}
	sb.WriteString("}")
	return sb.String()
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
