package types

import (
	"math"
	"strings"
)

// mathFloat64bits avoids importing math in value.go's hot path twice; it is
// a thin alias kept here with the row helpers.
func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

// Row is a single tuple: a slice of values positioned by column ordinal.
// Operators may retain rows they receive only until the next call to Next
// on the same child; they copy when they buffer (sorts, spools, exchanges).
type Row []Value

// Clone returns a copy of the row that the caller may retain.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row holding r followed by other (used by joins).
func (r Row) Concat(other Row) Row {
	out := make(Row, 0, len(r)+len(other))
	out = append(out, r...)
	return append(out, other...)
}

// HashCols hashes the values at the given ordinals, for hash join and hash
// aggregation key matching.
func (r Row) HashCols(cols []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, c := range cols {
		h = h*1099511628211 ^ r[c].Hash()
	}
	return h
}

// EqualCols reports whether rows a and b agree on the given ordinals
// (NULLs equal, grouping semantics).
func EqualCols(a, b Row, acols, bcols []int) bool {
	for i := range acols {
		if !Equal(a[acols[i]], b[bcols[i]]) {
			return false
		}
	}
	return true
}

// CompareCols orders two rows by the given ordinals with per-key direction
// (desc[i] true means descending). Missing desc entries default ascending.
func CompareCols(a, b Row, acols, bcols []int, desc []bool) int {
	for i := range acols {
		c := Compare(a[acols[i]], b[bcols[i]])
		if i < len(desc) && desc[i] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// String renders the row for traces and debugging.
func (r Row) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Width returns an approximate stored width of the row in bytes, used by
// the storage layer to pack heap pages and by the cost model for I/O
// weighting.
func (r Row) Width() int {
	w := 0
	for _, v := range r {
		switch v.K {
		case KindNull:
			w++
		case KindString:
			w += 2 + len(v.S)
		default:
			w += 8
		}
	}
	return w
}
