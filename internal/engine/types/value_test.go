package types

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(5), KindInt},
		{Float(2.5), KindFloat},
		{Str("x"), KindString},
		{Bool(true), KindInt},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("%v has kind %v, want %v", c.v, c.v.K, c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassifies")
	}
}

func TestValueTruthiness(t *testing.T) {
	if Null().IsTrue() || Int(0).IsTrue() || Float(0).IsTrue() || Str("").IsTrue() {
		t.Error("falsey value reported true")
	}
	if !Int(1).IsTrue() || !Float(-0.5).IsTrue() || !Str("a").IsTrue() {
		t.Error("truthy value reported false")
	}
}

func TestValueConversions(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Errorf("Int(3).AsFloat() = %v, %v", f, ok)
	}
	if i, ok := Float(3.9).AsInt(); !ok || i != 3 {
		t.Errorf("Float(3.9).AsInt() = %v, %v", i, ok)
	}
	if _, ok := Str("3").AsInt(); ok {
		t.Error("string converted to int")
	}
	if _, ok := Null().AsFloat(); ok {
		t.Error("null converted to float")
	}
}

func TestCompareOrdering(t *testing.T) {
	// NULL < numbers < strings; ints and floats interleave numerically.
	ordered := []Value{Null(), Int(-10), Float(-1.5), Int(0), Float(0.5), Int(1), Float(99.5), Int(100), Str(""), Str("a"), Str("b")}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareIntFloatEquality(t *testing.T) {
	if Compare(Int(7), Float(7)) != 0 {
		t.Error("Int(7) != Float(7)")
	}
	if Int(7).Hash() != Float(7).Hash() {
		t.Error("equal numerics hash differently")
	}
}

func TestComparePropertyAntisymmetric(t *testing.T) {
	gen := func(a, b int64, fa, fb float64, sa, sb string, pick uint8) bool {
		mk := func(p uint8, i int64, f float64, s string) Value {
			switch p % 4 {
			case 0:
				return Null()
			case 1:
				return Int(i)
			case 2:
				return Float(f)
			default:
				return Str(s)
			}
		}
		x := mk(pick, a, fa, sa)
		y := mk(pick>>2, b, fb, sb)
		return Compare(x, y) == -Compare(y, x)
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComparePropertyTransitiveViaSort(t *testing.T) {
	vals := []Value{Str("zz"), Int(3), Float(2.5), Null(), Int(-1), Str("a"), Float(3), Int(3)}
	sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	for i := 1; i < len(vals); i++ {
		if Compare(vals[i-1], vals[i]) > 0 {
			t.Fatalf("sorted order violated at %d: %v", i, vals)
		}
	}
}

func TestHashEqualImpliesSameHash(t *testing.T) {
	f := func(i int64, s string) bool {
		return Int(i).Hash() == Int(i).Hash() && Str(s).Hash() == Str(s).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Str("ab").Hash() == Str("ba").Hash() {
		t.Error("suspicious collision on permuted strings")
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].I != 1 {
		t.Error("Clone aliases original")
	}
}

func TestRowConcat(t *testing.T) {
	r := Row{Int(1)}.Concat(Row{Str("a"), Int(2)})
	if len(r) != 3 || r[0].I != 1 || r[1].S != "a" || r[2].I != 2 {
		t.Errorf("Concat wrong: %v", r)
	}
}

func TestRowHashAndEqualCols(t *testing.T) {
	a := Row{Int(1), Str("x"), Int(5)}
	b := Row{Int(5), Int(1), Str("x")}
	if !EqualCols(a, b, []int{0, 1}, []int{1, 2}) {
		t.Error("EqualCols false on matching projection")
	}
	if a.HashCols([]int{0, 1}) != b.HashCols([]int{1, 2}) {
		t.Error("matching projections hash differently")
	}
	if EqualCols(a, b, []int{0}, []int{0}) {
		t.Error("EqualCols true on mismatch")
	}
}

func TestCompareColsDirections(t *testing.T) {
	a := Row{Int(1), Int(9)}
	b := Row{Int(1), Int(3)}
	if CompareCols(a, b, []int{0, 1}, []int{0, 1}, nil) <= 0 {
		t.Error("ascending compare wrong")
	}
	if CompareCols(a, b, []int{0, 1}, []int{0, 1}, []bool{false, true}) >= 0 {
		t.Error("descending compare wrong")
	}
}

func TestRowWidth(t *testing.T) {
	r := Row{Int(1), Float(2), Str("abc"), Null()}
	if w := r.Width(); w != 8+8+5+1 {
		t.Errorf("Width = %d", w)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null(), "42": Int(42), "'hi'": Str("hi"), "1.5": Float(1.5),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if (Row{Int(1), Str("a")}).String() != "(1, 'a')" {
		t.Error("Row.String format changed")
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "BIGINT" || KindNull.String() != "NULL" {
		t.Error("Kind.String mismatch")
	}
}
