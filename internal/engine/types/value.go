// Package types defines the value and row representation shared by the
// storage engine, expression evaluator, and physical operators. It is the
// lowest layer of the engine: everything above it (catalog, storage, expr,
// exec) depends on these types and nothing here depends on anything else in
// the repository.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL marker; it compares below every non-null.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable byte string.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
//
// Value is a small struct passed by value throughout the engine; rows are
// slices of them. The representation trades a little memory (one unused
// field per value) for the absence of interface boxing on the hot
// execution path.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// Str returns a string value.
func Str(v string) Value { return Value{K: KindString, S: v} }

// Bool encodes a boolean as the engine's canonical 0/1 integer.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsTrue reports whether v is a non-null value that is "truthy" under the
// engine's predicate semantics (non-zero number, non-empty string).
func (v Value) IsTrue() bool {
	switch v.K {
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsFloat converts a numeric value to float64. NULL converts to 0 with
// ok=false; strings convert with ok=false.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt converts a numeric value to int64 (floats truncate). NULL and
// strings convert with ok=false.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.K {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// String renders the value for plans, traces, and debugging.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "'" + v.S + "'"
	default:
		return fmt.Sprintf("Value<%d>", v.K)
	}
}

// Compare orders two values: NULL < numbers < strings; ints and floats
// compare numerically with each other. The result is -1, 0, or +1.
//
// This single total order backs sort operators, merge joins, B-tree keys,
// and histogram bucketing, so every component agrees on ordering.
func Compare(a, b Value) int {
	ra, rb := rank(a.K), rank(b.K)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindInt:
		if b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		return cmpFloat(float64(a.I), b.F)
	case KindFloat:
		if b.K == KindInt {
			return cmpFloat(a.F, float64(b.I))
		}
		return cmpFloat(a.F, b.F)
	}
	return 0
}

// rank groups kinds into comparison classes: NULL, numeric, string.
func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether a and b compare equal. NULL equals NULL under this
// function (grouping semantics); predicate three-valued logic is handled in
// the expression layer.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit hash of v, consistent with Equal for values in the
// same comparison class (ints and floats holding the same number hash
// identically, so hash joins may join across the two numeric kinds).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	switch v.K {
	case KindNull:
		mix(0)
	case KindInt, KindFloat:
		// Normalize numerics: integral floats hash as their int64 value.
		var u uint64
		if v.K == KindInt {
			u = uint64(v.I)
		} else if f := v.F; f == float64(int64(f)) {
			u = uint64(int64(f))
		} else {
			u = mathFloat64bits(f)
		}
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case KindString:
		mix(2)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	}
	return h
}
