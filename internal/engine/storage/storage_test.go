package storage

import (
	"testing"
	"testing/quick"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/types"
	"lqs/internal/sim"
)

func TestBufferPoolLRU(t *testing.T) {
	bp := NewBufferPool(2)
	p := func(n uint32) PageID { return PageID{1, n} }
	if !bp.Access(p(1)) || !bp.Access(p(2)) {
		t.Fatal("cold accesses must be physical")
	}
	if bp.Access(p(1)) {
		t.Fatal("resident page read physically")
	}
	// Access 3 evicts 2 (LRU), not 1 (just touched).
	if !bp.Access(p(3)) {
		t.Fatal("new page must miss")
	}
	if bp.Access(p(1)) {
		t.Fatal("page 1 should still be resident")
	}
	if !bp.Access(p(2)) {
		t.Fatal("page 2 should have been evicted")
	}
	hits, misses := bp.Stats()
	if hits != 2 || misses != 4 {
		t.Fatalf("stats = %d hits / %d misses", hits, misses)
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	bp := NewBufferPool(0)
	pid := PageID{1, 1}
	if !bp.Access(pid) || !bp.Access(pid) {
		t.Fatal("zero-capacity pool must always miss")
	}
}

func TestBufferPoolClear(t *testing.T) {
	bp := NewBufferPool(10)
	bp.Access(PageID{1, 1})
	bp.Clear()
	if bp.Resident() != 0 {
		t.Fatal("Clear left pages resident")
	}
	if !bp.Access(PageID{1, 1}) {
		t.Fatal("post-clear access must be physical")
	}
}

func makeRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64(i)), types.Str("payload-string-xx"), types.Float(float64(i) / 2)}
	}
	return rows
}

func TestHeapScanAndPaging(t *testing.T) {
	h := NewHeap(1)
	for _, r := range makeRows(1000) {
		h.Append(r)
	}
	h.Seal()
	if h.NumRows() != 1000 {
		t.Fatalf("NumRows = %d", h.NumRows())
	}
	if h.RowsPerPage() <= 1 {
		t.Fatalf("RowsPerPage = %d, rows should pack", h.RowsPerPage())
	}
	wantPages := (1000 + int64(h.RowsPerPage()) - 1) / int64(h.RowsPerPage())
	if h.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", h.NumPages(), wantPages)
	}
	bp := NewBufferPool(100000)
	c := h.Cursor(bp)
	var count int64
	var io IOCounts
	for {
		row, rid, ok := c.Next()
		if !ok {
			break
		}
		if rid != count || row[0].I != count {
			t.Fatalf("row %d out of order: rid=%d val=%v", count, rid, row[0])
		}
		count++
		io.Add(c.DrainIO())
	}
	if count != 1000 {
		t.Fatalf("scanned %d rows", count)
	}
	if io.Logical != h.NumPages() {
		t.Fatalf("logical reads %d != pages %d", io.Logical, h.NumPages())
	}
	if io.Physical != io.Logical {
		t.Fatalf("cold scan should be all-physical: %+v", io)
	}
	// Second scan: warm cache, zero physical.
	c.Reset()
	var io2 IOCounts
	for {
		_, _, ok := c.Next()
		if !ok {
			break
		}
	}
	io2.Add(c.DrainIO())
	if io2.Physical != 0 {
		t.Fatalf("warm rescan did %d physical reads", io2.Physical)
	}
}

func TestHeapGet(t *testing.T) {
	h := NewHeap(1)
	for _, r := range makeRows(10) {
		h.Append(r)
	}
	h.Seal()
	bp := NewBufferPool(10)
	var io IOCounts
	row := h.Get(7, bp, &io)
	if row[0].I != 7 || io.Logical != 1 {
		t.Fatalf("Get(7) = %v, io=%+v", row, io)
	}
}

func buildTestBTree(n int, clustered bool) *BTree {
	entries := make([]IndexEntry, n)
	for i := 0; i < n; i++ {
		e := IndexEntry{Key: []types.Value{types.Int(int64(i * 2))}, RID: int64(i)}
		if clustered {
			e.Row = types.Row{types.Int(int64(i * 2)), types.Str("r")}
		}
		entries[i] = e
	}
	return BuildBTree(2, entries)
}

func TestBTreeSeekExact(t *testing.T) {
	bt := buildTestBTree(10000, false)
	bp := NewBufferPool(100000)
	c := bt.Seek([]types.Value{types.Int(5000)}, true, bp)
	c.SetUpper([]types.Value{types.Int(5000)}, true)
	e, ok := c.Next()
	if !ok || e.Key[0].I != 5000 {
		t.Fatalf("seek 5000 got %v ok=%v", e, ok)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("exact seek returned extra entries")
	}
	io := c.DrainIO()
	if io.Logical < int64(bt.Height()) {
		t.Fatalf("descent charged %d logical reads, height is %d", io.Logical, bt.Height())
	}
}

func TestBTreeRangeScan(t *testing.T) {
	bt := buildTestBTree(10000, false)
	bp := NewBufferPool(100000)
	c := bt.Seek([]types.Value{types.Int(100)}, true, bp)
	c.SetUpper([]types.Value{types.Int(199)}, true)
	var got []int64
	for {
		e, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, e.Key[0].I)
	}
	// Keys are even: 100..198 → 50 entries.
	if len(got) != 50 || got[0] != 100 || got[len(got)-1] != 198 {
		t.Fatalf("range scan got %d entries [%d..%d]", len(got), got[0], got[len(got)-1])
	}
}

func TestBTreeSeekExclusiveBounds(t *testing.T) {
	bt := buildTestBTree(100, false)
	bp := NewBufferPool(1000)
	c := bt.Seek([]types.Value{types.Int(10)}, false, bp) // strictly greater
	e, ok := c.Next()
	if !ok || e.Key[0].I != 12 {
		t.Fatalf("exclusive seek got %v", e)
	}
	c.SetUpper([]types.Value{types.Int(16)}, false)
	e, _ = c.Next() // 14
	e2, ok2 := c.Next()
	if e.Key[0].I != 14 || ok2 {
		t.Fatalf("exclusive upper: got %v then %v ok=%v", e, e2, ok2)
	}
}

func TestBTreeScanAllOrdered(t *testing.T) {
	bt := buildTestBTree(5000, true)
	bp := NewBufferPool(100000)
	c := bt.ScanAll(bp)
	prev := int64(-1)
	n := 0
	for {
		e, ok := c.Next()
		if !ok {
			break
		}
		if e.Key[0].I <= prev {
			t.Fatalf("scan out of order at %d", n)
		}
		if e.Row == nil {
			t.Fatal("clustered entries must carry rows")
		}
		prev = e.Key[0].I
		n++
	}
	if n != 5000 {
		t.Fatalf("scanned %d", n)
	}
}

func TestBTreeEmptyAndMissing(t *testing.T) {
	bt := BuildBTree(1, nil)
	bp := NewBufferPool(10)
	c := bt.Seek([]types.Value{types.Int(1)}, true, bp)
	if _, ok := c.Next(); ok {
		t.Fatal("empty tree returned an entry")
	}
	bt2 := buildTestBTree(10, false)
	c2 := bt2.Seek([]types.Value{types.Int(999)}, true, bp)
	if _, ok := c2.Next(); ok {
		t.Fatal("seek past end returned an entry")
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	entries := make([]IndexEntry, 0, 300)
	for i := 0; i < 100; i++ {
		for d := 0; d < 3; d++ {
			entries = append(entries, IndexEntry{Key: []types.Value{types.Int(int64(i))}, RID: int64(i*3 + d)})
		}
	}
	bt := BuildBTree(3, entries)
	bp := NewBufferPool(1000)
	c := bt.Seek([]types.Value{types.Int(42)}, true, bp)
	c.SetUpper([]types.Value{types.Int(42)}, true)
	n := 0
	for {
		_, ok := c.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("duplicate seek found %d entries, want 3", n)
	}
}

func TestBTreePropertySeekFindsAll(t *testing.T) {
	rng := sim.NewRNG(77)
	keys := make(map[int64]int)
	entries := make([]IndexEntry, 0, 2000)
	for i := 0; i < 2000; i++ {
		k := rng.Int63n(500)
		keys[k]++
		entries = append(entries, IndexEntry{Key: []types.Value{types.Int(k)}, RID: int64(i)})
	}
	bt := BuildBTree(9, entries)
	bp := NewBufferPool(100000)
	f := func(probe uint16) bool {
		k := int64(probe % 500)
		c := bt.Seek([]types.Value{types.Int(k)}, true, bp)
		c.SetUpper([]types.Value{types.Int(k)}, true)
		n := 0
		for {
			_, ok := c.Next()
			if !ok {
				break
			}
			n++
		}
		return n == keys[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnStoreBuildAndRead(t *testing.T) {
	rows := makeRows(10000)
	cs := BuildColumnStore(5, rows, 3)
	if cs.NumRows() != 10000 {
		t.Fatalf("NumRows = %d", cs.NumRows())
	}
	wantGroups := (10000 + RowGroupSize - 1) / RowGroupSize
	if cs.NumRowGroups() != wantGroups {
		t.Fatalf("NumRowGroups = %d, want %d", cs.NumRowGroups(), wantGroups)
	}
	if cs.TotalSegments(2) != int64(wantGroups*2) {
		t.Fatalf("TotalSegments(2) = %d", cs.TotalSegments(2))
	}
	bp := NewBufferPool(100000)
	var io IOCounts
	batch := cs.ReadRowGroup(0, []int{0, 2}, bp, &io)
	if len(batch) != RowGroupSize {
		t.Fatalf("batch size %d", len(batch))
	}
	if io.Logical != 2 {
		t.Fatalf("reading 2 segments charged %d logical IOs", io.Logical)
	}
	if batch[5][0].I != 5 || batch[5][2].F != 2.5 {
		t.Fatalf("batch row 5 = %v", batch[5])
	}
	if !batch[5][1].IsNull() {
		t.Fatal("unread column should be NULL")
	}
}

func TestColumnStoreSegmentMinMax(t *testing.T) {
	rows := makeRows(RowGroupSize * 2)
	cs := BuildColumnStore(6, rows, 3)
	s := cs.Segment(1, 0) // second group, int column
	if s.Min.I != RowGroupSize || s.Max.I != RowGroupSize*2-1 {
		t.Fatalf("segment min/max = %v/%v", s.Min, s.Max)
	}
}

func testCatalogAndDB(t *testing.T) (*catalog.Catalog, *Database) {
	t.Helper()
	cat := catalog.NewCatalog()
	tb := catalog.NewTable("items",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "grp", Kind: types.KindInt},
		catalog.Column{Name: "name", Kind: types.KindString},
	)
	tb.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	tb.AddIndex(&catalog.Index{Name: "ix_grp", KeyCols: []int{1}})
	tb.AddIndex(&catalog.Index{Name: "cs", Kind: catalog.ColumnStore})
	cat.Add(tb)
	db := NewDatabase(cat, 10000)
	rows := make([]types.Row, 500)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64(i)), types.Int(int64(i % 7)), types.Str("n")}
	}
	db.Load("items", rows)
	return cat, db
}

func TestDatabaseLoadBuildsEverything(t *testing.T) {
	cat, db := testCatalogAndDB(t)
	if cat.MustTable("items").RowCount != 500 {
		t.Fatal("RowCount not set")
	}
	if db.Heap("items").NumRows() != 500 {
		t.Fatal("heap missing rows")
	}
	if db.BTree("items", "pk").NumEntries() != 500 {
		t.Fatal("clustered index missing entries")
	}
	if db.BTree("items", "ix_grp").NumEntries() != 500 {
		t.Fatal("secondary index missing entries")
	}
	if db.ColumnStore("items", "cs").NumRows() != 500 {
		t.Fatal("columnstore missing rows")
	}
}

func TestDatabaseSecondaryIndexSeekToHeap(t *testing.T) {
	_, db := testCatalogAndDB(t)
	bt := db.BTree("items", "ix_grp")
	c := bt.Seek([]types.Value{types.Int(3)}, true, db.Pool)
	c.SetUpper([]types.Value{types.Int(3)}, true)
	n := 0
	var io IOCounts
	for {
		e, ok := c.Next()
		if !ok {
			break
		}
		row := db.Heap("items").Get(e.RID, db.Pool, &io)
		if row[1].I != 3 {
			t.Fatalf("RID %d resolved to wrong row %v", e.RID, row)
		}
		n++
	}
	if n != 71 { // ids with id%7==3 in [0,500): 3,10,...,493
		t.Fatalf("found %d rows for grp=3, want 71", n)
	}
}

func TestDatabaseStats(t *testing.T) {
	cat, db := testCatalogAndDB(t)
	db.BuildAllStats(16)
	st := cat.MustTable("items").Stats
	if st == nil || st.Rows != 500 {
		t.Fatal("stats not built")
	}
	if st.Cols[1].Distinct != 7 {
		t.Fatalf("grp distinct = %v, want 7", st.Cols[1].Distinct)
	}
}

func TestLoadArityMismatchPanics(t *testing.T) {
	cat := catalog.NewCatalog()
	cat.Add(catalog.NewTable("t", catalog.Column{Name: "a", Kind: types.KindInt}))
	db := NewDatabase(cat, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	db.Load("t", []types.Row{{types.Int(1), types.Int(2)}})
}

func BenchmarkHeapScan(b *testing.B) {
	h := NewHeap(1)
	for _, r := range makeRows(100000) {
		h.Append(r)
	}
	h.Seal()
	bp := NewBufferPool(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := h.Cursor(bp)
		for {
			_, _, ok := c.Next()
			if !ok {
				break
			}
		}
	}
}

func BenchmarkBTreeSeek(b *testing.B) {
	bt := buildTestBTree(1_000_000, false)
	bp := NewBufferPool(1 << 20)
	probe := []types.Value{types.Int(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe[0] = types.Int(int64(i*2) % 2_000_000)
		c := bt.Seek(probe, true, bp)
		c.Next()
	}
}
