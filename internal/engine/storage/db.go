package storage

import (
	"fmt"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/types"
)

// Database ties a catalog to its physical structures: one heap per table,
// plus whatever B-tree and columnstore indexes the catalog declares. It is
// the "server side" state the execution engine runs against.
type Database struct {
	Catalog *catalog.Catalog
	Pool    *BufferPool

	heaps     map[string]*Heap
	btrees    map[string]*BTree
	colstores map[string]*ColumnStore
	nextObj   uint32
}

// NewDatabase creates an empty database over the given catalog with a
// buffer pool of poolPages pages.
func NewDatabase(cat *catalog.Catalog, poolPages int) *Database {
	return &Database{
		Catalog:   cat,
		Pool:      NewBufferPool(poolPages),
		heaps:     make(map[string]*Heap),
		btrees:    make(map[string]*BTree),
		colstores: make(map[string]*ColumnStore),
		nextObj:   1,
	}
}

func (db *Database) allocObj() uint32 {
	id := db.nextObj
	db.nextObj++
	return id
}

// Load stores rows into the named table's heap, seals page packing, builds
// every declared index, and records the row count in the catalog. It
// panics if the table is unknown or a row has the wrong arity — loader
// bugs, not runtime conditions.
func (db *Database) Load(table string, rows []types.Row) {
	t := db.Catalog.MustTable(table)
	for _, r := range rows {
		if len(r) != len(t.Columns) {
			panic(fmt.Sprintf("storage: row arity %d != schema arity %d for %s", len(r), len(t.Columns), table))
		}
	}
	h := NewHeap(db.allocObj())
	for _, r := range rows {
		h.Append(r)
	}
	h.Seal()
	db.heaps[table] = h
	t.RowCount = h.NumRows()
	t.Pages = h.NumPages()
	db.buildIndexes(t, rows)
}

func (db *Database) buildIndexes(t *catalog.Table, rows []types.Row) {
	for _, ix := range t.Indexes {
		switch ix.Kind {
		case catalog.BTree:
			entries := make([]IndexEntry, len(rows))
			for i, r := range rows {
				key := make([]types.Value, len(ix.KeyCols))
				for k, c := range ix.KeyCols {
					key[k] = r[c]
				}
				e := IndexEntry{Key: key, RID: int64(i)}
				if ix.Clustered {
					e.Row = r
				}
				entries[i] = e
			}
			bt := BuildBTree(db.allocObj(), entries)
			ix.LeafPages = bt.NumLeafPages()
			ix.Height = bt.Height()
			db.btrees[t.Name+"."+ix.Name] = bt
		case catalog.ColumnStore:
			cs := BuildColumnStore(db.allocObj(), rows, len(t.Columns))
			ix.RowGroups = int64(cs.NumRowGroups())
			db.colstores[t.Name+"."+ix.Name] = cs
		}
	}
}

// Heap returns the named table's heap; it panics if the table has no data.
func (db *Database) Heap(table string) *Heap {
	h := db.heaps[table]
	if h == nil {
		panic("storage: no heap for table " + table)
	}
	return h
}

// BTree returns the named B-tree index of a table.
func (db *Database) BTree(table, index string) *BTree {
	t := db.btrees[table+"."+index]
	if t == nil {
		panic(fmt.Sprintf("storage: no btree %s.%s", table, index))
	}
	return t
}

// ColumnStore returns the named columnstore index of a table.
func (db *Database) ColumnStore(table, index string) *ColumnStore {
	cs := db.colstores[table+"."+index]
	if cs == nil {
		panic(fmt.Sprintf("storage: no columnstore %s.%s", table, index))
	}
	return cs
}

// WorkerView returns a view of the database for one parallel worker: it
// shares the catalog and the immutable physical structures (heaps, b-trees,
// columnstores are never mutated mid-query) but carries a private buffer
// pool of the same capacity and no fault injector. Private pools keep each
// worker's logical/physical read split a pure function of its own page
// access sequence — concurrent workers sharing one LRU would make eviction
// order, and therefore physical-read counts, schedule-dependent.
func (db *Database) WorkerView() *Database {
	return &Database{
		Catalog:   db.Catalog,
		Pool:      NewBufferPool(db.Pool.Capacity()),
		heaps:     db.heaps,
		btrees:    db.btrees,
		colstores: db.colstores,
		nextObj:   db.nextObj,
	}
}

// BuildAllStats computes histograms for every loaded table.
func (db *Database) BuildAllStats(buckets int) {
	for _, t := range db.Catalog.Tables() {
		h := db.heaps[t.Name]
		if h == nil {
			continue
		}
		t.BuildStats(buckets, func(i int) []types.Value {
			vals := make([]types.Value, 0, len(h.rows))
			for _, r := range h.rows {
				vals = append(vals, r[i])
			}
			return vals
		})
	}
}

// ColdStart clears the buffer pool, simulating a cold cache so successive
// experiment queries see identical I/O behavior.
func (db *Database) ColdStart() { db.Pool.Clear() }

// InjectFaults attaches a seeded fault injector to the buffer pool and
// returns it (for stats); physical page reads may then suffer transient or
// permanent failures. Pass a zero-probability config — or call
// db.Pool.SetFaultInjector(nil) — to disable.
func (db *Database) InjectFaults(cfg FaultConfig) *FaultInjector {
	fi := NewFaultInjector(cfg)
	db.Pool.SetFaultInjector(fi)
	return fi
}
