package storage

import "lqs/internal/engine/types"

// RowGroupSize is the number of rows per columnstore row group. SQL Server
// uses ~1M rows per group; the simulator scales this down in proportion to
// its scaled-down table sizes so queries still span many segments (the
// granularity the paper's §4.7 progress estimates work at) and so one
// segment read stays a small fraction of a query's runtime, as it is at
// full scale.
const RowGroupSize = 1024

// Segment is one column's slice of a row group, with min/max metadata used
// for segment elimination.
type Segment struct {
	Values   []types.Value
	Min, Max types.Value
}

// ColumnStore is a columnstore index: per-column segments grouped into row
// groups. Batch-mode scans read whole segments and expose how many were
// processed — the counter the paper's batch-mode progress fraction (§4.7)
// is built on, mirroring sys.column_store_segments.
type ColumnStore struct {
	objectID uint32
	numRows  int64
	numCols  int
	groups   []rowGroup
}

type rowGroup struct {
	segs []Segment // one per column
	rows int
}

// BuildColumnStore builds a columnstore from row-major data. Every column
// of the table is stored (a full nonclustered columnstore index, as the
// paper's Fig. 18 physical design constructs on each table).
func BuildColumnStore(objectID uint32, rows []types.Row, numCols int) *ColumnStore {
	cs := &ColumnStore{objectID: objectID, numRows: int64(len(rows)), numCols: numCols}
	for start := 0; start < len(rows); start += RowGroupSize {
		end := start + RowGroupSize
		if end > len(rows) {
			end = len(rows)
		}
		g := rowGroup{rows: end - start, segs: make([]Segment, numCols)}
		for c := 0; c < numCols; c++ {
			seg := Segment{Values: make([]types.Value, 0, end-start)}
			for r := start; r < end; r++ {
				v := rows[r][c]
				seg.Values = append(seg.Values, v)
				if !v.IsNull() {
					if seg.Min.IsNull() || types.Compare(v, seg.Min) < 0 {
						seg.Min = v
					}
					if seg.Max.IsNull() || types.Compare(v, seg.Max) > 0 {
						seg.Max = v
					}
				}
			}
			g.segs[c] = seg
		}
		cs.groups = append(cs.groups, g)
	}
	return cs
}

// NumRows returns the stored row count.
func (cs *ColumnStore) NumRows() int64 { return cs.numRows }

// NumRowGroups returns the row-group count.
func (cs *ColumnStore) NumRowGroups() int { return len(cs.groups) }

// NumColumns returns the column count.
func (cs *ColumnStore) NumColumns() int { return cs.numCols }

// TotalSegments returns the total number of column segments for the given
// accessed-column count — the denominator of the §4.7 progress fraction
// (the analog of counting rows in sys.column_store_segments).
func (cs *ColumnStore) TotalSegments(accessedCols int) int64 {
	return int64(len(cs.groups)) * int64(accessedCols)
}

// RowGroupRows returns the number of rows in group g.
func (cs *ColumnStore) RowGroupRows(g int) int { return cs.groups[g].rows }

// PartitionGroups returns the row-group interval [lo, hi) assigned to
// partition part of parts: contiguous ranges exactly covering every group,
// the unit of work a range-partitioned parallel batch-mode scan claims.
func (cs *ColumnStore) PartitionGroups(part, parts int) (lo, hi int) {
	l, h := partPageRange(int64(len(cs.groups)), part, parts)
	return int(l), int(h)
}

// Segment returns column col's segment of row group g.
func (cs *ColumnStore) Segment(g, col int) *Segment { return &cs.groups[g].segs[col] }

// ReadRowGroup materializes the requested columns of row group g into
// row-major batch form, charging one page access per segment read (each
// segment is its own storage unit). Columns not requested are NULL in the
// output rows, preserving ordinals so expressions evaluate unchanged.
func (cs *ColumnStore) ReadRowGroup(g int, cols []int, bp *BufferPool, io *IOCounts) []types.Row {
	grp := &cs.groups[g]
	out := make([]types.Row, grp.rows)
	for i := range out {
		out[i] = make(types.Row, cs.numCols)
	}
	for _, c := range cols {
		bp.Read(PageID{cs.objectID, uint32(g*cs.numCols + c)}, io)
		seg := &grp.segs[c]
		for i, v := range seg.Values {
			out[i][c] = v
		}
	}
	return out
}
