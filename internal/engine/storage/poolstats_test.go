package storage

import (
	"strings"
	"testing"

	"lqs/internal/obs"
)

func TestPoolStatsCounters(t *testing.T) {
	bp := NewBufferPool(2)
	p := func(n uint32) PageID { return PageID{1, n} }
	var io IOCounts
	bp.Read(p(1), &io) // miss
	bp.Read(p(2), &io) // miss
	bp.Read(p(1), &io) // hit
	bp.Read(p(3), &io) // miss, evicts 2
	bp.Read(p(2), &io) // miss, evicts 1

	s := bp.StatsSnapshot()
	if s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("hits/misses = %d/%d, want 1/4", s.Hits, s.Misses)
	}
	if s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
	if s.Retries != 0 || s.Faults != 0 {
		t.Fatalf("fault traffic without an injector: retries=%d faults=%d", s.Retries, s.Faults)
	}
	if s.Resident != 2 || s.Capacity != 2 {
		t.Fatalf("resident/capacity = %d/%d, want 2/2", s.Resident, s.Capacity)
	}
	if got, want := s.HitRatio(), 0.2; got != want {
		t.Fatalf("hit ratio = %v, want %v", got, want)
	}
	// The legacy two-value accessor stays consistent.
	hits, misses := bp.Stats()
	if hits != s.Hits || misses != s.Misses {
		t.Fatalf("Stats() = %d/%d disagrees with snapshot %d/%d", hits, misses, s.Hits, s.Misses)
	}
}

func TestPoolStatsFaultAccounting(t *testing.T) {
	bp := NewBufferPool(0) // every read physical
	bp.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 3, TransientProb: 0.5, MaxRetries: 20}))
	var io IOCounts
	for i := uint32(0); i < 200; i++ {
		bp.Read(PageID{1, i}, &io)
	}
	s := bp.StatsSnapshot()
	if s.Retries == 0 {
		t.Fatal("no retries recorded at 50% transient probability over 200 reads")
	}
	if s.Retries != io.Retries {
		t.Fatalf("pool retries %d != per-read accumulation %d", s.Retries, io.Retries)
	}
	if s.Faults != io.Faults {
		t.Fatalf("pool faults %d != per-read accumulation %d", s.Faults, io.Faults)
	}
}

func TestPoolPublish(t *testing.T) {
	bp := NewBufferPool(1)
	var io IOCounts
	bp.Read(PageID{1, 1}, &io)
	bp.Read(PageID{1, 2}, &io) // evicts 1
	reg := obs.NewRegistry()
	bp.Publish(reg)
	if got := reg.Gauge("bufferpool/misses").Value(); got != 2 {
		t.Fatalf("published misses = %d, want 2", got)
	}
	if got := reg.Gauge("bufferpool/evictions").Value(); got != 1 {
		t.Fatalf("published evictions = %d, want 1", got)
	}
	if !strings.Contains(reg.Dump(), "bufferpool/hits") {
		t.Fatal("dump missing bufferpool gauges")
	}
	bp.Publish(nil) // nil registry must not panic
}
