// Package storage implements the engine's storage structures: heap tables
// in fixed-size pages, clustered and secondary B+tree indexes, columnstore
// row groups with per-column segments, and an LRU buffer pool that decides
// which page accesses are logical (cached) versus physical (simulated disk
// reads). The paper's §4.3 technique bases progress on logical I/O counts,
// and the cost model charges different virtual time for logical and
// physical reads, so the distinction matters for experiment fidelity.
package storage

import (
	"container/list"
	"sync"
)

// PageSize is the simulated page size in bytes, matching SQL Server's 8 KB
// pages. Row-per-page packing, I/O counting, and the cost model all derive
// from it.
const PageSize = 8192

// PageID identifies a page globally: an object (heap, index) plus a page
// ordinal within it.
type PageID struct {
	Object uint32
	Page   uint32
}

// IOCounts accumulates logical and physical page reads, plus the fault
// traffic the injection harness produced while serving them. Every logical
// read that misses the buffer pool is also a physical read; every retry is
// an additional physical read.
type IOCounts struct {
	Logical  int64
	Physical int64
	// Retries counts transient-fault retries absorbed by the storage
	// layer; the executor charges backoff per retry.
	Retries int64
	// Faults counts permanent page-read failures; the executor aborts the
	// query when it drains a non-zero count.
	Faults int64
}

// Add accumulates other into c.
func (c *IOCounts) Add(other IOCounts) {
	c.Logical += other.Logical
	c.Physical += other.Physical
	c.Retries += other.Retries
	c.Faults += other.Faults
}

// BufferPool is a simple LRU page cache. Access returns whether the page
// had to be read physically. A capacity of zero disables caching (every
// access is physical). The simulated disk cannot fail unless a
// FaultInjector is attached, in which case physical reads may suffer
// seeded transient or permanent faults, reported through IOCounts.
//
// The pool is the one piece of storage state shared by concurrently
// executing queries (registry-launched sessions against one Database), so
// its LRU bookkeeping is guarded by an internal latch. Fault sequences stay
// deterministic for a given seed as long as one query drives the pool at a
// time — the discrete-event engine's single-threaded-per-query model.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List               // front = most recent
	pages    map[PageID]*list.Element // value: PageID
	hits     int64
	misses   int64
	faults   *FaultInjector
}

// NewBufferPool returns a pool caching up to capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[PageID]*list.Element),
	}
}

// Access touches pid and reports whether the access was physical (a miss).
func (bp *BufferPool) Access(pid PageID) (physical bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.access(pid)
}

func (bp *BufferPool) access(pid PageID) (physical bool) {
	if bp.capacity <= 0 {
		bp.misses++
		return true
	}
	if el, ok := bp.pages[pid]; ok {
		bp.lru.MoveToFront(el)
		bp.hits++
		return false
	}
	bp.misses++
	el := bp.lru.PushFront(pid)
	bp.pages[pid] = el
	if bp.lru.Len() > bp.capacity {
		victim := bp.lru.Back()
		bp.lru.Remove(victim)
		delete(bp.pages, victim.Value.(PageID))
	}
	return true
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector;
// subsequent physical reads through Read consult it.
func (bp *BufferPool) SetFaultInjector(fi *FaultInjector) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.faults = fi
}

// FaultInjector returns the attached injector, or nil.
func (bp *BufferPool) FaultInjector() *FaultInjector {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.faults
}

// Read performs one page read, accumulating into io: a logical read
// always, a physical read on a pool miss, and — when a fault injector is
// attached — any transient-fault retries (each an extra physical read) or
// a permanent failure the read suffered. All storage cursors funnel page
// access through Read so fault injection covers every access path.
func (bp *BufferPool) Read(pid PageID, io *IOCounts) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	io.Logical++
	if !bp.access(pid) {
		return
	}
	io.Physical++
	if bp.faults == nil {
		return
	}
	retries, permanent := bp.faults.onPhysicalRead()
	io.Retries += retries
	io.Physical += retries // each retry re-issues the read
	if permanent {
		io.Faults++
	}
}

// Stats returns cumulative hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}

// Resident reports the number of cached pages (for tests).
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.lru.Len()
}

// Clear evicts everything, simulating a cold cache between workload runs
// so each query in an experiment starts from the same state.
func (bp *BufferPool) Clear() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lru.Init()
	bp.pages = make(map[PageID]*list.Element)
}
