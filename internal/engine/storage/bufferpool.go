// Package storage implements the engine's storage structures: heap tables
// in fixed-size pages, clustered and secondary B+tree indexes, columnstore
// row groups with per-column segments, and an LRU buffer pool that decides
// which page accesses are logical (cached) versus physical (simulated disk
// reads). The paper's §4.3 technique bases progress on logical I/O counts,
// and the cost model charges different virtual time for logical and
// physical reads, so the distinction matters for experiment fidelity.
package storage

import "container/list"

// PageSize is the simulated page size in bytes, matching SQL Server's 8 KB
// pages. Row-per-page packing, I/O counting, and the cost model all derive
// from it.
const PageSize = 8192

// PageID identifies a page globally: an object (heap, index) plus a page
// ordinal within it.
type PageID struct {
	Object uint32
	Page   uint32
}

// IOCounts accumulates logical and physical page reads. Every logical read
// that misses the buffer pool is also a physical read.
type IOCounts struct {
	Logical  int64
	Physical int64
}

// Add accumulates other into c.
func (c *IOCounts) Add(other IOCounts) {
	c.Logical += other.Logical
	c.Physical += other.Physical
}

// BufferPool is a simple LRU page cache. Access returns whether the page
// had to be read physically. A capacity of zero disables caching (every
// access is physical); this package never returns errors because the
// simulated disk cannot fail.
type BufferPool struct {
	capacity int
	lru      *list.List               // front = most recent
	pages    map[PageID]*list.Element // value: PageID
	hits     int64
	misses   int64
}

// NewBufferPool returns a pool caching up to capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[PageID]*list.Element),
	}
}

// Access touches pid and reports whether the access was physical (a miss).
func (bp *BufferPool) Access(pid PageID) (physical bool) {
	if bp.capacity <= 0 {
		bp.misses++
		return true
	}
	if el, ok := bp.pages[pid]; ok {
		bp.lru.MoveToFront(el)
		bp.hits++
		return false
	}
	bp.misses++
	el := bp.lru.PushFront(pid)
	bp.pages[pid] = el
	if bp.lru.Len() > bp.capacity {
		victim := bp.lru.Back()
		bp.lru.Remove(victim)
		delete(bp.pages, victim.Value.(PageID))
	}
	return true
}

// Stats returns cumulative hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) { return bp.hits, bp.misses }

// Resident reports the number of cached pages (for tests).
func (bp *BufferPool) Resident() int { return bp.lru.Len() }

// Clear evicts everything, simulating a cold cache between workload runs
// so each query in an experiment starts from the same state.
func (bp *BufferPool) Clear() {
	bp.lru.Init()
	bp.pages = make(map[PageID]*list.Element)
}
