// Package storage implements the engine's storage structures: heap tables
// in fixed-size pages, clustered and secondary B+tree indexes, columnstore
// row groups with per-column segments, and an LRU buffer pool that decides
// which page accesses are logical (cached) versus physical (simulated disk
// reads). The paper's §4.3 technique bases progress on logical I/O counts,
// and the cost model charges different virtual time for logical and
// physical reads, so the distinction matters for experiment fidelity.
package storage

import (
	"container/list"
	"sync"

	"lqs/internal/obs"
)

// PageSize is the simulated page size in bytes, matching SQL Server's 8 KB
// pages. Row-per-page packing, I/O counting, and the cost model all derive
// from it.
const PageSize = 8192

// PageID identifies a page globally: an object (heap, index) plus a page
// ordinal within it.
type PageID struct {
	Object uint32
	Page   uint32
}

// IOCounts accumulates logical and physical page reads, plus the fault
// traffic the injection harness produced while serving them. Every logical
// read that misses the buffer pool is also a physical read; every retry is
// an additional physical read.
type IOCounts struct {
	Logical  int64
	Physical int64
	// Retries counts transient-fault retries absorbed by the storage
	// layer; the executor charges backoff per retry.
	Retries int64
	// Faults counts permanent page-read failures; the executor aborts the
	// query when it drains a non-zero count.
	Faults int64
}

// Add accumulates other into c.
func (c *IOCounts) Add(other IOCounts) {
	c.Logical += other.Logical
	c.Physical += other.Physical
	c.Retries += other.Retries
	c.Faults += other.Faults
}

// BufferPool is a simple LRU page cache. Access returns whether the page
// had to be read physically. A capacity of zero disables caching (every
// access is physical). The simulated disk cannot fail unless a
// FaultInjector is attached, in which case physical reads may suffer
// seeded transient or permanent faults, reported through IOCounts.
//
// The pool is the one piece of storage state shared by concurrently
// executing queries (registry-launched sessions against one Database), so
// its LRU bookkeeping is guarded by an internal latch. Fault sequences stay
// deterministic for a given seed as long as one query drives the pool at a
// time — the discrete-event engine's single-threaded-per-query model.
type BufferPool struct {
	mu        sync.Mutex
	capacity  int
	lru       *list.List               // front = most recent
	pages     map[PageID]*list.Element // value: PageID
	hits      int64
	misses    int64
	evictions int64
	retries   int64
	pageFault int64
	faults    *FaultInjector
}

// NewBufferPool returns a pool caching up to capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[PageID]*list.Element),
	}
}

// Access touches pid and reports whether the access was physical (a miss).
func (bp *BufferPool) Access(pid PageID) (physical bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.access(pid)
}

func (bp *BufferPool) access(pid PageID) (physical bool) {
	if bp.capacity <= 0 {
		bp.misses++
		return true
	}
	if el, ok := bp.pages[pid]; ok {
		bp.lru.MoveToFront(el)
		bp.hits++
		return false
	}
	bp.misses++
	el := bp.lru.PushFront(pid)
	bp.pages[pid] = el
	if bp.lru.Len() > bp.capacity {
		victim := bp.lru.Back()
		bp.lru.Remove(victim)
		delete(bp.pages, victim.Value.(PageID))
		bp.evictions++
	}
	return true
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector;
// subsequent physical reads through Read consult it.
func (bp *BufferPool) SetFaultInjector(fi *FaultInjector) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.faults = fi
}

// FaultInjector returns the attached injector, or nil.
func (bp *BufferPool) FaultInjector() *FaultInjector {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.faults
}

// Read performs one page read, accumulating into io: a logical read
// always, a physical read on a pool miss, and — when a fault injector is
// attached — any transient-fault retries (each an extra physical read) or
// a permanent failure the read suffered. All storage cursors funnel page
// access through Read so fault injection covers every access path.
func (bp *BufferPool) Read(pid PageID, io *IOCounts) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	io.Logical++
	if !bp.access(pid) {
		return
	}
	io.Physical++
	if bp.faults == nil {
		return
	}
	retries, permanent := bp.faults.onPhysicalRead()
	io.Retries += retries
	io.Physical += retries // each retry re-issues the read
	bp.retries += retries
	if permanent {
		io.Faults++
		bp.pageFault++
	}
}

// PoolStats is a point-in-time snapshot of the pool's cumulative activity
// counters, the pool-level analogue of sys.dm_os_buffer_descriptors
// aggregates.
type PoolStats struct {
	Hits      int64 // logical reads served from cache
	Misses    int64 // logical reads that went physical
	Evictions int64 // LRU victims pushed out by capacity pressure
	Retries   int64 // transient-fault retries absorbed on physical reads
	Faults    int64 // permanent page-read failures surfaced to queries
	Resident  int64 // pages currently cached
	Capacity  int64 // configured cache capacity in pages
}

// HitRatio is hits / (hits+misses), or 0 before any access.
func (s PoolStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// StatsSnapshot returns the pool's cumulative counters.
func (bp *BufferPool) StatsSnapshot() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return PoolStats{
		Hits:      bp.hits,
		Misses:    bp.misses,
		Evictions: bp.evictions,
		Retries:   bp.retries,
		Faults:    bp.pageFault,
		Resident:  int64(bp.lru.Len()),
		Capacity:  int64(bp.capacity),
	}
}

// Stats returns cumulative hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}

// Publish copies the pool's cumulative counters into gauges on reg under
// the bufferpool/ namespace. Call it whenever a fresh reading is wanted
// (e.g. after a workload run); it is a point-in-time export, not a live
// binding. A nil registry is a no-op.
func (bp *BufferPool) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fi := bp.FaultInjector()
	s := bp.StatsSnapshot()
	reg.Gauge("bufferpool/hits").Set(s.Hits)
	reg.Gauge("bufferpool/misses").Set(s.Misses)
	reg.Gauge("bufferpool/evictions").Set(s.Evictions)
	reg.Gauge("bufferpool/retries").Set(s.Retries)
	reg.Gauge("bufferpool/faults").Set(s.Faults)
	reg.Gauge("bufferpool/resident_pages").Set(s.Resident)
	if fi == nil {
		return
	}
	// The injector's own view of fault activity, alongside the pool's:
	// arbitrated reads, reads that hit a transient fault, total retry
	// attempts, and permanent failures.
	fs := fi.Stats()
	reg.Gauge("storage/fault_reads").Set(fs.Reads)
	reg.Gauge("storage/fault_transients").Set(fs.Transients)
	reg.Gauge("storage/fault_retries").Set(fs.Retries)
	reg.Gauge("storage/fault_permanents").Set(fs.Permanents)
}

// Capacity reports the configured page capacity.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Resident reports the number of cached pages (for tests).
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.lru.Len()
}

// Clear evicts everything, simulating a cold cache between workload runs
// so each query in an experiment starts from the same state.
func (bp *BufferPool) Clear() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lru.Init()
	bp.pages = make(map[PageID]*list.Element)
}
