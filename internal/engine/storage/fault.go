// Fault injection: a deterministic, seeded harness that makes the
// simulated disk fail. Every physical page read consults the injector and
// may suffer a transient fault — retried with bounded attempts, each retry
// re-issuing the read and costing backoff on the virtual clock — or a
// permanent fault, which aborts the query with a typed I/O error at the
// execution layer. Because the injector draws from its own seeded RNG and
// the engine is a single-threaded discrete-event simulation per query,
// runs with the same seed produce identical fault sequences, retry counts,
// and virtual-time traces.
package storage

import "lqs/internal/sim"

// DefaultMaxRetries is the retry budget for a transient page-read fault
// when FaultConfig.MaxRetries is zero.
const DefaultMaxRetries = 3

// FaultConfig parameterizes the injector. Probabilities are per physical
// page read; logical reads served from the buffer pool never fault.
type FaultConfig struct {
	// Seed seeds the injector's private RNG; same seed, same fault
	// sequence.
	Seed uint64
	// TransientProb is the probability a physical read hits a transient
	// fault. Each retry re-rolls: with TransientProb = 1 every retry fails
	// and the read escalates to a permanent fault after MaxRetries.
	TransientProb float64
	// PermanentProb is the probability a physical read fails outright
	// (media error), with no retry.
	PermanentProb float64
	// MaxRetries bounds retries of a transient fault before it escalates
	// to permanent; 0 means DefaultMaxRetries.
	MaxRetries int
}

// FaultStats counts what the injector has done.
type FaultStats struct {
	// Reads is the number of physical reads the injector arbitrated.
	Reads int64
	// Transients is the number of reads that hit at least one transient
	// fault.
	Transients int64
	// Retries is the total retry attempts issued (each also a physical
	// read and a backoff charge).
	Retries int64
	// Permanents is the number of unrecoverable failures: hard media
	// errors plus transient faults that exhausted their retry budget.
	Permanents int64
}

// FaultInjector injects seeded page-read faults into a buffer pool. It is
// not safe for concurrent use; like the clock, it belongs to one query's
// single-threaded execution (attach one pool+injector per session, as the
// examples and workloads do).
type FaultInjector struct {
	cfg   FaultConfig
	rng   *sim.RNG
	stats FaultStats
}

// NewFaultInjector returns an injector for the given configuration.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
}

// Stats returns cumulative fault statistics.
func (fi *FaultInjector) Stats() FaultStats { return fi.stats }

// maxRetries resolves the configured retry budget.
func (fi *FaultInjector) maxRetries() int64 {
	if fi.cfg.MaxRetries > 0 {
		return int64(fi.cfg.MaxRetries)
	}
	return DefaultMaxRetries
}

// onPhysicalRead arbitrates the fate of one physical page read: how many
// transient-fault retries it absorbed, and whether it ultimately failed
// permanently (hard error, or retries exhausted).
func (fi *FaultInjector) onPhysicalRead() (retries int64, permanent bool) {
	fi.stats.Reads++
	if fi.cfg.PermanentProb > 0 && fi.rng.Float64() < fi.cfg.PermanentProb {
		fi.stats.Permanents++
		return 0, true
	}
	if fi.cfg.TransientProb <= 0 || fi.rng.Float64() >= fi.cfg.TransientProb {
		return 0, false
	}
	fi.stats.Transients++
	max := fi.maxRetries()
	for retries < max {
		retries++
		fi.stats.Retries++
		if fi.rng.Float64() >= fi.cfg.TransientProb {
			return retries, false // retry succeeded
		}
	}
	// Retry budget exhausted: escalate to a permanent failure.
	fi.stats.Permanents++
	return retries, true
}
