package storage

import "lqs/internal/engine/types"

// Heap is an unordered row store packed into fixed-size pages. Row IDs
// (RIDs) are simply row ordinals; pages are derived from the measured
// average row width at load time, so wider tables occupy more pages and
// cost proportionally more I/O to scan — the property §4.3's logical-I/O
// progress fraction depends on.
type Heap struct {
	objectID    uint32
	rows        []types.Row
	rowsPerPage int
}

// NewHeap creates an empty heap with the given object id.
func NewHeap(objectID uint32) *Heap {
	return &Heap{objectID: objectID, rowsPerPage: 1}
}

// Append adds a row. The caller transfers ownership of the row.
func (h *Heap) Append(row types.Row) {
	h.rows = append(h.rows, row)
}

// Seal finalizes page packing from the average row width. Call once after
// loading; scans before Seal see one row per page.
func (h *Heap) Seal() {
	if len(h.rows) == 0 {
		return
	}
	total := 0
	for _, r := range h.rows {
		total += r.Width()
	}
	avg := total / len(h.rows)
	if avg < 1 {
		avg = 1
	}
	h.rowsPerPage = PageSize / avg
	if h.rowsPerPage < 1 {
		h.rowsPerPage = 1
	}
}

// NumRows returns the row count.
func (h *Heap) NumRows() int64 { return int64(len(h.rows)) }

// NumPages returns the page count.
func (h *Heap) NumPages() int64 {
	if len(h.rows) == 0 {
		return 0
	}
	return int64((len(h.rows) + h.rowsPerPage - 1) / h.rowsPerPage)
}

// RowsPerPage reports the packing factor (for tests and the cost model).
func (h *Heap) RowsPerPage() int { return h.rowsPerPage }

// Get fetches the row with the given RID, charging one page access against
// the pool into io. It is used by RID Lookup operators. It panics on an
// out-of-range RID: RIDs come from our own secondary indexes, so a bad one
// is an engine bug, not user error.
func (h *Heap) Get(rid int64, bp *BufferPool, io *IOCounts) types.Row {
	page := uint32(int(rid) / h.rowsPerPage)
	bp.Read(PageID{h.objectID, page}, io)
	return h.rows[rid]
}

// RowNoIO fetches a row without charging any I/O. The executor uses it to
// materialize covered columns for covering secondary-index access paths,
// where the engine's index already holds the data and no heap page is
// actually touched.
func (h *Heap) RowNoIO(rid int64) types.Row { return h.rows[rid] }

// Cursor returns a sequential scan cursor over the heap.
func (h *Heap) Cursor(bp *BufferPool) *HeapCursor {
	return &HeapCursor{h: h, bp: bp, lastPage: -1, end: len(h.rows)}
}

// partPageRange returns the page interval [lo, hi) assigned to partition
// part of parts. Ranges are contiguous and exactly cover [0, NumPages), so
// per-partition page counts always sum to the whole object's — the
// property that keeps aggregated per-thread PagesTotal identical to a
// serial scan's.
func partPageRange(pages int64, part, parts int) (lo, hi int64) {
	if parts <= 0 {
		parts = 1
	}
	lo = pages * int64(part) / int64(parts)
	hi = pages * int64(part+1) / int64(parts)
	return lo, hi
}

// PartitionPages returns how many pages partition part of parts covers.
func (h *Heap) PartitionPages(part, parts int) int64 {
	lo, hi := partPageRange(h.NumPages(), part, parts)
	return hi - lo
}

// PartitionCursor returns a cursor over the page range assigned to
// partition part of parts: the range-partitioned parallel scan. Partitions
// are contiguous, so concatenating partition outputs in partition order
// reproduces the serial scan order exactly.
func (h *Heap) PartitionCursor(bp *BufferPool, part, parts int) *HeapCursor {
	pLo, pHi := partPageRange(h.NumPages(), part, parts)
	start := int(pLo) * h.rowsPerPage
	end := int(pHi) * h.rowsPerPage
	if end > len(h.rows) {
		end = len(h.rows)
	}
	if start > end {
		start = end
	}
	return &HeapCursor{h: h, bp: bp, lastPage: -1, pos: start, start: start, end: end}
}

// HeapCursor iterates the heap in storage order, accumulating I/O counts
// as it crosses page boundaries. Operators drain the counts after each
// Next call and charge the virtual clock accordingly. A partition cursor
// restricts iteration to [start, end).
type HeapCursor struct {
	h        *Heap
	bp       *BufferPool
	pos      int
	start    int
	end      int
	lastPage int
	io       IOCounts
}

// Next returns the next row and its RID; ok=false at end of heap.
func (c *HeapCursor) Next() (row types.Row, rid int64, ok bool) {
	if c.pos >= c.end {
		return nil, 0, false
	}
	page := c.pos / c.h.rowsPerPage
	if page != c.lastPage {
		c.lastPage = page
		c.bp.Read(PageID{c.h.objectID, uint32(page)}, &c.io)
	}
	row = c.h.rows[c.pos]
	rid = int64(c.pos)
	c.pos++
	return row, rid, true
}

// NextPageRows returns all unread rows of the next page as one run,
// charging the page read into the cursor exactly as Next would when
// crossing onto it. ok=false at end of range. The vectorized scan iterates
// page runs to avoid per-row cursor calls; the I/O charge sequence is
// identical to per-row iteration, which charges a page when its first row
// is pulled.
func (c *HeapCursor) NextPageRows() ([]types.Row, bool) {
	if c.pos >= c.end {
		return nil, false
	}
	page := c.pos / c.h.rowsPerPage
	if page != c.lastPage {
		c.lastPage = page
		c.bp.Read(PageID{c.h.objectID, uint32(page)}, &c.io)
	}
	hi := (page + 1) * c.h.rowsPerPage
	if hi > c.end {
		hi = c.end
	}
	rows := c.h.rows[c.pos:hi]
	c.pos = hi
	return rows, true
}

// DrainIO returns and resets the I/O accumulated since the last drain.
func (c *HeapCursor) DrainIO() IOCounts {
	out := c.io
	c.io = IOCounts{}
	return out
}

// Reset rewinds the cursor to the beginning of its range (used by
// rescans).
func (c *HeapCursor) Reset() {
	c.pos = c.start
	c.lastPage = -1
}
