package storage

import (
	"sort"

	"lqs/internal/engine/types"
)

// IndexEntry is one B+tree leaf entry: the key columns plus either a RID
// pointing back into the heap (secondary index) or the full row (clustered
// index leaf).
type IndexEntry struct {
	Key []types.Value
	RID int64
	Row types.Row // non-nil only for clustered indexes
}

// BTree is a read-optimized B+tree built in bulk after data load. Leaves
// are stored as packed pages; upper levels are not materialized — instead
// the tree charges the access path (root..leaf) against synthetic internal
// page IDs so the buffer pool caches hot upper levels exactly as a real
// tree would. The engine workloads never mutate indexes mid-query, so an
// immutable bulk-built tree is behaviorally equivalent and much simpler.
type BTree struct {
	objectID  uint32
	leaves    [][]IndexEntry
	firstKeys [][]types.Value // first key of each leaf, for descent
	levels    []int           // page counts per internal level, bottom-up
	fanout    int
	n         int
}

// compareKeys orders composite keys; a shorter key is a prefix probe and
// compares equal to any key it prefixes.
func compareKeys(a, b []types.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// BuildBTree bulk-builds a tree from entries (sorted in place by key). The
// leaf packing factor derives from the average entry width so clustered
// indexes (full rows) occupy proportionally more pages than narrow
// secondary indexes.
func BuildBTree(objectID uint32, entries []IndexEntry) *BTree {
	sort.SliceStable(entries, func(i, j int) bool {
		if c := compareKeys(entries[i].Key, entries[j].Key); c != 0 {
			return c < 0
		}
		return entries[i].RID < entries[j].RID
	})
	t := &BTree{objectID: objectID, fanout: 256, n: len(entries)}
	if len(entries) == 0 {
		return t
	}
	width := 0
	for _, e := range entries {
		w := 8 // RID
		for _, k := range e.Key {
			w += valueWidth(k)
		}
		if e.Row != nil {
			w += e.Row.Width()
		}
		width += w
	}
	avg := width / len(entries)
	if avg < 1 {
		avg = 1
	}
	perLeaf := PageSize / avg
	if perLeaf < 2 {
		perLeaf = 2
	}
	for i := 0; i < len(entries); i += perLeaf {
		j := i + perLeaf
		if j > len(entries) {
			j = len(entries)
		}
		t.leaves = append(t.leaves, entries[i:j])
		t.firstKeys = append(t.firstKeys, entries[i].Key)
	}
	// Internal level page counts, bottom-up, until a single root.
	for n := len(t.leaves); n > 1; {
		n = (n + t.fanout - 1) / t.fanout
		t.levels = append(t.levels, n)
	}
	return t
}

func valueWidth(v types.Value) int {
	switch v.K {
	case types.KindNull:
		return 1
	case types.KindString:
		return 2 + len(v.S)
	default:
		return 8
	}
}

// NumEntries returns the total entry count.
func (t *BTree) NumEntries() int64 { return int64(t.n) }

// NumLeafPages returns the leaf page count.
func (t *BTree) NumLeafPages() int64 { return int64(len(t.leaves)) }

// Height returns the number of levels including the leaf level.
func (t *BTree) Height() int { return len(t.levels) + 1 }

// chargeDescent records the root-to-leaf page accesses for a traversal
// landing on leaf li. Internal pages get IDs above the leaf range so the
// pool distinguishes them.
func (t *BTree) chargeDescent(li int, bp *BufferPool, io *IOCounts) {
	base := uint32(len(t.leaves))
	idx := li
	for _, levelPages := range t.levels {
		idx /= t.fanout
		page := base + uint32(idx)
		bp.Read(PageID{t.objectID, page}, io)
		base += uint32(levelPages)
	}
}

// findLeaf returns the index of the first leaf whose range may contain a
// key >= probe (or > probe when !inclusive).
func (t *BTree) findLeaf(probe []types.Value, inclusive bool) int {
	// Find the first leaf whose firstKey is strictly greater, then step
	// back one: that leaf covers the probe.
	li := sort.Search(len(t.firstKeys), func(i int) bool {
		c := compareKeys(t.firstKeys[i], probe)
		if inclusive {
			return c >= 0
		}
		return c > 0
	})
	if li > 0 {
		li--
	}
	return li
}

// Seek positions a cursor at the first entry with key >= lo (or > lo when
// loInc is false). A nil lo starts at the first entry. The descent I/O is
// charged into the cursor, drained by the caller.
func (t *BTree) Seek(lo []types.Value, loInc bool, bp *BufferPool) *BTreeCursor {
	c := &BTreeCursor{t: t, bp: bp, lastLeaf: -1}
	if t.n == 0 {
		c.leaf = len(t.leaves)
		return c
	}
	if lo == nil {
		t.chargeDescent(0, bp, &c.io)
		return c
	}
	li := t.findLeaf(lo, loInc)
	t.chargeDescent(li, bp, &c.io)
	c.leaf = li
	// Binary search within the leaf for the first qualifying entry.
	leaf := t.leaves[li]
	c.pos = sort.Search(len(leaf), func(i int) bool {
		cc := compareKeys(leaf[i].Key, lo)
		if loInc {
			return cc >= 0
		}
		return cc > 0
	})
	return c
}

// ScanAll returns a cursor over every entry in key order without charging
// a descent (leaf-level scan, as an ordered Index Scan would do).
func (t *BTree) ScanAll(bp *BufferPool) *BTreeCursor {
	return &BTreeCursor{t: t, bp: bp, lastLeaf: -1}
}

// PartitionLeafPages returns how many leaf pages partition part of parts
// covers.
func (t *BTree) PartitionLeafPages(part, parts int) int64 {
	lo, hi := partPageRange(t.NumLeafPages(), part, parts)
	return hi - lo
}

// ScanPartition returns a cursor over the contiguous leaf-page range
// assigned to partition part of parts: the range-partitioned parallel
// ordered scan. Concatenating partition outputs in partition order
// reproduces the full key order.
func (t *BTree) ScanPartition(bp *BufferPool, part, parts int) *BTreeCursor {
	lo, hi := partPageRange(t.NumLeafPages(), part, parts)
	return &BTreeCursor{t: t, bp: bp, lastLeaf: -1, leaf: int(lo), leafEnd: int(hi), ranged: true}
}

// BTreeCursor iterates leaf entries in key order, accumulating page I/O.
// A ranged cursor (ScanPartition) stops at leafEnd.
type BTreeCursor struct {
	t        *BTree
	bp       *BufferPool
	leaf     int
	pos      int
	lastLeaf int
	leafEnd  int
	ranged   bool
	io       IOCounts

	hi    []types.Value
	hiInc bool
	bound bool
}

// SetUpper bounds the cursor: iteration stops at the first key above hi
// (or at hi when hiInc is false).
func (c *BTreeCursor) SetUpper(hi []types.Value, hiInc bool) {
	c.hi = hi
	c.hiInc = hiInc
	c.bound = hi != nil
}

// Next returns the next entry; ok=false at the end of the range.
func (c *BTreeCursor) Next() (e IndexEntry, ok bool) {
	for {
		if c.leaf >= len(c.t.leaves) || (c.ranged && c.leaf >= c.leafEnd) {
			return IndexEntry{}, false
		}
		leaf := c.t.leaves[c.leaf]
		if c.pos >= len(leaf) {
			c.leaf++
			c.pos = 0
			continue
		}
		if c.leaf != c.lastLeaf {
			c.lastLeaf = c.leaf
			c.bp.Read(PageID{c.t.objectID, uint32(c.leaf)}, &c.io)
		}
		e = leaf[c.pos]
		if c.bound {
			cc := compareKeys(e.Key, c.hi)
			if cc > 0 || (cc == 0 && !c.hiInc) {
				return IndexEntry{}, false
			}
		}
		c.pos++
		return e, true
	}
}

// DrainIO returns and resets accumulated I/O.
func (c *BTreeCursor) DrainIO() IOCounts {
	out := c.io
	c.io = IOCounts{}
	return out
}
