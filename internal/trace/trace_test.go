package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lqs/internal/sim"
)

func TestRecorderOrderAndStamping(t *testing.T) {
	clock := sim.NewClock()
	r := NewRecorder(clock, 8)
	r.Record(KindOpen, 0, "Table Scan", 0)
	clock.Advance(100)
	r.Record(KindClose, 0, "", 42)
	evs := r.Events()
	if len(evs) != 2 || r.Len() != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != KindOpen || evs[0].At != 0 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Kind != KindClose || evs[1].At != 100 || evs[1].Rows != 42 {
		t.Fatalf("second event = %+v", evs[1])
	}
}

func TestRecorderRingDropsOldest(t *testing.T) {
	clock := sim.NewClock()
	r := NewRecorder(clock, 4)
	for i := int64(0); i < 10; i++ {
		clock.Advance(1)
		r.Record(KindRowBatch, 1, "", i)
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Rows != want {
			t.Fatalf("event %d rows = %d, want %d (oldest must drop first)", i, ev.Rows, want)
		}
	}
}

func TestRowBatchGranularity(t *testing.T) {
	clock := sim.NewClock()
	r := NewRecorder(clock, 64)
	r.SetBatchEvery(10)
	for rows := int64(1); rows <= 35; rows++ {
		r.RowBatch(3, rows)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d batch events, want 3 (at 10, 20, 30)", len(evs))
	}
	for i, want := range []int64{10, 20, 30} {
		if evs[i].Rows != want {
			t.Fatalf("batch %d at rows=%d, want %d", i, evs[i].Rows, want)
		}
	}
	r.SetBatchEvery(0)
	r.RowBatch(3, 40)
	if r.Len() != 3 {
		t.Fatal("disabled batch granularity still recorded")
	}
}

func TestChromeExportValidatesAndIsDeterministic(t *testing.T) {
	build := func() []byte {
		clock := sim.NewClock()
		r := NewRecorder(clock, 128)
		r.Record(KindState, -1, "RUNNING", 0)
		r.Record(KindOpen, 0, "Sort", 0)
		r.Record(KindOpen, 1, "Table Scan", 0)
		clock.Advance(1500)
		r.RowBatch(1, 256)
		r.Record(KindMemDegrade, 0, "sort spill", 0)
		r.Record(KindSpillBegin, 0, "external merge", 512)
		clock.Advance(300)
		r.Record(KindSpillEnd, 0, "", 512)
		r.Record(KindIORetry, 1, "", 2)
		r.Record(KindClose, 1, "", 300)
		clock.Advance(200)
		r.Record(KindClose, 0, "", 300)
		r.Record(KindState, -1, "SUCCEEDED", 0)
		out, err := Chrome(r, "q-test", 1)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("chrome export is not byte-deterministic")
	}
	if err := ValidateChrome(a); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	for _, want := range []string{
		`"process_name"`, `"thread_name"`, `"[1] Table Scan"`,
		`"state: RUNNING"`, `"memory-grant degrade"`, `"spill: external merge"`,
		`"rows [1] Table Scan"`, `"io-retry"`,
	} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("export missing %s:\n%s", want, a)
		}
	}
	// Timestamps are virtual nanoseconds exported as microseconds.
	if !strings.Contains(string(a), `"ts": 1.5`) {
		t.Fatalf("expected ts 1.5us in export:\n%s", a)
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":    `{"traceEvents": [`,
		"empty":       `{"traceEvents": []}`,
		"no name":     `{"traceEvents": [{"ph":"B","ts":0,"pid":1,"tid":1}]}`,
		"bad phase":   `{"traceEvents": [{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]}`,
		"no ts":       `{"traceEvents": [{"name":"x","ph":"B","pid":1,"tid":1}]}`,
		"negative ts": `{"traceEvents": [{"name":"x","ph":"B","ts":-1,"pid":1,"tid":1}]}`,
		"E without B": `{"traceEvents": [{"name":"x","ph":"E","ts":0,"pid":1,"tid":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	ok := `{"traceEvents": [{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`
	if err := ValidateChrome([]byte(ok)); err != nil {
		t.Errorf("unclosed B must be tolerated (failed queries): %v", err)
	}
}

func TestChromeUnmarshalsAsObjectFormat(t *testing.T) {
	clock := sim.NewClock()
	r := NewRecorder(clock, 8)
	r.Record(KindOpen, 0, "Filter", 0)
	out, err := Chrome(r, "q", 1)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("missing traceEvents key")
	}
	if _, ok := doc["displayTimeUnit"]; !ok {
		t.Fatal("missing displayTimeUnit key")
	}
}
