// Package trace is the engine's structured event-trace layer: a bounded
// per-query ring buffer of operator lifecycle events stamped with virtual
// time, plus an exporter to Chrome trace-event JSON (chrome.go) so a run
// opens directly in Perfetto or chrome://tracing with one track per
// operator.
//
// The recorder is deliberately dumb and allocation-free on the hot path:
// operators record fixed-size Event values, and all timestamps come from
// the virtual clock, so two runs of the same seeded query produce
// identical event streams — the experiment harness's byte-identical
// parallel-determinism guarantee extends to traces. A Recorder is owned by
// one executing query and is not safe for concurrent use; concurrent
// observers read events only after the query reaches a terminal state.
package trace

import "lqs/internal/sim"

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	// KindOpen marks an operator's first Open (rebinds do not re-emit).
	KindOpen Kind = iota
	// KindClose marks an operator's Close; Rows carries its final count.
	KindClose
	// KindRowBatch is emitted every BatchEvery output rows; Rows carries
	// the cumulative count.
	KindRowBatch
	// KindSpillBegin/KindSpillEnd bracket a blocking operator's spill work
	// (external sort merge); Rows carries the internal row total.
	KindSpillBegin
	KindSpillEnd
	// KindMemDegrade marks a spillable operator exceeding the memory grant
	// and degrading to simulated disk.
	KindMemDegrade
	// KindIORetry marks transient page-read faults absorbed with retries;
	// Rows carries the retry count of the charge.
	KindIORetry
	// KindState marks a query lifecycle transition (RUNNING, SUCCEEDED,
	// CANCELLED, FAILED); NodeID is -1.
	KindState
	// KindChaos marks an injected chaos fault firing at an operator: a
	// slow-operator stall ("stall", Rows carries the stall nanoseconds), a
	// spill-write failure ("spill-fail"), a memory-grant denial
	// ("mem-deny"), or a worker crash ("worker-crash").
	KindChaos
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindOpen:
		return "open"
	case KindClose:
		return "close"
	case KindRowBatch:
		return "rows"
	case KindSpillBegin:
		return "spill-begin"
	case KindSpillEnd:
		return "spill-end"
	case KindMemDegrade:
		return "mem-degrade"
	case KindIORetry:
		return "io-retry"
	case KindState:
		return "state"
	case KindChaos:
		return "chaos"
	}
	return "?"
}

// Event is one trace record. Name is the operator's display name on
// KindOpen, the state name on KindState, and a free-form detail otherwise;
// Rows is kind-specific (see the Kind constants).
type Event struct {
	Kind   Kind
	At     sim.Duration
	NodeID int
	// Thread is the DMV thread ordinal that produced the event: 0 for the
	// coordinator, w+1 for parallel worker w. Worker events are recorded on
	// private per-worker recorders and merged into the query's recorder
	// (tagged with their thread) when the gather shuts down.
	Thread int
	Name   string
	Rows   int64
}

// DefaultBatchEvery is the default row-batch granularity: one KindRowBatch
// event per this many output rows keeps the ring small while still drawing
// a useful rows-over-time counter track.
const DefaultBatchEvery = 256

// DefaultCapacity is the default ring size. At the default batch
// granularity this holds the full event stream of any workload query in
// this repo; when it overflows, the oldest events are dropped
// (flight-recorder semantics) and Dropped counts them.
const DefaultCapacity = 1 << 14

// Recorder is a bounded ring buffer of events for one query.
type Recorder struct {
	clock      *sim.Clock
	batchEvery int64
	buf        []Event
	head       int // index of oldest event
	n          int // live events
	dropped    int64
}

// NewRecorder returns a recorder of the given capacity stamping events from
// clock. A non-positive capacity selects DefaultCapacity.
func NewRecorder(clock *sim.Clock, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{clock: clock, batchEvery: DefaultBatchEvery, buf: make([]Event, 0, capacity)}
}

// SetBatchEvery sets the row-batch granularity (rows per KindRowBatch
// event); non-positive values disable batch events.
func (r *Recorder) SetBatchEvery(n int64) { r.batchEvery = n }

// Record appends an event stamped with the current virtual time, dropping
// the oldest event when the ring is full.
func (r *Recorder) Record(k Kind, nodeID int, name string, rows int64) {
	ev := Event{Kind: k, At: r.clock.Now(), NodeID: nodeID, Name: name, Rows: rows}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		r.n++
		return
	}
	// Ring is full: overwrite the oldest slot.
	r.buf[r.head] = ev
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.dropped++
}

// RowBatch records a KindRowBatch event when rows crosses a BatchEvery
// boundary. The caller invokes it once per emitted row; the common case is
// one modulo and a compare.
func (r *Recorder) RowBatch(nodeID int, rows int64) {
	if r.batchEvery <= 0 || rows%r.batchEvery != 0 {
		return
	}
	r.Record(KindRowBatch, nodeID, "", rows)
}

// Ingest appends pre-stamped events — typically a parallel worker's merged
// stream — preserving their At and Thread fields, with the same
// flight-recorder overwrite semantics as Record. Callers are responsible
// for ordering; the Chrome exporter keys tracks on (thread, node), so
// per-thread streams only need to be monotone within themselves.
func (r *Recorder) Ingest(evs []Event) {
	for _, ev := range evs {
		if len(r.buf) < cap(r.buf) {
			r.buf = append(r.buf, ev)
			r.n++
			continue
		}
		r.buf[r.head] = ev
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
		r.dropped++
	}
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return r.n }

// Dropped returns how many events were evicted by ring overflow.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.n)
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}
