package trace

import (
	"encoding/json"
	"fmt"
)

// The Chrome trace-event JSON export: one process per query, one thread
// (track) per operator, duration events for operator lifetimes and spill
// phases, a counter series per operator for rows-over-time, and instant
// events for degradations and lifecycle transitions. Timestamps are the
// virtual-clock nanoseconds converted to the format's microseconds, so the
// Perfetto timeline reads directly in virtual time.
//
// Track layout:
//
//	tid 0                        query lifecycle (state transitions)
//	tid nodeID+1                 coordinator operator tracks, "[id] Physical Op"
//	tid thread*1000 + nodeID+1   parallel-worker instances of an operator,
//	                             "[id] Physical Op (worker w)" — one track
//	                             per (node, thread), so a gather zone shows
//	                             its workers side by side on the timeline
//
// Events marshal through fixed-field structs (never maps), so the same
// event stream always encodes to the same bytes — the determinism tests
// compare exports from serial and parallel runs directly.

// chromeArgs is the fixed-shape args payload.
type chromeArgs struct {
	Name   string `json:"name,omitempty"`   // metadata events
	Rows   *int64 `json:"rows,omitempty"`   // counters, close, spills
	Detail string `json:"detail,omitempty"` // instants
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"` // microseconds
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"` // instant scope
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeDoc is the JSON-object export format ({"traceEvents": [...]}),
// which both chrome://tracing and Perfetto accept.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// Chrome exports the recorder's events as Chrome trace-event JSON. The
// queryName labels the process; pid distinguishes queries when several
// exports are merged into one file.
func Chrome(r *Recorder, queryName string, pid int) ([]byte, error) {
	events := r.Events()
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+8)}

	add := func(ev chromeEvent) {
		ev.Pid = pid
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	// tid maps an event to its track: worker events (Thread > 0) get their
	// own track per (thread, node) so parallel zones render one lane per
	// worker instance of each operator.
	tid := func(ev Event) int { return ev.Thread*1000 + ev.NodeID + 1 }

	// Process metadata, then one thread_name per operator track discovered
	// from its Open event (held in event order, so metadata order is
	// deterministic too).
	add(chromeEvent{Name: "process_name", Ph: "M", Args: &chromeArgs{Name: queryName}})
	add(chromeEvent{Name: "thread_name", Ph: "M", Tid: 0, Args: &chromeArgs{Name: "query lifecycle"}})
	opName := make(map[int]string)
	named := make(map[int]bool)
	for _, ev := range events {
		if ev.Kind == KindOpen {
			if _, ok := opName[ev.NodeID]; !ok {
				opName[ev.NodeID] = ev.Name
			}
			if tr := tid(ev); !named[tr] {
				named[tr] = true
				label := fmt.Sprintf("[%d] %s", ev.NodeID, ev.Name)
				if ev.Thread > 0 {
					label = fmt.Sprintf("[%d] %s (worker %d)", ev.NodeID, ev.Name, ev.Thread-1)
				}
				add(chromeEvent{Name: "thread_name", Ph: "M", Tid: tr, Args: &chromeArgs{Name: label}})
			}
		}
	}
	name := func(id int) string {
		if n, ok := opName[id]; ok {
			return n
		}
		return fmt.Sprintf("node %d", id)
	}

	for _, ev := range events {
		ts := usec(int64(ev.At))
		switch ev.Kind {
		case KindOpen:
			add(chromeEvent{Name: ev.Name, Ph: "B", Ts: ts, Tid: tid(ev)})
		case KindClose:
			rows := ev.Rows
			add(chromeEvent{Name: name(ev.NodeID), Ph: "E", Ts: ts, Tid: tid(ev), Args: &chromeArgs{Rows: &rows}})
		case KindRowBatch:
			rows := ev.Rows
			add(chromeEvent{
				Name: fmt.Sprintf("rows [%d] %s", ev.NodeID, name(ev.NodeID)),
				Ph:   "C", Ts: ts, Tid: tid(ev), Args: &chromeArgs{Rows: &rows},
			})
		case KindSpillBegin:
			rows := ev.Rows
			add(chromeEvent{Name: "spill: " + ev.Name, Ph: "B", Ts: ts, Tid: tid(ev), Args: &chromeArgs{Rows: &rows}})
		case KindSpillEnd:
			add(chromeEvent{Name: "spill", Ph: "E", Ts: ts, Tid: tid(ev)})
		case KindMemDegrade:
			add(chromeEvent{Name: "memory-grant degrade", Ph: "i", Ts: ts, Tid: tid(ev), S: "t", Args: &chromeArgs{Detail: ev.Name}})
		case KindIORetry:
			rows := ev.Rows
			add(chromeEvent{Name: "io-retry", Ph: "i", Ts: ts, Tid: tid(ev), S: "t", Args: &chromeArgs{Rows: &rows}})
		case KindState:
			add(chromeEvent{Name: "state: " + ev.Name, Ph: "i", Ts: ts, Tid: 0, S: "p"})
		case KindChaos:
			rows := ev.Rows
			add(chromeEvent{Name: "chaos: " + ev.Name, Ph: "i", Ts: ts, Tid: tid(ev), S: "t", Args: &chromeArgs{Rows: &rows}})
		}
	}
	return json.MarshalIndent(&doc, "", " ")
}

// ValidateChrome checks data against the trace-event schema contract the
// exporters above rely on: a traceEvents array whose entries carry a name,
// a known phase, non-negative timestamps, and per-track B/E nesting that
// never underflows. A query that terminated abnormally legitimately leaves
// B events unclosed, so unclosed stacks at end-of-trace are not an error.
func ValidateChrome(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	valid := map[string]bool{"B": true, "E": true, "X": true, "i": true, "I": true, "C": true, "M": true, "b": true, "e": true, "n": true}
	type track struct{ pid, tid int }
	depth := make(map[track]int)
	for i, ev := range doc.TraceEvents {
		switch {
		case ev.Name == nil || *ev.Name == "":
			return fmt.Errorf("trace: event %d has no name", i)
		case ev.Ph == nil || !valid[*ev.Ph]:
			return fmt.Errorf("trace: event %d (%s) has invalid phase", i, *ev.Name)
		case *ev.Ph != "M" && ev.Ts == nil:
			return fmt.Errorf("trace: event %d (%s) has no ts", i, *ev.Name)
		case ev.Ts != nil && *ev.Ts < 0:
			return fmt.Errorf("trace: event %d (%s) has negative ts", i, *ev.Name)
		}
		tr := track{ev.Pid, ev.Tid}
		switch *ev.Ph {
		case "B":
			depth[tr]++
		case "E":
			depth[tr]--
			if depth[tr] < 0 {
				return fmt.Errorf("trace: event %d (%s) closes more spans than opened on pid=%d tid=%d", i, *ev.Name, ev.Pid, ev.Tid)
			}
		}
	}
	return nil
}
