package opt

import (
	"math"

	"lqs/internal/engine/expr"
	"lqs/internal/plan"
)

// cost fills a node's per-output-row CPU and IO cost estimates. These feed
// the paper's §4.6 operator weights (w_i in Equation 2): each pipeline is
// weighted by max(CPU, IO), so only relative magnitudes matter. Costs are
// amortized per output row: an operator that consumes many rows per row
// produced (a selective filter, an aggregate) carries a correspondingly
// higher per-row cost.
func (e *Estimator) cost(n *plan.Node, perExec map[*plan.Node]float64) {
	cm := e.CM
	out := math.Max(perExec[n], 1)
	in := 0.0
	for _, c := range n.Children {
		in += perExec[c]
	}
	inflation := math.Max(in/out, 1)

	var cpu, io float64
	switch n.Physical {
	case plan.TableScan, plan.ClusteredIndexScan, plan.IndexScan:
		t := e.Cat.MustTable(n.Table)
		scanned := math.Max(float64(t.RowCount), 1)
		pages := float64(t.Pages)
		if n.Index != "" {
			if ix := t.Index(n.Index); ix != nil && ix.LeafPages > 0 {
				pages = float64(ix.LeafPages)
			}
		}
		perRowExpr := float64(expr.Cost(n.PushedPred)+expr.Cost(n.Pred)) * cm.CPUExprUnit
		cpu = (cm.CPUTuple + perRowExpr) * (scanned / out)
		io = pages * cm.IOPhysicalPage / out
	case plan.ColumnstoreIndexScan:
		t := e.Cat.MustTable(n.Table)
		scanned := math.Max(float64(t.RowCount), 1)
		groups := 1.0
		if ix := t.Index(n.Index); ix != nil && ix.RowGroups > 0 {
			groups = float64(ix.RowGroups)
		}
		// An empty accessed-column list means the scan reads every column
		// (matching the executor's default).
		cols := float64(len(n.AccessedCols))
		if cols == 0 {
			cols = float64(len(t.Columns))
		}
		segs := groups * cols
		perRowExpr := float64(expr.Cost(n.PushedPred)+expr.Cost(n.Pred)) * cm.CPUExprUnit / 4
		cpu = (cm.CPUBatchRow + perRowExpr) * (scanned / out)
		io = segs * cm.IOSegment / out
	case plan.ClusteredIndexSeek, plan.IndexSeek:
		t := e.Cat.MustTable(n.Table)
		height := 3.0
		leafPages := math.Max(float64(t.Pages), 1)
		if ix := t.Index(n.Index); ix != nil {
			if ix.Height > 0 {
				height = float64(ix.Height)
			}
			if ix.LeafPages > 0 {
				leafPages = float64(ix.LeafPages)
			}
		}
		perRowExpr := float64(expr.Cost(n.Pred)) * cm.CPUExprUnit
		cpu = cm.CPUTuple + perRowExpr + height*cm.CPUSeekLevel/out
		// Descent pages are hot. Leaf pages are read physically at most
		// once each across repeated executions: with R rebinds against L
		// leaf pages, the expected physical fraction per execution is
		// min(1, L/R) and the rest hit the buffer pool.
		rebinds := math.Max(n.EstRebinds, 1)
		physFrac := math.Min(1, leafPages/rebinds)
		leafIO := physFrac*cm.IOPhysicalPage + (1-physFrac)*cm.IOLogicalPage
		io = (height*cm.IOLogicalPage + leafIO) / out
	case plan.RIDLookup:
		cpu = cm.CPUTuple
		io = cm.IOPhysicalPage * 0.5 // random heap page, partially cached
	case plan.ConstantScan:
		cpu = cm.CPUTuple
	case plan.Filter:
		cpu = (cm.CPUTuple + float64(expr.Cost(n.Pred))*cm.CPUExprUnit) * inflation
	case plan.ComputeScalar:
		total := 0
		for _, ex := range n.Exprs {
			total += expr.Cost(ex)
		}
		cpu = cm.CPUTuple + float64(total)*cm.CPUExprUnit
	case plan.Sort, plan.DistinctSort:
		cpu = cm.CPUTuple*inflation + cm.SortRowCPU(in)*inflation
		// External merge passes when the input exceeds the sort budget.
		if passes := cm.SortMergePasses(in); passes > 0 {
			cpu += float64(passes) * (cm.SpillIOPerRow + cm.CPUSortCompare) * inflation
			// Converted to input-row cost equivalents below, once the
			// per-input-row cost (including producing the row) is known.
			n.EstInternalRows = float64(passes) * in
		}
	case plan.TopNSort:
		cpu = cm.CPUTuple*inflation + cm.SortRowCPU(math.Max(float64(n.TopN), 2))*inflation
	case plan.StreamAggregate:
		cpu = (cm.CPUTuple + float64(len(n.Aggs))*cm.CPUAggUpdate) * inflation
	case plan.HashAggregate:
		cpu = cm.CPUTuple + (cm.CPUHashInsert+float64(len(n.Aggs))*cm.CPUAggUpdate)*inflation
	case plan.HashJoin:
		probe := math.Max(perExec[n.Children[0]], 0)
		build := math.Max(perExec[n.Children[1]], 0)
		resid := float64(expr.Cost(n.Residual)) * cm.CPUExprUnit
		cpu = cm.CPUTuple + resid + (probe*cm.CPUHashProbe+build*cm.CPUHashInsert)/out
	case plan.MergeJoin:
		resid := float64(expr.Cost(n.Residual)) * cm.CPUExprUnit
		cpu = cm.CPUTuple + resid + in*cm.CPUTuple/out
	case plan.NestedLoops:
		resid := float64(expr.Cost(n.Residual)) * cm.CPUExprUnit
		cpu = cm.CPUTuple + resid + math.Max(perExec[n.Children[0]], 0)*cm.CPUTuple/out
	case plan.TableSpool:
		cpu = cm.CPUTuple + cm.CPUSpoolRow
	case plan.Exchange:
		cpu = cm.CPUTuple + cm.CPUExchangeRow
	case plan.BitmapCreate:
		cpu = cm.CPUTuple + cm.CPUHashInsert
	case plan.SegmentOp, plan.Concatenation:
		cpu = cm.CPUTuple
	default:
		cpu = cm.CPUTuple
	}
	if n.BatchMode && n.Physical != plan.ColumnstoreIndexScan {
		// Batch-mode joins/aggregates amortize iterator overhead.
		cpu = math.Max(cpu/6, cm.CPUBatchRow)
	}
	n.EstCPUPerRow = cpu
	n.EstIOPerRow = io
	if n.IsBlocking() {
		outCost := cm.CPUTuple
		switch n.Physical {
		case plan.Sort, plan.DistinctSort, plan.TopNSort:
			outCost += cm.CPUSortCompare // final merge pass
		case plan.TableSpool:
			outCost = cm.CPUSpoolRow
		}
		n.EstOutCPUPerRow = outCost

		// Phase weights for the §7 cost-weighted model: the time to
		// consume one input row includes the child's cost of producing
		// it; the output and internal phases are expressed relative to
		// that (children are costed first — the cost pass is postorder).
		childCost := 0.0
		for _, c := range n.Children {
			childCost += c.EstCPUPerRow + c.EstIOPerRow
		}
		inCost := cpu/inflation + childCost
		if inCost > 0 {
			n.EstOutWeight = outCost / inCost
			if n.EstInternalRows > 0 {
				n.EstInternalRows *= (cm.SpillIOPerRow + cm.CPUSortCompare) / inCost
			}
		}
	}
}
