package opt

import (
	"math"
	"testing"

	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// selScan estimates a predicate's selectivity by building a filtered scan
// and dividing the estimate by the table cardinality.
func selScan(t *testing.T, table string, pred expr.Expr) float64 {
	t.Helper()
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	p := plan.Finalize(b.TableScan(table, pred, nil))
	NewEstimator(cat).Estimate(p)
	return p.Root.EstRows / float64(cat.MustTable(table).RowCount)
}

func TestSelectivityConjunctionIndependence(t *testing.T) {
	// o_id < 1000 (0.5) AND o_cust < 50 (0.5) → ~0.25 under independence.
	pred := expr.And(
		expr.Lt(expr.C(0, "o_id"), expr.KInt(1000)),
		expr.Lt(expr.C(1, "o_cust"), expr.KInt(50)))
	if s := selScan(t, "orders", pred); math.Abs(s-0.25) > 0.08 {
		t.Fatalf("AND selectivity %v, want ~0.25", s)
	}
}

func TestSelectivityDisjunctionInclusionExclusion(t *testing.T) {
	pred := expr.Or(
		expr.Lt(expr.C(0, "o_id"), expr.KInt(1000)),
		expr.Lt(expr.C(1, "o_cust"), expr.KInt(50)))
	if s := selScan(t, "orders", pred); math.Abs(s-0.75) > 0.08 {
		t.Fatalf("OR selectivity %v, want ~0.75", s)
	}
}

func TestSelectivityNegation(t *testing.T) {
	pred := &expr.Not{E: expr.Lt(expr.C(0, "o_id"), expr.KInt(500))}
	if s := selScan(t, "orders", pred); math.Abs(s-0.75) > 0.08 {
		t.Fatalf("NOT selectivity %v, want ~0.75", s)
	}
}

func TestSelectivityFlippedComparison(t *testing.T) {
	// const < col must flip to col > const.
	a := selScan(t, "orders", expr.Lt(expr.KInt(1500), expr.C(0, "o_id")))
	b := selScan(t, "orders", expr.Gt(expr.C(0, "o_id"), expr.KInt(1500)))
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("flipped comparison differs: %v vs %v", a, b)
	}
	if math.Abs(a-0.25) > 0.08 {
		t.Fatalf("selectivity %v, want ~0.25", a)
	}
}

func TestSelectivityColumnVsColumn(t *testing.T) {
	// col = col → 1/max(dv): o_id has 2000 distincts, o_cust 100.
	s := selScan(t, "orders", expr.Eq(expr.C(0, "o_id"), expr.C(1, "o_cust")))
	if math.Abs(s-1.0/2000) > 1e-4 {
		t.Fatalf("col=col selectivity %v, want 1/2000", s)
	}
}

func TestSelectivityNE(t *testing.T) {
	s := selScan(t, "orders", &expr.Cmp{Op: expr.NE, L: expr.C(1, "o_cust"), R: expr.KInt(5)})
	if s < 0.9 || s > 1 {
		t.Fatalf("<> selectivity %v, want ~0.99", s)
	}
}

func TestSelectivityLikeGuesses(t *testing.T) {
	prefix := selScan(t, "orders", &expr.Like{E: expr.C(1, "o_cust"), Pattern: "ab%"})
	contains := selScan(t, "orders", &expr.Like{E: expr.C(1, "o_cust"), Pattern: "%ab%"})
	exact := selScan(t, "orders", &expr.Like{E: expr.C(1, "o_cust"), Pattern: "ab"})
	if math.Abs(prefix-guessLikePre) > 1e-9 || math.Abs(contains-guessLikeSub) > 1e-9 || math.Abs(exact-guessEq) > 1e-9 {
		t.Fatalf("LIKE guesses: prefix %v contains %v exact %v", prefix, contains, exact)
	}
}

func TestSelectivityInViaHistogram(t *testing.T) {
	// o_cust IN (1,2,3) over 100 uniform values → ~3%.
	pred := &expr.In{E: expr.C(1, "o_cust"), Set: []types.Value{types.Int(1), types.Int(2), types.Int(3)}}
	if s := selScan(t, "orders", pred); math.Abs(s-0.03) > 0.02 {
		t.Fatalf("IN selectivity %v, want ~0.03", s)
	}
	// IN over a computed expression falls back to the guess.
	pred2 := &expr.In{E: expr.Plus(expr.C(1, "o_cust"), expr.KInt(1)), Set: []types.Value{types.Int(1), types.Int(2)}}
	if s := selScan(t, "orders", pred2); math.Abs(s-2*guessEq) > 1e-9 {
		t.Fatalf("IN fallback %v, want %v", s, 2*guessEq)
	}
}

func TestSelectivityIsNull(t *testing.T) {
	// No NULLs in the fixture → near-zero.
	s := selScan(t, "orders", &expr.IsNull{E: expr.C(1, "o_cust")})
	if s > 0.01 {
		t.Fatalf("IS NULL selectivity %v, want ~0", s)
	}
}

func TestSelectivityOpaqueFuncAnywhere(t *testing.T) {
	f := &expr.Func{Name: "f", Args: []expr.Expr{expr.C(0, "o_id")},
		Fn: func(a []types.Value) types.Value { return a[0] }}
	// Func buried inside a comparison still triggers the out-of-model guess.
	s := selScan(t, "orders", expr.Lt(expr.Plus(f, expr.KInt(1)), expr.KInt(10)))
	if math.Abs(s-guessFunc) > 1e-9 {
		t.Fatalf("buried Func selectivity %v, want guess %v", s, guessFunc)
	}
}

func TestSelectivityConstPredicates(t *testing.T) {
	if s := selScan(t, "orders", expr.K(types.Bool(true))); s != 1 {
		t.Fatalf("TRUE selectivity %v", s)
	}
	if s := selScan(t, "orders", expr.K(types.Bool(false))); s > minSel*1.01 {
		t.Fatalf("FALSE selectivity %v", s)
	}
}

func TestSelectivityClamping(t *testing.T) {
	// A conjunction of many selective predicates clamps at minSel, never 0.
	kids := make([]expr.Expr, 8)
	for i := range kids {
		kids[i] = expr.Eq(expr.C(1, "o_cust"), expr.KInt(int64(i)))
	}
	s := selScan(t, "orders", expr.And(kids...))
	if s <= 0 {
		t.Fatal("selectivity clamped to zero")
	}
}

func TestCostNodesHaveOutWeights(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	sorted := b.Sort(b.TableScan("orders", nil, nil), []int{0}, nil)
	agg := b.HashAgg(sorted, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	top := b.TopNSortNode(agg, 5, []int{0}, nil)
	p := plan.Finalize(top)
	NewEstimator(cat).Estimate(p)
	p.Walk(func(n *plan.Node) {
		if n.IsBlocking() && n.EstOutCPUPerRow <= 0 {
			t.Errorf("blocking node %v missing output-phase cost", n.Physical)
		}
	})
}

func TestCostSpoolSegmentConcatConstant(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	scan := b.TableScan("orders", nil, nil)
	seg := b.SegmentNode(scan, []int{1})
	sp := b.Spool(seg, true)
	cc := b.Concat(sp, b.ConstantScanRows([]types.Row{{types.Int(1), types.Int(2), types.Float(3)}}))
	p := plan.Finalize(cc)
	NewEstimator(cat).Estimate(p)
	p.Walk(func(n *plan.Node) {
		if n.EstCPUPerRow <= 0 {
			t.Errorf("%v has non-positive CPU cost", n.Physical)
		}
	})
	if p.Root.EstRows != 2001 {
		t.Fatalf("concat estimate %v, want 2001", p.Root.EstRows)
	}
}

func TestMergeJoinAndRIDLookupCosts(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	mj := b.MergeJoinNode(plan.LogicalInnerJoin,
		b.ClusteredIndexScan("orders", "pk", nil, nil),
		b.Sort(b.TableScan("lines", nil, nil), []int{0}, nil),
		[]int{0}, []int{0}, nil)
	p := plan.Finalize(mj)
	NewEstimator(cat).Estimate(p)
	if p.Root.EstCPUPerRow <= 0 {
		t.Fatal("merge join cost missing")
	}
	seek := b.SeekKeysOnly("lines", "ix_oid", []expr.Expr{expr.KInt(3)}, []expr.Expr{expr.KInt(3)}, true, true)
	rl := b.RIDLookup(seek, "lines")
	p2 := plan.Finalize(rl)
	NewEstimator(cat).Estimate(p2)
	if p2.Root.EstIOPerRow <= 0 {
		t.Fatal("RID lookup should carry IO cost")
	}
}

func TestSeekBoundsVariants(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	// Lower-bound only.
	lo := b.Seek("orders", "pk", []expr.Expr{expr.KInt(1500)}, nil, true, false, nil)
	p := plan.Finalize(lo)
	NewEstimator(cat).Estimate(p)
	if math.Abs(p.Root.EstRows-500) > 120 {
		t.Fatalf("lower-bound seek estimate %v, want ~500", p.Root.EstRows)
	}
	// Upper-bound only.
	hi := b.Seek("orders", "pk", nil, []expr.Expr{expr.KInt(200)}, false, true, nil)
	p2 := plan.Finalize(hi)
	NewEstimator(cat).Estimate(p2)
	if math.Abs(p2.Root.EstRows-200) > 80 {
		t.Fatalf("upper-bound seek estimate %v, want ~200", p2.Root.EstRows)
	}
}
